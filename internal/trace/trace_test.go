package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRateAtWraps(t *testing.T) {
	tr := MustNew("t", []float64{1, 2, 3})
	if got := tr.RateAt(0); got != 1 {
		t.Fatalf("RateAt(0) = %v", got)
	}
	if got := tr.RateAt(2 * time.Second); got != 3 {
		t.Fatalf("RateAt(2s) = %v", got)
	}
	if got := tr.RateAt(3 * time.Second); got != 1 {
		t.Fatalf("RateAt(3s) should wrap, got %v", got)
	}
	if got := tr.RateAt(-time.Second); got != 1 {
		t.Fatalf("negative time should clamp, got %v", got)
	}
}

func TestShifted(t *testing.T) {
	tr := MustNew("t", []float64{1, 2, 3, 4})
	sh := tr.Shifted(2 * time.Second)
	want := []float64{3, 4, 1, 2}
	for i, w := range want {
		if got := sh.Samples()[i]; got != w {
			t.Fatalf("shifted[%d] = %v, want %v", i, got, w)
		}
	}
	// Shifting by the full duration is identity.
	id := tr.Shifted(4 * time.Second)
	for i, w := range tr.Samples() {
		if id.Samples()[i] != w {
			t.Fatalf("full-duration shift not identity at %d", i)
		}
	}
}

func TestOffsetToMean(t *testing.T) {
	tr := MustNew("t", []float64{1e6, 3e6})
	off := tr.OffsetToMean(10e6)
	if m := off.Mean(); math.Abs(m-10e6) > 1 {
		t.Fatalf("mean after offset = %v, want 10e6", m)
	}
	// Variations are preserved (stddev unchanged) when no clamping occurs.
	if math.Abs(off.StdDev()-tr.StdDev()) > 1 {
		t.Fatalf("stddev changed: %v vs %v", off.StdDev(), tr.StdDev())
	}
}

func TestOffsetClampsAtFloor(t *testing.T) {
	tr := MustNew("t", []float64{1e6, 100e6})
	off := tr.OffsetToMean(2e6)
	for _, v := range off.Samples() {
		if v < minRate {
			t.Fatalf("sample %v below floor", v)
		}
	}
}

func TestCanonicalTraceStatistics(t *testing.T) {
	cases := []struct {
		tr         *Trace
		meanMbps   float64
		sdLo, sdHi float64
	}{
		{TMobile(), 10, 7.5, 12},
		{Verizon(), 10, 7.5, 12},
		{ATT(), 10, 2.0, 4.0},
		{Norway3G(), 10, 0.6, 1.7},
		{FCC(), 10, 1.6, 3.2},
	}
	for _, c := range cases {
		m := c.tr.Mean() / Mbps
		sd := c.tr.StdDev() / Mbps
		if math.Abs(m-c.meanMbps) > 0.2 {
			t.Errorf("%s: mean = %.2f Mbps, want ≈%v", c.tr.Name(), m, c.meanMbps)
		}
		if sd < c.sdLo || sd > c.sdHi {
			t.Errorf("%s: stddev = %.2f Mbps, want in [%v,%v]", c.tr.Name(), sd, c.sdLo, c.sdHi)
		}
	}
}

func TestVariabilityOrdering(t *testing.T) {
	// The paper: T-Mobile and Verizon are "highly varying"; AT&T, FCC, 3G less so.
	if TMobile().StdDev() <= ATT().StdDev() {
		t.Error("T-Mobile should vary more than AT&T")
	}
	if Verizon().StdDev() <= FCC().StdDev() {
		t.Error("Verizon should vary more than FCC")
	}
	if ATT().StdDev() <= Norway3G().StdDev() {
		t.Error("AT&T should vary more than 3G")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := TMobile(), TMobile()
	for i := range a.Samples() {
		if a.Samples()[i] != b.Samples()[i] {
			t.Fatal("trace generation is not deterministic")
		}
	}
}

func TestRiiser3GSet(t *testing.T) {
	set := Riiser3GSet(86)
	if len(set) != 86 {
		t.Fatalf("got %d traces, want 86", len(set))
	}
	seen := map[string]bool{}
	var lowMean int
	for _, tr := range set {
		if seen[tr.Name()] {
			t.Fatalf("duplicate trace name %s", tr.Name())
		}
		seen[tr.Name()] = true
		if tr.Mean() < 6.5*Mbps {
			lowMean++
		}
	}
	if lowMean != 86 {
		t.Fatalf("expected all 3G traces to have low mean, got %d/86", lowMean)
	}
	// Distinct traces: different seeds should give different series.
	if set[0].Samples()[0] == set[1].Samples()[0] && set[0].Samples()[1] == set[1].Samples()[1] {
		t.Error("3G traces look identical")
	}
}

func TestConstantAndStep(t *testing.T) {
	c := Constant("c", 10.5*Mbps, 30)
	for _, v := range c.Samples() {
		if v != 10.5*Mbps {
			t.Fatalf("constant trace has sample %v", v)
		}
	}
	s := Step("s", 10.75*Mbps, 10.5*Mbps, 70*time.Second, 300)
	if s.RateAt(69*time.Second) != 10.75*Mbps {
		t.Fatal("before step wrong")
	}
	if s.RateAt(70*time.Second) != 10.5*Mbps {
		t.Fatal("after step wrong")
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		tr, err := ByName(n)
		if err != nil || tr == nil {
			t.Fatalf("ByName(%q) failed: %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown trace")
	}
}

func TestEmptyIsError(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("expected error for empty trace")
	}
	if _, err := New("x", []float64{}); err == nil {
		t.Fatal("expected error for empty trace")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic for empty trace")
		}
	}()
	MustNew("x", nil)
}

// Property: Shifted preserves the multiset of samples (hence mean/stddev).
func TestPropertyShiftPreservesMean(t *testing.T) {
	f := func(raw []float64, k uint16) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 1
			}
			raw[i] = math.Abs(math.Mod(raw[i], 1e8))
		}
		tr := MustNew("p", raw)
		sh := tr.Shifted(time.Duration(k) * time.Second)
		return math.Abs(tr.Mean()-sh.Mean()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: RateAt is periodic with period Duration.
func TestPropertyPeriodicity(t *testing.T) {
	f := func(raw []float64, q uint32) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 1
			}
		}
		tr := MustNew("p", raw)
		at := time.Duration(q%10000) * time.Millisecond
		return tr.RateAt(at) == tr.RateAt(at+tr.Duration())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

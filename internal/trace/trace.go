// Package trace provides the bandwidth traces the paper evaluates on.
//
// The paper uses five recorded traces — three Mahimahi LTE traces (T-Mobile,
// Verizon, AT&T), a Norwegian 3G commute trace set from Riiser et al., and an
// FCC fixed-line broadband trace — each linearly offset so the average rate
// matches the 10 Mbps top video bitrate (§5, "Network traces"). The recorded
// files are not redistributable here, so this package generates synthetic
// traces from seeded regime-switching models that are matched to the
// published summary statistics: standard deviations of ≈9–10 Mbps for
// T-Mobile and Verizon, 2.88 Mbps for AT&T, 1.1 Mbps for 3G, and 2.35 Mbps
// for FCC, all offset to a 10 Mbps mean. The per-trial linear shift by d/30
// seconds used in §5 is reproduced by Shifted.
package trace

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"voxel/internal/sim"
)

// Trace is a time-varying available-bandwidth series. Rates are in bits per
// second. Traces repeat: querying beyond Duration wraps around, matching how
// the testbed replays trace files in a loop.
type Trace struct {
	name    string
	samples []float64 // one per second, bps
}

// New builds a trace from per-second samples in bits per second. An empty
// sample set is an error: a trace with no samples has no rate to report at
// any time.
func New(name string, samples []float64) (*Trace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace: %q has an empty sample set", name)
	}
	cp := make([]float64, len(samples))
	copy(cp, samples)
	return &Trace{name: name, samples: cp}, nil
}

// MustNew is New for statically-known-good sample sets (generators, tests);
// it panics on error.
func MustNew(name string, samples []float64) *Trace {
	t, err := New(name, samples)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Duration returns the length of one pass through the trace.
func (t *Trace) Duration() sim.Time {
	return time.Duration(len(t.samples)) * time.Second
}

// RateAt returns the available bandwidth in bits per second at virtual time
// at, wrapping around the trace duration.
func (t *Trace) RateAt(at sim.Time) float64 {
	if at < 0 {
		at = 0
	}
	idx := int(at/time.Second) % len(t.samples)
	return t.samples[idx]
}

// Samples returns the underlying per-second series (read-only).
func (t *Trace) Samples() []float64 { return t.samples }

// Mean returns the average rate in bps.
func (t *Trace) Mean() float64 {
	var s float64
	for _, v := range t.samples {
		s += v
	}
	return s / float64(len(t.samples))
}

// StdDev returns the standard deviation of the per-second rates in bps.
func (t *Trace) StdDev() float64 {
	m := t.Mean()
	var ss float64
	for _, v := range t.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(t.samples)))
}

// Shifted returns a copy of the trace rotated left by offset, wrapping
// around, implementing the paper's per-trial linear trace shift.
func (t *Trace) Shifted(offset sim.Time) *Trace {
	n := len(t.samples)
	k := int(offset/time.Second) % n
	if k < 0 {
		k += n
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = t.samples[(i+k)%n]
	}
	return &Trace{name: t.name, samples: out}
}

// OffsetToMean returns a copy linearly offset so the mean equals target bps,
// clamping at a small positive floor so the link never fully dies, matching
// the paper's adjustment that "leaves the throughput variations intact".
func (t *Trace) OffsetToMean(target float64) *Trace {
	out := make([]float64, len(t.samples))
	copy(out, t.samples)
	// Clamping at the floor pulls the mean back up, so iterate the offset a
	// few times until the clamped mean converges on the target.
	for iter := 0; iter < 8; iter++ {
		var m float64
		for _, v := range out {
			m += v
		}
		m /= float64(len(out))
		delta := target - m
		if math.Abs(delta) < 1e3 {
			break
		}
		for i, v := range out {
			nv := v + delta
			if nv < minRate {
				nv = minRate
			}
			out[i] = nv
		}
	}
	return &Trace{name: t.name, samples: out}
}

// Scaled returns a copy with every sample multiplied by factor.
func (t *Trace) Scaled(factor float64) *Trace {
	out := make([]float64, len(t.samples))
	for i, v := range t.samples {
		out[i] = v * factor
	}
	return &Trace{name: t.name + "×", samples: out}
}

const (
	// minRate is the floor applied when offsetting; a hard zero would stall
	// the simulated link forever, which recorded traces avoid too.
	minRate = 50e3 // 50 kbps
	// Mbps converts megabits per second to bits per second.
	Mbps = 1e6
)

func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// genParams describes a regime-switching bandwidth model: the process picks
// a regime (fraction of the mean), holds it for a geometric time, and adds
// AR(1) noise on top. This matches the bursty high/low structure of the
// cellular traces the paper uses.
type genParams struct {
	mean      float64   // bps before offset
	regimes   []float64 // multiples of mean
	holdMean  float64   // seconds, mean regime holding time
	noiseFrac float64   // AR(1) innovation stddev as fraction of mean
	arCoeff   float64
	outageP   float64 // probability a regime is a near-outage
	// outageHold shortens near-outage regimes (LTE dips are brief even in
	// highly varying traces); 0 means use holdMean.
	outageHold float64
	// outageLevel is the outage regime as a fraction of the mean
	// (default 0.04).
	outageLevel float64
}

func generate(name string, seconds int, p genParams) *Trace {
	rng := rand.New(rand.NewSource(seedFor(name)))
	samples := make([]float64, seconds)
	regime := p.regimes[rng.Intn(len(p.regimes))]
	hold := 0
	noise := 0.0
	for i := 0; i < seconds; i++ {
		if hold <= 0 {
			if rng.Float64() < p.outageP {
				regime = p.outageLevel
				if regime == 0 {
					regime = 0.04
				}
				oh := p.outageHold
				if oh == 0 {
					oh = p.holdMean
				}
				hold = 1 + int(rng.ExpFloat64()*oh)
			} else {
				regime = p.regimes[rng.Intn(len(p.regimes))]
				hold = 1 + int(rng.ExpFloat64()*p.holdMean)
			}
		}
		hold--
		noise = p.arCoeff*noise + rng.NormFloat64()*p.noiseFrac*p.mean
		v := p.mean*regime + noise
		if v < minRate {
			v = minRate
		}
		samples[i] = v
	}
	return MustNew(name, samples)
}

// The standard trace length: long enough to cover the 5-minute clips plus
// shifting, mirroring the recorded traces.
const defaultSeconds = 600

// TMobile returns the synthetic stand-in for the Mahimahi T-Mobile LTE
// trace: mean 10 Mbps, stddev ≈ 9–10 Mbps, frequent deep outages.
func TMobile() *Trace {
	t := generate("tmobile-lte", defaultSeconds, genParams{
		mean:      10 * Mbps,
		// LTE rates mix quickly: regimes hold ≈1 s, so the per-second
		// stddev is huge while multi-second window averages stay usable —
		// the structure the Mahimahi recordings show.
		regimes:     []float64{0.35, 0.65, 1.0, 1.55, 3.25},
		holdMean:    1.2,
		noiseFrac:   0.08,
		arCoeff:     0.5,
		outageP:     0.035,
		outageHold:  4.0, // rare but sustained dead zones, as the recording has
		outageLevel: 0.42,
	})
	return t.OffsetToMean(10 * Mbps)
}

// Verizon returns the synthetic stand-in for the Mahimahi Verizon LTE
// trace: mean 10 Mbps, stddev ≈ 9–10 Mbps, slightly longer regimes than
// T-Mobile.
func Verizon() *Trace {
	t := generate("verizon-lte", defaultSeconds, genParams{
		mean:      10 * Mbps,
		regimes:     []float64{0.45, 0.7, 1.0, 1.5, 3.1},
		holdMean:    1.5,
		noiseFrac:   0.08,
		arCoeff:     0.55,
		outageP:     0.02,
		outageHold:  3.0,
		outageLevel: 0.45,
	})
	return t.OffsetToMean(10 * Mbps)
}

// ATT returns the synthetic stand-in for the Mahimahi AT&T LTE trace:
// mean 10 Mbps, stddev ≈ 2.88 Mbps — much tamer than T-Mobile/Verizon.
func ATT() *Trace {
	t := generate("att-lte", defaultSeconds, genParams{
		mean:      10 * Mbps,
		regimes:   []float64{0.72, 0.9, 1.0, 1.12, 1.3},
		holdMean:  8,
		noiseFrac: 0.12,
		arCoeff:   0.7,
		outageP:   0.01,
	})
	return t.OffsetToMean(10 * Mbps)
}

// Norway3G returns the synthetic stand-in for the Riiser 3G commute trace,
// offset to a 10 Mbps mean with stddev ≈ 1.1 Mbps as in §5.
func Norway3G() *Trace {
	t := generate("norway-3g", defaultSeconds, genParams{
		mean:      10 * Mbps,
		regimes:   []float64{0.88, 0.95, 1.0, 1.06, 1.12},
		holdMean:  10,
		noiseFrac: 0.05,
		arCoeff:   0.75,
		outageP:   0.004,
	})
	return t.OffsetToMean(10 * Mbps)
}

// FCC returns the synthetic stand-in for the FCC fixed-line broadband
// trace: mean 10 Mbps, stddev ≈ 2.35 Mbps.
func FCC() *Trace {
	t := generate("fcc-broadband", defaultSeconds, genParams{
		mean:      10 * Mbps,
		regimes:   []float64{0.8, 0.95, 1.0, 1.1, 1.2},
		holdMean:  15,
		noiseFrac: 0.1,
		arCoeff:   0.7,
		outageP:   0.008,
	})
	return t.OffsetToMean(10 * Mbps)
}

// Riiser3GSet returns n distinct low-bandwidth 3G commute traces in their
// natural (un-offset) form, standing in for the 86 Riiser et al. traces the
// Fig. 10 ablation streams over. Means range ≈1.5–6 Mbps; the low average
// bandwidth is what stress-tests the ABR algorithms there.
func Riiser3GSet(n int) []*Trace {
	traces := make([]*Trace, n)
	for i := range traces {
		name := fmt.Sprintf("riiser-3g-%02d", i)
		rng := rand.New(rand.NewSource(seedFor(name)))
		mean := (1.5 + 4.5*rng.Float64()) * Mbps
		traces[i] = generate(name, defaultSeconds, genParams{
			mean:      mean,
			regimes:   []float64{0.25, 0.6, 0.9, 1.2, 1.6},
			holdMean:  7,
			noiseFrac: 0.15,
			arCoeff:   0.6,
			outageP:   0.08,
		})
	}
	return traces
}

// Constant returns a trace with a fixed rate, as used by the Fig. 11
// synthetic experiments.
func Constant(name string, bps float64, seconds int) *Trace {
	samples := make([]float64, seconds)
	for i := range samples {
		samples[i] = bps
	}
	return MustNew(name, samples)
}

// Step returns a trace that holds `before` bps until stepAt and `after` bps
// afterwards, as in Fig. 11's 10.75→10.5 Mbps step trace.
func Step(name string, before, after float64, stepAt sim.Time, seconds int) *Trace {
	samples := make([]float64, seconds)
	stepSec := int(stepAt / time.Second)
	for i := range samples {
		if i < stepSec {
			samples[i] = before
		} else {
			samples[i] = after
		}
	}
	return MustNew(name, samples)
}

// InTheWild returns a WiFi-like path profile standing in for the paper's
// France→Germany in-the-wild runs: generally plentiful bandwidth with
// occasional contention dips.
func InTheWild() *Trace {
	return generate("in-the-wild-wifi", defaultSeconds, genParams{
		mean:      18 * Mbps,
		regimes:   []float64{0.4, 0.8, 1.0, 1.2, 1.4},
		holdMean:  12,
		noiseFrac: 0.1,
		arCoeff:   0.7,
		outageP:   0.03,
	})
}

// ByName resolves the canonical experiment traces by the names used in the
// paper's figures.
func ByName(name string) (*Trace, error) {
	switch name {
	case "tmobile", "T-Mobile":
		return TMobile(), nil
	case "verizon", "Verizon":
		return Verizon(), nil
	case "att", "AT&T":
		return ATT(), nil
	case "3g", "3G":
		return Norway3G(), nil
	case "fcc", "FCC":
		return FCC(), nil
	case "wild", "in-the-wild":
		return InTheWild(), nil
	default:
		return nil, fmt.Errorf("trace: unknown trace %q", name)
	}
}

// Names lists the canonical trace names accepted by ByName.
func Names() []string { return []string{"tmobile", "verizon", "att", "3g", "fcc", "wild"} }

// canonicalByInternal maps each canonical trace's internal name back to its
// ByName key, so a replay command can name the flag value that rebuilds it.
var canonicalByInternal = map[string]string{
	"tmobile-lte":      "tmobile",
	"verizon-lte":      "verizon",
	"att-lte":          "att",
	"norway-3g":        "3g",
	"fcc-broadband":    "fcc",
	"in-the-wild-wifi": "wild",
}

// CanonicalName returns the ByName key that rebuilds this trace; ok is
// false for traces outside the canonical set (constant, step, Riiser,
// shifted copies).
func CanonicalName(t *Trace) (string, bool) {
	name, ok := canonicalByInternal[t.name]
	return name, ok
}

package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseCSV builds a trace from "second,mbps" CSV, the format voxel-traces
// -csv emits, so an exported trace round-trips back into an experiment. An
// optional header row is skipped; the second column is Mbps; the first
// column must count 0,1,2,... (one sample per second, no gaps — a shuffled
// or sparse file is almost certainly not the trace the user meant).
// Negative and non-finite rates are rejected; zeros are allowed (outages).
func ParseCSV(name string, data []byte) (*Trace, error) {
	var samples []float64
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		col1, col2, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: want \"second,mbps\", got %q", ln+1, line)
		}
		if len(samples) == 0 {
			if _, err := strconv.Atoi(strings.TrimSpace(col1)); err != nil {
				continue // header row
			}
		}
		sec, err := strconv.Atoi(strings.TrimSpace(col1))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad second %q", ln+1, col1)
		}
		if sec != len(samples) {
			return nil, fmt.Errorf("trace: line %d: second %d out of order (want %d)", ln+1, sec, len(samples))
		}
		mbps, err := strconv.ParseFloat(strings.TrimSpace(col2), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rate %q", ln+1, col2)
		}
		if mbps < 0 || mbps != mbps || mbps > 1e12 {
			return nil, fmt.Errorf("trace: line %d: rate %v Mbps out of range", ln+1, mbps)
		}
		samples = append(samples, mbps*1e6)
	}
	return New(name, samples)
}

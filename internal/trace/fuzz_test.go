package trace

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseCSV feeds arbitrary bytes to the CSV trace parser. The parser
// guards the -load path of voxel-traces and any hand-edited trace file, so
// it must never panic, and every trace it does accept must be well-formed:
// non-empty, with finite non-negative rates.
//
// Run with: go test -fuzz FuzzParseCSV ./internal/trace
func FuzzParseCSV(f *testing.F) {
	f.Add([]byte("second,mbps\n0,4.2\n1,0\n2,11.5\n"))
	f.Add([]byte("0,1.0\n1,2.0\n"))
	f.Add([]byte("1,1.0\n0,2.0\n"))       // out of order
	f.Add([]byte("0,NaN\n"))              // non-finite rate
	f.Add([]byte("0,-3\n"))               // negative rate
	f.Add([]byte("second,mbps\n\n\n"))    // header only
	f.Add([]byte("0;1.0"))                // wrong delimiter
	f.Add([]byte{0xff, 0x2c, 0x00, 0x0a}) // raw bytes with a comma
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseCSV("fuzz", data)
		if err != nil {
			return
		}
		if tr.Duration() <= 0 {
			t.Fatalf("accepted trace has duration %v", tr.Duration())
		}
		for i, bps := range tr.Samples() {
			if bps < 0 || bps != bps || bps > 1e18 {
				t.Fatalf("accepted trace has bad sample %d: %v bps", i, bps)
			}
		}
	})
}

// FuzzParseCSVRoundTrip: any trace the parser accepts must survive a
// re-emit/re-parse cycle with the emitCSV format voxel-traces uses
// (%.3f Mbps), up to that format's quantization.
func FuzzParseCSVRoundTrip(f *testing.F) {
	f.Add(uint16(4200), uint16(0), uint16(11500))
	f.Add(uint16(1), uint16(65535), uint16(1000))
	f.Fuzz(func(t *testing.T, a, b, c uint16) {
		var sb strings.Builder
		sb.WriteString("second,mbps\n")
		for i, kbps := range []uint16{a, b, c} {
			fmt.Fprintf(&sb, "%d,%.3f\n", i, float64(kbps)/1000)
		}
		tr, err := ParseCSV("fuzz", []byte(sb.String()))
		if err != nil {
			t.Fatalf("generated CSV rejected: %v\n%s", err, sb.String())
		}
		samples := tr.Samples()
		if len(samples) != 3 {
			t.Fatalf("got %d samples, want 3", len(samples))
		}
		for i, kbps := range []uint16{a, b, c} {
			want := float64(kbps) / 1000 * 1e6
			if diff := samples[i] - want; diff > 0.5 || diff < -0.5 {
				t.Fatalf("sample %d = %v bps, want %v", i, samples[i], want)
			}
		}
	})
}

// Package server implements the origin: it serves the (optionally
// VOXEL-enriched) DASH manifest and the per-representation media objects
// over the HTTP-over-QUIC* shim, honoring range requests and the
// x-voxel-unreliable header (§4.2). Media bytes are opaque to the
// experiments, so representations are served as zero objects of the exact
// segment-tiled sizes.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/quic"
)

// ManifestPath is the manifest's URL path.
const ManifestPath = "/manifest.mpd"

// VideoPath returns the URL path of a representation's media object.
func VideoPath(q int) string { return fmt.Sprintf("/video/Q%d", q) }

// VideoServer serves one title.
type VideoServer struct {
	HTTP     *httpsim.Server
	manifest *dash.Manifest
	mpd      []byte
}

// New builds the server on a connection. opts.VoxelUnaware turns off
// unreliable delivery (the compatibility case).
func New(conn *quic.Conn, m *dash.Manifest, opts httpsim.ServerOptions) (*VideoServer, error) {
	mpd, err := m.EncodeMPD()
	if err != nil {
		return nil, err
	}
	vs := &VideoServer{manifest: m, mpd: mpd}
	vs.HTTP = httpsim.NewServer(conn, httpsim.HandlerFunc(vs.resolve), opts)
	return vs, nil
}

func (vs *VideoServer) resolve(path string) (httpsim.Object, error) {
	if path == ManifestPath {
		return httpsim.BytesObject(vs.mpd), nil
	}
	if q, ok := strings.CutPrefix(path, "/video/Q"); ok {
		qi, err := strconv.Atoi(q)
		if err != nil || qi < 0 || qi >= len(vs.manifest.Reps) {
			return nil, fmt.Errorf("server: bad representation %q", path)
		}
		rep := vs.manifest.Reps[qi]
		last := rep.Segments[len(rep.Segments)-1]
		return httpsim.ZeroObject(last.MediaRange[1]), nil
	}
	return nil, fmt.Errorf("server: not found: %q", path)
}

package server

import (
	"strings"
	"testing"
	"time"

	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/netem"
	"voxel/internal/quic"
	"voxel/internal/sim"
	"voxel/internal/trace"
	"voxel/internal/video"
)

func fixture(t *testing.T) (*sim.Sim, *httpsim.Client, *VideoServer, *dash.Manifest) {
	t.Helper()
	s := sim.New(5)
	path := netem.NewPath(s, trace.Constant("c", 20e6, 600), 64)
	cc, sc := quic.NewPair(s, path, quic.Config{}, quic.Config{})
	v := video.MustLoad("BBB")
	v.Segments = 3
	m := dash.Build(v, dash.BuildOptions{Voxel: true, PointsPerSegment: 6})
	vs, err := New(sc, m, httpsim.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return s, httpsim.NewClient(cc), vs, m
}

func TestServesManifest(t *testing.T) {
	s, client, _, m := fixture(t)
	resp := client.Get(ManifestPath, nil, false, nil)
	var body []byte
	done := false
	resp.OnBody = func(off int64, data []byte) { body = append(body, data...) }
	resp.OnComplete = func() { done = true }
	s.RunUntil(10 * time.Second)
	if !done || resp.Status != 200 {
		t.Fatalf("done=%v status=%d", done, resp.Status)
	}
	got, err := dash.DecodeMPD(body)
	if err != nil {
		t.Fatalf("served manifest does not parse: %v", err)
	}
	if got.NumSegments() != m.NumSegments() {
		t.Fatal("manifest shape lost in transit")
	}
}

func TestServesMediaRanges(t *testing.T) {
	s, client, _, m := fixture(t)
	seg := m.Segment(12, 1)
	resp := client.Get(VideoPath(12), httpsim.RangeSpec{{seg.MediaRange[0], seg.MediaRange[1]}}, false, nil)
	done := false
	resp.OnComplete = func() { done = true }
	s.RunUntil(30 * time.Second)
	if !done || resp.Status != 206 {
		t.Fatalf("done=%v status=%d", done, resp.Status)
	}
	if resp.BytesReceived() != int64(seg.Bytes) {
		t.Fatalf("received %d, want %d", resp.BytesReceived(), seg.Bytes)
	}
}

func TestRejectsUnknownPaths(t *testing.T) {
	s, client, _, _ := fixture(t)
	for _, p := range []string{"/nope", "/video/Q99", "/video/Qx"} {
		resp := client.Get(p, nil, false, nil)
		done := false
		resp.OnComplete = func() { done = true }
		s.RunUntil(s.Now() + 5*time.Second)
		if !done || resp.Status != 404 {
			t.Fatalf("%s: done=%v status=%d, want 404", p, done, resp.Status)
		}
	}
}

func TestVideoPathFormat(t *testing.T) {
	if VideoPath(12) != "/video/Q12" {
		t.Fatalf("VideoPath(12) = %q", VideoPath(12))
	}
	if !strings.HasPrefix(ManifestPath, "/") {
		t.Fatal("manifest path must be absolute")
	}
}

package exp

import (
	"reflect"
	"sync"
	"testing"

	"voxel/internal/dash"
	"voxel/internal/qoe"
	"voxel/internal/trace"
)

// tracedCfg is a multi-trial configuration on a varying trace, the shape the
// determinism guarantee has to hold for (distinct shift + seed per trial).
func tracedCfg() Config {
	return Config{
		Title:          "BBB",
		System:         SysVoxel,
		BufferSegments: 3,
		Trace:          trace.TMobile(),
		Trials:         4,
		Segments:       6,
		Seed:           11,
	}
}

func TestParallelRunDeterminism(t *testing.T) {
	seq := tracedCfg()
	seq.Parallelism = 1
	a := Run(seq)

	for _, workers := range []int{4, -1} {
		par := tracedCfg()
		par.Parallelism = workers
		b := Run(par)
		if !reflect.DeepEqual(a.Trials, b.Trials) {
			t.Fatalf("Parallelism=%d: trial slices differ from sequential run", workers)
		}
		if !reflect.DeepEqual(a.BufRatios, b.BufRatios) ||
			!reflect.DeepEqual(a.Bitrates, b.Bitrates) ||
			!reflect.DeepEqual(a.AllScores, b.AllScores) {
			t.Fatalf("Parallelism=%d: aggregate slices differ from sequential run", workers)
		}
		if a.BufRatioP90() != b.BufRatioP90() || a.MeanScore() != b.MeanScore() {
			t.Fatalf("Parallelism=%d: summary statistics differ", workers)
		}
	}
}

func TestParallelRunMatrixEquivalence(t *testing.T) {
	systems := []System{SysBolaQ, SysVoxel, SysBeta}

	seq := tracedCfg()
	seq.System = ""
	seq.Trials = 2
	seq.Segments = 4
	par := seq
	par.Parallelism = 4

	sa := RunMatrix(seq, systems)
	pa := RunMatrix(par, systems)
	if len(sa) != len(systems) || len(pa) != len(systems) {
		t.Fatalf("matrix sizes %d/%d, want %d", len(sa), len(pa), len(systems))
	}
	for _, sys := range systems {
		if !reflect.DeepEqual(sa[sys].Trials, pa[sys].Trials) {
			t.Errorf("%s: parallel matrix trials differ from sequential", sys)
		}
		if !reflect.DeepEqual(sa[sys].AllScores, pa[sys].AllScores) {
			t.Errorf("%s: parallel matrix scores differ from sequential", sys)
		}
	}
}

func TestParallelismExceedingTrials(t *testing.T) {
	cfg := tracedCfg()
	cfg.Trials = 2
	cfg.Parallelism = 16 // more workers than jobs must clamp, not hang
	agg := Run(cfg)
	if len(agg.Trials) != 2 {
		t.Fatalf("%d trials, want 2", len(agg.Trials))
	}
}

func TestManifestForConcurrent(t *testing.T) {
	// Hammer the cache with same-key and different-key lookups at once; every
	// same-key caller must get the same pointer (single shared build), and
	// different keys must not alias.
	keys := []struct {
		title  string
		metric qoe.Metric
	}{
		{"BBB", qoe.SSIM},
		{"BBB", qoe.VMAF},
		{"ToS", qoe.SSIM},
	}
	const callers = 8
	got := make([][]*dash.Manifest, len(keys))
	var wg sync.WaitGroup
	for ki := range keys {
		got[ki] = make([]*dash.Manifest, callers)
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(ki, c int) {
				defer wg.Done()
				got[ki][c] = ManifestFor(keys[ki].title, keys[ki].metric, 4)
			}(ki, c)
		}
	}
	wg.Wait()
	for ki := range keys {
		for c := 1; c < callers; c++ {
			if got[ki][c] != got[ki][0] {
				t.Fatalf("key %d: caller %d got a different manifest pointer", ki, c)
			}
		}
	}
	if got[0][0] == got[1][0] || got[0][0] == got[2][0] {
		t.Fatal("distinct keys share a manifest")
	}
}

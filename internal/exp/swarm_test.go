package exp

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"voxel/internal/trace"
)

// swarmCfg is the determinism bed for swarm mode: several sessions
// contending for a varying cellular trace across multiple trials.
func swarmCfg() Config {
	return Config{
		Title:          "BBB",
		System:         SysVoxel,
		BufferSegments: 3,
		Trace:          trace.TMobile(),
		Trials:         3,
		Segments:       6,
		Seed:           7,
		Sessions:       4,
	}
}

// Swarm trials must be bit-identical at any parallelism, down to the
// per-session result vectors, the fairness index, and the exported
// telemetry bytes.
func TestSwarmParallelismInvariant(t *testing.T) {
	render := func(par int) (*Aggregate, string, string) {
		cfg := swarmCfg()
		cfg.Parallelism = par
		cfg.Telemetry = true
		agg := Run(cfg)
		var j, c bytes.Buffer
		if err := agg.Obs.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := agg.Obs.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return agg, j.String(), c.String()
	}
	a, j1, c1 := render(1)
	b, j4, c4 := render(4)
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatal("swarm trials differ between sequential and parallel runs")
	}
	for i := range a.Trials {
		if !reflect.DeepEqual(a.Trials[i].Sessions, b.Trials[i].Sessions) {
			t.Fatalf("trial %d: per-session results differ across parallelism", i)
		}
		if a.Trials[i].Jain != b.Trials[i].Jain ||
			a.Trials[i].Utilization != b.Trials[i].Utilization {
			t.Fatalf("trial %d: fairness/utilization differ across parallelism", i)
		}
	}
	if j1 != j4 || c1 != c4 {
		t.Fatal("swarm telemetry exports differ between sequential and parallel runs")
	}
	if len(j1) == 0 {
		t.Fatal("empty swarm timeline")
	}
}

// Sessions=1 must take the exact same path as the pre-swarm harness:
// Sessions=0 (the classic default) and Sessions=1 are bit-identical.
func TestSwarmSingleSessionEquivalence(t *testing.T) {
	zero := swarmCfg()
	zero.Sessions = 0
	one := swarmCfg()
	one.Sessions = 1
	a := Run(zero)
	b := Run(one)
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatalf("Sessions=1 diverged from the single-session path:\n%+v\nvs\n%+v",
			a.Trials, b.Trials)
	}
}

// Shape and invariants of the swarm accounting: one SessionResult per
// session in index order, folded scalars consistent with the per-session
// values, Jain within [1/n, 1], utilization within (0, 1].
func TestSwarmAccounting(t *testing.T) {
	cfg := swarmCfg()
	agg := Run(cfg)
	for ti, tr := range agg.Trials {
		if len(tr.Sessions) != cfg.Sessions {
			t.Fatalf("trial %d: %d session results, want %d", ti, len(tr.Sessions), cfg.Sessions)
		}
		var scores int
		var rates []float64
		for si, sr := range tr.Sessions {
			if sr.Session != si {
				t.Fatalf("trial %d: session index %d recorded as %d", ti, si, sr.Session)
			}
			scores += len(sr.Scores)
			rates = append(rates, sr.AvgBitrate)
			if sr.AvgBitrate <= 0 {
				t.Fatalf("trial %d session %d: no bitrate delivered", ti, si)
			}
		}
		if len(tr.Scores) != scores {
			t.Fatalf("trial %d: folded Scores has %d entries, sessions hold %d",
				ti, len(tr.Scores), scores)
		}
		if tr.Jain < 1/float64(cfg.Sessions)-1e-12 || tr.Jain > 1+1e-12 || math.IsNaN(tr.Jain) {
			t.Fatalf("trial %d: Jain index %v outside [1/n, 1]", ti, tr.Jain)
		}
		if tr.Utilization <= 0 || tr.Utilization > 1 {
			t.Fatalf("trial %d: utilization %v outside (0, 1]", ti, tr.Utilization)
		}
	}
	if p5 := agg.SessionQoEP5(); p5 <= 0 || p5 > 1 {
		t.Fatalf("SessionQoEP5 = %v, want a plausible SSIM", p5)
	}
	if n := len(agg.SessionBitrates()); n != cfg.Trials*cfg.Sessions {
		t.Fatalf("SessionBitrates has %d entries, want %d", n, cfg.Trials*cfg.Sessions)
	}
}

// The Sessions axis is validated like every other config field.
func TestSessionsValidate(t *testing.T) {
	for _, n := range []int{-1, MaxSessions + 1} {
		cfg := swarmCfg()
		cfg.Sessions = n
		if err := cfg.Validate(); err == nil {
			t.Errorf("Sessions=%d passed validation", n)
		}
	}
	ok := swarmCfg()
	ok.Sessions = MaxSessions
	if err := ok.Validate(); err != nil {
		t.Errorf("Sessions=MaxSessions rejected: %v", err)
	}
}

// Closing Interrupt must abort a trial mid-flight, not just between trials.
// The configuration below is unfinishable in reasonable wall time: cross
// traffic keeps the event queue busy for 200 virtual hours, so a
// between-trials-only check would churn through billions of events before
// returning. The checkpointed loop has to notice the close within one
// virtual second and return almost immediately.
func TestInterruptAbortsMidTrial(t *testing.T) {
	cfg := Config{
		Title:          "BBB",
		System:         SysVoxel,
		BufferSegments: 3,
		Trials:         1,
		Segments:       4,
		Seed:           3,
		CrossTraffic:   5e6,
		LinkCapacity:   20e6,
		MaxSimTime:     200 * time.Hour,
	}
	ch := make(chan struct{})
	cfg.Interrupt = ch
	done := make(chan *Aggregate, 1)
	go func() { done <- Run(cfg) }()
	time.AfterFunc(100*time.Millisecond, func() { close(ch) })
	select {
	case agg := <-done:
		if len(agg.Trials) != 1 {
			t.Fatalf("%d trials, want 1", len(agg.Trials))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not abort mid-trial: Interrupt is only honored between trials")
	}
}

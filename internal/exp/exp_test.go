package exp

import (
	"testing"

	"voxel/internal/qoe"
	"voxel/internal/trace"
)

func smallCfg(sys System) Config {
	return Config{
		Title:          "BBB",
		System:         sys,
		BufferSegments: 3,
		Trace:          trace.Verizon(),
		Trials:         2,
		Segments:       6,
		Seed:           1,
	}
}

func TestRunBasic(t *testing.T) {
	agg := Run(smallCfg(SysVoxel))
	if len(agg.Trials) != 2 {
		t.Fatalf("%d trials", len(agg.Trials))
	}
	for i, tr := range agg.Trials {
		if !tr.Completed {
			t.Fatalf("trial %d did not complete", i)
		}
		if len(tr.Scores) != 6 {
			t.Fatalf("trial %d: %d scores", i, len(tr.Scores))
		}
		if tr.AvgBitrate <= 0 {
			t.Fatalf("trial %d: no bitrate", i)
		}
		if tr.BufRatio < 0 || tr.BufRatio > 10 {
			t.Fatalf("trial %d: bufRatio %v", i, tr.BufRatio)
		}
	}
	if agg.ScoreCDF().Len() != 12 {
		t.Fatalf("CDF over %d scores, want 12", agg.ScoreCDF().Len())
	}
}

func TestAllSystemsRun(t *testing.T) {
	for _, sys := range []System{
		SysBolaQ, SysBolaQStar, SysMPCQ, SysTputQ, SysBeta,
		SysBolaSSIM, SysVoxel, SysVoxelRel, SysVoxelUntuned,
	} {
		cfg := smallCfg(sys)
		cfg.Trials = 1
		cfg.Segments = 4
		agg := Run(cfg)
		if len(agg.Trials) != 1 || !agg.Trials[0].Completed {
			t.Errorf("%s: trial failed", sys)
		}
	}
}

func TestUnknownSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newAlgorithm(System("nope"))
}

func TestTraceShiftingVariesTrials(t *testing.T) {
	cfg := smallCfg(SysBolaQ)
	cfg.Trace = trace.TMobile()
	cfg.Trials = 3
	agg := Run(cfg)
	// With a highly varying trace the shifted trials should not be all
	// identical in delivered bitrate.
	same := agg.Bitrates[0] == agg.Bitrates[1] && agg.Bitrates[1] == agg.Bitrates[2]
	if same {
		t.Fatal("trace shifting produced identical trials")
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(smallCfg(SysVoxel))
	b := Run(smallCfg(SysVoxel))
	for i := range a.Trials {
		if a.Trials[i].BufRatio != b.Trials[i].BufRatio ||
			a.Trials[i].AvgBitrate != b.Trials[i].AvgBitrate {
			t.Fatalf("trial %d not deterministic", i)
		}
	}
}

func TestCrossTrafficRun(t *testing.T) {
	cfg := smallCfg(SysVoxel)
	cfg.Trace = nil
	cfg.CrossTraffic = 10e6
	cfg.LinkCapacity = 20e6
	cfg.Trials = 1
	agg := Run(cfg)
	if !agg.Trials[0].Completed {
		t.Fatal("cross-traffic trial failed")
	}
}

func TestMetricVariants(t *testing.T) {
	for _, m := range []qoe.Metric{qoe.SSIM, qoe.VMAF, qoe.PSNR} {
		cfg := smallCfg(SysVoxel)
		cfg.Metric = m
		cfg.Trials = 1
		cfg.Segments = 4
		agg := Run(cfg)
		if !agg.Trials[0].Completed {
			t.Fatalf("%v: failed", m)
		}
		if m != qoe.SSIM && agg.MeanScore() <= 1.2 {
			t.Fatalf("%v: scores look like SSIM: %v", m, agg.MeanScore())
		}
	}
}

func TestManifestCaching(t *testing.T) {
	a := ManifestFor("ToS", qoe.SSIM, 4)
	b := ManifestFor("ToS", qoe.SSIM, 4)
	if a != b {
		t.Fatal("manifest not cached")
	}
	c := ManifestFor("ToS", qoe.VMAF, 4)
	if a == c {
		t.Fatal("different metrics must not share manifests")
	}
}

func TestRunMatrix(t *testing.T) {
	base := smallCfg("")
	base.Trials = 1
	base.Segments = 4
	out := RunMatrix(base, []System{SysBolaQ, SysVoxel})
	if len(out) != 2 || out[SysBolaQ] == nil || out[SysVoxel] == nil {
		t.Fatal("matrix incomplete")
	}
}

package exp

import (
	"fmt"
	"reflect"
	"sort"
)

// Normalized returns the config with its execution-only fields cleared:
// shard coordinates, worker parallelism, and the interrupt channel. Two
// configs that normalize equal describe the same sweep — the same trials
// with the same seeds producing the same results — even if they were run
// on different shards, at different parallelism, or under different
// cancellation plumbing. Merge and resume use this as the compatibility
// test, and a merged aggregate is stamped with the normalized (defaulted)
// config, which is exactly what an unsharded sequential run stamps.
func (c Config) Normalized() Config {
	c = c.withDefaults()
	c.ShardIndex = 0
	c.ShardCount = 0
	c.Parallelism = 0
	c.Interrupt = nil
	return c
}

// MergeShards folds the aggregates of a complete shard set back into the
// aggregate the equivalent unsharded run would have produced, bit for bit.
// Every shard must carry the same ShardCount n, the set must cover shard
// indices 0..n-1 exactly once, and the configs must match after
// Normalized(). The shards' per-trial results are slotted back into one
// full-length trial vector by ownership and re-assembled with the
// normalized config; because trial seeds and trace shifts depend only on
// the trial index and the full trial count — never on which shard ran the
// trial — the refold reproduces the single-process fold exactly.
// FailureHook is not re-fired for the shards' failures: each shard already
// reported them when it ran.
func MergeShards(shards []*Aggregate) (*Aggregate, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("exp: merge of zero shards")
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("exp: shard %d is nil", i)
		}
	}
	n := shards[0].Config.ShardCount
	if n <= 1 {
		if len(shards) == 1 {
			// A single unsharded aggregate "merges" to itself, re-stamped
			// with the normalized config so the output is canonical.
			return mergeRefold([]*Aggregate{shards[0]})
		}
		return nil, fmt.Errorf("exp: shard 0 is unsharded (count %d) but %d shards given", n, len(shards))
	}
	if len(shards) != n {
		return nil, fmt.Errorf("exp: got %d shards, config says %d", len(shards), n)
	}
	norm := shards[0].Config.Normalized()
	seen := make(map[int]bool, n)
	for i, s := range shards {
		c := s.Config
		if c.ShardCount != n {
			return nil, fmt.Errorf("exp: shard %d has count %d, shard 0 has %d", i, c.ShardCount, n)
		}
		if seen[c.ShardIndex] {
			return nil, fmt.Errorf("exp: shard index %d appears twice", c.ShardIndex)
		}
		seen[c.ShardIndex] = true
		if !reflect.DeepEqual(c.Normalized(), norm) {
			return nil, fmt.Errorf("exp: shard %d config does not match shard 0 after normalization", i)
		}
		if len(s.Trials) != norm.Trials {
			return nil, fmt.Errorf("exp: shard %d has %d trial slots, config says %d",
				i, len(s.Trials), norm.Trials)
		}
	}
	// Present in sorted shard-index order so the refold is independent of
	// the order the caller listed the files in.
	ordered := make([]*Aggregate, 0, n)
	idx := make([]int, 0, n)
	for _, s := range shards {
		idx = append(idx, s.Config.ShardIndex)
	}
	sort.Ints(idx)
	for _, want := range idx {
		for _, s := range shards {
			if s.Config.ShardIndex == want {
				ordered = append(ordered, s)
				break
			}
		}
	}
	return mergeRefold(ordered)
}

// mergeRefold slots every shard's owned trials into one full vector and
// re-assembles with the normalized config.
func mergeRefold(shards []*Aggregate) (*Aggregate, error) {
	norm := shards[0].Config.Normalized()
	trials := make([]Trial, norm.Trials)
	fails := make([]*TrialError, norm.Trials)
	for _, s := range shards {
		own := s.Config.withDefaults()
		for ti := 0; ti < norm.Trials; ti++ {
			if !own.Owns(ti) {
				continue
			}
			trials[ti] = s.Trials[ti]
		}
		for fi := range s.Failed {
			te := s.Failed[fi] // copy; the shard's record stays untouched
			if te.Trial < 0 || te.Trial >= norm.Trials {
				return nil, fmt.Errorf("exp: shard %d failure names trial %d of %d",
					s.Config.ShardIndex, te.Trial, norm.Trials)
			}
			// Re-stamp the error's config like the unsharded harness would
			// have, so merged Failed entries compare equal to a clean run's.
			te.Config = norm
			fails[te.Trial] = &te
		}
	}
	return assemble(norm, trials, fails, false), nil
}

package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"voxel/internal/trace"
)

func failCfg() Config {
	return Config{
		Title:    "BBB",
		Trace:    trace.Verizon(),
		Segments: 6,
		Trials:   4,
	}
}

// The acceptance scenario: one deliberately panicking trial inside a
// 16-trial parallel sweep must surface as exactly one TrialError — with
// stack, seed, and replay command — while the other 15 trials complete
// normally and the process never crashes.
func TestPanicIsolation16Trials(t *testing.T) {
	cfg := failCfg()
	cfg.Trials = 16
	cfg.Parallelism = 4
	cfg.Inject = "panic@5"
	agg := Run(cfg)

	if len(agg.Failed) != 1 {
		t.Fatalf("got %d failures, want 1: %+v", len(agg.Failed), agg.Failed)
	}
	te := &agg.Failed[0]
	if te.Trial != 5 {
		t.Fatalf("failed trial = %d, want 5", te.Trial)
	}
	if te.Rule != "panic" || !strings.Contains(te.Msg, "injected fault") {
		t.Fatalf("wrong classification: rule=%q msg=%q", te.Rule, te.Msg)
	}
	if te.Seed != TrialSeed(1, 5) {
		t.Fatalf("seed = %d, want %d", te.Seed, TrialSeed(1, 5))
	}
	if !strings.Contains(te.Stack, "runTrial") {
		t.Fatalf("stack missing runTrial:\n%s", te.Stack)
	}
	cmd := te.ReplayCommand()
	for _, want := range []string{"voxel-sim", "-inject panic@5", "-trials 16", "-seed 1"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("replay command %q missing %q", cmd, want)
		}
	}

	if len(agg.Trials) != 16 {
		t.Fatalf("aggregate has %d trial slots, want 16", len(agg.Trials))
	}
	completed := 0
	for ti, tr := range agg.Trials {
		if ti == 5 {
			if !tr.Failed {
				t.Fatal("trial 5 not marked failed")
			}
			continue
		}
		if tr.Failed {
			t.Fatalf("surviving trial %d marked failed", ti)
		}
		if !tr.Completed || len(tr.Scores) == 0 {
			t.Fatalf("surviving trial %d incomplete (completed=%v, %d scores)",
				ti, tr.Completed, len(tr.Scores))
		}
		completed++
	}
	if completed != 15 {
		t.Fatalf("%d trials completed, want 15", completed)
	}
	// Failed trials contribute no metric samples.
	if len(agg.BufRatios) != 15 || len(agg.Bitrates) != 15 {
		t.Fatalf("metric samples %d/%d, want 15/15", len(agg.BufRatios), len(agg.Bitrates))
	}
}

// A failure inside one trial is invisible to the others: the surviving
// trials of an injected sweep produce bit-identical results to a clean
// sweep's corresponding trials.
func TestSurvivorsUnperturbed(t *testing.T) {
	clean := Run(failCfg())
	cfg := failCfg()
	cfg.Inject = "panic@2"
	injected := Run(cfg)
	for ti := range clean.Trials {
		if ti == 2 {
			continue
		}
		if !reflect.DeepEqual(clean.Trials[ti], injected.Trials[ti]) {
			t.Fatalf("trial %d differs between clean and injected sweeps", ti)
		}
	}
}

// Arming the invariant checker on a healthy run must not change a single
// bit of the results — checking is observation, never perturbation.
func TestInvariantsAreTransparent(t *testing.T) {
	base := failCfg()
	base.Trials = 2
	clean := Run(base)
	armed := base
	armed.Invariants = true
	checked := Run(armed)
	if len(checked.Failed) != 0 {
		t.Fatalf("invariants fired on a healthy run: %+v", checked.Failed)
	}
	if !reflect.DeepEqual(clean.Trials, checked.Trials) {
		t.Fatal("invariant checking perturbed trial results")
	}
}

func TestInjectedInvariantViolation(t *testing.T) {
	cfg := failCfg()
	cfg.Trials = 1
	cfg.Inject = "invariant"
	agg := Run(cfg)
	if len(agg.Failed) != 1 {
		t.Fatalf("got %d failures, want 1", len(agg.Failed))
	}
	te := &agg.Failed[0]
	if te.Rule != "exp.injected-fault" {
		t.Fatalf("rule = %q, want exp.injected-fault", te.Rule)
	}
	if te.Clock != 2*time.Second {
		t.Fatalf("clock = %v, want the 2s injection instant", te.Clock)
	}
	if te.Session != -1 {
		t.Fatalf("session = %d, want -1 (mid-run failure)", te.Session)
	}
}

// The event budget is the only defense against a zero-delay event storm:
// virtual time freezes while events burn, so neither MaxSimTime nor the
// interrupt checkpoints ever trigger.
func TestWatchdogEventBudgetCatchesSpin(t *testing.T) {
	cfg := failCfg()
	cfg.Trials = 2
	cfg.Inject = "spin@1"
	cfg.WatchdogEvents = 300_000
	agg := Run(cfg)
	if len(agg.Failed) != 1 {
		t.Fatalf("got %d failures, want 1", len(agg.Failed))
	}
	te := &agg.Failed[0]
	if te.Rule != "watchdog.event-budget" || te.Trial != 1 {
		t.Fatalf("got rule=%q trial=%d, want watchdog.event-budget trial 1", te.Rule, te.Trial)
	}
	if !agg.Trials[0].Completed {
		t.Fatal("healthy trial 0 did not complete")
	}
}

func TestWatchdogWallBudgetCatchesSpin(t *testing.T) {
	cfg := failCfg()
	cfg.Trials = 1
	cfg.Inject = "spin"
	cfg.WatchdogWall = 50 * time.Millisecond
	agg := Run(cfg)
	if len(agg.Failed) != 1 {
		t.Fatalf("got %d failures, want 1", len(agg.Failed))
	}
	if rule := agg.Failed[0].Rule; rule != "watchdog.wall-budget" {
		t.Fatalf("rule = %q, want watchdog.wall-budget", rule)
	}
}

// The watchdog's sliced run loop must execute the exact same events as one
// RunUntil when nothing breaches, leaving results bit-identical.
func TestWatchdogTransparentWhenUnderBudget(t *testing.T) {
	base := failCfg()
	base.Trials = 2
	clean := Run(base)
	guarded := base
	guarded.WatchdogWall = time.Hour
	guarded.WatchdogEvents = 1 << 40
	agg := Run(guarded)
	if len(agg.Failed) != 0 {
		t.Fatalf("watchdog fired under budget: %+v", agg.Failed)
	}
	if !reflect.DeepEqual(clean.Trials, agg.Trials) {
		t.Fatal("watchdog slicing perturbed trial results")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	cfg := failCfg()
	cfg.Trials = 2
	cfg.Impairment = "flaky-wifi"
	cfg.Inject = "invariant@1"
	agg := Run(cfg)
	if len(agg.Failed) != 1 {
		t.Fatalf("got %d failures, want 1", len(agg.Failed))
	}
	a := agg.Failed[0].Artifact()
	if a.Violation != "exp.injected-fault" || a.Trial != 1 || a.Trace != "verizon" {
		t.Fatalf("artifact fields wrong: %+v", a)
	}
	got, err := ConfigFromArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Failed[0].Config
	if got.Title != want.Title || got.System != want.System ||
		got.Seed != want.Seed || got.Segments != want.Segments ||
		got.Trials != want.Trials || got.Impairment != want.Impairment ||
		got.Inject != want.Inject {
		t.Fatalf("config round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !got.Invariants || got.WatchdogWall == 0 || got.WatchdogEvents == 0 {
		t.Fatal("replay config did not arm invariants + watchdog")
	}
	if tr, _ := ConfigFromArtifact(a); tr.Trace.Name() != want.Trace.Name() {
		t.Fatalf("trace %q did not round-trip", want.Trace.Name())
	}
}

func TestValidateRejectsBadInject(t *testing.T) {
	for _, spec := range []string{"explode", "panic@-1", "panic@x", "@3"} {
		cfg := Config{Inject: spec}
		if err := cfg.Validate(); err == nil {
			t.Fatalf("inject %q accepted", spec)
		}
	}
	for _, spec := range []string{"", "panic", "invariant@0", "spin@12"} {
		cfg := Config{Inject: spec}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("inject %q rejected: %v", spec, err)
		}
	}
}

// Telemetry exports of a sweep with a failed trial stay byte-deterministic
// across worker counts, and the failed trial appears as an explicit marker
// (CSV failed column, JSONL trial_failed event) instead of a silent gap.
func TestFailedTrialTelemetryExports(t *testing.T) {
	render := func(parallelism int) (csv, jsonl string) {
		cfg := failCfg()
		cfg.Telemetry = true
		cfg.Inject = "panic@1"
		cfg.Parallelism = parallelism
		agg := Run(cfg)
		var c, j bytes.Buffer
		if err := agg.Obs.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := agg.Obs.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		return c.String(), j.String()
	}
	csv1, jsonl1 := render(1)
	csv4, jsonl4 := render(4)
	if csv1 != csv4 {
		t.Fatal("CSV export differs across parallelism")
	}
	if jsonl1 != jsonl4 {
		t.Fatal("JSONL export differs across parallelism")
	}
	rows := strings.Split(strings.TrimRight(csv1, "\n"), "\n")
	if len(rows) != 1+4+1 { // header + 4 trials + total
		t.Fatalf("CSV has %d rows, want 6:\n%s", len(rows), csv1)
	}
	if !strings.HasSuffix(rows[0], ",failed") {
		t.Fatalf("CSV header missing failed column: %s", rows[0])
	}
	if !strings.HasPrefix(rows[2], "1,0,") || !strings.HasSuffix(rows[2], ",1") {
		t.Fatalf("failed trial row not marked: %s", rows[2])
	}
	if !strings.HasSuffix(rows[5], ",1") {
		t.Fatalf("total row failed count wrong: %s", rows[5])
	}
	if !strings.Contains(jsonl1, `"kind":"trial_failed"`) {
		t.Fatal("JSONL missing trial_failed event")
	}
}

package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"voxel/internal/obs"
	"voxel/internal/trace"
)

// burstyCfg is the telemetry exercise bed: a tight buffer over a variable
// cellular trace with burst loss provokes rebuffers, unreliable-loss
// reports, and ABR* partial abandonments in one short trial.
func burstyCfg() Config {
	tr, err := trace.ByName("tmobile")
	if err != nil {
		panic(err)
	}
	return Config{
		Title: "BBB", System: SysVoxel, Trace: tr, BufferSegments: 1,
		Trials: 1, Segments: 20, Impairment: "bursty",
		MaxSimTime: 10 * time.Minute, Telemetry: true,
	}
}

// Telemetry is observation only: enabling it must not move a single metric.
func TestTelemetryPreservesResults(t *testing.T) {
	on := burstyCfg()
	off := on
	off.Telemetry = false
	a := Run(on)
	b := Run(off)
	if a.Obs == nil || len(a.Obs.Trials) != 1 {
		t.Fatal("telemetry enabled but no report collected")
	}
	if b.Obs != nil || b.Trials[0].Obs != nil {
		t.Fatal("telemetry disabled but a report was collected")
	}
	stripped := make([]Trial, len(a.Trials))
	copy(stripped, a.Trials)
	for i := range stripped {
		stripped[i].Obs = nil
		stripped[i].SessionObs = nil
	}
	if !reflect.DeepEqual(stripped, b.Trials) {
		t.Fatalf("telemetry perturbed the trial results:\n%+v\nvs\n%+v", stripped, b.Trials)
	}
}

// Per-trial scopes live inside single-threaded worlds, so the exported
// timelines are byte-identical at any parallelism.
func TestTelemetryParallelDeterminism(t *testing.T) {
	cfg := burstyCfg()
	cfg.Trials = 4
	render := func(par int) (string, string) {
		c := cfg
		c.Parallelism = par
		agg := Run(c)
		var j, csv bytes.Buffer
		if err := agg.Obs.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := agg.Obs.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return j.String(), csv.String()
	}
	j1, c1 := render(1)
	j4, c4 := render(4)
	if j1 != j4 {
		t.Fatal("JSONL timeline differs between sequential and parallel runs")
	}
	if c1 != c4 {
		t.Fatal("CSV counters differ between sequential and parallel runs")
	}
	if len(j1) == 0 {
		t.Fatal("empty JSONL timeline")
	}
}

// A bursty-profile trial's timeline must tell the recovery story: rebuffer,
// loss-report, and abandonment events all present, and every line parseable
// JSON (the acceptance contract for the CLI's -telemetry output).
func TestBurstyTimelineEvents(t *testing.T) {
	agg := Run(burstyCfg())
	rep := agg.Obs
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec struct {
			Kind string  `json:"kind"`
			TMs  float64 `json:"t_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable JSONL line: %v\n%s", err, sc.Text())
		}
		seen[rec.Kind]++
	}
	for _, kind := range []string{"rebuffer_start", "rebuffer_stop", "loss_report",
		"abandon_partial", "segment_chosen", "segment_done", "startup"} {
		if seen[kind] == 0 {
			t.Errorf("timeline missing %q events (have %v)", kind, seen)
		}
	}
	r := rep.Trials[0]
	if r.Counters[obs.CRebuffers] == 0 || r.Counters[obs.CLossReportedBytes] == 0 {
		t.Errorf("counters missing rebuffer/loss activity: %v", rep.Summary())
	}
	if r.Counters[obs.CAbrDecisions] == 0 {
		t.Error("ABR decisions not counted")
	}
	if r.Counters[obs.CPacketsSent] == 0 || r.Counters[obs.CPacketsReceived] == 0 {
		t.Error("transport counters empty")
	}
	if r.Hists[obs.HRTTMs].Count == 0 || r.Hists[obs.HSegmentMs].Count == 0 {
		t.Error("histograms empty")
	}
}

// An interrupt closed before the run starts skips every trial.
func TestInterruptSkipsTrials(t *testing.T) {
	cfg := burstyCfg()
	cfg.Telemetry = false
	ch := make(chan struct{})
	close(ch)
	cfg.Interrupt = ch
	agg := Run(cfg)
	if agg.Trials[0].Completed {
		t.Fatal("interrupted run still executed its trial")
	}
}

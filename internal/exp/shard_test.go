package exp

import (
	"reflect"
	"sync"
	"testing"
)

func TestShardValidate(t *testing.T) {
	cases := []struct {
		name   string
		index  int
		count  int
		wantOK bool
	}{
		{"unsharded", 0, 0, true},
		{"single-shard", 0, 1, true},
		{"first-of-four", 0, 4, true},
		{"last-of-four", 3, 4, true},
		{"index-equals-count", 4, 4, false},
		{"index-past-count", 7, 4, false},
		{"negative-index", -1, 4, false},
		{"negative-count", 0, -2, false},
		{"index-without-count", 2, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tracedCfg()
			c.ShardIndex, c.ShardCount = tc.index, tc.count
			err := c.Validate()
			if tc.wantOK && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.wantOK && err == nil {
				t.Fatal("want validation error, got nil")
			}
		})
	}
}

func TestShardOwns(t *testing.T) {
	c := Config{Trials: 10}
	for ti := 0; ti < 10; ti++ {
		if !c.Owns(ti) {
			t.Fatalf("unsharded config must own trial %d", ti)
		}
	}
	c.ShardCount = 3
	for _, tc := range []struct {
		index int
		owned []int
	}{
		{0, []int{0, 3, 6, 9}},
		{1, []int{1, 4, 7}},
		{2, []int{2, 5, 8}},
	} {
		c.ShardIndex = tc.index
		var got []int
		for ti := 0; ti < 10; ti++ {
			if c.Owns(ti) {
				got = append(got, ti)
			}
		}
		if !reflect.DeepEqual(got, tc.owned) {
			t.Fatalf("shard %d/3 owns %v, want %v", tc.index, got, tc.owned)
		}
	}
	// Every trial is owned by exactly one shard.
	counts := make([]int, 10)
	for i := 0; i < 3; i++ {
		c.ShardIndex = i
		for ti := 0; ti < 10; ti++ {
			if c.Owns(ti) {
				counts[ti]++
			}
		}
	}
	for ti, n := range counts {
		if n != 1 {
			t.Fatalf("trial %d owned by %d shards", ti, n)
		}
	}
}

// shardCfg is the reference sweep for merge determinism: telemetry on and
// one injected failure, so the test covers sample slices, Failed records,
// and the merged obs report all at once.
func shardCfg() Config {
	c := tracedCfg()
	c.Trials = 6
	c.Telemetry = true
	c.Inject = "panic@2"
	return c
}

// scrubStacks zeroes the Stack text of every failure record: a goroutine
// dump embeds goroutine IDs and heap addresses, which differ between runs
// by construction. Everything else about a TrialError — trial, seed,
// session, virtual clock, rule, message, config — is deterministic and
// stays under exact comparison.
func scrubStacks(a *Aggregate) {
	for i := range a.Failed {
		a.Failed[i].Stack = ""
	}
}

// TestShardedMergeMatchesUnsharded is the tentpole guarantee: run the same
// sweep unsharded and as 2- and 4-shard campaigns (shards in parallel),
// merge, and demand DeepEqual aggregates — trials, samples, failures, and
// telemetry alike.
func TestShardedMergeMatchesUnsharded(t *testing.T) {
	whole := Run(shardCfg())
	scrubStacks(whole)
	if len(whole.Failed) != 1 || whole.Failed[0].Trial != 2 {
		t.Fatalf("reference run: want 1 failure at trial 2, got %+v", whole.Failed)
	}

	for _, n := range []int{2, 4} {
		shards := make([]*Aggregate, n)
		for i := 0; i < n; i++ {
			c := shardCfg()
			c.ShardIndex, c.ShardCount = i, n
			c.Parallelism = 2 // shards themselves run parallel
			shards[i] = Run(c)
		}
		// Merge in reverse order to prove the fold sorts by shard index.
		rev := make([]*Aggregate, n)
		for i := range shards {
			rev[n-1-i] = shards[i]
		}
		merged, err := MergeShards(rev)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scrubStacks(merged)
		if !reflect.DeepEqual(merged, whole) {
			if !reflect.DeepEqual(merged.Trials, whole.Trials) {
				t.Fatalf("n=%d: merged trials differ from unsharded", n)
			}
			if !reflect.DeepEqual(merged.Failed, whole.Failed) {
				t.Fatalf("n=%d: merged failures differ: %+v vs %+v", n, merged.Failed, whole.Failed)
			}
			if !reflect.DeepEqual(merged.Obs, whole.Obs) {
				t.Fatalf("n=%d: merged telemetry differs from unsharded", n)
			}
			t.Fatalf("n=%d: merged aggregate differs from unsharded", n)
		}
	}
}

// A shard must only compute the trials it owns: peer slots stay zero and
// contribute no samples.
func TestShardRunsOnlyOwnedTrials(t *testing.T) {
	c := tracedCfg()
	c.Trials = 5
	c.ShardIndex, c.ShardCount = 1, 2 // owns trials 1 and 3
	agg := Run(c)
	if len(agg.Trials) != 5 {
		t.Fatalf("shard aggregate must keep full trial vector, got %d slots", len(agg.Trials))
	}
	for ti, tr := range agg.Trials {
		owned := ti%2 == 1
		if owned && !tr.Completed {
			t.Fatalf("owned trial %d did not run", ti)
		}
		if !owned && (tr.Completed || tr.AvgBitrate != 0) {
			t.Fatalf("unowned trial %d has results", ti)
		}
	}
	if len(agg.BufRatios) != 2 || len(agg.Bitrates) != 2 {
		t.Fatalf("shard must sample only owned trials: %d bufratios", len(agg.BufRatios))
	}
}

func TestMergeShardsErrors(t *testing.T) {
	mk := func(index, count int) *Aggregate {
		c := tracedCfg()
		c.Trials = 4
		c.ShardIndex, c.ShardCount = index, count
		d := c.withDefaults()
		return &Aggregate{Config: d, Trials: make([]Trial, d.Trials)}
	}
	cases := []struct {
		name   string
		shards []*Aggregate
	}{
		{"empty", nil},
		{"nil-shard", []*Aggregate{nil}},
		{"missing-shard", []*Aggregate{mk(0, 2)}},
		{"duplicate-index", []*Aggregate{mk(0, 2), mk(0, 2)}},
		{"count-mismatch", []*Aggregate{mk(0, 2), mk(1, 3)}},
		{"unsharded-pair", []*Aggregate{mk(0, 0), mk(0, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := MergeShards(tc.shards); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}

	// Config drift between shards must be rejected.
	a, b := mk(0, 2), mk(1, 2)
	b.Config.Seed = 999
	if _, err := MergeShards([]*Aggregate{a, b}); err == nil {
		t.Fatal("config drift must fail the merge")
	}

	// A single unsharded aggregate merges to itself (normalized config).
	solo := tracedCfg()
	solo.Parallelism = 4
	agg := Run(solo)
	merged, err := MergeShards([]*Aggregate{agg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Trials, agg.Trials) {
		t.Fatal("identity merge changed trials")
	}
	if merged.Config.Parallelism != 0 {
		t.Fatal("identity merge must normalize the config")
	}
}

// RunPartial must deliver completions serialized and in strictly increasing
// trial order at any parallelism, and honor the skip predicate.
func TestRunPartialSkipAndOrder(t *testing.T) {
	c := tracedCfg()
	c.Trials = 8
	c.Parallelism = 4
	var mu sync.Mutex
	var order []int
	inCallback := false
	trials, fails := RunPartial(c, func(ti int) bool { return ti == 3 || ti == 6 }, // skip two
		func(ti int, tr Trial, te *TrialError) {
			mu.Lock()
			if inCallback {
				mu.Unlock()
				t.Error("TrialFunc reentered: delivery not serialized")
				return
			}
			inCallback = true
			mu.Unlock()
			order = append(order, ti)
			mu.Lock()
			inCallback = false
			mu.Unlock()
		})
	if want := []int{0, 1, 2, 4, 5, 7}; !reflect.DeepEqual(order, want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
	if len(trials) != 8 || len(fails) != 8 {
		t.Fatalf("result vectors must span all trials: %d/%d", len(trials), len(fails))
	}
	for _, ti := range []int{3, 6} {
		if trials[ti].Completed {
			t.Fatalf("skipped trial %d ran anyway", ti)
		}
	}
	// The partial results must equal the corresponding slots of a full run.
	full := Run(tracedCfgTrials(8))
	for _, ti := range []int{0, 1, 2, 4, 5, 7} {
		if !reflect.DeepEqual(trials[ti], full.Trials[ti]) {
			t.Fatalf("partial trial %d differs from full run", ti)
		}
	}
}

func tracedCfgTrials(n int) Config {
	c := tracedCfg()
	c.Trials = n
	return c
}

// RunStream retains nothing but still delivers every owned trial in order.
func TestRunStreamDiscards(t *testing.T) {
	c := tracedCfg()
	c.Trials = 6
	c.Parallelism = 3
	c.ShardIndex, c.ShardCount = 0, 2
	var got []int
	RunStream(c, nil, func(ti int, tr Trial, te *TrialError) {
		got = append(got, ti)
		if !tr.Completed {
			t.Errorf("trial %d delivered incomplete", ti)
		}
	})
	if want := []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("stream delivered %v, want %v", got, want)
	}
}

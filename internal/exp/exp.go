// Package exp is the experiment harness: it assembles the full stack —
// simulator, trace-shaped path, QUIC* pair, origin server, player — runs
// repeated trials with the §5 trace-shifting procedure, and aggregates the
// paper's metrics (bufRatio, average bitrate, per-segment QoE scores,
// skipped-data fractions).
package exp

import (
	"fmt"
	"sync"
	"time"

	"voxel/internal/abr"
	"voxel/internal/cc"
	"voxel/internal/crosstraffic"
	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/netem"
	"voxel/internal/player"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/quic"
	"voxel/internal/server"
	"voxel/internal/sim"
	"voxel/internal/stats"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// System identifies a full client configuration (ABR + transport mode), in
// the paper's terms.
type System string

// The systems compared across the evaluation.
const (
	SysBolaQ        System = "BOLA/Q"
	SysBolaQStar    System = "BOLA/Q*"
	SysMPCQ         System = "MPC/Q"
	SysMPCQStar     System = "MPC/Q*"
	SysTputQ        System = "Tput/Q"
	SysTputQStar    System = "Tput/Q*"
	SysBeta         System = "BETA"
	SysBolaSSIM     System = "BOLA-SSIM"
	SysVoxel        System = "VOXEL"
	SysVoxelRel     System = "VOXEL-rel"     // partial reliability disabled (Fig. 18c,d)
	SysVoxelUntuned System = "VOXEL-untuned" // safety 1.0 (Fig. 17)
)

// Config specifies one experiment cell.
type Config struct {
	Title          string
	System         System
	BufferSegments int
	Trace          *trace.Trace
	QueuePackets   int
	Trials         int
	Metric         qoe.Metric
	// Segments limits the clip length (0 = the full 75 segments).
	Segments int
	// CrossTraffic offers this much competing load (bps) through a fixed
	// LinkCapacity link instead of the trace (§5.1 cross-traffic trials).
	CrossTraffic float64
	LinkCapacity float64
	Seed         int64
	// MaxSimTime bounds one trial's virtual time (default 20× media).
	MaxSimTime time.Duration
	// CC selects the server-side congestion controller: "cubic" (default,
	// what the paper's QUIC* inherits) or "bbr" (the delay-based control
	// Appendix B names as future work).
	CC string
}

func (c Config) withDefaults() Config {
	if c.BufferSegments == 0 {
		c.BufferSegments = 7
	}
	if c.QueuePackets == 0 {
		c.QueuePackets = netem.DefaultQueuePackets
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Trial is one playback run's summary.
type Trial struct {
	BufRatio     float64
	AvgBitrate   float64
	MeanScore    float64
	Scores       []float64
	Skipped      float64
	Residual     float64
	Wasted       int64
	StartupDelay time.Duration
	Completed    bool
}

// Aggregate collects trials of one configuration.
type Aggregate struct {
	Config    Config
	Trials    []Trial
	BufRatios []float64
	Bitrates  []float64
	AllScores []float64
}

// BufRatioP90 returns the 90th percentile bufRatio across trials (the
// paper's headline statistic).
func (a *Aggregate) BufRatioP90() float64 { return stats.Percentile(a.BufRatios, 90) }

// BufRatioMean returns the mean bufRatio.
func (a *Aggregate) BufRatioMean() float64 { return stats.Mean(a.BufRatios) }

// BitrateMean returns the mean of per-trial average bitrates (bps).
func (a *Aggregate) BitrateMean() float64 { return stats.Mean(a.Bitrates) }

// ScoreCDF returns the CDF over all streamed segments' scores.
func (a *Aggregate) ScoreCDF() stats.CDF { return stats.NewCDF(a.AllScores) }

// MeanScore returns the mean segment score across trials.
func (a *Aggregate) MeanScore() float64 { return stats.Mean(a.AllScores) }

// newAlgorithm builds the ABR instance for a system.
func newAlgorithm(sys System) (abr.Algorithm, player.Mode, bool) {
	switch sys {
	case SysBolaQ:
		return abr.NewBola(), player.ModeReliable, false
	case SysBolaQStar:
		return abr.NewBola(), player.ModeOpaque, false
	case SysMPCQ:
		return abr.NewMPC(), player.ModeReliable, false
	case SysMPCQStar:
		return abr.NewMPC(), player.ModeOpaque, false
	case SysTputQ:
		return abr.NewTput(), player.ModeReliable, false
	case SysTputQStar:
		return abr.NewTput(), player.ModeOpaque, false
	case SysBeta:
		return abr.NewBeta(), player.ModeReliable, true
	case SysBolaSSIM:
		return abr.NewBolaSSIM(), player.ModeVoxel, false
	case SysVoxel:
		return abr.NewABRStar(), player.ModeVoxel, false
	case SysVoxelRel:
		return abr.NewABRStar(), player.ModeVoxelReliable, false
	case SysVoxelUntuned:
		return abr.NewABRStarSafety(1.0), player.ModeVoxel, false
	default:
		panic(fmt.Sprintf("exp: unknown system %q", sys))
	}
}

// manifest cache: prep is a one-time offline cost (§4.1), so share it.
var (
	manMu    sync.Mutex
	manCache = map[string]*dash.Manifest{}
)

// ManifestFor returns the enriched manifest for (title, metric, segments),
// cached across experiments.
func ManifestFor(title string, metric qoe.Metric, segments int) *dash.Manifest {
	key := fmt.Sprintf("%s/%v/%d", title, metric, segments)
	manMu.Lock()
	defer manMu.Unlock()
	if m, ok := manCache[key]; ok {
		return m
	}
	v := video.MustLoad(title)
	if segments > 0 && segments < v.Segments {
		v.Segments = segments
	}
	a := prep.NewAnalyzer()
	a.Metric = metric
	m := dash.Build(v, dash.BuildOptions{Voxel: true, PointsPerSegment: 12, Analyzer: a})
	manCache[key] = m
	return m
}

// Run executes all trials of a configuration.
func Run(cfg Config) *Aggregate {
	cfg = cfg.withDefaults()
	agg := &Aggregate{Config: cfg}
	man := ManifestFor(cfg.Title, cfg.Metric, cfg.Segments)
	dur := man.Duration()
	for i := 0; i < cfg.Trials; i++ {
		shift := time.Duration(0)
		if cfg.Trace != nil && cfg.Trials > 1 {
			shift = cfg.Trace.Duration() * time.Duration(i) / time.Duration(cfg.Trials)
		}
		tr := runTrial(cfg, man, shift, cfg.Seed+int64(i)*7919)
		agg.Trials = append(agg.Trials, tr)
		agg.BufRatios = append(agg.BufRatios, tr.BufRatio)
		agg.Bitrates = append(agg.Bitrates, tr.AvgBitrate)
		agg.AllScores = append(agg.AllScores, tr.Scores...)
		_ = dur
	}
	return agg
}

func runTrial(cfg Config, man *dash.Manifest, shift time.Duration, seed int64) Trial {
	s := sim.New(seed)

	var path *netem.Path
	var gen *crosstraffic.Generator
	if cfg.CrossTraffic > 0 {
		capacity := cfg.LinkCapacity
		if capacity <= 0 {
			capacity = 20e6
		}
		secs := int((man.Duration()*30)/time.Second) + 60
		path = netem.NewPath(s, trace.Constant("link", capacity, secs), cfg.QueuePackets)
		gen = crosstraffic.New(s, path, cfg.CrossTraffic)
		gen.Start()
	} else {
		tr := cfg.Trace
		if tr == nil {
			tr = trace.Constant("default", 10e6, 600)
		}
		path = netem.NewPath(s, tr.Shifted(shift), cfg.QueuePackets)
	}

	var serverCfg quic.Config
	if cfg.CC == "bbr" {
		serverCfg.Controller = cc.NewBBRLite()
	}
	clientConn, serverConn := quic.NewPair(s, path, quic.Config{}, serverCfg)
	if _, err := server.New(serverConn, man, httpsim.ServerOptions{}); err != nil {
		panic(err)
	}

	alg, mode, beta := newAlgorithm(cfg.System)
	v := video.MustLoad(cfg.Title)
	if cfg.Segments > 0 && cfg.Segments < v.Segments {
		v.Segments = cfg.Segments
	}
	pl := player.New(s, clientConn, v, man, player.Config{
		Algorithm:      alg,
		Mode:           mode,
		BufferSegments: cfg.BufferSegments,
		Metric:         cfg.Metric,
		BetaCandidates: beta,
	})
	pl.Run(nil)

	limit := cfg.MaxSimTime
	if limit == 0 {
		limit = 20 * man.Duration()
	}
	s.RunUntil(limit)
	if gen != nil {
		gen.Stop()
	}

	res := pl.Results()
	tr := Trial{
		BufRatio:     res.BufRatio(),
		AvgBitrate:   res.AvgBitrate(),
		MeanScore:    res.MeanScore(),
		Scores:       res.Scores(),
		Skipped:      res.SkippedFraction(),
		Residual:     res.ResidualLossFraction(),
		Wasted:       res.BytesWasted,
		StartupDelay: res.StartupDelay,
		Completed:    pl.Done(),
	}
	if !pl.Done() {
		// The run hit the safety limit: treat all remaining media time as
		// stall so wedged configurations show up as terrible, not absent.
		played := time.Duration(len(res.Segments)) * man.SegmentDuration
		missing := man.Duration() - played
		if missing > 0 {
			tr.BufRatio = (res.StallTime + missing).Seconds() / man.Duration().Seconds()
		}
	}
	return tr
}

// RunMatrix runs one configuration per system and returns them keyed by
// system — the shape most figures need.
func RunMatrix(base Config, systems []System) map[System]*Aggregate {
	out := make(map[System]*Aggregate, len(systems))
	for _, sys := range systems {
		c := base
		c.System = sys
		out[sys] = Run(c)
	}
	return out
}

// Package exp is the experiment harness: it assembles the full stack —
// simulator, trace-shaped path, QUIC* pair, origin server, player — runs
// repeated trials with the §5 trace-shifting procedure, and aggregates the
// paper's metrics (bufRatio, average bitrate, per-segment QoE scores,
// skipped-data fractions).
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"voxel/internal/abr"
	"voxel/internal/cc"
	"voxel/internal/crosstraffic"
	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/invariant"
	"voxel/internal/netem"
	"voxel/internal/obs"
	"voxel/internal/player"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/quic"
	"voxel/internal/server"
	"voxel/internal/sim"
	"voxel/internal/stats"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// System identifies a full client configuration (ABR + transport mode), in
// the paper's terms.
type System string

// The systems compared across the evaluation.
const (
	SysBolaQ        System = "BOLA/Q"
	SysBolaQStar    System = "BOLA/Q*"
	SysMPCQ         System = "MPC/Q"
	SysMPCQStar     System = "MPC/Q*"
	SysTputQ        System = "Tput/Q"
	SysTputQStar    System = "Tput/Q*"
	SysBeta         System = "BETA"
	SysBolaSSIM     System = "BOLA-SSIM"
	SysVoxel        System = "VOXEL"
	SysVoxelRel     System = "VOXEL-rel"     // partial reliability disabled (Fig. 18c,d)
	SysVoxelUntuned System = "VOXEL-untuned" // safety 1.0 (Fig. 17)
)

// Systems lists every system identifier newAlgorithm accepts, in the order
// the paper introduces them.
func Systems() []System {
	return []System{SysBolaQ, SysBolaQStar, SysMPCQ, SysMPCQStar, SysTputQ,
		SysTputQStar, SysBeta, SysBolaSSIM, SysVoxel, SysVoxelRel, SysVoxelUntuned}
}

// Config specifies one experiment cell.
type Config struct {
	Title          string
	System         System
	BufferSegments int
	Trace          *trace.Trace
	QueuePackets   int
	Trials         int
	Metric         qoe.Metric
	// Segments limits the clip length (0 = the full 75 segments).
	Segments int
	// CrossTraffic offers this much competing load (bps) through a fixed
	// LinkCapacity link instead of the trace (§5.1 cross-traffic trials).
	CrossTraffic float64
	LinkCapacity float64
	Seed         int64
	// MaxSimTime bounds one trial's virtual time (default 20× media).
	MaxSimTime time.Duration
	// CC selects the server-side congestion controller: "cubic" (default,
	// what the paper's QUIC* inherits) or "bbr" (the delay-based control
	// Appendix B names as future work).
	CC string
	// Impairment names a netem fault profile (clean / bursty / flaky-wifi /
	// handover-blackout) applied to the path. Any profile other than
	// clean/"" also arms the recovery stack: request deadlines and retries
	// in the HTTP client, idle timeout + keepalive + capped PTO backoff in
	// QUIC*. Empty keeps the trial bit-identical to the pre-impairment
	// harness.
	Impairment string
	// Failover adds a second origin server on its own path and blackholes
	// the primary path permanently at FailoverKillTime, exercising
	// idle-timeout detection and client failover mid-stream.
	Failover bool
	// Parallelism is the number of worker goroutines trials fan out across
	// (and, via RunMatrix, (system, trial) pairs). 0 and 1 run sequentially;
	// negative means GOMAXPROCS. Each trial owns its own simulated world, and
	// results are written by trial index, so aggregates are bit-identical to
	// the sequential output for the same seed at any setting.
	Parallelism int
	// Telemetry attaches a per-trial obs.Scope to every layer of the stack
	// and collects the per-trial reports into Aggregate.Obs. Recording never
	// schedules simulator events, so the metrics of a telemetered run are
	// bit-identical to an untelemetered one.
	Telemetry bool
	// TimelineCap overrides the per-trial event ring capacity
	// (obs.DefaultTimelineCap when zero). Only meaningful with Telemetry.
	TimelineCap int
	// Interrupt, when non-nil, aborts the run once the channel is closed
	// (e.g. a context's Done channel). Pending trials are skipped and left
	// zero-valued; trials already in flight notice the close at periodic
	// virtual-time checkpoints and return early with Completed=false, so
	// even a blackholed or unbounded trial cannot outlive its caller.
	Interrupt <-chan struct{}
	// Sessions is the number of concurrent video sessions per trial (swarm
	// mode). Each session is a full independent stack — QUIC* connection
	// pair, origin server, HTTP client, player, ABR — and all of them are
	// multiplexed through the one shared bottleneck path, optionally
	// alongside cross traffic. 0 and 1 both run a single session and are
	// bit-identical to each other. Per-session summaries land in
	// Trial.Sessions along with the trial's Jain fairness index and
	// bottleneck utilization.
	Sessions int
	// Invariants arms the cross-layer invariant checker (internal/invariant)
	// inside every trial's world: QUIC* packet and byte conservation,
	// reliable-stream contiguity, non-negative player buffer, monotone sim
	// clock, exactly-one Datagram.Done fate. A violation fails that trial
	// with a typed TrialError naming the broken rule; other trials keep
	// running. Off by default, and a disabled checker costs nothing on the
	// hot paths (nil receiver, one branch), so golden outputs are unchanged.
	Invariants bool
	// WatchdogWall bounds one trial's wall-clock runtime; a trial that
	// exceeds it fails with rule "watchdog.wall-budget" instead of hanging
	// the sweep. 0 means no wall budget.
	WatchdogWall time.Duration
	// WatchdogEvents bounds one trial's executed simulator events; a trial
	// that exceeds it fails with rule "watchdog.event-budget". This is the
	// budget that catches a zero-delay event storm, which burns events
	// without ever advancing virtual time. 0 means no event budget.
	WatchdogEvents uint64
	// Inject schedules a deliberate fault inside the trial world — "panic",
	// "invariant", or "spin", optionally suffixed "@trial" to target one
	// trial index — to exercise the failure pipeline end to end. Used by
	// tests and committed repro artifacts; empty in normal operation.
	Inject string
	// ShardIndex/ShardCount partition the trial set across processes:
	// shard i of n owns the trials whose index ≡ i (mod n) and skips the
	// rest, leaving their Trial slots zero-valued. Per-trial seeds and
	// trace shifts depend only on the trial index and the full Trials
	// count, so every shard computes exactly the trials the unsharded run
	// would, and MergeShards folds n shard aggregates back into an
	// aggregate bit-identical to the single-process run. ShardCount 0 (or
	// 1) means unsharded.
	ShardIndex int
	ShardCount int
}

// MaxSessions caps Config.Sessions: each session costs a full stack, and a
// larger swarm is almost certainly a misconfigured flag.
const MaxSessions = 512

func (c Config) withDefaults() Config {
	if c.System == "" {
		c.System = SysVoxel
	}
	if c.BufferSegments == 0 {
		c.BufferSegments = 7
	}
	if c.QueuePackets == 0 {
		c.QueuePackets = netem.DefaultQueuePackets
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the user-facing identifier fields — title, system, and
// impairment profile — so CLIs can reject a bad flag with a message instead
// of a panic deep inside a trial.
func (c Config) Validate() error {
	if c.Title != "" {
		if _, err := video.Load(c.Title); err != nil {
			return fmt.Errorf("exp: %v (have %v)", err, video.AllTitles())
		}
	}
	if c.System != "" {
		known := false
		for _, s := range Systems() {
			if s == c.System {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("exp: unknown system %q (have %v)", c.System, Systems())
		}
	}
	if _, _, err := netem.NewProfile(c.Impairment); err != nil {
		return err
	}
	if c.Sessions < 0 || c.Sessions > MaxSessions {
		return fmt.Errorf("exp: sessions %d out of range [0, %d]", c.Sessions, MaxSessions)
	}
	if _, _, err := parseInject(c.Inject); err != nil {
		return err
	}
	if c.ShardCount < 0 {
		return fmt.Errorf("exp: shard count %d is negative", c.ShardCount)
	}
	if c.ShardCount == 0 && c.ShardIndex != 0 {
		return fmt.Errorf("exp: shard index %d without a shard count", c.ShardIndex)
	}
	if c.ShardCount > 0 && (c.ShardIndex < 0 || c.ShardIndex >= c.ShardCount) {
		return fmt.Errorf("exp: shard index %d out of range [0, %d)", c.ShardIndex, c.ShardCount)
	}
	return nil
}

// Owns reports whether this config's shard runs the given trial. An
// unsharded config owns every trial.
func (c Config) Owns(trial int) bool {
	if c.ShardCount <= 1 {
		return true
	}
	return trial%c.ShardCount == c.ShardIndex
}

// WithDefaults returns the config with the experiment layer's uniform
// defaults applied (system, buffer, queue, trials, seed) — the exact config
// an Aggregate and its TrialErrors are stamped with. Exported so the sweep
// engine can fingerprint and re-stamp checkpointed state consistently.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// sessions resolves the Sessions knob (0 and 1 both mean one session).
func (c Config) sessions() int {
	if c.Sessions <= 1 {
		return 1
	}
	return c.Sessions
}

// workers resolves the Parallelism knob to a concrete worker count.
func (c Config) workers() int {
	if c.Parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Parallelism == 0 {
		return 1
	}
	return c.Parallelism
}

// FailoverKillTime is when the Failover scenario blackholes the primary
// path for good.
const FailoverKillTime = 30 * time.Second

// SessionResult is one session's summary within a trial. Single-session
// trials have exactly one (identical to the trial-level fields); swarm
// trials have Config.Sessions of them, and the fairness metrics are
// computed over this unit.
type SessionResult struct {
	Session      int
	BufRatio     float64
	AvgBitrate   float64
	MeanScore    float64
	Scores       []float64
	Skipped      float64
	Residual     float64
	Wasted       int64
	StartupDelay time.Duration
	StallTime    time.Duration
	Completed    bool
	FailedReqs   int
}

// Trial is one playback run's summary. In swarm mode (Config.Sessions > 1)
// the scalar metrics fold the per-session results: means for the
// ratio/rate/score fields, sums for the byte and failure counters, and
// Completed only when every session finished. Scores concatenates the
// sessions' per-segment scores in session order.
type Trial struct {
	BufRatio     float64
	AvgBitrate   float64
	MeanScore    float64
	Scores       []float64
	Skipped      float64
	Residual     float64
	Wasted       int64
	StartupDelay time.Duration
	Completed    bool
	FailedReqs   int // requests abandoned after deadline/retry/failover
	// Sessions holds the per-session summaries (length max(1, Sessions)).
	Sessions []SessionResult
	// Jain is Jain's fairness index over the sessions' delivered bitrates:
	// 1.0 means a perfectly even split of the bottleneck, 1/n means one
	// session starved the rest. Always 1.0 for a single session.
	Jain float64
	// Utilization is the busy fraction of the shared bottleneck link from
	// trial start until the last session finished (video plus cross
	// traffic).
	Utilization float64
	// Obs is the first session's telemetry report (nil when
	// Config.Telemetry is off); SessionObs holds every session's report.
	Obs        *obs.TrialReport
	SessionObs []*obs.TrialReport
	// Failed marks a trial that died (panic, invariant violation, watchdog
	// budget) before producing results; the rest of the struct is zero and
	// the TrialError lives in Aggregate.Failed.
	Failed bool
}

// Aggregate collects trials of one configuration.
type Aggregate struct {
	Config    Config
	Trials    []Trial
	BufRatios []float64
	Bitrates  []float64
	AllScores []float64
	// Obs merges the per-trial telemetry (nil when Config.Telemetry is off).
	Obs *obs.Report
	// Failed collects the trials that died, in trial-index order. A failed
	// trial keeps its (zero-valued, Failed-marked) Trial slot but contributes
	// no samples to BufRatios/Bitrates/AllScores, so survivors' statistics
	// are unpolluted.
	Failed []TrialError
}

// BufRatioP90 returns the 90th percentile bufRatio across trials (the
// paper's headline statistic).
func (a *Aggregate) BufRatioP90() float64 { return stats.Percentile(a.BufRatios, 90) }

// BufRatioMean returns the mean bufRatio.
func (a *Aggregate) BufRatioMean() float64 { return stats.Mean(a.BufRatios) }

// BitrateMean returns the mean of per-trial average bitrates (bps).
func (a *Aggregate) BitrateMean() float64 { return stats.Mean(a.Bitrates) }

// ScoreCDF returns the CDF over all streamed segments' scores.
func (a *Aggregate) ScoreCDF() stats.CDF { return stats.NewCDF(a.AllScores) }

// MeanScore returns the mean segment score across trials.
func (a *Aggregate) MeanScore() float64 { return stats.Mean(a.AllScores) }

// SessionScores returns the per-session mean-QoE vector in (trial,
// session) order — the unit the swarm fairness summaries quantify over.
func (a *Aggregate) SessionScores() []float64 {
	var out []float64
	for _, tr := range a.Trials {
		for _, sr := range tr.Sessions {
			out = append(out, sr.MeanScore)
		}
	}
	return out
}

// SessionBitrates returns the per-session delivered bitrates (bps) in
// (trial, session) order.
func (a *Aggregate) SessionBitrates() []float64 {
	var out []float64
	for _, tr := range a.Trials {
		for _, sr := range tr.Sessions {
			out = append(out, sr.AvgBitrate)
		}
	}
	return out
}

// SessionQoEP5 returns the 5th-percentile per-session mean QoE — the
// "worst user" statistic a shared bottleneck is judged by.
func (a *Aggregate) SessionQoEP5() float64 {
	return stats.Percentile(a.SessionScores(), 5)
}

// JainMean returns the mean per-trial Jain fairness index over delivered
// bitrate.
func (a *Aggregate) JainMean() float64 {
	xs := make([]float64, 0, len(a.Trials))
	for _, tr := range a.Trials {
		xs = append(xs, tr.Jain)
	}
	return stats.Mean(xs)
}

// UtilizationMean returns the mean bottleneck busy fraction across trials.
func (a *Aggregate) UtilizationMean() float64 {
	xs := make([]float64, 0, len(a.Trials))
	for _, tr := range a.Trials {
		xs = append(xs, tr.Utilization)
	}
	return stats.Mean(xs)
}

// TotalStall sums rebuffering time over every session of every trial.
func (a *Aggregate) TotalStall() time.Duration {
	var d time.Duration
	for _, tr := range a.Trials {
		for _, sr := range tr.Sessions {
			d += sr.StallTime
		}
	}
	return d
}

// newAlgorithm builds the ABR instance for a system.
func newAlgorithm(sys System) (abr.Algorithm, player.Mode, bool) {
	switch sys {
	case SysBolaQ:
		return abr.NewBola(), player.ModeReliable, false
	case SysBolaQStar:
		return abr.NewBola(), player.ModeOpaque, false
	case SysMPCQ:
		return abr.NewMPC(), player.ModeReliable, false
	case SysMPCQStar:
		return abr.NewMPC(), player.ModeOpaque, false
	case SysTputQ:
		return abr.NewTput(), player.ModeReliable, false
	case SysTputQStar:
		return abr.NewTput(), player.ModeOpaque, false
	case SysBeta:
		return abr.NewBeta(), player.ModeReliable, true
	case SysBolaSSIM:
		return abr.NewBolaSSIM(), player.ModeVoxel, false
	case SysVoxel:
		return abr.NewABRStar(), player.ModeVoxel, false
	case SysVoxelRel:
		return abr.NewABRStar(), player.ModeVoxelReliable, false
	case SysVoxelUntuned:
		return abr.NewABRStarSafety(1.0), player.ModeVoxel, false
	default:
		panic(fmt.Sprintf("exp: unknown system %q", sys))
	}
}

// manifest cache: prep is a one-time offline cost (§4.1), so share it. Each
// key carries its own sync.Once so concurrent trials only wait on same-key
// builds — a build for (BBB, SSIM) never blocks a cache hit for (ToS, VMAF).
type manEntry struct {
	once sync.Once
	m    *dash.Manifest
}

var (
	manMu    sync.Mutex
	manCache = map[string]*manEntry{}
)

// ManifestFor returns the enriched manifest for (title, metric, segments),
// cached across experiments. Concurrent callers with the same key share one
// build; callers with different keys never block each other.
func ManifestFor(title string, metric qoe.Metric, segments int) *dash.Manifest {
	key := fmt.Sprintf("%s/%v/%d", title, metric, segments)
	manMu.Lock()
	e, ok := manCache[key]
	if !ok {
		e = &manEntry{}
		manCache[key] = e
	}
	manMu.Unlock()
	e.once.Do(func() {
		v := video.MustLoad(title)
		if segments > 0 && segments < v.Segments {
			v.Segments = segments
		}
		a := prep.NewAnalyzer()
		a.Metric = metric
		e.m = dash.Build(v, dash.BuildOptions{Voxel: true, PointsPerSegment: 12, Analyzer: a})
	})
	return e.m
}

// Run executes all trials of a configuration, fanning them out across
// cfg.Parallelism workers. Trials are independent by construction (each owns
// its own sim.New world), and results land by trial index, so the aggregate
// is bit-identical to a sequential run. A sharded config (ShardCount > 1)
// runs only its owned trials; the other slots stay zero-valued and the
// aggregate's samples cover the owned trials only.
func Run(cfg Config) *Aggregate {
	return runConfigs([]Config{cfg}, cfg.workers())[0]
}

// TrialFunc observes one completed trial: its index, its result, and (for a
// failed trial) the structured error. The harness delivers completions in
// strictly increasing trial order and one at a time, regardless of how many
// workers run — so a checkpoint writer or a streaming fold needs no
// reordering or locking of its own, and order-sensitive accumulations
// (float sums) stay deterministic at any parallelism.
type TrialFunc func(trial int, tr Trial, te *TrialError)

// RunPartial runs the trials of cfg that the config's shard owns and that
// skip does not exclude (nil skips nothing), invoking fn (may be nil) as
// each completes, in trial order. It returns the raw per-trial results as
// full-length slices — skipped and unowned slots are zero/nil — ready for
// the caller to fill from a checkpoint and hand to Assemble. This is the
// resumable core of exp.Run: Run == Assemble(cfg, RunPartial(cfg, nil, nil)).
func RunPartial(cfg Config, skip func(trial int) bool, fn TrialFunc) ([]Trial, []*TrialError) {
	trials, fails := runPlans([]plan{{cfg: cfg, skip: skip, onTrial: fn}}, cfg.workers())
	return trials[0], fails[0]
}

// RunStream runs the owned, unskipped trials of cfg without retaining any
// per-trial state: each result is delivered exactly once to fn (in trial
// order, serialized) and then dropped, so memory stays bounded no matter
// how many trials the sweep has. The caller folds results into mergeable
// summaries (see internal/sweep's streaming mode).
func RunStream(cfg Config, skip func(trial int) bool, fn TrialFunc) {
	runPlans([]plan{{cfg: cfg, skip: skip, onTrial: fn, discard: true}}, cfg.workers())
}

// TrialSeed derives trial j's world seed from the config seed. Exported so
// the chaos shrinker can collapse a multi-trial failure to a single-trial
// artifact that builds the exact same world.
func TrialSeed(base int64, trial int) int64 { return base + int64(trial)*7919 }

// job addresses one (config, trial) cell in a batch.
type job struct{ cfg, trial int }

// plan is one config's execution request within a batch: which trials to
// skip beyond shard ownership, a completion callback, and whether to retain
// per-trial results.
type plan struct {
	cfg     Config
	skip    func(int) bool // nil = skip nothing beyond shard ownership
	onTrial TrialFunc      // nil = no callback
	discard bool           // do not retain results (streaming mode)
}

// delivery sequences one plan's completion callbacks into trial order. Jobs
// are dispatched to the pool in increasing trial order, so at most
// `workers` completions can ever be buffered ahead of the cursor — the
// reorder window is bounded by the pool, not the sweep size.
type delivery struct {
	order []int // planned trial indices, increasing
	next  int   // cursor into order
	ready map[int]deliverable
}

type deliverable struct {
	tr      Trial
	te      *TrialError
	skipped bool // interrupted before running; advance past silently
}

// runConfigs executes plain configs (no skip/callback), the RunMatrix path.
func runConfigs(cfgs []Config, workers int) []*Aggregate {
	plans := make([]plan, len(cfgs))
	for i, c := range cfgs {
		plans[i] = plan{cfg: c}
	}
	trials, fails := runPlans(plans, workers)
	out := make([]*Aggregate, len(cfgs))
	for ci := range cfgs {
		out[ci] = Assemble(cfgs[ci], trials[ci], fails[ci])
	}
	return out
}

// runPlans executes every planned trial of every plan through one shared
// worker pool, so RunMatrix saturates the pool even when individual configs
// have few trials. Trial results are written into per-plan slices by index
// (nil slices for discarding plans); completion callbacks fire in trial
// order under one lock.
func runPlans(plans []plan, workers int) ([][]Trial, [][]*TrialError) {
	for i := range plans {
		plans[i].cfg = plans[i].cfg.withDefaults()
	}
	trials := make([][]Trial, len(plans))
	fails := make([][]*TrialError, len(plans))
	deliver := make([]*delivery, len(plans))
	var jobs []job
	for pi, p := range plans {
		if !p.discard {
			trials[pi] = make([]Trial, p.cfg.Trials)
			fails[pi] = make([]*TrialError, p.cfg.Trials)
		}
		d := &delivery{ready: map[int]deliverable{}}
		for ti := 0; ti < p.cfg.Trials; ti++ {
			if !p.cfg.Owns(ti) || (p.skip != nil && p.skip(ti)) {
				continue
			}
			jobs = append(jobs, job{pi, ti})
			d.order = append(d.order, ti)
		}
		deliver[pi] = d
	}
	interrupted := func(c Config) bool {
		if c.Interrupt == nil {
			return false
		}
		select {
		case <-c.Interrupt:
			return true
		default:
			return false
		}
	}
	// deliverMu serializes the in-order callback drain across workers; the
	// callback itself runs under it, which is what makes TrialFunc's
	// "serialized, in trial order" contract hold.
	var deliverMu sync.Mutex
	complete := func(j job, dl deliverable) {
		p := plans[j.cfg]
		if !p.discard {
			trials[j.cfg][j.trial] = dl.tr
			fails[j.cfg][j.trial] = dl.te
		}
		if p.onTrial == nil {
			return
		}
		deliverMu.Lock()
		defer deliverMu.Unlock()
		d := deliver[j.cfg]
		d.ready[j.trial] = dl
		for d.next < len(d.order) {
			ti := d.order[d.next]
			r, ok := d.ready[ti]
			if !ok {
				break
			}
			delete(d.ready, ti)
			d.next++
			if !r.skipped {
				p.onTrial(ti, r.tr, r.te)
			}
		}
	}
	runOne := func(j job) {
		c := plans[j.cfg].cfg
		if interrupted(c) {
			complete(j, deliverable{skipped: true})
			return
		}
		man := ManifestFor(c.Title, c.Metric, c.Segments)
		shift := time.Duration(0)
		if c.Trace != nil && c.Trials > 1 {
			shift = c.Trace.Duration() * time.Duration(j.trial) / time.Duration(c.Trials)
		}
		tr, te := runTrial(c, man, shift, TrialSeed(c.Seed, j.trial), j.trial)
		complete(j, deliverable{tr: tr, te: te})
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			runOne(j)
		}
	} else {
		ch := make(chan job)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					runOne(j)
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
	}
	return trials, fails
}

// Assemble folds raw per-trial results into an Aggregate, exactly the way a
// live run does: samples in trial order (owned trials only), failures in
// trial order, telemetry merged in (trial, session) order. It is a pure
// deterministic function of its inputs, which is what makes sharded,
// checkpointed, and resumed sweeps reproduce a single-process aggregate
// bit for bit — the raw trial results are identical, and this fold is the
// same code path. cfg is defaulted before stamping.
func Assemble(cfg Config, trials []Trial, fails []*TrialError) *Aggregate {
	return assemble(cfg, trials, fails, true)
}

// AssembleQuiet is Assemble without the FailureHook side effect, for
// callers that re-fold results whose failures were already reported when
// they originally ran (checkpoint restore, shard merge).
func AssembleQuiet(cfg Config, trials []Trial, fails []*TrialError) *Aggregate {
	return assemble(cfg, trials, fails, false)
}

func assemble(cfg Config, trials []Trial, fails []*TrialError, fireHook bool) *Aggregate {
	c := cfg.withDefaults()
	agg := &Aggregate{Config: c, Trials: trials}
	for ti, tr := range trials {
		if !c.Owns(ti) {
			continue // an unowned slot is absent, not a zero sample
		}
		if ti < len(fails) && fails[ti] != nil {
			// Aggregation runs on one goroutine after the pool drained, so
			// failures surface in deterministic (config, trial) order and
			// the hook needs no synchronization of its own.
			agg.Failed = append(agg.Failed, *fails[ti])
			if fireHook && FailureHook != nil {
				FailureHook(fails[ti])
			}
			continue
		}
		agg.BufRatios = append(agg.BufRatios, tr.BufRatio)
		agg.Bitrates = append(agg.Bitrates, tr.AvgBitrate)
		agg.AllScores = append(agg.AllScores, tr.Scores...)
	}
	if c.Telemetry {
		cells := make([][]*obs.TrialReport, len(trials))
		for ti := range trials {
			if !c.Owns(ti) {
				continue
			}
			cells[ti] = trials[ti].SessionObs
			if ti < len(fails) && fails[ti] != nil && cells[ti] == nil {
				// A failed trial never snapshotted its scopes; substitute an
				// explicit failed-marker report so exports keep one entry per
				// trial instead of silently skipping the slot.
				cells[ti] = []*obs.TrialReport{obs.FailedTrialReport(fails[ti].Clock)}
			}
		}
		agg.Obs = obs.MergeSessions(cells)
		if c.ShardCount > 1 {
			// Tag per-shard telemetry so shard export files are
			// self-describing; merged/unsharded reports stay untagged and
			// their exports keep the canonical byte format.
			agg.Obs.ShardTag = c.ShardIndex
		}
	}
	return agg
}

// buildPath assembles one server↔client path per the config's shaping
// knobs. Cross-traffic generation (primary path only) is the caller's job.
func buildPath(s *sim.Sim, cfg Config, man *dash.Manifest, shift time.Duration) *netem.Path {
	if cfg.CrossTraffic > 0 {
		capacity := cfg.LinkCapacity
		if capacity <= 0 {
			capacity = 20e6
		}
		secs := int((man.Duration()*30)/time.Second) + 60
		return netem.NewPath(s, trace.Constant("link", capacity, secs), cfg.QueuePackets)
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.Constant("default", 10e6, 600)
	}
	return netem.NewPath(s, tr.Shifted(shift), cfg.QueuePackets)
}

// interruptCheckpoint is how often (in virtual time) runTrial comes up for
// air to poll Config.Interrupt while the event loop runs. Slicing RunUntil
// into checkpoints executes the exact same events in the same order as one
// call, so results stay bit-identical; it only bounds how much virtual
// time a cancellation can lag.
const interruptCheckpoint = time.Second

// runTrial executes one trial world. A failure — recovered panic, invariant
// violation, setup error, or watchdog budget — returns a zero Trial (marked
// Failed) plus the TrialError; the caller's other trials are untouched.
func runTrial(cfg Config, man *dash.Manifest, shift time.Duration, seed int64, trial int) (tr Trial, terr *TrialError) {
	tc := &trialCtx{cfg: cfg, trial: trial, seed: seed, session: -1}
	s := sim.New(seed)
	defer func() {
		if r := recover(); r != nil {
			tr = Trial{Failed: true}
			terr = tc.fromPanic(r, time.Duration(s.Now()))
		}
	}()
	if cfg.Invariants {
		s.SetChecker(invariant.New())
	}
	n := cfg.sessions()

	// One scope per session: each trial's world is single-threaded, so
	// event sequence numbers are deterministic even under parallel trial
	// fan-out, and per-session scopes keep swarm telemetry attributable.
	scopes := make([]*obs.Scope, n)
	if cfg.Telemetry {
		for i := range scopes {
			scopes[i] = obs.NewScope(func() time.Duration { return time.Duration(s.Now()) },
				obs.Options{TimelineCap: cfg.TimelineCap})
		}
	}

	// All sessions share this one path: its downlink is the contended
	// bottleneck queue the swarm (and any cross traffic) fights over.
	path := buildPath(s, cfg, man, shift)
	var gen *crosstraffic.Generator
	if cfg.CrossTraffic > 0 {
		gen = crosstraffic.New(s, path, cfg.CrossTraffic)
		gen.Start()
	}

	impaired := cfg.Impairment != "" && cfg.Impairment != netem.ProfileClean
	recovered := impaired || cfg.Failover

	if cfg.Failover {
		// Primary path goes dark for good mid-stream; profile impairments
		// (the client's flaky last mile) ride on top in both directions.
		kill := netem.Blackout{Windows: []netem.Window{{Start: FailoverKillTime, End: 1 << 62}}}
		down, up, err := netem.NewProfile(cfg.Impairment)
		if err != nil {
			return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "error", "impairment profile: %v", err)
		}
		dc, uc := netem.Chain{kill}, netem.Chain{kill}
		if down != nil {
			dc = append(dc, down)
		}
		if up != nil {
			uc = append(uc, up)
		}
		path.Down.Impair(dc, seed+0x1000)
		path.Up.Impair(uc, seed+0x1000+0x9E3779B9)
	} else if impaired {
		if err := netem.ApplyProfile(path, cfg.Impairment, seed+0x1000); err != nil {
			return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "error", "impairment profile: %v", err)
		}
	}

	v := video.MustLoad(cfg.Title)
	if cfg.Segments > 0 && cfg.Segments < v.Segments {
		v.Segments = cfg.Segments
	}

	// Assemble one full stack per session over the shared path. Session
	// construction order is the determinism contract: a single-session
	// swarm builds the world in exactly the sequence the classic path did.
	players := make([]*player.Player, n)
	running := n
	var lastDone, busyAtLastDone sim.Time
	for si := 0; si < n; si++ {
		tc.session = si
		scope := scopes[si]
		var clientCfg, serverCfg quic.Config
		clientCfg.Obs = scope
		serverCfg.Obs = scope
		if cfg.CC == "bbr" {
			serverCfg.Controller = cc.NewBBRLite() // controllers hold per-conn state
		}
		if recovered {
			// Survive outages instead of wedging: probe at a bounded cadence
			// through blackouts, keep quiet-but-healthy connections alive, and
			// tear down only after a long silence. The failover scenario uses a
			// short idle timeout on the primary so origin death is detected
			// within seconds.
			clientCfg.IdleTimeout = 30 * time.Second
			clientCfg.KeepAlive = true
			clientCfg.PTOBackoffCap = 6
			serverCfg.IdleTimeout = 60 * time.Second
			serverCfg.PTOBackoffCap = 6
			if cfg.Failover {
				clientCfg.IdleTimeout = 2 * time.Second
			}
		}

		clientConn, serverConn := quic.NewPair(s, path, clientCfg, serverCfg)
		if _, err := server.New(serverConn, man, httpsim.ServerOptions{}); err != nil {
			return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "error", "origin server: %v", err)
		}

		alg, mode, beta := newAlgorithm(cfg.System)
		alg = abr.Instrument(alg, scope)
		pcfg := player.Config{
			Algorithm:      alg,
			Mode:           mode,
			BufferSegments: cfg.BufferSegments,
			Metric:         cfg.Metric,
			BetaCandidates: beta,
			Obs:            scope,
		}
		if recovered {
			pcfg.Recovery = httpsim.Recovery{
				RequestTimeout: 4 * time.Second,
				Retry: httpsim.RetryPolicy{
					MaxAttempts: 4,
					BaseDelay:   250 * time.Millisecond,
					MaxDelay:    4 * time.Second,
					Jitter:      0.25,
				},
			}
		}
		if cfg.Failover {
			// Second origin on its own path (same shaping and, if set, the
			// same impairment profile with independent fault schedules — the
			// backup origin still sits behind the client's last mile). Each
			// swarm session gets its own backup origin.
			path2 := buildPath(s, cfg, man, shift)
			if impaired {
				if err := netem.ApplyProfile(path2, cfg.Impairment, seed+0x2000+int64(si)*0x9E37); err != nil {
					return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "error", "backup impairment profile: %v", err)
				}
			}
			c2cfg := clientCfg
			c2cfg.IdleTimeout = 30 * time.Second
			s2cfg := serverCfg
			if cfg.CC == "bbr" {
				s2cfg.Controller = cc.NewBBRLite()
			}
			clientConn2, serverConn2 := quic.NewPair(s, path2, c2cfg, s2cfg)
			if _, err := server.New(serverConn2, man, httpsim.ServerOptions{}); err != nil {
				return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "error", "backup origin server: %v", err)
			}
			pcfg.FailoverConns = []*quic.Conn{clientConn2}
		}
		pl := player.New(s, clientConn, v, man, pcfg)
		pl.Run(func() {
			// Snapshot the bottleneck's busy time whenever a session drains
			// its buffer; the last snapshot bounds the utilization window so
			// post-playback cross traffic doesn't dilute the figure.
			running--
			lastDone = s.Now()
			busyAtLastDone = path.Down.Stats().BusyTime
		})
		players[si] = pl
	}
	tc.session = -1 // construction done; failures below are world-wide

	if kind, ok := cfg.injectFor(trial); ok {
		switch kind {
		case injectPanic:
			s.Schedule(sim.Time(injectTime), func() {
				panic(fmt.Sprintf("injected fault (trial %d, seed %d)", trial, seed))
			})
		case injectInvariant:
			s.Schedule(sim.Time(injectTime), func() {
				panic(&invariant.Violation{Layer: "exp", Rule: "exp.injected-fault",
					Detail: fmt.Sprintf("deliberate violation (trial %d, seed %d)", trial, seed)})
			})
		case injectSpin:
			// Zero-delay event storm: virtual time freezes while the event
			// count races — exactly the failure mode only the watchdog's
			// event budget can catch.
			var spin func()
			spin = func() { s.Schedule(0, spin) }
			s.Schedule(sim.Time(injectTime), spin)
		}
	}

	limit := cfg.MaxSimTime
	if limit == 0 {
		limit = 20 * man.Duration()
	}
	watchdog := cfg.WatchdogWall > 0 || cfg.WatchdogEvents > 0
	if cfg.Interrupt == nil && !watchdog {
		s.RunUntil(limit)
	} else {
		// Same event execution as one RunUntil(limit), sliced so a close of
		// the Interrupt channel — or a breached watchdog budget — stops the
		// trial mid-flight instead of only between trials.
		// The !s.Halted() guard matters since RunUntil stopped advancing the
		// clock on a halted simulator: without it a mid-trial Halt would pin
		// Now below the next checkpoint and spin this loop forever. Nothing
		// in exp calls Halt today, so behavior is unchanged — this is
		// insurance for session code that might.
		var wallStart time.Time
		if cfg.WatchdogWall > 0 {
			//voxel:det-ok the wall watchdog measures real elapsed time by design; it never feeds trial results
			wallStart = time.Now()
		}
		startExec := s.Executed()
		aborted := false
		for s.Now() < limit && !aborted && !s.Halted() && s.Pending() > 0 {
			next := s.Now() + interruptCheckpoint
			if next > limit {
				next = limit
			}
			if !watchdog {
				s.RunUntil(next)
			} else {
				// Cap the slice's event budget so even a zero-delay storm —
				// which RunUntil would never return from — yields control here
				// every few million events for the budget checks below.
				slice := uint64(watchdogSliceEvents)
				if cfg.WatchdogEvents > 0 {
					if rem := cfg.WatchdogEvents - (s.Executed() - startExec); rem < slice {
						slice = rem
					}
				}
				s.RunUntilBudget(next, slice)
				if cfg.WatchdogEvents > 0 && s.Executed()-startExec >= cfg.WatchdogEvents {
					return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "watchdog.event-budget",
						"trial executed %d events (budget %d) at virtual %v",
						s.Executed()-startExec, cfg.WatchdogEvents, time.Duration(s.Now()))
				}
				if cfg.WatchdogWall > 0 {
					//voxel:det-ok the wall watchdog measures real elapsed time by design; it never feeds trial results
					if elapsed := time.Since(wallStart); elapsed > cfg.WatchdogWall {
						return Trial{Failed: true}, tc.errf(time.Duration(s.Now()), "watchdog.wall-budget",
							"trial ran %v wall (budget %v) at virtual %v",
							elapsed.Round(time.Millisecond), cfg.WatchdogWall, time.Duration(s.Now()))
					}
				}
			}
			if cfg.Interrupt != nil {
				select {
				case <-cfg.Interrupt:
					aborted = true
				default:
				}
			}
		}
		if !aborted && !s.Halted() && s.Now() < limit {
			s.RunUntil(limit) // queue drained early: fast-forward the clock
		}
	}
	if gen != nil {
		gen.Stop()
	}
	if running > 0 {
		// Some session never finished (safety limit or interrupt): the
		// utilization window extends to wherever the run stopped.
		lastDone = s.Now()
		busyAtLastDone = path.Down.Stats().BusyTime
	}

	sessions := make([]SessionResult, n)
	for si, pl := range players {
		res := pl.Results()
		sr := SessionResult{
			Session:      si,
			BufRatio:     res.BufRatio(),
			AvgBitrate:   res.AvgBitrate(),
			MeanScore:    res.MeanScore(),
			Scores:       res.Scores(),
			Skipped:      res.SkippedFraction(),
			Residual:     res.ResidualLossFraction(),
			Wasted:       res.BytesWasted,
			StartupDelay: res.StartupDelay,
			StallTime:    res.StallTime,
			Completed:    pl.Done(),
			FailedReqs:   res.FailedRequests,
		}
		if !pl.Done() {
			// The run hit the safety limit: treat all remaining media time as
			// stall so wedged configurations show up as terrible, not absent.
			played := time.Duration(len(res.Segments)) * man.SegmentDuration
			missing := man.Duration() - played
			if missing > 0 {
				sr.BufRatio = (res.StallTime + missing).Seconds() / man.Duration().Seconds()
			}
		}
		sessions[si] = sr
	}
	tr = foldSessions(sessions)
	if lastDone > 0 {
		tr.Utilization = float64(busyAtLastDone) / float64(lastDone)
	}
	if cfg.Telemetry {
		tr.SessionObs = make([]*obs.TrialReport, n)
		for si, scope := range scopes {
			rep := scope.TrialReport()
			rep.Session = si
			tr.SessionObs[si] = rep
		}
		tr.Obs = tr.SessionObs[0]
	}
	return tr, nil
}

// foldSessions collapses the per-session results into the trial-level
// scalars: means for the ratio/rate fields, sums for byte and failure
// counters, concatenated scores. For one session the fold is the identity,
// which is what keeps Sessions=1 bit-identical to the classic path.
func foldSessions(sessions []SessionResult) Trial {
	tr := Trial{Sessions: sessions, Completed: true}
	var bitrates []float64
	var startup time.Duration
	for _, sr := range sessions {
		tr.BufRatio += sr.BufRatio
		tr.AvgBitrate += sr.AvgBitrate
		tr.Skipped += sr.Skipped
		tr.Residual += sr.Residual
		tr.Wasted += sr.Wasted
		tr.FailedReqs += sr.FailedReqs
		tr.Scores = append(tr.Scores, sr.Scores...)
		startup += sr.StartupDelay
		if !sr.Completed {
			tr.Completed = false
		}
		bitrates = append(bitrates, sr.AvgBitrate)
	}
	inv := 1 / float64(len(sessions))
	tr.BufRatio *= inv
	tr.AvgBitrate *= inv
	tr.Skipped *= inv
	tr.Residual *= inv
	tr.StartupDelay = time.Duration(float64(startup) * inv)
	tr.MeanScore = stats.Mean(tr.Scores)
	tr.Jain = stats.JainIndex(bitrates)
	return tr
}

// RunMatrix runs one configuration per system and returns them keyed by
// system — the shape most figures need. All (system, trial) pairs share one
// base.Parallelism-wide worker pool, so a matrix of short configs still
// fills every worker.
func RunMatrix(base Config, systems []System) map[System]*Aggregate {
	cfgs := make([]Config, len(systems))
	for i, sys := range systems {
		cfgs[i] = base
		cfgs[i].System = sys
	}
	aggs := runConfigs(cfgs, base.workers())
	out := make(map[System]*Aggregate, len(systems))
	for i, sys := range systems {
		out[sys] = aggs[i]
	}
	return out
}

package exp

import (
	"reflect"
	"testing"
	"time"

	"voxel/internal/netem"
)

func chaosCfg(prof string, failover bool) Config {
	return Config{
		Title: "BBB", System: SysVoxel, Trials: 1, Segments: 10,
		Impairment: prof, Failover: failover, MaxSimTime: 10 * time.Minute,
	}
}

// The impairment axis must be inert at zero intensity: naming the "clean"
// profile yields trials bit-identical to not naming one at all.
func TestCleanProfileBitIdentical(t *testing.T) {
	base := Run(chaosCfg("", false))
	clean := Run(chaosCfg(netem.ProfileClean, false))
	if !reflect.DeepEqual(base.Trials, clean.Trials) {
		t.Fatalf("clean profile drifted from unimpaired run:\n%+v\nvs\n%+v",
			base.Trials, clean.Trials)
	}
}

// Every impairment profile — and the dual-origin failover scenario — must
// finish playback in bounded simulated time with zero permanently failed
// requests: the recovery stack (deadlines, retries, keepalive, failover)
// rides out every fault the profiles inject.
func TestImpairedTrialsComplete(t *testing.T) {
	run := func(name string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			agg := Run(cfg)
			tr := agg.Trials[0]
			if !tr.Completed {
				t.Fatalf("trial did not complete: %+v", tr)
			}
			if tr.FailedReqs != 0 {
				t.Errorf("%d requests failed for good", tr.FailedReqs)
			}
			if tr.AvgBitrate <= 0 {
				t.Errorf("no media streamed: %+v", tr)
			}
		})
	}
	for _, prof := range netem.Profiles() {
		run(prof, chaosCfg(prof, false))
	}
	run("failover", chaosCfg(netem.ProfileHandover, true))
}

// Impaired trials stay deterministic: the same seed replays the identical
// fault schedule and recovery decisions.
func TestImpairedTrialDeterministic(t *testing.T) {
	cfg := chaosCfg(netem.ProfileFlaky, false)
	cfg.Seed = 42
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatalf("same seed, different trials:\n%+v\nvs\n%+v", a.Trials, b.Trials)
	}
}

// Harsher profiles must hurt: an impaired run cannot beat the clean run's
// bitrate, and the blackhole scenarios must still stream most segments.
func TestImpairmentDegradesGracefully(t *testing.T) {
	clean := Run(chaosCfg("", false)).Trials[0]
	for _, prof := range []string{netem.ProfileBursty, netem.ProfileFlaky, netem.ProfileHandover} {
		tr := Run(chaosCfg(prof, false)).Trials[0]
		if tr.AvgBitrate > clean.AvgBitrate {
			t.Errorf("%s: impaired bitrate %.2f Mbps beats clean %.2f Mbps",
				prof, tr.AvgBitrate/1e6, clean.AvgBitrate/1e6)
		}
		if tr.MeanScore < 0.5 {
			t.Errorf("%s: playback collapsed (mean score %.3f)", prof, tr.MeanScore)
		}
	}
}

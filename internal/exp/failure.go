package exp

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"voxel/internal/invariant"
	"voxel/internal/qoe"
	"voxel/internal/repro"
	"voxel/internal/trace"
)

// TrialError is the structured failure record of one trial: a recovered
// panic, a violated invariant, a breached watchdog budget, or a setup
// error. The surviving trials of the sweep keep running; failures land in
// Aggregate.Failed in (config, trial) order with everything needed to
// replay the case deterministically.
type TrialError struct {
	// Config is the cell the trial belonged to (post-defaulting).
	Config Config
	// Trial is the failing trial's index within the sweep; Seed is the
	// derived per-trial seed the world was built with.
	Trial int
	Seed  int64
	// Session is the swarm session under construction when the failure
	// hit, or -1 once the event loop was running (a mid-run failure is not
	// attributable to one session from outside the world).
	Session int
	// Clock is the virtual time at which the trial died.
	Clock time.Duration
	// Rule classifies the failure: an invariant rule
	// ("quic.byte-conservation"), a watchdog rule ("watchdog.wall-budget",
	// "watchdog.event-budget"), or "panic" / "error" for everything else.
	Rule string
	// Msg is the panic value, violation detail, or error text.
	Msg string
	// Stack is the goroutine stack at the recovery point (panics only).
	Stack string
}

// Error summarizes the failure on one line.
func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %d (seed %d) failed at %v: %s: %s",
		e.Trial, e.Seed, e.Clock, e.Rule, e.Msg)
}

// ReplayCommand returns a copy-pasteable voxel-sim invocation that
// deterministically reproduces the failing sweep (the failure fires at the
// same trial index, since trials are independent worlds keyed by seed).
func (e *TrialError) ReplayCommand() string {
	var b strings.Builder
	b.WriteString("go run ./cmd/voxel-sim")
	c := e.Config
	add := func(flag, val string) { b.WriteString(" -" + flag + " " + val) }
	if c.Title != "" {
		add("title", c.Title)
	}
	if c.System != "" {
		add("system", "'"+string(c.System)+"'")
	}
	if c.CrossTraffic > 0 {
		add("cross", strconv.FormatFloat(c.CrossTraffic/1e6, 'g', -1, 64))
	} else if c.Trace != nil {
		add("trace", traceFlagName(c.Trace))
	}
	add("buffer", strconv.Itoa(c.BufferSegments))
	if c.Segments > 0 {
		add("segments", strconv.Itoa(c.Segments))
	}
	add("trials", strconv.Itoa(c.Trials))
	add("seed", strconv.FormatInt(c.Seed, 10))
	if c.QueuePackets > 0 && c.QueuePackets != 32 {
		add("queue", strconv.Itoa(c.QueuePackets))
	}
	if c.Sessions > 1 {
		add("sessions", strconv.Itoa(c.Sessions))
	}
	if c.Impairment != "" {
		add("impair", c.Impairment)
	}
	if c.Failover {
		b.WriteString(" -failover")
	}
	if c.Inject != "" {
		add("inject", c.Inject)
	}
	if c.Invariants {
		b.WriteString(" -invariants")
	}
	return b.String()
}

// Artifact converts the failure into a standalone JSON crash artifact,
// replayable with `voxel-sim -repro file.json`.
func (e *TrialError) Artifact() *repro.Artifact {
	c := e.Config
	a := &repro.Artifact{
		Title:      c.Title,
		System:     string(c.System),
		Buffer:     c.BufferSegments,
		Segments:   c.Segments,
		Trials:     c.Trials,
		Trial:      e.Trial,
		Seed:       c.Seed,
		Queue:      c.QueuePackets,
		CrossMbps:  c.CrossTraffic / 1e6,
		LinkMbps:   c.LinkCapacity / 1e6,
		Sessions:   c.Sessions,
		Impairment: c.Impairment,
		Failover:   c.Failover,
		CC:         c.CC,
		Inject:     c.Inject,
		Violation:  e.Rule,
		Detail:     e.Msg,
	}
	if c.Trace != nil && c.CrossTraffic <= 0 {
		a.Trace = traceFlagName(c.Trace)
	}
	if c.Metric != qoe.SSIM {
		a.Metric = strings.ToLower(c.Metric.String())
	}
	if c.MaxSimTime > 0 {
		a.MaxSimTimeSec = c.MaxSimTime.Seconds()
	}
	return a
}

// traceFlagName names a trace the way -trace and artifact files expect:
// the canonical ByName key when there is one, the internal name otherwise
// (a non-canonical trace can't round-trip through a flag, but at least the
// command identifies it).
func traceFlagName(t *trace.Trace) string {
	if name, ok := trace.CanonicalName(t); ok {
		return name
	}
	return t.Name()
}

// ConfigFromArtifact resolves a crash artifact back into a runnable
// configuration. Invariants and both watchdog budgets are armed, matching
// the fuzz campaign the artifact came from.
func ConfigFromArtifact(a *repro.Artifact) (Config, error) {
	cfg := Config{
		Title:          a.Title,
		System:         System(a.System),
		BufferSegments: a.Buffer,
		Segments:       a.Segments,
		Trials:         a.Trials,
		Seed:           a.Seed,
		QueuePackets:   a.Queue,
		CrossTraffic:   a.CrossMbps * 1e6,
		LinkCapacity:   a.LinkMbps * 1e6,
		Sessions:       a.Sessions,
		Impairment:     a.Impairment,
		Failover:       a.Failover,
		CC:             a.CC,
		Inject:         a.Inject,
		Invariants:     true,
		WatchdogWall:   DefaultWatchdogWall,
		WatchdogEvents: DefaultWatchdogEvents,
	}
	if a.MaxSimTimeSec > 0 {
		cfg.MaxSimTime = time.Duration(a.MaxSimTimeSec * float64(time.Second))
	}
	if a.Trace != "" {
		tr, err := trace.ByName(a.Trace)
		if err != nil {
			return Config{}, fmt.Errorf("exp: artifact trace: %v", err)
		}
		cfg.Trace = tr
	}
	switch strings.ToLower(a.Metric) {
	case "", "ssim":
		cfg.Metric = qoe.SSIM
	case "vmaf":
		cfg.Metric = qoe.VMAF
	case "psnr":
		cfg.Metric = qoe.PSNR
	default:
		return Config{}, fmt.Errorf("exp: artifact metric %q unknown", a.Metric)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Default watchdog budgets used by repro replay and the fuzz campaign: lax
// enough for the heaviest legitimate trial (a 512-session swarm runs in
// well under a minute), tight enough to catch a wedged one.
const (
	DefaultWatchdogWall   = 2 * time.Minute
	DefaultWatchdogEvents = 500_000_000
)

// watchdogSliceEvents bounds one checkpoint slice when a wall budget is
// armed without an event budget, so even a zero-delay event storm — which
// never lets RunUntil reach its deadline — yields control often enough for
// the wall clock to be consulted.
const watchdogSliceEvents = 1 << 21

// FailureHook, when non-nil, observes every TrialError at aggregation time
// (after the sweep finished, in deterministic (config, trial) order). CLIs
// that drive many sweeps through layers that do not surface Aggregate —
// voxel-bench's figure generators — use it to collect failures for the
// final report. The hook runs under an internal lock; keep it fast.
var FailureHook func(*TrialError)

// trialCtx carries the identity of the running trial so failures anywhere
// in the stack can be stamped with config, seed, session, and clock.
type trialCtx struct {
	cfg     Config
	trial   int
	seed    int64
	session int // session under construction; -1 once the loop runs
}

// errf builds a TrialError for a non-panic failure.
func (tc *trialCtx) errf(clock time.Duration, rule, format string, args ...any) *TrialError {
	return &TrialError{
		Config:  tc.cfg,
		Trial:   tc.trial,
		Seed:    tc.seed,
		Session: tc.session,
		Clock:   clock,
		Rule:    rule,
		Msg:     fmt.Sprintf(format, args...),
	}
}

// fromPanic converts a recovered panic value into a TrialError, unwrapping
// invariant violations into their rule and capturing the stack.
func (tc *trialCtx) fromPanic(recovered any, clock time.Duration) *TrialError {
	te := &TrialError{
		Config:  tc.cfg,
		Trial:   tc.trial,
		Seed:    tc.seed,
		Session: tc.session,
		Clock:   clock,
		Rule:    "panic",
	}
	if v, ok := invariant.AsViolation(recovered); ok {
		te.Rule = v.Rule
		te.Msg = v.Detail
	} else if err, ok := recovered.(error); ok {
		te.Msg = err.Error()
	} else {
		te.Msg = fmt.Sprint(recovered)
	}
	buf := make([]byte, 16<<10)
	te.Stack = string(buf[:runtime.Stack(buf, false)])
	return te
}

// Inject fault kinds: a plain panic from a scheduled event, a synthetic
// invariant violation, and a zero-delay event storm (the watchdog's prey).
const (
	injectPanic     = "panic"
	injectInvariant = "invariant"
	injectSpin      = "spin"
)

// injectRule maps an inject kind to the Rule its TrialError will carry —
// what a crash artifact for the injected case records as its violation.
func injectRule(kind string) string {
	switch kind {
	case injectPanic:
		return "panic"
	case injectInvariant:
		return "exp.injected-fault"
	case injectSpin:
		return "watchdog.event-budget"
	}
	return ""
}

// injectTime is the virtual instant an injected fault fires: late enough
// that the world is streaming, early enough that every config reaches it.
const injectTime = 2 * time.Second

// parseInject splits an Inject spec "kind" or "kind@trial" and validates
// the kind. An empty spec disables injection.
func parseInject(spec string) (kind string, trial int, err error) {
	if spec == "" {
		return "", -1, nil
	}
	kind, rest, scoped := strings.Cut(spec, "@")
	trial = -1
	if scoped {
		trial, err = strconv.Atoi(rest)
		if err != nil || trial < 0 {
			return "", -1, fmt.Errorf("exp: bad inject trial in %q", spec)
		}
	}
	switch kind {
	case injectPanic, injectInvariant, injectSpin:
		return kind, trial, nil
	}
	return "", -1, fmt.Errorf("exp: unknown inject kind %q (have %s, %s, %s)",
		kind, injectPanic, injectInvariant, injectSpin)
}

// injectFor resolves the config's Inject spec for one trial index.
func (c Config) injectFor(trial int) (kind string, ok bool) {
	kind, target, err := parseInject(c.Inject)
	if err != nil || kind == "" {
		return "", false
	}
	if target >= 0 && target != trial {
		return "", false
	}
	return kind, true
}

package sim

// The pre-wheel binary-heap scheduler, preserved verbatim (modulo the
// RunUntil-after-Halt clock fix, which applies to both kernels) as the
// reference implementation. The differential tests drive it and the wheel
// with identical scripts and assert identical execution traces, and the
// kernel benchmarks use it as the before side of before/after numbers.
// It exists only in test builds.

import (
	"container/heap"
	"fmt"
)

type refEvent struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 once popped or canceled
}

type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refEventHeap) Push(x any) {
	e := x.(*refEvent)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

type refSim struct {
	now    Time
	queue  refEventHeap
	seq    uint64
	nexec  uint64
	halted bool
	free   []*refEvent
}

func newRefSim() *refSim { return &refSim{} }

func (s *refSim) Now() Time        { return s.now }
func (s *refSim) Executed() uint64 { return s.nexec }
func (s *refSim) Halted() bool     { return s.halted }
func (s *refSim) Halt()            { s.halted = true }
func (s *refSim) Pending() int     { return len(s.queue) }

func (s *refSim) Schedule(delay Time, fn func()) *refEvent {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

func (s *refSim) At(t Time, fn func()) *refEvent {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *refEvent
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.At, e.Fn, e.seq = t, fn, s.seq
	} else {
		e = &refEvent{At: t, Fn: fn, seq: s.seq}
	}
	heap.Push(&s.queue, e)
	return e
}

func (s *refSim) Cancel(e *refEvent) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
	e.Fn = nil
	e.idx = -1
	s.free = append(s.free, e)
}

func (s *refSim) Reschedule(e *refEvent, t Time) {
	if e == nil || e.Fn == nil || e.idx < 0 {
		return
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.At = t
	e.seq = s.seq
	heap.Fix(&s.queue, e.idx)
}

func (s *refSim) Step() bool {
	if s.halted || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*refEvent)
	if e.At < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", e.At, s.now))
	}
	s.now = e.At
	fn := e.Fn
	e.Fn = nil
	s.nexec++
	fn()
	s.free = append(s.free, e)
	return true
}

func (s *refSim) Run() {
	for s.Step() {
	}
}

func (s *refSim) RunUntil(deadline Time) {
	for !s.halted && len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

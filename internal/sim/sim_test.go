package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("now = %v, want 3ms", s.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events executed out of insertion order: %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.Schedule(time.Duration(i)*time.Millisecond, func() { got = append(got, i) }))
	}
	s.Cancel(evs[5])
	s.Cancel(evs[13])
	s.Run()
	if len(got) != 18 {
		t.Fatalf("got %d events, want 18", len(got))
	}
	for _, v := range got {
		if v == 5 || v == 13 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	s := New(1)
	var got []Time
	e := s.Schedule(time.Millisecond, func() { got = append(got, s.Now()) })
	s.Reschedule(e, 5*time.Millisecond)
	s.Run()
	if len(got) != 1 || got[0] != 5*time.Millisecond {
		t.Fatalf("rescheduled event fired at %v, want [5ms]", got)
	}
}

func TestRescheduleTakesFreshSequence(t *testing.T) {
	s := New(1)
	var got []int
	e := s.Schedule(time.Millisecond, func() { got = append(got, 0) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 1) })
	// Moving e to the same instant as event 1 must order it after: the
	// rescheduled event takes a fresh insertion sequence.
	s.Reschedule(e, 2*time.Millisecond)
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", got)
	}
}

// Regression: Reschedule used to copy a freshly scheduled event's fields
// into the caller's handle, leaving the handle's heap index stale once the
// heap reordered — a later Cancel(e) removed whatever event happened to sit
// at that index. Rearm must keep the handle live so Cancel hits the right
// event.
func TestRescheduleThenCancelRemovesRightEvent(t *testing.T) {
	s := New(1)
	fired := make([]bool, 6)
	var evs []*Event
	for i := 0; i < 6; i++ {
		i := i
		evs = append(evs, s.Schedule(Time(i+1)*time.Millisecond, func() { fired[i] = true }))
	}
	// Push event 0 far into the future, forcing the heap to reorder around
	// it, then schedule more events so indices shuffle further.
	s.Reschedule(evs[0], 50*time.Millisecond)
	for i := 0; i < 4; i++ {
		s.Schedule(Time(10+i)*time.Millisecond, func() {})
	}
	s.Cancel(evs[0])
	s.Run()
	for i := 1; i < 6; i++ {
		if !fired[i] {
			t.Fatalf("event %d did not fire: canceling the rescheduled event removed it", i)
		}
	}
	if fired[0] {
		t.Fatal("canceled (rescheduled) event fired anyway")
	}
}

func TestRescheduleFiredOrCanceledIsNoop(t *testing.T) {
	s := New(1)
	n := 0
	e := s.Schedule(time.Millisecond, func() { n++ })
	s.Run()
	s.Reschedule(e, 5*time.Millisecond) // already fired: must not rearm
	s.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	e2 := s.Schedule(time.Millisecond, func() { n++ })
	s.Cancel(e2)
	s.Reschedule(e2, 5*time.Millisecond) // canceled: must not resurrect
	s.Run()
	if n != 1 {
		t.Fatalf("canceled event resurrected; fired %d times, want 1", n)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(time.Second, func() { got = append(got, 1) })
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.RunUntil(2 * time.Second)
	if len(got) != 1 {
		t.Fatalf("got %v, want only first event", got)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s", s.Now())
	}
	s.Run()
	if len(got) != 2 {
		t.Fatalf("got %v, want both events after Run", got)
	}
}

func TestRunUntilDrainedQueueAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunUntil(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("now = %v, want 5s", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	n := 0
	s.Schedule(1*time.Millisecond, func() { n++; s.Halt() })
	s.Schedule(2*time.Millisecond, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("executed %d events after halt, want 1", n)
	}
}

func TestEventsScheduledDuringExecution(t *testing.T) {
	s := New(1)
	var got []Time
	s.Schedule(time.Millisecond, func() {
		s.Schedule(time.Millisecond, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 1 || got[0] != 2*time.Millisecond {
		t.Fatalf("nested event at %v, want 2ms", got)
	}
}

func TestSameInstantScheduledDuringExecutionRuns(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(time.Millisecond, func() {
		s.Schedule(0, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Fatal("zero-delay event scheduled mid-execution did not run")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var got []int
		var rec func(depth int)
		rec = func(depth int) {
			got = append(got, int(s.Rand().Int63n(1000)))
			if depth < 50 {
				s.Schedule(Time(s.Rand().Int63n(int64(time.Millisecond))), func() { rec(depth + 1) })
			}
		}
		s.Schedule(0, func() { rec(0) })
		s.Run()
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimer(t *testing.T) {
	s := New(1)
	fires := 0
	tm := NewTimer(s, func() { fires++ })
	tm.Arm(time.Second)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	tm.Arm(2 * time.Second) // re-arm replaces
	s.Run()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s (re-armed deadline)", s.Now())
	}
	tm.Arm(time.Second)
	tm.Stop()
	s.Run()
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
}

func TestTimerDeadline(t *testing.T) {
	s := New(1)
	tm := NewTimer(s, func() {})
	if _, ok := tm.Deadline(); ok {
		t.Fatal("unarmed timer reports a deadline")
	}
	tm.ArmAt(7 * time.Second)
	at, ok := tm.Deadline()
	if !ok || at != 7*time.Second {
		t.Fatalf("deadline = %v,%v want 7s,true", at, ok)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the maximum delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := New(7)
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Time(r % 1e9)
			if d > max {
				max = d
			}
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the others to fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(3)
		fired := make([]bool, count)
		evs := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			evs[i] = s.Schedule(Time(i)*time.Millisecond, func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(evs[i])
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			want := mask&(1<<uint(i)) == 0
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Regression: RunUntil used to advance now to the deadline even when Halt
// fired mid-run. A halted sim must freeze time at the last executed event.
func TestRunUntilHaltFreezesClock(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() { s.Halt() })
	s.Schedule(2*time.Millisecond, func() { t.Fatal("event after halt fired") })
	s.RunUntil(10 * time.Millisecond)
	if s.Now() != time.Millisecond {
		t.Fatalf("now = %v after mid-run halt, want 1ms (frozen at halting event)", s.Now())
	}
	if !s.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	// Repeated RunUntil on a halted sim stays frozen too.
	s.RunUntil(20 * time.Millisecond)
	if s.Now() != time.Millisecond {
		t.Fatalf("now = %v after RunUntil on halted sim, want 1ms", s.Now())
	}
}

func TestCanceledAndFiredAreDistinct(t *testing.T) {
	s := New(1)
	fired := s.Schedule(time.Millisecond, func() {})
	canceled := s.Schedule(2*time.Millisecond, func() {})
	s.Cancel(canceled)
	s.Run()
	if !fired.Fired() || fired.Canceled() {
		t.Fatalf("fired event: Fired=%v Canceled=%v, want true,false", fired.Fired(), fired.Canceled())
	}
	if !canceled.Canceled() || canceled.Fired() {
		t.Fatalf("canceled event: Canceled=%v Fired=%v, want true,false", canceled.Canceled(), canceled.Fired())
	}
	pending := s.Schedule(time.Millisecond, func() {})
	if pending.Canceled() || pending.Fired() {
		t.Fatal("pending event reports a terminal state")
	}
}

// Regression: a handle to a fired event must stay inert — Cancel and
// Reschedule on it are no-ops — so deadline holders can't accidentally
// re-arm it before the scheduler recycles it.
func TestUseAfterFireHandleIsInert(t *testing.T) {
	s := New(1)
	n := 0
	e := s.Schedule(time.Millisecond, func() { n++ })
	s.Run()
	s.Reschedule(e, 5*time.Millisecond)
	s.Cancel(e) // must not double-free the handle into the pool
	s.Run()
	if n != 1 {
		t.Fatalf("fired %d times after use-after-fire Reschedule, want 1", n)
	}
	// The double-free guard matters: if Cancel had pushed e to the freelist
	// again, two future schedules would receive the same handle.
	a := s.Schedule(time.Millisecond, func() {})
	bb := s.Schedule(time.Millisecond, func() {})
	if a == bb {
		t.Fatal("freelist corrupted: two live events share one handle")
	}
}

// Regression: a Timer whose event fired must not cancel the recycled
// handle's next owner when stopped. The wrapper drops the handle before
// the callback runs, which this pins.
func TestTimerStopAfterFireDoesNotKillRecycledEvent(t *testing.T) {
	s := New(1)
	tm := NewTimer(s, func() {})
	tm.Arm(time.Millisecond)
	s.Run()
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
	// This Schedule recycles the timer's Event off the freelist (LIFO).
	hit := false
	e2 := s.Schedule(time.Millisecond, func() { hit = true })
	tm.Stop() // must not cancel e2
	s.Run()
	if !hit {
		t.Fatalf("Timer.Stop canceled a recycled event it no longer owns (e2=%p)", e2)
	}
}

// Lazy cancellation: Pending must count live events only, even though the
// canceled entry's tombstone is still waiting in its wheel slot.
func TestPendingExcludesLazilyCanceled(t *testing.T) {
	s := New(1)
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = s.Schedule(Time(i+1)*time.Millisecond, func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Cancel(evs[3])
	s.Cancel(evs[7])
	s.Cancel(evs[7]) // double cancel must not double-count
	if s.Pending() != 8 {
		t.Fatalf("Pending = %d after 2 cancels, want 8", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
	if s.Executed() != 8 {
		t.Fatalf("Executed = %d, want 8", s.Executed())
	}
}

// A canceled event's handle is recycled immediately; the orphaned wheel
// entry must never fire the handle's new owner early.
func TestCancelRecycleCannotFireEarly(t *testing.T) {
	s := New(1)
	e := s.Schedule(5*time.Millisecond, func() { t.Fatal("canceled event fired") })
	s.Cancel(e)
	var at Time
	e2 := s.Schedule(9*time.Millisecond, func() { at = s.Now() })
	if e2 != e {
		t.Skip("freelist did not recycle the handle; aliasing path not exercised")
	}
	s.Run()
	if at != 9*time.Millisecond {
		t.Fatalf("recycled event fired at %v (via the orphaned 5ms entry?), want 9ms", at)
	}
}

// Steady-state Schedule/Cancel/Reschedule must not allocate: events come
// from the freelist and wheel buckets recycle their backing arrays.
// AllocsPerRun truncates, so any o(1) amortized growth still reads 0.
func TestKernelSteadyStateZeroAllocs(t *testing.T) {
	s := New(1)
	nop := func() {}
	op := func() {
		e := s.Schedule(3*time.Millisecond, nop)
		s.Reschedule(e, s.Now()+7*time.Millisecond)
		s.Cancel(e)
		s.RunUntil(s.Now() + 100*time.Microsecond)
	}
	for i := 0; i < 5000; i++ { // warm pools, bucket and due capacities
		op()
	}
	if avg := testing.AllocsPerRun(5000, op); avg != 0 {
		t.Fatalf("steady-state schedule/reschedule/cancel allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	var next func()
	remaining := b.N
	next = func() {
		if remaining > 0 {
			remaining--
			s.Schedule(time.Microsecond, next)
		}
	}
	s.Schedule(0, next)
	s.Run()
}

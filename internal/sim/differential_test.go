package sim

// Differential proof that the timing-wheel kernel preserves the binary
// heap's firing semantics bit-for-bit: both kernels execute identical
// random schedule/cancel/reschedule/run scripts — including same-instant
// ties, past-time clamps, zero delays, nested scheduling from inside
// callbacks, far-future overflow events, and mid-script Halt — and must
// produce identical execution traces, clocks, and counters.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// kernel is the scheduling surface shared by *Sim and *refSim, generic
// over the handle type so the drivers compile against both concretely.
type kernel[E any] interface {
	Schedule(Time, func()) E
	At(Time, func()) E
	Cancel(E)
	Reschedule(E, Time)
	Step() bool
	Run()
	RunUntil(Time)
	Halt()
	Halted() bool
	Now() Time
	Pending() int
	Executed() uint64
}

var (
	_ kernel[*Event]    = (*Sim)(nil)
	_ kernel[*refEvent] = (*refSim)(nil)
)

// splitmix64 hashes an event id into the deterministic per-event behavior
// both drivers replay, so nested actions never consume shared random state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

type traceRec struct {
	id int
	at Time
}

// driver replays a script against one kernel, recording the execution
// trace. Fired callbacks perform nested actions derived purely from the
// event id, so both kernels see the same nested ops iff their execution
// orders match — any divergence shows up as a trace mismatch.
type driver[E any] struct {
	k       kernel[E]
	handles []E
	trace   []traceRec
}

func (d *driver[E]) spawn(at Time, absolute bool) {
	id := len(d.handles)
	fn := func() { d.onFire(id) }
	if absolute {
		d.handles = append(d.handles, d.k.At(at, fn))
	} else {
		d.handles = append(d.handles, d.k.Schedule(at, fn))
	}
}

func (d *driver[E]) onFire(id int) {
	d.trace = append(d.trace, traceRec{id, d.k.Now()})
	h := splitmix64(uint64(id))
	switch h % 8 {
	case 0: // near child, possibly a same-instant tie (delay 0)
		d.spawn(Time(h>>8%uint64(2*time.Millisecond)), false)
	case 1: // far child: beyond the wheel horizon, exercises overflow
		d.spawn(wheelSpan+Time(h>>8%uint64(wheelSpan)), false)
	case 2: // cancel some earlier handle (possibly fired/canceled/recycled)
		d.k.Cancel(d.handles[int(h>>32)%len(d.handles)])
	case 3: // reschedule an earlier handle, sometimes into the past (clamps)
		target := d.handles[int(h>>32)%len(d.handles)]
		d.k.Reschedule(target, d.k.Now()+Time(h>>8%uint64(5*time.Millisecond))-time.Millisecond)
	case 4: // absolute-time child in the past: clamps to now
		d.spawn(d.k.Now()-Time(h>>8%uint64(time.Millisecond)), true)
	}
}

// scriptOp is one pre-generated top-level operation, replayed identically
// against both kernels.
type scriptOp struct {
	kind  int
	delay Time
	id    int
	n     int
}

func genScript(rng *rand.Rand, nops int) []scriptOp {
	ops := make([]scriptOp, 0, nops)
	created := 0
	for i := 0; i < nops; i++ {
		op := scriptOp{kind: rng.Intn(10)}
		switch op.kind {
		case 0, 1, 2: // schedule near (ties likely: coarse delay grid)
			op.delay = Time(rng.Intn(64)) * 250 * time.Microsecond
			created++
		case 3: // schedule far (overflow territory)
			op.delay = wheelSpan + Time(rng.Int63n(int64(3*wheelSpan)))
			created++
		case 4: // schedule very far (seconds to minutes)
			op.delay = Time(rng.Int63n(int64(2 * time.Minute)))
			created++
		case 5: // cancel
			if created == 0 {
				continue
			}
			op.id = rng.Intn(created)
		case 6: // reschedule (sometimes into the past)
			if created == 0 {
				continue
			}
			op.id = rng.Intn(created)
			op.delay = Time(rng.Int63n(int64(20*time.Millisecond))) - 2*time.Millisecond
		case 7: // step a few events
			op.n = rng.Intn(8)
		case 8: // run until a deadline a bit ahead
			op.delay = Time(rng.Int63n(int64(50 * time.Millisecond)))
		case 9: // schedule at an absolute time, sometimes in the past
			op.delay = Time(rng.Int63n(int64(4*time.Millisecond))) - time.Millisecond
			created++
		}
		ops = append(ops, op)
	}
	return ops
}

func replay[E any](k kernel[E], ops []scriptOp, halt bool) *driver[E] {
	d := &driver[E]{k: k}
	for _, op := range ops {
		switch op.kind {
		case 0, 1, 2, 3, 4:
			d.spawn(op.delay, false)
		case 5:
			if op.id < len(d.handles) {
				k.Cancel(d.handles[op.id])
			}
		case 6:
			if op.id < len(d.handles) {
				k.Reschedule(d.handles[op.id], k.Now()+op.delay)
			}
		case 7:
			for i := 0; i < op.n; i++ {
				k.Step()
			}
		case 8:
			k.RunUntil(k.Now() + op.delay)
		case 9:
			d.spawn(k.Now()+op.delay, true)
		}
	}
	if halt {
		// Halt from inside an event mid-run: the clock must freeze at the
		// halting event on both kernels, including through RunUntil.
		k.Schedule(time.Millisecond, func() { k.Halt() })
		k.RunUntil(k.Now() + 10*time.Second)
	}
	k.Run()
	return d
}

func diffKernels(t *testing.T, seed int64, nops int, halt bool) {
	t.Helper()
	ops := genScript(rand.New(rand.NewSource(seed)), nops)
	dw := replay[*Event](New(seed), ops, halt)
	dh := replay[*refEvent](newRefSim(), ops, halt)

	if len(dw.trace) != len(dh.trace) {
		t.Fatalf("seed %d: wheel fired %d events, heap fired %d", seed, len(dw.trace), len(dh.trace))
	}
	for i := range dw.trace {
		if dw.trace[i] != dh.trace[i] {
			t.Fatalf("seed %d: trace diverges at %d: wheel %+v, heap %+v", seed, i, dw.trace[i], dh.trace[i])
		}
	}
	if dw.k.Now() != dh.k.Now() {
		t.Fatalf("seed %d: clock diverges: wheel %v, heap %v", seed, dw.k.Now(), dh.k.Now())
	}
	if dw.k.Executed() != dh.k.Executed() {
		t.Fatalf("seed %d: executed diverges: wheel %d, heap %d", seed, dw.k.Executed(), dh.k.Executed())
	}
	if dw.k.Pending() != dh.k.Pending() {
		t.Fatalf("seed %d: pending diverges: wheel %d, heap %d", seed, dw.k.Pending(), dh.k.Pending())
	}
}

func TestDifferentialHeapVsWheel(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		diffKernels(t, seed, 400, false)
	}
}

func TestDifferentialHeapVsWheelWithHalt(t *testing.T) {
	for seed := int64(100); seed <= 120; seed++ {
		diffKernels(t, seed, 200, true)
	}
}

func TestDifferentialLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential run")
	}
	for seed := int64(500); seed <= 505; seed++ {
		diffKernels(t, seed, 5000, false)
	}
}

// Property: any mix of near and far-future delays fires in nondecreasing
// (time, insertion) order with the overflow heap promoting far events into
// the near wheel exactly when due — checked against both the recorded
// per-event deadline and global ordering.
func TestQuickOverflowPromotion(t *testing.T) {
	f := func(raw []uint32, farMask uint64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 150 {
			raw = raw[:150]
		}
		s := New(11)
		type slot struct {
			want  Time
			fired bool
			at    Time
			order int
		}
		scheduled := make([]slot, len(raw))
		var order int
		for i, r := range raw {
			d := Time(r % uint32(20*time.Millisecond))
			if farMask&(1<<uint(i%64)) != 0 {
				// Far future: one to four wheel horizons out, so the event
				// must survive in overflow and be promoted as the window
				// slides forward.
				d += wheelSpan + Time(r%uint32(3*int64(wheelSpan)))
			}
			i := i
			scheduled[i].want = d
			s.Schedule(d, func() {
				scheduled[i].fired = true
				scheduled[i].at = s.Now()
				scheduled[i].order = order
				order++
			})
		}
		s.Run()
		// Every event fired exactly at its deadline, and the global firing
		// order is (time, insertion-sequence).
		prevAt, prevIdx := Time(-1), -1
		byOrder := make([]int, len(raw))
		for i, sl := range scheduled {
			if !sl.fired || sl.at != sl.want {
				return false
			}
			byOrder[sl.order] = i
		}
		for _, i := range byOrder {
			at := scheduled[i].at
			if at < prevAt || (at == prevAt && i < prevIdx) {
				return false
			}
			prevAt, prevIdx = at, i
		}
		return s.Now() == prevAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// Property: chains of far-future events that schedule further far-future
// events keep promoting correctly as the window jumps across long empty
// stretches.
func TestQuickFarChainPromotion(t *testing.T) {
	f := func(hops uint8, step uint32) bool {
		n := int(hops%12) + 2
		d := wheelSpan/2 + Time(step%uint32(2*int64(wheelSpan)))
		s := New(13)
		var fired []Time
		var hop func(left int)
		hop = func(left int) {
			fired = append(fired, s.Now())
			if left > 0 {
				s.Schedule(d, func() { hop(left - 1) })
			}
		}
		s.Schedule(d, func() { hop(n) })
		s.Run()
		if len(fired) != n+1 {
			return false
		}
		for i, at := range fired {
			if at != Time(i+1)*d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

package sim

// Kernel benchmarks, each run against both the timing wheel ("wheel") and
// the preserved binary-heap reference ("heap") through the same generic
// driver, so before/after numbers regenerate from a single run. The swarm
// macro-benchmark models the event mix of a 512-session experiment —
// paced sends, delayed ACKs, and a PTO timer re-armed on every packet and
// every ACK — and reports throughput via Sim.Executed as events/sec.

import (
	"testing"
	"time"
)

// xorshift is a tiny deterministic generator for benchmark jitter; the
// simulator's own rand.Rand is not used so both kernels see identical
// schedules without sharing state.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// benchChurn measures steady-state schedule+fire throughput with a pool of
// ~4096 pending events at randomized offsets (50µs–5ms): every fire
// schedules one replacement.
func benchChurn[E any](b *testing.B, k kernel[E]) {
	const pool = 4096
	rng := xorshift(0x9E3779B97F4A7C15)
	remaining := b.N
	var self func()
	self = func() {
		if remaining > 0 {
			remaining--
			k.Schedule(Time(50_000+rng.next()%5_000_000), self)
		}
	}
	seed := pool
	if seed > b.N {
		seed = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < seed; i++ {
		remaining--
		k.Schedule(Time(50_000+rng.next()%5_000_000), self)
	}
	k.Run()
}

func BenchmarkKernelChurn(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchChurn[*Event](b, New(1)) })
	b.Run("heap", func(b *testing.B) { benchChurn[*refEvent](b, newRefSim()) })
}

// benchRearmStorm measures the PTO pattern: 512 armed timers, each op
// cancels one and re-arms it ~100ms out (the deadline almost never
// fires). Lazy cancellation makes both halves O(1) on the wheel; the heap
// pays two O(log n) fixups. Time advances every 256 ops so tombstones
// drain at a realistic rate.
func benchRearmStorm[E any](b *testing.B, k kernel[E]) {
	const timers = 512
	nop := func() {}
	evs := make([]E, timers)
	for i := range evs {
		evs[i] = k.Schedule(100*time.Millisecond+Time(i), nop)
	}
	rng := xorshift(0xD1B54A32D192ED03)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		i := n & (timers - 1)
		k.Cancel(evs[i])
		evs[i] = k.Schedule(100*time.Millisecond+Time(rng.next()%50_000), nop)
		if n&255 == 255 {
			k.RunUntil(k.Now() + 5*time.Millisecond)
		}
	}
}

func BenchmarkKernelRearmStorm(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchRearmStorm[*Event](b, New(1)) })
	b.Run("heap", func(b *testing.B) { benchRearmStorm[*refEvent](b, newRefSim()) })
}

// benchCancel measures schedule-then-cancel pairs over a standing pool of
// 2048 pending events, the hot pattern of deadline guards that nearly
// always disarm.
func benchCancel[E any](b *testing.B, k kernel[E]) {
	nop := func() {}
	for i := 0; i < 2048; i++ {
		k.Schedule(Time(i+1)*50*time.Microsecond, nop)
	}
	rng := xorshift(0xA0761D6478BD642F)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e := k.Schedule(Time(10_000+rng.next()%10_000_000), nop)
		k.Cancel(e)
		if n&1023 == 1023 {
			k.RunUntil(k.Now() + time.Millisecond)
		}
	}
}

func BenchmarkKernelCancel(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchCancel[*Event](b, New(1)) })
	b.Run("heap", func(b *testing.B) { benchCancel[*refEvent](b, newRefSim()) })
}

// swarmSession is one synthetic streaming session in the macro-benchmark:
// a paced sender whose every packet re-arms a PTO deadline and schedules a
// delayed ACK, which re-arms the PTO again — the dominant event mix of a
// real swarm trial (QUIC* pacing + PTO + netem delivery callbacks).
type swarmSession[E any] struct {
	k      kernel[E]
	rng    xorshift
	pto    E
	armed  bool
	left   int
	onSend func()
	onAck  func()
	onPTO  func()
}

func newSwarmSession[E any](k kernel[E], seed uint64, packets int) *swarmSession[E] {
	s := &swarmSession[E]{k: k, rng: xorshift(seed | 1), left: packets}
	s.onSend = func() { s.send() }
	s.onAck = func() { s.ack() }
	s.onPTO = func() { s.probe() }
	return s
}

func (s *swarmSession[E]) rearmPTO(d Time) {
	if s.armed {
		// Same call both kernels make in production via Timer.Arm: the heap
		// pays an O(log n) Fix, the wheel defers the standing entry in O(1).
		s.k.Reschedule(s.pto, s.k.Now()+d)
		return
	}
	s.pto = s.k.Schedule(d, s.onPTO)
	s.armed = true
}

func (s *swarmSession[E]) send() {
	if s.left == 0 {
		return
	}
	s.left--
	s.rearmPTO(100*time.Millisecond + Time(s.rng.next()%uint64(10*time.Millisecond)))
	// Delivery + delayed ACK lands 15–60ms out.
	s.k.Schedule(15*time.Millisecond+Time(s.rng.next()%uint64(45*time.Millisecond)), s.onAck)
	if s.left > 0 {
		// Pacing: next send 0.5–4ms out.
		s.k.Schedule(500*time.Microsecond+Time(s.rng.next()%uint64(3500*time.Microsecond)), s.onSend)
	}
}

func (s *swarmSession[E]) ack() {
	if s.left > 0 || s.armed {
		s.rearmPTO(100*time.Millisecond + Time(s.rng.next()%uint64(10*time.Millisecond)))
	}
	if s.left == 0 && s.armed {
		// Stream drained: let the final deadline lapse quietly.
		s.k.Cancel(s.pto)
		s.armed = false
	}
}

func (s *swarmSession[E]) probe() {
	s.armed = false
	if s.left > 0 {
		s.rearmPTO(200 * time.Millisecond)
	}
}

// benchSwarmMacro runs 512 concurrent synthetic sessions through one
// kernel and reports events/sec measured via Executed(). b.N is the total
// packet budget across the swarm.
func benchSwarmMacro[E any](b *testing.B, k kernel[E]) {
	const sessions = 512
	perSession := b.N / sessions
	extra := b.N % sessions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < sessions; i++ {
		packets := perSession
		if i < extra {
			packets++
		}
		if packets == 0 {
			continue
		}
		s := newSwarmSession(k, uint64(i)*0x9E3779B9, packets)
		k.Schedule(Time(i)*7*time.Microsecond, s.onSend) // staggered joins
	}
	k.Run()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(k.Executed())/sec, "events/sec")
	}
}

func BenchmarkSwarmMacro512(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchSwarmMacro[*Event](b, New(1)) })
	b.Run("heap", func(b *testing.B) { benchSwarmMacro[*refEvent](b, newRefSim()) })
}

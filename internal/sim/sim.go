// Package sim provides a deterministic discrete-event simulation kernel.
//
// All VOXEL experiments run on virtual time: the transport, the network
// emulation, the player, and the cross-traffic generator schedule callbacks
// on a shared event loop. Two runs with the same seed produce identical
// results, and simulated minutes complete in real milliseconds.
//
// # Scheduler structure
//
// The kernel is a two-level hierarchical timing wheel rather than a binary
// heap. Virtual time is quantized into ticks of 2^tickShift nanoseconds; a
// near wheel of wheelSlots per-tick buckets covers the next wheelSpan of
// virtual time, and events farther out wait in an overflow min-heap keyed
// by (time, insertion sequence). As the wheel's window advances, overflow
// events whose slot enters the window are promoted into their bucket.
// Buckets are plain appended slices; a slot is sorted by (time, sequence)
// only when the cursor reaches it, so scheduling is O(1) and the total
// firing order is exactly the (time, insertion-sequence) order the old
// heap produced — tie-broken by sequence, past times clamped to now.
//
// Cancel and Reschedule are lazy: they never search the wheel. Cancel marks
// the event canceled (a tombstone — the bucket entry is skipped when its
// slot drains). Reschedule bumps the event's sequence; when the deadline
// moves later — the retransmission-timer pattern, where every packet pushes
// the deadline out — the standing wheel entry is kept and simply hops
// forward when its slot drains, so rearm storms cost O(1) field updates.
// Only a deadline moving earlier inserts a fresh entry (orphaning the old
// one as a tombstone). Entries carry the sequence they were inserted with,
// so a stale entry can never fire a recycled event: event handles are
// pooled, and the global sequence counter never repeats.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"voxel/internal/invariant"
)

// Time is virtual time measured as a duration since the start of the
// simulation. It is kept distinct from time.Time on purpose: there is no
// wall-clock anchor, and arithmetic on durations is all the kernel needs.
type Time = time.Duration

// Wheel geometry. One slot covers 2^tickShift ns (≈16.4µs); the near wheel
// holds wheelSlots of them, so events within wheelSpan (≈134ms) of the
// cursor land in a bucket and everything farther waits in the overflow
// heap. The bounds fit the workload: pacing, ACK delay, and netem latency
// events live well inside the window, while PTO (~100ms) sits near its
// edge and only idle/keep-alive/player-sleep timers overflow.
const (
	tickShift  = 14
	wheelBits  = 13
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64

	// wheelSpan is the virtual-time horizon covered by the near wheel.
	wheelSpan = Time(wheelSlots << tickShift)

	// infTime is a deadline beyond any schedulable event.
	infTime = Time(math.MaxInt64)
)

// Event lifecycle states. The zero state is pending because events only
// reach user code via Schedule/At, which arm them.
const (
	statePending uint8 = iota
	stateFired
	stateCanceled
)

// Event is a scheduled callback. Events are ordered by time; ties break by
// insertion sequence so that scheduling order is deterministic.
//
// Event handles are owned by the scheduler: once an event has fired or been
// canceled, the handle must not be used again (the Event may be recycled for
// a later Schedule/At call, at which point Cancel/Reschedule through the old
// handle would act on the new, unrelated event). Holders that outlive their
// event — like Timer — must drop the pointer when it fires. Until the handle
// is recycled, Fired and Canceled report which terminal state it reached,
// and Cancel/Reschedule on it are safe no-ops.
type Event struct {
	At Time // current deadline; may sit later than the placed wheel entry
	Fn func()

	// seq is the sequence of the current deadline — the (At, seq) pair is
	// the event's position in the total firing order. placed/placedAt
	// identify the wheel entry physically standing for this event: when a
	// Reschedule moves the deadline later, the standing entry is kept
	// (placed != seq) and hops forward when it drains, so rearm storms
	// never touch the wheel.
	seq      uint64
	placed   uint64
	placedAt Time
	state    uint8
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.state == stateCanceled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.state == stateFired }

// entry is one scheduled occurrence of an event. The wheel stores entries
// by value; seq is the event's sequence at insertion time, so an entry is
// live only while it matches the event's current sequence — Reschedule and
// handle recycling bump the sequence, turning old entries into tombstones.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; everything in a simulation runs on its event loop.
type Sim struct {
	now    Time
	seq    uint64
	rng    *rand.Rand
	nexec  uint64
	halted bool
	live   int // scheduled events that are neither fired nor canceled

	// cursor is the absolute slot index the wheel has drained up to. The
	// near window is (cursor, cursor+wheelSlots); slot cursor itself — and
	// anything behind it, reachable when the cursor has scanned ahead of
	// now — is merged directly into due.
	cursor   int64
	slots    [][]entry // wheelSlots buckets, indexed by slot&wheelMask
	occ      []uint64  // occupancy bitmap over buckets
	overflow entryHeap // events beyond the near window, min (at, seq)

	// due is the sorted run of entries at the front of the timeline,
	// consumed from duePos. Refill swaps the next non-empty bucket in.
	due    []entry
	duePos int

	free  []*Event  // recycled events; Schedule/At pop from here
	spare [][]entry // drained bucket arrays, reissued to empty buckets

	check *invariant.Checker // nil = invariant checking disabled
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		rng:   rand.New(rand.NewSource(seed)),
		slots: make([][]entry, wheelSlots),
		occ:   make([]uint64, wheelWords),
	}
}

// SetChecker arms (or, with nil, disarms) cross-layer invariant checking
// for this world. The kernel itself asserts clock monotonicity; layers
// built on the kernel read the checker back via Checker.
func (s *Sim) SetChecker(c *invariant.Checker) { s.check = c }

// Checker returns the armed invariant checker (nil when checking is off).
func (s *Sim) Checker() *invariant.Checker { return s.check }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.nexec }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run as soon as the loop reaches the current instant again).
//
//voxel:allocfree
func (s *Sim) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Times in the past are clamped
// to now.
//
//voxel:allocfree
func (s *Sim) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.At, e.Fn, e.seq, e.state = t, fn, s.seq, statePending
	e.placed, e.placedAt = s.seq, t
	s.live++
	s.place(entry{at: t, seq: s.seq, ev: e})
	return e
}

// place routes an entry to the due run, a wheel bucket, or the overflow
// heap, depending on where its slot sits relative to the cursor's window.
//
//voxel:allocfree
func (s *Sim) place(en entry) {
	slot := int64(en.at) >> tickShift
	switch {
	case slot <= s.cursor:
		s.insertDue(en)
	case slot < s.cursor+wheelSlots:
		b := int(slot & wheelMask)
		if s.slots[b] == nil {
			// Empty bucket: reuse a drained array so steady-state
			// scheduling stays allocation-free as the write frontier
			// moves around the wheel.
			if n := len(s.spare); n > 0 {
				s.slots[b] = s.spare[n-1]
				s.spare[n-1] = nil
				s.spare = s.spare[:n-1]
			}
		}
		s.slots[b] = append(s.slots[b], en)
		s.occ[b>>6] |= 1 << (uint(b) & 63)
	default:
		s.overflow.push(en)
	}
}

// insertDue merges an entry into the unconsumed tail of the due run,
// keeping it sorted by (at, seq). The common case — an entry later than
// everything pending — is a plain append.
//
//voxel:allocfree
func (s *Sim) insertDue(en entry) {
	// Reclaim the consumed prefix once it dominates the slice, so a
	// workload that never leaves one slot (zero-delay chains) stays O(1)
	// in memory instead of growing with total events.
	if s.duePos > 64 && s.duePos*2 >= len(s.due) {
		n := copy(s.due, s.due[s.duePos:])
		s.due = s.due[:n]
		s.duePos = 0
	}
	lo, hi := s.duePos, len(s.due)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(s.due[mid], en) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.due = append(s.due, entry{})
	copy(s.due[lo+1:], s.due[lo:])
	s.due[lo] = en
}

// Cancel removes a pending event. Canceling an event that already fired or
// was already canceled is a no-op. Cancellation is O(1): the wheel entry
// becomes a tombstone that is discarded when its slot drains.
//
//voxel:allocfree
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.state != statePending {
		return
	}
	e.state = stateCanceled
	e.Fn = nil
	s.live--
	s.free = append(s.free, e)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. The event is re-armed in place — the caller's handle stays
// valid — and takes a fresh insertion sequence, so it orders after events
// already scheduled for the same instant. Times in the past are clamped to
// now. Events that already fired or were canceled are left untouched.
// Rescheduling is O(1) and, when the deadline moves later, touches no
// wheel structure at all: the standing entry defers itself when it drains.
//
//voxel:allocfree
func (s *Sim) Reschedule(e *Event, t Time) {
	if e == nil || e.state != statePending {
		return
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.At = t
	e.seq = s.seq
	if t >= e.placedAt {
		// Deadline moved later (or stayed put): the entry already in the
		// wheel arrives first and will hop forward to (e.At, e.seq) — the
		// exact position an eager re-insert would occupy — when it drains.
		return
	}
	e.placed = s.seq
	e.placedAt = t
	s.place(entry{at: t, seq: s.seq, ev: e})
}

// Halt stops the event loop after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Halted reports whether Halt has been called. A halted simulator executes
// no further events and its clock is frozen at the last executed event.
func (s *Sim) Halted() bool { return s.halted }

// peek positions duePos on the next live entry whose slot starts at or
// before limit, skipping tombstones, and returns it without consuming it.
// The returned entry's time may still exceed limit by up to one slot;
// callers enforcing a deadline must compare against entry.at.
//
//voxel:allocfree
func (s *Sim) peek(limit Time) (entry, bool) {
	for {
		for s.duePos < len(s.due) {
			en := s.due[s.duePos]
			e := en.ev
			if e.seq == en.seq && e.state == statePending {
				return en, true
			}
			s.duePos++
			if e.placed == en.seq && e.state == statePending {
				// The event's deadline was lazily moved later; this entry is
				// its standing placement. Hop it forward to the current
				// (At, seq) — still in the future, so ordering is exact.
				e.placed = e.seq
				e.placedAt = e.At
				s.place(entry{at: e.At, seq: e.seq, ev: e})
			}
			// Otherwise: tombstone — canceled, superseded, or recycled.
		}
		if !s.refill(limit) {
			return entry{}, false
		}
	}
}

// refill advances the cursor to the next slot holding entries — promoting
// overflow events that enter the window on the way — and swaps that bucket
// into due, sorted. It reports false when there is nothing to drain at or
// before limit (the cursor is left where it is so a later, larger limit
// can resume the scan).
//
//voxel:allocfree
func (s *Sim) refill(limit Time) bool {
	for {
		if ns, ok := s.nextOccupied(); ok {
			if Time(ns<<tickShift) > limit {
				return false
			}
			s.cursor = ns
			s.promote()
			b := int(ns & wheelMask)
			s.occ[b>>6] &^= 1 << (uint(b) & 63)
			if old := s.due[:0]; cap(old) > 0 {
				s.spare = append(s.spare, old)
			}
			s.due, s.slots[b] = s.slots[b], nil
			s.duePos = 0
			sortEntries(s.due)
			return true
		}
		if len(s.overflow) == 0 {
			return false
		}
		// The wheel is empty: jump the window to the overflow head. Its
		// entries land in due (slot == cursor) or in buckets ahead of it.
		head := s.overflow[0]
		if head.at > limit {
			return false
		}
		s.cursor = int64(head.at) >> tickShift
		s.promote()
		if s.duePos < len(s.due) {
			return true
		}
	}
}

// promote moves overflow entries whose slot has entered the near window
// into the wheel. The heap is (at, seq)-ordered and at is monotone in
// slot, so popping from the head visits exactly the entries due in.
//
//voxel:allocfree
func (s *Sim) promote() {
	horizon := Time((s.cursor + wheelSlots) << tickShift)
	for len(s.overflow) > 0 && s.overflow[0].at < horizon {
		s.place(s.overflow.pop())
	}
}

// nextOccupied scans the occupancy bitmap in window order — slot cursor
// first, wrapping across all wheelSlots buckets — and returns the absolute
// slot index of the nearest non-empty bucket.
//
//voxel:allocfree
func (s *Sim) nextOccupied() (int64, bool) {
	base := s.cursor & wheelMask
	w := int(base >> 6)
	off := uint(base & 63)
	if word := s.occ[w] >> off; word != 0 {
		return s.cursor + int64(bits.TrailingZeros64(word)), true
	}
	for i := 1; i <= wheelWords; i++ {
		idx := (w + i) & (wheelWords - 1)
		word := s.occ[idx]
		if word == 0 {
			continue
		}
		p := int64(idx<<6) + int64(bits.TrailingZeros64(word))
		delta := (p - base) & wheelMask
		if delta == 0 {
			continue // bit base in the revisited word; covered by the first check
		}
		return s.cursor + delta, true
	}
	return 0, false
}

// fire consumes the peeked entry at duePos, advances the clock, and runs
// the callback.
func (s *Sim) fire(en entry) {
	s.duePos++
	if en.at < s.now {
		// With a checker armed this becomes a typed Violation the harness
		// can attribute; otherwise keep the legacy panic text.
		s.check.Failf("sim", "sim.clock-monotone",
			"next event at %v behind clock %v", en.at, s.now)
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", en.at, s.now))
	}
	s.now = en.at
	e := en.ev
	fn := e.Fn
	e.Fn = nil
	e.state = stateFired
	s.live--
	s.nexec++
	fn()
	s.free = append(s.free, e)
}

// Step executes the next pending event, advancing virtual time to it.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	if s.halted {
		return false
	}
	en, ok := s.peek(infTime)
	if !ok {
		return false
	}
	s.fire(en)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with At <= deadline, then sets now to deadline
// (if the queue drained or the next event lies beyond it) and returns. A
// halted simulator does not advance: its clock stays frozen at the last
// executed event.
func (s *Sim) RunUntil(deadline Time) {
	for !s.halted {
		en, ok := s.peek(deadline)
		if !ok || en.at > deadline {
			break
		}
		s.fire(en)
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// RunUntilBudget is RunUntil with an event budget: it executes at most
// budget events with At <= deadline and reports whether the budget was
// exhausted with runnable work still pending. When it returns false the
// semantics are exactly RunUntil's (the clock lands on deadline); when it
// returns true the clock stays at the last executed event so a watchdog
// can attribute the overrun to a precise virtual instant. A zero-delay
// event storm — the failure mode a plain RunUntil cannot escape, because
// the clock never reaches the deadline — is bounded by the budget.
func (s *Sim) RunUntilBudget(deadline Time, budget uint64) (exhausted bool) {
	for !s.halted {
		en, ok := s.peek(deadline)
		if !ok || en.at > deadline {
			break
		}
		if budget == 0 {
			return true
		}
		s.fire(en)
		budget--
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
	return false
}

// Pending returns the number of scheduled events (excluding canceled ones,
// whose tombstones may still be waiting to be swept).
func (s *Sim) Pending() int { return s.live }

// entryHeap is a plain binary min-heap of entries ordered by (at, seq).
// It is hand-rolled instead of using container/heap so pushes and pops
// stay free of interface boxing.
type entryHeap []entry

//voxel:allocfree
func (h *entryHeap) push(en entry) {
	*h = append(*h, en)
	es := *h
	i := len(es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(es[i], es[parent]) {
			break
		}
		es[i], es[parent] = es[parent], es[i]
		i = parent
	}
}

//voxel:allocfree
func (h *entryHeap) pop() entry {
	es := *h
	top := es[0]
	n := len(es) - 1
	es[0] = es[n]
	es[n] = entry{}
	es = es[:n]
	*h = es
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && entryLess(es[r], es[l]) {
			min = r
		}
		if !entryLess(es[min], es[i]) {
			break
		}
		es[i], es[min] = es[min], es[i]
		i = min
	}
	return top
}

// sortEntries orders a drained bucket by (at, seq): insertion sort for the
// typical small slot, in-place heapsort beyond that. No allocations either
// way, and (at, seq) is a total order so stability is irrelevant.
//
//voxel:allocfree
func sortEntries(es []entry) {
	n := len(es)
	if n < 2 {
		return
	}
	if n <= 32 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && entryLess(es[j], es[j-1]); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEntries(es, i, n)
	}
	for i := n - 1; i > 0; i-- {
		es[0], es[i] = es[i], es[0]
		siftDownEntries(es, 0, i)
	}
}

//voxel:allocfree
func siftDownEntries(es []entry, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		max := l
		if r := l + 1; r < n && entryLess(es[l], es[r]) {
			max = r
		}
		if !entryLess(es[i], es[max]) {
			return
		}
		es[i], es[max] = es[max], es[i]
		i = max
	}
}

// Timer is a re-armable one-shot timer bound to a simulator, mirroring the
// shape of time.Timer for transport retransmission deadlines. Timer is the
// safe way to hold an event across firings: the wrapper drops the handle
// before invoking the callback, so Stop and Arm can never act on a recycled
// Event that now belongs to someone else.
type Timer struct {
	sim  *Sim
	ev   *Event
	fn   func()
	wrap func() // built once: re-arming must not allocate a closure
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
func NewTimer(s *Sim, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	t := &Timer{sim: s, fn: fn}
	t.wrap = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

// Arm (re)sets the timer to fire after d. Any earlier deadline is replaced.
// Re-arming an armed timer reschedules its event in place, which keeps the
// wheel untouched when the deadline only moves later.
//
//voxel:allocfree
func (t *Timer) Arm(d Time) {
	if t.ev != nil {
		if d < 0 {
			d = 0
		}
		t.sim.Reschedule(t.ev, t.sim.Now()+d)
		return
	}
	t.ev = t.sim.Schedule(d, t.wrap)
}

// ArmAt (re)sets the timer to fire at absolute time at.
//
//voxel:allocfree
func (t *Timer) ArmAt(at Time) {
	if t.ev != nil {
		t.sim.Reschedule(t.ev, at)
		return
	}
	t.ev = t.sim.At(at, t.wrap)
}

// Stop disarms the timer if it is pending.
//
//voxel:allocfree
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending deadline; ok is false when unarmed.
func (t *Timer) Deadline() (at Time, ok bool) {
	if t.ev == nil {
		return 0, false
	}
	return t.ev.At, true
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// All VOXEL experiments run on virtual time: the transport, the network
// emulation, the player, and the cross-traffic generator schedule callbacks
// on a shared event loop. Two runs with the same seed produce identical
// results, and simulated minutes complete in real milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time measured as a duration since the start of the
// simulation. It is kept distinct from time.Time on purpose: there is no
// wall-clock anchor, and arithmetic on durations is all the kernel needs.
type Time = time.Duration

// Event is a scheduled callback. Events are ordered by time; ties break by
// insertion sequence so that scheduling order is deterministic.
//
// Event handles are owned by the scheduler: once an event has fired or been
// canceled, the handle must not be used again (the Event may be recycled for
// a later Schedule/At call). Holders that outlive their event — like Timer —
// must drop the pointer when it fires.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 once popped or canceled
}

// Canceled reports whether the event was canceled or already fired.
func (e *Event) Canceled() bool { return e.idx < 0 && e.Fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; everything in a simulation runs on its event loop.
type Sim struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	nexec  uint64
	halted bool
	free   []*Event // recycled events; Schedule/At pop from here
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.nexec }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run as soon as the loop reaches the current instant again).
func (s *Sim) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Times in the past are clamped
// to now.
func (s *Sim) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.At, e.Fn, e.seq = t, fn, s.seq
	} else {
		e = &Event{At: t, Fn: fn, seq: s.seq}
	}
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event. Canceling an event that already fired or
// was already canceled is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
	e.Fn = nil
	e.idx = -1
	s.free = append(s.free, e)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. The event is re-armed in place — the caller's handle stays
// valid — and takes a fresh insertion sequence, so it orders after events
// already scheduled for the same instant. Times in the past are clamped to
// now. Events that already fired or were canceled are left untouched.
func (s *Sim) Reschedule(e *Event, t Time) {
	if e == nil || e.Fn == nil || e.idx < 0 {
		return
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.At = t
	e.seq = s.seq
	heap.Fix(&s.queue, e.idx)
}

// Halt stops the event loop after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Step executes the next pending event, advancing virtual time to it.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	if s.halted || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.At < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", e.At, s.now))
	}
	s.now = e.At
	fn := e.Fn
	e.Fn = nil
	s.nexec++
	fn()
	s.free = append(s.free, e)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with At <= deadline, then sets now to deadline
// (if the queue drained earlier) and returns.
func (s *Sim) RunUntil(deadline Time) {
	for !s.halted && len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.queue) }

// Timer is a re-armable one-shot timer bound to a simulator, mirroring the
// shape of time.Timer for transport retransmission deadlines.
type Timer struct {
	sim  *Sim
	ev   *Event
	fn   func()
	wrap func() // built once: re-arming must not allocate a closure
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
func NewTimer(s *Sim, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	t := &Timer{sim: s, fn: fn}
	t.wrap = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

// Arm (re)sets the timer to fire after d. Any earlier deadline is replaced.
func (t *Timer) Arm(d Time) {
	t.Stop()
	t.ev = t.sim.Schedule(d, t.wrap)
}

// ArmAt (re)sets the timer to fire at absolute time at.
func (t *Timer) ArmAt(at Time) {
	t.Stop()
	t.ev = t.sim.At(at, t.wrap)
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending deadline; ok is false when unarmed.
func (t *Timer) Deadline() (at Time, ok bool) {
	if t.ev == nil {
		return 0, false
	}
	return t.ev.At, true
}

package sim

import (
	"testing"
	"time"
)

// RunUntilBudget must stop a self-perpetuating zero-delay event storm —
// the case plain RunUntil never returns from — and report exhaustion
// without advancing the clock past the last fired event.
func TestRunUntilBudgetStopsEventStorm(t *testing.T) {
	s := New(1)
	fired := 0
	var spin func()
	spin = func() {
		fired++
		s.Schedule(0, spin)
	}
	s.Schedule(time.Millisecond, spin)
	if !s.RunUntilBudget(time.Second, 1000) {
		t.Fatal("storm did not exhaust the budget")
	}
	if fired != 1000 {
		t.Fatalf("fired %d events, want exactly the 1000 budget", fired)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("clock = %v, want pinned at the storm's instant", s.Now())
	}
	// The storm is still pending; a second call resumes exactly where the
	// first stopped.
	if !s.RunUntilBudget(time.Second, 500) {
		t.Fatal("resumed storm did not exhaust")
	}
	if fired != 1500 {
		t.Fatalf("fired %d after resume, want 1500", fired)
	}
}

// Draining the queue within budget is not exhaustion: the clock must
// fast-forward to the deadline exactly like RunUntil.
func TestRunUntilBudgetDrainsLikeRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	if s.RunUntilBudget(time.Second, 5) {
		t.Fatal("exact-budget completion flagged as exhausted")
	}
	if fired != 5 {
		t.Fatalf("fired %d, want 5", fired)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want fast-forwarded to the deadline", s.Now())
	}
}

// Events beyond the deadline stay queued and the call is not exhausted.
func TestRunUntilBudgetRespectsDeadline(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(time.Millisecond, func() { fired++ })
	s.Schedule(time.Hour, func() { fired++ })
	if s.RunUntilBudget(time.Second, 100) {
		t.Fatal("deadline stop flagged as exhausted")
	}
	if fired != 1 || s.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d, want 1/1", fired, s.Pending())
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v, want deadline", s.Now())
	}
}

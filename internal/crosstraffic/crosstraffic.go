// Package crosstraffic implements a Harpoon-style flow-level traffic
// generator (§5.1, "In-lab trials with cross traffic"): clients fetch files
// of heavy-tailed (Pareto) sizes at exponentially distributed think times,
// producing self-similar load with pronounced high- and low-bandwidth
// regions rather than a constant rate. Each flow runs a Reno-style AIMD
// congestion controller through the same bottleneck queue as the video
// traffic, so the competing load is reactive, as with Harpoon's TCP flows.
package crosstraffic

import (
	"math"

	"voxel/internal/cc"
	"voxel/internal/netem"
	"voxel/internal/sim"
)

// packetSize is the cross-traffic MTU (matches the video traffic).
const packetSize = cc.MSS + 40

// Stats summarizes generator activity.
type Stats struct {
	FlowsStarted   uint64
	FlowsCompleted uint64
	BytesDelivered uint64
	PacketsLost    uint64
}

// Generator drives the cross-traffic flows.
type Generator struct {
	sim  *sim.Sim
	path *netem.Path
	// TargetRate is the average offered load in bits per second.
	TargetRate float64
	// MeanFileBytes is the mean Pareto file size (default 256 KiB).
	MeanFileBytes float64
	// ParetoAlpha is the tail index (default 1.3 — heavy-tailed).
	ParetoAlpha float64

	stats   Stats
	stopped bool
	// arrival is the pending next-arrival event, kept so Stop can cancel
	// it: an arrival scheduled before Stop must not start one last flow.
	arrival *sim.Event
}

// New returns a generator offering targetRate bps of load through path.
func New(s *sim.Sim, path *netem.Path, targetRate float64) *Generator {
	return &Generator{
		sim:           s,
		path:          path,
		TargetRate:    targetRate,
		MeanFileBytes: 256 << 10,
		ParetoAlpha:   1.3,
	}
}

// Stats returns a snapshot of the counters.
func (g *Generator) Stats() Stats { return g.stats }

// Stop halts new flow arrivals (running flows drain). Any already-scheduled
// arrival is canceled, so FlowsStarted is final the moment Stop returns.
func (g *Generator) Stop() {
	g.stopped = true
	if g.arrival != nil {
		g.sim.Cancel(g.arrival)
		g.arrival = nil
	}
}

// Start begins the arrival process.
func (g *Generator) Start() {
	g.scheduleArrival()
}

func (g *Generator) scheduleArrival() {
	if g.stopped || g.TargetRate <= 0 {
		return
	}
	// Offered load = arrivalRate × meanBytes × 8.
	lambda := g.TargetRate / (g.MeanFileBytes * 8)
	wait := sim.Time(g.sim.Rand().ExpFloat64() / lambda * float64(sim.Time(1e9)))
	g.arrival = g.sim.Schedule(wait, func() {
		// The handle just fired; drop it so Stop can't cancel a recycled
		// event.
		g.arrival = nil
		g.startFlow(g.fileSize())
		g.scheduleArrival()
	})
}

// fileSize draws a bounded Pareto file size with the configured mean.
func (g *Generator) fileSize() int {
	a := g.ParetoAlpha
	xm := g.MeanFileBytes * (a - 1) / a
	u := g.sim.Rand().Float64()
	size := xm / math.Pow(1-u, 1/a)
	if size > 64<<20 {
		size = 64 << 20
	}
	if size < 1<<10 {
		size = 1 << 10
	}
	return int(size)
}

// flow is one AIMD file transfer through the bottleneck.
type flow struct {
	g         *Generator
	ctl       *cc.Reno
	remaining int // bytes not yet sent
	nextSeq   uint64
	largest   uint64 // largest acked seq
	anyAcked  bool
	inflight  map[uint64]flowPkt
	pto       *sim.Timer
	done      bool
	totalSent int
}

type flowPkt struct {
	size   int
	sentAt sim.Time
}

func (g *Generator) startFlow(size int) {
	g.stats.FlowsStarted++
	f := &flow{
		g:         g,
		ctl:       cc.NewReno(),
		remaining: size,
		inflight:  make(map[uint64]flowPkt),
	}
	f.pto = sim.NewTimer(g.sim, f.onPTO)
	f.send()
}

func (f *flow) send() {
	for f.remaining > 0 && f.ctl.CanSend(packetSize) {
		size := packetSize
		if f.remaining < size {
			size = f.remaining
		}
		f.remaining -= size
		f.transmit(f.nextSeq, size)
		f.nextSeq++
	}
	f.maybeFinish()
}

func (f *flow) transmit(seq uint64, size int) {
	now := f.g.sim.Now()
	f.ctl.OnPacketSent(now, size)
	f.inflight[seq] = flowPkt{size: size, sentAt: now}
	f.totalSent += size
	g := f.g
	g.path.Down.Send(netem.Datagram{Size: size, Deliver: func() {
		// Receiver immediately acks; the ACK crosses the uplink.
		g.path.Up.Send(netem.Datagram{Size: 40, Deliver: func() {
			f.onAck(seq)
		}})
	}})
	if !f.pto.Armed() {
		f.pto.Arm(f.ptoInterval())
	}
}

func (f *flow) ptoInterval() sim.Time {
	// Conservative: a few RTTs of this topology.
	return 4 * 2 * netem.DefaultLastMileDelay
}

func (f *flow) onAck(seq uint64) {
	now := f.g.sim.Now()
	pkt, ok := f.inflight[seq]
	if ok {
		delete(f.inflight, seq)
		f.ctl.OnAck(now, pkt.size, now-pkt.sentAt)
		f.g.stats.BytesDelivered += uint64(pkt.size)
	}
	if !f.anyAcked || seq > f.largest {
		f.largest = seq
		f.anyAcked = true
	}
	// Packet-threshold loss detection: anything 3 behind the largest acked
	// and still in flight is lost — retransmit its bytes as new data.
	newEvent := true
	for s, p := range f.inflight {
		if f.largest >= 3 && s <= f.largest-3 {
			delete(f.inflight, s)
			f.ctl.OnLoss(now, p.size, newEvent)
			newEvent = false
			f.g.stats.PacketsLost++
			f.remaining += p.size
		}
	}
	if len(f.inflight) == 0 {
		f.pto.Stop()
	} else {
		f.pto.Arm(f.ptoInterval())
	}
	f.send()
}

func (f *flow) onPTO() {
	if f.done {
		return
	}
	now := f.g.sim.Now()
	// Everything in flight is presumed lost.
	for s, p := range f.inflight {
		delete(f.inflight, s)
		f.remaining += p.size
		f.g.stats.PacketsLost++
	}
	f.ctl.OnRetransmissionTimeout(now)
	f.send()
	if len(f.inflight) > 0 {
		f.pto.Arm(2 * f.ptoInterval())
	}
}

func (f *flow) maybeFinish() {
	if f.done || f.remaining > 0 || len(f.inflight) > 0 {
		return
	}
	f.done = true
	f.pto.Stop()
	f.g.stats.FlowsCompleted++
}

package crosstraffic

import (
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/sim"
	"voxel/internal/stats"
	"voxel/internal/trace"
)

func run(t *testing.T, seed int64, linkMbps, targetMbps float64, dur time.Duration) (*Generator, *netem.Path, *sim.Sim) {
	t.Helper()
	s := sim.New(seed)
	tr := trace.Constant("link", linkMbps*1e6, int(dur/time.Second)+10)
	path := netem.NewPath(s, tr, 64)
	g := New(s, path, targetMbps*1e6)
	g.Start()
	s.RunUntil(dur)
	return g, path, s
}

func TestOfferedLoadApproximatesTarget(t *testing.T) {
	// On an uncongested link the delivered load should approach the target.
	g, _, _ := run(t, 1, 100, 10, 120*time.Second)
	st := g.Stats()
	achieved := float64(st.BytesDelivered) * 8 / 120
	if achieved < 4e6 || achieved > 25e6 {
		t.Fatalf("achieved %.1f Mbps for a 10 Mbps target", achieved/1e6)
	}
	if st.FlowsStarted == 0 || st.FlowsCompleted == 0 {
		t.Fatalf("no flows ran: %+v", st)
	}
}

func TestLoadIsBursty(t *testing.T) {
	// Harpoon-like traffic is self-similar: per-second delivered bytes
	// must vary substantially (cov > 0.3), not be a constant rate.
	s := sim.New(2)
	tr := trace.Constant("link", 100e6, 200)
	path := netem.NewPath(s, tr, 64)
	g := New(s, path, 10e6)
	g.Start()
	var perSec []float64
	var last uint64
	for sec := 1; sec <= 120; sec++ {
		s.RunUntil(time.Duration(sec) * time.Second)
		st := g.Stats()
		perSec = append(perSec, float64(st.BytesDelivered-last))
		last = st.BytesDelivered
	}
	mean := stats.Mean(perSec)
	sd := stats.StdDev(perSec)
	if mean == 0 {
		t.Fatal("no traffic")
	}
	if cov := sd / mean; cov < 0.3 {
		t.Fatalf("coefficient of variation %.2f — traffic too smooth", cov)
	}
}

func TestReactiveUnderCongestion(t *testing.T) {
	// Offered 30 Mbps through a 10 Mbps link: delivery is capped by the
	// link and flows experience loss (they back off rather than flood).
	g, path, _ := run(t, 3, 10, 30, 60*time.Second)
	st := g.Stats()
	achieved := float64(st.BytesDelivered) * 8 / 60
	if achieved > 11e6 {
		t.Fatalf("achieved %.1f Mbps through a 10 Mbps link", achieved/1e6)
	}
	if st.PacketsLost == 0 {
		t.Fatal("expected losses under congestion")
	}
	ls := path.Down.Stats()
	if ls.Dropped == 0 {
		t.Fatal("queue should have dropped packets")
	}
}

func TestStopHaltsArrivals(t *testing.T) {
	s := sim.New(4)
	tr := trace.Constant("link", 100e6, 600)
	path := netem.NewPath(s, tr, 64)
	g := New(s, path, 10e6)
	g.Start()
	s.RunUntil(20 * time.Second)
	started := g.Stats().FlowsStarted
	if started == 0 {
		t.Fatal("no flows arrived before Stop")
	}
	g.Stop()
	// Stop cancels the pending arrival, so FlowsStarted is final the moment
	// it returns — even after the sim drains every remaining event.
	s.RunUntil(600 * time.Second)
	if got := g.Stats().FlowsStarted; got != started {
		t.Fatalf("flows kept arriving after Stop: %d → %d", started, got)
	}
	// Stop is idempotent and safe with no pending arrival.
	g.Stop()
}

func TestDeterminism(t *testing.T) {
	a, _, _ := run(t, 42, 20, 15, 60*time.Second)
	b, _, _ := run(t, 42, 20, 15, 60*time.Second)
	if a.Stats() != b.Stats() {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestParetoFileSizes(t *testing.T) {
	s := sim.New(5)
	tr := trace.Constant("link", 100e6, 10)
	path := netem.NewPath(s, tr, 64)
	g := New(s, path, 10e6)
	var sizes []float64
	for i := 0; i < 5000; i++ {
		sizes = append(sizes, float64(g.fileSize()))
	}
	mean := stats.Mean(sizes)
	if mean < 0.4*g.MeanFileBytes || mean > 3*g.MeanFileBytes {
		t.Fatalf("mean file size %.0f, want ≈%.0f", mean, g.MeanFileBytes)
	}
	// Heavy tail: the max should dwarf the median.
	med := stats.Percentile(sizes, 50)
	if stats.Max(sizes) < 10*med {
		t.Fatalf("tail not heavy: max %.0f vs median %.0f", stats.Max(sizes), med)
	}
	// Bounds respected.
	if stats.Min(sizes) < 1<<10 || stats.Max(sizes) > 64<<20 {
		t.Fatal("size bounds violated")
	}
}

// Package dash models the DASH manifest (MPD) including VOXEL's extension
// (§4.1, Listing 1): per-segment `ssims` score tuples, `reliable` and
// `unreliable` byte-range lists, and `reliableSize`. VOXEL never modifies
// video files — all cross-layer information travels in the manifest, which
// VOXEL-unaware clients simply ignore (the compatibility property §4.1
// stresses).
//
// The package provides both the typed in-memory Manifest the player
// consumes and a faithful XML wire encoding with parsers for the custom
// attributes.
package dash

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"time"

	"voxel/internal/prep"
	"voxel/internal/video"
)

// SegmentInfo describes one segment of one representation.
type SegmentInfo struct {
	// MediaRange is the [start, end) byte range of the segment within the
	// representation's media file.
	MediaRange [2]int64
	// Bytes is the segment size.
	Bytes int
	// Points is the bytes→QoE curve (VOXEL manifests only; nil otherwise).
	Points []prep.QoEPoint
	// Reliable lists byte ranges (segment-relative) that must travel
	// reliably: the I-frame and all frame headers.
	Reliable [][2]int
	// Unreliable lists the body byte ranges in download order.
	Unreliable [][2]int
	// ReliableSize is the total size of the reliable part.
	ReliableSize int
}

// Voxel reports whether the segment carries VOXEL metadata.
func (s *SegmentInfo) Voxel() bool { return len(s.Points) > 0 }

// RepInfo describes one representation (quality level).
type RepInfo struct {
	Quality    video.Quality
	Bandwidth  int // bits per second, ladder average
	Resolution string
	Segments   []SegmentInfo
}

// Manifest is the typed MPD.
type Manifest struct {
	Title           string
	SegmentDuration time.Duration
	Reps            []RepInfo
}

// NumSegments returns the segment count (identical across representations).
func (m *Manifest) NumSegments() int {
	if len(m.Reps) == 0 {
		return 0
	}
	return len(m.Reps[0].Segments)
}

// Duration returns the media duration.
func (m *Manifest) Duration() time.Duration {
	return time.Duration(m.NumSegments()) * m.SegmentDuration
}

// Segment returns the info for (quality, index).
func (m *Manifest) Segment(q video.Quality, idx int) *SegmentInfo {
	return &m.Reps[q].Segments[idx]
}

// BuildOptions controls manifest construction.
type BuildOptions struct {
	// Voxel enables the §4.1 enrichment (orderings, score tuples, ranges).
	Voxel bool
	// PointsPerSegment thins the QoE curve per segment (Listing 1 shows a
	// handful of tuples); 0 means keep everything.
	PointsPerSegment int
	// Analyzer overrides the default analyzer.
	Analyzer *prep.Analyzer
}

// Build constructs the manifest for a title, optionally enriched.
func Build(v *video.Video, opts BuildOptions) *Manifest {
	a := opts.Analyzer
	if a == nil {
		a = prep.NewAnalyzer()
	}
	m := &Manifest{Title: v.Title, SegmentDuration: video.SegmentDuration}
	for q := video.Quality(0); q < video.NumQualities; q++ {
		rep := RepInfo{
			Quality:    q,
			Bandwidth:  int(video.Ladder[q].AvgBitrate),
			Resolution: video.Ladder[q].Resolution,
		}
		var plans []prep.Plan
		if opts.Voxel {
			plans = a.AnalyzeVideo(v, q)
		}
		var offset int64
		for i := 0; i < v.Segments; i++ {
			s := v.Segment(i, q)
			info := SegmentInfo{
				MediaRange: [2]int64{offset, offset + int64(s.TotalBytes())},
				Bytes:      s.TotalBytes(),
			}
			if opts.Voxel {
				p := plans[i]
				points := p.Points
				if opts.PointsPerSegment > 0 {
					points = prep.ThinPoints(points, opts.PointsPerSegment)
				}
				info.Points = points
				info.Reliable = prep.ReliableRanges(s)
				info.Unreliable = prep.UnreliableRanges(s, p.Order)
				info.ReliableSize = p.ReliableSize
			}
			offset += int64(s.TotalBytes())
			rep.Segments = append(rep.Segments, info)
		}
		m.Reps = append(m.Reps, rep)
	}
	return m
}

// --- XML wire format ---

type xmlMPD struct {
	XMLName  xml.Name    `xml:"MPD"`
	Xmlns    string      `xml:"xmlns,attr"`
	Type     string      `xml:"type,attr"`
	Duration string      `xml:"mediaPresentationDuration,attr"`
	Title    string      `xml:"title,attr"`
	Period   []xmlPeriod `xml:"Period"`
}

type xmlPeriod struct {
	AdaptationSet []xmlAdaptationSet `xml:"AdaptationSet"`
}

type xmlAdaptationSet struct {
	MimeType       string              `xml:"mimeType,attr"`
	Representation []xmlRepresentation `xml:"Representation"`
}

type xmlRepresentation struct {
	ID          string         `xml:"id,attr"`
	Bandwidth   int            `xml:"bandwidth,attr"`
	Resolution  string         `xml:"resolution,attr"`
	SegmentList xmlSegmentList `xml:"SegmentList"`
}

type xmlSegmentList struct {
	DurationMS int             `xml:"duration,attr"`
	SegmentURL []xmlSegmentURL `xml:"SegmentURL"`
}

type xmlSegmentURL struct {
	MediaRange   string `xml:"mediaRange,attr"`
	SSIMs        string `xml:"ssims,attr,omitempty"`
	Reliable     string `xml:"reliable,attr,omitempty"`
	Unreliable   string `xml:"unreliable,attr,omitempty"`
	ReliableSize int    `xml:"reliableSize,attr,omitempty"`
}

// formatRange renders "start-end" with an inclusive end, as HTTP ranges and
// Listing 1 do.
func formatRange(start, end int64) string {
	return fmt.Sprintf("%d-%d", start, end-1)
}

func parseRange(s string) (start, end int64, err error) {
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return 0, 0, fmt.Errorf("dash: malformed range %q", s)
	}
	start, err = strconv.ParseInt(s[:dash], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("dash: malformed range %q: %w", s, err)
	}
	last, err := strconv.ParseInt(s[dash+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("dash: malformed range %q: %w", s, err)
	}
	if last < start {
		return 0, 0, fmt.Errorf("dash: inverted range %q", s)
	}
	return start, last + 1, nil
}

func formatRangeList(ranges [][2]int) string {
	parts := make([]string, len(ranges))
	for i, r := range ranges {
		parts[i] = formatRange(int64(r[0]), int64(r[1]))
	}
	return strings.Join(parts, ",")
}

func parseRangeList(s string) ([][2]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([][2]int, 0, len(parts))
	for _, p := range parts {
		start, end, err := parseRange(p)
		if err != nil {
			return nil, err
		}
		out = append(out, [2]int{int(start), int(end)})
	}
	return out, nil
}

// formatPoints renders the `ssims` attribute: comma-separated
// score:frames:bytes triples (Listing 1).
func formatPoints(points []prep.QoEPoint) string {
	parts := make([]string, len(points))
	for i, p := range points {
		parts[i] = fmt.Sprintf("%.4f:%d:%d", p.Score, p.Frames, p.Bytes)
	}
	return strings.Join(parts, ",")
}

func parsePoints(s string) ([]prep.QoEPoint, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]prep.QoEPoint, 0, len(parts))
	for _, p := range parts {
		fields := strings.Split(p, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("dash: malformed ssims tuple %q", p)
		}
		score, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dash: malformed score in %q: %w", p, err)
		}
		frames, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("dash: malformed frames in %q: %w", p, err)
		}
		bytes, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("dash: malformed bytes in %q: %w", p, err)
		}
		out = append(out, prep.QoEPoint{Score: score, Frames: frames, Bytes: bytes})
	}
	return out, nil
}

// EncodeMPD serializes the manifest to MPD XML.
func (m *Manifest) EncodeMPD() ([]byte, error) {
	doc := xmlMPD{
		Xmlns:    "urn:mpeg:dash:schema:mpd:2011",
		Type:     "static",
		Duration: m.Duration().String(),
		Title:    m.Title,
	}
	as := xmlAdaptationSet{MimeType: "video/mp4"}
	for _, rep := range m.Reps {
		xr := xmlRepresentation{
			ID:         rep.Quality.String(),
			Bandwidth:  rep.Bandwidth,
			Resolution: rep.Resolution,
			SegmentList: xmlSegmentList{
				DurationMS: int(m.SegmentDuration / time.Millisecond),
			},
		}
		for _, seg := range rep.Segments {
			xs := xmlSegmentURL{
				MediaRange: formatRange(seg.MediaRange[0], seg.MediaRange[1]),
			}
			if seg.Voxel() {
				xs.SSIMs = formatPoints(seg.Points)
				xs.Reliable = formatRangeList(seg.Reliable)
				xs.Unreliable = formatRangeList(seg.Unreliable)
				xs.ReliableSize = seg.ReliableSize
			}
			xr.SegmentList.SegmentURL = append(xr.SegmentList.SegmentURL, xs)
		}
		as.Representation = append(as.Representation, xr)
	}
	doc.Period = []xmlPeriod{{AdaptationSet: []xmlAdaptationSet{as}}}
	return xml.MarshalIndent(doc, "", "  ")
}

// DecodeMPD parses MPD XML into a Manifest. Unknown attributes are ignored,
// which is what makes VOXEL manifests backward compatible.
func DecodeMPD(data []byte) (*Manifest, error) {
	var doc xmlMPD
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	m := &Manifest{Title: doc.Title}
	if len(doc.Period) == 0 || len(doc.Period[0].AdaptationSet) == 0 {
		return nil, fmt.Errorf("dash: no adaptation set")
	}
	for qi, xr := range doc.Period[0].AdaptationSet[0].Representation {
		rep := RepInfo{
			Quality:    video.Quality(qi),
			Bandwidth:  xr.Bandwidth,
			Resolution: xr.Resolution,
		}
		if m.SegmentDuration == 0 {
			m.SegmentDuration = time.Duration(xr.SegmentList.DurationMS) * time.Millisecond
		}
		for _, xs := range xr.SegmentList.SegmentURL {
			start, end, err := parseRange(xs.MediaRange)
			if err != nil {
				return nil, err
			}
			seg := SegmentInfo{
				MediaRange:   [2]int64{start, end},
				Bytes:        int(end - start),
				ReliableSize: xs.ReliableSize,
			}
			if seg.Points, err = parsePoints(xs.SSIMs); err != nil {
				return nil, err
			}
			if seg.Reliable, err = parseRangeList(xs.Reliable); err != nil {
				return nil, err
			}
			if seg.Unreliable, err = parseRangeList(xs.Unreliable); err != nil {
				return nil, err
			}
			rep.Segments = append(rep.Segments, seg)
		}
		m.Reps = append(m.Reps, rep)
	}
	return m, nil
}

// Strip returns a copy without VOXEL metadata — what a VOXEL-unaware client
// effectively sees.
func (m *Manifest) Strip() *Manifest {
	out := &Manifest{Title: m.Title, SegmentDuration: m.SegmentDuration}
	for _, rep := range m.Reps {
		nr := RepInfo{Quality: rep.Quality, Bandwidth: rep.Bandwidth, Resolution: rep.Resolution}
		for _, seg := range rep.Segments {
			nr.Segments = append(nr.Segments, SegmentInfo{
				MediaRange: seg.MediaRange,
				Bytes:      seg.Bytes,
			})
		}
		out.Reps = append(out.Reps, nr)
	}
	return out
}

// SizeOverhead reports the manifest's encoded size relative to the average
// segment size at the top quality — the ≈16% figure §4.1 quotes.
func (m *Manifest) SizeOverhead() (manifestBytes int, fraction float64, err error) {
	data, err := m.EncodeMPD()
	if err != nil {
		return 0, 0, err
	}
	top := m.Reps[len(m.Reps)-1]
	var avg float64
	for _, s := range top.Segments {
		avg += float64(s.Bytes)
	}
	avg /= float64(len(top.Segments))
	return len(data), float64(len(data)) / avg, nil
}

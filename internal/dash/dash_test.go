package dash

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"voxel/internal/video"
)

// smallVideo trims a title to keep manifest tests fast.
func smallVideo(t *testing.T, name string, segs int) *video.Video {
	t.Helper()
	v := video.MustLoad(name)
	v.Segments = segs
	return v
}

func TestBuildPlainManifest(t *testing.T) {
	v := smallVideo(t, "BBB", 5)
	m := Build(v, BuildOptions{})
	if len(m.Reps) != video.NumQualities {
		t.Fatalf("%d reps, want %d", len(m.Reps), video.NumQualities)
	}
	if m.NumSegments() != 5 {
		t.Fatalf("%d segments", m.NumSegments())
	}
	if m.Duration() != 20*time.Second {
		t.Fatalf("duration %v", m.Duration())
	}
	// Media ranges tile each representation contiguously.
	for _, rep := range m.Reps {
		var off int64
		for i, seg := range rep.Segments {
			if seg.MediaRange[0] != off {
				t.Fatalf("rep %v seg %d starts at %d, want %d", rep.Quality, i, seg.MediaRange[0], off)
			}
			if seg.Voxel() {
				t.Fatal("plain manifest must not carry VOXEL data")
			}
			off = seg.MediaRange[1]
		}
	}
}

func TestBuildVoxelManifest(t *testing.T) {
	v := smallVideo(t, "ToS", 4)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 8})
	for q := video.Quality(0); q < video.NumQualities; q++ {
		for i := 0; i < 4; i++ {
			seg := m.Segment(q, i)
			if !seg.Voxel() {
				t.Fatalf("Q%d seg %d missing VOXEL data", q, i)
			}
			if len(seg.Points) > 8 {
				t.Fatalf("points not thinned: %d", len(seg.Points))
			}
			if seg.ReliableSize <= 0 {
				t.Fatal("reliable size missing")
			}
			// Reliable + unreliable ranges must cover the segment exactly.
			var total int
			for _, r := range seg.Reliable {
				total += r[1] - r[0]
			}
			if total != seg.ReliableSize {
				t.Fatalf("reliable ranges cover %d, attr says %d", total, seg.ReliableSize)
			}
			for _, r := range seg.Unreliable {
				total += r[1] - r[0]
			}
			if total != seg.Bytes {
				t.Fatalf("ranges cover %d of %d bytes", total, seg.Bytes)
			}
			// Last point must describe the full segment.
			last := seg.Points[len(seg.Points)-1]
			if last.Bytes != seg.Bytes || last.Frames != video.FramesPerSeg {
				t.Fatalf("last point %+v does not describe the full segment (%d bytes)", last, seg.Bytes)
			}
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	v := smallVideo(t, "BBB", 3)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 6})
	data, err := m.EncodeMPD()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ssims=") || !strings.Contains(string(data), "reliableSize=") {
		t.Fatal("encoded MPD missing VOXEL attributes")
	}
	got, err := DecodeMPD(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != m.Title || got.SegmentDuration != m.SegmentDuration {
		t.Fatalf("metadata mismatch: %q %v", got.Title, got.SegmentDuration)
	}
	if got.NumSegments() != m.NumSegments() || len(got.Reps) != len(m.Reps) {
		t.Fatal("shape mismatch after round trip")
	}
	for q := range m.Reps {
		for i := range m.Reps[q].Segments {
			a, b := m.Reps[q].Segments[i], got.Reps[q].Segments[i]
			if a.MediaRange != b.MediaRange || a.Bytes != b.Bytes || a.ReliableSize != b.ReliableSize {
				t.Fatalf("seg Q%d/%d scalar mismatch", q, i)
			}
			if len(a.Points) != len(b.Points) {
				t.Fatalf("seg Q%d/%d point count mismatch", q, i)
			}
			for j := range a.Points {
				if a.Points[j].Frames != b.Points[j].Frames || a.Points[j].Bytes != b.Points[j].Bytes {
					t.Fatalf("point mismatch at Q%d/%d/%d", q, i, j)
				}
				// scores travel with 4 decimals
				if d := a.Points[j].Score - b.Points[j].Score; d > 1e-4 || d < -1e-4 {
					t.Fatalf("score precision loss: %v vs %v", a.Points[j].Score, b.Points[j].Score)
				}
			}
			if len(a.Reliable) != len(b.Reliable) || len(a.Unreliable) != len(b.Unreliable) {
				t.Fatalf("range list mismatch at Q%d/%d", q, i)
			}
		}
	}
}

func TestStripRemovesVoxelData(t *testing.T) {
	v := smallVideo(t, "ED", 3)
	m := Build(v, BuildOptions{Voxel: true})
	plain := m.Strip()
	for q := range plain.Reps {
		for i := range plain.Reps[q].Segments {
			if plain.Reps[q].Segments[i].Voxel() {
				t.Fatal("Strip left VOXEL data behind")
			}
		}
	}
	// The original is untouched.
	if !m.Segment(12, 0).Voxel() {
		t.Fatal("Strip mutated the source manifest")
	}
}

func TestBackwardCompatibleDecoding(t *testing.T) {
	// A VOXEL manifest parsed and re-encoded without the custom attributes
	// must still decode — the compatibility path for unaware clients.
	v := smallVideo(t, "BBB", 2)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 4})
	data, err := m.Strip().EncodeMPD()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMPD(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Segment(12, 0).Voxel() {
		t.Fatal("plain manifest decoded with VOXEL data")
	}
	if got.Segment(12, 0).Bytes != m.Segment(12, 0).Bytes {
		t.Fatal("sizes lost")
	}
}

func TestManifestOverheadPlausible(t *testing.T) {
	// §4.1: the naive encoding adds ≈16% of an average Q12 segment. Ours
	// should be within the same order of magnitude.
	v := smallVideo(t, "BBB", 10)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 12})
	bytes, frac, err := m.SizeOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("no manifest bytes")
	}
	if frac <= 0 || frac > 1.5 {
		t.Fatalf("overhead fraction %.3f implausible", frac)
	}
}

func TestParseRangeErrors(t *testing.T) {
	bad := []string{"", "5", "a-b", "9-3", "5-"}
	for _, s := range bad {
		if _, _, err := parseRange(s); err == nil {
			t.Errorf("parseRange(%q) should fail", s)
		}
	}
	if _, err := parsePoints("0.9:5"); err == nil {
		t.Error("malformed tuple should fail")
	}
	if _, err := parsePoints("x:1:2"); err == nil {
		t.Error("bad score should fail")
	}
}

func TestPropertyRangeListRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		var ranges [][2]int
		cur := 0
		for _, r := range raw {
			start := cur + int(r%100)
			end := start + int(r>>8%100) + 1
			ranges = append(ranges, [2]int{start, end})
			cur = end + 1
		}
		got, err := parseRangeList(formatRangeList(ranges))
		if err != nil {
			return false
		}
		if len(got) != len(ranges) {
			return len(ranges) == 0 && len(got) == 0
		}
		for i := range got {
			if got[i] != ranges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}

package dash

// Compact binary manifest encoding. §4.1 notes that the XML enrichment is
// a naive, unoptimized proof of concept whose ≈16%-of-a-segment size
// "can be mitigated by using a better encoding scheme for the metadata".
// This codec is that better scheme: varint-delta encoding of ranges and
// score tuples, typically an order of magnitude smaller than the MPD XML.
// The XML form remains the interoperable default; the compact form is an
// opt-in transfer encoding.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"voxel/internal/prep"
	"voxel/internal/video"
)

// compactMagic guards against decoding arbitrary bytes.
var compactMagic = [4]byte{'V', 'X', 'M', '1'}

var errCompact = errors.New("dash: malformed compact manifest")

type compactWriter struct{ buf []byte }

func (w *compactWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *compactWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

type compactReader struct{ buf []byte }

func (r *compactReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, errCompact
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *compactReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)) < n {
		return "", errCompact
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

// EncodeCompact serializes the manifest in the compact binary form.
func (m *Manifest) EncodeCompact() []byte {
	w := &compactWriter{}
	w.buf = append(w.buf, compactMagic[:]...)
	w.str(m.Title)
	w.uvarint(uint64(m.SegmentDuration / time.Millisecond))
	w.uvarint(uint64(len(m.Reps)))
	for _, rep := range m.Reps {
		w.uvarint(uint64(rep.Bandwidth))
		w.str(rep.Resolution)
		w.uvarint(uint64(len(rep.Segments)))
		for _, seg := range rep.Segments {
			// Media ranges tile the representation, so the start is
			// implied; only sizes travel.
			w.uvarint(uint64(seg.Bytes))
			w.uvarint(uint64(seg.ReliableSize))
			// Score tuples: scores as scaled fixed-point deltas would save
			// little; frames/bytes delta-encode well.
			w.uvarint(uint64(len(seg.Points)))
			prevFrames, prevBytes := uint64(0), uint64(0)
			for _, p := range seg.Points {
				w.uvarint(uint64(math.Round(p.Score * 10000)))
				w.uvarint(uint64(p.Frames) - prevFrames)
				w.uvarint(uint64(p.Bytes) - prevBytes)
				prevFrames, prevBytes = uint64(p.Frames), uint64(p.Bytes)
			}
			w.uvarint(uint64(len(seg.Reliable)))
			prev := uint64(0)
			for _, rr := range seg.Reliable {
				w.uvarint(uint64(rr[0]) - prev)
				w.uvarint(uint64(rr[1] - rr[0]))
				prev = uint64(rr[1])
			}
			// Unreliable ranges are in download order (not sorted), so
			// encode absolute start + length.
			w.uvarint(uint64(len(seg.Unreliable)))
			for _, rr := range seg.Unreliable {
				w.uvarint(uint64(rr[0]))
				w.uvarint(uint64(rr[1] - rr[0]))
			}
		}
	}
	return w.buf
}

// DecodeCompact parses the compact binary form.
func DecodeCompact(data []byte) (*Manifest, error) {
	if len(data) < 4 || [4]byte(data[:4]) != compactMagic {
		return nil, fmt.Errorf("dash: not a compact manifest")
	}
	r := &compactReader{buf: data[4:]}
	m := &Manifest{}
	var err error
	if m.Title, err = r.str(); err != nil {
		return nil, err
	}
	durMS, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m.SegmentDuration = time.Duration(durMS) * time.Millisecond
	nreps, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nreps > 64 {
		return nil, errCompact
	}
	for q := uint64(0); q < nreps; q++ {
		rep := RepInfo{Quality: video.Quality(q)}
		bw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rep.Bandwidth = int(bw)
		if rep.Resolution, err = r.str(); err != nil {
			return nil, err
		}
		nsegs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nsegs > 1<<20 {
			return nil, errCompact
		}
		var offset int64
		for i := uint64(0); i < nsegs; i++ {
			var seg SegmentInfo
			size, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			seg.Bytes = int(size)
			seg.MediaRange = [2]int64{offset, offset + int64(size)}
			offset += int64(size)
			rel, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			seg.ReliableSize = int(rel)

			npts, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if npts > 4096 {
				return nil, errCompact
			}
			prevFrames, prevBytes := uint64(0), uint64(0)
			for j := uint64(0); j < npts; j++ {
				score, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				df, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				db, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				prevFrames += df
				prevBytes += db
				seg.Points = append(seg.Points, prep.QoEPoint{
					Score:  float64(score) / 10000,
					Frames: int(prevFrames),
					Bytes:  int(prevBytes),
				})
			}

			nrel, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if nrel > 4096 {
				return nil, errCompact
			}
			prev := uint64(0)
			for j := uint64(0); j < nrel; j++ {
				gap, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				length, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				start := prev + gap
				seg.Reliable = append(seg.Reliable, [2]int{int(start), int(start + length)})
				prev = start + length
			}

			nunrel, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if nunrel > 4096 {
				return nil, errCompact
			}
			for j := uint64(0); j < nunrel; j++ {
				start, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				length, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				seg.Unreliable = append(seg.Unreliable, [2]int{int(start), int(start + length)})
			}
			rep.Segments = append(rep.Segments, seg)
		}
		m.Reps = append(m.Reps, rep)
	}
	return m, nil
}

package dash

import (
	"testing"

	"voxel/internal/video"
)

func TestCompactRoundTrip(t *testing.T) {
	v := smallVideo(t, "BBB", 4)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 10})
	data := m.EncodeCompact()
	got, err := DecodeCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != m.Title || got.SegmentDuration != m.SegmentDuration {
		t.Fatal("metadata lost")
	}
	if len(got.Reps) != len(m.Reps) {
		t.Fatal("rep count lost")
	}
	for q := range m.Reps {
		a, b := m.Reps[q], got.Reps[q]
		if a.Bandwidth != b.Bandwidth || a.Resolution != b.Resolution {
			t.Fatalf("rep %d metadata mismatch", q)
		}
		for i := range a.Segments {
			sa, sb := a.Segments[i], b.Segments[i]
			if sa.MediaRange != sb.MediaRange || sa.Bytes != sb.Bytes ||
				sa.ReliableSize != sb.ReliableSize {
				t.Fatalf("seg Q%d/%d scalars mismatch", q, i)
			}
			if len(sa.Points) != len(sb.Points) {
				t.Fatalf("seg Q%d/%d point count", q, i)
			}
			for j := range sa.Points {
				if sa.Points[j].Frames != sb.Points[j].Frames ||
					sa.Points[j].Bytes != sb.Points[j].Bytes {
					t.Fatalf("point Q%d/%d/%d mismatch", q, i, j)
				}
				if d := sa.Points[j].Score - sb.Points[j].Score; d > 1e-4 || d < -1e-4 {
					t.Fatalf("score precision: %v vs %v", sa.Points[j].Score, sb.Points[j].Score)
				}
			}
			if len(sa.Reliable) != len(sb.Reliable) || len(sa.Unreliable) != len(sb.Unreliable) {
				t.Fatalf("range counts Q%d/%d", q, i)
			}
			for j := range sa.Reliable {
				if sa.Reliable[j] != sb.Reliable[j] {
					t.Fatalf("reliable range Q%d/%d/%d: %v vs %v", q, i, j, sa.Reliable[j], sb.Reliable[j])
				}
			}
			for j := range sa.Unreliable {
				if sa.Unreliable[j] != sb.Unreliable[j] {
					t.Fatalf("unreliable range Q%d/%d/%d", q, i, j)
				}
			}
		}
	}
}

func TestCompactMuchSmallerThanXML(t *testing.T) {
	v := smallVideo(t, "ToS", 10)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 12})
	xml, err := m.EncodeMPD()
	if err != nil {
		t.Fatal(err)
	}
	compact := m.EncodeCompact()
	if len(compact) >= len(xml)/3 {
		t.Fatalf("compact %d bytes not ≪ XML %d bytes", len(compact), len(xml))
	}
	t.Logf("XML %d bytes → compact %d bytes (%.1f×)", len(xml), len(compact),
		float64(len(xml))/float64(len(compact)))
}

func TestCompactRejectsGarbage(t *testing.T) {
	if _, err := DecodeCompact(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := DecodeCompact([]byte("not a manifest at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncations of a valid encoding must error, not panic.
	v := smallVideo(t, "BBB", 2)
	m := Build(v, BuildOptions{Voxel: true, PointsPerSegment: 4})
	data := m.EncodeCompact()
	for _, cut := range []int{5, 10, len(data) / 2, len(data) - 3} {
		if _, err := DecodeCompact(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCompactPlainManifest(t *testing.T) {
	v := smallVideo(t, "ED", 3)
	m := Build(v, BuildOptions{})
	got, err := DecodeCompact(m.EncodeCompact())
	if err != nil {
		t.Fatal(err)
	}
	if got.Segment(video.Quality(12), 0).Voxel() {
		t.Fatal("plain manifest decoded with VOXEL data")
	}
	if got.Segment(video.Quality(12), 1).Bytes != m.Segment(video.Quality(12), 1).Bytes {
		t.Fatal("sizes lost")
	}
}

// Package survey models the §5.3 user study: 54 participants watched
// one-minute clips extracted from the in-lab experiments under challenging
// network conditions and rated them on four Mean-Opinion-Score dimensions
// (clarity, glitches, fluidity, overall experience), plus preference and
// would-stop/would-not-watch questions.
//
// Real users are unavailable, so this package substitutes a calibrated
// user model (documented in DESIGN.md): deterministic MOS functions map a
// clip's objective statistics (bufRatio, mean SSIM, score variability,
// residual loss artifacts) to the four dimensions, and a seeded panel adds
// per-user bias and decision noise. The calibration anchors are the
// paper's published outcomes: 84% preference for VOXEL, fluidity +1.7,
// clarity −0.49, glitches −0.19, overall +0.77, and the 31%/10% and
// 74%/36.7% stop/not-watch splits.
package survey

import (
	"math"
	"math/rand"
)

// Clip summarizes one streamed clip shown to the panel.
type Clip struct {
	// BufRatio is the clip's stall ratio.
	BufRatio float64
	// MeanScore is the mean segment SSIM.
	MeanScore float64
	// ScoreStdDev is the variability of segment scores (quality churn).
	ScoreStdDev float64
	// ArtifactFraction is the residual-loss share (visible impairments).
	ArtifactFraction float64
}

// MOS holds the four §5.3 dimensions on the 1–5 scale.
type MOS struct {
	Clarity    float64
	Glitches   float64
	Fluidity   float64
	Experience float64
}

func clampMOS(x float64) float64 {
	if x < 1 {
		return 1
	}
	if x > 5 {
		return 5
	}
	return x
}

// Rate maps a clip to its model MOS (the panel adds per-user noise).
func Rate(c Clip) MOS {
	// Clarity tracks visual quality: SSIM 0.80→≈1.8, 0.95→≈4.2.
	clarity := clampMOS(1 + 16*(c.MeanScore-0.75))
	// Glitches: impairment artifacts from residual losses and churn.
	glitches := clampMOS(5 - 20*c.ArtifactFraction - 2*c.ScoreStdDev)
	// Fluidity collapses quickly with rebuffering: 0→4.6, 10%→≈2.6.
	fluidity := clampMOS(4.6 - 11*math.Sqrt(c.BufRatio)*math.Sqrt(c.BufRatio+0.04))
	experience := clampMOS(0.50*fluidity + 0.27*clarity + 0.23*glitches)
	return MOS{Clarity: clarity, Glitches: glitches, Fluidity: fluidity, Experience: experience}
}

// Outcome aggregates a pairwise study of clip A (baseline) vs clip B.
type Outcome struct {
	Users int
	// PreferB is the fraction preferring clip B.
	PreferB float64
	// WouldStopA/B: fraction who would have stopped watching.
	WouldStopA, WouldStopB float64
	// WouldNotWatchA/B: fraction who would not watch a longer video.
	WouldNotWatchA, WouldNotWatchB float64
	// MeanA/MeanB are panel-mean MOS vectors.
	MeanA, MeanB MOS
}

// Panel is a seeded population of study participants.
type Panel struct {
	n    int
	seed int64
}

// NewPanel returns a panel of n users (the paper recruited 54).
func NewPanel(n int, seed int64) *Panel {
	if n <= 0 {
		n = 54
	}
	return &Panel{n: n, seed: seed}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Evaluate runs the pairwise study.
func (p *Panel) Evaluate(a, b Clip) Outcome {
	rng := rand.New(rand.NewSource(p.seed))
	base := Rate(a)
	alt := Rate(b)
	out := Outcome{Users: p.n}
	var sumA, sumB MOS
	for i := 0; i < p.n; i++ {
		// Per-user bias shifts all ratings; per-question noise on top.
		bias := rng.NormFloat64() * 0.4
		noise := func() float64 { return rng.NormFloat64() * 0.35 }
		ua := MOS{
			Clarity:    clampMOS(base.Clarity + bias + noise()),
			Glitches:   clampMOS(base.Glitches + bias + noise()),
			Fluidity:   clampMOS(base.Fluidity + bias + noise()),
			Experience: clampMOS(base.Experience + bias + noise()),
		}
		ub := MOS{
			Clarity:    clampMOS(alt.Clarity + bias + noise()),
			Glitches:   clampMOS(alt.Glitches + bias + noise()),
			Fluidity:   clampMOS(alt.Fluidity + bias + noise()),
			Experience: clampMOS(alt.Experience + bias + noise()),
		}
		sumA.Clarity += ua.Clarity
		sumA.Glitches += ua.Glitches
		sumA.Fluidity += ua.Fluidity
		sumA.Experience += ua.Experience
		sumB.Clarity += ub.Clarity
		sumB.Glitches += ub.Glitches
		sumB.Fluidity += ub.Fluidity
		sumB.Experience += ub.Experience

		// Preference: Bradley–Terry-style on perceived experience.
		if rng.Float64() < sigmoid((ub.Experience-ua.Experience)/0.35) {
			out.PreferB++
		}
		// Stop / not-watch decisions from perceived experience.
		if rng.Float64() < sigmoid(2*(2.8-ua.Experience)) {
			out.WouldStopA++
		}
		if rng.Float64() < sigmoid(2*(2.8-ub.Experience)) {
			out.WouldStopB++
		}
		if rng.Float64() < sigmoid(2*(3.6-ua.Experience)) {
			out.WouldNotWatchA++
		}
		if rng.Float64() < sigmoid(2*(3.6-ub.Experience)) {
			out.WouldNotWatchB++
		}
	}
	inv := 1 / float64(p.n)
	out.PreferB *= inv
	out.WouldStopA *= inv
	out.WouldStopB *= inv
	out.WouldNotWatchA *= inv
	out.WouldNotWatchB *= inv
	out.MeanA = MOS{sumA.Clarity * inv, sumA.Glitches * inv, sumA.Fluidity * inv, sumA.Experience * inv}
	out.MeanB = MOS{sumB.Clarity * inv, sumB.Glitches * inv, sumB.Fluidity * inv, sumB.Experience * inv}
	return out
}

// PaperClips returns clip statistics representative of the §5.3 study
// material (challenging conditions: throughput dropping to 0.3 Mbps), for
// the BOLA baseline and VOXEL, matching the measured behaviours of the
// two systems in such conditions.
func PaperClips() (bola, voxel Clip) {
	bola = Clip{BufRatio: 0.2, MeanScore: 0.93, ScoreStdDev: 0.035, ArtifactFraction: 0}
	voxel = Clip{BufRatio: 0.005, MeanScore: 0.905, ScoreStdDev: 0.03, ArtifactFraction: 0.015}
	return bola, voxel
}

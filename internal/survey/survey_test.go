package survey

import (
	"math"
	"testing"
)

func TestRateBounds(t *testing.T) {
	worst := Rate(Clip{BufRatio: 1, MeanScore: 0, ScoreStdDev: 1, ArtifactFraction: 1})
	best := Rate(Clip{BufRatio: 0, MeanScore: 1})
	for _, m := range []float64{worst.Clarity, worst.Glitches, worst.Fluidity, worst.Experience,
		best.Clarity, best.Glitches, best.Fluidity, best.Experience} {
		if m < 1 || m > 5 {
			t.Fatalf("MOS %v out of 1–5", m)
		}
	}
	if best.Experience <= worst.Experience {
		t.Fatal("a perfect clip must beat a terrible one")
	}
}

func TestFluidityPunishesRebuffering(t *testing.T) {
	smooth := Rate(Clip{BufRatio: 0, MeanScore: 0.9})
	stally := Rate(Clip{BufRatio: 0.15, MeanScore: 0.9})
	if stally.Fluidity >= smooth.Fluidity-1 {
		t.Fatalf("fluidity barely reacts to 15%% stalls: %.2f vs %.2f",
			stally.Fluidity, smooth.Fluidity)
	}
}

func TestClarityTracksScore(t *testing.T) {
	hi := Rate(Clip{MeanScore: 0.97})
	lo := Rate(Clip{MeanScore: 0.85})
	if hi.Clarity <= lo.Clarity {
		t.Fatal("clarity must increase with SSIM")
	}
}

func TestPaperStudyOutcome(t *testing.T) {
	// Feeding the calibrated clip statistics, the panel should land near
	// the published §5.3 outcomes.
	bola, voxel := PaperClips()
	out := NewPanel(54, 53).Evaluate(bola, voxel)
	if out.Users != 54 {
		t.Fatalf("users %d", out.Users)
	}
	if out.PreferB < 0.70 || out.PreferB > 0.97 {
		t.Errorf("preference for VOXEL %.2f, paper: 0.84", out.PreferB)
	}
	dFluid := out.MeanB.Fluidity - out.MeanA.Fluidity
	if dFluid < 0.9 || dFluid > 2.6 {
		t.Errorf("fluidity delta %.2f, paper: +1.7", dFluid)
	}
	dClarity := out.MeanB.Clarity - out.MeanA.Clarity
	if dClarity > 0.1 {
		t.Errorf("clarity delta %.2f, paper: −0.49 (VOXEL trades a bit of clarity)", dClarity)
	}
	dOverall := out.MeanB.Experience - out.MeanA.Experience
	if dOverall < 0.3 || dOverall > 1.4 {
		t.Errorf("overall delta %.2f, paper: +0.77", dOverall)
	}
	if out.WouldStopA <= out.WouldStopB {
		t.Errorf("more users should stop BOLA streams: %.2f vs %.2f",
			out.WouldStopA, out.WouldStopB)
	}
	if out.WouldNotWatchA <= out.WouldNotWatchB {
		t.Errorf("more users should refuse longer BOLA streams: %.2f vs %.2f",
			out.WouldNotWatchA, out.WouldNotWatchB)
	}
}

func TestPanelDeterministic(t *testing.T) {
	bola, voxel := PaperClips()
	a := NewPanel(54, 7).Evaluate(bola, voxel)
	b := NewPanel(54, 7).Evaluate(bola, voxel)
	if a != b {
		t.Fatal("panel evaluation not deterministic")
	}
	c := NewPanel(54, 8).Evaluate(bola, voxel)
	if a == c {
		t.Fatal("different seeds should differ")
	}
}

func TestIdenticalClipsNearFiftyFifty(t *testing.T) {
	clip := Clip{BufRatio: 0.02, MeanScore: 0.93, ScoreStdDev: 0.02}
	out := NewPanel(2000, 3).Evaluate(clip, clip)
	if math.Abs(out.PreferB-0.5) > 0.06 {
		t.Fatalf("identical clips: preference %.3f, want ≈0.5", out.PreferB)
	}
}

func TestDefaultPanelSize(t *testing.T) {
	if NewPanel(0, 1).n != 54 {
		t.Fatal("default panel should be the paper's 54 users")
	}
}

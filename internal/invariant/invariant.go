// Package invariant is the cross-layer invariant checker: cheap
// conservation assertions evaluated at layer boundaries while a trial
// runs. It exists to make the chaos fuzz campaign meaningful — a trial
// that silently mis-accounts bytes or drives the player buffer negative
// still "completes", but an armed checker turns the first violated
// property into a deterministic, attributable failure at the exact
// virtual instant it happened.
//
// The package follows the same nil-is-free contract as obs: a nil
// *Checker is the disabled state, every method no-ops on a nil receiver
// at zero cost (one predictable branch, no allocations), and the
// instrumented hot paths — the QUIC* ACK path, the netem serve loop, the
// player clock — stay at 0 allocs/op with checking off. An armed checker
// only allocates when a violation actually fires (formatting the detail
// string), at which point the trial is dead anyway.
//
// A violation is reported by panicking with a *Violation. The experiment
// harness wraps every trial in recover(), so a violation becomes a typed
// exp.TrialError carrying the rule name, seed, and virtual clock instead
// of killing the sweep. Code outside a harness-managed trial (unit tests,
// direct library use) sees an ordinary panic with a descriptive message.
package invariant

import "fmt"

// Violation is the panic payload for a broken invariant. Layer and Rule
// identify the property ("quic", "quic.bytes-conservation"); Detail is a
// human-readable account of the observed values.
type Violation struct {
	Layer  string
	Rule   string
	Detail string
}

// Error makes a Violation usable as an error value after recovery.
func (v *Violation) Error() string {
	return "invariant violated: " + v.Rule + ": " + v.Detail
}

// Checker is the arming handle threaded through the stack, one per trial
// world. The zero pointer is the disabled state; construct with New to
// arm. A Checker carries no mutable state — it is only a witness that
// checking is on — so sharing one across the layers of a single-threaded
// trial world is free.
//
//voxel:nilfree
type Checker struct{}

// New returns an armed checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether checks are armed. Call sites guard any
// non-trivial precondition computation behind it:
//
//	if chk.Enabled() && total != acked+lost+inflight { chk.Failf(...) }
func (c *Checker) Enabled() bool { return c != nil }

// Check panics with a Violation when ok is false. The message must be a
// constant; use Failf when the detail needs observed values.
func (c *Checker) Check(ok bool, layer, rule, msg string) {
	if c == nil || ok {
		return
	}
	panic(&Violation{Layer: layer, Rule: rule, Detail: msg})
}

// Failf reports a violation unconditionally, formatting the observed
// values into the detail. Callers reach it only from a failed Enabled()
// -guarded comparison, so the fmt cost is paid exactly once per dead
// trial.
func (c *Checker) Failf(layer, rule, format string, args ...any) {
	if c == nil {
		return
	}
	panic(&Violation{Layer: layer, Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// AsViolation extracts the Violation from a recovered panic value, if it
// is one.
func AsViolation(recovered any) (*Violation, bool) {
	v, ok := recovered.(*Violation)
	return v, ok
}

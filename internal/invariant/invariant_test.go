package invariant

import (
	"strings"
	"testing"
)

// A nil checker is the disabled state: every method no-ops and allocates
// nothing, which is what lets the hot paths keep it armed unconditionally.
func TestNilCheckerIsFree(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Check(false, "quic", "quic.test", "would fire")
		c.Failf("quic", "quic.test", "would fire %d", 7)
	})
	if allocs != 0 {
		t.Fatalf("nil checker allocates %v per run, want 0", allocs)
	}
}

func TestArmedCheckPanicsWithViolation(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("New() checker not enabled")
	}
	c.Check(true, "sim", "sim.ok", "fine") // passing check must not fire
	defer func() {
		v, ok := AsViolation(recover())
		if !ok {
			t.Fatal("violation did not surface as *Violation")
		}
		if v.Layer != "player" || v.Rule != "player.buffer-nonnegative" {
			t.Fatalf("wrong identity: %+v", v)
		}
		if !strings.Contains(v.Error(), "player.buffer-nonnegative") {
			t.Fatalf("Error() missing rule: %q", v.Error())
		}
	}()
	c.Check(false, "player", "player.buffer-nonnegative", "buffer -3ms")
	t.Fatal("failed check did not panic")
}

func TestFailfFormats(t *testing.T) {
	defer func() {
		v, ok := AsViolation(recover())
		if !ok {
			t.Fatal("no violation")
		}
		if v.Detail != "sent 10 != acked 9" {
			t.Fatalf("detail = %q", v.Detail)
		}
	}()
	New().Failf("quic", "quic.packet-conservation", "sent %d != acked %d", 10, 9)
}

func TestAsViolationRejectsOtherPanics(t *testing.T) {
	if _, ok := AsViolation("plain panic"); ok {
		t.Fatal("string misidentified as violation")
	}
	if _, ok := AsViolation(nil); ok {
		t.Fatal("nil misidentified as violation")
	}
}

package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voxel/internal/stats"
)

func TestLadderMatchesTable2(t *testing.T) {
	if Ladder[0].AvgBitrate != 0.16e6 || Ladder[0].Resolution != "144p" {
		t.Fatalf("Q0 wrong: %+v", Ladder[0])
	}
	if Ladder[12].AvgBitrate != 10e6 || Ladder[12].Resolution != "2160p" {
		t.Fatalf("Q12 wrong: %+v", Ladder[12])
	}
	if Ladder[9].AvgBitrate != 4.3e6 || Ladder[9].Resolution != "1080p" {
		t.Fatalf("Q9 wrong: %+v", Ladder[9])
	}
	for i := 1; i < NumQualities; i++ {
		if Ladder[i].AvgBitrate <= Ladder[i-1].AvgBitrate {
			t.Fatalf("ladder not monotone at %d", i)
		}
	}
}

func TestLoadKnownTitles(t *testing.T) {
	for _, name := range AllTitles() {
		v, err := Load(name)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if v.Segments != DefaultSegments {
			t.Fatalf("%s: %d segments, want %d", name, v.Segments, DefaultSegments)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown title should error")
	}
	if len(AllTitles()) != 14 {
		t.Fatalf("14 titles expected, got %d", len(AllTitles()))
	}
}

func TestSegmentStructure(t *testing.T) {
	v := MustLoad("BBB")
	s := v.Segment(0, 12)
	if len(s.Frames) != FramesPerSeg {
		t.Fatalf("%d frames, want %d", len(s.Frames), FramesPerSeg)
	}
	if s.Frames[0].Type != IFrame {
		t.Fatal("frame 0 must be the I-frame")
	}
	if len(s.Frames[0].Refs) != 0 {
		t.Fatal("I-frame must not reference anything")
	}
	for i := 1; i < FramesPerSeg; i++ {
		f := s.Frames[i]
		if f.Type == IFrame {
			t.Fatalf("frame %d: only one I-frame per segment expected", i)
		}
		if len(f.Refs) == 0 {
			t.Fatalf("frame %d (%v) has no references", i, f.Type)
		}
		for _, r := range f.Refs {
			if r == i {
				t.Fatalf("frame %d references itself", i)
			}
			if r < 0 || r >= FramesPerSeg {
				t.Fatalf("frame %d references out-of-range %d", i, r)
			}
		}
		if f.Type == PFrame && i%4 != 0 {
			t.Fatalf("P-frame at unexpected position %d", i)
		}
	}
}

func TestFrameOffsetsPartitionSegment(t *testing.T) {
	v := MustLoad("Sintel")
	s := v.Segment(10, 9)
	total := 0
	for i := range s.Frames {
		start, end := s.FrameRange(i)
		if start != total {
			t.Fatalf("frame %d starts at %d, want %d", i, start, total)
		}
		if end-start != s.Frames[i].Size {
			t.Fatalf("frame %d range size mismatch", i)
		}
		hs, he := s.HeaderRange(i)
		bs, be := s.BodyRange(i)
		if hs != start || he != bs || be != end {
			t.Fatalf("frame %d header/body ranges inconsistent", i)
		}
		if s.Frames[i].HeaderSize > s.Frames[i].Size {
			t.Fatalf("frame %d header larger than frame", i)
		}
		total = end
	}
	if total != s.TotalBytes() {
		t.Fatalf("offsets don't cover segment: %d vs %d", total, s.TotalBytes())
	}
}

func TestByteSharesMatchPaper(t *testing.T) {
	// §5: ≈15% I, ≈65% P, ≈20% B across the canonical titles.
	var iS, pS, bS []float64
	for _, name := range TestTitles() {
		v := MustLoad(name)
		for idx := 0; idx < 20; idx++ {
			i, p, b := v.Segment(idx, 12).ByteShares()
			iS = append(iS, i)
			pS = append(pS, p)
			bS = append(bS, b)
		}
	}
	if m := stats.Mean(iS); m < 0.10 || m > 0.20 {
		t.Errorf("I share = %.3f, want ≈0.15", m)
	}
	if m := stats.Mean(pS); m < 0.55 || m > 0.72 {
		t.Errorf("P share = %.3f, want ≈0.65", m)
	}
	if m := stats.Mean(bS); m < 0.12 || m > 0.30 {
		t.Errorf("B share = %.3f, want ≈0.20", m)
	}
}

func TestVBRStatisticsMatchTable1(t *testing.T) {
	// Per-title mean ≈ ladder bitrate; stddev ≈ Tab. 1 within tolerance.
	for _, name := range TestTitles() {
		v := MustLoad(name)
		rates := v.SegmentBitrates(12)
		mean := stats.Mean(rates) / 1e6
		sd := stats.StdDev(rates) / 1e6
		if math.Abs(mean-10) > 2.0 {
			t.Errorf("%s: mean bitrate %.2f Mbps, want ≈10", name, mean)
		}
		if math.Abs(sd-v.StdDevMbps) > v.StdDevMbps*0.55 {
			t.Errorf("%s: stddev %.2f Mbps, want ≈%.2f", name, sd, v.StdDevMbps)
		}
	}
}

func TestCappedVBR(t *testing.T) {
	// §5: peak bitrate at most 200% of average ("2x capped").
	for _, name := range AllTitles() {
		v := MustLoad(name)
		avg := Ladder[12].AvgBitrate
		for idx := 0; idx < v.Segments; idx++ {
			if br := v.Segment(idx, 12).Bitrate(); br > 2.05*avg {
				t.Fatalf("%s seg %d: bitrate %.1f Mbps exceeds 2× cap", name, idx, br/1e6)
			}
		}
	}
}

func TestSintelMoreVariableThanToS(t *testing.T) {
	sintel := stats.StdDev(MustLoad("Sintel").SegmentBitrates(12))
	tos := stats.StdDev(MustLoad("ToS").SegmentBitrates(12))
	if sintel <= tos {
		t.Fatalf("Sintel stddev %.0f should exceed ToS %.0f (Tab. 1)", sintel, tos)
	}
}

func TestQualityScalesSizes(t *testing.T) {
	v := MustLoad("ED")
	for idx := 0; idx < 5; idx++ {
		prev := -1
		for q := Quality(0); q < NumQualities; q++ {
			tb := v.Segment(idx, q).TotalBytes()
			if tb <= prev {
				t.Fatalf("seg %d: bytes not increasing at %v (%d <= %d)", idx, q, tb, prev)
			}
			prev = tb
		}
	}
}

func TestVBRShapeSharedAcrossQualities(t *testing.T) {
	// The same segments must be the big ones at every quality (2-pass VBR).
	v := MustLoad("BBB")
	hi := v.SegmentBitrates(12)
	lo := v.SegmentBitrates(6)
	// rank correlation sign check on a few extreme pairs
	maxI, minI := 0, 0
	for i := range hi {
		if hi[i] > hi[maxI] {
			maxI = i
		}
		if hi[i] < hi[minI] {
			minI = i
		}
	}
	if lo[maxI] <= lo[minI] {
		t.Fatal("VBR shape not preserved across qualities")
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	a := MustLoad("ToS").Segment(33, 9)
	b := MustLoad("ToS").Segment(33, 9)
	if a.TotalBytes() != b.TotalBytes() || a.Complexity != b.Complexity {
		t.Fatal("synthesis not deterministic across Video instances")
	}
	for i := range a.Frames {
		if a.Frames[i].Size != b.Frames[i].Size {
			t.Fatal("frame sizes differ across instances")
		}
	}
}

func TestSegmentCaching(t *testing.T) {
	v := MustLoad("BBB")
	if v.Segment(1, 5) != v.Segment(1, 5) {
		t.Fatal("segment cache not effective")
	}
}

func TestReferenceGraph(t *testing.T) {
	s := MustLoad("BBB").Segment(0, 12)
	inbound := s.InboundRefs()
	trans := s.TransitiveDependents()
	if inbound[0] == 0 {
		t.Fatal("the I-frame must be referenced")
	}
	// The I-frame anchors the GOP: almost everything transitively depends
	// on it.
	if trans[0] < FramesPerSeg/2 {
		t.Fatalf("transitive dependents of I-frame = %d, want most of segment", trans[0])
	}
	// Transitive count ≥ inbound count for every frame.
	for i := range inbound {
		if trans[i] < inbound[i] {
			t.Fatalf("frame %d: transitive %d < inbound %d", i, trans[i], inbound[i])
		}
	}
	// There must be both referenced and unreferenced B frames (B-pyramid).
	refB, unrefB := 0, 0
	for i, f := range s.Frames {
		if f.Type != BFrame {
			continue
		}
		if s.Referenced(i) {
			refB++
		} else {
			unrefB++
		}
	}
	if refB == 0 || unrefB == 0 {
		t.Fatalf("want both referenced (%d) and unreferenced (%d) B frames", refB, unrefB)
	}
	// Early P frames must matter more (transitively) than late ones.
	if trans[4] <= trans[92] {
		t.Fatalf("P4 transitive %d should exceed P92 %d", trans[4], trans[92])
	}
}

func TestP9StaticP10Busy(t *testing.T) {
	p9 := MustLoad("P9").Segment(5, 12)
	p10 := MustLoad("P10").Segment(5, 12)
	if p9.Frames[50].Motion >= p10.Frames[50].Motion {
		t.Fatal("P9 frames should move less than P10 frames")
	}
	var m9, m10 float64
	for i := range p9.Frames {
		m9 += p9.Frames[i].Motion
		m10 += p10.Frames[i].Motion
	}
	if m9/96 > 0.1 {
		t.Fatalf("P9 mean frame motion %.3f too high for an unboxing video", m9/96)
	}
	if m10/96 < 0.5 {
		t.Fatalf("P10 mean frame motion %.3f too low for a dance video", m10/96)
	}
}

func TestPropertyGraphAcyclicAndBounded(t *testing.T) {
	f := func(segRaw uint8, qRaw uint8, titleRaw uint8) bool {
		titles := AllTitles()
		v := MustLoad(titles[int(titleRaw)%len(titles)])
		s := v.Segment(int(segRaw)%v.Segments, Quality(qRaw)%NumQualities)
		for i := range s.TransitiveDependents() {
			if s.TransitiveDependents()[i] >= FramesPerSeg {
				return false // would imply a cycle through itself
			}
		}
		// total bytes must be positive and frames must cover it
		return s.TotalBytes() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Package video models the evaluation videos as the rest of the system
// sees them: H.264-style GOP structure (I/P/B frames, one slice per frame),
// a macroblock-inspired reference graph including transitive dependencies,
// and capped-VBR per-segment sizes.
//
// The paper uses four canonical titles (Big Buck Bunny, Elephants Dream,
// Sintel, Tears of Steel; Tab. 1) plus ten YouTube clips (P1–P10; Tab. 3),
// each cut to 75 four-second segments at 24 fps and transcoded at the 13
// quality levels of Tab. 2. Real video assets are unavailable here, so each
// title is synthesized deterministically from its name, parameterized to
// match the published statistics: per-title segment-bitrate standard
// deviations, a byte split of ≈15% I / 65% P / 20% B, and the content
// characteristics §3 and Appendix C describe (e.g. P9's near-static scenes,
// P10's continuous high-motion dance).
package video

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Quality identifies a rung of the bitrate ladder, Q0 (lowest) to Q12.
type Quality int

// NumQualities is the size of the Tab. 2 ladder.
const NumQualities = 13

// String returns "Q<n>".
func (q Quality) String() string { return fmt.Sprintf("Q%d", int(q)) }

// Rung describes one ladder entry from Tab. 2.
type Rung struct {
	Quality    Quality
	Resolution string  // e.g. "1080p"
	AvgBitrate float64 // bits per second
}

// Ladder is the Tab. 2 quality ladder: 0.16 Mbps at 144p up to 10 Mbps at
// 2160p.
var Ladder = [NumQualities]Rung{
	{0, "144p", 0.16e6},
	{1, "240p", 0.23e6},
	{2, "240p", 0.37e6},
	{3, "360p", 0.56e6},
	{4, "360p", 0.75e6},
	{5, "480p", 1.05e6},
	{6, "480p", 1.75e6},
	{7, "720p", 2.35e6},
	{8, "720p", 3.0e6},
	{9, "1080p", 4.3e6},
	{10, "1080p", 5.8e6},
	{11, "1440p", 7.4e6},
	{12, "2160p", 10e6},
}

// Standard encoding parameters from §5.
const (
	FPS             = 24
	SegmentDuration = 4 * time.Second
	FramesPerSeg    = 96 // 4 s × 24 fps
	DefaultSegments = 75 // five-minute clips
)

// FrameType is the H.264 frame type.
type FrameType int

// Frame types: intra-coded, predicted, bi-directionally predicted.
const (
	IFrame FrameType = iota
	PFrame
	BFrame
)

func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	default:
		return "B"
	}
}

// Frame is one encoded frame within a segment, in decode order.
type Frame struct {
	Index      int
	Type       FrameType
	Size       int   // total encoded bytes, header included
	HeaderSize int   // bytes that must be delivered reliably (NAL headers)
	Refs       []int // direct references (indices of frames this one predicts from)
	// Motion is the per-frame motion intensity in [0,1]: how much the frame
	// changes relative to its references. It drives both concealment error
	// and error propagation in the QoE model.
	Motion float64
}

// Referenced reports whether any other frame references this one, per the
// segment's dependency graph.
func (s *Segment) Referenced(i int) bool { return s.inbound[i] > 0 }

// Segment is one 4-second piece of a title at one quality.
type Segment struct {
	Title      string
	Index      int
	Quality    Quality
	Frames     []Frame
	Complexity float64 // content complexity in (0,1]; drives base SSIM
	Motion     float64 // segment-mean motion in [0,1]

	inbound    []int // direct inbound reference counts
	transitive []int // # frames transitively depending on each frame
	offsets    []int // byte offset of each frame; len = frames+1
}

// TotalBytes returns the segment size in bytes.
func (s *Segment) TotalBytes() int { return s.offsets[len(s.offsets)-1] }

// Bitrate returns the segment's bitrate in bits per second.
func (s *Segment) Bitrate() float64 {
	return float64(s.TotalBytes()*8) / SegmentDuration.Seconds()
}

// FrameRange returns the byte range [start, end) of frame i in the segment
// file, in decode order (the on-disk layout VOXEL never changes).
func (s *Segment) FrameRange(i int) (start, end int) {
	return s.offsets[i], s.offsets[i+1]
}

// HeaderRange returns the byte range of frame i's headers — the part the
// client always fetches reliably (§4.2).
func (s *Segment) HeaderRange(i int) (start, end int) {
	return s.offsets[i], s.offsets[i] + s.Frames[i].HeaderSize
}

// BodyRange returns the byte range of frame i's payload after the headers.
func (s *Segment) BodyRange(i int) (start, end int) {
	return s.offsets[i] + s.Frames[i].HeaderSize, s.offsets[i+1]
}

// InboundRefs returns, per frame, the number of direct inbound references.
func (s *Segment) InboundRefs() []int { return s.inbound }

// TransitiveDependents returns, per frame, how many frames transitively
// depend on it — the importance measure behind ordering 3 in §4.1.
func (s *Segment) TransitiveDependents() []int { return s.transitive }

// Video is a title: metadata plus a deterministic segment synthesizer.
type Video struct {
	Title    string
	Genre    string
	Segments int
	// StdDevMbps is the published per-title standard deviation of segment
	// bitrates at Q12 (Tabs. 1 and 3).
	StdDevMbps float64

	profile profile
	cache   map[segKey]*Segment
}

type segKey struct {
	idx int
	q   Quality
}

// profile captures the content characteristics that differentiate titles.
type profile struct {
	stdRel     float64 // relative VBR stddev at Q12 (stddev / 10 Mbps)
	motionBase float64 // mean motion intensity
	motionVar  float64
	cutRate    float64 // probability a segment starts a new scene
	staticness float64 // 0 = all frames change, 1 = almost nothing moves
}

var catalog = map[string]struct {
	genre  string
	stdDev float64 // Mbps, from Tab. 1 / Tab. 3
	prof   profile
}{
	// The four canonical titles (Tab. 1).
	"BBB":    {"Comedy", 3.77, profile{0.377, 0.50, 0.25, 0.30, 0.35}},
	"ED":     {"Sci-Fi", 5.60, profile{0.560, 0.55, 0.30, 0.25, 0.30}},
	"Sintel": {"Fantasy", 7.50, profile{0.750, 0.60, 0.35, 0.25, 0.25}},
	"ToS":    {"Sci-Fi", 3.52, profile{0.352, 0.45, 0.25, 0.30, 0.40}},
	// The ten YouTube clips (Tab. 3). P9 is a near-static unboxing video;
	// P10 a continuous high-motion dance performance without scene cuts.
	"P1":  {"Beauty", 2.20, profile{0.220, 0.35, 0.20, 0.25, 0.45}},
	"P2":  {"Comedy", 1.88, profile{0.188, 0.45, 0.25, 0.35, 0.35}},
	"P3":  {"Sports", 2.52, profile{0.252, 0.65, 0.30, 0.30, 0.20}},
	"P4":  {"Gaming", 2.05, profile{0.205, 0.55, 0.30, 0.20, 0.30}},
	"P5":  {"Cooking", 1.76, profile{0.176, 0.40, 0.20, 0.30, 0.40}},
	"P6":  {"Music", 4.35, profile{0.435, 0.60, 0.35, 0.40, 0.25}},
	"P7":  {"Entertainment", 2.03, profile{0.203, 0.45, 0.25, 0.30, 0.35}},
	"P8":  {"Politics", 1.60, profile{0.160, 0.30, 0.15, 0.20, 0.50}},
	"P9":  {"Tech", 1.70, profile{0.170, 0.08, 0.05, 0.15, 0.93}},
	"P10": {"Entertainment", 1.94, profile{0.194, 0.95, 0.10, 0.00, 0.02}},
}

// TestTitles lists the four canonical titles used in §5.
func TestTitles() []string { return []string{"BBB", "ED", "Sintel", "ToS"} }

// YouTubeTitles lists the Tab. 3 clip identifiers.
func YouTubeTitles() []string {
	return []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10"}
}

// AllTitles lists every known title.
func AllTitles() []string { return append(TestTitles(), YouTubeTitles()...) }

// Load returns the named title. The same name always yields the same video.
func Load(name string) (*Video, error) {
	c, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("video: unknown title %q", name)
	}
	return &Video{
		Title:      name,
		Genre:      c.genre,
		Segments:   DefaultSegments,
		StdDevMbps: c.stdDev,
		profile:    c.prof,
		cache:      make(map[segKey]*Segment),
	}, nil
}

// MustLoad is Load for known-good names; it panics otherwise.
func MustLoad(name string) *Video {
	v, err := Load(name)
	if err != nil {
		panic(err)
	}
	return v
}

func seedFor(parts ...any) int64 {
	h := fnv.New64a()
	fmt.Fprint(h, parts...)
	return int64(h.Sum64())
}

// Segment synthesizes (or returns the cached) segment idx at quality q.
func (v *Video) Segment(idx int, q Quality) *Segment {
	if idx < 0 || idx >= v.Segments {
		panic(fmt.Sprintf("video: segment %d out of range", idx))
	}
	if q < 0 || int(q) >= NumQualities {
		panic(fmt.Sprintf("video: quality %d out of range", q))
	}
	key := segKey{idx, q}
	if s, ok := v.cache[key]; ok {
		return s
	}
	s := v.synthesize(idx, q)
	v.cache[key] = s
	return s
}

// contentAt derives the content state of segment idx — deterministic per
// title, shared across qualities so the VBR shape is identical up and down
// the ladder (as with real 2-pass capped-VBR encodes).
func (v *Video) contentAt(idx int) (vbrFactor, complexity, motion float64, cut bool) {
	rng := rand.New(rand.NewSource(seedFor("content", v.Title, idx)))
	p := v.profile

	// Smooth scene intensity: a few overlapping sinusoids plus noise give
	// multi-segment "action arcs", then the per-title stddev scales them.
	base := 0.0
	for h := 1; h <= 3; h++ {
		phase := float64(seedFor(v.Title, h)%1000) / 1000 * 2 * math.Pi
		base += math.Sin(2*math.Pi*float64(idx)*float64(h)/25+phase) / float64(h)
	}
	base /= 1.83 // normalize sum of 1+1/2+1/3 to ≈[-1,1]
	jitter := rng.NormFloat64() * 0.35
	x := base + jitter

	// Capped VBR: mean 1, scaled to the title's relative stddev, clamped to
	// the "2× capped" range from §5.
	vbrFactor = 1 + x*p.stdRel*2.1
	if vbrFactor < 0.25 {
		vbrFactor = 0.25
	}
	if vbrFactor > 2.0 {
		vbrFactor = 2.0
	}

	motion = p.motionBase + x*p.motionVar
	if motion < 0.02 {
		motion = 0.02
	}
	if motion > 1 {
		motion = 1
	}
	// Complexity tracks how hard the content is to encode. It follows the
	// VBR factor sub-linearly: 2-pass capped-VBR spends bits where the
	// content needs them, so quality stays roughly constant per rung while
	// leaving the residual spread Fig. 1d shows.
	complexity = math.Pow(vbrFactor, 0.9) * (0.45 + 0.3*motion + 0.12*rng.Float64())
	if complexity > 1 {
		complexity = 1
	}
	if complexity < 0.05 {
		complexity = 0.05
	}
	cut = rng.Float64() < p.cutRate
	return vbrFactor, complexity, motion, cut
}

// synthesize builds the frame structure of one segment.
//
// GOP layout: frame 0 is the I-frame; thereafter mini-GOPs of IBBBP
// structure repeat (anchor every 4 frames), with a B-pyramid: the middle B
// of each triple is referenced by its neighbors. Byte shares target the
// published ≈15/65/20 I/P/B split.
func (v *Video) synthesize(idx int, q Quality) *Segment {
	rng := rand.New(rand.NewSource(seedFor("seg", v.Title, idx, int(q))))
	vbr, complexity, motion, _ := v.contentAt(idx)

	totalBytes := int(Ladder[q].AvgBitrate * SegmentDuration.Seconds() / 8 * vbr)
	if totalBytes < FramesPerSeg*40 {
		totalBytes = FramesPerSeg * 40
	}

	frames := make([]Frame, FramesPerSeg)
	// Build types and references.
	lastAnchor := 0
	for i := 0; i < FramesPerSeg; i++ {
		f := &frames[i]
		f.Index = i
		switch {
		case i == 0:
			f.Type = IFrame
		case i%4 == 0:
			f.Type = PFrame
			f.Refs = []int{lastAnchor}
		default:
			f.Type = BFrame
			// B frames reference the surrounding anchors...
			prev := (i / 4) * 4
			next := prev + 4
			if next >= FramesPerSeg {
				next = prev // trailing partial mini-GOP: backward only
			}
			f.Refs = []int{prev}
			if next != prev {
				f.Refs = append(f.Refs, next)
			}
			// ...and in the B-pyramid the outer Bs also reference the
			// middle B of the triple.
			mid := prev + 2
			if i != mid && mid < FramesPerSeg && mid%4 != 0 {
				f.Refs = append(f.Refs, mid)
			}
		}
		if f.Type == PFrame {
			lastAnchor = i
		}
	}

	// Per-frame motion: smooth within the segment around the segment mean,
	// with the staticness profile collapsing it toward zero.
	m := motion * (1 - v.profile.staticness)
	for i := range frames {
		wiggle := 0.5 + 0.5*math.Sin(2*math.Pi*float64(i)/31+rng.Float64()*0.3)
		fm := m * (0.6 + 0.8*wiggle)
		if fm > 1 {
			fm = 1
		}
		frames[i].Motion = fm
	}

	// Byte shares: 15% I / 65% P / 20% B on average (the paper's measured
	// split), with per-frame jitter tied to motion.
	iShare := 0.15 * (1 + 0.2*rng.NormFloat64()*0.25)
	if iShare < 0.08 {
		iShare = 0.08
	}
	pShare := 0.65
	bShare := 1 - iShare - pShare

	var pCount, bCount int
	for i := range frames {
		switch frames[i].Type {
		case PFrame:
			pCount++
		case BFrame:
			bCount++
		}
	}

	weights := make([]float64, FramesPerSeg)
	var pW, bW float64
	for i := range frames {
		w := 0.5 + frames[i].Motion + 0.2*rng.Float64()
		weights[i] = w
		switch frames[i].Type {
		case PFrame:
			pW += w
		case BFrame:
			bW += w
		}
	}

	used := 0
	for i := range frames {
		var share float64
		switch frames[i].Type {
		case IFrame:
			share = iShare
		case PFrame:
			share = pShare * weights[i] / pW
		case BFrame:
			share = bShare * weights[i] / bW
		}
		sz := int(float64(totalBytes) * share)
		if sz < 40 {
			sz = 40
		}
		frames[i].Size = sz
		// NAL/slice headers: small fixed part plus a sliver of the payload.
		frames[i].HeaderSize = 24 + sz/64
		if frames[i].HeaderSize > sz {
			frames[i].HeaderSize = sz
		}
		used += sz
	}
	// Give any rounding remainder to the I-frame.
	if used < totalBytes {
		frames[0].Size += totalBytes - used
	}

	s := &Segment{
		Title:      v.Title,
		Index:      idx,
		Quality:    q,
		Frames:     frames,
		Complexity: complexity,
		Motion:     motion,
	}
	s.offsets = make([]int, FramesPerSeg+1)
	for i := range frames {
		s.offsets[i+1] = s.offsets[i] + frames[i].Size
	}
	s.computeGraph()
	return s
}

// computeGraph fills inbound and transitive dependency counts.
func (s *Segment) computeGraph() {
	n := len(s.Frames)
	s.inbound = make([]int, n)
	dependents := make([][]int, n) // direct dependents of each frame
	for i, f := range s.Frames {
		for _, r := range f.Refs {
			s.inbound[r]++
			dependents[r] = append(dependents[r], i)
		}
	}
	// Transitive dependents via DFS per frame. n=96, graph sparse: fine.
	s.transitive = make([]int, n)
	mark := make([]int, n)
	stamp := 0
	var stack []int
	for i := 0; i < n; i++ {
		stamp++
		count := 0
		stack = append(stack[:0], dependents[i]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if mark[x] == stamp {
				continue
			}
			mark[x] = stamp
			count++
			stack = append(stack, dependents[x]...)
		}
		s.transitive[i] = count
	}
}

// ByteShares returns the fraction of segment bytes in I, P, and B frames.
func (s *Segment) ByteShares() (i, p, b float64) {
	var iB, pB, bB int
	for _, f := range s.Frames {
		switch f.Type {
		case IFrame:
			iB += f.Size
		case PFrame:
			pB += f.Size
		case BFrame:
			bB += f.Size
		}
	}
	t := float64(s.TotalBytes())
	return float64(iB) / t, float64(pB) / t, float64(bB) / t
}

// SegmentBitrates returns the per-segment bitrates (bps) of the whole title
// at quality q — the Fig. 15 series.
func (v *Video) SegmentBitrates(q Quality) []float64 {
	out := make([]float64, v.Segments)
	for i := range out {
		out[i] = v.Segment(i, q).Bitrate()
	}
	return out
}

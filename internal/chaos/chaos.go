// Package chaos is the randomized fuzz campaign over the full experiment
// stack. It sweeps (configuration × impairment × seed) tuples with the
// cross-layer invariant checker and trial watchdog armed, and when a tuple
// fails it shrinks the case to a minimal JSON crash artifact (internal/
// repro) replayable with `voxel-sim -repro file.json`.
//
// Everything here is deterministic: tuples come from a seeded generator,
// each trial world is a deterministic simulation, and the shrinker only
// keeps a reduction when the re-run fails with the same rule — so a
// campaign, its failures, and its shrunk artifacts are all reproducible
// from the campaign seed alone.
package chaos

import (
	"fmt"
	"io"
	"math/rand"

	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/repro"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// RandomArtifact draws one fuzz tuple. The distribution is tilted toward
// fast cases — short clips, bounded virtual time, mostly single-session —
// so a campaign gets through many tuples, while still visiting every
// system, trace, impairment profile, failover, swarm, and cross-traffic
// corner with some probability.
func RandomArtifact(rng *rand.Rand) *repro.Artifact {
	titles := video.AllTitles()
	systems := exp.Systems()
	a := &repro.Artifact{
		Title:    titles[rng.Intn(len(titles))],
		System:   string(systems[rng.Intn(len(systems))]),
		Buffer:   4 + rng.Intn(6),
		Segments: 4 + rng.Intn(7),
		Trials:   1 + rng.Intn(2),
		Seed:     1 + rng.Int63n(1<<30),
		Sessions: 1,
		// Bound virtual time well below the harness default (20× media):
		// a wedged-but-legal tuple costs seconds, not minutes, and a truly
		// stuck one is the watchdog's job.
		MaxSimTimeSec: 120,
	}
	switch rng.Intn(3) {
	case 0:
		a.Metric = "ssim"
	case 1:
		a.Metric = "vmaf"
	case 2:
		a.Metric = "psnr"
	}
	if rng.Intn(5) == 0 {
		a.CrossMbps = 1 + 9*rng.Float64()
		a.LinkMbps = 10 + 10*rng.Float64()
	} else {
		names := trace.Names()
		a.Trace = names[rng.Intn(len(names))]
	}
	profiles := netem.Profiles()
	a.Impairment = profiles[rng.Intn(len(profiles))]
	if rng.Intn(4) == 0 {
		a.Sessions = 2 + rng.Intn(3)
	}
	if rng.Intn(6) == 0 {
		a.Failover = true
	}
	if rng.Intn(4) == 0 {
		a.CC = "bbr"
	}
	return a
}

// Run executes one artifact with invariants and watchdog armed (that is
// what ConfigFromArtifact arms) and returns the first trial failure, or
// nil when every trial survived. The error return is for artifacts that
// don't resolve to a runnable config at all.
func Run(a *repro.Artifact) (*exp.TrialError, error) {
	cfg, err := exp.ConfigFromArtifact(a)
	if err != nil {
		return nil, err
	}
	agg := exp.Run(cfg)
	if len(agg.Failed) > 0 {
		return &agg.Failed[0], nil
	}
	return nil, nil
}

// Reproduces reports whether the artifact still fails with its recorded
// Violation rule (any failure, when Violation is empty). This is both the
// shrinker's keep/revert test and `voxel-sim -repro`'s verdict.
func Reproduces(a *repro.Artifact) (bool, *exp.TrialError, error) {
	te, err := Run(a)
	if err != nil || te == nil {
		return false, te, err
	}
	if a.Violation != "" && te.Rule != a.Violation {
		return false, te, nil
	}
	return true, te, nil
}

// Shrink minimizes a failing artifact along a fixed ladder — drop the
// failover origin, drop the impairment profile, collapse the swarm to one
// session, collapse the sweep to the one failing trial (rebasing the seed
// so the same world is built), halve the clip, then walk the seed toward 1
// — keeping each reduction only if the re-run fails with the same rule.
// The optional log receives one line per attempted step.
func Shrink(a *repro.Artifact, log io.Writer) *repro.Artifact {
	cur := *a
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	try := func(step string, mutate func(*repro.Artifact)) bool {
		cand := cur
		mutate(&cand)
		ok, te, err := Reproduces(&cand)
		if err != nil || !ok {
			logf("shrink: %-16s kept previous (no longer reproduces)", step)
			return false
		}
		// The failing trial index can move when the sweep shrinks; track it
		// so the artifact always names the trial that actually fails.
		cand.Trial = te.Trial
		cand.Detail = te.Msg
		cur = cand
		logf("shrink: %-16s still fails (%s)", step, te.Rule)
		return true
	}
	if cur.Failover {
		try("drop-failover", func(c *repro.Artifact) { c.Failover = false })
	}
	if cur.Impairment != "" {
		try("drop-impairment", func(c *repro.Artifact) { c.Impairment = "" })
	}
	if cur.Sessions > 1 {
		try("one-session", func(c *repro.Artifact) { c.Sessions = 1 })
	}
	if cur.Trials > 1 {
		try("one-trial", func(c *repro.Artifact) {
			c.Seed = exp.TrialSeed(c.Seed, c.Trial)
			c.Trials, c.Trial = 1, 0
		})
	}
	for cur.Segments > 2 {
		if !try("halve-segments", func(c *repro.Artifact) { c.Segments /= 2 }) {
			break
		}
	}
	for cur.Seed > 1 {
		if !try("halve-seed", func(c *repro.Artifact) { c.Seed = c.Seed / 2 }) {
			break
		}
	}
	return &cur
}

// Campaign sweeps n random tuples from the campaign seed, stopping at the
// first failure. It returns the shrunk artifact and the original failure,
// or (nil, nil) when every tuple survived. The optional log receives one
// line per tuple plus the shrink trace.
func Campaign(n int, seed int64, log io.Writer) (*repro.Artifact, *exp.TrialError) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := RandomArtifact(rng)
		te, err := Run(a)
		if err != nil {
			logf("tuple %3d: unrunnable (%v)", i, err)
			continue
		}
		if te == nil {
			logf("tuple %3d: ok (%s/%s trace=%s impair=%s seed=%d)",
				i, a.Title, a.System, a.Trace, a.Impairment, a.Seed)
			continue
		}
		logf("tuple %3d: FAILED %s — %s", i, te.Rule, te.Msg)
		a.Violation = te.Rule
		a.Detail = te.Msg
		a.Trial = te.Trial
		return Shrink(a, log), te
	}
	return nil, nil
}

package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"voxel/internal/repro"
)

// The tuple generator is the campaign's determinism root: one seed, one
// sequence of artifacts.
func TestRandomArtifactDeterministic(t *testing.T) {
	draw := func() []*repro.Artifact {
		rng := rand.New(rand.NewSource(99))
		out := make([]*repro.Artifact, 8)
		for i := range out {
			out[i] = RandomArtifact(rng)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("tuple %d differs across identical seeds:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	for _, art := range a {
		if art.Title == "" || art.System == "" || art.Seed == 0 {
			t.Fatalf("degenerate tuple: %+v", art)
		}
	}
}

// Shrinking an injected failure strips every riding dimension — failover,
// impairment, swarm, the sweep, clip length, seed — because the deliberate
// fault reproduces under all of them; and the whole walk is deterministic.
func TestShrinkInjectedFailure(t *testing.T) {
	big := &repro.Artifact{
		Title:      "BBB",
		System:     "VOXEL",
		Trace:      "verizon",
		Segments:   8,
		Trials:     2,
		Trial:      1,
		Seed:       5,
		Sessions:   2,
		Impairment: "bursty",
		Failover:   true,
		Inject:     "invariant",
		Violation:  "exp.injected-fault",
	}
	if ok, _, err := Reproduces(big); err != nil || !ok {
		t.Fatalf("big artifact does not fail (ok=%v err=%v)", ok, err)
	}
	small := Shrink(big, nil)
	if small.Failover || small.Impairment != "" || small.Sessions != 1 {
		t.Fatalf("riding dimensions not stripped: %+v", small)
	}
	if small.Trials != 1 || small.Trial != 0 {
		t.Fatalf("sweep not collapsed: %+v", small)
	}
	if small.Segments > 2 || small.Seed != 1 {
		t.Fatalf("clip/seed not minimized: %+v", small)
	}
	if ok, te, err := Reproduces(small); err != nil || !ok {
		t.Fatalf("shrunk artifact does not reproduce (ok=%v te=%v err=%v)", ok, te, err)
	}
	if again := Shrink(big, nil); !reflect.DeepEqual(small, again) {
		t.Fatalf("shrink not deterministic:\n%+v\n%+v", small, again)
	}
}

// The committed known-good artifact must keep reproducing its recorded
// violation — this is the regression test for the whole artifact pipeline
// (Load → ConfigFromArtifact → armed run → rule match).
func TestCommittedArtifactReproduces(t *testing.T) {
	a, err := repro.Load("../../testdata/repro/injected-invariant.json")
	if err != nil {
		t.Fatal(err)
	}
	ok, te, err := Reproduces(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("committed artifact did not reproduce (got %+v)", te)
	}
	if te.Rule != a.Violation {
		t.Fatalf("rule %q != recorded violation %q", te.Rule, a.Violation)
	}
}

// A healthy artifact neither fails nor reports reproduction.
func TestReproducesCleanArtifact(t *testing.T) {
	a := &repro.Artifact{
		Title: "BBB", System: "VOXEL", Trace: "verizon",
		Segments: 4, Trials: 1, Seed: 1,
	}
	ok, te, err := Reproduces(a)
	if err != nil {
		t.Fatal(err)
	}
	if ok || te != nil {
		t.Fatalf("clean artifact reported a failure: %+v", te)
	}
}

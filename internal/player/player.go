// Package player implements the video client: the DASH playback loop, the
// playback buffer and stall accounting, the two-phase VOXEL fetch (reliable
// I-frame + headers, unreliable frame bodies), segment abandonment, and
// the opportunistic selective retransmission of §4.2.
//
// The player supports four transport/ABR integration modes mirroring the
// paper's incremental deployment story (§5):
//
//	ModeReliable      — everything over reliable streams ("Q" in Figs. 3–4)
//	ModeOpaque        — vanilla ABR over QUIC*: I-frame + headers reliable,
//	                    bodies unreliable, ABR unaware ("Q*" in Figs. 3–4)
//	ModeVoxel         — the full system: ABR*'s partial-segment targets over
//	                    QUIC* with selective retransmission (§5.2)
//	ModeVoxelReliable — ABR* decisions but fully reliable transfers
//	                    ("VOXEL rel", Fig. 18c–d)
package player

import (
	"time"

	"voxel/internal/abr"
	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/obs"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/quic"
	"voxel/internal/server"
	"voxel/internal/sim"
	"voxel/internal/video"
)

// Mode selects the transport/ABR integration.
type Mode int

// The four integration modes (see the package comment).
const (
	ModeReliable Mode = iota
	ModeOpaque
	ModeVoxel
	ModeVoxelReliable
)

func (m Mode) String() string {
	switch m {
	case ModeReliable:
		return "Q"
	case ModeOpaque:
		return "Q*"
	case ModeVoxel:
		return "VOXEL"
	default:
		return "VOXEL-rel"
	}
}

// Config parameterizes a player run.
type Config struct {
	Algorithm abr.Algorithm
	Mode      Mode
	// BufferSegments is the playback buffer capacity in segments (the
	// paper sweeps 1–7).
	BufferSegments int
	// Metric scores delivered segments (default SSIM).
	Metric qoe.Metric
	// Model is the QoE model used for scoring (default qoe.DefaultModel).
	Model qoe.Model
	// BetaCandidates adds BETA's single unreferenced-B virtual level per
	// quality instead of VOXEL's manifest points.
	BetaCandidates bool
	// DisableSelectiveRetx turns off §4.2's buffer-full loss recovery.
	DisableSelectiveRetx bool
	// MaxVirtualCandidates caps per-quality virtual levels fed to the ABR.
	MaxVirtualCandidates int
	// Live enables live-edge semantics: segment i only becomes available
	// once it has been produced (i+1 segment durations after the session
	// start), the natural regime for the paper's low-latency motivation.
	Live bool
	// Recovery configures the HTTP client's request deadline and retry
	// policy. The zero value keeps the legacy fire-and-forget client.
	Recovery httpsim.Recovery
	// FailoverConns are spare connections to additional origin servers; the
	// client fails over to them when the primary connection closes.
	FailoverConns []*quic.Conn
	// Obs receives playback telemetry (segment/rebuffer/abandonment events,
	// buffer and throughput gauges) and is forwarded to the HTTP client.
	// Nil disables recording at zero cost.
	Obs *obs.Scope
}

// SegmentResult records one delivered segment.
type SegmentResult struct {
	Index      int
	Quality    video.Quality
	Virtual    bool
	TargetByte int
	GotBytes   int
	LostBytes  int
	Score      float64
	Restarts   int
	// WastedBytes counts data discarded by restarts.
	WastedBytes int
}

// Results summarizes a playback session.
type Results struct {
	Segments       []SegmentResult
	StallTime      time.Duration
	StartupDelay   time.Duration
	PlayDuration   time.Duration
	BytesReceived  int64
	BytesWasted    int64
	SkippedBytes   int64 // bytes of chosen-quality segments never delivered
	ChosenBytes    int64 // full-size bytes of chosen qualities
	TargetBytes    int64 // bytes the plans intended to deliver
	LostInTransit  int64 // transport-reported losses (pre-recovery)
	RecoveredBytes int64 // via selective retransmission
	Switches       int
	FailedRequests int // requests abandoned after deadline/retry/failover
}

// BufRatio is total stall time over media duration (§5.1).
func (r *Results) BufRatio() float64 {
	if r.PlayDuration == 0 {
		return 0
	}
	return r.StallTime.Seconds() / r.PlayDuration.Seconds()
}

// AvgBitrate is the mean delivered segment bitrate in bps.
func (r *Results) AvgBitrate() float64 {
	if len(r.Segments) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Segments {
		sum += float64(s.GotBytes*8) / video.SegmentDuration.Seconds()
	}
	return sum / float64(len(r.Segments))
}

// Scores returns the per-segment QoE scores.
func (r *Results) Scores() []float64 {
	out := make([]float64, len(r.Segments))
	for i, s := range r.Segments {
		out[i] = s.Score
	}
	return out
}

// MeanScore returns the average segment score.
func (r *Results) MeanScore() float64 {
	if len(r.Segments) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Segments {
		sum += s.Score
	}
	return sum / float64(len(r.Segments))
}

// SkippedFraction is the share of chosen-quality data not delivered
// (Fig. 7d).
func (r *Results) SkippedFraction() float64 {
	if r.ChosenBytes == 0 {
		return 0
	}
	return float64(r.SkippedBytes) / float64(r.ChosenBytes)
}

// ResidualLossFraction is the share of planned data lost in transit and
// still unrepaired after selective retransmission (§4.2's 0.9–1.8%
// figures). Bytes a virtual quality level intentionally skipped — or that
// an abandonment cut away — are not losses: their effect is already priced
// into the segment score, and the decoder sees clean truncation, not
// corruption.
func (r *Results) ResidualLossFraction() float64 {
	if r.TargetBytes == 0 {
		return 0
	}
	missing := r.LostInTransit - r.RecoveredBytes
	if missing < 0 {
		missing = 0
	}
	return float64(missing) / float64(r.TargetBytes)
}

// Player drives one playback session.
type Player struct {
	sim    *sim.Sim
	client *httpsim.Client
	cfg    Config
	video  *video.Video
	man    *dash.Manifest
	anal   *prep.Analyzer

	// playback state
	started      bool
	startupAt    sim.Time
	buffer       time.Duration
	lastSync     sim.Time
	stall        time.Duration
	stalled      bool
	stallAtStart time.Duration // p.stall when the current rebuffer began
	nextIndex    int
	lastQuality  video.Quality
	tputEstimate float64
	results      Results
	done         bool
	onDone       func()

	// per-segment delivery state for scoring and selective retx
	segStates []*segState

	// active download
	dl *download

	// selective retransmission
	retxActive *retxState

	obs *obs.Scope // nil = telemetry disabled (all calls no-op)
}

type segState struct {
	index    int
	quality  video.Quality
	received quic.RangeSet // object offsets relative to segment start
	lost     quic.RangeSet
	target   int
	played   bool
	resultIx int
}

type download struct {
	cand      abr.Candidate
	index     int
	startedAt sim.Time
	reliable  *httpsim.Response
	body      *httpsim.Response
	bodySpec  httpsim.RangeSpec
	segStart  int64
	state     *segState
	relDone   bool
	bodyDone  bool
	gotBytes  int
	restarts  int
	wasted    int
	finished  bool
	poll      *sim.Event
}

type retxState struct {
	seg  *segState
	resp *httpsim.Response
}

// New creates a player for the given title over an established QUIC*
// connection that already has a server.VideoServer on the other side.
func New(s *sim.Sim, conn *quic.Conn, v *video.Video, m *dash.Manifest, cfg Config) *Player {
	if cfg.Algorithm == nil {
		panic("player: nil algorithm")
	}
	if cfg.BufferSegments <= 0 {
		cfg.BufferSegments = 7
	}
	if cfg.Model == (qoe.Model{}) {
		cfg.Model = qoe.DefaultModel
	}
	if cfg.MaxVirtualCandidates <= 0 {
		cfg.MaxVirtualCandidates = 8
	}
	p := &Player{
		sim:    s,
		client: httpsim.NewClient(conn),
		cfg:    cfg,
		video:  v,
		man:    m,
		anal:   &prep.Analyzer{Model: cfg.Model, Metric: cfg.Metric},
		obs:    cfg.Obs,
	}
	p.client.SetObs(cfg.Obs)
	if cfg.Recovery != (httpsim.Recovery{}) {
		p.client.SetRecovery(cfg.Recovery)
	}
	for _, fc := range cfg.FailoverConns {
		p.client.AddFailover(fc)
	}
	p.segStates = make([]*segState, m.NumSegments())
	return p
}

// Run starts the session; onDone fires when playback finished.
func (p *Player) Run(onDone func()) {
	p.onDone = onDone
	start := p.sim.Now()
	resp := p.client.Get(server.ManifestPath, nil, false, nil)
	resp.OnComplete = func() {
		// Seed the throughput estimate from the manifest transfer.
		el := p.sim.Now() - start
		if el > 0 && resp.BodyLen > 0 {
			p.tputEstimate = float64(resp.BodyLen*8) / el.Seconds()
		} else {
			p.tputEstimate = 1e6
		}
		p.lastSync = p.sim.Now()
		p.step()
	}
	resp.OnFail = func(error) {
		// The manifest object is only a throughput probe here (the parsed
		// manifest was handed to New); start playback on a default estimate
		// rather than wedging the session.
		p.results.FailedRequests++
		p.tputEstimate = 1e6
		p.lastSync = p.sim.Now()
		p.step()
	}
}

// Results returns the session results (valid once done).
func (p *Player) Results() *Results { return &p.results }

// Done reports whether playback completed.
func (p *Player) Done() bool { return p.done }

// --- playback clock ---

// syncBuffer advances the playback clock to now, draining buffer and
// accumulating stall time.
func (p *Player) syncBuffer() {
	now := p.sim.Now()
	elapsed := now - p.lastSync
	p.lastSync = now
	if chk := p.sim.Checker(); chk.Enabled() {
		// The playback buffer is physical media: it can drain to zero but
		// never below, and accumulated stall can only grow.
		if p.buffer < 0 || p.stall < 0 || elapsed < 0 {
			chk.Failf("player", "player.buffer-nonnegative",
				"buffer %v, stall %v, elapsed %v at %v", p.buffer, p.stall, elapsed, now)
		}
	}
	if !p.started || elapsed <= 0 {
		return
	}
	if p.buffer >= elapsed {
		p.buffer -= elapsed
		if p.stalled {
			rebuf := p.stall - p.stallAtStart
			p.obs.Observe(obs.HStallMs, int64(rebuf/time.Millisecond))
			p.obs.EventX(obs.EvRebufferStop, int64(p.nextIndex), 0, 0, rebuf.Seconds())
		}
		p.stalled = false
		return
	}
	// Drained mid-interval: the rest is stall (unless media ended).
	stall := elapsed - p.buffer
	p.buffer = 0
	if p.nextIndex < p.man.NumSegments() || p.dl != nil {
		if !p.stalled {
			p.stallAtStart = p.stall
			p.obs.Inc(obs.CRebuffers)
			p.obs.Event(obs.EvRebufferStart, int64(p.nextIndex), 0, 0)
		}
		p.stall += stall
		p.stalled = true
	}
}

func (p *Player) bufferCap() time.Duration {
	return time.Duration(p.cfg.BufferSegments) * p.man.SegmentDuration
}

// --- the ABR loop ---

func (p *Player) step() {
	if p.done {
		return
	}
	p.syncBuffer()
	if p.nextIndex >= p.man.NumSegments() {
		p.finishWhenDrained()
		return
	}
	// Live edge: wait until the next segment has been produced.
	if p.cfg.Live {
		avail := time.Duration(p.nextIndex+1) * p.man.SegmentDuration
		if now := p.sim.Now(); now < avail {
			p.idle(avail - now)
			return
		}
	}
	// Buffer full? The algorithms return Sleep; but guard here too.
	st := p.state()
	opts := p.buildOptions(p.nextIndex)
	d := p.cfg.Algorithm.Decide(st, opts)
	if d.Sleep > 0 {
		p.idle(d.Sleep)
		return
	}
	p.startDownload(d.Candidate)
}

func (p *Player) state() abr.State {
	return abr.State{
		Buffer:      p.buffer,
		BufferCap:   p.bufferCap(),
		Throughput:  p.tputEstimate,
		LastQuality: p.lastQuality,
		Index:       p.nextIndex,
		Total:       p.man.NumSegments(),
		Startup:     !p.started,
	}
}

// idle sleeps; in VOXEL mode idle periods run selective retransmission.
func (p *Player) idle(d time.Duration) {
	if p.cfg.Mode == ModeVoxel && !p.cfg.DisableSelectiveRetx {
		p.maybeSelectiveRetx()
	}
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	p.sim.Schedule(d, p.step)
}

// finishWhenDrained ends the session after the buffer plays out.
func (p *Player) finishWhenDrained() {
	if p.buffer > 0 {
		p.sim.Schedule(p.buffer, func() {
			p.syncBuffer()
			p.finishWhenDrained()
		})
		return
	}
	if p.done {
		return
	}
	p.done = true
	p.results.PlayDuration = p.man.Duration()
	p.results.StallTime = p.stall
	if p.onDone != nil {
		p.onDone()
	}
}

// --- candidate construction ---

func (p *Player) buildOptions(idx int) abr.Options {
	var opts abr.Options
	for q := 0; q < len(p.man.Reps); q++ {
		seg := p.man.Segment(video.Quality(q), idx)
		full := abr.Candidate{
			Quality:   video.Quality(q),
			Bytes:     seg.Bytes,
			FullBytes: seg.Bytes,
			Frames:    video.FramesPerSeg,
		}
		if len(seg.Points) > 0 {
			full.Score = seg.Points[len(seg.Points)-1].Score
		}
		var cands []abr.Candidate
		switch {
		case p.cfg.BetaCandidates:
			// BETA: one virtual level per quality (unreferenced-B drop).
			s := p.video.Segment(idx, video.Quality(q))
			bytes, score, frames := p.anal.BetaVirtualLevel(s)
			if bytes < seg.Bytes {
				cands = append(cands, abr.Candidate{
					Quality: video.Quality(q), Bytes: bytes, FullBytes: seg.Bytes,
					Score: score, Frames: frames, Virtual: true,
				})
			}
		case p.usesVirtualLevels() && len(seg.Points) > 1:
			// VOXEL: manifest points above the lower-rung bound.
			bound := 0.0
			if q > 0 {
				lower := p.man.Segment(video.Quality(q-1), idx)
				if len(lower.Points) > 0 {
					bound = lower.Points[len(lower.Points)-1].Score
				}
			}
			pts := seg.Points[:len(seg.Points)-1] // exclude the full point
			kept := 0
			for _, pt := range pts {
				if pt.Score < bound {
					continue
				}
				if kept >= p.cfg.MaxVirtualCandidates {
					break
				}
				kept++
				cands = append(cands, abr.Candidate{
					Quality: video.Quality(q), Bytes: pt.Bytes, FullBytes: seg.Bytes,
					Score: pt.Score, Frames: pt.Frames, Virtual: true,
				})
			}
		}
		cands = append(cands, full)
		opts.PerQuality = append(opts.PerQuality, cands)
	}
	return opts
}

func (p *Player) usesVirtualLevels() bool {
	return p.cfg.Mode == ModeVoxel || p.cfg.Mode == ModeVoxelReliable
}

// --- download execution ---

func (p *Player) startDownload(cand abr.Candidate) {
	idx := p.nextIndex
	seg := p.man.Segment(cand.Quality, idx)
	state := &segState{index: idx, quality: cand.Quality, target: cand.Bytes}
	p.segStates[idx] = state
	dl := &download{
		cand:      cand,
		index:     idx,
		startedAt: p.sim.Now(),
		segStart:  seg.MediaRange[0],
		state:     state,
	}
	p.recordChoice(idx, cand)
	p.dl = dl
	p.issueRequests(dl, seg)
	p.schedulePoll(dl)
}

// recordChoice emits the telemetry for one committed download candidate.
func (p *Player) recordChoice(idx int, cand abr.Candidate) {
	p.obs.EventX(obs.EvSegmentChosen, int64(idx), int64(cand.Quality), int64(cand.Bytes), cand.Score)
	if cand.Virtual {
		p.obs.Inc(obs.CVirtualSegments)
		p.obs.Event(obs.EvVirtualLevel, int64(idx), int64(cand.Quality), int64(cand.Bytes))
	}
}

// issueRequests issues the mode-appropriate HTTP requests for the current
// candidate of dl.
func (p *Player) issueRequests(dl *download, seg *dash.SegmentInfo) {
	path := server.VideoPath(int(dl.cand.Quality))
	base := seg.MediaRange[0]

	toAbs := func(ranges [][2]int) httpsim.RangeSpec {
		out := make(httpsim.RangeSpec, 0, len(ranges))
		for _, r := range ranges {
			out = append(out, [2]int64{base + int64(r[0]), base + int64(r[1])})
		}
		return out
	}

	switch p.cfg.Mode {
	case ModeReliable, ModeVoxelReliable:
		// One reliable transfer. For virtual candidates, fetch the
		// reliable part plus body ranges up to the target byte count.
		spec := httpsim.RangeSpec{{base, base + int64(dl.cand.Bytes)}}
		if p.cfg.Mode == ModeVoxelReliable || p.cfg.BetaCandidates {
			spec = p.prefixSpec(dl.index, seg, dl.cand, base)
		}
		dl.bodySpec = spec
		dl.relDone = true // no separate reliable phase
		dl.body = p.client.Get(path, spec, false, nil)
		p.wireBody(dl, false)
	case ModeOpaque, ModeVoxel:
		// Two-phase fetch (§4.2): reliable I-frame + headers, then the
		// frame bodies over an unreliable stream.
		relSpec := toAbs(seg.Reliable)
		dl.reliable = p.client.Get(path, relSpec, false, nil)
		rel := dl.reliable
		rel.OnComplete = func() {
			if dl.finished || p.dl != dl {
				return
			}
			dl.relDone = true
			// The reliable part arrived in full.
			for _, r := range relSpec {
				dl.state.received.Add(uint64(r[0]-base), uint64(r[1]-base))
			}
			dl.gotBytes += int(relSpec.TotalBytes())
			p.obs.Count(obs.CBytesReliable, uint64(relSpec.TotalBytes()))
			p.obs.Event(obs.EvBytesReliable, int64(dl.index), relSpec.TotalBytes(), 0)
			p.maybeFinishDownload(dl)
		}
		rel.OnFail = func(error) {
			if dl.finished || p.dl != dl {
				return
			}
			p.results.FailedRequests++
			dl.relDone = true
			// Salvage what arrived (body offsets are concatenated-range
			// positions); the rest of the planned reliable part is lost.
			for _, br := range rel.Received().Ranges() {
				dl.gotBytes += int(br.Len())
				mapBody(relSpec, int64(br.Start), int64(br.Len()), func(s, e int64) {
					dl.state.received.Add(uint64(s-base), uint64(e-base))
				})
			}
			for _, r := range relSpec {
				s0, e0 := uint64(r[0]-base), uint64(r[1]-base)
				for _, g := range dl.state.received.Gaps(s0, e0) {
					dl.state.lost.Add(g.Start, g.End)
				}
			}
			p.maybeFinishDownload(dl)
		}

		var bodyRanges [][2]int
		if p.cfg.Mode == ModeOpaque || !dl.cand.Virtual {
			bodyRanges = seg.Unreliable
		} else {
			// First Frames-1 body ranges per the candidate's point.
			n := dl.cand.Frames - 1
			if n > len(seg.Unreliable) {
				n = len(seg.Unreliable)
			}
			bodyRanges = seg.Unreliable[:n]
		}
		if len(bodyRanges) == 0 {
			dl.bodyDone = true
			p.maybeFinishDownload(dl)
			return
		}
		dl.bodySpec = toAbs(bodyRanges)
		dl.body = p.client.Get(path, dl.bodySpec, true, nil)
		p.wireBody(dl, true)
	}
}

// prefixSpec builds the range list covering the candidate's byte target in
// download order (for reliable partial transfers).
func (p *Player) prefixSpec(idx int, seg *dash.SegmentInfo, cand abr.Candidate, base int64) httpsim.RangeSpec {
	if !cand.Virtual {
		return httpsim.RangeSpec{{base, base + int64(cand.Bytes)}}
	}
	if p.cfg.BetaCandidates {
		// BETA ships everything except the unreferenced B-frames, over a
		// reliable transport (its modified files make this a contiguous
		// prefix; range requests express the same byte set here).
		s := p.video.Segment(idx, cand.Quality)
		var spec httpsim.RangeSpec
		for i := range s.Frames {
			if s.Frames[i].Type == video.BFrame && !s.Referenced(i) {
				// Still ship the headers so the decoder stays in sync.
				hs, he := s.HeaderRange(i)
				spec = append(spec, [2]int64{base + int64(hs), base + int64(he)})
				continue
			}
			fs, fe := s.FrameRange(i)
			spec = append(spec, [2]int64{base + int64(fs), base + int64(fe)})
		}
		return spec
	}
	var spec httpsim.RangeSpec
	for _, r := range seg.Reliable {
		spec = append(spec, [2]int64{base + int64(r[0]), base + int64(r[1])})
	}
	n := cand.Frames - 1
	if n > len(seg.Unreliable) {
		n = len(seg.Unreliable)
	}
	for _, r := range seg.Unreliable[:n] {
		spec = append(spec, [2]int64{base + int64(r[0]), base + int64(r[1])})
	}
	return spec
}

// wireBody attaches delivery callbacks for the body response of dl.
// unreliable says which stream kind carries the body, for telemetry.
func (p *Player) wireBody(dl *download, unreliable bool) {
	body := dl.body
	spec := dl.bodySpec
	segStart := dl.segStart
	byteCtr := obs.CBytesReliable
	if unreliable {
		byteCtr = obs.CBytesUnreliable
	}
	body.OnBody = func(off int64, data []byte) {
		if dl.finished || p.dl != dl {
			return
		}
		dl.gotBytes += len(data)
		p.obs.Count(byteCtr, uint64(len(data)))
		mapBody(spec, off, int64(len(data)), func(s, e int64) {
			dl.state.received.Add(uint64(s-segStart), uint64(e-segStart))
		})
	}
	body.OnLost = func(off, n int64) {
		if dl.finished || p.dl != dl {
			return
		}
		mapBody(spec, off, n, func(s, e int64) {
			dl.state.lost.Add(uint64(s-segStart), uint64(e-segStart))
		})
	}
	body.OnComplete = func() {
		if dl.finished || p.dl != dl {
			return
		}
		dl.bodyDone = true
		if unreliable {
			p.obs.Event(obs.EvBytesUnreliable, int64(dl.index), body.BytesReceived(), 0)
		} else {
			p.obs.Event(obs.EvBytesReliable, int64(dl.index), body.BytesReceived(), 0)
		}
		p.maybeFinishDownload(dl)
	}
	body.OnFail = func(error) {
		if dl.finished || p.dl != dl {
			return
		}
		p.results.FailedRequests++
		dl.bodyDone = true
		// §4.3: keep the partial segment. Planned bytes that never arrived
		// are marked lost so scoring and selective retransmission see them.
		for _, r := range spec {
			s0, e0 := uint64(r[0]-segStart), uint64(r[1]-segStart)
			for _, g := range dl.state.received.Gaps(s0, e0) {
				dl.state.lost.Add(g.Start, g.End)
			}
		}
		p.maybeFinishDownload(dl)
	}
}

// mapBody translates a chunk in concatenated-body space into object ranges.
func mapBody(spec httpsim.RangeSpec, bodyOff, n int64, fn func(objStart, objEnd int64)) {
	pos := int64(0)
	for _, r := range spec {
		l := r[1] - r[0]
		if bodyOff < pos+l && bodyOff+n > pos {
			s := r[0] + max64(bodyOff-pos, 0)
			e := r[0] + min64(bodyOff+n-pos, l)
			if e > s {
				fn(s, e)
			}
		}
		pos += l
		if pos >= bodyOff+n {
			break
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (p *Player) maybeFinishDownload(dl *download) {
	if dl.finished || !dl.relDone {
		return
	}
	if dl.body != nil && !dl.bodyDone {
		return
	}
	p.completeSegment(dl)
}

// schedulePoll arms the periodic abandonment check.
func (p *Player) schedulePoll(dl *download) {
	dl.poll = p.sim.Schedule(250*time.Millisecond, func() {
		// The handle just fired; drop it so a later cancel can't touch a
		// recycled event.
		dl.poll = nil
		if dl.finished || p.dl != dl || p.done {
			return
		}
		p.syncBuffer()
		elapsed := p.sim.Now() - dl.startedAt
		tput := 0.0
		if elapsed > 0 {
			tput = float64(dl.gotBytes*8) / elapsed.Seconds()
		}
		action := p.cfg.Algorithm.Abandon(p.state(), p.buildOptions(dl.index), abr.Progress{
			Candidate:  dl.cand,
			BytesDone:  dl.gotBytes,
			Elapsed:    elapsed,
			Throughput: tput,
		})
		switch action.Kind {
		case abr.Restart:
			p.restartDownload(dl, action.NewCandidate)
		case abr.FinishPartial:
			p.finishPartial(dl)
		default:
			p.schedulePoll(dl)
		}
	})
}

// restartDownload discards the current transfer and refetches the segment
// with the new candidate (BOLA/BETA behaviour — the waste VOXEL avoids).
func (p *Player) restartDownload(dl *download, cand abr.Candidate) {
	dl.finished = true
	p.cancel(dl)
	wasted := dl.gotBytes
	p.results.BytesWasted += int64(wasted)
	p.obs.Inc(obs.CAbandonRestarts)
	p.obs.Event(obs.EvAbandonRestart, int64(dl.index), int64(wasted), int64(cand.Bytes))
	p.recordChoice(dl.index, cand)

	seg := p.man.Segment(cand.Quality, dl.index)
	state := &segState{index: dl.index, quality: cand.Quality, target: cand.Bytes}
	p.segStates[dl.index] = state
	nd := &download{
		cand:      cand,
		index:     dl.index,
		startedAt: p.sim.Now(),
		segStart:  seg.MediaRange[0],
		state:     state,
		restarts:  dl.restarts + 1,
		wasted:    dl.wasted + wasted,
	}
	p.dl = nd
	p.issueRequests(nd, seg)
	p.schedulePoll(nd)
}

// finishPartial stops fetching and accepts what arrived (ABR*, §4.3).
func (p *Player) finishPartial(dl *download) {
	if dl.finished {
		return
	}
	p.obs.Inc(obs.CAbandonPartials)
	p.obs.Event(obs.EvAbandonPartial, int64(dl.index), int64(dl.gotBytes), int64(dl.cand.Bytes))
	// Mark everything not yet received in the *planned* spec as lost; the
	// reliable part, if incomplete, still completes in the background but
	// we score with what we have now.
	p.completeSegment(dl)
}

func (p *Player) cancel(dl *download) {
	if dl.reliable != nil {
		dl.reliable.Cancel()
	}
	if dl.body != nil {
		dl.body.Cancel()
	}
	if dl.poll != nil {
		p.sim.Cancel(dl.poll)
		dl.poll = nil
	}
}

// completeSegment finalizes the current download and advances the loop.
func (p *Player) completeSegment(dl *download) {
	if dl.finished {
		return
	}
	dl.finished = true
	p.cancel(dl)
	p.syncBuffer()

	st := dl.state
	elapsed := p.sim.Now() - dl.startedAt
	if elapsed > 0 && dl.gotBytes > 0 {
		sample := float64(dl.gotBytes*8) / elapsed.Seconds()
		// EWMA throughput estimate.
		if p.tputEstimate == 0 {
			p.tputEstimate = sample
		} else {
			p.tputEstimate = 0.7*p.tputEstimate + 0.3*sample
		}
		p.cfg.Algorithm.OnSample(abr.Sample{Throughput: sample, Duration: elapsed})
		p.obs.Observe(obs.HTputKbps, int64(sample/1000))
	}
	p.obs.Observe(obs.HSegmentMs, int64(elapsed/time.Millisecond))

	score := p.scoreSegment(st)
	full := p.man.Segment(st.quality, st.index).Bytes
	got := int(st.received.CoveredBytes())
	res := SegmentResult{
		Index:       st.index,
		Quality:     st.quality,
		Virtual:     dl.cand.Virtual,
		TargetByte:  dl.cand.Bytes,
		GotBytes:    got,
		LostBytes:   int(st.lost.CoveredBytes()),
		Score:       score,
		Restarts:    dl.restarts,
		WastedBytes: dl.wasted,
	}
	st.resultIx = len(p.results.Segments)
	p.results.Segments = append(p.results.Segments, res)
	p.results.BytesReceived += int64(got)
	p.results.ChosenBytes += int64(full)
	if miss := full - got; miss > 0 {
		p.results.SkippedBytes += int64(miss)
	}
	p.results.TargetBytes += int64(dl.cand.Bytes)
	p.results.LostInTransit += int64(st.lost.CoveredBytes())
	if len(p.results.Segments) > 1 &&
		p.results.Segments[len(p.results.Segments)-2].Quality != st.quality {
		p.results.Switches++
	}

	p.obs.Inc(obs.CSegments)
	p.obs.EventX(obs.EvSegmentDone, int64(st.index), int64(got), int64(st.lost.CoveredBytes()), score)

	p.buffer += p.man.SegmentDuration
	if !p.started {
		p.started = true
		p.startupAt = p.sim.Now()
		p.results.StartupDelay = p.sim.Now()
		p.lastSync = p.sim.Now()
		p.obs.EventX(obs.EvStartup, int64(st.index), 0, 0, p.results.StartupDelay.Seconds())
	}
	p.obs.SetGauge(obs.GBufferMs, int64(p.buffer/time.Millisecond))
	p.obs.SetGauge(obs.GThroughputKbps, int64(p.tputEstimate/1000))
	p.lastQuality = st.quality
	p.nextIndex++
	p.dl = nil
	p.step()
}

// scoreSegment computes the QoE of a segment's delivery state by mapping
// received object ranges to per-frame body loss fractions.
func (p *Player) scoreSegment(st *segState) float64 {
	s := p.video.Segment(st.index, st.quality)
	loss := make([]float64, len(s.Frames))
	for i := range s.Frames {
		bs, be := s.BodyRange(i)
		if be == bs {
			continue
		}
		have := uint64(be-bs) - gapBytes(&st.received, uint64(bs), uint64(be))
		loss[i] = 1 - float64(have)/float64(be-bs)
	}
	return p.cfg.Model.Score(p.cfg.Metric, s, loss)
}

func gapBytes(rs *quic.RangeSet, start, end uint64) uint64 {
	var n uint64
	for _, g := range rs.Gaps(start, end) {
		n += g.Len()
	}
	return n
}

// --- selective retransmission (§4.2) ---

// maybeSelectiveRetx re-requests lost ranges of unplayed segments while
// the buffer is full.
func (p *Player) maybeSelectiveRetx() {
	if p.retxActive != nil {
		return
	}
	// Find the earliest unplayed segment with holes.
	playedUpTo := p.nextIndex - int(p.buffer/p.man.SegmentDuration)
	for idx := playedUpTo; idx < p.nextIndex; idx++ {
		if idx < 0 || p.segStates[idx] == nil {
			continue
		}
		st := p.segStates[idx]
		holes := p.segmentHoles(st)
		if len(holes) == 0 {
			continue
		}
		seg := p.man.Segment(st.quality, st.index)
		spec := make(httpsim.RangeSpec, 0, len(holes))
		for _, h := range holes {
			spec = append(spec, [2]int64{seg.MediaRange[0] + int64(h.Start), seg.MediaRange[0] + int64(h.End)})
		}
		resp := p.client.Get(server.VideoPath(int(st.quality)), spec, true, nil)
		rx := &retxState{seg: st, resp: resp}
		p.retxActive = rx
		segStart := seg.MediaRange[0]
		resp.OnBody = func(off int64, data []byte) {
			mapBody(spec, off, int64(len(data)), func(s, e int64) {
				before := st.received.CoveredBytes()
				st.received.Add(uint64(s-segStart), uint64(e-segStart))
				recovered := st.received.CoveredBytes() - before
				p.results.RecoveredBytes += int64(recovered)
				p.obs.Count(obs.CRecoveredBytes, recovered)
			})
		}
		resp.OnComplete = func() {
			p.retxActive = nil
			// Re-score with the recovered data if not yet played.
			if st.resultIx < len(p.results.Segments) {
				p.results.Segments[st.resultIx].Score = p.scoreSegment(st)
				p.results.Segments[st.resultIx].GotBytes = int(st.received.CoveredBytes())
			}
		}
		resp.OnFail = func(error) {
			p.results.FailedRequests++
			p.retxActive = nil // the repair is best-effort; move on
		}
		return
	}
}

// segmentHoles returns missing ranges within the segment's *target* bytes
// (the part the plan wanted delivered).
func (p *Player) segmentHoles(st *segState) []quic.ByteRange {
	if st.lost.IsEmpty() {
		return nil
	}
	var holes []quic.ByteRange
	for _, l := range st.lost.Ranges() {
		for _, g := range st.received.Gaps(l.Start, l.End) {
			holes = append(holes, g)
		}
	}
	return holes
}

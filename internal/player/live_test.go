package player

import (
	"testing"
	"time"

	"voxel/internal/abr"
	"voxel/internal/trace"
	"voxel/internal/video"
)

func TestLiveModeWaitsForAvailability(t *testing.T) {
	// With a fat link, a live player still cannot finish before the media
	// was produced: total session time ≥ media duration.
	tr := trace.Constant("fat", 100e6, 3600)
	r := buildRig(t, tr, 256, 6, Config{
		Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 1, Live: true,
	})
	var doneAt time.Duration
	r.pl.Run(func() { doneAt = r.s.Now() })
	r.s.RunUntil(30 * time.Minute)
	if !r.pl.Done() {
		t.Fatal("live playback did not finish")
	}
	media := time.Duration(6) * video.SegmentDuration
	if doneAt < media {
		t.Fatalf("finished at %v, before the stream was produced (%v)", doneAt, media)
	}
	// Latency stays bounded: done soon after the last segment appears.
	if doneAt > media+30*time.Second {
		t.Fatalf("live session ended at %v — latency unbounded", doneAt)
	}
}

func TestLiveModeVsVodOnGoodLink(t *testing.T) {
	// VOD on the same fat link finishes long before real time.
	tr := trace.Constant("fat", 100e6, 3600)
	r := buildRig(t, tr, 256, 6, Config{
		Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 6,
	})
	r.pl.Run(nil)
	r.s.RunUntil(30 * time.Minute)
	if !r.pl.Done() {
		t.Fatal("VOD playback did not finish")
	}
	// VOD still plays in real time (buffer drains at 1×), so the floor is
	// the media duration too — but downloads all complete almost
	// immediately; check that no stall occurred and startup was fast.
	res := r.pl.Results()
	if res.StallTime > 0 {
		t.Fatalf("stall on a 100 Mbps link: %v", res.StallTime)
	}
	if res.StartupDelay > 2*time.Second {
		t.Fatalf("startup %v too slow on a fat link", res.StartupDelay)
	}
}

func TestLiveModeUnderChallengedNetwork(t *testing.T) {
	// Live + 1-segment buffer over a cellular trace: VOXEL must keep
	// playing (with bounded stalls), never deadlock on availability.
	r := buildRig(t, trace.TMobile(), 32, 8, Config{
		Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 1, Live: true,
	})
	r.pl.Run(nil)
	r.s.RunUntil(30 * time.Minute)
	if !r.pl.Done() {
		t.Fatal("live playback wedged")
	}
	if got := len(r.pl.Results().Segments); got != 8 {
		t.Fatalf("%d segments played", got)
	}
}

package player

import (
	"testing"
	"time"

	"voxel/internal/abr"
	"voxel/internal/trace"
	"voxel/internal/video"
)

func TestBetaModeUsesItsVirtualLevel(t *testing.T) {
	// BETA over a link that affords its virtual level but not full
	// segments of the same quality.
	tr := trace.Constant("c", 5e6, 3600)
	r := buildRig(t, tr, 32, 10, Config{
		Algorithm: abr.NewBeta(), Mode: ModeReliable,
		BufferSegments: 3, BetaCandidates: true,
	})
	res := r.run(t, 20*time.Minute)
	virtual := 0
	for _, seg := range res.Segments {
		if seg.Virtual {
			virtual++
		}
	}
	if virtual == 0 {
		t.Fatal("BETA never used its virtual level")
	}
	// BETA's virtual level only skips unreferenced B bodies, so skipped
	// data must stay modest (< ~20% of bytes).
	if res.SkippedFraction() > 0.25 {
		t.Fatalf("BETA skipped %.3f — more than its B-frame budget", res.SkippedFraction())
	}
}

func TestVoxelReliableModeNeverLosesData(t *testing.T) {
	// ABR* decisions over a fully reliable transport (Fig. 18c,d): target
	// bytes arrive exactly; no transport losses.
	tr := trace.Constant("c", 5e6, 3600)
	r := buildRig(t, tr, 16, 8, Config{
		Algorithm: abr.NewABRStar(), Mode: ModeVoxelReliable, BufferSegments: 3,
	})
	res := r.run(t, 20*time.Minute)
	for _, seg := range res.Segments {
		if seg.LostBytes > 0 {
			t.Fatalf("segment %d lost %d bytes on a reliable transport", seg.Index, seg.LostBytes)
		}
	}
}

func TestSelectiveRetxRecoversLosses(t *testing.T) {
	// A tight queue forces unreliable-stream losses; with a large buffer
	// the player has idle time to re-request them (§4.2).
	tr := trace.Constant("c", 8e6, 3600)
	runWith := func(disable bool) *Results {
		r := buildRig(t, tr, 10, 10, Config{
			Algorithm: abr.NewABRStar(), Mode: ModeVoxel,
			BufferSegments: 6, DisableSelectiveRetx: disable,
		})
		return r.run(t, 30*time.Minute)
	}
	with := runWith(false)
	without := runWith(true)
	if with.RecoveredBytes == 0 {
		t.Skip("no losses occurred to recover on this path")
	}
	if without.RecoveredBytes != 0 {
		t.Fatal("disabled selective retx still recovered bytes")
	}
	if with.ResidualLossFraction() > without.ResidualLossFraction() {
		t.Fatalf("selective retx made residual loss worse: %.4f vs %.4f",
			with.ResidualLossFraction(), without.ResidualLossFraction())
	}
}

func TestRestartAccountsWaste(t *testing.T) {
	// BOLA on a trace that collapses mid-segment must restart at least
	// once across the session and account wasted bytes.
	samples := make([]float64, 3600)
	for i := range samples {
		if i%12 < 6 {
			samples[i] = 12e6
		} else {
			samples[i] = 0.5e6
		}
	}
	tr := trace.MustNew("sawtooth", samples)
	r := buildRig(t, tr, 32, 12, Config{Algorithm: abr.NewBola(), Mode: ModeReliable, BufferSegments: 2})
	res := r.run(t, 40*time.Minute)
	restarts := 0
	for _, seg := range res.Segments {
		restarts += seg.Restarts
	}
	if restarts > 0 && res.BytesWasted == 0 {
		t.Fatal("restarts occurred but no waste accounted")
	}
	if restarts == 0 {
		t.Log("no restarts on this trace (acceptable)")
	}
}

func TestResultsInvariants(t *testing.T) {
	tr := trace.Verizon()
	r := buildRig(t, tr, 32, 10, Config{Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 2})
	res := r.run(t, 30*time.Minute)
	if res.PlayDuration != time.Duration(10)*video.SegmentDuration {
		t.Fatalf("play duration %v", res.PlayDuration)
	}
	if res.BufRatio() < 0 {
		t.Fatal("negative bufRatio")
	}
	if res.ChosenBytes < res.BytesReceived-int64(res.RecoveredBytes) {
		t.Fatalf("chosen %d < received %d", res.ChosenBytes, res.BytesReceived)
	}
	if res.SkippedFraction() < 0 || res.SkippedFraction() > 1 {
		t.Fatalf("skipped fraction %v", res.SkippedFraction())
	}
	if res.ResidualLossFraction() < 0 || res.ResidualLossFraction() > 1 {
		t.Fatalf("residual %.4f out of range", res.ResidualLossFraction())
	}
	if res.LostInTransit < 0 {
		t.Fatalf("negative in-transit losses %d", res.LostInTransit)
	}
	if got := len(res.Scores()); got != len(res.Segments) {
		t.Fatalf("scores len %d", got)
	}
	if res.MeanScore() <= 0 || res.AvgBitrate() <= 0 {
		t.Fatal("degenerate aggregate metrics")
	}
}

func TestTputAlgorithmEndToEnd(t *testing.T) {
	tr := trace.Constant("c", 6e6, 600)
	r := buildRig(t, tr, 32, 6, Config{Algorithm: abr.NewTput(), Mode: ModeReliable, BufferSegments: 3})
	res := r.run(t, 10*time.Minute)
	if len(res.Segments) != 6 {
		t.Fatalf("%d segments", len(res.Segments))
	}
}

func TestMPCAlgorithmEndToEnd(t *testing.T) {
	tr := trace.Constant("c", 8e6, 600)
	r := buildRig(t, tr, 32, 6, Config{Algorithm: abr.NewMPC(), Mode: ModeOpaque, BufferSegments: 3})
	res := r.run(t, 10*time.Minute)
	if len(res.Segments) != 6 {
		t.Fatalf("%d segments", len(res.Segments))
	}
	// MPC ramps up with history; the last segment should beat the first.
	if res.Segments[5].Quality < res.Segments[0].Quality {
		t.Fatalf("MPC did not ramp: %v → %v", res.Segments[0].Quality, res.Segments[5].Quality)
	}
}

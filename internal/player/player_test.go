package player

import (
	"testing"
	"time"

	"voxel/internal/abr"
	"voxel/internal/dash"
	"voxel/internal/httpsim"
	"voxel/internal/netem"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/quic"
	"voxel/internal/server"
	"voxel/internal/sim"
	"voxel/internal/trace"
	"voxel/internal/video"
)

type rig struct {
	s  *sim.Sim
	pl *Player
	v  *video.Video
	m  *dash.Manifest
}

func buildRig(t *testing.T, tr *trace.Trace, queue int, segs int, cfg Config) *rig {
	t.Helper()
	s := sim.New(99)
	path := netem.NewPath(s, tr, queue)
	cc, sc := quic.NewPair(s, path, quic.Config{}, quic.Config{})
	v := video.MustLoad("BBB")
	v.Segments = segs
	m := dash.Build(v, dash.BuildOptions{Voxel: true, PointsPerSegment: 10, Analyzer: prep.NewAnalyzer()})
	if _, err := server.New(sc, m, httpsim.ServerOptions{}); err != nil {
		t.Fatal(err)
	}
	pl := New(s, cc, v, m, cfg)
	return &rig{s: s, pl: pl, v: v, m: m}
}

func (r *rig) run(t *testing.T, limit time.Duration) *Results {
	t.Helper()
	r.pl.Run(nil)
	r.s.RunUntil(limit)
	if !r.pl.Done() {
		t.Fatalf("playback did not finish: %d/%d segments, buffer state stuck",
			len(r.pl.Results().Segments), r.m.NumSegments())
	}
	return r.pl.Results()
}

func TestReliablePlaybackGoodNetwork(t *testing.T) {
	tr := trace.Constant("c", 20e6, 600)
	r := buildRig(t, tr, 64, 8, Config{Algorithm: abr.NewBola(), Mode: ModeReliable, BufferSegments: 5})
	res := r.run(t, 10*time.Minute)
	if len(res.Segments) != 8 {
		t.Fatalf("%d segments played", len(res.Segments))
	}
	if res.BufRatio() > 0.01 {
		t.Fatalf("bufRatio %.3f on a 20 Mbps link", res.BufRatio())
	}
	// 20 Mbps affords high quality for most segments after startup.
	last := res.Segments[len(res.Segments)-1]
	if last.Quality < 8 {
		t.Fatalf("final quality %v, want high on 20 Mbps", last.Quality)
	}
	// All segments complete: no skipped data.
	if res.SkippedFraction() > 0.001 {
		t.Fatalf("skipped %.4f on a reliable run", res.SkippedFraction())
	}
	for _, seg := range res.Segments {
		// Early segments may ride low rungs whose base SSIM is modest.
		if seg.Score <= 0.5 || seg.Score > 1 {
			t.Fatalf("segment %d score %.3f out of range", seg.Index, seg.Score)
		}
	}
}

func TestVoxelPlaybackGoodNetwork(t *testing.T) {
	tr := trace.Constant("c", 20e6, 600)
	r := buildRig(t, tr, 64, 8, Config{Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 5})
	res := r.run(t, 10*time.Minute)
	if res.BufRatio() > 0.01 {
		t.Fatalf("bufRatio %.3f", res.BufRatio())
	}
	if res.MeanScore() < 0.9 {
		t.Fatalf("mean score %.3f too low for 20 Mbps", res.MeanScore())
	}
}

func TestVoxelSurvivesStarvedNetwork(t *testing.T) {
	// 0.4 Mbps cannot even sustain Q0 in real time comfortably — playback
	// must still complete (with stalls), never wedge.
	tr := trace.Constant("slow", 0.4e6, 3600)
	r := buildRig(t, tr, 32, 4, Config{Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 2})
	res := r.run(t, 30*time.Minute)
	if len(res.Segments) != 4 {
		t.Fatalf("%d segments played", len(res.Segments))
	}
}

func TestVoxelOutperformsBolaOnBadNetwork(t *testing.T) {
	// A choppy trace: VOXEL should rebuffer less than BOLA/QUIC.
	mk := func() *trace.Trace { return trace.TMobile() }
	bola := buildRig(t, mk(), 32, 10, Config{Algorithm: abr.NewBola(), Mode: ModeReliable, BufferSegments: 2})
	resB := bola.run(t, 30*time.Minute)
	voxel := buildRig(t, mk(), 32, 10, Config{Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 2})
	resV := voxel.run(t, 30*time.Minute)
	if resV.BufRatio() > resB.BufRatio()+0.02 {
		t.Fatalf("VOXEL bufRatio %.3f worse than BOLA %.3f", resV.BufRatio(), resB.BufRatio())
	}
}

func TestOpaqueModeDeliversWithHoles(t *testing.T) {
	// Q* with vanilla BOLA on a tight queue: unreliable bodies lose data
	// but segments still complete and scores reflect the damage.
	tr := trace.Constant("c", 6e6, 3600)
	r := buildRig(t, tr, 8, 6, Config{Algorithm: abr.NewBola(), Mode: ModeOpaque, BufferSegments: 3})
	res := r.run(t, 20*time.Minute)
	if len(res.Segments) != 6 {
		t.Fatalf("%d segments", len(res.Segments))
	}
	for _, seg := range res.Segments {
		if seg.Score < 0 || seg.Score > 1 {
			t.Fatalf("score %.3f out of range", seg.Score)
		}
	}
}

func TestStallAccounting(t *testing.T) {
	// 1-segment buffer over a link slower than the lowest bitrate: stalls
	// are inevitable and bufRatio must be positive.
	tr := trace.Constant("slow", 0.1e6, 7200)
	r := buildRig(t, tr, 32, 3, Config{Algorithm: abr.NewBola(), Mode: ModeReliable, BufferSegments: 1})
	res := r.run(t, 2*time.Hour)
	if res.StallTime == 0 {
		t.Fatal("expected stalls on a 0.1 Mbps link")
	}
	if res.BufRatio() <= 0 {
		t.Fatal("bufRatio must be positive")
	}
}

func TestVirtualLevelsUsedUnderPressure(t *testing.T) {
	// Bandwidth between rungs pushes ABR* toward partial segments.
	tr := trace.Constant("c", 3.6e6, 3600)
	r := buildRig(t, tr, 32, 10, Config{Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 3})
	res := r.run(t, 20*time.Minute)
	virtual := 0
	for _, seg := range res.Segments {
		if seg.Virtual {
			virtual++
		}
	}
	if virtual == 0 {
		t.Log("no virtual segments chosen (acceptable but unexpected)")
	}
	if res.BufRatio() > 0.2 {
		t.Fatalf("bufRatio %.3f too high for 3.6 Mbps", res.BufRatio())
	}
}

func TestQualitySwitchCounting(t *testing.T) {
	tr := trace.Constant("c", 8e6, 600)
	r := buildRig(t, tr, 64, 6, Config{Algorithm: abr.NewBola(), Mode: ModeReliable, BufferSegments: 4})
	res := r.run(t, 10*time.Minute)
	count := 0
	for i := 1; i < len(res.Segments); i++ {
		if res.Segments[i].Quality != res.Segments[i-1].Quality {
			count++
		}
	}
	if res.Switches != count {
		t.Fatalf("switches %d, counted %d", res.Switches, count)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeReliable.String() != "Q" || ModeOpaque.String() != "Q*" ||
		ModeVoxel.String() != "VOXEL" || ModeVoxelReliable.String() != "VOXEL-rel" {
		t.Fatal("mode names wrong")
	}
}

func TestScoreUsesMetric(t *testing.T) {
	tr := trace.Constant("c", 12e6, 600)
	r := buildRig(t, tr, 64, 4, Config{
		Algorithm: abr.NewABRStar(), Mode: ModeVoxel, BufferSegments: 3, Metric: qoe.VMAF,
	})
	res := r.run(t, 10*time.Minute)
	for _, seg := range res.Segments {
		if seg.Score < 1.5 {
			t.Fatalf("VMAF score %.1f looks like SSIM", seg.Score)
		}
	}
}

package netem

import (
	"fmt"
	"testing"
	"time"

	"voxel/internal/sim"
)

// runSchedule pumps n equal datagrams through an impaired link and returns
// the full observable schedule — per-packet delivery times (including
// duplicates) plus the final counters — as one comparable string.
func runSchedule(imp Impairment, seed int64, n int) string {
	s := sim.New(1)
	l := NewFixedLink(s, 8e6, 10*time.Millisecond, n*2)
	l.Impair(imp, seed)
	var events []string
	for i := 0; i < n; i++ {
		i := i
		l.Send(Datagram{Size: 1200, Deliver: func() {
			events = append(events, fmt.Sprintf("%d@%d", i, s.Now()))
		}})
	}
	s.Run()
	st := l.Stats()
	return fmt.Sprintf("%v drops=%d dup=%d", events, st.ImpairedDrops, st.Duplicated)
}

// Every impairment must be fully deterministic: the same seed yields a
// byte-identical delivery schedule, and a different seed (for the random
// ones) yields a different one. Run under -race this also shows the chains
// share no hidden global state.
func TestImpairmentDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		make   func() Impairment // fresh value per run: chains carry state
		seeded bool              // draws randomness (different seed ⇒ different schedule)
	}{
		{"iid-loss", func() Impairment { return IIDLoss{P: 0.2} }, true},
		{"gilbert-elliott", func() Impairment {
			return &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.01, LossBad: 0.6}
		}, true},
		{"jitter", func() Impairment { return Jitter{Max: 20 * time.Millisecond} }, true},
		{"reorder", func() Impairment { return Reorder{P: 0.3, Delay: 15 * time.Millisecond} }, true},
		{"duplicate", func() Impairment { return Duplicate{P: 0.3} }, true},
		{"blackout", func() Impairment {
			return Blackout{Windows: []Window{{Start: 20 * time.Millisecond, End: 60 * time.Millisecond}}}
		}, false},
		{"flap", func() Impairment {
			return Flap{Period: 50 * time.Millisecond, Down: 10 * time.Millisecond}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := runSchedule(tc.make(), 42, 300)
			b := runSchedule(tc.make(), 42, 300)
			if a != b {
				t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
			}
			if tc.seeded {
				c := runSchedule(tc.make(), 43, 300)
				if a == c {
					t.Fatal("different seeds produced identical schedules")
				}
			}
		})
	}
}

// The canonical profiles must be deterministic end to end too — NewProfile
// hands out fresh stateful chains, so two builds with the same seed must
// replay the same fate sequence.
func TestProfileDeterminism(t *testing.T) {
	for _, name := range Profiles() {
		if name == ProfileClean {
			continue
		}
		t.Run(name, func(t *testing.T) {
			mk := func() Impairment {
				down, _, err := NewProfile(name)
				if err != nil {
					t.Fatal(err)
				}
				return down
			}
			a := runSchedule(mk(), 7, 1000)
			if b := runSchedule(mk(), 7, 1000); a != b {
				t.Fatalf("profile %q not deterministic", name)
			}
		})
	}
}

func TestImpairmentEffects(t *testing.T) {
	t.Run("iid-loss-rate", func(t *testing.T) {
		s := sim.New(1)
		l := NewFixedLink(s, 8e6, 0, 1<<14)
		l.Impair(IIDLoss{P: 0.1}, 1)
		delivered := 0
		for i := 0; i < 10000; i++ {
			l.Send(Datagram{Size: 100, Deliver: func() { delivered++ }})
		}
		s.Run()
		st := l.Stats()
		if st.ImpairedDrops < 800 || st.ImpairedDrops > 1200 {
			t.Fatalf("10%% loss over 10k packets dropped %d", st.ImpairedDrops)
		}
		if uint64(delivered) != st.Delivered || st.Delivered+st.ImpairedDrops != 10000 {
			t.Fatalf("conservation violated: %+v delivered=%d", st, delivered)
		}
	})
	t.Run("gilbert-elliott-bursts", func(t *testing.T) {
		// With sticky states, losses must clump: the number of loss runs
		// should be far below what i.i.d. loss at the same rate would give.
		s := sim.New(1)
		l := NewFixedLink(s, 8e6, 0, 1<<15)
		l.Impair(&GilbertElliott{PGoodBad: 0.005, PBadGood: 0.05, LossBad: 0.9}, 3)
		n := 20000
		got := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			l.Send(Datagram{Size: 100, Deliver: func() { got[i] = true }})
		}
		s.Run()
		losses, runs := 0, 0
		for i, ok := range got {
			if !ok {
				losses++
				if i == 0 || got[i-1] {
					runs++
				}
			}
		}
		if losses == 0 {
			t.Fatal("no losses")
		}
		if avg := float64(losses) / float64(runs); avg < 3 {
			t.Fatalf("losses not bursty: %d losses in %d runs (avg run %.1f)", losses, runs, avg)
		}
	})
	t.Run("duplicate-delivers-twice", func(t *testing.T) {
		s := sim.New(1)
		l := NewFixedLink(s, 8e6, 0, 1<<12)
		l.Impair(Duplicate{P: 1}, 1)
		delivered := 0
		done := 0
		for i := 0; i < 100; i++ {
			l.Send(Datagram{Size: 100,
				Deliver: func() { delivered++ },
				Done:    func() { done++ },
			})
		}
		s.Run()
		if delivered != 200 {
			t.Fatalf("delivered %d, want 200 (every packet duplicated)", delivered)
		}
		if done != 100 {
			t.Fatalf("Done ran %d times, want exactly once per datagram", done)
		}
		if st := l.Stats(); st.Duplicated != 100 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("blackout-window", func(t *testing.T) {
		s := sim.New(1)
		l := NewFixedLink(s, 8e6, 0, 1<<12)
		l.Impair(Blackout{Windows: []Window{{Start: 100 * time.Millisecond, End: 200 * time.Millisecond}}}, 1)
		var deliveredAt []sim.Time
		send := func() { l.Send(Datagram{Size: 100, Deliver: func() { deliveredAt = append(deliveredAt, s.Now()) }}) }
		for _, at := range []sim.Time{50 * time.Millisecond, 150 * time.Millisecond, 250 * time.Millisecond} {
			s.Schedule(at, send)
		}
		s.Run()
		if len(deliveredAt) != 2 {
			t.Fatalf("deliveries %v: packet inside the window must vanish", deliveredAt)
		}
		if st := l.Stats(); st.ImpairedDrops != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("reorder-overtakes", func(t *testing.T) {
		s := sim.New(1)
		l := NewFixedLink(s, 8e7, 0, 1<<12)
		l.Impair(Reorder{P: 0.5, Delay: 50 * time.Millisecond}, 9)
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			l.Send(Datagram{Size: 100, Deliver: func() { order = append(order, i) }})
		}
		s.Run()
		inverted := false
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				inverted = true
				break
			}
		}
		if !inverted {
			t.Fatalf("no reordering observed: %v", order)
		}
	})
}

// A done callback must run exactly once per datagram whatever its fate —
// dropped on the wire, delivered once, or duplicated — because the
// transport uses it to recycle the encode buffer.
func TestDoneRunsOncePerFate(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 8e6, 5*time.Millisecond, 1<<13)
	l.Impair(Chain{IIDLoss{P: 0.3}, Duplicate{P: 0.3}, Jitter{Max: 3 * time.Millisecond}}, 5)
	const n = 2000
	done := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		l.Send(Datagram{Size: 500, Done: func() { done[i]++ }})
	}
	s.Run()
	for i, c := range done {
		if c != 1 {
			t.Fatalf("datagram %d: Done ran %d times", i, c)
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, _, err := NewProfile("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	for _, name := range append(Profiles(), "") {
		if _, _, err := NewProfile(name); err != nil {
			t.Fatalf("NewProfile(%q): %v", name, err)
		}
	}
}

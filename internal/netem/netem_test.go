package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"voxel/internal/sim"
	"voxel/internal/trace"
)

func TestSerializationAndDelay(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 8e6, 30*time.Millisecond, 10) // 1 MB/s
	var arrived sim.Time
	l.Send(Datagram{Size: 1000, Deliver: func() { arrived = s.Now() }})
	s.Run()
	// 1000 B at 1 MB/s = 1 ms serialization + 30 ms delay.
	want := time.Millisecond + 30*time.Millisecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 8e6, 0, 100)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.Send(Datagram{Size: 100, Deliver: func() { order = append(order, i) }})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestDropTail(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 8e3, 0, 4) // very slow: 1 kB/s
	delivered := 0
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(Datagram{Size: 1000, Deliver: func() { delivered++ }}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4 (queue capacity)", accepted)
	}
	s.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
	st := l.Stats()
	if st.Dropped != 6 || st.Sent != 10 || st.Delivered != 4 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestQueueDrainsThenAcceptsMore(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 8e6, 0, 2)
	delivered := 0
	l.Send(Datagram{Size: 1000, Deliver: func() { delivered++ }})
	l.Send(Datagram{Size: 1000, Deliver: func() { delivered++ }})
	if l.Send(Datagram{Size: 1000, Deliver: func() { delivered++ }}) {
		t.Fatal("third packet should be dropped")
	}
	// After the first drains, there is room again.
	s.Schedule(5*time.Millisecond, func() {
		if !l.Send(Datagram{Size: 1000, Deliver: func() { delivered++ }}) {
			t.Error("packet after drain should be accepted")
		}
	})
	s.Run()
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}
}

func TestTraceLinkFollowsRate(t *testing.T) {
	s := sim.New(1)
	// 8 Mbps for 1 s, then 0.8 Mbps.
	tr := trace.MustNew("step", []float64{8e6, 0.8e6, 0.8e6, 0.8e6})
	l := NewTraceLink(s, tr, 0, 1000)
	var times []sim.Time
	// Packet served at t=0 (fast), then one served at t≈1.2s (slow).
	l.Send(Datagram{Size: 125000, Deliver: func() { times = append(times, s.Now()) }}) // 1 Mbit → 125 ms at 8 Mbps
	s.Schedule(1100*time.Millisecond, func() {
		l.Send(Datagram{Size: 125000, Deliver: func() { times = append(times, s.Now()) }}) // 1 Mbit → 1.25 s at 0.8 Mbps
	})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("got %d deliveries", len(times))
	}
	if times[0] != 125*time.Millisecond {
		t.Fatalf("fast delivery at %v, want 125ms", times[0])
	}
	want := 1100*time.Millisecond + 1250*time.Millisecond
	if times[1] != want {
		t.Fatalf("slow delivery at %v, want %v", times[1], want)
	}
}

func TestThroughputMatchesLinkRate(t *testing.T) {
	s := sim.New(1)
	const rate = 10e6
	l := NewFixedLink(s, rate, 10*time.Millisecond, 64)
	const pktSize = 1200
	var deliveredBytes int
	// Saturate the link for 10 simulated seconds with a self-clocked sender.
	var send func()
	send = func() {
		if s.Now() > 10*time.Second {
			return
		}
		for l.QueueLen() < 32 {
			l.Send(Datagram{Size: pktSize, Deliver: func() { deliveredBytes += pktSize }})
		}
		s.Schedule(time.Millisecond, send)
	}
	s.Schedule(0, send)
	s.Run()
	got := float64(deliveredBytes) * 8 / 10 // bps over 10 s (approximately)
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("achieved %v bps, want ≈%v", got, rate)
	}
}

func TestNilDeliverIsSafe(t *testing.T) {
	s := sim.New(1)
	l := NewFixedLink(s, 1e6, 0, 4)
	l.Send(Datagram{Size: 100})
	s.Run()
	if l.Stats().Delivered != 1 {
		t.Fatal("datagram with nil Deliver should still count as delivered")
	}
}

func TestNewFixedPathBDPQueue(t *testing.T) {
	s := sim.New(1)
	p := NewFixedPath(s, 20e6, 1500)
	// BDP = 20e6/8 * 0.06 = 150000 B → 1.25×/1500 = 125 packets.
	if p.Down.capacity != 125 {
		t.Fatalf("queue capacity = %d, want 125", p.Down.capacity)
	}
}

func TestPathDirections(t *testing.T) {
	s := sim.New(1)
	tr := trace.Constant("c", 10e6, 10)
	p := NewPath(s, tr, DefaultQueuePackets)
	gotDown, gotUp := false, false
	p.Down.Send(Datagram{Size: 100, Deliver: func() { gotDown = true }})
	p.Up.Send(Datagram{Size: 100, Deliver: func() { gotUp = true }})
	s.Run()
	if !gotDown || !gotUp {
		t.Fatalf("down=%v up=%v", gotDown, gotUp)
	}
}

// Property: conservation — every offered packet is either delivered or
// dropped, never both, never lost silently.
func TestPropertyConservation(t *testing.T) {
	f := func(sizes []uint16, capRaw uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		s := sim.New(9)
		capacity := int(capRaw%32) + 1
		l := NewFixedLink(s, 1e6, time.Millisecond, capacity)
		delivered := 0
		for _, sz := range sizes {
			l.Send(Datagram{Size: int(sz%1400) + 1, Deliver: func() { delivered++ }})
		}
		s.Run()
		st := l.Stats()
		return st.Sent == uint64(len(sizes)) &&
			st.Delivered+st.Dropped == st.Sent &&
			delivered == int(st.Delivered) &&
			st.MaxQueue <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

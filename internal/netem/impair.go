// Impairments: deterministic fault injection on links.
//
// The base Link models only what the paper's testbed router does — shaping
// plus a drop-tail queue. Real last miles also lose packets in bursts,
// reorder them, jitter their delivery, duplicate them, and go dark entirely
// during handovers. An Impairment chain attached to a link perturbs each
// datagram as it leaves the serializer, driven by a per-link seeded RNG so
// that every trial remains exactly reproducible: the same seed yields the
// same drop/reorder/duplication schedule, packet for packet.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"voxel/internal/sim"
)

// Fate is what the impairment chain decided for one datagram. The zero
// value delivers the datagram untouched.
type Fate struct {
	// Drop discards the datagram after it consumed its serialization time
	// (wire loss, not queue loss — the queue already charged it).
	Drop bool
	// ExtraDelay is added to the link's propagation delay. A large enough
	// value lets later datagrams overtake this one (reordering).
	ExtraDelay sim.Time
	// Duplicate delivers a second copy of the datagram.
	Duplicate bool
}

// Impairment perturbs datagram delivery. Apply is called once per datagram
// at the moment it finishes serialization; implementations fold their
// verdict into f (drop wins over everything, delays add, duplication ORs).
// Implementations may keep per-link state (e.g. a Gilbert–Elliott channel
// state) and must draw randomness only from rng.
type Impairment interface {
	Apply(now sim.Time, rng *rand.Rand, f *Fate)
}

// Chain applies impairments in order.
type Chain []Impairment

// Apply implements Impairment.
func (c Chain) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	for _, imp := range c {
		imp.Apply(now, rng, f)
	}
}

// IIDLoss drops each datagram independently with probability P.
type IIDLoss struct {
	P float64
}

// Apply implements Impairment.
func (l IIDLoss) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if l.P > 0 && rng.Float64() < l.P {
		f.Drop = true
	}
}

// GilbertElliott is the classic two-state burst-loss channel: a Good and a
// Bad state with per-packet transition probabilities and a per-state loss
// probability. Bursts come from the Bad state's high loss rate combined
// with its persistence (small PBadGood). The state is per-instance, so
// every link needs its own value (NewProfile hands out fresh ones).
type GilbertElliott struct {
	PGoodBad float64 // P(transition Good→Bad) per datagram
	PBadGood float64 // P(transition Bad→Good) per datagram
	LossGood float64 // loss probability in Good
	LossBad  float64 // loss probability in Bad

	bad bool
}

// Apply implements Impairment.
func (g *GilbertElliott) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if g.bad {
		if g.PBadGood > 0 && rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else {
		if g.PGoodBad > 0 && rng.Float64() < g.PGoodBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	if p > 0 && rng.Float64() < p {
		f.Drop = true
	}
}

// Jitter adds a uniform random delay in [0, Max) to each datagram. On its
// own this mildly reorders traffic too, since delays are independent.
type Jitter struct {
	Max sim.Time
}

// Apply implements Impairment.
func (j Jitter) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if j.Max > 0 {
		f.ExtraDelay += sim.Time(rng.Int63n(int64(j.Max)))
	}
}

// Reorder holds back a fraction P of datagrams by Delay, letting packets
// sent after them arrive first.
type Reorder struct {
	P     float64
	Delay sim.Time
}

// Apply implements Impairment.
func (r Reorder) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if r.P > 0 && rng.Float64() < r.P {
		f.ExtraDelay += r.Delay
	}
}

// Duplicate delivers a second copy of a fraction P of datagrams.
type Duplicate struct {
	P float64
}

// Apply implements Impairment.
func (d Duplicate) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if d.P > 0 && rng.Float64() < d.P {
		f.Duplicate = true
	}
}

// Window is one scheduled outage interval [Start, End).
type Window struct {
	Start, End sim.Time
}

// Blackout drops every datagram whose serialization completes inside one of
// the scheduled windows — a dead radio during a handover. Windows must be
// sorted by Start and non-overlapping.
type Blackout struct {
	Windows []Window
}

// Apply implements Impairment.
func (b Blackout) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	for _, w := range b.Windows {
		if now >= w.Start && now < w.End {
			f.Drop = true
			return
		}
		if now < w.Start {
			return
		}
	}
}

// Flap models a periodically dying link: starting at Offset, the link goes
// dark for Down out of every Period (flaky WiFi losing its AP).
type Flap struct {
	Period sim.Time
	Down   sim.Time
	Offset sim.Time
}

// Apply implements Impairment.
func (fl Flap) Apply(now sim.Time, rng *rand.Rand, f *Fate) {
	if fl.Period <= 0 || fl.Down <= 0 || now < fl.Offset {
		return
	}
	if (now-fl.Offset)%fl.Period < fl.Down {
		f.Drop = true
	}
}

// --- canonical profiles ---

// Profile names accepted by NewProfile. "clean" (and "") attach nothing:
// a clean-profile run is bit-identical to an unimpaired one.
const (
	ProfileClean    = "clean"
	ProfileBursty   = "bursty"
	ProfileFlaky    = "flaky-wifi"
	ProfileHandover = "handover-blackout"
)

// Profiles lists the canonical impairment profile names.
func Profiles() []string {
	return []string{ProfileClean, ProfileBursty, ProfileFlaky, ProfileHandover}
}

// NewProfile builds fresh downlink/uplink impairment chains for the named
// profile. Chains carry per-instance state (the Gilbert–Elliott channel),
// so each link needs its own pair — never share one across links. The
// "clean" profile (and the empty name) returns nil chains.
func NewProfile(name string) (down, up Impairment, err error) {
	switch name {
	case "", ProfileClean:
		return nil, nil, nil
	case ProfileBursty:
		// Burst loss on the bottleneck: short, dense loss episodes atop a
		// near-lossless baseline; ACK path sees rare stray loss.
		return Chain{
				&GilbertElliott{PGoodBad: 0.006, PBadGood: 0.3, LossGood: 0.0003, LossBad: 0.3},
				Jitter{Max: 3 * time.Millisecond},
			}, Chain{
				IIDLoss{P: 0.001},
			}, nil
	case ProfileFlaky:
		// Contended WiFi: burst loss, heavy jitter, visible reordering and
		// duplication, plus a sub-second AP dropout every 20 s.
		return Chain{
				&GilbertElliott{PGoodBad: 0.02, PBadGood: 0.2, LossGood: 0.001, LossBad: 0.3},
				Jitter{Max: 25 * time.Millisecond},
				Reorder{P: 0.02, Delay: 40 * time.Millisecond},
				Duplicate{P: 0.005},
				Flap{Period: 20 * time.Second, Down: 700 * time.Millisecond, Offset: 11 * time.Second},
			}, Chain{
				IIDLoss{P: 0.005},
				Jitter{Max: 10 * time.Millisecond},
			}, nil
	case ProfileHandover:
		// Cellular handovers: multi-second total blackouts in both
		// directions, otherwise a mostly clean link.
		windows := []Window{
			{Start: 25 * time.Second, End: 31 * time.Second},
			{Start: 95 * time.Second, End: 99 * time.Second},
			{Start: 160 * time.Second, End: 165 * time.Second},
		}
		return Chain{
				Blackout{Windows: windows},
				IIDLoss{P: 0.002},
				Jitter{Max: 5 * time.Millisecond},
			}, Chain{
				Blackout{Windows: windows},
				IIDLoss{P: 0.002},
			}, nil
	default:
		return nil, nil, fmt.Errorf("netem: unknown impairment profile %q (have %v)", name, Profiles())
	}
}

// ApplyProfile attaches the named profile to both directions of the path,
// deriving distinct per-link RNG seeds from seed. A no-op for "clean"/"".
func ApplyProfile(p *Path, name string, seed int64) error {
	down, up, err := NewProfile(name)
	if err != nil {
		return err
	}
	if down != nil {
		p.Down.Impair(down, seed)
	}
	if up != nil {
		p.Up.Impair(up, seed+0x9E3779B9)
	}
	return nil
}

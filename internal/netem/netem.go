// Package netem emulates the paper's three-machine testbed topology in the
// discrete-event simulator: a server and a client connected through a
// router whose egress is the bottleneck. The router shapes traffic to a
// bandwidth trace (as the testbed does with tc), applies a drop-tail queue
// of a configurable packet capacity (32 packets for the trace experiments,
// 750 for the long-queue appendix, 1.25×BDP for fixed-rate runs), and adds
// a 30 ms "last mile" propagation delay toward the client.
package netem

import (
	"math/rand"
	"time"

	"voxel/internal/sim"
	"voxel/internal/trace"
)

// Datagram is one packet on the wire. Size is the on-wire size in bytes and
// governs serialization time and queue occupancy. Deliver runs at the
// receiver when (and if) the packet arrives; dropped packets are silently
// discarded, as on a real drop-tail queue.
//
// Done, when set, runs exactly once when the link is finished with the
// datagram — after the final delivery (impairments may duplicate a packet)
// or at the instant an impairment drops it on the wire. Senders that pool
// their encode buffers reclaim them in Done, never in Deliver. Done is NOT
// called when Send itself returns false: the datagram never entered the
// link, so the caller still owns it.
type Datagram struct {
	Size    int
	Deliver func()
	Done    func()
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	Sent          uint64 // datagrams offered to the link
	Dropped       uint64 // datagrams dropped at the queue
	Delivered     uint64 // datagrams handed to receivers
	ImpairedDrops uint64 // datagrams dropped on the wire by an impairment
	Duplicated    uint64 // extra copies delivered by an impairment
	BytesSent     uint64 // bytes serialized onto the wire
	MaxQueue      int    // high-water mark of the queue, in packets
	BusyTime      sim.Time
	QueueDelay    sim.Time // cumulative time datagrams spent queued
}

// Link is a unidirectional link: a drop-tail queue drained at a
// (possibly time-varying) rate, followed by a fixed propagation delay.
type Link struct {
	sim      *sim.Sim
	rate     func(sim.Time) float64 // bits per second
	delay    sim.Time
	capacity int // max datagrams queued or in service

	imp Impairment
	rng *rand.Rand

	queue     []queued
	busyUntil sim.Time
	serving   bool
	stats     LinkStats
}

type queued struct {
	d        Datagram
	enqueued sim.Time
}

// NewLink builds a link draining at rate(t) bps with the given one-way
// propagation delay and drop-tail queue capacity in packets.
func NewLink(s *sim.Sim, rate func(sim.Time) float64, delay sim.Time, queuePackets int) *Link {
	if queuePackets < 1 {
		queuePackets = 1
	}
	return &Link{sim: s, rate: rate, delay: delay, capacity: queuePackets}
}

// NewTraceLink builds a link whose rate follows tr.
func NewTraceLink(s *sim.Sim, tr *trace.Trace, delay sim.Time, queuePackets int) *Link {
	return NewLink(s, tr.RateAt, delay, queuePackets)
}

// NewFixedLink builds a link with a constant rate in bps.
func NewFixedLink(s *sim.Sim, bps float64, delay sim.Time, queuePackets int) *Link {
	return NewLink(s, func(sim.Time) float64 { return bps }, delay, queuePackets)
}

// Impair attaches an impairment chain to the link, with its own RNG seeded
// by seed so the fault schedule is independent of everything else in the
// simulation (and reproducible: same seed, same schedule). Passing nil
// removes impairments; the link is then exactly its unimpaired self.
func (l *Link) Impair(imp Impairment, seed int64) {
	l.imp = imp
	if imp != nil {
		l.rng = rand.New(rand.NewSource(seed))
	} else {
		l.rng = nil
	}
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of datagrams queued or in service.
func (l *Link) QueueLen() int {
	n := len(l.queue)
	if l.serving {
		n++
	}
	return n
}

// Send offers a datagram to the link. It returns false (and drops the
// datagram) when the drop-tail queue is full.
func (l *Link) Send(d Datagram) bool {
	l.stats.Sent++
	if l.QueueLen() >= l.capacity {
		l.stats.Dropped++
		return false
	}
	l.queue = append(l.queue, queued{d: d, enqueued: l.sim.Now()})
	if n := l.QueueLen(); n > l.stats.MaxQueue {
		l.stats.MaxQueue = n
	}
	if !l.serving {
		l.serveNext()
	}
	return true
}

func (l *Link) serveNext() {
	if len(l.queue) == 0 {
		l.serving = false
		return
	}
	q := l.queue[0]
	l.queue = l.queue[1:]
	l.serving = true
	l.stats.QueueDelay += l.sim.Now() - q.enqueued

	rate := l.rate(l.sim.Now())
	if rate < 1 {
		rate = 1
	}
	serialization := sim.Time(float64(q.d.Size*8) / rate * float64(time.Second))
	if serialization < time.Nanosecond {
		serialization = time.Nanosecond
	}
	l.stats.BusyTime += serialization
	l.stats.BytesSent += uint64(q.d.Size)
	l.busyUntil = l.sim.Now() + serialization

	deliver := q.d.Deliver
	done := q.d.Done
	if chk := l.sim.Checker(); chk.Enabled() && done != nil {
		// Armed runs guard the Done contract per datagram: exactly one
		// fate, so the callback must never run twice. The closure costs
		// an allocation per datagram, paid only when checking is on.
		size := q.d.Size
		orig := done
		ran := false
		done = func() {
			if ran {
				chk.Failf("netem", "netem.done-exactly-once",
					"Datagram.Done ran a second time (size %d)", size)
			}
			ran = true
			orig()
		}
	}
	l.sim.Schedule(serialization, func() {
		var f Fate
		if l.imp != nil {
			l.imp.Apply(l.sim.Now(), l.rng, &f)
		}
		if f.Drop {
			l.stats.ImpairedDrops++
			if done != nil {
				done()
			}
			l.serveNext()
			return
		}
		l.stats.Delivered++
		delay := l.delay + f.ExtraDelay
		if deliver != nil {
			l.sim.Schedule(delay, deliver)
			if f.Duplicate {
				l.stats.Duplicated++
				l.sim.Schedule(delay, deliver)
			}
		}
		// Same instant as the last delivery, later insertion sequence: the
		// receiver always sees the bytes before the sender reclaims them.
		if done != nil {
			l.sim.Schedule(delay, done)
		}
		if chk := l.sim.Checker(); chk.Enabled() {
			// Conservation at service completion: every datagram ever
			// offered is exactly one of queue-dropped, impairment-dropped,
			// delivered (this one included), or still queued behind us.
			st := &l.stats
			if accounted := st.Dropped + st.ImpairedDrops + st.Delivered +
				uint64(len(l.queue)); st.Sent != accounted {
				chk.Failf("netem", "netem.datagram-conservation",
					"sent %d != dropped %d + impaired %d + delivered %d + queued %d",
					st.Sent, st.Dropped, st.ImpairedDrops, st.Delivered, len(l.queue))
			}
		}
		l.serveNext()
	})
}

// Path is the duplex server↔client path through the router. Down carries
// server→client traffic (the shaped bottleneck); Up carries client→server
// traffic (requests and ACKs) and is provisioned generously, as in the
// testbed where only the router egress is shaped.
type Path struct {
	Down *Link
	Up   *Link
}

// DefaultLastMileDelay is the one-way router-to-client delay from §5.
const DefaultLastMileDelay = 30 * time.Millisecond

// DefaultQueuePackets is the router queue used for the trace experiments.
const DefaultQueuePackets = 32

// LongQueuePackets is the 750-packet queue from Appendix B.
const LongQueuePackets = 750

// uplinkRate provisions the reverse path so ACK/request traffic never
// bottlenecks.
const uplinkRate = 100e6

// NewPath builds the standard experiment topology: a trace-shaped downlink
// with the given queue capacity and a fast uplink, both with the last-mile
// propagation delay (RTT ≈ 60 ms plus queueing).
func NewPath(s *sim.Sim, tr *trace.Trace, queuePackets int) *Path {
	return &Path{
		Down: NewTraceLink(s, tr, DefaultLastMileDelay, queuePackets),
		Up:   NewFixedLink(s, uplinkRate, DefaultLastMileDelay, 1024),
	}
}

// NewFixedPath builds a topology with a constant-rate downlink, with queue
// capacity 1.25×BDP (in packets of mtu bytes) as §5 specifies for
// fixed-bandwidth runs.
func NewFixedPath(s *sim.Sim, bps float64, mtu int) *Path {
	bdpBytes := bps / 8 * (2 * DefaultLastMileDelay.Seconds())
	pkts := int(1.25 * bdpBytes / float64(mtu))
	if pkts < 4 {
		pkts = 4
	}
	return &Path{
		Down: NewFixedLink(s, bps, DefaultLastMileDelay, pkts),
		Up:   NewFixedLink(s, uplinkRate, DefaultLastMileDelay, 1024),
	}
}

package abr

import (
	"math"
	"time"

	"voxel/internal/video"
)

// MPC implements MPC [73]: model-predictive control over a five-segment
// horizon with a harmonic-mean throughput prediction. The utility is the
// standard bitrate QoE: average bitrate minus a rebuffering penalty minus
// a smoothness penalty.
//
// The prediction is deliberately not error-discounted (RobustMPC): §5.1
// attributes MPC's poor trace performance to its throughput prediction,
// which the robust variant would mask. Set Robust to true for the
// discounted prediction.
type MPC struct {
	// Robust enables the RobustMPC error-discounted prediction.
	Robust bool
	// Horizon is the look-ahead depth (paper: ≈5 segments).
	Horizon int
	// RebufPenalty is λ_rebuf in utility units per second of stall.
	RebufPenalty float64
	// SwitchPenalty weights |bitrate changes| between segments.
	SwitchPenalty float64
	// MaxStep bounds the per-step quality change explored (search-space
	// pruning, §4.3's note that MPC needs curbing).
	MaxStep int

	history []float64 // measured throughputs, newest last
	errs    []float64 // relative prediction errors
	lastPred float64
}

// NewMPC returns robust MPC with the standard parameters.
func NewMPC() *MPC {
	return &MPC{
		Horizon:       5,
		RebufPenalty:  4.3, // Mbps-equivalents per second, as in the MPC paper
		SwitchPenalty: 1.0,
		MaxStep:       3,
	}
}

// Name implements Algorithm.
func (m *MPC) Name() string { return "MPC" }

// OnSample records a measured download throughput and the realized
// prediction error.
func (m *MPC) OnSample(s Sample) {
	if s.Throughput <= 0 {
		return
	}
	if m.lastPred > 0 {
		err := math.Abs(m.lastPred-s.Throughput) / s.Throughput
		m.errs = append(m.errs, err)
		if len(m.errs) > 5 {
			m.errs = m.errs[1:]
		}
	}
	m.history = append(m.history, s.Throughput)
	if len(m.history) > 5 {
		m.history = m.history[1:]
	}
}

// predict returns the robust throughput estimate.
func (m *MPC) predict(fallback float64) float64 {
	if len(m.history) == 0 {
		return fallback * 0.8
	}
	var inv float64
	for _, t := range m.history {
		inv += 1 / t
	}
	harmonic := float64(len(m.history)) / inv
	if !m.Robust {
		return harmonic
	}
	maxErr := 0.0
	for _, e := range m.errs {
		if e > maxErr {
			maxErr = e
		}
	}
	return harmonic / (1 + maxErr)
}

// Decide implements Algorithm: exhaustive search over bounded quality
// sequences, exact size for the next segment and ladder averages beyond.
func (m *MPC) Decide(st State, opts Options) Decision {
	if st.Buffer >= st.BufferCap {
		return Decision{Sleep: st.Buffer - st.BufferCap + time.Millisecond}
	}
	pred := m.predict(st.Throughput)
	m.lastPred = pred
	if pred <= 0 {
		pred = 1e5
	}

	horizon := m.Horizon
	if remaining := st.Total - st.Index; remaining < horizon {
		horizon = remaining
	}
	if horizon < 1 {
		horizon = 1
	}
	nq := len(opts.PerQuality)
	seg := segSeconds()

	mbps := func(q int) float64 { return video.Ladder[q].AvgBitrate / 1e6 }
	// sizeOf returns the download size in bits at step k (0-based).
	sizeOf := func(k, q int) float64 {
		if k == 0 {
			return float64(opts.Full(video.Quality(q)).Bytes * 8)
		}
		return video.Ladder[q].AvgBitrate * seg
	}

	bestVal := math.Inf(-1)
	bestFirst := 0
	var walk func(k, prevQ int, buffer, val float64, firstQ int)
	walk = func(k, prevQ int, buffer, val float64, firstQ int) {
		if k == horizon {
			if val > bestVal {
				bestVal = val
				bestFirst = firstQ
			}
			return
		}
		lo, hi := prevQ-m.MaxStep, prevQ+m.MaxStep
		if lo < 0 {
			lo = 0
		}
		if hi > nq-1 {
			hi = nq - 1
		}
		for q := lo; q <= hi; q++ {
			dl := sizeOf(k, q) / pred
			rebuf := dl - buffer
			if rebuf < 0 {
				rebuf = 0
			}
			nb := buffer - dl
			if nb < 0 {
				nb = 0
			}
			nb += seg
			if nb > st.BufferCap.Seconds() {
				nb = st.BufferCap.Seconds()
			}
			stepVal := mbps(q) - m.RebufPenalty*rebuf - m.SwitchPenalty*math.Abs(mbps(q)-mbps(prevQ))
			f := firstQ
			if k == 0 {
				f = q
			}
			walk(k+1, q, nb, val+stepVal, f)
		}
	}
	walk(0, int(st.LastQuality), st.Buffer.Seconds(), 0, 0)

	return Decision{Candidate: opts.Full(video.Quality(bestFirst))}
}

// Abandon implements Algorithm: the paper's MPC does not abandon.
func (m *MPC) Abandon(State, Options, Progress) AbandonAction {
	return AbandonAction{Kind: Continue}
}

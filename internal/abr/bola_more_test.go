package abr

import (
	"testing"
	"time"

	"voxel/internal/video"
)

func TestBolaSafeguardCapsBufferRule(t *testing.T) {
	// High buffer would let the buffer rule pick a top rung, but with a
	// low throughput estimate and a low last quality, the BOLA-E safeguard
	// must cap the pick at max(throughput rule, last quality).
	alg := NewBola()
	opts := fixtureOptions(false)
	st := State{
		Buffer:      20 * time.Second,
		BufferCap:   7 * video.SegmentDuration,
		Throughput:  1e6, // affords ~Q4
		LastQuality: 5,
		Total:       75, Index: 10,
	}
	d := alg.Decide(st, opts)
	if d.Sleep > 0 {
		t.Fatal("unexpected sleep")
	}
	if d.Candidate.Quality > 5 {
		t.Fatalf("safeguard failed: picked %v with 1 Mbps throughput and last=Q5",
			d.Candidate.Quality)
	}
}

func TestBolaSafeguardAllowsLastQuality(t *testing.T) {
	// The safeguard never forces below the previously playing quality.
	alg := NewBola()
	opts := fixtureOptions(false)
	st := State{
		Buffer:      20 * time.Second,
		BufferCap:   7 * video.SegmentDuration,
		Throughput:  0.3e6, // affords only Q1
		LastQuality: 8,
		Total:       75, Index: 10,
	}
	d := alg.Decide(st, opts)
	if d.Candidate.Quality < 8 && d.Candidate.Quality != 8 {
		// The pick may be the last quality itself (8) via the safeguard.
		if d.Candidate.Quality > 8 {
			t.Fatalf("picked above last quality: %v", d.Candidate.Quality)
		}
	}
}

func TestAbandonSkipsNearlyDoneDownloads(t *testing.T) {
	alg := NewBola()
	opts := fixtureOptions(false)
	full := opts.Full(10)
	a := alg.Abandon(st(0.5, 7, 0.2), opts, Progress{
		Candidate: full, BytesDone: full.Bytes * 9 / 10,
		Elapsed: 2 * time.Second, Throughput: 0.2e6,
	})
	if a.Kind != Continue {
		t.Fatalf("90%%-done download should finish, got %v", a.Kind)
	}
}

func TestABRStarUpgradesWhenConditionsPermit(t *testing.T) {
	// Plenty of throughput and a healthy buffer: ABR* should fetch the
	// full top-rung segment, not linger at a cheap virtual level.
	alg := NewABRStar()
	opts := fixtureOptions(true)
	st := State{
		Buffer:      18 * time.Second,
		BufferCap:   7 * video.SegmentDuration,
		Throughput:  25e6,
		LastQuality: 10,
		Total:       75, Index: 10,
	}
	d := alg.Decide(st, opts)
	if d.Sleep > 0 {
		t.Fatal("unexpected sleep")
	}
	if d.Candidate.Virtual {
		t.Fatalf("with 25 Mbps spare, ABR* should complete segments; picked %+v", d.Candidate)
	}
	if d.Candidate.Quality < 11 {
		t.Fatalf("with 25 Mbps spare, expected a top rung, got %v", d.Candidate.Quality)
	}
}

func TestABRStarDegradesGracefullyWhenStarved(t *testing.T) {
	alg := NewABRStar()
	opts := fixtureOptions(true)
	st := State{
		Buffer:      1 * time.Second,
		BufferCap:   1 * video.SegmentDuration,
		Throughput:  0.2e6,
		LastQuality: 3,
		Total:       75, Index: 10,
	}
	d := alg.Decide(st, opts)
	if d.Sleep > 0 {
		return // acceptable: wait out the tiny buffer
	}
	if d.Candidate.Bitrate() > 0.5e6 {
		t.Fatalf("starved pick too large: %.2f Mbps", d.Candidate.Bitrate()/1e6)
	}
}

package abr

import (
	"testing"
	"time"

	"voxel/internal/video"
)

// fixtureOptions builds a plausible decision space straight from the
// ladder: one full candidate per quality, plus (optionally) two virtual
// levels at 80% and 60% of the bytes with slightly lower scores.
func fixtureOptions(virtual bool) Options {
	var opts Options
	seg := segSeconds()
	for q := 0; q < video.NumQualities; q++ {
		full := int(video.Ladder[q].AvgBitrate * seg / 8)
		score := 0.80 + 0.018*float64(q) // 0.80 … 1.016 → capped later
		if score > 0.999 {
			score = 0.999
		}
		var cands []Candidate
		if virtual && q > 0 {
			cands = append(cands,
				Candidate{Quality: video.Quality(q), Bytes: full * 6 / 10, FullBytes: full, Score: score - 0.01, Frames: 60, Virtual: true},
				Candidate{Quality: video.Quality(q), Bytes: full * 8 / 10, FullBytes: full, Score: score - 0.004, Frames: 80, Virtual: true},
			)
		}
		cands = append(cands, Candidate{Quality: video.Quality(q), Bytes: full, FullBytes: full, Score: score, Frames: 96})
		opts.PerQuality = append(opts.PerQuality, cands)
	}
	return opts
}

func st(bufferSec float64, capSegs int, tputMbps float64) State {
	return State{
		Buffer:     time.Duration(bufferSec * float64(time.Second)),
		BufferCap:  time.Duration(capSegs) * video.SegmentDuration,
		Throughput: tputMbps * 1e6,
		Total:      75,
		Index:      10,
	}
}

func TestTputMonotone(t *testing.T) {
	alg := NewTput()
	opts := fixtureOptions(false)
	prev := -1
	for _, mbps := range []float64{0.1, 0.5, 1, 2, 5, 8, 12, 20} {
		d := alg.Decide(st(8, 7, mbps), opts)
		if int(d.Candidate.Quality) < prev {
			t.Fatalf("quality decreased as throughput grew at %v Mbps", mbps)
		}
		prev = int(d.Candidate.Quality)
	}
	// 12 Mbps with 0.9 safety affords Q12 (10 Mbps).
	if d := alg.Decide(st(8, 7, 12), opts); d.Candidate.Quality != 12 {
		t.Fatalf("12 Mbps should afford Q12, got %v", d.Candidate.Quality)
	}
	// 1 Mbps affords Q4 (0.75) but not Q5 (1.05).
	if d := alg.Decide(st(8, 7, 1), opts); d.Candidate.Quality != 4 {
		t.Fatalf("1 Mbps should pick Q4, got %v", d.Candidate.Quality)
	}
}

func TestTputSleepsWhenFull(t *testing.T) {
	alg := NewTput()
	opts := fixtureOptions(false)
	state := st(28, 7, 10)
	if d := alg.Decide(state, opts); d.Sleep <= 0 {
		t.Fatal("full buffer should sleep")
	}
}

func TestBolaBufferMonotone(t *testing.T) {
	opts := fixtureOptions(false)
	prev := -1
	for _, buf := range []float64{0.5, 2, 6, 10, 16, 20, 23} {
		alg := NewBola() // fresh placeholder state per decision
		d := alg.Decide(State{
			Buffer:      time.Duration(buf * float64(time.Second)),
			BufferCap:   7 * video.SegmentDuration,
			Throughput:  0, // disable the fast-start path; pure buffer rule
			LastQuality: 5,
			Total:       75, Index: 10,
		}, opts)
		if d.Sleep > 0 {
			t.Fatalf("unexpected sleep at buffer %v", buf)
		}
		if int(d.Candidate.Quality) < prev {
			t.Fatalf("BOLA quality decreased as buffer grew at %vs: %v < %v",
				buf, d.Candidate.Quality, prev)
		}
		prev = int(d.Candidate.Quality)
	}
	if prev < 10 {
		t.Fatalf("near-full buffer should pick a high quality, got Q%d", prev)
	}
}

func TestBolaSleepsAboveThreshold(t *testing.T) {
	alg := NewBola()
	opts := fixtureOptions(false)
	d := alg.Decide(st(27.8, 7, 10), opts)
	if d.Sleep <= 0 {
		t.Fatalf("BOLA should sleep near capacity, picked %+v", d.Candidate)
	}
}

func TestBolaFastStartFollowsThroughput(t *testing.T) {
	alg := NewBola()
	opts := fixtureOptions(false)
	// Startup: empty buffer but 9 Mbps measured — BOLA-E's placeholder
	// should lift the choice well above Q0.
	d := alg.Decide(State{
		Buffer: 0, BufferCap: 7 * video.SegmentDuration,
		Throughput: 9e6, Startup: true, Total: 75,
	}, opts)
	if d.Candidate.Quality < 6 {
		t.Fatalf("fast start picked %v, want ≥ Q6", d.Candidate.Quality)
	}
	if alg.placeholder <= 0 {
		t.Fatal("placeholder should have grown")
	}
}

func TestBolaAbandonRestartsLower(t *testing.T) {
	alg := NewBola()
	opts := fixtureOptions(false)
	full := opts.Full(10)
	p := Progress{
		Candidate:  full,
		BytesDone:  full.Bytes / 10,
		Elapsed:    2 * time.Second,
		Throughput: 0.4e6, // collapsed
	}
	a := alg.Abandon(st(3, 7, 0.4), opts, p)
	if a.Kind != Restart {
		t.Fatalf("kind = %v, want Restart", a.Kind)
	}
	if a.NewCandidate.Bytes >= full.Bytes {
		t.Fatal("restart candidate should be smaller")
	}
	// Plenty of buffer: continue.
	if a := alg.Abandon(st(24, 7, 8), opts, Progress{
		Candidate: full, BytesDone: full.Bytes / 2,
		Elapsed: 2 * time.Second, Throughput: 8e6,
	}); a.Kind != Continue {
		t.Fatalf("healthy download should continue, got %v", a.Kind)
	}
	// Too-early samples never abandon.
	if a := alg.Abandon(st(1, 7, 0.1), opts, Progress{
		Candidate: full, Elapsed: 100 * time.Millisecond, Throughput: 0.1e6,
	}); a.Kind != Continue {
		t.Fatal("early abandonment check should continue")
	}
}

func TestMPCAdaptsToThroughput(t *testing.T) {
	opts := fixtureOptions(false)
	low, high := NewMPC(), NewMPC()
	for i := 0; i < 5; i++ {
		low.OnSample(Sample{Throughput: 1e6, Duration: time.Second})
		high.OnSample(Sample{Throughput: 12e6, Duration: time.Second})
	}
	state := st(16, 7, 0)
	state.LastQuality = 6
	dLow := low.Decide(state, opts)
	dHigh := high.Decide(state, opts)
	if dLow.Candidate.Quality >= dHigh.Candidate.Quality {
		t.Fatalf("MPC low tput picked %v ≥ high tput %v",
			dLow.Candidate.Quality, dHigh.Candidate.Quality)
	}
	if dHigh.Candidate.Quality < 8 {
		t.Fatalf("12 Mbps steady should pick high quality, got %v", dHigh.Candidate.Quality)
	}
}

func TestMPCAvoidsRebufferingWhenBufferLow(t *testing.T) {
	opts := fixtureOptions(false)
	alg := NewMPC()
	for i := 0; i < 5; i++ {
		alg.OnSample(Sample{Throughput: 6e6, Duration: time.Second})
	}
	lowBuf := st(1, 7, 0)
	lowBuf.LastQuality = 8
	highBuf := st(24, 7, 0)
	highBuf.LastQuality = 8
	dLow := alg.Decide(lowBuf, opts)
	dHigh := alg.Decide(highBuf, opts)
	if dLow.Candidate.Quality > dHigh.Candidate.Quality {
		t.Fatalf("low buffer picked %v > high buffer %v",
			dLow.Candidate.Quality, dHigh.Candidate.Quality)
	}
}

func TestMPCRobustnessDiscountsAfterErrors(t *testing.T) {
	a, b := NewMPC(), NewMPC()
	a.Robust, b.Robust = true, true
	// Same history magnitude, but b saw a large prediction error.
	for i := 0; i < 5; i++ {
		a.OnSample(Sample{Throughput: 8e6})
	}
	b.lastPred = 16e6
	b.OnSample(Sample{Throughput: 8e6})
	for i := 0; i < 4; i++ {
		b.OnSample(Sample{Throughput: 8e6})
	}
	if pa, pb := a.predict(8e6), b.predict(8e6); pb >= pa {
		t.Fatalf("error history should discount prediction: %v vs %v", pb, pa)
	}
}

func TestMPCRespectsMaxStep(t *testing.T) {
	opts := fixtureOptions(false)
	alg := NewMPC()
	for i := 0; i < 5; i++ {
		alg.OnSample(Sample{Throughput: 50e6})
	}
	state := st(20, 7, 0)
	state.LastQuality = 0
	d := alg.Decide(state, opts)
	if int(d.Candidate.Quality) > alg.MaxStep {
		t.Fatalf("first step jumped to %v with MaxStep %d", d.Candidate.Quality, alg.MaxStep)
	}
}

func TestBetaPrefersVirtualOverLowerQuality(t *testing.T) {
	alg := NewBeta()
	opts := fixtureOptions(true)
	// Throughput that affords Q12's 80% virtual level but not full Q12:
	// full Q12 = 10 Mbps, virtual = 8 Mbps, full Q11 = 7.4 Mbps.
	d := alg.Decide(st(8, 7, 9.5), opts)
	if !d.Candidate.Virtual {
		t.Fatalf("expected a virtual candidate, got %+v", d.Candidate)
	}
	if d.Candidate.Quality != 12 {
		t.Fatalf("expected Q12 virtual, got %v", d.Candidate.Quality)
	}
}

func TestBetaLowBufferGuard(t *testing.T) {
	alg := NewBeta()
	opts := fixtureOptions(true)
	state := st(1, 7, 10)
	state.Startup = false
	d := alg.Decide(state, opts)
	if d.Candidate.Quality != 0 {
		t.Fatalf("low buffer should force Q0, got %v", d.Candidate.Quality)
	}
}

func TestBetaAbandonRefetchesLowest(t *testing.T) {
	alg := NewBeta()
	opts := fixtureOptions(true)
	full := opts.Full(11)
	a := alg.Abandon(st(2, 7, 0.3), opts, Progress{
		Candidate: full, BytesDone: full.Bytes / 20,
		Elapsed: time.Second, Throughput: 0.3e6,
	})
	if a.Kind != Restart || a.NewCandidate.Quality != 0 || a.NewCandidate.Virtual {
		t.Fatalf("BETA must refetch lowest full quality, got %+v", a)
	}
}

func TestABRStarUsesVirtualLevels(t *testing.T) {
	alg := NewABRStar()
	opts := fixtureOptions(true)
	// Mid buffer: the score/byte tradeoff should sometimes pick virtual
	// options; verify the decision space includes them by scanning many
	// buffer levels.
	sawVirtual := false
	for buf := 0.5; buf < 26; buf += 0.5 {
		d := alg.Decide(State{
			Buffer:    time.Duration(buf * float64(time.Second)),
			BufferCap: 7 * video.SegmentDuration,
			Total:     75, Index: 5,
		}, opts)
		if d.Sleep == 0 && d.Candidate.Virtual {
			sawVirtual = true
			break
		}
	}
	if !sawVirtual {
		t.Fatal("ABR* never chose a virtual quality level")
	}
}

func TestABRStarSmartAbandonFinishesPartial(t *testing.T) {
	alg := NewABRStar()
	opts := fixtureOptions(true)
	full := opts.Full(10)
	a := alg.Abandon(st(2, 7, 0.5), opts, Progress{
		Candidate: full, BytesDone: full.Bytes / 4,
		Elapsed: time.Second, Throughput: 0.5e6,
	})
	if a.Kind != FinishPartial {
		t.Fatalf("ABR* should finish partial, got %v", a.Kind)
	}
}

func TestSafetyFactorControlsAggression(t *testing.T) {
	// The untuned (1.0) variant must estimate at least as much headroom as
	// the tuned (0.9) one → chooses ≥ quality at startup.
	optsV := fixtureOptions(true)
	tuned := NewABRStarSafety(0.9)
	untuned := NewABRStarSafety(1.0)
	state := State{
		Buffer: 0, BufferCap: 7 * video.SegmentDuration,
		Throughput: 7.6e6, Startup: true, Total: 75,
	}
	dT := tuned.Decide(state, optsV)
	dU := untuned.Decide(state, optsV)
	if dU.Candidate.Bytes < dT.Candidate.Bytes {
		t.Fatalf("untuned picked smaller option (%d) than tuned (%d)",
			dU.Candidate.Bytes, dT.Candidate.Bytes)
	}
}

func TestScoreUtilityMonotone(t *testing.T) {
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		u := scoreUtility(s, 1.0)
		if u < prev {
			t.Fatalf("utility decreased at %v", s)
		}
		prev = u
	}
	if scoreUtility(0, 1) != scoreUtility(-1, 1) {
		t.Fatal("negative scores should clamp to zero")
	}
	if scoreUtility(2, 1) != scoreUtility(1, 1) {
		t.Fatal("scores above perfect should clamp")
	}
}

func TestCandidateBitrate(t *testing.T) {
	c := Candidate{Bytes: 5 << 20}
	want := float64(5<<20*8) / 4
	if c.Bitrate() != want {
		t.Fatalf("bitrate %v, want %v", c.Bitrate(), want)
	}
}

func TestNames(t *testing.T) {
	for _, pair := range []struct {
		alg  Algorithm
		want string
	}{
		{NewTput(), "Tput"},
		{NewBola(), "BOLA"},
		{NewMPC(), "MPC"},
		{NewBeta(), "BETA"},
		{NewBolaSSIM(), "BOLA-SSIM"},
		{NewABRStar(), "ABR*"},
	} {
		if pair.alg.Name() != pair.want {
			t.Errorf("name %q, want %q", pair.alg.Name(), pair.want)
		}
	}
}

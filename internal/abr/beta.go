package abr

import (
	"time"

	"voxel/internal/video"
)

// Beta reimplements BETA [32] from its paper's description, as the VOXEL
// authors did (§5, footnote 3): a bandwidth-efficient temporal adaptation
// over a reliable transport. Each quality level gains exactly one virtual
// level — the segment minus its unreferenced B-frames — and the algorithm
// picks the largest option (real or virtual) whose bitrate fits the
// throughput estimate, with a buffer guard. When throughput collapses
// mid-download, BETA discards the data and refetches the same segment at
// the lowest quality (its worst case, §6).
type Beta struct {
	noSamples
	// Safety scales the throughput estimate.
	Safety float64
	// LowBufferGuard drops to the lowest quality when the buffer is under
	// this many seconds.
	LowBufferGuard time.Duration
}

// NewBeta returns BETA with its defaults.
func NewBeta() *Beta {
	return &Beta{Safety: 0.9, LowBufferGuard: video.SegmentDuration / 2}
}

// Name implements Algorithm.
func (b *Beta) Name() string { return "BETA" }

// Decide implements Algorithm. The candidate space interleaves each
// quality's single virtual level with its full level; BETA's virtual
// levels are exactly the candidates flagged Virtual (the player constructs
// them from the unreferenced-B analysis for BETA runs).
func (b *Beta) Decide(st State, opts Options) Decision {
	if st.Buffer >= st.BufferCap {
		return Decision{Sleep: st.Buffer - st.BufferCap + time.Millisecond}
	}
	if !st.Startup && st.Buffer < b.LowBufferGuard {
		return Decision{Candidate: opts.Full(0)}
	}
	budget := st.Throughput * b.Safety
	best := opts.Full(0)
	for q := 0; q < len(opts.PerQuality); q++ {
		for _, c := range opts.PerQuality[q] {
			if c.Bitrate() <= budget && c.Bytes > best.Bytes {
				best = c
			}
		}
	}
	return Decision{Candidate: best}
}

// Abandon implements Algorithm: on imminent stall, discard and refetch the
// same segment at the lowest quality.
func (b *Beta) Abandon(st State, opts Options, p Progress) AbandonAction {
	if p.Elapsed < 300*time.Millisecond || p.Throughput <= 0 {
		return AbandonAction{Kind: Continue}
	}
	remaining := p.Candidate.Bytes - p.BytesDone
	if remaining <= 0 {
		return AbandonAction{Kind: Continue}
	}
	finishIn := time.Duration(float64(remaining*8) / (p.Throughput * b.Safety) * float64(time.Second))
	if finishIn <= st.Buffer {
		return AbandonAction{Kind: Continue}
	}
	lowest := opts.Full(0)
	if lowest.Bytes >= remaining || lowest.Bytes >= p.Candidate.Bytes {
		return AbandonAction{Kind: Continue}
	}
	return AbandonAction{Kind: Restart, NewCandidate: lowest}
}

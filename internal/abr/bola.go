package abr

import (
	"math"
	"time"

	"voxel/internal/video"
)

// Bola implements BOLA [63] with the BOLA-E practicalities from [62]: a
// placeholder buffer for fast startup and download abandonment with
// restart. The utility function is pluggable — NewBola uses the classic
// ln(S/S_min) bitrate utility over full segments; bolaCore is reused by
// BOLA-SSIM and ABR* with a QoE utility over the full candidate set.
type Bola struct {
	bolaCore
}

// NewBola returns BOLA with the bitrate utility (the paper's baseline).
func NewBola() *Bola {
	return &Bola{bolaCore{
		name:   "BOLA",
		Safety: 0.9,
		utility: func(c Candidate, all []Candidate) float64 {
			minBytes := all[0].Bytes
			for _, x := range all {
				if x.Bytes < minBytes {
					minBytes = x.Bytes
				}
			}
			return math.Log(float64(c.Bytes) / float64(minBytes))
		},
		candidates: func(opts Options) []Candidate {
			// Full segments only.
			out := make([]Candidate, 0, len(opts.PerQuality))
			for q := range opts.PerQuality {
				out = append(out, opts.Full(video.Quality(q)))
			}
			return out
		},
	}}
}

// bolaCore holds the Lyapunov machinery shared by BOLA, BOLA-SSIM, and
// ABR*.
type bolaCore struct {
	noSamples
	name string
	// Safety scales throughput estimates used for startup and abandonment.
	Safety float64
	// utility maps a candidate to its (increasing) utility given the whole
	// candidate set.
	utility func(c Candidate, all []Candidate) float64
	// candidates selects the decision space from the options.
	candidates func(opts Options) []Candidate
	// smartAbandon switches abandonment from restart (BOLA-E) to
	// finish-partial (ABR*, §4.3).
	smartAbandon bool
	// tputInsurance caps buffer-driven picks by the safety-scaled
	// throughput estimate (§4.3's bandwidth-safety factor; ABR* and
	// BOLA-SSIM). The allowance grows with buffer occupancy so a full
	// buffer may still risk a higher pick.
	tputInsurance bool

	// placeholder implements BOLA-E's virtual buffer for startup.
	placeholder time.Duration
}

// Name implements Algorithm.
func (b *bolaCore) Name() string { return b.name }

// params derives V and γp from the buffer capacity and the utility range,
// following the BOLA paper: the top option is picked at a buffer threshold
// just under capacity, the bottom option at a small reserve level.
func (b *bolaCore) params(st State, cands []Candidate, utils []float64) (V, gp float64) {
	seg := segSeconds()
	cap := st.BufferCap.Seconds()
	qt := cap - seg // stop/download threshold
	if qt < seg {
		qt = seg
	}
	ql := seg / 2
	if ql > cap/4 {
		ql = cap / 4
	}
	uMax := utils[0]
	for _, u := range utils {
		if u > uMax {
			uMax = u
		}
	}
	if uMax <= 0 {
		uMax = 1e-6
	}
	V = (qt - ql) / uMax
	gp = ql / V
	return V, gp
}

// Decide implements Algorithm.
func (b *bolaCore) Decide(st State, opts Options) Decision {
	cands := b.candidates(opts)
	utils := make([]float64, len(cands))
	for i, c := range cands {
		utils[i] = b.utility(c, cands)
	}
	V, gp := b.params(st, cands, utils)

	// Effective buffer includes the BOLA-E placeholder.
	effQ := st.Buffer.Seconds() + b.placeholder.Seconds()

	bestIdx, bestScore := -1, math.Inf(-1)
	for i, c := range cands {
		score := (V*(utils[i]+gp) - effQ) / float64(c.Bytes)
		numerator := V*(utils[i]+gp) - effQ
		if numerator <= 0 {
			continue
		}
		if score > bestScore {
			bestScore = score
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		// Buffer above every threshold: wait for it to drain.
		return Decision{Sleep: 250 * time.Millisecond}
	}
	choice := cands[bestIdx]

	// BOLA-E safeguard (as in the dash.js BolaRule the paper's baseline
	// uses): the buffer rule may not jump above both the throughput rule
	// and the previously selected quality — that combination means the
	// buffer is stale information.
	if st.Throughput > 0 {
		ti := b.throughputChoice(st, cands)
		li := b.lastQualityIndex(st, cands)
		tU := -1.0
		if ti >= 0 {
			tU = utils[ti]
		}
		if li >= 0 && utils[bestIdx] > tU && utils[bestIdx] > utils[li] {
			if ti >= 0 && utils[ti] > utils[li] {
				bestIdx = ti
			} else {
				bestIdx = li
			}
			choice = cands[bestIdx]
		}
	}

	if b.tputInsurance && st.Throughput > 0 {
		// Bandwidth-safety insurance: the effective budget scales with the
		// buffer (an empty buffer cannot afford risk; a full one can).
		frac := 0.0
		if st.BufferCap > 0 {
			frac = st.Buffer.Seconds() / st.BufferCap.Seconds()
			if frac > 1 {
				frac = 1
			}
		}
		budget := st.Throughput * b.Safety * (0.85 + 0.65*frac)
		// "A client may fetch bytes beyond this threshold, if conditions
		// permit" (§4.1): upgrade to the best-scoring candidate the budget
		// affords — completing the segment when scores tie.
		upIdx := -1
		for i, c := range cands {
			if c.Bitrate() > budget {
				continue
			}
			if upIdx < 0 || c.Score > cands[upIdx].Score ||
				(c.Score == cands[upIdx].Score && c.Frames > cands[upIdx].Frames) {
				upIdx = i
			}
		}
		if upIdx >= 0 && cands[upIdx].Score > choice.Score {
			choice = cands[upIdx]
			bestIdx = upIdx
		}
		if choice.Bitrate() > budget {
			// Best BOLA-scoring candidate that fits the budget.
			capIdx := -1
			var capScore float64
			for i, c := range cands {
				if c.Bitrate() > budget {
					continue
				}
				score := (V*(utils[i]+gp) - effQ) / float64(c.Bytes)
				if capIdx < 0 || score > capScore {
					capIdx = i
					capScore = score
				}
			}
			if capIdx < 0 {
				// Nothing fits: take the smallest option.
				capIdx = 0
				for i, c := range cands {
					if c.Bytes < cands[capIdx].Bytes {
						capIdx = i
					}
				}
			}
			choice = cands[capIdx]
			bestIdx = capIdx
		}
	}

	// BOLA-E fast start: if the throughput rule picks a better option than
	// the buffer rule, grow the placeholder so BOLA follows it.
	if tputIdx := b.throughputChoice(st, cands); tputIdx >= 0 {
		if utils[tputIdx] > utils[bestIdx] {
			// Minimal effective buffer at which tputIdx beats everything
			// cheaper: grow placeholder to that point.
			need := b.minBufferFor(cands, utils, V, gp, tputIdx)
			if need > effQ {
				b.placeholder += time.Duration((need - effQ) * float64(time.Second))
			}
			choice = cands[tputIdx]
		}
	}
	// The placeholder drains like real buffer: consume one segment's worth
	// per decision.
	if b.placeholder > 0 {
		dec := time.Duration(float64(choice.Bytes*8) / math.Max(st.Throughput, 1) * float64(time.Second))
		if dec > b.placeholder {
			b.placeholder = 0
		} else {
			b.placeholder -= dec
		}
	}
	return Decision{Candidate: choice}
}

// throughputChoice returns the index of the biggest candidate whose
// bitrate fits under the safety-scaled throughput, or -1.
func (b *bolaCore) throughputChoice(st State, cands []Candidate) int {
	budget := st.Throughput * b.Safety
	best := -1
	for i, c := range cands {
		if c.Bitrate() <= budget && (best < 0 || c.Bytes > cands[best].Bytes) {
			best = i
		}
	}
	return best
}

// lastQualityIndex finds the full candidate at the previously selected
// quality, or -1.
func (b *bolaCore) lastQualityIndex(st State, cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if c.Quality == st.LastQuality && !c.Virtual {
			return i
		}
		if c.Quality == st.LastQuality && best < 0 {
			best = i
		}
	}
	return best
}

// minBufferFor computes the smallest buffer level at which candidate idx
// has the maximal BOLA score among all candidates with lower utility.
func (b *bolaCore) minBufferFor(cands []Candidate, utils []float64, V, gp float64, idx int) float64 {
	need := 0.0
	for j := range cands {
		if j == idx || utils[j] >= utils[idx] {
			continue
		}
		sj, si := float64(cands[j].Bytes), float64(cands[idx].Bytes)
		if si == sj {
			continue
		}
		// Buffer level where score(idx) == score(j).
		q := V * (sj*(utils[idx]+gp) - si*(utils[j]+gp)) / (sj - si)
		if q > need {
			need = q
		}
	}
	return need
}

// Abandon implements Algorithm. BOLA-E discards and restarts lower when
// finishing the current download would stall playback; ABR*
// (smartAbandon) instead keeps the partial segment and moves on.
func (b *bolaCore) Abandon(st State, opts Options, p Progress) AbandonAction {
	if p.Elapsed < 300*time.Millisecond || p.Throughput <= 0 {
		return AbandonAction{Kind: Continue}
	}
	remaining := p.Candidate.Bytes - p.BytesDone
	if remaining <= p.Candidate.Bytes/5 {
		// Nearly done: finishing is always cheaper than starting over.
		return AbandonAction{Kind: Continue}
	}
	finishIn := time.Duration(float64(remaining*8) / (p.Throughput * b.Safety) * float64(time.Second))
	if finishIn <= st.Buffer+time.Second {
		return AbandonAction{Kind: Continue}
	}
	if b.smartAbandon {
		// §4.3: retain the partial segment and move on — but only once a
		// stall is genuinely imminent; every extra frame downloaded before
		// the cut raises the virtual quality achieved.
		if finishIn <= st.Buffer+2500*time.Millisecond {
			return AbandonAction{Kind: Continue}
		}
		return AbandonAction{Kind: FinishPartial}
	}
	// BOLA-E: restart at the best candidate downloadable within roughly
	// the remaining buffer (with a small floor so a momentary dip doesn't
	// crash quality to the bottom rung).
	cands := b.candidates(opts)
	budget := p.Throughput * b.Safety * math.Max(st.Buffer.Seconds(), 2.0)
	best := cands[0]
	for _, c := range cands {
		if float64(c.Bytes*8) <= budget && c.Bytes > best.Bytes {
			best = c
		}
	}
	if best.Bytes >= remaining {
		return AbandonAction{Kind: Continue}
	}
	return AbandonAction{Kind: Restart, NewCandidate: best}
}

package abr

import "voxel/internal/obs"

// Instrument wraps an algorithm so its decision activity is counted in the
// telemetry scope: every Decide call increments the decision counter, and
// buffer-full sleeps are tallied separately (a per-poll timeline event at
// the 50ms idle cadence would flood the ring, so sleeps are counter-only).
// A nil scope returns the algorithm unchanged, keeping the untelemetered
// path free of the extra indirection.
func Instrument(alg Algorithm, sc *obs.Scope) Algorithm {
	if sc == nil || alg == nil {
		return alg
	}
	return &observed{alg: alg, sc: sc}
}

type observed struct {
	alg Algorithm
	sc  *obs.Scope
}

func (o *observed) Name() string { return o.alg.Name() }

func (o *observed) Decide(st State, opts Options) Decision {
	d := o.alg.Decide(st, opts)
	o.sc.Inc(obs.CAbrDecisions)
	if d.Sleep > 0 {
		o.sc.Inc(obs.CAbrSleeps)
	}
	return d
}

func (o *observed) Abandon(st State, opts Options, p Progress) AbandonAction {
	return o.alg.Abandon(st, opts, p)
}

func (o *observed) OnSample(s Sample) { o.alg.OnSample(s) }

package abr

import (
	"time"

	"voxel/internal/video"
)

// Tput is the naive throughput-based algorithm from §5 ("a naïve
// throughput-based ABR algorithm, abbreviated as Tput"): pick the highest
// quality whose full-segment bitrate fits under a safety-scaled throughput
// estimate. It never abandons and never downloads partial segments.
type Tput struct {
	noSamples
	// Safety scales the throughput estimate (default 0.9).
	Safety float64
}

// NewTput returns the naive throughput-based algorithm.
func NewTput() *Tput { return &Tput{Safety: 0.9} }

// Name implements Algorithm.
func (t *Tput) Name() string { return "Tput" }

// Decide implements Algorithm.
func (t *Tput) Decide(st State, opts Options) Decision {
	if st.Buffer >= st.BufferCap {
		return Decision{Sleep: st.Buffer - st.BufferCap + time.Millisecond}
	}
	budget := st.Throughput * t.Safety
	best := opts.Full(0)
	for q := 1; q < len(opts.PerQuality); q++ {
		c := opts.Full(video.Quality(q))
		if c.Bitrate() <= budget {
			best = c
		}
	}
	return Decision{Candidate: best}
}

// Abandon implements Algorithm: Tput never abandons.
func (t *Tput) Abandon(State, Options, Progress) AbandonAction {
	return AbandonAction{Kind: Continue}
}

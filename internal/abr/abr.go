// Package abr implements the adaptive-bitrate algorithms of the paper's
// evaluation: a naive throughput-based picker (Tput), BOLA (with the BOLA-E
// placeholder and abandonment features of [62]), robust MPC, BETA
// (reimplemented from its paper, as the authors did), and the paper's two
// contributions built on BOLA: BOLA-SSIM (QoE utility + partial-segment
// options) and ABR* (BOLA-SSIM plus smart segment abandonment that keeps
// the partial segment and moves on).
//
// Algorithms are pure decision logic: the player feeds them state and
// candidate sets and executes their decisions.
package abr

import (
	"math"
	"time"

	"voxel/internal/video"
)

// Candidate is one downloadable option for the next segment: a quality
// level, optionally cut down to a virtual quality level (a byte prefix of
// the VOXEL download order).
type Candidate struct {
	Quality video.Quality
	// Bytes to download; less than FullBytes for virtual levels.
	Bytes int
	// FullBytes is the segment's full size at this quality.
	FullBytes int
	// Score is the expected QoE of this option (metric per manifest).
	Score float64
	// Frames delivered by this option.
	Frames int
	// Virtual marks a partial-segment option.
	Virtual bool
}

// Bitrate returns the option's effective bitrate in bits per second.
func (c Candidate) Bitrate() float64 {
	return float64(c.Bytes*8) / video.SegmentDuration.Seconds()
}

// Options is the per-segment decision space. PerQuality[q] holds the
// candidates at quality q sorted by Bytes ascending, the full segment last.
// Non-VOXEL manifests have exactly one (full) candidate per quality.
type Options struct {
	PerQuality [][]Candidate
}

// Full returns the full-segment candidate at quality q.
func (o *Options) Full(q video.Quality) Candidate {
	cands := o.PerQuality[q]
	return cands[len(cands)-1]
}

// All returns every candidate, flattened.
func (o *Options) All() []Candidate {
	var out []Candidate
	for _, cs := range o.PerQuality {
		out = append(out, cs...)
	}
	return out
}

// State is the player state an algorithm decides on.
type State struct {
	// Buffer is the media currently buffered.
	Buffer time.Duration
	// BufferCap is the maximum buffer (segments × segment duration).
	BufferCap time.Duration
	// Throughput is the player's current estimate in bits per second.
	Throughput float64
	// LastQuality is the previously selected quality.
	LastQuality video.Quality
	// Index is the segment about to be chosen; Total the segment count.
	Index, Total int
	// Startup is true until playback began.
	Startup bool
}

// Decision is what to do next.
type Decision struct {
	Candidate Candidate
	// Sleep > 0 means: do not download now (buffer full); re-ask after
	// this long.
	Sleep time.Duration
}

// Progress describes an in-flight download for abandonment checks.
type Progress struct {
	Candidate Candidate
	BytesDone int
	Elapsed   time.Duration
	// Throughput is the measured rate of this download so far (bps).
	Throughput float64
}

// AbandonKind enumerates abandonment outcomes.
type AbandonKind int

// Abandonment outcomes: keep going; discard and restart at a new (lower)
// candidate (BOLA-style); or finish with what arrived and move on
// (VOXEL's extension, §4.3).
const (
	Continue AbandonKind = iota
	Restart
	FinishPartial
)

// AbandonAction is the result of an abandonment check.
type AbandonAction struct {
	Kind AbandonKind
	// NewCandidate is the restart target (Kind == Restart).
	NewCandidate Candidate
}

// Sample is a completed-download measurement fed back to algorithms.
type Sample struct {
	Throughput float64 // bps achieved
	Duration   time.Duration
}

// Algorithm is the ABR interface the player drives.
type Algorithm interface {
	Name() string
	// Decide picks the next download (or a sleep when the buffer is full).
	Decide(st State, opts Options) Decision
	// Abandon is polled periodically during a download.
	Abandon(st State, opts Options, p Progress) AbandonAction
	// OnSample feeds back a completed download's measured throughput.
	OnSample(s Sample)
}

// noSamples provides the no-op OnSample shared by algorithms that rely on
// the player's estimate only.
type noSamples struct{}

func (noSamples) OnSample(Sample) {}

// scoreUtility maps a QoE score (SSIM-like in [0,1], or normalized
// VMAF/PSNR) to a concave increasing utility, the QoE analogue of BOLA's
// ln(S/S_min) bitrate utility.
func scoreUtility(score, perfect float64) float64 {
	const eps = 0.005
	norm := score / perfect
	if norm > 1 {
		norm = 1
	}
	if norm < 0 {
		norm = 0
	}
	return math.Log((1 + eps) / (1 + eps - norm))
}

// segSeconds is the segment duration in seconds.
func segSeconds() float64 { return video.SegmentDuration.Seconds() }

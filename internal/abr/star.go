package abr

// This file builds the paper's two BOLA derivatives (§4.3):
//
//   BOLA-SSIM — BOLA-E with (a) the utility switched from bitrate to a QoE
//   score and (b) the decision space widened to partial-segment downloads
//   (the virtual quality levels from the enriched manifest).
//
//   ABR* — BOLA-SSIM plus the extended segment abandonment: instead of
//   discarding a struggling download and restarting lower (BOLA) or
//   refetching at the lowest quality (BETA), ABR* keeps the partial
//   segment and moves on to the next.
//
// The bandwidth-safety factor is the single tuning knob §5.2 discusses:
// 0.9 is the paper's "less aggressive" setting that fixes the T-Mobile
// behaviour; 1.0 reproduces the untuned, too-aggressive variant
// (Fig. 17).

// NewBolaSSIM returns the intermediate BOLA-SSIM algorithm.
func NewBolaSSIM() *Bola {
	b := newScoreBola("BOLA-SSIM", 0.9)
	return b
}

// NewABRStar returns ABR* with the paper's tuned safety factor.
func NewABRStar() *Bola {
	return NewABRStarSafety(0.9)
}

// NewABRStarSafety returns ABR* with an explicit bandwidth-safety factor
// (1.0 reproduces the untuned Fig. 17 behaviour).
func NewABRStarSafety(safety float64) *Bola {
	b := newScoreBola("ABR*", safety)
	b.smartAbandon = true
	return b
}

// newScoreBola builds the QoE-utility BOLA over the full candidate set.
func newScoreBola(name string, safety float64) *Bola {
	return &Bola{bolaCore{
		name:   name,
		Safety: safety,
		utility: func(c Candidate, all []Candidate) float64 {
			perfect := 0.0
			minScore := all[0].Score
			for _, x := range all {
				if x.Score > perfect {
					perfect = x.Score
				}
				if x.Score < minScore {
					minScore = x.Score
				}
			}
			if perfect <= 0 {
				perfect = 1
			}
			// Utility relative to the worst available option so the
			// cheapest candidate sits at zero, as ln(S/S_min) does.
			return scoreUtility(c.Score, perfect) - scoreUtility(minScore, perfect)
		},
		candidates: func(opts Options) []Candidate {
			return opts.All()
		},
		tputInsurance: true,
	}}
}

// Package stats provides the small statistical toolkit the experiment
// harness uses: percentiles, CDFs, means with standard errors, and simple
// summaries matching how the paper reports results (90th percentile with
// standard error across trials, CDFs across segments).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// modified. NaN samples are ignored (a NaN would otherwise poison the sort
// order and the interpolation); p outside [0, 100] clamps to the extremes,
// and a NaN p returns NaN.
func Percentile(xs []float64, p float64) float64 {
	cp := sortedClean(xs)
	if len(cp) == 0 {
		return 0
	}
	return percentileSorted(cp, p)
}

// sortedClean returns a sorted copy of xs with NaN samples dropped.
func sortedClean(xs []float64) []float64 {
	cp := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			cp = append(cp, x)
		}
	}
	sort.Float64s(cp)
	return cp
}

// percentileSorted interpolates the p-th percentile of a sorted non-empty
// NaN-free sample. p <= 0 and p >= 100 clamp to the extremes; a NaN p has
// no defined rank, so it propagates as NaN instead of indexing with the
// garbage int(NaN) conversion.
func percentileSorted(sorted []float64, p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	v := sorted[lo]*(1-frac) + sorted[hi]*frac
	// The interpolation can round outside the bracket — subnormal terms
	// underflow to 0, huge ones overflow — so clamp to the two ranks.
	if v < sorted[lo] {
		v = sorted[lo]
	}
	if v > sorted[hi] {
		v = sorted[hi]
	}
	return v
}

// JainIndex computes Jain's fairness index (Σx)² / (n·Σx²) over xs — 1.0
// when every element is equal (a perfectly fair split), approaching 1/n
// when one element dominates. Degenerate inputs (empty, all-zero) return 1:
// nothing is being shared unfairly. NaN samples are ignored.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary aggregates a sample the way the paper reports experiment metrics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	P10    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs (NaN samples ignored).
func Summarize(xs []float64) Summary {
	cp := sortedClean(xs)
	if len(cp) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(cp),
		Mean:   Mean(cp),
		StdDev: StdDev(cp),
		StdErr: StdErr(cp),
		Min:    cp[0],
		P10:    percentileSorted(cp, 10),
		P25:    percentileSorted(cp, 25),
		Median: percentileSorted(cp, 50),
		P75:    percentileSorted(cp, 75),
		P90:    percentileSorted(cp, 90),
		P95:    percentileSorted(cp, 95),
		Max:    cp[len(cp)-1],
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g p50=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.StdErr, s.Median, s.P90, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted; NaN samples
// are dropped — they have no place on a distribution axis).
func NewCDF(xs []float64) CDF {
	return CDF{sorted: sortedClean(xs)}
}

// At returns P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// include equal values
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0..1).
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Len returns the sample size.
func (c CDF) Len() int { return len(c.sorted) }

// Values returns the sorted sample (not a copy; treat as read-only).
func (c CDF) Values() []float64 { return c.sorted }

// Points returns (x, P(X<=x)) pairs suitable for plotting, thinned to at
// most n points while always including the extremes.
func (c CDF) Points(n int) [][2]float64 {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	if n == 1 {
		// A single point must still be an extreme: the full-CDF endpoint
		// (max x, P = 1), not the minimum.
		return [][2]float64{{c.sorted[m-1], 1}}
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / (n - 1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(m)})
	}
	return pts
}

// Sparkline renders the CDF as a compact ASCII curve over [lo, hi] with the
// given width, used by the bench harness to print figure "series".
func (c CDF) Sparkline(lo, hi float64, width int) string {
	if width <= 0 || len(c.sorted) == 0 || hi <= lo {
		return ""
	}
	const levels = " .:-=+*#%@"
	var b strings.Builder
	for i := 0; i < width; i++ {
		// A single column has no span to interpolate over; sample the
		// midpoint instead of dividing by width-1 == 0 (NaN glyph).
		x := (lo + hi) / 2
		if width > 1 {
			x = lo + (hi-lo)*float64(i)/float64(width-1)
		}
		p := c.At(x)
		idx := int(p * float64(len(levels)-1))
		b.WriteByte(levels[idx])
	}
	return b.String()
}

package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative-error bound a QuantileSketch is built
// with when the caller does not choose one: quantile estimates are within
// ±1% of the true sample value.
const DefaultSketchAlpha = 0.01

// QuantileSketch is a deterministic, mergeable quantile summary with a
// pinned relative-error bound (a DDSketch-style log-bucketed histogram).
// Samples are counted into geometric buckets whose width is chosen so that
// every value in a bucket is within a factor (1+α)/(1-α) of the bucket's
// representative; Quantile then returns the representative of the bucket
// holding the exact rank, so for any q:
//
//	|Quantile(q) − exact q-quantile| ≤ α · |exact q-quantile|
//
// The guarantee is relative, holds for every quantile (not just the
// middle), and survives Merge: bucket counts add, so merging shard sketches
// in any order yields the exact sketch of the combined sample — quantiles
// of a merged sketch are bit-identical to a single sketch fed every sample.
// Memory is O(log(max/min)/α), independent of the sample count, which is
// what lets a million-trial sweep aggregate in bounded space.
//
// Zero and negative samples are handled exactly (a dedicated zero counter
// and a mirrored negative bucket map); NaN samples are dropped, like every
// other stats entry point. The zero value is not usable; build with
// NewQuantileSketch.
type QuantileSketch struct {
	alpha   float64
	gamma   float64 // (1+α)/(1-α)
	lnGamma float64
	count   uint64
	zeros   uint64
	pos     map[int]uint64
	neg     map[int]uint64
	sum     float64
	min     float64 // valid when count > 0
	max     float64
}

// NewQuantileSketch builds an empty sketch with the given relative-error
// bound α in (0, 1); α ≤ 0 selects DefaultSketchAlpha. A smaller α costs
// proportionally more buckets (≈ log(max/min)/α).
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 || math.IsNaN(alpha) {
		alpha = DefaultSketchAlpha
	}
	if alpha >= 1 {
		alpha = 0.5
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		pos:     map[int]uint64{},
		neg:     map[int]uint64{},
	}
}

// Alpha returns the sketch's relative-error bound.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// Count returns the number of samples added (NaN excluded).
func (s *QuantileSketch) Count() uint64 { return s.count }

// Sum returns the running sum of all samples, accumulated in insertion
// order (exact for a fixed fold order; see the sweep engine's ordering
// contract).
func (s *QuantileSketch) Sum() float64 { return s.sum }

// Mean returns Sum/Count, or 0 when empty.
func (s *QuantileSketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact minimum sample (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum sample (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// bucketKey maps a positive magnitude to its geometric bucket: key k holds
// magnitudes in (γ^(k-1), γ^k].
func (s *QuantileSketch) bucketKey(mag float64) int {
	return int(math.Ceil(math.Log(mag) / s.lnGamma))
}

// representative returns the value reported for bucket k: 2γ^k/(γ+1), the
// point whose worst-case relative distance to any magnitude in the bucket
// is exactly α.
func (s *QuantileSketch) representative(key int) float64 {
	rep := 2 * math.Exp(float64(key)*s.lnGamma) / (s.gamma + 1)
	if math.IsInf(rep, 1) {
		// The extreme bucket (clamped ±Inf samples land there) overflows
		// the exponential; answer with the largest finite magnitude.
		rep = math.MaxFloat64
	}
	return rep
}

// Add counts one sample. NaN is dropped; ±Inf is clamped into the extreme
// finite bucket via math.MaxFloat64 so a stray infinity cannot poison the
// key computation.
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if math.IsInf(x, 1) {
		x = math.MaxFloat64
	}
	if math.IsInf(x, -1) {
		x = -math.MaxFloat64
	}
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sum += x
	switch {
	case x == 0:
		s.zeros++
	case x > 0:
		s.pos[s.bucketKey(x)]++
	default:
		s.neg[s.bucketKey(-x)]++
	}
}

// AddAll counts every sample of xs in order.
func (s *QuantileSketch) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds other into s. Both sketches must have been built with the
// same α (the bucket layouts are incompatible otherwise). Bucket counts
// add, so merging is associative and commutative on every statistic except
// Sum, which accumulates in merge order (document the order, and the bytes
// are reproducible).
func (s *QuantileSketch) Merge(other *QuantileSketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.alpha != s.alpha {
		return fmt.Errorf("stats: sketch alpha mismatch: %v vs %v", s.alpha, other.alpha)
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.count == 0 || other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	s.zeros += other.zeros
	s.sum += other.sum
	for k, n := range other.pos {
		s.pos[k] += n
	}
	for k, n := range other.neg {
		s.neg[k] += n
	}
	return nil
}

// Quantile returns the q-th quantile estimate (q in [0..1], clamped; NaN q
// propagates). The returned value is the representative of the bucket
// containing the exact rank, so it is within a relative α of the true
// sample quantile; q=0 and q=1 return the exact Min and Max.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	// 0-based target rank, same convention as Percentile's closest-rank
	// walk: rank r means "the (r+1)-th smallest sample".
	rank := uint64(q * float64(s.count-1))
	var cum uint64
	// Negative buckets first, most negative (largest magnitude key) down.
	for _, k := range s.sortedKeys(s.neg, true) {
		cum += s.neg[k]
		if cum > rank {
			return -s.representative(k)
		}
	}
	cum += s.zeros
	if cum > rank {
		return 0
	}
	for _, k := range s.sortedKeys(s.pos, false) {
		cum += s.pos[k]
		if cum > rank {
			return s.representative(k)
		}
	}
	return s.Max() // counting slack is impossible, but stay defined
}

// sortedKeys returns the bucket keys in ascending (or descending) order —
// map iteration order must never leak into a quantile answer.
func (s *QuantileSketch) sortedKeys(m map[int]uint64, desc bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if desc {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}

// sketchJSON is the stable wire form of a sketch. Maps with integer keys
// marshal with sorted string keys, so identical sketches produce identical
// bytes — checkpoint files are reproducible.
type sketchJSON struct {
	Alpha float64        `json:"alpha"`
	Count uint64         `json:"count"`
	Zeros uint64         `json:"zeros,omitempty"`
	Sum   float64        `json:"sum"`
	Min   float64        `json:"min"`
	Max   float64        `json:"max"`
	Pos   map[int]uint64 `json:"pos,omitempty"`
	Neg   map[int]uint64 `json:"neg,omitempty"`
}

// MarshalJSON encodes the sketch deterministically.
func (s *QuantileSketch) MarshalJSON() ([]byte, error) {
	out := sketchJSON{Alpha: s.alpha, Count: s.count, Zeros: s.zeros, Sum: s.sum}
	if s.count > 0 {
		out.Min, out.Max = s.min, s.max
	}
	if len(s.pos) > 0 {
		out.Pos = s.pos
	}
	if len(s.neg) > 0 {
		out.Neg = s.neg
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a sketch written by MarshalJSON.
func (s *QuantileSketch) UnmarshalJSON(data []byte) error {
	var in sketchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	fresh := NewQuantileSketch(in.Alpha)
	*s = *fresh
	s.count = in.Count
	s.zeros = in.Zeros
	s.sum = in.Sum
	if in.Count > 0 {
		s.min, s.max = in.Min, in.Max
	}
	for k, n := range in.Pos {
		s.pos[k] += n
	}
	for k, n := range in.Neg {
		s.neg[k] += n
	}
	return nil
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", m)
	}
	// sample stddev of this classic set is sqrt(32/7)
	if sd := StdDev(xs); !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

// Boundary behavior pinned by table: out-of-range p clamps, a single
// element is every percentile, NaN samples are ignored, and a NaN p
// propagates instead of indexing with the garbage int(NaN) conversion.
func TestPercentileBoundaries(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"p below zero clamps to min", []float64{3, 1, 2}, -100, 1},
		{"p zero is min", []float64{3, 1, 2}, 0, 1},
		{"p hundred is max", []float64{3, 1, 2}, 100, 3},
		{"p above hundred clamps to max", []float64{3, 1, 2}, 1e9, 3},
		{"single element any p", []float64{7}, 33.3, 7},
		{"single element p0", []float64{7}, 0, 7},
		{"single element p100", []float64{7}, 100, 7},
		{"NaN samples ignored", []float64{nan, 1, nan, 3}, 50, 2},
		{"all-NaN sample is empty", []float64{nan, nan}, 50, 0},
		{"NaN p propagates", []float64{1, 2, 3}, nan, nan},
	}
	for _, c := range cases {
		got := Percentile(c.xs, c.p)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: got %v, want NaN", c.name, got)
			}
			continue
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

func TestQuantileBoundaries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ q, want float64 }{
		{-1, 1}, {0, 1}, {1, 4}, {2, 4}, {0.5, 2.5},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := NewCDF(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty CDF Quantile = %v, want 0", got)
	}
	single := NewCDF([]float64{9})
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != 9 {
			t.Errorf("single-element Quantile(%v) = %v, want 9", q, got)
		}
	}
	// NaN samples are dropped at construction, not sorted into the tail.
	withNaN := NewCDF([]float64{math.NaN(), 2, math.NaN(), 4})
	if withNaN.Len() != 2 {
		t.Errorf("CDF kept NaN samples: len %d, want 2", withNaN.Len())
	}
	if got := withNaN.Quantile(1); got != 4 {
		t.Errorf("NaN-cleaned Quantile(1) = %v, want 4", got)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty is fair", nil, 1},
		{"all zero is fair", []float64{0, 0, 0}, 1},
		{"equal split", []float64{5, 5, 5, 5}, 1},
		{"single element", []float64{3}, 1},
		{"one starves rest", []float64{10, 0, 0, 0}, 0.25},
		{"classic 4:1", []float64{4, 1}, 25.0 / 34.0},
		{"NaN ignored", []float64{math.NaN(), 2, 2}, 1},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// Bounds: 1/n <= J <= 1 for any nonnegative sample.
	xs := []float64{0.1, 7, 3, 0.5, 12, 1}
	j := JainIndex(xs)
	if j < 1.0/float64(len(xs)) || j > 1 {
		t.Fatalf("JainIndex out of [1/n, 1]: %v", j)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Median != 50 || s.P90 != 90 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 50, 1e-9) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := c.Quantile(0.5); !almostEqual(q, 2, 1e-12) {
		t.Fatalf("median = %v, want 2", q)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 10 {
		t.Fatalf("extremes not included: %v", pts)
	}
	if pts[4][1] != 1 {
		t.Fatalf("last CDF value = %v, want 1", pts[4][1])
	}
}

func TestCDFPointsSmallN(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	// n == 1 must return the full-CDF endpoint (max x, P = 1), not the min.
	one := c.Points(1)
	if len(one) != 1 || one[0] != [2]float64{5, 1} {
		t.Fatalf("Points(1) = %v, want [[5 1]]", one)
	}
	// n == 2 keeps both extremes.
	two := c.Points(2)
	if len(two) != 2 || two[0][0] != 1 || two[1] != [2]float64{5, 1} {
		t.Fatalf("Points(2) = %v, want min and max", two)
	}
	// n > m clamps to the sample size, extremes intact.
	all := c.Points(50)
	if len(all) != 5 || all[0][0] != 1 || all[4] != [2]float64{5, 1} {
		t.Fatalf("Points(50) = %v, want all 5 points", all)
	}
	// Single-sample CDF: every n returns that sample at P = 1.
	single := NewCDF([]float64{7})
	if pts := single.Points(1); len(pts) != 1 || pts[0] != [2]float64{7, 1} {
		t.Fatalf("single-sample Points(1) = %v", pts)
	}
}

func TestSparkline(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	s := c.Sparkline(0, 4, 20)
	if len(s) != 20 {
		t.Fatalf("sparkline width = %d, want 20", len(s))
	}
	if c.Sparkline(4, 0, 20) != "" {
		t.Fatal("inverted range should yield empty sparkline")
	}
}

func TestSparklineWidthOne(t *testing.T) {
	const levels = " .:-=+*#%@"
	c := NewCDF([]float64{1, 2, 3})
	s := c.Sparkline(0, 4, 1)
	if len(s) != 1 {
		t.Fatalf("sparkline width = %d, want 1", len(s))
	}
	// The single column samples the midpoint (x=2): P(X<=2) = 2/3, a valid
	// glyph — the old width-1 division produced NaN and a garbage byte.
	if !strings.Contains(levels, s) {
		t.Fatalf("width-1 sparkline %q is not a valid level glyph", s)
	}
	want := levels[int(c.At(2)*float64(len(levels)-1))]
	if s[0] != want {
		t.Fatalf("width-1 glyph = %q, want %q", s, string(want))
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(raw, p1), Percentile(raw, p2)
		return lo <= hi && lo >= Min(raw) && hi <= Max(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone nondecreasing and hits 1 at the max.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		c := NewCDF(raw)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.At(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return almostEqual(c.At(Max(raw)), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 1
			}
			// keep magnitudes sane to avoid float overflow artifacts
			raw[i] = math.Mod(raw[i], 1e6)
		}
		m := Mean(raw)
		return m >= Min(raw)-1e-6 && m <= Max(raw)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

package stats

import (
	"math"
	"testing"
)

// FuzzQuantiles throws arbitrary float64 bit patterns — NaN payloads,
// infinities, subnormals — at the percentile/CDF stack. The toolkit's
// contract is: never panic, drop NaN samples, and keep every finite-input
// answer inside the sample's [min, max] envelope.
//
// Run with: go test -fuzz FuzzQuantiles ./internal/stats
func FuzzQuantiles(f *testing.F) {
	nan := math.Float64bits(math.NaN())
	inf := math.Float64bits(math.Inf(1))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 50.0)
	f.Add(nan, nan, nan, nan, 90.0)
	f.Add(inf, ^inf, nan, math.Float64bits(1.5), math.NaN())
	f.Add(uint64(1), uint64(2), math.Float64bits(-0.0), inf, 200.0)
	f.Fuzz(func(t *testing.T, b0, b1, b2, b3 uint64, p float64) {
		xs := []float64{
			math.Float64frombits(b0),
			math.Float64frombits(b1),
			math.Float64frombits(b2),
			math.Float64frombits(b3),
		}
		lo, hi, clean := math.Inf(1), math.Inf(-1), 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			clean++
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}

		got := Percentile(xs, p)
		switch {
		case clean == 0:
			if got != 0 {
				t.Fatalf("Percentile of all-NaN sample = %v, want 0", got)
			}
		case math.IsNaN(p):
			if !math.IsNaN(got) {
				t.Fatalf("Percentile(p=NaN) = %v, want NaN", got)
			}
		default:
			if !(got >= lo && got <= hi) && !math.IsNaN(got) {
				t.Fatalf("Percentile(%v, %v) = %v outside [%v, %v]", xs, p, got, lo, hi)
			}
		}

		c := NewCDF(xs)
		if c.Len() != clean {
			t.Fatalf("CDF kept %d samples, want %d non-NaN", c.Len(), clean)
		}
		for _, x := range xs {
			cum := c.At(x)
			if math.IsNaN(x) {
				continue
			}
			if cum < 0 || cum > 1 {
				t.Fatalf("At(%v) = %v outside [0, 1]", x, cum)
			}
		}
		if clean > 0 {
			if q := c.Quantile(p / 100); !math.IsNaN(q) && !(q >= lo && q <= hi) {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", p/100, q, lo, hi)
			}
		}

		// Summarize runs the whole percentile ladder; the envelope check
		// catches any rank-interpolation bug the individual calls missed.
		s := Summarize(xs)
		if s.N != clean {
			t.Fatalf("Summary.N = %d, want %d", s.N, clean)
		}
		// Fixed ladder order, not a map range: the first failing percentile
		// named in a report must be the same on every replay of a crasher
		// (voxel-vet: determinism).
		for _, pv := range []struct {
			name string
			v    float64
		}{
			{"P10", s.P10}, {"P25", s.P25}, {"Median", s.Median},
			{"P75", s.P75}, {"P90", s.P90}, {"P95", s.P95},
		} {
			if clean > 0 && !math.IsNaN(pv.v) && !(pv.v >= lo && pv.v <= hi) {
				t.Fatalf("Summary.%s = %v outside [%v, %v]", pv.name, pv.v, lo, hi)
			}
		}
	})
}

package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactRank mirrors the sketch's closest-rank convention: the q-quantile of
// a sorted sample is the element at 0-based rank floor(q·(n-1)).
func exactRank(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

// The headline guarantee: every quantile estimate is within a relative α
// of the exact sample quantile, across wildly different distributions and
// both signs. This is the pinned bound DESIGN.md §10 documents.
func TestQuantileSketchErrorBound(t *testing.T) {
	const alpha = 0.01
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"uniform01": func() float64 { return rng.Float64() },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 3) },
		"bitrate":   func() float64 { return 1e5 + rng.Float64()*4e7 },
		"signed":    func() float64 { return rng.NormFloat64() * 100 },
		"heavy-zero": func() float64 {
			if rng.Intn(3) == 0 {
				return 0
			}
			return rng.Float64() * 10
		},
	}
	// Sorted subtest order: the distributions share one seeded rng, so the
	// map iteration order would otherwise decide which subtest consumes
	// which random draws — failures would not reproduce (voxel-vet:
	// determinism).
	names := make([]string, 0, len(dists))
	for name := range dists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		draw := dists[name]
		t.Run(name, func(t *testing.T) {
			s := NewQuantileSketch(alpha)
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = draw()
				s.Add(xs[i])
			}
			sorted := sortedClean(xs)
			for _, q := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
				want := exactRank(sorted, q)
				got := s.Quantile(q)
				// Worst case is exactly α; allow float slack for samples that
				// land on a bucket boundary up to one ulp off the ideal key.
				tol := alpha*math.Abs(want) + 1e-12
				if math.Abs(got-want) > tol*(1+1e-9) {
					t.Errorf("q=%v: got %v want %v (err %v > α·|want| = %v)",
						q, got, want, math.Abs(got-want), tol)
				}
			}
			if s.Quantile(0) != sorted[0] || s.Quantile(1) != sorted[len(sorted)-1] {
				t.Errorf("extremes not exact: [%v, %v] vs [%v, %v]",
					s.Quantile(0), s.Quantile(1), sorted[0], sorted[len(sorted)-1])
			}
		})
	}
}

// Merging shard sketches must reproduce the whole-sample sketch exactly:
// identical bucket counts, identical quantiles, regardless of how the
// sample was split or in which order the parts merge.
func TestQuantileSketchMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 9001)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 2)
	}
	whole := NewQuantileSketch(0.02)
	whole.AddAll(xs)

	for _, parts := range []int{2, 4, 7} {
		shards := make([]*QuantileSketch, parts)
		for i := range shards {
			shards[i] = NewQuantileSketch(0.02)
		}
		for i, x := range xs {
			shards[i%parts].Add(x)
		}
		// Merge in reverse order to prove order-independence of counts.
		merged := NewQuantileSketch(0.02)
		for i := parts - 1; i >= 0; i-- {
			if err := merged.Merge(shards[i]); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("parts=%d: count %d vs %d", parts, merged.Count(), whole.Count())
		}
		if !reflect.DeepEqual(merged.pos, whole.pos) || !reflect.DeepEqual(merged.neg, whole.neg) ||
			merged.zeros != whole.zeros {
			t.Fatalf("parts=%d: merged buckets differ from whole-sample buckets", parts)
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("parts=%d q=%v: merged %v != whole %v",
					parts, q, merged.Quantile(q), whole.Quantile(q))
			}
		}
	}

	bad := NewQuantileSketch(0.05)
	if err := bad.Merge(whole); err == nil {
		t.Fatal("alpha mismatch must refuse to merge")
	}
	// Merging an empty or nil sketch is a no-op, not an error.
	if err := whole.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := whole.Merge(NewQuantileSketch(0.5)); err != nil {
		t.Fatal(err)
	}
}

// The wire form must round-trip bit-exactly and be byte-deterministic —
// checkpoint files diff clean across runs.
func TestQuantileSketchJSONRoundTrip(t *testing.T) {
	s := NewQuantileSketch(0.01)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		s.Add(rng.NormFloat64() * 1e6)
	}
	s.Add(0)
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, s) {
		t.Fatal("sketch does not round-trip through JSON")
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("sketch JSON is not byte-deterministic")
	}
	// Empty sketch round-trips too.
	empty := NewQuantileSketch(0.01)
	be, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	var emptyBack QuantileSketch
	if err := json.Unmarshal(be, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack.Count() != 0 || emptyBack.Quantile(0.5) != 0 {
		t.Fatal("empty sketch round-trip broken")
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	s := NewQuantileSketch(0.01)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must answer zeros")
	}
	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Fatal("NaN must be dropped")
	}
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	if s.Count() != 2 || math.IsInf(s.Quantile(0.5), 0) || math.IsNaN(s.Quantile(0.5)) {
		t.Fatalf("infinities must clamp, got q50=%v count=%d", s.Quantile(0.5), s.Count())
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Fatal("NaN q must propagate")
	}

	// All-zero sample: exact at every quantile.
	z := NewQuantileSketch(0.01)
	for i := 0; i < 10; i++ {
		z.Add(0)
	}
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if z.Quantile(q) != 0 {
			t.Fatalf("all-zero sample: q%v = %v", q, z.Quantile(q))
		}
	}

	// Single sample: exact everywhere within the bound (and Min/Max exact).
	one := NewQuantileSketch(0.01)
	one.Add(42)
	if one.Quantile(0) != 42 || one.Quantile(1) != 42 {
		t.Fatal("single-sample extremes must be exact")
	}
	if got := one.Quantile(0.5); math.Abs(got-42) > 0.01*42 {
		t.Fatalf("single-sample median %v outside bound", got)
	}

	// Negative-only sample keeps ordering: q0 is the most negative.
	n := NewQuantileSketch(0.01)
	n.AddAll([]float64{-1, -10, -100})
	if n.Quantile(0) != -100 || n.Quantile(1) != -1 {
		t.Fatalf("negative extremes wrong: [%v, %v]", n.Quantile(0), n.Quantile(1))
	}
	if mid := n.Quantile(0.5); math.Abs(mid-(-10)) > 0.01*10 {
		t.Fatalf("negative median %v outside bound", mid)
	}

	// Alpha defaulting.
	if NewQuantileSketch(0).Alpha() != DefaultSketchAlpha {
		t.Fatal("alpha <= 0 must default")
	}
	if NewQuantileSketch(2).Alpha() != 0.5 {
		t.Fatal("alpha >= 1 must clamp")
	}
}

package cc

import (
	"testing"
	"time"

	"voxel/internal/sim"
)

func TestBBRStartupGrows(t *testing.T) {
	b := NewBBRLite()
	w0 := b.Window()
	drive(b, 0, 2)
	if b.Window() <= w0 {
		t.Fatalf("startup did not grow: %d → %d", w0, b.Window())
	}
}

func TestBBRConvergesNearBDP(t *testing.T) {
	// Feed a steady 10 Mbps delivery at 60 ms RTT: the window should
	// converge to ≈1–3× BDP (75 kB), far below CUBIC's queue-filling.
	b := NewBBRLite()
	now := sim.Time(0)
	const rtt = 60 * time.Millisecond
	const rateBps = 10e6 / 8 // bytes per second
	for i := 0; i < 400; i++ {
		// Deliver one RTT's worth of bytes as MSS-sized ACKs.
		bytes := int(rateBps * rtt.Seconds())
		for n := 0; n < bytes; n += MSS {
			b.OnPacketSent(now, MSS)
			b.OnAck(now, MSS, rtt)
		}
		now += rtt
	}
	bdp := int(rateBps * rtt.Seconds())
	if b.Window() < bdp/2 || b.Window() > 4*bdp {
		t.Fatalf("window %d not near BDP %d", b.Window(), bdp)
	}
	if b.startup {
		t.Fatal("should have exited startup")
	}
}

func TestBBRToleratesLoss(t *testing.T) {
	// A single loss must not halve the window (unlike CUBIC/Reno).
	b := NewBBRLite()
	drive(b, 0, 6)
	w := b.Window()
	b.OnPacketSent(time.Second, MSS)
	b.OnLoss(time.Second, MSS, true)
	if b.Window() < w*8/10 {
		t.Fatalf("BBR over-reacted to loss: %d → %d", w, b.Window())
	}
}

func TestBBRMinRTTTracksDecrease(t *testing.T) {
	b := NewBBRLite()
	b.OnPacketSent(0, MSS)
	b.OnAck(0, MSS, 80*time.Millisecond)
	b.OnPacketSent(0, MSS)
	b.OnAck(0, MSS, 60*time.Millisecond)
	if b.minRTT != 60*time.Millisecond {
		t.Fatalf("minRTT %v", b.minRTT)
	}
}

func TestBBRRTOResets(t *testing.T) {
	b := NewBBRLite()
	drive(b, 0, 6)
	b.OnRetransmissionTimeout(time.Second)
	if b.Window() != minWindow || b.InFlight() != 0 || !b.startup {
		t.Fatalf("RTO reset incomplete: w=%d", b.Window())
	}
}

package cc

import (
	"testing"
	"time"

	"voxel/internal/sim"
)

const rtt = 60 * time.Millisecond

// drive simulates count RTT rounds of full-window ACKs.
func drive(c Controller, start sim.Time, rounds int) sim.Time {
	now := start
	for i := 0; i < rounds; i++ {
		w := c.Window()
		sent := 0
		for sent+MSS <= w {
			c.OnPacketSent(now, MSS)
			sent += MSS
		}
		now += rtt
		for acked := 0; acked < sent; acked += MSS {
			c.OnAck(now, MSS, rtt)
		}
	}
	return now
}

func TestSlowStartDoubles(t *testing.T) {
	for _, c := range []Controller{NewCubic(), NewReno()} {
		w0 := c.Window()
		drive(c, 0, 1)
		if got := c.Window(); got < 2*w0-MSS {
			t.Errorf("%T: window after 1 RTT = %d, want ≈%d", c, got, 2*w0)
		}
	}
}

func TestCanSendRespectsWindow(t *testing.T) {
	c := NewCubic()
	for c.CanSend(MSS) {
		c.OnPacketSent(0, MSS)
	}
	if c.InFlight() > c.Window() {
		t.Fatalf("inflight %d exceeds cwnd %d", c.InFlight(), c.Window())
	}
	if c.CanSend(MSS) {
		t.Fatal("CanSend should be false at full window")
	}
	c.OnAck(rtt, MSS, rtt)
	if !c.CanSend(MSS) {
		t.Fatal("CanSend should be true after an ACK frees space")
	}
}

func TestCubicMultiplicativeDecrease(t *testing.T) {
	c := NewCubic()
	drive(c, 0, 6)
	before := c.Window()
	c.OnPacketSent(time.Second, MSS)
	c.OnLoss(time.Second, MSS, true)
	after := c.Window()
	want := int(float64(before) * cubicBeta)
	if after < want-MSS || after > want+MSS {
		t.Fatalf("window after loss = %d, want ≈%d (0.7×%d)", after, want, before)
	}
	if c.ssthresh != after {
		t.Fatalf("ssthresh = %d, want %d", c.ssthresh, after)
	}
}

func TestLossWithinSameEventDoesNotDoubleReduce(t *testing.T) {
	c := NewCubic()
	drive(c, 0, 6)
	c.OnPacketSent(time.Second, 3*MSS)
	c.OnLoss(time.Second, MSS, true)
	w := c.Window()
	c.OnLoss(time.Second, MSS, false)
	c.OnLoss(time.Second, MSS, false)
	if c.Window() != w {
		t.Fatalf("window changed on same-event losses: %d → %d", w, c.Window())
	}
}

func TestCubicGrowsAfterLoss(t *testing.T) {
	c := NewCubic()
	drive(c, 0, 8)
	c.OnPacketSent(time.Second, MSS)
	c.OnLoss(time.Second, MSS, true)
	after := c.Window()
	end := drive(c, time.Second, 30)
	if c.Window() <= after {
		t.Fatalf("cubic did not grow after loss: %d → %d (by %v)", after, c.Window(), end)
	}
}

func TestCubicConvexRecoveryTowardWMax(t *testing.T) {
	c := NewCubic()
	drive(c, 0, 4)
	wBefore := c.Window()
	c.OnPacketSent(2*time.Second, MSS)
	c.OnLoss(2*time.Second, MSS, true)
	// After many RTTs, cubic should plateau near and then exceed wMax.
	drive(c, 2*time.Second, 200)
	if c.Window() < wBefore {
		t.Fatalf("cubic failed to recover toward wMax: %d < %d", c.Window(), wBefore)
	}
}

func TestFastConvergence(t *testing.T) {
	c := NewCubic()
	drive(c, 0, 10)
	c.OnPacketSent(time.Second, MSS)
	c.OnLoss(time.Second, MSS, true)
	first := c.wLastMax
	// Second loss at a lower window: wLastMax should shrink further than cwnd.
	c.OnPacketSent(time.Second+rtt, MSS)
	c.OnLoss(time.Second+rtt, MSS, true)
	if c.wLastMax >= first {
		t.Fatalf("fast convergence did not shrink wLastMax: %v → %v", first, c.wLastMax)
	}
}

func TestRTOCollapsesWindow(t *testing.T) {
	for _, c := range []Controller{NewCubic(), NewReno()} {
		drive(c, 0, 8)
		c.OnRetransmissionTimeout(time.Second)
		if c.Window() != minWindow {
			t.Errorf("%T: window after RTO = %d, want %d", c, c.Window(), minWindow)
		}
		if c.InFlight() != 0 {
			t.Errorf("%T: inflight after RTO = %d, want 0", c, c.InFlight())
		}
	}
}

func TestRenoAIMD(t *testing.T) {
	r := NewReno()
	// Force congestion avoidance.
	r.ssthresh = r.cwnd
	w0 := r.Window()
	drive(r, 0, 1)
	// +1 MSS per RTT in congestion avoidance.
	if got := r.Window(); got != w0+MSS {
		t.Fatalf("reno CA growth: %d → %d, want +%d", w0, got, MSS)
	}
	r.OnPacketSent(time.Second, MSS)
	r.OnLoss(time.Second, MSS, true)
	if got := r.Window(); got != (w0+MSS)/2 {
		t.Fatalf("reno halving: got %d, want %d", got, (w0+MSS)/2)
	}
}

func TestWindowNeverBelowMinimum(t *testing.T) {
	for _, c := range []Controller{NewCubic(), NewReno()} {
		for i := 0; i < 50; i++ {
			c.OnPacketSent(0, MSS)
			c.OnLoss(0, MSS, true)
		}
		if c.Window() < minWindow {
			t.Errorf("%T: window %d below minimum %d", c, c.Window(), minWindow)
		}
	}
}

func TestInFlightNeverNegative(t *testing.T) {
	c := NewCubic()
	c.OnAck(0, MSS, rtt) // spurious ACK with nothing in flight
	if c.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", c.InFlight())
	}
}

func TestRTTEstimator(t *testing.T) {
	var e RTTEstimator
	if e.SmoothedRTT() != 100*time.Millisecond {
		t.Fatal("default srtt wrong")
	}
	e.OnSample(60 * time.Millisecond)
	if e.SmoothedRTT() != 60*time.Millisecond {
		t.Fatalf("first sample srtt = %v", e.SmoothedRTT())
	}
	if e.MinRTT() != 60*time.Millisecond {
		t.Fatalf("minRTT = %v", e.MinRTT())
	}
	e.OnSample(100 * time.Millisecond)
	if s := e.SmoothedRTT(); s <= 60*time.Millisecond || s >= 100*time.Millisecond {
		t.Fatalf("srtt after second sample = %v, want between", s)
	}
	e.OnSample(40 * time.Millisecond)
	if e.MinRTT() != 40*time.Millisecond {
		t.Fatalf("minRTT should track new minimum, got %v", e.MinRTT())
	}
	if e.PTO() <= e.SmoothedRTT() {
		t.Fatal("PTO should exceed srtt")
	}
	e.OnSample(0) // ignored
	if e.Samples() != 3 {
		t.Fatalf("samples = %d, want 3", e.Samples())
	}
}

func TestCubicSteadyStateThroughputOrdering(t *testing.T) {
	// With periodic losses every N rounds, a flow losing less often should
	// sustain a larger average window.
	run := func(lossEvery int) float64 {
		c := NewCubic()
		now := sim.Time(0)
		var sum float64
		const rounds = 200
		for i := 0; i < rounds; i++ {
			now = drive(c, now, 1)
			if i%lossEvery == lossEvery-1 {
				c.OnPacketSent(now, MSS)
				c.OnLoss(now, MSS, true)
			}
			sum += float64(c.Window())
		}
		return sum / rounds
	}
	rare, frequent := run(40), run(5)
	if rare <= frequent {
		t.Fatalf("rare-loss window %v should exceed frequent-loss window %v", rare, frequent)
	}
}

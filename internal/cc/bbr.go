package cc

import (
	"time"

	"voxel/internal/sim"
)

// BBRLite is a compact model-based (delay-aware) congestion controller in
// the spirit of BBR v1: it estimates the bottleneck bandwidth from the
// delivery rate and the path's round-trip propagation delay from the
// minimum RTT, and paces the window toward their product instead of
// filling the queue until loss.
//
// Appendix B of the paper observes that VOXEL's CUBIC inheritance suffers
// behind long (750-packet) queues and names delay-based congestion control
// as future work; this controller exists to run that experiment
// (BenchmarkFigB1DelayBasedCC / the Fig16-extension ablation).
type BBRLite struct {
	common

	// btlBw is the windowed-max delivery rate estimate (bytes/sec).
	btlBw    float64
	bwStamp  sim.Time
	minRTT   sim.Time
	rttStamp sim.Time

	// delivered counts bytes acked; used for delivery-rate samples.
	delivered   int
	lastSample  sim.Time
	sampleBytes int

	// probe cycling: periodically raise gain to find more bandwidth, then
	// drain.
	cycleStart sim.Time
	cycleIdx   int
	startup    bool
}

var bbrGains = []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBRLite returns the delay-based controller at the initial window.
func NewBBRLite() *BBRLite {
	return &BBRLite{
		common:  common{cwnd: initialWindow, ssthresh: maxWindow},
		startup: true,
		minRTT:  100 * time.Millisecond,
	}
}

// OnAck folds a delivery sample into the model and sets the window to the
// gain-scaled bandwidth-delay product.
func (b *BBRLite) OnAck(now sim.Time, bytes int, rtt sim.Time) {
	b.ackInFlight(bytes)
	if rtt > 0 && (rtt < b.minRTT || now-b.rttStamp > 10*time.Second) {
		b.minRTT = rtt
		b.rttStamp = now
	}
	// Delivery-rate sample over ≈one RTT windows.
	b.sampleBytes += bytes
	if b.lastSample == 0 {
		b.lastSample = now
	}
	if elapsed := now - b.lastSample; elapsed >= b.minRTT && elapsed > 0 {
		rate := float64(b.sampleBytes) / elapsed.Seconds()
		if rate > b.btlBw || now-b.bwStamp > 10*b.minRTT {
			b.btlBw = rate
			b.bwStamp = now
		}
		b.sampleBytes = 0
		b.lastSample = now
	}

	if b.btlBw <= 0 {
		// Startup: exponential growth like slow start.
		b.cwnd += bytes
		if b.cwnd > maxWindow {
			b.cwnd = maxWindow
		}
		return
	}

	gain := 2.0 // startup gain
	if !b.startup {
		if now-b.cycleStart > b.minRTT {
			b.cycleStart = now
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrGains)
		}
		gain = bbrGains[b.cycleIdx]
	} else if float64(b.cwnd) > 2.5*b.btlBw*b.minRTT.Seconds() {
		// Bandwidth stopped growing relative to the window: exit startup.
		b.startup = false
		b.cycleStart = now
	}

	bdp := b.btlBw * b.minRTT.Seconds()
	target := int(gain*bdp) + 3*MSS
	if target < minWindow {
		target = minWindow
	}
	if target > maxWindow {
		target = maxWindow
	}
	// Move toward the target rather than jumping (smooths the sim).
	if target > b.cwnd {
		b.cwnd += bytes
		if b.cwnd > target {
			b.cwnd = target
		}
	} else {
		b.cwnd = target
	}
}

// OnLoss: BBR does not treat loss as a primary signal; it only clamps the
// window modestly on a new loss event so drop-tail queues still bound it.
func (b *BBRLite) OnLoss(_ sim.Time, bytes int, isNewEvent bool) {
	b.ackInFlight(bytes)
	if !isNewEvent {
		return
	}
	reduced := b.cwnd * 9 / 10
	if reduced < minWindow {
		reduced = minWindow
	}
	b.cwnd = reduced
	b.startup = false
}

// OnRetransmissionTimeout collapses to the minimum window and restarts the
// model conservatively.
func (b *BBRLite) OnRetransmissionTimeout(sim.Time) {
	b.cwnd = minWindow
	b.btlBw = 0
	b.inFlight = 0
	b.startup = true
}

// Package cc implements the congestion controllers used in the simulator:
// CUBIC (RFC 8312), the controller QUIC* inherits from Google QUIC in the
// paper, and Reno, used by the Harpoon-like cross-traffic flows. Both
// reliable and unreliable QUIC* streams are governed by the same CUBIC
// controller (§4.2: unreliable streams "are subject to the congestion
// (CUBIC) and flow-control mechanisms of the QUIC connection").
package cc

import (
	"math"
	"time"

	"voxel/internal/sim"
)

// Controller is the interface the transport drives.
type Controller interface {
	// OnPacketSent records bytes entering the network.
	OnPacketSent(now sim.Time, bytes int)
	// OnAck records bytes leaving the network via acknowledgment.
	OnAck(now sim.Time, bytes int, rtt sim.Time)
	// OnLoss records bytes declared lost and reduces the window. The
	// transport coalesces losses within one RTT into a single congestion
	// event by its own bookkeeping (endOfRecovery); isNewEvent says whether
	// this loss starts a new event.
	OnLoss(now sim.Time, bytes int, isNewEvent bool)
	// OnRetransmissionTimeout collapses the window after an RTO/PTO chain.
	OnRetransmissionTimeout(now sim.Time)
	// Window returns the congestion window in bytes.
	Window() int
	// InFlight returns the bytes currently unacknowledged.
	InFlight() int
	// CanSend reports whether another packet of the given size fits.
	CanSend(bytes int) bool
}

// MSS is the maximum segment size used for window arithmetic.
const MSS = 1200

const (
	initialWindow = 10 * MSS
	minWindow     = 2 * MSS
	maxWindow     = 16 << 20
)

// common holds state shared by Cubic and Reno.
type common struct {
	cwnd     int
	ssthresh int
	inFlight int
}

func (c *common) Window() int   { return c.cwnd }
func (c *common) InFlight() int { return c.inFlight }
func (c *common) CanSend(bytes int) bool {
	return c.inFlight+bytes <= c.cwnd
}
func (c *common) OnPacketSent(_ sim.Time, bytes int) { c.inFlight += bytes }
func (c *common) ackInFlight(bytes int) {
	c.inFlight -= bytes
	if c.inFlight < 0 {
		c.inFlight = 0
	}
}

// Cubic implements RFC 8312 CUBIC with fast convergence and the
// TCP-friendly (Reno-estimate) region.
type Cubic struct {
	common
	wMax       float64 // window before the last reduction, bytes
	wLastMax   float64
	k          float64 // seconds
	epochStart sim.Time
	ackedBytes int // Reno-estimate accumulator
	wEst       float64
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC controller at the initial window.
func NewCubic() *Cubic {
	return &Cubic{common: common{cwnd: initialWindow, ssthresh: maxWindow}}
}

// OnAck grows the window: slow start below ssthresh, cubic above.
func (c *Cubic) OnAck(now sim.Time, bytes int, rtt sim.Time) {
	c.ackInFlight(bytes)
	if c.cwnd < c.ssthresh {
		c.cwnd += bytes
		if c.cwnd > maxWindow {
			c.cwnd = maxWindow
		}
		return
	}
	if c.epochStart == 0 {
		c.epochStart = now
		if float64(c.cwnd) < c.wMax {
			c.k = math.Cbrt(float64(c.wMax-float64(c.cwnd)) / float64(MSS) / cubicC)
		} else {
			c.k = 0
			c.wMax = float64(c.cwnd)
		}
		c.wEst = float64(c.cwnd)
		c.ackedBytes = 0
	}
	t := (now - c.epochStart).Seconds()
	// Target from the cubic function, in bytes.
	wCubic := cubicC*math.Pow(t-c.k, 3)*MSS + c.wMax
	// Reno-friendly estimate: grows ~one MSS per RTT worth of ACKs.
	c.ackedBytes += bytes
	if c.ackedBytes >= c.cwnd {
		c.ackedBytes -= c.cwnd
		c.wEst += MSS
	}
	target := wCubic
	if c.wEst > target {
		target = c.wEst
	}
	if target > float64(c.cwnd) {
		// Approach the target over roughly one RTT of ACKs.
		incr := (target - float64(c.cwnd)) / float64(c.cwnd) * float64(bytes)
		if incr < 1 {
			incr = 1
		}
		c.cwnd += int(incr)
	}
	if c.cwnd > maxWindow {
		c.cwnd = maxWindow
	}
}

// OnLoss applies CUBIC's multiplicative decrease for a new congestion
// event; subsequent losses within the same event only deflate inFlight.
func (c *Cubic) OnLoss(_ sim.Time, bytes int, isNewEvent bool) {
	c.ackInFlight(bytes)
	if !isNewEvent {
		return
	}
	c.epochStart = 0
	w := float64(c.cwnd)
	if w < c.wLastMax {
		// Fast convergence: release bandwidth to newer flows.
		c.wLastMax = w * (1 + cubicBeta) / 2
	} else {
		c.wLastMax = w
	}
	c.wMax = c.wLastMax
	c.cwnd = int(w * cubicBeta)
	if c.cwnd < minWindow {
		c.cwnd = minWindow
	}
	c.ssthresh = c.cwnd
}

// OnRetransmissionTimeout collapses to the minimum window and re-enters
// slow start.
func (c *Cubic) OnRetransmissionTimeout(sim.Time) {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < minWindow {
		c.ssthresh = minWindow
	}
	c.cwnd = minWindow
	c.epochStart = 0
	c.inFlight = 0
}

// Reno is classic AIMD TCP congestion control, used by cross-traffic flows.
type Reno struct {
	common
	ackedBytes int
}

// NewReno returns a Reno controller at the initial window.
func NewReno() *Reno {
	return &Reno{common: common{cwnd: initialWindow, ssthresh: maxWindow}}
}

// OnAck grows the window: slow start below ssthresh, +1 MSS per RTT above.
func (r *Reno) OnAck(_ sim.Time, bytes int, _ sim.Time) {
	r.ackInFlight(bytes)
	if r.cwnd < r.ssthresh {
		r.cwnd += bytes
	} else {
		r.ackedBytes += bytes
		if r.ackedBytes >= r.cwnd {
			r.ackedBytes -= r.cwnd
			r.cwnd += MSS
		}
	}
	if r.cwnd > maxWindow {
		r.cwnd = maxWindow
	}
}

// OnLoss halves the window on a new congestion event.
func (r *Reno) OnLoss(_ sim.Time, bytes int, isNewEvent bool) {
	r.ackInFlight(bytes)
	if !isNewEvent {
		return
	}
	r.cwnd /= 2
	if r.cwnd < minWindow {
		r.cwnd = minWindow
	}
	r.ssthresh = r.cwnd
}

// OnRetransmissionTimeout collapses to the minimum window.
func (r *Reno) OnRetransmissionTimeout(sim.Time) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < minWindow {
		r.ssthresh = minWindow
	}
	r.cwnd = minWindow
	r.inFlight = 0
}

// RTTEstimator maintains smoothed RTT and variance per RFC 6298/9002 and
// derives the probe timeout the transport arms.
type RTTEstimator struct {
	srtt    sim.Time
	rttvar  sim.Time
	minRTT  sim.Time
	latest  sim.Time
	samples int
}

// OnSample folds one RTT measurement into the estimator.
func (e *RTTEstimator) OnSample(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if e.samples == 0 || rtt < e.minRTT {
		e.minRTT = rtt
	}
	e.latest = rtt
	if e.samples == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
	} else {
		d := e.srtt - rtt
		if d < 0 {
			d = -d
		}
		e.rttvar = (3*e.rttvar + d) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.samples++
}

// SmoothedRTT returns the smoothed RTT, or a conservative default before
// any sample arrives.
func (e *RTTEstimator) SmoothedRTT() sim.Time {
	if e.samples == 0 {
		return 100 * time.Millisecond
	}
	return e.srtt
}

// MinRTT returns the minimum observed RTT.
func (e *RTTEstimator) MinRTT() sim.Time {
	if e.samples == 0 {
		return 100 * time.Millisecond
	}
	return e.minRTT
}

// LatestRTT returns the most recent sample (loss detection uses
// max(smoothed, latest) so queue-delay growth does not trigger spurious
// losses).
func (e *RTTEstimator) LatestRTT() sim.Time {
	if e.samples == 0 {
		return 100 * time.Millisecond
	}
	return e.latest
}

// PTO returns the probe timeout: srtt + max(4*rttvar, 1ms).
func (e *RTTEstimator) PTO() sim.Time {
	v := 4 * e.rttvar
	if v < time.Millisecond {
		v = time.Millisecond
	}
	return e.SmoothedRTT() + v
}

// Samples returns the number of RTT samples folded in.
func (e *RTTEstimator) Samples() int { return e.samples }

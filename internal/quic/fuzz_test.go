package quic

import (
	"encoding/binary"
	"testing"
)

// FuzzRangeSet drives the interval set against a brute-force byte-map
// model. The fuzz input is a script of Add operations decoded as
// (start, length) pairs; after each step every query — Contains, Gaps,
// CoveredBytes, ContiguousFrom, Min/Max, and the well-formedness of
// Ranges() — must agree with the model.
//
// Run with: go test -fuzz FuzzRangeSet ./internal/quic
func FuzzRangeSet(f *testing.F) {
	f.Add([]byte{0, 4, 8, 4, 4, 4})         // [0,4) [8,12) then bridge [4,8)
	f.Add([]byte{0, 0, 1, 1, 1, 1})         // empty add, duplicate adds
	f.Add([]byte{10, 5, 0, 30, 2, 2})       // add swallowed by a superset
	f.Add([]byte{250, 10, 0, 1, 255, 255})  // near the scripted byte limits
	f.Fuzz(func(t *testing.T, script []byte) {
		const horizon = 1 << 10 // model window; scripted offsets stay far below
		var s RangeSet
		model := make([]bool, horizon)
		for len(script) >= 2 {
			start := uint64(script[0]) * 2
			length := uint64(script[1])
			script = script[2:]
			end := start + length
			s.Add(start, end)
			for b := start; b < end && b < horizon; b++ {
				model[b] = true
			}
			verifyAgainstModel(t, &s, model)
		}
	})
}

func verifyAgainstModel(t *testing.T, s *RangeSet, model []bool) {
	t.Helper()
	var covered uint64
	for _, c := range model {
		if c {
			covered++
		}
	}
	if got := s.CoveredBytes(); got != covered {
		t.Fatalf("CoveredBytes = %d, model %d", got, covered)
	}
	// Ranges() must be sorted, non-empty, non-adjacent, and match the model.
	prevEnd := uint64(0)
	for i, r := range s.Ranges() {
		if r.End <= r.Start {
			t.Fatalf("range %d empty: %+v", i, r)
		}
		if i > 0 && r.Start <= prevEnd {
			t.Fatalf("range %d not coalesced/sorted: %+v after end %d", i, r, prevEnd)
		}
		prevEnd = r.End
	}
	for b := uint64(0); b < uint64(len(model)); b++ {
		if got := s.Contains(b, b+1); got != model[b] {
			t.Fatalf("Contains(%d) = %v, model %v", b, got, model[b])
		}
	}
	// Gaps over the full window are exactly the model's uncovered runs.
	want := uncoveredRuns(model)
	got := s.Gaps(0, uint64(len(model)))
	if len(got) != len(want) {
		t.Fatalf("Gaps: %d runs, model %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("gap %d = %+v, model %+v", i, got[i], want[i])
		}
	}
	// ContiguousFrom(0) is the model's leading covered run.
	lead := uint64(0)
	for lead < uint64(len(model)) && model[lead] {
		lead++
	}
	if got := s.ContiguousFrom(0); got != lead {
		t.Fatalf("ContiguousFrom(0) = %d, model %d", got, lead)
	}
}

func uncoveredRuns(model []bool) []ByteRange {
	var runs []ByteRange
	for b := 0; b < len(model); {
		if model[b] {
			b++
			continue
		}
		start := b
		for b < len(model) && !model[b] {
			b++
		}
		runs = append(runs, ByteRange{Start: uint64(start), End: uint64(b)})
	}
	return runs
}

// FuzzRangeSetWide exercises offsets across the full uint64 domain, where
// a byte-map model is impossible: only the structural invariants and
// conservation between CoveredBytes and Ranges are checked (overflowing
// start+length pairs are skipped — the caller contract is end >= start).
func FuzzRangeSetWide(f *testing.F) {
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s RangeSet
		for len(raw) >= 10 {
			start := binary.LittleEndian.Uint64(raw[:8])
			length := uint64(binary.LittleEndian.Uint16(raw[8:10]))
			raw = raw[10:]
			if start+length < start {
				continue
			}
			s.Add(start, start+length)
			var covered uint64
			prevEnd := uint64(0)
			for i, r := range s.Ranges() {
				if r.End <= r.Start {
					t.Fatalf("range %d empty: %+v", i, r)
				}
				if i > 0 && r.Start <= prevEnd {
					t.Fatalf("range %d overlaps/adjacent: %+v after %d", i, r, prevEnd)
				}
				prevEnd = r.End
				covered += r.End - r.Start
			}
			if got := s.CoveredBytes(); got != covered {
				t.Fatalf("CoveredBytes = %d, ranges sum %d", got, covered)
			}
		}
	})
}

package quic

import (
	"testing"
	"time"

	"voxel/internal/sim"
)

// fillWindow pushes k synthetic ack-eliciting packets into c's in-flight
// queue starting at the next unused packet number, and returns the next pn.
func fillWindow(c *Conn, s *sim.Sim, start uint64, k int) uint64 {
	for i := 0; i < k; i++ {
		sp := c.allocSent()
		sp.pn = start
		sp.size = 1252
		sp.sentAt = s.Now()
		sp.ackEliciting = true
		c.sentQ.push(sp)
		c.lastAckElic = s.Now()
		start++
	}
	return start
}

// inflightPNs snapshots the queue's packet numbers in order.
func inflightPNs(c *Conn) []uint64 {
	var pns []uint64
	q := &c.sentQ
	for i := q.head; i < len(q.pk); i++ {
		pns = append(pns, q.pk[i].pn)
	}
	return pns
}

func TestOnAckOutOfOrderRangesKeepsQueueOrdered(t *testing.T) {
	s := sim.New(1)
	c := benchSender(s)
	fillWindow(c, s, 0, 10)
	// Ack {3,4} and {0,1} (descending largest-first, as buildAck emits);
	// largest stays close enough that no packet crosses the loss threshold.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 3, Last: 4}, {First: 0, Last: 1}}})
	want := []uint64{2, 5, 6, 7, 8, 9}
	got := inflightPNs(c)
	if len(got) != len(want) {
		t.Fatalf("in flight = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in flight = %v, want %v (queue must stay ascending)", got, want)
		}
	}
	if c.stats.PacketsDeclLost != 0 {
		t.Fatalf("declared %d lost, want 0", c.stats.PacketsDeclLost)
	}
	// Close the gap: everything but the tail is gone.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 0, Last: 7}}})
	got = inflightPNs(c)
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("in flight after gap close = %v, want [8 9]", got)
	}
}

func TestOnAckThenThresholdLoss(t *testing.T) {
	s := sim.New(2)
	c := benchSender(s)
	fillWindow(c, s, 0, 6)
	// Ack only the newest: 0..2 sit ≥3 behind and are declared lost; 3 and 4
	// survive inside the packet threshold.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 5, Last: 5}}})
	if c.stats.PacketsDeclLost != 3 {
		t.Fatalf("declared %d lost, want 3", c.stats.PacketsDeclLost)
	}
	got := inflightPNs(c)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("in flight = %v, want [3 4]", got)
	}
}

func TestPTORequeuesInPacketOrder(t *testing.T) {
	s := sim.New(3)
	c := benchSender(s)
	// Give each packet a reliable stream frame so the requeue order is
	// observable in the retransmission queue.
	for pn := uint64(0); pn < 5; pn++ {
		sp := c.allocSent()
		sp.pn = pn
		sp.size = 1252
		sp.sentAt = s.Now()
		sp.ackEliciting = true
		f := c.allocFrame()
		f.StreamID = 1
		f.Offset = pn * 1000
		f.Data = make([]byte, 1000)
		sp.streamFrames = append(sp.streamFrames, f)
		c.sentQ.push(sp)
		c.lastAckElic = s.Now()
	}
	c.ptoCount = 2
	c.onPTO() // third PTO: persistent congestion drains everything in order
	// trySend repacks some requeued frames into fresh packets immediately
	// (the collapsed window limits how many); packetized frames followed by
	// the still-queued remainder must preserve the original stream order.
	type cut struct{ off, n uint64 }
	var cuts []cut
	q := &c.sentQ
	for i := q.head; i < len(q.pk); i++ {
		for _, f := range q.pk[i].streamFrames {
			cuts = append(cuts, cut{f.Offset, uint64(len(f.Data))})
		}
	}
	for _, f := range c.retransmit {
		cuts = append(cuts, cut{f.Offset, uint64(len(f.Data))})
	}
	// Frames may have been re-split to fit packets, but together they must
	// cover [0, 5000) contiguously and in order.
	var nextOff uint64
	for _, ct := range cuts {
		if ct.off != nextOff {
			t.Fatalf("cuts = %v: requeue must follow packet order", cuts)
		}
		nextOff += ct.n
	}
	if nextOff != 5000 {
		t.Fatalf("recovered %d bytes, want 5000 (cuts %v)", nextOff, cuts)
	}
	if c.ptoCount != 0 {
		t.Fatalf("ptoCount = %d after persistent congestion, want 0", c.ptoCount)
	}
}

func TestRTTSampledOncePerAck(t *testing.T) {
	s := sim.New(4)
	c := benchSender(s) // warmed with one sample
	base := c.rtt.Samples()

	next := fillWindow(c, s, 0, 5)
	s.RunUntil(s.Now() + time.Millisecond) // a sample of 0 would be discarded
	// One ACK covering five packets: exactly one sample.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 0, Last: 4}}})
	if got := c.rtt.Samples(); got != base+1 {
		t.Fatalf("samples = %d after 5-packet ACK, want %d", got, base+1)
	}
	// Duplicate ACK acking nothing new: no sample.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 0, Last: 4}}})
	if got := c.rtt.Samples(); got != base+1 {
		t.Fatalf("samples = %d after duplicate ACK, want %d", got, base+1)
	}

	// Out-of-order ranges whose largest is newly acked: one sample.
	next = fillWindow(c, s, next, 5) // pns 5..9
	s.RunUntil(s.Now() + time.Millisecond)
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 8, Last: 9}, {First: 5, Last: 5}}})
	if got := c.rtt.Samples(); got != base+2 {
		t.Fatalf("samples = %d after out-of-order ACK, want %d", got, base+2)
	}

	// ACK that newly acks packets but NOT the largest (9 was acked above):
	// no sample, per the once-per-largest rule.
	c.onAck(&AckFrame{Ranges: []AckRange{{First: 6, Last: 9}}})
	if got := c.rtt.Samples(); got != base+2 {
		t.Fatalf("samples = %d when largest was already acked, want %d", got, base+2)
	}
	_ = next
}

func TestSentQueueShrinkCompacts(t *testing.T) {
	var q sentQueue
	for i := uint64(0); i < 100; i++ {
		q.push(&sentPacket{pn: i})
	}
	q.dropPrefix(70) // head dominates: must compact
	if q.head != 0 {
		t.Fatalf("head = %d after compaction, want 0", q.head)
	}
	if q.size() != 30 || q.front().pn != 70 {
		t.Fatalf("size = %d front = %v, want 30 / pn 70", q.size(), q.front())
	}
	q.dropPrefix(30)
	if !q.empty() || q.head != 0 || len(q.pk) != 0 {
		t.Fatalf("queue not reset when emptied: head=%d len=%d", q.head, len(q.pk))
	}
}

// TestAckPathAllocFree pins the zero-allocation property of the steady-state
// ACK path: processing an ACK that retires packets and refilling the window
// from the freelists must not allocate.
func TestAckPathAllocFree(t *testing.T) {
	s := sim.New(5)
	c := benchSender(s)
	next := fillWindow(c, s, 0, 64)
	acked := uint64(0)
	// Warm the freelists and scratch.
	for i := 0; i < 64; i++ {
		acked += 2
		c.onAck(&AckFrame{Ranges: []AckRange{{First: 0, Last: acked - 1}}})
		next = fillWindow(c, s, next, 2)
	}
	ack := &AckFrame{Ranges: []AckRange{{First: 0, Last: 0}}}
	allocs := testing.AllocsPerRun(200, func() {
		acked += 2
		ack.Ranges[0] = AckRange{First: 0, Last: acked - 1}
		c.onAck(ack)
		next = fillWindow(c, s, next, 2)
	})
	if allocs > 0.5 {
		t.Fatalf("ACK path allocates %.1f allocs/op, want 0", allocs)
	}
	_ = time.Millisecond
}

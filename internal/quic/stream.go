package quic

// Stream is a QUIC* stream. Reliable streams deliver every byte; unreliable
// streams (the QUIC* extension) deliver what survives the network, with
// transport-level loss reported through LOSS_REPORT frames.
//
// The API is event-driven to match the discrete-event simulator: receivers
// register callbacks instead of blocking on Read.
type Stream struct {
	conn       *Conn
	id         uint64
	unreliable bool

	// send state. Queued bytes live in the chunks handed to Write (one
	// exact-size copy each); nextFrame slices frames straight out of the
	// head chunk instead of re-copying, so a chunk is shared read-only with
	// the frames cut from it until the garbage collector sees the last one.
	sendChunks [][]byte // chunks not yet fully packetized
	sendPos    int      // consumed bytes of sendChunks[0]
	sendLen    int      // total unpacketized bytes across all chunks
	sendBase   uint64   // stream offset of the next byte to packetize
	finQueued  bool     // CloseWrite called
	finSent    bool
	finOffset  uint64

	// receive state
	received   RangeSet
	lost       RangeSet // from LOSS_REPORT frames (unreliable only)
	finalKnown bool
	finalSize  uint64

	onData  func(offset uint64, data []byte)
	onLost  func(offset, length uint64)
	onFin   func(finalSize uint64)
	doneFin bool
}

// ID returns the stream ID. Client-initiated streams are even, server-
// initiated odd.
func (s *Stream) ID() uint64 { return s.id }

// Unreliable reports whether this is an unreliable (QUIC*) stream.
func (s *Stream) Unreliable() bool { return s.unreliable }

// Write queues data for transmission. The data is copied.
func (s *Stream) Write(data []byte) {
	if s.finQueued {
		panic("quic: Write after CloseWrite")
	}
	if len(data) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.sendChunks = append(s.sendChunks, cp)
	s.sendLen += len(cp)
	s.conn.markActive(s)
}

// CloseWrite queues the FIN: no more data will be written.
func (s *Stream) CloseWrite() {
	if s.finQueued {
		return
	}
	s.finQueued = true
	s.conn.markActive(s)
}

// WriteAt re-queues bytes at a specific offset on an unreliable stream.
// This is the server-side primitive behind the paper's selective
// retransmission: the application re-sends ranges the client re-requested.
// The caller supplies the bytes (the server still has the object).
func (s *Stream) WriteAt(offset uint64, data []byte) {
	if !s.unreliable {
		panic("quic: WriteAt is only for unreliable streams")
	}
	if len(data) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.conn.queueUnreliableRewrite(s, offset, cp)
}

// OnData registers the receive callback; it fires once per arriving stream
// frame with that frame's offset and payload. Frames can arrive out of
// order; duplicate bytes are suppressed.
func (s *Stream) OnData(fn func(offset uint64, data []byte)) { s.onData = fn }

// OnLost registers the loss callback for unreliable streams; it fires when
// the peer's transport gives up on a range.
func (s *Stream) OnLost(fn func(offset, length uint64)) { s.onLost = fn }

// OnFin registers the finalization callback; it fires once the FIN arrived
// and, for reliable streams, every byte is in — for unreliable streams it
// fires when every byte is either received or reported lost.
func (s *Stream) OnFin(fn func(finalSize uint64)) {
	s.onFin = fn
	s.maybeFin()
}

// Received returns the receive-side coverage set (read-only).
func (s *Stream) Received() *RangeSet { return &s.received }

// Lost returns the ranges reported permanently lost (read-only).
func (s *Stream) Lost() *RangeSet { return &s.lost }

// FinalSize returns the stream's final size; ok is false until the FIN
// arrives.
func (s *Stream) FinalSize() (uint64, bool) { return s.finalSize, s.finalKnown }

// pendingSendBytes reports how much new data (plus FIN) awaits packetizing.
func (s *Stream) pendingSendBytes() int {
	n := s.sendLen
	if s.finQueued && !s.finSent {
		n++ // FIN itself needs to ride on a frame
	}
	return n
}

// nextFrame cuts up to maxData bytes of new data into a frame, or returns
// nil when nothing is pending. The cut size depends only on how much data
// is queued, never on chunk boundaries, so framing is identical to a flat
// buffer. When the cut fits inside the head chunk the frame aliases it
// (full-capacity slice: appends by a holder cannot scribble on the chunk);
// only a cut spanning chunks copies.
func (s *Stream) nextFrame(maxData int) *StreamFrame {
	if maxData <= 0 {
		return nil
	}
	n := s.sendLen
	if n == 0 && !(s.finQueued && !s.finSent) {
		return nil
	}
	if n > maxData {
		n = maxData
	}
	var data []byte
	if n > 0 {
		if head := s.sendChunks[0]; len(head)-s.sendPos >= n {
			data = head[s.sendPos : s.sendPos+n : s.sendPos+n]
			s.sendPos += n
		} else {
			data = make([]byte, 0, n)
			for len(data) < n {
				head := s.sendChunks[0][s.sendPos:]
				take := n - len(data)
				if take > len(head) {
					take = len(head)
				}
				data = append(data, head[:take]...)
				s.sendPos += take
				if s.sendPos == len(s.sendChunks[0]) {
					s.dropHeadChunk()
				}
			}
		}
		s.sendLen -= n
		if len(s.sendChunks) > 0 && s.sendPos == len(s.sendChunks[0]) {
			s.dropHeadChunk()
		}
	}
	f := s.conn.allocFrame()
	f.StreamID = s.id
	f.Offset = s.sendBase
	f.Data = data
	f.Unreliable = s.unreliable
	s.sendBase += uint64(n)
	if s.finQueued && s.sendLen == 0 && !s.finSent {
		f.Fin = true
		s.finSent = true
		s.finOffset = s.sendBase
	}
	return f
}

// dropHeadChunk releases the fully-consumed head chunk. Frames cut from it
// may still alias its bytes; the chunk stays alive through them until the
// last one is acked and freed.
func (s *Stream) dropHeadChunk() {
	s.sendChunks[0] = nil
	s.sendChunks = s.sendChunks[1:]
	s.sendPos = 0
}

// handleData processes an arriving stream frame on the receive side.
func (s *Stream) handleData(f *StreamFrame) {
	if len(f.Data) > 0 {
		start := f.Offset
		end := f.Offset + uint64(len(f.Data))
		// Suppress duplicate delivery: only surface sub-ranges not yet seen.
		gaps := s.received.Gaps(start, end)
		s.received.Add(start, end)
		if s.onData != nil {
			for _, g := range gaps {
				s.onData(g.Start, f.Data[g.Start-start:g.End-start])
			}
		}
	}
	if f.Fin {
		end := f.Offset + uint64(len(f.Data))
		if !s.finalKnown || end > s.finalSize {
			s.finalSize = end
			s.finalKnown = true
		}
	}
	s.maybeFin()
}

// handleLossReport records a permanent hole on an unreliable stream.
func (s *Stream) handleLossReport(f *LossReportFrame) {
	start, end := f.Offset, f.Offset+f.Length
	// Data that actually arrived (e.g. reordered past the report) wins.
	for _, g := range s.received.Gaps(start, end) {
		s.lost.Add(g.Start, g.End)
		if s.onLost != nil {
			s.onLost(g.Start, g.End-g.Start)
		}
	}
	s.maybeFin()
}

// maybeFin fires the fin callback once the stream's fate is fully known.
func (s *Stream) maybeFin() {
	if s.doneFin || !s.finalKnown || s.onFin == nil {
		return
	}
	if !s.fullyAccounted() {
		return
	}
	if chk := s.conn.sim.Checker(); chk.Enabled() && !s.unreliable && s.finalSize > 0 {
		// Reliable delivery must finalize as one contiguous range
		// [0, finalSize): a gap or an overshoot here means retransmission
		// lost or duplicated bytes that the application will never see.
		rs := s.received.Ranges()
		if len(rs) != 1 || rs[0].Start != 0 || rs[0].End != s.finalSize {
			chk.Failf("quic", "quic.reliable-contiguity",
				"stream %d finalized with %d ranges, covered %d of %d bytes",
				s.id, len(rs), s.received.CoveredBytes(), s.finalSize)
		}
	}
	s.doneFin = true
	s.onFin(s.finalSize)
}

// fullyAccounted reports whether every byte up to finalSize is either
// received or (for unreliable streams) reported lost.
func (s *Stream) fullyAccounted() bool {
	if !s.finalKnown {
		return false
	}
	if s.finalSize == 0 {
		return true
	}
	var union RangeSet
	for _, r := range s.received.Ranges() {
		union.Add(r.Start, r.End)
	}
	for _, r := range s.lost.Ranges() {
		union.Add(r.Start, r.End)
	}
	return union.Contains(0, s.finalSize)
}

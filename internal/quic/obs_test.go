package quic

import (
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/obs"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

// TestAckPathAllocFreeTelemetry repeats the steady-state ACK-path
// zero-allocation pin with telemetry ENABLED: the obs scope records into
// flat arrays and a preallocated ring, so instrumentation must not
// reintroduce allocations on the hot path.
func TestAckPathAllocFreeTelemetry(t *testing.T) {
	s := sim.New(5)
	sc := obs.NewScope(func() time.Duration { return time.Duration(s.Now()) }, obs.Options{})
	tr := trace.Constant("bench", 50e6, 3600)
	path := netem.NewPath(s, tr, 64)
	_, c := NewPair(s, path, Config{}, Config{Obs: sc})
	c.rtt.OnSample(60 * time.Millisecond)

	next := fillWindow(c, s, 0, 64)
	acked := uint64(0)
	for i := 0; i < 64; i++ { // warm freelists and scratch
		acked += 2
		c.onAck(&AckFrame{Ranges: []AckRange{{First: 0, Last: acked - 1}}})
		next = fillWindow(c, s, next, 2)
	}
	ack := &AckFrame{Ranges: []AckRange{{First: 0, Last: 0}}}
	allocs := testing.AllocsPerRun(200, func() {
		acked += 2
		ack.Ranges[0] = AckRange{First: 0, Last: acked - 1}
		c.onAck(ack)
		next = fillWindow(c, s, next, 2)
	})
	if allocs > 0.5 {
		t.Fatalf("telemetered ACK path allocates %.1f allocs/op, want 0", allocs)
	}
	if sc.Registry().HistCount(obs.HRTTMs) == 0 {
		t.Fatal("telemetry enabled but no RTT samples recorded")
	}
}

// TestConnTelemetryCounters runs real traffic through a telemetered pair
// and checks the transport counters and close events land in the scope.
func TestConnTelemetryCounters(t *testing.T) {
	s := sim.New(7)
	sc := obs.NewScope(func() time.Duration { return time.Duration(s.Now()) }, obs.Options{})
	tr := trace.Constant("obs", 10e6, 3600)
	path := netem.NewPath(s, tr, 64)
	client, server := NewPair(s, path, Config{Obs: sc}, Config{Obs: sc})

	var got uint64
	client.OnStream(func(st *Stream) {
		st.OnData(func(_ uint64, data []byte) { got += uint64(len(data)) })
	})
	st := server.OpenStream(false)
	payload := make([]byte, 64<<10)
	st.Write(payload)
	st.CloseWrite()
	s.RunUntil(5 * time.Second)

	if got != uint64(len(payload)) {
		t.Fatalf("received %d bytes, want %d", got, len(payload))
	}
	r := sc.Registry()
	if r.Counter(obs.CPacketsSent) == 0 || r.Counter(obs.CPacketsReceived) == 0 {
		t.Fatal("packet counters not recorded")
	}
	if r.Counter(obs.CStreamBytesSent) != uint64(len(payload)) {
		t.Fatalf("stream bytes = %d, want %d", r.Counter(obs.CStreamBytesSent), len(payload))
	}
	if r.Counter(obs.CBytesSent) < r.Counter(obs.CStreamBytesSent) {
		t.Fatal("wire bytes below stream bytes")
	}

	client.Close(nil)
	server.Close(ErrIdleTimeout)
	if r.Counter(obs.CConnCloses) != 2 {
		t.Fatalf("conn closes = %d, want 2", r.Counter(obs.CConnCloses))
	}
	var reasons []int64
	for _, ev := range sc.TrialReport().Events {
		if ev.Kind == obs.EvConnClosed {
			reasons = append(reasons, ev.A)
		}
	}
	if len(reasons) != 2 || reasons[0] != obs.ReasonClosed || reasons[1] != obs.ReasonIdleTimeout {
		t.Fatalf("close reasons = %v, want [%d %d]", reasons, obs.ReasonClosed, obs.ReasonIdleTimeout)
	}
}

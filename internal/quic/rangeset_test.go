package quic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetAddMerge(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if len(s.Ranges()) != 2 {
		t.Fatalf("want 2 ranges, got %v", s.Ranges())
	}
	s.Add(20, 30) // bridges the gap (adjacent merge)
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (ByteRange{10, 40}) {
		t.Fatalf("merge failed: %v", s.Ranges())
	}
	s.Add(5, 15) // overlap left
	if s.Ranges()[0] != (ByteRange{5, 40}) {
		t.Fatalf("left extend failed: %v", s.Ranges())
	}
	s.Add(0, 100) // engulf
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (ByteRange{0, 100}) {
		t.Fatalf("engulf failed: %v", s.Ranges())
	}
}

func TestRangeSetEmptyAdd(t *testing.T) {
	var s RangeSet
	s.Add(5, 5)
	s.Add(7, 3)
	if !s.IsEmpty() {
		t.Fatalf("degenerate adds should be ignored: %v", s.Ranges())
	}
}

func TestRangeSetContains(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 18) {
		t.Fatal("Contains inside range failed")
	}
	if s.Contains(10, 25) || s.Contains(25, 35) || s.Contains(9, 11) {
		t.Fatal("Contains across gap should be false")
	}
	if !s.Contains(15, 15) {
		t.Fatal("empty interval is always contained")
	}
}

func TestRangeSetGaps(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	gaps := s.Gaps(0, 50)
	want := []ByteRange{{0, 10}, {20, 30}, {40, 50}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if g := s.Gaps(12, 18); g != nil {
		t.Fatalf("fully covered interval should have no gaps, got %v", g)
	}
	if g := s.Gaps(22, 28); len(g) != 1 || g[0] != (ByteRange{22, 28}) {
		t.Fatalf("fully uncovered: %v", g)
	}
}

func TestRangeSetContiguousFrom(t *testing.T) {
	var s RangeSet
	s.Add(0, 100)
	s.Add(150, 200)
	if got := s.ContiguousFrom(0); got != 100 {
		t.Fatalf("ContiguousFrom(0) = %d, want 100", got)
	}
	if got := s.ContiguousFrom(100); got != 100 {
		t.Fatalf("ContiguousFrom(100) = %d, want 100 (uncovered)", got)
	}
	if got := s.ContiguousFrom(160); got != 200 {
		t.Fatalf("ContiguousFrom(160) = %d, want 200", got)
	}
}

func TestRangeSetMinMax(t *testing.T) {
	var s RangeSet
	if _, ok := s.Min(); ok {
		t.Fatal("empty set should have no min")
	}
	s.Add(50, 60)
	s.Add(10, 20)
	if mn, _ := s.Min(); mn != 10 {
		t.Fatalf("min = %d", mn)
	}
	if mx, _ := s.Max(); mx != 60 {
		t.Fatalf("max = %d", mx)
	}
}

// Property: RangeSet coverage matches a brute-force bitmap.
func TestPropertyRangeSetMatchesBitmap(t *testing.T) {
	f := func(ops []uint16) bool {
		const universe = 256
		var s RangeSet
		bitmap := make([]bool, universe)
		for _, op := range ops {
			start := uint64(op % universe)
			length := uint64((op >> 8) % 32)
			end := start + length
			if end > universe {
				end = universe
			}
			s.Add(start, end)
			for i := start; i < end; i++ {
				bitmap[i] = true
			}
		}
		// Coverage count must match.
		var want uint64
		for _, b := range bitmap {
			if b {
				want++
			}
		}
		if s.CoveredBytes() != want {
			return false
		}
		// Ranges must be sorted, non-overlapping, non-adjacent.
		rs := s.Ranges()
		for i := range rs {
			if rs[i].End <= rs[i].Start {
				return false
			}
			if i > 0 && rs[i].Start <= rs[i-1].End {
				return false
			}
		}
		// Spot-check Contains against the bitmap.
		for x := uint64(0); x < universe; x += 7 {
			if s.Contains(x, x+1) != bitmap[x] {
				return false
			}
		}
		// Gaps + coverage must partition the universe.
		var gapBytes uint64
		for _, g := range s.Gaps(0, universe) {
			gapBytes += g.Len()
		}
		return gapBytes+s.CoveredBytes() == universe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

package quic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetAddMerge(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if len(s.Ranges()) != 2 {
		t.Fatalf("want 2 ranges, got %v", s.Ranges())
	}
	s.Add(20, 30) // bridges the gap (adjacent merge)
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (ByteRange{10, 40}) {
		t.Fatalf("merge failed: %v", s.Ranges())
	}
	s.Add(5, 15) // overlap left
	if s.Ranges()[0] != (ByteRange{5, 40}) {
		t.Fatalf("left extend failed: %v", s.Ranges())
	}
	s.Add(0, 100) // engulf
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (ByteRange{0, 100}) {
		t.Fatalf("engulf failed: %v", s.Ranges())
	}
}

func TestRangeSetEmptyAdd(t *testing.T) {
	var s RangeSet
	s.Add(5, 5)
	s.Add(7, 3)
	if !s.IsEmpty() {
		t.Fatalf("degenerate adds should be ignored: %v", s.Ranges())
	}
}

func TestRangeSetContains(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 18) {
		t.Fatal("Contains inside range failed")
	}
	if s.Contains(10, 25) || s.Contains(25, 35) || s.Contains(9, 11) {
		t.Fatal("Contains across gap should be false")
	}
	if !s.Contains(15, 15) {
		t.Fatal("empty interval is always contained")
	}
}

func TestRangeSetGaps(t *testing.T) {
	var s RangeSet
	s.Add(10, 20)
	s.Add(30, 40)
	gaps := s.Gaps(0, 50)
	want := []ByteRange{{0, 10}, {20, 30}, {40, 50}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if g := s.Gaps(12, 18); g != nil {
		t.Fatalf("fully covered interval should have no gaps, got %v", g)
	}
	if g := s.Gaps(22, 28); len(g) != 1 || g[0] != (ByteRange{22, 28}) {
		t.Fatalf("fully uncovered: %v", g)
	}
}

func TestRangeSetContiguousFrom(t *testing.T) {
	var s RangeSet
	s.Add(0, 100)
	s.Add(150, 200)
	if got := s.ContiguousFrom(0); got != 100 {
		t.Fatalf("ContiguousFrom(0) = %d, want 100", got)
	}
	if got := s.ContiguousFrom(100); got != 100 {
		t.Fatalf("ContiguousFrom(100) = %d, want 100 (uncovered)", got)
	}
	if got := s.ContiguousFrom(160); got != 200 {
		t.Fatalf("ContiguousFrom(160) = %d, want 200", got)
	}
}

func TestRangeSetMinMax(t *testing.T) {
	var s RangeSet
	if _, ok := s.Min(); ok {
		t.Fatal("empty set should have no min")
	}
	s.Add(50, 60)
	s.Add(10, 20)
	if mn, _ := s.Min(); mn != 10 {
		t.Fatalf("min = %d", mn)
	}
	if mx, _ := s.Max(); mx != 60 {
		t.Fatalf("max = %d", mx)
	}
}

func TestRangeSetMiddleInsertAndMerge(t *testing.T) {
	build := func() *RangeSet {
		var s RangeSet
		s.Add(10, 20)
		s.Add(30, 40)
		s.Add(50, 60)
		return &s
	}
	s := build()
	s.Add(22, 28) // pure insert between existing ranges
	want := []ByteRange{{10, 20}, {22, 28}, {30, 40}, {50, 60}}
	if got := s.Ranges(); len(got) != 4 || got[1] != want[1] {
		t.Fatalf("middle insert: %v, want %v", got, want)
	}
	s = build()
	s.Add(25, 30) // right-adjacent to {30,40}
	if got := s.Ranges(); len(got) != 3 || got[1] != (ByteRange{25, 40}) {
		t.Fatalf("adjacent merge: %v", got)
	}
	s = build()
	s.Add(15, 55) // spans all three
	if got := s.Ranges(); len(got) != 1 || got[0] != (ByteRange{10, 60}) {
		t.Fatalf("spanning merge: %v", got)
	}
}

func TestRangeSetAdjacencyAtMaxOffset(t *testing.T) {
	const max = ^uint64(0)
	var s RangeSet
	s.Add(max-10, max)
	s.Add(100, max-10) // adjacent at max-10: must merge without overflow
	if got := s.Ranges(); len(got) != 1 || got[0] != (ByteRange{100, max}) {
		t.Fatalf("adjacency at max offset: %v", got)
	}
	if !s.Contains(max-1, max) {
		t.Fatal("top byte not covered")
	}
	s.Add(0, 50)
	if got := s.Ranges(); len(got) != 2 || got[0] != (ByteRange{0, 50}) {
		t.Fatalf("low insert below max range: %v", got)
	}
}

func TestRangeSetInsertAtFullCapacity(t *testing.T) {
	// Grow the backing array to exactly full occupancy, then force middle
	// insertions that must open a slot while append reallocates.
	var s RangeSet
	for i := uint64(0); i < 64; i++ {
		s.Add(i*10, i*10+4) // disjoint, non-adjacent
	}
	for cap(s.ranges) != len(s.ranges) {
		n := uint64(len(s.ranges))
		s.Add(n*10, n*10+4)
	}
	before := len(s.ranges)
	s.Add(5, 8) // between {0,4} and {10,14}
	if len(s.ranges) != before+1 {
		t.Fatalf("len = %d, want %d", len(s.ranges), before+1)
	}
	if s.ranges[1] != (ByteRange{5, 8}) || s.ranges[0] != (ByteRange{0, 4}) || s.ranges[2] != (ByteRange{10, 14}) {
		t.Fatalf("neighborhood after full-capacity insert: %v", s.ranges[:3])
	}
	for i := 3; i < len(s.ranges); i++ {
		if s.ranges[i].Start <= s.ranges[i-1].End {
			t.Fatalf("tail corrupted at %d: %v", i, s.ranges[i-1:i+1])
		}
	}
}

// Property: RangeSet coverage matches a brute-force bitmap.
func TestPropertyRangeSetMatchesBitmap(t *testing.T) {
	f := func(ops []uint16) bool {
		const universe = 256
		var s RangeSet
		bitmap := make([]bool, universe)
		for _, op := range ops {
			start := uint64(op % universe)
			length := uint64((op >> 8) % 32)
			end := start + length
			if end > universe {
				end = universe
			}
			s.Add(start, end)
			for i := start; i < end; i++ {
				bitmap[i] = true
			}
		}
		// Coverage count must match.
		var want uint64
		for _, b := range bitmap {
			if b {
				want++
			}
		}
		if s.CoveredBytes() != want {
			return false
		}
		// Ranges must be sorted, non-overlapping, non-adjacent.
		rs := s.Ranges()
		for i := range rs {
			if rs[i].End <= rs[i].Start {
				return false
			}
			if i > 0 && rs[i].Start <= rs[i-1].End {
				return false
			}
		}
		// Spot-check Contains against the bitmap.
		for x := uint64(0); x < universe; x += 7 {
			if s.Contains(x, x+1) != bitmap[x] {
				return false
			}
		}
		// Gaps + coverage must partition the universe.
		var gapBytes uint64
		for _, g := range s.Gaps(0, universe) {
			gapBytes += g.Len()
		}
		return gapBytes+s.CoveredBytes() == universe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

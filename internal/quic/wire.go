// Package quic implements QUIC*, the paper's partially reliable QUIC
// variant (§4.2): next to ordinary reliable streams it offers unreliable
// streams whose data is congestion- and flow-controlled but never
// retransmitted by the transport. Loss on unreliable streams is detected by
// the sender's ACK machinery and reported to the receiving application
// through a reliable LOSS_REPORT frame, giving the client the "precise
// knowledge about the losses" §4.2 relies on. Packets and frames use a real
// QUIC-style varint wire encoding.
package quic

import (
	"errors"
	"fmt"
)

// Varint encoding per RFC 9000 §16: the two most significant bits of the
// first byte encode the length (1, 2, 4, or 8 bytes).

const (
	maxVarint1 = 63
	maxVarint2 = 16383
	maxVarint4 = 1073741823
	maxVarint8 = 4611686018427387903
)

var errVarint = errors.New("quic: malformed varint")

// appendVarint appends the QUIC varint encoding of v to b.
func appendVarint(b []byte, v uint64) []byte {
	switch {
	case v <= maxVarint1:
		return append(b, byte(v))
	case v <= maxVarint2:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v <= maxVarint4:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	case v <= maxVarint8:
		return append(b, byte(v>>56)|0xC0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic(fmt.Sprintf("quic: varint overflow: %d", v))
	}
}

// consumeVarint decodes a varint from the front of b, returning the value
// and the remaining bytes.
func consumeVarint(b []byte) (uint64, []byte, error) {
	if len(b) == 0 {
		return 0, nil, errVarint
	}
	length := 1 << (b[0] >> 6)
	if len(b) < length {
		return 0, nil, errVarint
	}
	v := uint64(b[0] & 0x3F)
	for i := 1; i < length; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, b[length:], nil
}

func varintLen(v uint64) int {
	switch {
	case v <= maxVarint1:
		return 1
	case v <= maxVarint2:
		return 2
	case v <= maxVarint4:
		return 4
	default:
		return 8
	}
}

// Frame types. STREAM and USTREAM carry an explicit length and offset; FIN
// is a flag bit on the type byte, as in RFC 9000.
const (
	frameTypePing       = 0x01
	frameTypeAck        = 0x02
	frameTypeMaxData    = 0x10
	frameTypeStream     = 0x08 // reliable stream data; 0x09 with FIN
	frameTypeUStream    = 0x30 // unreliable stream data; 0x31 with FIN
	frameTypeLossReport = 0x38 // sender → receiver: unreliable range lost for good
	finBit              = 0x01
)

// Frame is one QUIC* frame.
type Frame interface {
	// appendTo appends the wire encoding.
	appendTo(b []byte) []byte
	// wireSize returns the encoded size in bytes.
	wireSize() int
	// ackEliciting reports whether the frame must be acknowledged.
	ackEliciting() bool
}

// PingFrame elicits an ACK; used as a PTO probe.
type PingFrame struct{}

func (PingFrame) appendTo(b []byte) []byte { return append(b, frameTypePing) }
func (PingFrame) wireSize() int            { return 1 }
func (PingFrame) ackEliciting() bool       { return true }

// AckRange is a closed interval of acknowledged packet numbers.
type AckRange struct {
	First, Last uint64 // inclusive, First <= Last
}

// AckFrame acknowledges ranges of packet numbers. Ranges are ordered
// descending by packet number, largest first, as in RFC 9000.
type AckFrame struct {
	Ranges []AckRange
}

// Largest returns the largest acknowledged packet number.
func (f *AckFrame) Largest() uint64 {
	if len(f.Ranges) == 0 {
		return 0
	}
	return f.Ranges[0].Last
}

func (f *AckFrame) appendTo(b []byte) []byte {
	b = append(b, frameTypeAck)
	b = appendVarint(b, uint64(len(f.Ranges)))
	for _, r := range f.Ranges {
		b = appendVarint(b, r.First)
		b = appendVarint(b, r.Last)
	}
	return b
}

func (f *AckFrame) wireSize() int {
	n := 1 + varintLen(uint64(len(f.Ranges)))
	for _, r := range f.Ranges {
		n += varintLen(r.First) + varintLen(r.Last)
	}
	return n
}

func (f *AckFrame) ackEliciting() bool { return false }

// MaxDataFrame raises the connection-level flow-control limit.
type MaxDataFrame struct {
	Max uint64
}

func (f *MaxDataFrame) appendTo(b []byte) []byte {
	b = append(b, frameTypeMaxData)
	return appendVarint(b, f.Max)
}
func (f *MaxDataFrame) wireSize() int      { return 1 + varintLen(f.Max) }
func (f *MaxDataFrame) ackEliciting() bool { return true }

// StreamFrame carries stream data. Unreliable reports whether it was sent
// on an unreliable stream (USTREAM wire type); such frames are never
// retransmitted.
type StreamFrame struct {
	StreamID   uint64
	Offset     uint64
	Data       []byte
	Fin        bool
	Unreliable bool
}

func (f *StreamFrame) appendTo(b []byte) []byte {
	t := byte(frameTypeStream)
	if f.Unreliable {
		t = frameTypeUStream
	}
	if f.Fin {
		t |= finBit
	}
	b = append(b, t)
	b = appendVarint(b, f.StreamID)
	b = appendVarint(b, f.Offset)
	b = appendVarint(b, uint64(len(f.Data)))
	return append(b, f.Data...)
}

func (f *StreamFrame) wireSize() int {
	return 1 + varintLen(f.StreamID) + varintLen(f.Offset) +
		varintLen(uint64(len(f.Data))) + len(f.Data)
}

func (f *StreamFrame) ackEliciting() bool { return true }

// streamFrameOverhead bounds the header size of a stream frame, used when
// packing packets.
func streamFrameOverhead(streamID, offset uint64, maxLen int) int {
	return 1 + varintLen(streamID) + varintLen(offset) + varintLen(uint64(maxLen))
}

// LossReportFrame tells the receiver that [Offset, Offset+Length) of an
// unreliable stream was lost and will not be retransmitted by the
// transport. It is itself delivered reliably.
type LossReportFrame struct {
	StreamID uint64
	Offset   uint64
	Length   uint64
}

func (f *LossReportFrame) appendTo(b []byte) []byte {
	b = append(b, frameTypeLossReport)
	b = appendVarint(b, f.StreamID)
	b = appendVarint(b, f.Offset)
	return appendVarint(b, f.Length)
}

func (f *LossReportFrame) wireSize() int {
	return 1 + varintLen(f.StreamID) + varintLen(f.Offset) + varintLen(f.Length)
}

func (f *LossReportFrame) ackEliciting() bool { return true }

// walkFrames validates the wire encoding of a packet payload without
// allocating and reports whether any frame is ack-eliciting. It accepts
// exactly the payloads parseFrames accepts; the connection's receive path
// uses it to validate a whole packet up front (so corrupt packets are
// dropped atomically, as with DecodePacket) before dispatching frames from
// the wire bytes in place.
func walkFrames(b []byte) (ackEliciting bool, err error) {
	for len(b) > 0 {
		t := b[0]
		switch {
		case t == frameTypePing:
			ackEliciting = true
			b = b[1:]
		case t == frameTypeAck:
			rest := b[1:]
			var n uint64
			n, rest, err = consumeVarint(rest)
			if err != nil {
				return false, err
			}
			for i := uint64(0); i < n; i++ {
				var first, last uint64
				first, rest, err = consumeVarint(rest)
				if err != nil {
					return false, err
				}
				last, rest, err = consumeVarint(rest)
				if err != nil {
					return false, err
				}
				if first > last {
					return false, fmt.Errorf("quic: invalid ack range %d..%d", first, last)
				}
			}
			b = rest
		case t == frameTypeMaxData:
			ackEliciting = true
			_, rest, err := consumeVarint(b[1:])
			if err != nil {
				return false, err
			}
			b = rest
		case t&^finBit == frameTypeStream || t&^finBit == frameTypeUStream:
			ackEliciting = true
			rest := b[1:]
			var length uint64
			for k := 0; k < 3; k++ { // stream ID, offset, length
				length, rest, err = consumeVarint(rest)
				if err != nil {
					return false, err
				}
			}
			if uint64(len(rest)) < length {
				return false, errors.New("quic: truncated stream frame")
			}
			b = rest[length:]
		case t == frameTypeLossReport:
			ackEliciting = true
			rest := b[1:]
			for k := 0; k < 3; k++ { // stream ID, offset, length
				var err2 error
				_, rest, err2 = consumeVarint(rest)
				if err2 != nil {
					return false, err2
				}
			}
			b = rest
		default:
			return false, fmt.Errorf("quic: unknown frame type 0x%02x", t)
		}
	}
	return ackEliciting, nil
}

// parseFrames decodes the payload of a packet.
func parseFrames(b []byte) ([]Frame, error) {
	var frames []Frame
	for len(b) > 0 {
		t := b[0]
		switch {
		case t == frameTypePing:
			frames = append(frames, PingFrame{})
			b = b[1:]
		case t == frameTypeAck:
			rest := b[1:]
			var n uint64
			var err error
			n, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			f := &AckFrame{Ranges: make([]AckRange, 0, n)}
			for i := uint64(0); i < n; i++ {
				var first, last uint64
				first, rest, err = consumeVarint(rest)
				if err != nil {
					return nil, err
				}
				last, rest, err = consumeVarint(rest)
				if err != nil {
					return nil, err
				}
				if first > last {
					return nil, fmt.Errorf("quic: invalid ack range %d..%d", first, last)
				}
				f.Ranges = append(f.Ranges, AckRange{First: first, Last: last})
			}
			frames = append(frames, f)
			b = rest
		case t == frameTypeMaxData:
			v, rest, err := consumeVarint(b[1:])
			if err != nil {
				return nil, err
			}
			frames = append(frames, &MaxDataFrame{Max: v})
			b = rest
		case t&^finBit == frameTypeStream || t&^finBit == frameTypeUStream:
			rest := b[1:]
			var id, off, length uint64
			var err error
			id, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			off, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			length, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			if uint64(len(rest)) < length {
				return nil, errors.New("quic: truncated stream frame")
			}
			data := make([]byte, length)
			copy(data, rest[:length])
			frames = append(frames, &StreamFrame{
				StreamID:   id,
				Offset:     off,
				Data:       data,
				Fin:        t&finBit != 0,
				Unreliable: t&^finBit == frameTypeUStream,
			})
			b = rest[length:]
		case t == frameTypeLossReport:
			rest := b[1:]
			var id, off, length uint64
			var err error
			id, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			off, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			length, rest, err = consumeVarint(rest)
			if err != nil {
				return nil, err
			}
			frames = append(frames, &LossReportFrame{StreamID: id, Offset: off, Length: length})
			b = rest
		default:
			return nil, fmt.Errorf("quic: unknown frame type 0x%02x", t)
		}
	}
	return frames, nil
}

// Packet is one QUIC* packet: a packet number followed by frames.
type Packet struct {
	Number uint64
	Frames []Frame
}

// packetHeaderByte marks a short-header 1-RTT packet.
const packetHeaderByte = 0x40

// Encode serializes the packet into a fresh buffer.
func (p *Packet) Encode() []byte {
	return p.AppendTo(make([]byte, 0, p.WireSize()))
}

// AppendTo appends the packet's wire encoding to b and returns the extended
// slice. The transport's hot path uses it with per-connection scratch
// buffers so steady-state sending does not allocate.
func (p *Packet) AppendTo(b []byte) []byte {
	b = append(b, packetHeaderByte)
	b = appendVarint(b, p.Number)
	for _, f := range p.Frames {
		b = f.appendTo(b)
	}
	return b
}

// WireSize returns the encoded size in bytes.
func (p *Packet) WireSize() int {
	n := 1 + varintLen(p.Number)
	for _, f := range p.Frames {
		n += f.wireSize()
	}
	return n
}

// AckEliciting reports whether any frame in the packet elicits an ACK.
func (p *Packet) AckEliciting() bool {
	for _, f := range p.Frames {
		if f.ackEliciting() {
			return true
		}
	}
	return false
}

// DecodePacket parses an encoded packet.
func DecodePacket(b []byte) (*Packet, error) {
	if len(b) == 0 || b[0] != packetHeaderByte {
		return nil, errors.New("quic: bad packet header")
	}
	pn, rest, err := consumeVarint(b[1:])
	if err != nil {
		return nil, err
	}
	frames, err := parseFrames(rest)
	if err != nil {
		return nil, err
	}
	return &Packet{Number: pn, Frames: frames}, nil
}

package quic

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 63, 64, 16383, 16384, 1073741823, 1073741824, maxVarint8}
	for _, v := range cases {
		b := appendVarint(nil, v)
		got, rest, err := consumeVarint(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("roundtrip(%d) = %d, rest=%d, err=%v", v, got, len(rest), err)
		}
		if len(b) != varintLen(v) {
			t.Errorf("varintLen(%d) = %d, encoded %d", v, varintLen(v), len(b))
		}
	}
}

func TestVarintBoundaryLengths(t *testing.T) {
	if l := len(appendVarint(nil, 63)); l != 1 {
		t.Errorf("63 should encode in 1 byte, got %d", l)
	}
	if l := len(appendVarint(nil, 64)); l != 2 {
		t.Errorf("64 should encode in 2 bytes, got %d", l)
	}
	if l := len(appendVarint(nil, 16384)); l != 4 {
		t.Errorf("16384 should encode in 4 bytes, got %d", l)
	}
	if l := len(appendVarint(nil, 1073741824)); l != 8 {
		t.Errorf("2^30 should encode in 8 bytes, got %d", l)
	}
}

func TestVarintTruncated(t *testing.T) {
	b := appendVarint(nil, 100000)
	for i := 0; i < len(b); i++ {
		if _, _, err := consumeVarint(b[:i]); err == nil {
			t.Errorf("truncated varint of %d bytes decoded without error", i)
		}
	}
}

func TestPropertyVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v %= maxVarint8
		b := appendVarint(nil, v)
		got, rest, err := consumeVarint(b)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func framesEqual(a, b []Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestPacketRoundTrip(t *testing.T) {
	pkt := &Packet{
		Number: 7777,
		Frames: []Frame{
			&AckFrame{Ranges: []AckRange{{First: 10, Last: 20}, {First: 1, Last: 5}}},
			&StreamFrame{StreamID: 4, Offset: 123456, Data: []byte("hello world"), Fin: true},
			&StreamFrame{StreamID: 3, Offset: 0, Data: []byte{1, 2, 3}, Unreliable: true},
			&LossReportFrame{StreamID: 3, Offset: 99, Length: 1000},
			&MaxDataFrame{Max: 1 << 24},
			PingFrame{},
		},
	}
	enc := pkt.Encode()
	if len(enc) != pkt.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d", pkt.WireSize(), len(enc))
	}
	dec, err := DecodePacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Number != pkt.Number {
		t.Fatalf("pn = %d, want %d", dec.Number, pkt.Number)
	}
	if !framesEqual(dec.Frames, pkt.Frames) {
		t.Fatalf("frames mismatch:\n got %#v\nwant %#v", dec.Frames, pkt.Frames)
	}
}

func TestEmptyDataStreamFrameRoundTrip(t *testing.T) {
	pkt := &Packet{Number: 1, Frames: []Frame{
		&StreamFrame{StreamID: 2, Offset: 500, Fin: true, Unreliable: true},
	}}
	dec, err := DecodePacket(pkt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sf := dec.Frames[0].(*StreamFrame)
	if !sf.Fin || !sf.Unreliable || sf.Offset != 500 || len(sf.Data) != 0 {
		t.Fatalf("bad decode: %#v", sf)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},                   // wrong header byte
		{packetHeaderByte},       // missing pn
		{packetHeaderByte, 0, 0xFF},    // unknown frame type
		{packetHeaderByte, 0, frameTypeStream, 0, 0, 5, 1, 2}, // truncated stream data
		{packetHeaderByte, 0, frameTypeAck, 1, 5, 2},          // first > last ack range
	}
	for i, b := range cases {
		if _, err := DecodePacket(b); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestAckEliciting(t *testing.T) {
	ackOnly := &Packet{Number: 1, Frames: []Frame{&AckFrame{Ranges: []AckRange{{0, 0}}}}}
	if ackOnly.AckEliciting() {
		t.Fatal("ACK-only packet should not be ack-eliciting")
	}
	withData := &Packet{Number: 2, Frames: []Frame{
		&AckFrame{Ranges: []AckRange{{0, 0}}},
		&StreamFrame{StreamID: 0, Data: []byte("x")},
	}}
	if !withData.AckEliciting() {
		t.Fatal("packet with stream data should be ack-eliciting")
	}
}

func TestPropertyStreamFrameRoundTrip(t *testing.T) {
	f := func(id, off uint32, data []byte, fin, unrel bool) bool {
		fr := &StreamFrame{StreamID: uint64(id), Offset: uint64(off), Data: data, Fin: fin, Unreliable: unrel}
		pkt := &Packet{Number: uint64(id) + 1, Frames: []Frame{fr}}
		dec, err := DecodePacket(pkt.Encode())
		if err != nil {
			return false
		}
		got := dec.Frames[0].(*StreamFrame)
		return got.StreamID == fr.StreamID && got.Offset == fr.Offset &&
			bytes.Equal(got.Data, fr.Data) && got.Fin == fr.Fin && got.Unreliable == fr.Unreliable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAckFrameRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%10) + 1
		fr := &AckFrame{}
		base := uint64(rng.Intn(1000000))
		for i := 0; i < count; i++ {
			first := base + uint64(rng.Intn(100))
			last := first + uint64(rng.Intn(100))
			fr.Ranges = append(fr.Ranges, AckRange{First: first, Last: last})
			base = last + 2
		}
		pkt := &Packet{Number: 9, Frames: []Frame{fr}}
		dec, err := DecodePacket(pkt.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec.Frames[0], fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

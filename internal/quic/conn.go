package quic

import (
	"sort"
	"time"

	"voxel/internal/cc"
	"voxel/internal/netem"
	"voxel/internal/sim"
)

// Config parameterizes a QUIC* connection.
type Config struct {
	// MTU is the maximum QUIC packet size (before per-packet overhead).
	MTU int
	// Overhead is the per-packet on-wire overhead (UDP+IP headers).
	Overhead int
	// InitialMaxData is the connection flow-control window granted to the
	// peer.
	InitialMaxData uint64
	// DisablePacing turns off packet pacing (bursts the full window).
	DisablePacing bool
	// Controller overrides the congestion controller (default CUBIC).
	Controller cc.Controller
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = cc.MSS
	}
	if c.Overhead == 0 {
		c.Overhead = 28
	}
	if c.InitialMaxData == 0 {
		c.InitialMaxData = 16 << 20
	}
	if c.Controller == nil {
		c.Controller = cc.NewCubic()
	}
	return c
}

// Stats counts transport-level activity for the experiment harness.
type Stats struct {
	PacketsSent       uint64
	PacketsReceived   uint64
	PacketsDeclLost   uint64
	BytesSent         uint64 // QUIC payload bytes incl. headers
	StreamBytesSent   uint64 // new stream payload bytes
	RetransmitBytes   uint64 // reliable stream bytes retransmitted
	UnreliableLost    uint64 // unreliable stream bytes reported lost
	UnreliableRewrite uint64 // bytes re-sent via WriteAt (selective retx)
	PTOCount          uint64
}

type sentPacket struct {
	pn           uint64
	size         int // wire size incl. overhead, for cc accounting
	sentAt       sim.Time
	ackEliciting bool
	streamFrames []*StreamFrame
	ctrlFrames   []Frame
	probe        bool
}

type rewrite struct {
	stream *Stream
	offset uint64
	data   []byte
}

// Conn is one endpoint of a QUIC* connection running inside the simulator.
type Conn struct {
	sim   *sim.Sim
	cfg   Config
	link  *netem.Link // direction toward the peer
	peer  *Conn
	ctl   cc.Controller
	rtt   cc.RTTEstimator
	stats Stats

	// packet number spaces
	nextPN        uint64
	sent          map[uint64]*sentPacket
	largestAcked  uint64
	anyAcked      bool
	recoveryStart sim.Time
	ptoTimer      *sim.Timer
	ptoCount      int
	lastAckElic   sim.Time

	// receiving
	recvdPNs     RangeSet
	ackPending   bool
	ackElicCount int
	ackTimer     *sim.Timer

	// streams
	streams      map[uint64]*Stream
	nextStreamID uint64
	onStream     func(*Stream)
	active       []*Stream // streams with pending new data, FIFO

	// frame queues
	ctrlQ      []Frame
	retransmit []*StreamFrame
	rewrites   []rewrite

	// flow control
	sendLimit    uint64 // peer's MAX_DATA
	sentData     uint64 // new stream payload bytes sent
	recvLimit    uint64 // what we advertised
	recvData     uint64 // stream payload bytes received (new bytes)
	sendBlockedF bool

	// pacing
	paceTimer  *sim.Timer
	nextSendAt sim.Time
	sendArmed  bool
}

// NewPair creates a connected client/server pair over the path. The client
// transmits on path.Up and the server on path.Down (the shaped bottleneck).
func NewPair(s *sim.Sim, path *netem.Path, clientCfg, serverCfg Config) (client, server *Conn) {
	client = newConn(s, path.Up, clientCfg, true)
	server = newConn(s, path.Down, serverCfg, false)
	client.peer = server
	server.peer = client
	client.sendLimit = server.cfg.InitialMaxData
	server.sendLimit = client.cfg.InitialMaxData
	return client, server
}

func newConn(s *sim.Sim, link *netem.Link, cfg Config, isClient bool) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		sim:       s,
		cfg:       cfg,
		link:      link,
		ctl:       cfg.Controller,
		sent:      make(map[uint64]*sentPacket),
		streams:   make(map[uint64]*Stream),
		recvLimit: cfg.InitialMaxData,
	}
	if isClient {
		c.nextStreamID = 0
	} else {
		c.nextStreamID = 1
	}
	c.ptoTimer = sim.NewTimer(s, c.onPTO)
	c.ackTimer = sim.NewTimer(s, func() { c.sendAckNow() })
	c.paceTimer = sim.NewTimer(s, func() {
		c.sendArmed = false
		c.trySend()
	})
	return c
}

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// RTT returns the connection's RTT estimator.
func (c *Conn) RTT() *cc.RTTEstimator { return &c.rtt }

// Controller exposes the congestion controller (read-only use).
func (c *Conn) Controller() cc.Controller { return c.ctl }

// OnStream registers the callback invoked when the peer opens a stream.
func (c *Conn) OnStream(fn func(*Stream)) { c.onStream = fn }

// OpenStream opens a new locally initiated stream.
func (c *Conn) OpenStream(unreliable bool) *Stream {
	s := &Stream{conn: c, id: c.nextStreamID, unreliable: unreliable}
	c.nextStreamID += 2
	c.streams[s.id] = s
	return s
}

func (c *Conn) markActive(s *Stream) {
	for _, a := range c.active {
		if a == s {
			c.trySend()
			return
		}
	}
	c.active = append(c.active, s)
	c.trySend()
}

func (c *Conn) queueUnreliableRewrite(s *Stream, offset uint64, data []byte) {
	c.rewrites = append(c.rewrites, rewrite{stream: s, offset: offset, data: data})
	c.trySend()
}

// --- send path ---

// trySend drains as much pending data as congestion control and pacing
// allow, then arms the pacing timer if blocked on time.
func (c *Conn) trySend() {
	for {
		if !c.hasPending() {
			return
		}
		now := c.sim.Now()
		if !c.cfg.DisablePacing && c.nextSendAt > now && c.hasAckElicitingPending() {
			if !c.sendArmed {
				c.sendArmed = true
				c.paceTimer.ArmAt(c.nextSendAt)
			}
			// ACK-only packets are not paced.
			if c.ackPending && c.ackElicCount >= 2 {
				c.sendAckNow()
			}
			return
		}
		if !c.sendOnePacket() {
			return
		}
	}
}

func (c *Conn) hasPending() bool {
	return c.ackPending || c.hasAckElicitingPending()
}

func (c *Conn) hasAckElicitingPending() bool {
	if len(c.ctrlQ) > 0 || len(c.retransmit) > 0 || len(c.rewrites) > 0 {
		return true
	}
	for _, s := range c.active {
		if s.pendingSendBytes() > 0 {
			return true
		}
	}
	return false
}

// sendOnePacket assembles and transmits one packet; it returns false when
// nothing was sent (no data, or blocked by congestion control).
func (c *Conn) sendOnePacket() bool {
	now := c.sim.Now()
	canSendData := c.ctl.CanSend(c.cfg.MTU)
	budget := c.cfg.MTU - 1 - 8 // header byte + worst-case packet number

	var frames []Frame
	sp := &sentPacket{pn: c.nextPN, sentAt: now}

	if c.ackPending {
		ack := c.buildAck()
		if ack.wireSize() <= budget {
			frames = append(frames, ack)
			budget -= ack.wireSize()
			c.clearAckState()
		}
	}

	if canSendData {
		// Control frames (MAX_DATA, LOSS_REPORT): reliable, requeued on loss.
		for len(c.ctrlQ) > 0 && c.ctrlQ[0].wireSize() <= budget {
			f := c.ctrlQ[0]
			c.ctrlQ = c.ctrlQ[1:]
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.ctrlFrames = append(sp.ctrlFrames, f)
		}
		// Retransmissions of reliable stream data.
		for len(c.retransmit) > 0 && budget > 64 {
			f := c.retransmit[0]
			hdr := streamFrameOverhead(f.StreamID, f.Offset, len(f.Data))
			if hdr+len(f.Data) <= budget {
				c.retransmit = c.retransmit[1:]
				frames = append(frames, f)
				budget -= f.wireSize()
				sp.streamFrames = append(sp.streamFrames, f)
				c.stats.RetransmitBytes += uint64(len(f.Data))
			} else {
				// Split: send a prefix now, keep the suffix queued.
				avail := budget - hdr
				if avail <= 0 {
					break
				}
				head := &StreamFrame{StreamID: f.StreamID, Offset: f.Offset,
					Data: f.Data[:avail], Unreliable: f.Unreliable}
				f.Offset += uint64(avail)
				f.Data = f.Data[avail:]
				frames = append(frames, head)
				budget -= head.wireSize()
				sp.streamFrames = append(sp.streamFrames, head)
				c.stats.RetransmitBytes += uint64(len(head.Data))
			}
		}
		// Application-level rewrites on unreliable streams (selective retx).
		for len(c.rewrites) > 0 && budget > 64 {
			rw := &c.rewrites[0]
			hdr := streamFrameOverhead(rw.stream.id, rw.offset, len(rw.data))
			n := len(rw.data)
			if hdr+n > budget {
				n = budget - hdr
			}
			if n <= 0 {
				break
			}
			f := &StreamFrame{StreamID: rw.stream.id, Offset: rw.offset,
				Data: rw.data[:n], Unreliable: true}
			rw.offset += uint64(n)
			rw.data = rw.data[n:]
			if len(rw.data) == 0 {
				c.rewrites = c.rewrites[1:]
			}
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.streamFrames = append(sp.streamFrames, f)
			c.stats.UnreliableRewrite += uint64(len(f.Data))
		}
		// New stream data, FIFO across active streams.
		for len(c.active) > 0 && budget > 64 {
			s := c.active[0]
			if s.pendingSendBytes() == 0 {
				c.active = c.active[1:]
				continue
			}
			if c.sentData >= c.sendLimit {
				break // connection flow control blocked
			}
			maxData := budget - streamFrameOverhead(s.id, s.sendBase, budget)
			if fc := int(c.sendLimit - c.sentData); maxData > fc {
				maxData = fc
			}
			f := s.nextFrame(maxData)
			if f == nil {
				break
			}
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.streamFrames = append(sp.streamFrames, f)
			c.sentData += uint64(len(f.Data))
			c.stats.StreamBytesSent += uint64(len(f.Data))
		}
	}

	if len(frames) == 0 {
		return false
	}

	pkt := &Packet{Number: c.nextPN, Frames: frames}
	c.nextPN++
	encoded := pkt.Encode()
	wireSize := len(encoded) + c.cfg.Overhead
	sp.size = wireSize
	sp.ackEliciting = pkt.AckEliciting()

	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(len(encoded))

	if sp.ackEliciting {
		c.sent[sp.pn] = sp
		c.ctl.OnPacketSent(now, wireSize)
		c.lastAckElic = now
		c.armPTO()
		// Pacing: space packets at ~1.25× the window rate.
		if !c.cfg.DisablePacing {
			rate := 1.25 * float64(c.ctl.Window()) / c.rtt.SmoothedRTT().Seconds()
			gap := sim.Time(float64(wireSize) / rate * float64(time.Second))
			base := c.nextSendAt
			if base < now {
				base = now
			}
			c.nextSendAt = base + gap
		}
	}

	peer := c.peer
	c.link.Send(netem.Datagram{Size: wireSize, Deliver: func() {
		peer.receive(encoded)
	}})
	return true
}

func (c *Conn) buildAck() *AckFrame {
	rs := c.recvdPNs.Ranges()
	f := &AckFrame{}
	// Largest-first, capped at 32 ranges.
	for i := len(rs) - 1; i >= 0 && len(f.Ranges) < 32; i-- {
		f.Ranges = append(f.Ranges, AckRange{First: rs[i].Start, Last: rs[i].End - 1})
	}
	return f
}

func (c *Conn) clearAckState() {
	c.ackPending = false
	c.ackElicCount = 0
	c.ackTimer.Stop()
}

func (c *Conn) sendAckNow() {
	if !c.ackPending {
		return
	}
	ack := c.buildAck()
	pkt := &Packet{Number: c.nextPN, Frames: []Frame{ack}}
	c.nextPN++
	c.clearAckState()
	encoded := pkt.Encode()
	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(len(encoded))
	peer := c.peer
	c.link.Send(netem.Datagram{Size: len(encoded) + c.cfg.Overhead, Deliver: func() {
		peer.receive(encoded)
	}})
}

// --- receive path ---

func (c *Conn) receive(encoded []byte) {
	pkt, err := DecodePacket(encoded)
	if err != nil {
		return // corrupt packets are dropped
	}
	c.stats.PacketsReceived++
	c.recvdPNs.Add(pkt.Number, pkt.Number+1)

	for _, f := range pkt.Frames {
		switch f := f.(type) {
		case *AckFrame:
			c.onAck(f)
		case *StreamFrame:
			c.onStreamFrame(f)
		case *LossReportFrame:
			if s := c.streams[f.StreamID]; s != nil {
				s.handleLossReport(f)
			}
		case *MaxDataFrame:
			if f.Max > c.sendLimit {
				c.sendLimit = f.Max
			}
		case PingFrame:
			// ack-eliciting only
		}
	}

	if pkt.AckEliciting() {
		c.ackPending = true
		c.ackElicCount++
		if c.ackElicCount >= 2 {
			c.sendAckNow()
		} else if !c.ackTimer.Armed() {
			c.ackTimer.Arm(25 * time.Millisecond)
		}
	}
	c.trySend()
}

func (c *Conn) onStreamFrame(f *StreamFrame) {
	s := c.streams[f.StreamID]
	if s == nil {
		// Peer-initiated stream: register it and notify the application
		// before delivering data so callbacks are in place.
		s = &Stream{conn: c, id: f.StreamID, unreliable: f.Unreliable}
		c.streams[f.StreamID] = s
		if c.onStream != nil {
			c.onStream(s)
		}
	}
	before := s.received.CoveredBytes()
	s.handleData(f)
	newBytes := s.received.CoveredBytes() - before
	c.recvData += newBytes
	// Replenish connection flow control once half the window is consumed.
	if c.recvLimit-c.recvData < c.cfg.InitialMaxData/2 {
		c.recvLimit = c.recvData + c.cfg.InitialMaxData
		c.ctrlQ = append(c.ctrlQ, &MaxDataFrame{Max: c.recvLimit})
	}
}

func (c *Conn) onAck(f *AckFrame) {
	now := c.sim.Now()
	if len(f.Ranges) == 0 {
		return
	}
	largest := f.Largest()
	if !c.anyAcked || largest > c.largestAcked {
		c.largestAcked = largest
		c.anyAcked = true
	}

	// Collect acked packet numbers. ACK ranges cover the receiver's whole
	// history (typically one huge contiguous range), so when a range spans
	// far more than the in-flight set, scan the set instead of the range.
	var ackedPNs []uint64
	for _, r := range f.Ranges {
		if r.Last-r.First > uint64(2*len(c.sent)+16) {
			for pn := range c.sent {
				if pn >= r.First && pn <= r.Last {
					ackedPNs = append(ackedPNs, pn)
				}
			}
		} else {
			for pn := r.First; pn <= r.Last; pn++ {
				if _, ok := c.sent[pn]; ok {
					ackedPNs = append(ackedPNs, pn)
				}
			}
		}
	}
	// Deterministic processing order regardless of map iteration.
	sort.Slice(ackedPNs, func(i, j int) bool { return ackedPNs[i] < ackedPNs[j] })
	newlyAcked := make([]*sentPacket, 0, len(ackedPNs))
	for _, pn := range ackedPNs {
		if sp, ok := c.sent[pn]; ok {
			newlyAcked = append(newlyAcked, sp)
			delete(c.sent, pn)
		}
	}
	for _, sp := range newlyAcked {
		c.ctl.OnAck(now, sp.size, now-sp.sentAt)
		if sp.pn == largest {
			c.rtt.OnSample(now - sp.sentAt)
		}
	}
	if len(newlyAcked) > 0 {
		c.ptoCount = 0
	}

	c.detectLosses(now)
	c.armPTO()
	c.trySend()
}

// detectLosses declares packets lost by packet threshold (3) and time
// threshold (9/8 smoothed RTT behind the largest acknowledged packet).
func (c *Conn) detectLosses(now sim.Time) {
	if !c.anyAcked {
		return
	}
	base := c.rtt.SmoothedRTT()
	if l := c.rtt.LatestRTT(); l > base {
		base = l
	}
	timeThresh := base*9/8 + 10*time.Millisecond
	var lostPNs []uint64
	for pn, sp := range c.sent {
		if pn >= c.largestAcked {
			continue
		}
		if c.largestAcked-pn >= 3 || now-sp.sentAt > timeThresh {
			lostPNs = append(lostPNs, pn)
		}
	}
	if len(lostPNs) == 0 {
		return
	}
	sort.Slice(lostPNs, func(i, j int) bool { return lostPNs[i] < lostPNs[j] })
	for _, pn := range lostPNs {
		sp := c.sent[pn]
		delete(c.sent, pn)
		c.stats.PacketsDeclLost++
		isNew := sp.sentAt >= c.recoveryStart
		if isNew {
			c.recoveryStart = now
		}
		c.ctl.OnLoss(now, sp.size, isNew)
		c.requeueLost(sp)
	}
}

// requeueLost recovers the contents of a lost packet: reliable stream data
// is retransmitted, unreliable stream data becomes a LOSS_REPORT, and
// control frames are requeued.
func (c *Conn) requeueLost(sp *sentPacket) {
	for _, f := range sp.streamFrames {
		if f.Unreliable {
			c.stats.UnreliableLost += uint64(len(f.Data))
			c.ctrlQ = append(c.ctrlQ, &LossReportFrame{
				StreamID: f.StreamID,
				Offset:   f.Offset,
				Length:   uint64(len(f.Data)),
			})
			if f.Fin {
				// The FIN must still reach the peer: resend an empty FIN
				// frame reliably so the stream's final size is known.
				c.retransmit = append(c.retransmit, &StreamFrame{
					StreamID: f.StreamID, Offset: f.Offset + uint64(len(f.Data)),
					Fin: true, Unreliable: true,
				})
			}
		} else {
			c.retransmit = append(c.retransmit, f)
		}
	}
	c.ctrlQ = append(c.ctrlQ, sp.ctrlFrames...)
}

// --- PTO ---

func (c *Conn) armPTO() {
	if len(c.sent) == 0 {
		c.ptoTimer.Stop()
		return
	}
	backoff := sim.Time(1) << uint(c.ptoCount)
	c.ptoTimer.ArmAt(c.lastAckElic + c.rtt.PTO()*backoff)
}

func (c *Conn) onPTO() {
	if len(c.sent) == 0 {
		return
	}
	c.ptoCount++
	c.stats.PTOCount++
	now := c.sim.Now()
	if c.ptoCount >= 3 {
		// Persistent congestion: declare everything in flight lost and
		// collapse the window.
		var pns []uint64
		for pn := range c.sent {
			pns = append(pns, pn)
		}
		sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
		for _, pn := range pns {
			sp := c.sent[pn]
			delete(c.sent, pn)
			c.stats.PacketsDeclLost++
			c.requeueLost(sp)
		}
		c.ctl.OnRetransmissionTimeout(now)
		c.recoveryStart = now
		c.ptoCount = 0
		c.nextSendAt = 0
		c.trySend()
		return
	}
	// Send a probe to elicit an ACK that unblocks threshold loss detection.
	pkt := &Packet{Number: c.nextPN, Frames: []Frame{PingFrame{}}}
	c.nextPN++
	encoded := pkt.Encode()
	sp := &sentPacket{pn: pkt.Number, size: len(encoded) + c.cfg.Overhead,
		sentAt: now, ackEliciting: true, probe: true}
	c.sent[sp.pn] = sp
	c.stats.PacketsSent++
	c.lastAckElic = now
	peer := c.peer
	c.link.Send(netem.Datagram{Size: sp.size, Deliver: func() {
		peer.receive(encoded)
	}})
	c.armPTO()
}

package quic

import (
	"errors"
	"time"

	"voxel/internal/cc"
	"voxel/internal/netem"
	"voxel/internal/obs"
	"voxel/internal/sim"
)

// ErrIdleTimeout is the close reason when a connection saw no peer traffic
// for its configured idle timeout.
var ErrIdleTimeout = errors.New("quic: idle timeout")

// ErrClosed is the generic close reason for an application-initiated Close.
var ErrClosed = errors.New("quic: connection closed")

// Config parameterizes a QUIC* connection.
type Config struct {
	// MTU is the maximum QUIC packet size (before per-packet overhead).
	MTU int
	// Overhead is the per-packet on-wire overhead (UDP+IP headers).
	Overhead int
	// InitialMaxData is the connection flow-control window granted to the
	// peer.
	InitialMaxData uint64
	// DisablePacing turns off packet pacing (bursts the full window).
	DisablePacing bool
	// Controller overrides the congestion controller (default CUBIC).
	Controller cc.Controller

	// IdleTimeout closes the connection when no packet arrives from the
	// peer for this long. Zero disables idle teardown (legacy behavior:
	// a dead link leaves the connection probing forever).
	IdleTimeout sim.Time
	// KeepAlive, with IdleTimeout set, sends a PING at half the idle
	// timeout whenever the connection is otherwise quiet, so an idle but
	// healthy connection is not torn down (e.g. while the player's buffer
	// is full and no requests are outstanding).
	KeepAlive bool
	// PTOBackoffCap bounds the PTO backoff exponent so probe spacing
	// plateaus at PTO<<cap instead of doubling without bound — during a
	// multi-second blackout the connection keeps probing at a bounded
	// period and detects link recovery quickly. Zero keeps the legacy
	// schedule (persistent congestion at 3 consecutive PTOs resets the
	// backoff); with a cap, persistent congestion is declared once per
	// streak and the exponent keeps growing up to the cap.
	PTOBackoffCap int

	// Obs receives transport telemetry (packet/byte counters, RTT samples,
	// loss-report events). Nil disables recording at zero cost: every scope
	// method no-ops on a nil receiver, which the ACK-path allocation tests
	// pin at 0 allocs/op.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = cc.MSS
	}
	if c.Overhead == 0 {
		c.Overhead = 28
	}
	if c.InitialMaxData == 0 {
		c.InitialMaxData = 16 << 20
	}
	if c.Controller == nil {
		c.Controller = cc.NewCubic()
	}
	return c
}

// Stats counts transport-level activity for the experiment harness.
type Stats struct {
	PacketsSent       uint64
	PacketsReceived   uint64
	PacketsDeclLost   uint64
	BytesSent         uint64 // QUIC payload bytes incl. headers
	StreamBytesSent   uint64 // new stream payload bytes
	RetransmitBytes   uint64 // reliable stream bytes retransmitted
	UnreliableLost    uint64 // unreliable stream bytes reported lost
	UnreliableRewrite uint64 // bytes re-sent via WriteAt (selective retx)
	PTOCount          uint64
}

type sentPacket struct {
	pn           uint64
	size         int // wire size incl. overhead, for cc accounting
	sentAt       sim.Time
	ackEliciting bool
	streamFrames []*StreamFrame
	ctrlFrames   []Frame
	probe        bool
}

type rewrite struct {
	stream *Stream
	offset uint64
	data   []byte
}

// Conn is one endpoint of a QUIC* connection running inside the simulator.
type Conn struct {
	sim   *sim.Sim
	cfg   Config
	link  *netem.Link // direction toward the peer
	peer  *Conn
	ctl   cc.Controller
	rtt   cc.RTTEstimator
	stats Stats
	obs   *obs.Scope // nil = telemetry disabled (all calls no-op)

	// Conservation counters for the invariant checker: every ack-eliciting
	// packet pushed into sentQ must end up acked or declared lost, with the
	// remainder in flight. Plain uint adds on the hot path; the comparison
	// against the queue only happens with a checker armed on the sim.
	elicSent   uint64 // ack-eliciting packets pushed into sentQ
	elicBytes  uint64 // wire bytes of those packets
	ackedPkts  uint64 // packets removed from sentQ by an ACK
	ackedBytes uint64
	lostBytes  uint64 // wire bytes of packets declared lost

	// packet number spaces
	nextPN        uint64
	sentQ         sentQueue // in-flight ack-eliciting packets, ascending pn
	largestAcked  uint64
	anyAcked      bool
	recoveryStart sim.Time
	ptoTimer      *sim.Timer
	ptoCount      int
	lastAckElic   sim.Time

	// receiving
	recvdPNs     RangeSet
	ackPending   bool
	ackElicCount int
	ackTimer     *sim.Timer

	// streams
	streams      map[uint64]*Stream
	nextStreamID uint64
	onStream     func(*Stream)
	active       []*Stream // streams with pending new data, FIFO

	// frame queues
	ctrlQ      []Frame
	retransmit []*StreamFrame
	rewrites   []rewrite

	// flow control
	sendLimit    uint64 // peer's MAX_DATA
	sentData     uint64 // new stream payload bytes sent
	recvLimit    uint64 // what we advertised
	recvData     uint64 // stream payload bytes received (new bytes)
	sendBlockedF bool

	// pacing
	paceTimer  *sim.Timer
	nextSendAt sim.Time
	sendArmed  bool

	// lifecycle
	closed    bool
	closeErr  error
	onClose   func(error)
	lastRecv  sim.Time   // virtual time of the last valid packet received
	idleTimer *sim.Timer // armed iff cfg.IdleTimeout > 0
	keepTimer *sim.Timer // armed iff cfg.KeepAlive && cfg.IdleTimeout > 0

	// scratch and freelists for the zero-allocation fast path. Everything
	// here is per-connection and single-threaded (one simulation runs on
	// one goroutine), so reuse needs no synchronization.
	spFree     []*sentPacket  // sentPacket freelist
	sfFree     []*StreamFrame // StreamFrame freelist (send side)
	bufFree    [][]byte       // packet encode buffers, returned after delivery
	txFrames   []Frame        // frame list scratch for sendOnePacket
	txAck      AckFrame       // ACK frame scratch for buildAck
	rxAck      AckFrame       // ACK frame scratch for receive
	rxStream   StreamFrame    // stream frame scratch for receive
	rxLoss     LossReportFrame
	ackScratch []*sentPacket // newly-acked scratch for onAck
}

// NewPair creates a connected client/server pair over the path. The client
// transmits on path.Up and the server on path.Down (the shaped bottleneck).
func NewPair(s *sim.Sim, path *netem.Path, clientCfg, serverCfg Config) (client, server *Conn) {
	client = newConn(s, path.Up, clientCfg, true)
	server = newConn(s, path.Down, serverCfg, false)
	client.peer = server
	server.peer = client
	client.sendLimit = server.cfg.InitialMaxData
	server.sendLimit = client.cfg.InitialMaxData
	return client, server
}

func newConn(s *sim.Sim, link *netem.Link, cfg Config, isClient bool) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		sim:       s,
		cfg:       cfg,
		link:      link,
		ctl:       cfg.Controller,
		obs:       cfg.Obs,
		streams:   make(map[uint64]*Stream),
		recvLimit: cfg.InitialMaxData,
	}
	if isClient {
		c.nextStreamID = 0
	} else {
		c.nextStreamID = 1
	}
	c.ptoTimer = sim.NewTimer(s, c.onPTO)
	c.ackTimer = sim.NewTimer(s, func() { c.sendAckNow() })
	c.paceTimer = sim.NewTimer(s, func() {
		c.sendArmed = false
		c.trySend()
	})
	if cfg.IdleTimeout > 0 {
		c.idleTimer = sim.NewTimer(s, func() { c.Close(ErrIdleTimeout) })
		c.idleTimer.Arm(cfg.IdleTimeout)
		if cfg.KeepAlive {
			c.keepTimer = sim.NewTimer(s, c.onKeepAlive)
			c.keepTimer.Arm(cfg.IdleTimeout / 2)
		}
	}
	return c
}

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// Sim returns the simulator the connection runs on, for layers above the
// transport that need timers (request deadlines, retry backoff).
func (c *Conn) Sim() *sim.Sim { return c.sim }

// LastActivity returns the virtual time of the last valid packet received
// from the peer (zero if none yet). Layers above the transport use it to
// tell a dead link apart from a connection that is merely busy serving
// other streams: request deadlines only fire when the whole connection has
// gone quiet, not when one request is queued behind another transfer.
func (c *Conn) LastActivity() sim.Time { return c.lastRecv }

// RTT returns the connection's RTT estimator.
func (c *Conn) RTT() *cc.RTTEstimator { return &c.rtt }

// Controller exposes the congestion controller (read-only use).
func (c *Conn) Controller() cc.Controller { return c.ctl }

// OnStream registers the callback invoked when the peer opens a stream.
func (c *Conn) OnStream(fn func(*Stream)) { c.onStream = fn }

// OnClose registers the callback invoked once when the connection closes,
// with the close reason. Registered after close, it fires immediately.
func (c *Conn) OnClose(fn func(error)) {
	c.onClose = fn
	if c.closed && fn != nil {
		fn(c.closeErr)
	}
}

// Closed reports whether the connection has been closed.
func (c *Conn) Closed() bool { return c.closed }

// Err returns the close reason, or nil while the connection is open.
func (c *Conn) Err() error { return c.closeErr }

// Close tears the connection down: every timer stops, queued and in-flight
// data is released, and no further events are scheduled — a closed
// connection is inert, so a simulation over a dead link drains instead of
// re-arming probe timers forever. The reason (ErrIdleTimeout, ErrClosed,
// ...) is reported to the OnClose callback. Close is idempotent and purely
// local: the peer learns of it only through its own idle timeout, as with a
// real endpoint that vanished.
func (c *Conn) Close(reason error) {
	if c.closed {
		return
	}
	if reason == nil {
		reason = ErrClosed
	}
	c.closed = true
	c.closeErr = reason
	c.obs.Inc(obs.CConnCloses)
	c.obs.Event(obs.EvConnClosed, closeReasonCode(reason), 0, 0)
	c.ptoTimer.Stop()
	c.ackTimer.Stop()
	c.paceTimer.Stop()
	if c.idleTimer != nil {
		c.idleTimer.Stop()
	}
	if c.keepTimer != nil {
		c.keepTimer.Stop()
	}
	for i := c.sentQ.head; i < len(c.sentQ.pk); i++ {
		c.releaseSent(c.sentQ.pk[i])
	}
	c.sentQ.reset()
	c.ctrlQ = nil
	c.retransmit = nil
	c.rewrites = nil
	c.active = nil
	c.ackPending = false
	if c.onClose != nil {
		c.onClose(reason)
	}
}

// closeReasonCode maps a close reason to its telemetry code.
func closeReasonCode(reason error) int64 {
	switch reason {
	case ErrIdleTimeout:
		return obs.ReasonIdleTimeout
	case ErrClosed:
		return obs.ReasonClosed
	default:
		return obs.ReasonOther
	}
}

// onKeepAlive sends a PING when the send side has been quiet for half the
// idle timeout, so the peer's idle timer (and, via the elicited ACK, our
// own) keeps getting refreshed across application-level silences.
func (c *Conn) onKeepAlive() {
	if c.closed {
		return
	}
	interval := c.cfg.IdleTimeout / 2
	if c.sim.Now()-c.lastAckElic >= interval && c.sentQ.empty() {
		c.ctrlQ = append(c.ctrlQ, PingFrame{})
		c.trySend()
	}
	c.keepTimer.Arm(interval)
}

// OpenStream opens a new locally initiated stream.
func (c *Conn) OpenStream(unreliable bool) *Stream {
	s := &Stream{conn: c, id: c.nextStreamID, unreliable: unreliable}
	c.nextStreamID += 2
	c.streams[s.id] = s
	return s
}

func (c *Conn) markActive(s *Stream) {
	for _, a := range c.active {
		if a == s {
			c.trySend()
			return
		}
	}
	c.active = append(c.active, s)
	c.trySend()
}

func (c *Conn) queueUnreliableRewrite(s *Stream, offset uint64, data []byte) {
	c.rewrites = append(c.rewrites, rewrite{stream: s, offset: offset, data: data})
	c.trySend()
}

// --- pools ---

// allocSent returns a clean sentPacket, reusing freed ones. The frame
// slices keep their capacity across reuse.
//
//voxel:allocfree
//voxel:pool-get put=releaseSent
func (c *Conn) allocSent() *sentPacket {
	if n := len(c.spFree); n > 0 {
		sp := c.spFree[n-1]
		c.spFree = c.spFree[:n-1]
		return sp
	}
	return &sentPacket{}
}

// releaseSent recycles a sentPacket whose frames have already been handed
// off or freed.
//
//voxel:allocfree
func (c *Conn) releaseSent(sp *sentPacket) {
	for i := range sp.streamFrames {
		sp.streamFrames[i] = nil
	}
	for i := range sp.ctrlFrames {
		sp.ctrlFrames[i] = nil
	}
	*sp = sentPacket{streamFrames: sp.streamFrames[:0], ctrlFrames: sp.ctrlFrames[:0]}
	c.spFree = append(c.spFree, sp)
}

// allocFrame returns a zeroed StreamFrame from the send-side freelist.
//
//voxel:allocfree
//voxel:pool-get put=freeFrame
func (c *Conn) allocFrame() *StreamFrame {
	if n := len(c.sfFree); n > 0 {
		f := c.sfFree[n-1]
		c.sfFree = c.sfFree[:n-1]
		*f = StreamFrame{}
		return f
	}
	return &StreamFrame{}
}

// freeFrame recycles a StreamFrame that no queue references anymore.
//
//voxel:allocfree
func (c *Conn) freeFrame(f *StreamFrame) {
	f.Data = nil
	c.sfFree = append(c.sfFree, f)
}

// getBuf returns an empty encode buffer sized for one packet.
//
//voxel:pool-get put=putBuf
func (c *Conn) getBuf() []byte {
	if n := len(c.bufFree); n > 0 {
		b := c.bufFree[n-1]
		c.bufFree = c.bufFree[:n-1]
		return b[:0]
	}
	return make([]byte, 0, c.cfg.MTU+64)
}

// putBuf returns an encode buffer to the pool. Buffers come back after the
// peer finished parsing the delivered packet (the receive path never
// retains wire bytes), or immediately when the link dropped the datagram.
func (c *Conn) putBuf(b []byte) {
	c.bufFree = append(c.bufFree, b)
}

// --- send path ---

// trySend drains as much pending data as congestion control and pacing
// allow, then arms the pacing timer if blocked on time.
func (c *Conn) trySend() {
	for {
		if c.closed || !c.hasPending() {
			return
		}
		now := c.sim.Now()
		if !c.cfg.DisablePacing && c.nextSendAt > now && c.hasAckElicitingPending() {
			if !c.sendArmed {
				c.sendArmed = true
				c.paceTimer.ArmAt(c.nextSendAt)
			}
			// ACK-only packets are not paced.
			if c.ackPending && c.ackElicCount >= 2 {
				c.sendAckNow()
			}
			return
		}
		if !c.sendOnePacket() {
			return
		}
	}
}

func (c *Conn) hasPending() bool {
	return c.ackPending || c.hasAckElicitingPending()
}

func (c *Conn) hasAckElicitingPending() bool {
	if len(c.ctrlQ) > 0 || len(c.retransmit) > 0 || len(c.rewrites) > 0 {
		return true
	}
	for _, s := range c.active {
		if s.pendingSendBytes() > 0 {
			return true
		}
	}
	return false
}

// sendOnePacket assembles and transmits one packet; it returns false when
// nothing was sent (no data, or blocked by congestion control).
func (c *Conn) sendOnePacket() bool {
	now := c.sim.Now()
	canSendData := c.ctl.CanSend(c.cfg.MTU)
	budget := c.cfg.MTU - 1 - 8 // header byte + worst-case packet number

	frames := c.txFrames[:0]
	sp := c.allocSent()
	sp.pn = c.nextPN
	sp.sentAt = now

	if c.ackPending {
		ack := c.buildAck()
		if ack.wireSize() <= budget {
			frames = append(frames, ack)
			budget -= ack.wireSize()
			c.clearAckState()
		}
	}

	if canSendData {
		// Control frames (MAX_DATA, LOSS_REPORT): reliable, requeued on loss.
		for len(c.ctrlQ) > 0 && c.ctrlQ[0].wireSize() <= budget {
			f := c.ctrlQ[0]
			c.ctrlQ = c.ctrlQ[1:]
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.ctrlFrames = append(sp.ctrlFrames, f)
		}
		// Retransmissions of reliable stream data.
		for len(c.retransmit) > 0 && budget > 64 {
			f := c.retransmit[0]
			hdr := streamFrameOverhead(f.StreamID, f.Offset, len(f.Data))
			if hdr+len(f.Data) <= budget {
				c.retransmit = c.retransmit[1:]
				frames = append(frames, f)
				budget -= f.wireSize()
				sp.streamFrames = append(sp.streamFrames, f)
				c.stats.RetransmitBytes += uint64(len(f.Data))
				c.obs.Count(obs.CRetransmitBytes, uint64(len(f.Data)))
			} else {
				// Split: send a prefix now, keep the suffix queued.
				avail := budget - hdr
				if avail <= 0 {
					break
				}
				head := c.allocFrame()
				head.StreamID, head.Offset = f.StreamID, f.Offset
				head.Data, head.Unreliable = f.Data[:avail], f.Unreliable
				f.Offset += uint64(avail)
				f.Data = f.Data[avail:]
				frames = append(frames, head)
				budget -= head.wireSize()
				sp.streamFrames = append(sp.streamFrames, head)
				c.stats.RetransmitBytes += uint64(len(head.Data))
				c.obs.Count(obs.CRetransmitBytes, uint64(len(head.Data)))
			}
		}
		// Application-level rewrites on unreliable streams (selective retx).
		for len(c.rewrites) > 0 && budget > 64 {
			rw := &c.rewrites[0]
			hdr := streamFrameOverhead(rw.stream.id, rw.offset, len(rw.data))
			n := len(rw.data)
			if hdr+n > budget {
				n = budget - hdr
			}
			if n <= 0 {
				break
			}
			f := c.allocFrame()
			f.StreamID, f.Offset = rw.stream.id, rw.offset
			f.Data, f.Unreliable = rw.data[:n], true
			rw.offset += uint64(n)
			rw.data = rw.data[n:]
			if len(rw.data) == 0 {
				c.rewrites = c.rewrites[1:]
			}
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.streamFrames = append(sp.streamFrames, f)
			c.stats.UnreliableRewrite += uint64(len(f.Data))
		}
		// New stream data, FIFO across active streams.
		for len(c.active) > 0 && budget > 64 {
			s := c.active[0]
			if s.pendingSendBytes() == 0 {
				c.active = c.active[1:]
				continue
			}
			if c.sentData >= c.sendLimit {
				break // connection flow control blocked
			}
			maxData := budget - streamFrameOverhead(s.id, s.sendBase, budget)
			if fc := int(c.sendLimit - c.sentData); maxData > fc {
				maxData = fc
			}
			f := s.nextFrame(maxData)
			if f == nil {
				break
			}
			frames = append(frames, f)
			budget -= f.wireSize()
			sp.streamFrames = append(sp.streamFrames, f)
			c.sentData += uint64(len(f.Data))
			c.stats.StreamBytesSent += uint64(len(f.Data))
			c.obs.Count(obs.CStreamBytesSent, uint64(len(f.Data)))
		}
	}

	c.txFrames = frames // keep grown capacity for the next packet
	if len(frames) == 0 {
		c.releaseSent(sp)
		return false
	}

	pkt := Packet{Number: c.nextPN, Frames: frames}
	c.nextPN++
	encoded := pkt.AppendTo(c.getBuf())
	wireSize := len(encoded) + c.cfg.Overhead
	sp.size = wireSize
	sp.ackEliciting = pkt.AckEliciting()

	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(len(encoded))
	c.obs.Inc(obs.CPacketsSent)
	c.obs.Count(obs.CBytesSent, uint64(len(encoded)))

	if sp.ackEliciting {
		c.sentQ.push(sp)
		c.elicSent++
		c.elicBytes += uint64(wireSize)
		c.ctl.OnPacketSent(now, wireSize)
		c.lastAckElic = now
		c.armPTO()
		// Pacing: space packets at ~1.25× the window rate.
		if !c.cfg.DisablePacing {
			rate := 1.25 * float64(c.ctl.Window()) / c.rtt.SmoothedRTT().Seconds()
			gap := sim.Time(float64(wireSize) / rate * float64(time.Second))
			base := c.nextSendAt
			if base < now {
				base = now
			}
			c.nextSendAt = base + gap
		}
	} else {
		// Nothing tracks a non-eliciting (ACK-only) packet; recycle it.
		c.releaseSent(sp)
	}

	peer := c.peer
	if !c.link.Send(netem.Datagram{
		Size:    wireSize,
		Deliver: func() { peer.receive(encoded) },
		Done:    func() { c.putBuf(encoded) },
	}) {
		c.putBuf(encoded) // dropped at the queue: reclaim immediately
	}
	return true
}

// buildAck assembles the ACK frame for the received packet-number history
// into per-connection scratch; the caller encodes it before the next call.
func (c *Conn) buildAck() *AckFrame {
	rs := c.recvdPNs.Ranges()
	f := &c.txAck
	f.Ranges = f.Ranges[:0]
	// Largest-first, capped at 32 ranges.
	for i := len(rs) - 1; i >= 0 && len(f.Ranges) < 32; i-- {
		f.Ranges = append(f.Ranges, AckRange{First: rs[i].Start, Last: rs[i].End - 1})
	}
	return f
}

func (c *Conn) clearAckState() {
	c.ackPending = false
	c.ackElicCount = 0
	c.ackTimer.Stop()
}

func (c *Conn) sendAckNow() {
	if !c.ackPending {
		return
	}
	ack := c.buildAck()
	frames := append(c.txFrames[:0], ack)
	pkt := Packet{Number: c.nextPN, Frames: frames}
	c.txFrames = frames
	c.nextPN++
	c.clearAckState()
	encoded := pkt.AppendTo(c.getBuf())
	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(len(encoded))
	c.obs.Inc(obs.CPacketsSent)
	c.obs.Count(obs.CBytesSent, uint64(len(encoded)))
	peer := c.peer
	if !c.link.Send(netem.Datagram{
		Size:    len(encoded) + c.cfg.Overhead,
		Deliver: func() { peer.receive(encoded) },
		Done:    func() { c.putBuf(encoded) },
	}) {
		c.putBuf(encoded)
	}
}

// --- receive path ---

// receive parses and dispatches one packet straight off the wire bytes:
// after an allocation-free validation pass, frames are decoded one at a
// time into per-connection scratch and handled in place. Stream payloads
// are passed to the application as sub-slices of the wire buffer (nothing
// downstream retains them), so steady-state receiving does not allocate or
// copy.
func (c *Conn) receive(encoded []byte) {
	if c.closed {
		return // packets arriving after close fall on the floor
	}
	if len(encoded) == 0 || encoded[0] != packetHeaderByte {
		return // corrupt packets are dropped
	}
	pn, payload, err := consumeVarint(encoded[1:])
	if err != nil {
		return
	}
	ackEliciting, err := walkFrames(payload)
	if err != nil {
		return // corrupt packets are dropped atomically, as before
	}
	c.stats.PacketsReceived++
	c.obs.Inc(obs.CPacketsReceived)
	c.recvdPNs.Add(pn, pn+1)
	c.lastRecv = c.sim.Now()
	if c.idleTimer != nil {
		c.idleTimer.Arm(c.cfg.IdleTimeout) // peer activity: push back teardown
	}

	// Dispatch pass. walkFrames validated the encoding, so the varint and
	// bounds errors below cannot occur.
	for b := payload; len(b) > 0; {
		t := b[0]
		switch {
		case t == frameTypePing:
			b = b[1:] // ack-eliciting only
		case t == frameTypeAck:
			rest := b[1:]
			var n uint64
			n, rest, _ = consumeVarint(rest)
			f := &c.rxAck
			f.Ranges = f.Ranges[:0]
			for i := uint64(0); i < n; i++ {
				var first, last uint64
				first, rest, _ = consumeVarint(rest)
				last, rest, _ = consumeVarint(rest)
				f.Ranges = append(f.Ranges, AckRange{First: first, Last: last})
			}
			b = rest
			c.onAck(f)
		case t == frameTypeMaxData:
			v, rest, _ := consumeVarint(b[1:])
			if v > c.sendLimit {
				c.sendLimit = v
			}
			b = rest
		case t&^finBit == frameTypeStream || t&^finBit == frameTypeUStream:
			rest := b[1:]
			var id, off, length uint64
			id, rest, _ = consumeVarint(rest)
			off, rest, _ = consumeVarint(rest)
			length, rest, _ = consumeVarint(rest)
			f := &c.rxStream
			f.StreamID = id
			f.Offset = off
			f.Data = rest[:length:length]
			f.Fin = t&finBit != 0
			f.Unreliable = t&^finBit == frameTypeUStream
			b = rest[length:]
			c.onStreamFrame(f)
			f.Data = nil
		case t == frameTypeLossReport:
			rest := b[1:]
			f := &c.rxLoss
			f.StreamID, rest, _ = consumeVarint(rest)
			f.Offset, rest, _ = consumeVarint(rest)
			f.Length, rest, _ = consumeVarint(rest)
			b = rest
			c.obs.Count(obs.CLossReportedBytes, f.Length)
			c.obs.Event(obs.EvLossReport, int64(f.StreamID), int64(f.Offset), int64(f.Length))
			if s := c.streams[f.StreamID]; s != nil {
				s.handleLossReport(f)
			}
		default:
			return // unreachable: walkFrames rejected unknown types
		}
	}

	if ackEliciting {
		c.ackPending = true
		c.ackElicCount++
		if c.ackElicCount >= 2 {
			c.sendAckNow()
		} else if !c.ackTimer.Armed() {
			c.ackTimer.Arm(25 * time.Millisecond)
		}
	}
	c.trySend()
}

func (c *Conn) onStreamFrame(f *StreamFrame) {
	s := c.streams[f.StreamID]
	if s == nil {
		// Peer-initiated stream: register it and notify the application
		// before delivering data so callbacks are in place.
		s = &Stream{conn: c, id: f.StreamID, unreliable: f.Unreliable}
		c.streams[f.StreamID] = s
		if c.onStream != nil {
			c.onStream(s)
		}
	}
	before := s.received.CoveredBytes()
	s.handleData(f)
	newBytes := s.received.CoveredBytes() - before
	c.recvData += newBytes
	// Replenish connection flow control once half the window is consumed.
	if c.recvLimit-c.recvData < c.cfg.InitialMaxData/2 {
		c.recvLimit = c.recvData + c.cfg.InitialMaxData
		c.ctrlQ = append(c.ctrlQ, &MaxDataFrame{Max: c.recvLimit})
	}
}

// onAck processes an ACK by merging its ranges (descending, as buildAck
// emits them) against the in-flight queue (ascending by packet number):
// one pass in O(scanned + ranges), where the scan stops at the largest
// acknowledged packet. Processing order is ascending packet number by
// construction — no map iteration, no sorting.
//
//voxel:allocfree
func (c *Conn) onAck(f *AckFrame) {
	now := c.sim.Now()
	if len(f.Ranges) == 0 {
		return
	}
	largest := f.Largest()
	if !c.anyAcked || largest > c.largestAcked {
		c.largestAcked = largest
		c.anyAcked = true
	}

	q := &c.sentQ
	newlyAcked := c.ackScratch[:0]
	j := len(f.Ranges) - 1 // walk ranges smallest-first
	i := q.head
	w := q.head // survivors below the frontier compact toward the head
	for ; i < len(q.pk); i++ {
		sp := q.pk[i]
		if sp.pn > largest {
			break
		}
		for j >= 0 && f.Ranges[j].Last < sp.pn {
			j--
		}
		if j >= 0 && f.Ranges[j].First <= sp.pn {
			newlyAcked = append(newlyAcked, sp)
		} else {
			q.pk[w] = sp
			w++
		}
	}
	if len(newlyAcked) > 0 {
		// Slide the surviving scanned packets up against the unscanned
		// tail, so the live window stays contiguous.
		survivors := w - q.head
		newHead := i - survivors
		if survivors > 0 && newHead != q.head {
			copy(q.pk[newHead:i], q.pk[q.head:w])
		}
		for k := q.head; k < newHead; k++ {
			q.pk[k] = nil
		}
		q.head = newHead
		q.shrink()

		// RTT sample: exactly once per ACK that newly acknowledges the
		// largest packet, taken before the congestion-controller callbacks.
		if last := newlyAcked[len(newlyAcked)-1]; last.pn == largest {
			c.rtt.OnSample(now - last.sentAt)
			c.obs.Observe(obs.HRTTMs, int64((now-last.sentAt)/time.Millisecond))
		}
		for _, sp := range newlyAcked {
			c.ackedPkts++
			c.ackedBytes += uint64(sp.size)
			c.ctl.OnAck(now, sp.size, now-sp.sentAt)
		}
		c.ptoCount = 0
		for _, sp := range newlyAcked {
			for _, sf := range sp.streamFrames {
				c.freeFrame(sf)
			}
			c.releaseSent(sp)
		}
	}
	c.ackScratch = newlyAcked[:0]

	c.detectLosses(now)
	c.checkConservation()
	c.armPTO()
	c.trySend()
}

// checkConservation asserts, with a checker armed on the sim, that every
// ack-eliciting packet (and byte) ever pushed into the in-flight queue is
// accounted for exactly once: acknowledged, declared lost, or still in
// flight. The in-flight side is recomputed from the queue itself, so a
// requeue path that drops or duplicates a packet without bookkeeping is
// caught at the next ACK.
func (c *Conn) checkConservation() {
	chk := c.sim.Checker()
	if !chk.Enabled() || c.closed {
		return
	}
	if inflight := uint64(c.sentQ.size()); c.elicSent != c.ackedPkts+c.stats.PacketsDeclLost+inflight {
		chk.Failf("quic", "quic.packet-conservation",
			"sent %d != acked %d + lost %d + inflight %d",
			c.elicSent, c.ackedPkts, c.stats.PacketsDeclLost, inflight)
	}
	var infBytes uint64
	for i := c.sentQ.head; i < len(c.sentQ.pk); i++ {
		infBytes += uint64(c.sentQ.pk[i].size)
	}
	if c.elicBytes != c.ackedBytes+c.lostBytes+infBytes {
		chk.Failf("quic", "quic.byte-conservation",
			"sent %d B != acked %d B + lost %d B + inflight %d B",
			c.elicBytes, c.ackedBytes, c.lostBytes, infBytes)
	}
}

// detectLosses declares packets lost by packet threshold (3) and time
// threshold (9/8 smoothed RTT behind the largest acknowledged packet).
//
// Both thresholds are monotone along the queue — packet numbers ascend and
// send times never decrease — so the lost packets always form a prefix of
// the in-flight queue: the walk stops at the first packet neither
// threshold condemns.
//
//voxel:allocfree
func (c *Conn) detectLosses(now sim.Time) {
	if !c.anyAcked || c.sentQ.empty() {
		return
	}
	base := c.rtt.SmoothedRTT()
	if l := c.rtt.LatestRTT(); l > base {
		base = l
	}
	timeThresh := base*9/8 + 10*time.Millisecond
	q := &c.sentQ
	lost := 0
	for i := q.head; i < len(q.pk); i++ {
		sp := q.pk[i]
		if sp.pn >= c.largestAcked ||
			(c.largestAcked-sp.pn < 3 && now-sp.sentAt <= timeThresh) {
			break
		}
		lost++
	}
	if lost == 0 {
		return
	}
	for i := 0; i < lost; i++ {
		sp := q.pk[q.head+i]
		c.stats.PacketsDeclLost++
		c.lostBytes += uint64(sp.size)
		c.obs.Inc(obs.CPacketsLost)
		isNew := sp.sentAt >= c.recoveryStart
		if isNew {
			c.recoveryStart = now
		}
		c.ctl.OnLoss(now, sp.size, isNew)
		c.requeueLost(sp)
	}
	q.dropPrefix(lost)
}

// requeueLost recovers the contents of a lost packet: reliable stream data
// is retransmitted, unreliable stream data becomes a LOSS_REPORT, and
// control frames are requeued. The emptied sentPacket (and any frame no
// queue references anymore) returns to the connection's freelists.
func (c *Conn) requeueLost(sp *sentPacket) {
	for _, f := range sp.streamFrames {
		if f.Unreliable {
			c.stats.UnreliableLost += uint64(len(f.Data))
			c.obs.Count(obs.CUnreliableLostBytes, uint64(len(f.Data)))
			c.ctrlQ = append(c.ctrlQ, &LossReportFrame{
				StreamID: f.StreamID,
				Offset:   f.Offset,
				Length:   uint64(len(f.Data)),
			})
			if f.Fin {
				// The FIN must still reach the peer: resend an empty FIN
				// frame reliably so the stream's final size is known.
				fin := c.allocFrame()
				fin.StreamID = f.StreamID
				fin.Offset = f.Offset + uint64(len(f.Data))
				fin.Fin, fin.Unreliable = true, true
				c.retransmit = append(c.retransmit, fin)
			}
			c.freeFrame(f) // never retransmitted: the frame is done
		} else {
			c.retransmit = append(c.retransmit, f)
		}
	}
	c.ctrlQ = append(c.ctrlQ, sp.ctrlFrames...)
	c.releaseSent(sp)
}

// --- PTO ---

func (c *Conn) armPTO() {
	if c.closed || c.sentQ.empty() {
		c.ptoTimer.Stop()
		return
	}
	exp := c.ptoCount
	if cap := c.cfg.PTOBackoffCap; cap > 0 && exp > cap {
		exp = cap
	}
	backoff := sim.Time(1) << uint(exp)
	c.ptoTimer.ArmAt(c.lastAckElic + c.rtt.PTO()*backoff)
}

func (c *Conn) onPTO() {
	if c.closed || c.sentQ.empty() {
		return
	}
	c.ptoCount++
	c.stats.PTOCount++
	c.obs.Inc(obs.CPTOs)
	now := c.sim.Now()
	// Persistent congestion at 3 consecutive PTOs. Legacy (no backoff cap)
	// resets the backoff each time, retrying the whole window at full tempo;
	// with a cap, it is declared once per streak and the streak keeps
	// backing off (up to the cap), so a dead link is probed at a bounded,
	// non-collapsing cadence until traffic or the idle timeout ends it.
	if c.ptoCount == 3 || (c.cfg.PTOBackoffCap == 0 && c.ptoCount > 3) {
		// Declare everything in flight lost and collapse the window. The
		// queue is already in ascending packet-number order.
		q := &c.sentQ
		for i := q.head; i < len(q.pk); i++ {
			c.stats.PacketsDeclLost++
			c.lostBytes += uint64(q.pk[i].size)
			c.requeueLost(q.pk[i])
		}
		q.reset()
		c.ctl.OnRetransmissionTimeout(now)
		c.recoveryStart = now
		if c.cfg.PTOBackoffCap == 0 {
			c.ptoCount = 0
		}
		c.nextSendAt = 0
		c.trySend()
		if c.cfg.PTOBackoffCap > 0 {
			// The streak continues: keep probing even if trySend was
			// blocked, so link recovery is still detected.
			c.armPTO()
		}
		return
	}
	// Send a probe to elicit an ACK that unblocks threshold loss detection.
	frames := append(c.txFrames[:0], PingFrame{})
	pkt := Packet{Number: c.nextPN, Frames: frames}
	c.txFrames = frames
	c.nextPN++
	encoded := pkt.AppendTo(c.getBuf())
	sp := c.allocSent()
	sp.pn = pkt.Number
	sp.size = len(encoded) + c.cfg.Overhead
	sp.sentAt = now
	sp.ackEliciting = true
	sp.probe = true
	c.sentQ.push(sp)
	c.elicSent++
	c.elicBytes += uint64(sp.size)
	c.stats.PacketsSent++
	c.obs.Inc(obs.CPacketsSent)
	c.obs.Count(obs.CBytesSent, uint64(len(encoded)))
	c.lastAckElic = now
	peer := c.peer
	if !c.link.Send(netem.Datagram{
		Size:    sp.size,
		Deliver: func() { peer.receive(encoded) },
		Done:    func() { c.putBuf(encoded) },
	}) {
		c.putBuf(encoded)
	}
	c.armPTO()
}

package quic

// sentQueue tracks ack-eliciting packets in flight, ordered by packet
// number. Packet numbers are assigned monotonically, so insertion is an
// append and every consumer walks the queue in ascending packet-number
// order — ACK processing and loss detection are deterministic by
// construction, with no map iteration anywhere on the hot path.
//
// The queue is a slice with an explicit live-window start: removals from
// the front advance head instead of copying the tail, and the dead prefix
// is compacted away once it dominates the backing array.
type sentQueue struct {
	pk   []*sentPacket // pk[head:] are in flight, ascending by pn
	head int
}

// push appends a packet; sp.pn must exceed every tracked packet number.
func (q *sentQueue) push(sp *sentPacket) { q.pk = append(q.pk, sp) }

// size returns the number of packets in flight.
func (q *sentQueue) size() int { return len(q.pk) - q.head }

// empty reports whether nothing is in flight.
func (q *sentQueue) empty() bool { return q.size() == 0 }

// front returns the oldest in-flight packet; nil when empty.
func (q *sentQueue) front() *sentPacket {
	if q.empty() {
		return nil
	}
	return q.pk[q.head]
}

// dropPrefix removes the k oldest packets.
func (q *sentQueue) dropPrefix(k int) {
	for i := q.head; i < q.head+k; i++ {
		q.pk[i] = nil
	}
	q.head += k
	q.shrink()
}

// reset empties the queue (the packets themselves are the caller's to
// release).
func (q *sentQueue) reset() {
	for i := q.head; i < len(q.pk); i++ {
		q.pk[i] = nil
	}
	q.pk = q.pk[:0]
	q.head = 0
}

// shrink reclaims the dead prefix when it dominates the backing array, so
// a long-lived connection's queue memory stays proportional to its window.
func (q *sentQueue) shrink() {
	if q.head == len(q.pk) {
		q.pk = q.pk[:0]
		q.head = 0
		return
	}
	if q.head > 32 && q.head*2 >= len(q.pk) {
		n := copy(q.pk, q.pk[q.head:])
		clearTail := q.pk[n:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		q.pk = q.pk[:n]
		q.head = 0
	}
}

package quic

import (
	"bytes"
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

// testPair builds a connected pair over a constant-rate path.
func testPair(t *testing.T, s *sim.Sim, mbps float64, queuePkts int) (client, server *Conn) {
	t.Helper()
	tr := trace.Constant("test", mbps*1e6, 3600)
	path := netem.NewPath(s, tr, queuePkts)
	return NewPair(s, path, Config{}, Config{})
}

// collect wires a stream to gather delivered bytes in offset order.
type collect struct {
	buf  []byte
	fin  bool
	size uint64
	lost []ByteRange
}

func newCollect(st *Stream, total int) *collect {
	c := &collect{buf: make([]byte, total)}
	st.OnData(func(off uint64, data []byte) {
		copy(c.buf[off:], data)
	})
	st.OnLost(func(off, n uint64) {
		c.lost = append(c.lost, ByteRange{off, off + n})
	})
	st.OnFin(func(sz uint64) { c.fin = true; c.size = sz })
	return c
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

func TestReliableTransferSmall(t *testing.T) {
	s := sim.New(1)
	client, server := testPair(t, s, 10, 32)
	msg := []byte("GET /segment-1 HTTP/1.1")
	var got *collect
	server.OnStream(func(st *Stream) { got = newCollect(st, len(msg)) })
	st := client.OpenStream(false)
	st.Write(msg)
	st.CloseWrite()
	s.RunUntil(5 * time.Second)
	if got == nil || !got.fin {
		t.Fatal("server did not receive the stream")
	}
	if !bytes.Equal(got.buf, msg) {
		t.Fatalf("got %q, want %q", got.buf, msg)
	}
	if got.size != uint64(len(msg)) {
		t.Fatalf("final size = %d, want %d", got.size, len(msg))
	}
}

func TestReliableBulkTransfer(t *testing.T) {
	s := sim.New(2)
	client, server := testPair(t, s, 10, 32)
	const total = 2 << 20
	data := payload(total)
	var got *collect
	client.OnStream(func(st *Stream) { got = newCollect(st, total) })
	st := server.OpenStream(false)
	st.Write(data)
	st.CloseWrite()
	s.RunUntil(60 * time.Second)
	if got == nil || !got.fin {
		t.Fatal("bulk transfer did not complete")
	}
	if !bytes.Equal(got.buf, data) {
		t.Fatal("bulk data corrupted")
	}
}

func TestBulkThroughputApproachesLinkRate(t *testing.T) {
	s := sim.New(3)
	client, server := testPair(t, s, 10, 32)
	const total = 4 << 20 // 4 MB over 10 Mbps ≈ 3.36 s minimum
	var doneAt sim.Time
	client.OnStream(func(st *Stream) {
		st.OnFin(func(uint64) { doneAt = s.Now() })
	})
	st := server.OpenStream(false)
	st.Write(payload(total))
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if doneAt == 0 {
		t.Fatal("transfer never completed")
	}
	ideal := time.Duration(float64(total*8) / 10e6 * float64(time.Second))
	if doneAt > ideal*2 {
		t.Fatalf("took %v, ideal %v — transport too slow (%.0f%% efficiency)",
			doneAt, ideal, 100*float64(ideal)/float64(doneAt))
	}
}

func TestReliableTransferSurvivesTightQueue(t *testing.T) {
	// A tiny 8-packet queue forces drops; reliable data must still arrive
	// complete and uncorrupted.
	s := sim.New(4)
	client, server := testPair(t, s, 4, 8)
	const total = 1 << 20
	data := payload(total)
	var got *collect
	client.OnStream(func(st *Stream) { got = newCollect(st, total) })
	st := server.OpenStream(false)
	st.Write(data)
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if got == nil || !got.fin {
		t.Fatal("transfer did not complete under loss")
	}
	if !bytes.Equal(got.buf, data) {
		t.Fatal("data corrupted under loss")
	}
	if server.Stats().PacketsDeclLost == 0 {
		t.Fatal("expected some declared losses with an 8-packet queue")
	}
	if server.Stats().RetransmitBytes == 0 {
		t.Fatal("expected retransmissions")
	}
}

func TestUnreliableStreamLossReported(t *testing.T) {
	// Unreliable stream through a tight queue: receiver must end up with
	// every byte either received or reported lost, and lost bytes must not
	// be retransmitted by the transport.
	s := sim.New(5)
	client, server := testPair(t, s, 4, 8)
	const total = 1 << 20
	data := payload(total)
	var got *collect
	client.OnStream(func(st *Stream) { got = newCollect(st, total) })
	st := server.OpenStream(true)
	st.Write(data)
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if got == nil || !got.fin {
		t.Fatal("unreliable transfer did not finalize")
	}
	if len(got.lost) == 0 {
		t.Fatal("expected loss reports on a tight queue")
	}
	if server.Stats().UnreliableLost == 0 {
		t.Fatal("sender should account unreliable losses")
	}
	if server.Stats().RetransmitBytes > total/100 {
		t.Fatalf("unreliable data should not be retransmitted (got %d bytes)",
			server.Stats().RetransmitBytes)
	}
	// Every received byte must be correct.
	var lostSet RangeSet
	for _, r := range got.lost {
		lostSet.Add(r.Start, r.End)
	}
	for i := 0; i < total; i++ {
		if !lostSet.Contains(uint64(i), uint64(i)+1) && got.buf[i] != data[i] {
			t.Fatalf("received byte %d corrupted", i)
		}
	}
	// Completion must be faster than a reliable transfer would allow:
	// simply check the accounting identity.
	var recvd uint64
	cl := client
	//voxel:det-ok integer sum of a pure accessor over all streams; the total is order-independent
	for _, strm := range cl.streams {
		recvd += strm.received.CoveredBytes()
	}
	if recvd+lostSet.CoveredBytes() < total {
		t.Fatalf("coverage %d + lost %d < total %d", recvd, lostSet.CoveredBytes(), total)
	}
}

func TestUnreliableFasterThanReliableOnLossyPath(t *testing.T) {
	run := func(unreliable bool) sim.Time {
		s := sim.New(6)
		client, server := testPair(t, s, 3, 6)
		var doneAt sim.Time
		client.OnStream(func(st *Stream) {
			st.OnFin(func(uint64) { doneAt = s.Now() })
		})
		st := server.OpenStream(unreliable)
		st.Write(payload(1 << 20))
		st.CloseWrite()
		s.RunUntil(300 * time.Second)
		return doneAt
	}
	rel, unrel := run(false), run(true)
	if rel == 0 || unrel == 0 {
		t.Fatalf("transfers incomplete: rel=%v unrel=%v", rel, unrel)
	}
	if unrel > rel {
		t.Fatalf("unreliable (%v) should finish no later than reliable (%v)", unrel, rel)
	}
}

func TestWriteAtSelectiveRetransmission(t *testing.T) {
	// Force real losses on an unreliable stream with a tight queue, then
	// recover every reported hole via WriteAt — the primitive behind the
	// paper's selective retransmission during buffer-full periods.
	s := sim.New(7)
	client, server := testPair(t, s, 4, 8)
	const total = 1 << 20
	data := payload(total)
	var got *collect
	var clientStream *Stream
	client.OnStream(func(st *Stream) {
		clientStream = st
		got = newCollect(st, total)
	})
	st := server.OpenStream(true)
	st.Write(data)
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if got == nil || !got.fin {
		t.Fatal("initial transfer did not finalize")
	}
	if len(got.lost) == 0 {
		t.Fatal("expected losses on tight queue")
	}
	// Re-request exactly the holes, as the player does when the playback
	// buffer is full.
	for _, r := range got.lost {
		st.WriteAt(r.Start, data[r.Start:r.End])
	}
	s.RunUntil(240 * time.Second)
	// After recovery, holes may have been lost again; iterate once more.
	for _, r := range clientStream.Received().Gaps(0, total) {
		st.WriteAt(r.Start, data[r.Start:r.End])
	}
	s.RunUntil(400 * time.Second)
	if gaps := clientStream.Received().Gaps(0, total); len(gaps) > len(got.lost) {
		t.Fatalf("recovery left %d gaps", len(gaps))
	}
	if !bytes.Equal(got.buf[:1000], data[:1000]) {
		t.Fatal("head corrupted")
	}
	if server.Stats().UnreliableRewrite == 0 {
		t.Fatal("rewrite bytes not accounted")
	}
	// Recovered bytes must be correct wherever received.
	for _, r := range clientStream.Received().Ranges() {
		if !bytes.Equal(got.buf[r.Start:r.End], data[r.Start:r.End]) {
			t.Fatalf("range %v corrupted after recovery", r)
		}
	}
}

func TestBidirectionalRequestResponse(t *testing.T) {
	s := sim.New(8)
	client, server := testPair(t, s, 10, 32)
	req := []byte("GET /x")
	resp := payload(100 << 10)
	server.OnStream(func(st *Stream) {
		var reqBuf []byte
		st.OnData(func(off uint64, data []byte) {
			reqBuf = append(reqBuf, data...)
		})
		st.OnFin(func(uint64) {
			st.Write(resp)
			st.CloseWrite()
		})
	})
	st := client.OpenStream(false)
	var got []byte
	var fin bool
	buf := make([]byte, len(resp))
	st.OnData(func(off uint64, data []byte) { copy(buf[off:], data) })
	st.OnFin(func(sz uint64) { fin = true; got = buf[:sz] })
	st.Write(req)
	st.CloseWrite()
	s.RunUntil(30 * time.Second)
	if !fin {
		t.Fatal("response not finished")
	}
	if !bytes.Equal(got, resp) {
		t.Fatal("response corrupted")
	}
}

func TestMultipleConcurrentStreams(t *testing.T) {
	s := sim.New(9)
	client, server := testPair(t, s, 10, 32)
	const n = 5
	const size = 100 << 10
	done := 0
	client.OnStream(func(st *Stream) {
		st.OnFin(func(uint64) { done++ })
	})
	for i := 0; i < n; i++ {
		st := server.OpenStream(i%2 == 1)
		st.Write(payload(size))
		st.CloseWrite()
	}
	s.RunUntil(60 * time.Second)
	if done != n {
		t.Fatalf("%d/%d streams finished", done, n)
	}
}

func TestStreamIDAllocation(t *testing.T) {
	s := sim.New(10)
	client, server := testPair(t, s, 10, 32)
	c0 := client.OpenStream(false)
	c1 := client.OpenStream(true)
	s0 := server.OpenStream(false)
	s1 := server.OpenStream(true)
	if c0.ID() != 0 || c1.ID() != 2 {
		t.Fatalf("client stream IDs: %d, %d — want 0, 2", c0.ID(), c1.ID())
	}
	if s0.ID() != 1 || s1.ID() != 3 {
		t.Fatalf("server stream IDs: %d, %d — want 1, 3", s0.ID(), s1.ID())
	}
	if !c1.Unreliable() || c0.Unreliable() {
		t.Fatal("unreliable flag wrong")
	}
}

func TestRTTEstimate(t *testing.T) {
	s := sim.New(11)
	client, server := testPair(t, s, 10, 32)
	st := client.OpenStream(false)
	server.OnStream(func(*Stream) {})
	st.Write(payload(10 << 10))
	st.CloseWrite()
	s.RunUntil(10 * time.Second)
	// Base RTT is 60 ms (2×30 ms) plus serialization.
	rtt := client.RTT().SmoothedRTT()
	if rtt < 60*time.Millisecond || rtt > 120*time.Millisecond {
		t.Fatalf("smoothed RTT = %v, want ≈60–120 ms", rtt)
	}
}

func TestZeroLengthStreamFinalizes(t *testing.T) {
	s := sim.New(12)
	client, server := testPair(t, s, 10, 32)
	fin := false
	server.OnStream(func(st *Stream) {
		st.OnFin(func(sz uint64) {
			if sz != 0 {
				t.Errorf("final size = %d, want 0", sz)
			}
			fin = true
		})
	})
	st := client.OpenStream(false)
	st.CloseWrite()
	s.RunUntil(5 * time.Second)
	if !fin {
		t.Fatal("empty stream never finalized")
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() (sim.Time, Stats) {
		s := sim.New(42)
		client, server := testPair(t, s, 4, 8)
		var doneAt sim.Time
		client.OnStream(func(st *Stream) {
			st.OnFin(func(uint64) { doneAt = s.Now() })
		})
		st := server.OpenStream(false)
		st.Write(payload(512 << 10))
		st.CloseWrite()
		s.RunUntil(120 * time.Second)
		return doneAt, server.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}

func TestCongestionWindowRespondsToLoss(t *testing.T) {
	s := sim.New(13)
	client, server := testPair(t, s, 2, 6)
	client.OnStream(func(*Stream) {})
	st := server.OpenStream(false)
	st.Write(payload(1 << 20))
	st.CloseWrite()
	s.RunUntil(30 * time.Second)
	if server.Stats().PacketsDeclLost == 0 {
		t.Fatal("expected losses")
	}
	// The window must have been bounded by the BDP+queue rather than
	// growing unboundedly: 2 Mbps × 60 ms ≈ 15 kB + queue.
	if w := server.Controller().Window(); w > 1<<20 {
		t.Fatalf("window %d absurdly large under loss", w)
	}
}

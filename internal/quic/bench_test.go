package quic

import (
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

func BenchmarkPacketEncodeDecode(b *testing.B) {
	pkt := &Packet{
		Number: 123456,
		Frames: []Frame{
			&AckFrame{Ranges: []AckRange{{100, 200}, {10, 50}}},
			&StreamFrame{StreamID: 4, Offset: 1 << 20, Data: make([]byte, 1100)},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := pkt.Encode()
		if _, err := DecodePacket(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSetInOrder(b *testing.B) {
	b.ReportAllocs()
	var rs RangeSet
	for i := 0; i < b.N; i++ {
		off := uint64(i) * 1200
		rs.Add(off, off+1200)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	// End-to-end cost of moving 1 MB through the full QUIC*+netem stack.
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i) + 1)
		path := netem.NewPath(s, trace.Constant("c", 20e6, 600), 64)
		client, server := NewPair(s, path, Config{}, Config{})
		done := false
		client.OnStream(func(st *Stream) {
			st.OnFin(func(uint64) { done = true })
		})
		st := server.OpenStream(false)
		st.Write(make([]byte, 1<<20))
		st.CloseWrite()
		s.RunUntil(60 * time.Second)
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(1 << 20)
}

package quic

import (
	"testing"
	"time"

	"voxel/internal/cc"
	"voxel/internal/netem"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

func TestRecoversFromBlackout(t *testing.T) {
	// The link dies for 5 seconds mid-transfer; PTO probes and the
	// persistent-congestion collapse must revive the connection and the
	// reliable transfer must still complete intact.
	s := sim.New(21)
	samples := make([]float64, 600)
	for i := range samples {
		if i >= 3 && i < 8 {
			samples[i] = 5e4 // effectively dead (the shaper's floor rate)
		} else {
			samples[i] = 8e6
		}
	}
	tr := trace.MustNew("blackout", samples)
	path := netem.NewPath(s, tr, 32)
	client, server := NewPair(s, path, Config{}, Config{})
	const total = 4 << 20
	var doneAt sim.Time
	client.OnStream(func(st *Stream) {
		st.OnFin(func(uint64) { doneAt = s.Now() })
	})
	st := server.OpenStream(false)
	st.Write(payload(total))
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if doneAt == 0 {
		t.Fatal("transfer did not survive the blackout")
	}
	if server.Stats().PTOCount == 0 {
		t.Fatal("expected PTO probes during the blackout")
	}
}

func TestFlowControlBlocksAndResumes(t *testing.T) {
	// A tiny connection flow-control window forces MAX_DATA round trips;
	// the transfer must still complete.
	s := sim.New(22)
	tr := trace.Constant("c", 10e6, 600)
	path := netem.NewPath(s, tr, 32)
	client, server := NewPair(s, path,
		Config{InitialMaxData: 64 << 10}, Config{InitialMaxData: 64 << 10})
	const total = 1 << 20
	fin := false
	client.OnStream(func(st *Stream) {
		st.OnFin(func(sz uint64) {
			fin = true
			if sz != total {
				t.Errorf("final size %d", sz)
			}
		})
	})
	st := server.OpenStream(false)
	st.Write(payload(total))
	st.CloseWrite()
	s.RunUntil(120 * time.Second)
	if !fin {
		t.Fatalf("transfer blocked by flow control never completed (sent %d)",
			server.Stats().StreamBytesSent)
	}
}

func TestSlowStartOvershootRecovered(t *testing.T) {
	// A deep (256-packet) queue lets slow start overshoot far past the
	// BDP; the resulting burst loss must be repaired without stalling the
	// transfer, and retransmissions must stay bounded (no retransmission
	// storms from spurious loss declarations).
	s := sim.New(23)
	tr := trace.Constant("c", 10e6, 600)
	path := netem.NewPath(s, tr, 256)
	client, server := NewPair(s, path, Config{}, Config{})
	fin := false
	client.OnStream(func(st *Stream) {
		st.OnFin(func(uint64) { fin = true })
	})
	const total = 1 << 20
	st := server.OpenStream(false)
	st.Write(payload(total))
	st.CloseWrite()
	s.RunUntil(60 * time.Second)
	if !fin {
		t.Fatal("transfer incomplete")
	}
	if rb := server.Stats().RetransmitBytes; rb > total/2 {
		t.Fatalf("%d of %d bytes retransmitted — loss detection is storming", rb, total)
	}
}

func TestCubicSharesFairlyBetweenTwoConnections(t *testing.T) {
	// Two server→client connections through the same bottleneck should
	// each get a nontrivial share (CUBIC fairness, coarse check).
	s := sim.New(24)
	tr := trace.Constant("c", 10e6, 600)
	path := netem.NewPath(s, tr, 32)
	c1, s1 := NewPair(s, path, Config{}, Config{})
	c2, s2 := NewPair(s, path, Config{}, Config{})
	recv := map[int]uint64{}
	for i, c := range []*Conn{c1, c2} {
		i := i
		c.OnStream(func(st *Stream) {
			st.OnData(func(off uint64, data []byte) { recv[i] += uint64(len(data)) })
		})
	}
	for _, sv := range []*Conn{s1, s2} {
		st := sv.OpenStream(false)
		st.Write(payload(16 << 20))
		st.CloseWrite()
	}
	s.RunUntil(20 * time.Second)
	a, b := float64(recv[0]), float64(recv[1])
	if a == 0 || b == 0 {
		t.Fatalf("starvation: %v vs %v", a, b)
	}
	ratio := a / b
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 4 {
		t.Fatalf("unfair split: %v vs %v bytes", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MTU != cc.MSS || cfg.Overhead != 28 || cfg.InitialMaxData != 16<<20 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Controller == nil {
		t.Fatal("default controller missing")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := sim.New(25)
	client, server := testPair(t, s, 10, 32)
	client.OnStream(func(*Stream) {})
	st := server.OpenStream(false)
	st.Write(payload(256 << 10))
	st.CloseWrite()
	s.RunUntil(30 * time.Second)
	sst := server.Stats()
	if sst.StreamBytesSent != 256<<10 {
		t.Fatalf("stream bytes sent %d", sst.StreamBytesSent)
	}
	if sst.PacketsSent == 0 || sst.BytesSent == 0 {
		t.Fatal("no packets accounted")
	}
	if client.Stats().PacketsReceived == 0 {
		t.Fatal("client received nothing")
	}
}

func TestWriteAfterCloseWritePanics(t *testing.T) {
	s := sim.New(26)
	client, _ := testPair(t, s, 10, 32)
	st := client.OpenStream(false)
	st.CloseWrite()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Write([]byte("x"))
}

func TestWriteAtOnReliableStreamPanics(t *testing.T) {
	s := sim.New(27)
	client, _ := testPair(t, s, 10, 32)
	st := client.OpenStream(false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.WriteAt(0, []byte("x"))
}

package quic

import (
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

// benchSender returns a server-side Conn (the data sender in the experiment
// topology) with a warmed RTT estimate, without running any traffic.
func benchSender(s *sim.Sim) *Conn {
	tr := trace.Constant("bench", 50e6, 3600)
	path := netem.NewPath(s, tr, 64)
	_, server := NewPair(s, path, Config{}, Config{})
	server.rtt.OnSample(60 * time.Millisecond)
	return server
}

// benchTrack registers sp as in flight, mirroring what sendOnePacket does.
func benchTrack(c *Conn, sp *sentPacket) {
	c.sentQ.push(sp)
}

// BenchmarkOnAckSlidingWindow models the steady state of a bulk transfer:
// a ~512-packet window where each arriving ACK acknowledges the two oldest
// packets (the receiver reports its whole history as one range, as buildAck
// does) while two new packets enter flight. This is the exact shape that
// made the map-based onAck O(window) per ACK.
func BenchmarkOnAckSlidingWindow(b *testing.B) {
	s := sim.New(1)
	c := benchSender(s)
	const window = 512
	next := uint64(0)
	fill := func(k int) {
		for i := 0; i < k; i++ {
			sp := c.allocSent()
			sp.pn, sp.size, sp.sentAt, sp.ackEliciting = next, 1252, s.Now(), true
			benchTrack(c, sp)
			c.lastAckElic = s.Now()
			next++
		}
	}
	fill(window)
	acked := uint64(0)
	ack := &AckFrame{Ranges: []AckRange{{First: 0, Last: 0}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acked += 2
		ack.Ranges[0] = AckRange{First: 0, Last: acked - 1}
		c.onAck(ack)
		fill(2)
	}
}

// BenchmarkOnAckReordered acknowledges with a gapped two-range ACK so the
// newly-acked set is not a pure prefix of the in-flight window.
func BenchmarkOnAckReordered(b *testing.B) {
	s := sim.New(2)
	c := benchSender(s)
	const window = 256
	next := uint64(0)
	fill := func(k int) {
		for i := 0; i < k; i++ {
			sp := c.allocSent()
			sp.pn, sp.size, sp.sentAt, sp.ackEliciting = next, 1252, s.Now(), true
			benchTrack(c, sp)
			c.lastAckElic = s.Now()
			next++
		}
	}
	fill(window)
	acked := uint64(0)
	ack := &AckFrame{Ranges: []AckRange{{}, {}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Ack [acked+1, acked+2] but leave packet `acked` outstanding, then
		// close the gap on the next iteration.
		ack.Ranges[0] = AckRange{First: acked + 1, Last: acked + 2}
		ack.Ranges[1] = AckRange{First: 0, Last: acked}
		c.onAck(ack)
		acked += 3
		fill(3)
	}
}

// BenchmarkDetectLossPath exercises the loss-declaration walk: a window
// where the packet threshold declares the three oldest packets lost on
// every ACK of the frontier.
func BenchmarkDetectLossPath(b *testing.B) {
	s := sim.New(3)
	c := benchSender(s)
	const window = 256
	next := uint64(0)
	fill := func(k int) {
		for i := 0; i < k; i++ {
			sp := c.allocSent()
			sp.pn, sp.size, sp.sentAt, sp.ackEliciting = next, 1252, s.Now(), true
			benchTrack(c, sp)
			c.lastAckElic = s.Now()
			next++
		}
	}
	fill(window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Ack only the newest packet: everything ≥3 behind it is declared
		// lost by packet threshold and requeued.
		ack := &AckFrame{Ranges: []AckRange{{First: next - 1, Last: next - 1}}}
		c.onAck(ack)
		// Drain the requeued retransmissions so queues stay bounded.
		c.retransmit = c.retransmit[:0]
		c.ctrlQ = c.ctrlQ[:0]
		fill(window - sentCount(c))
	}
}

// sentCount reports the number of packets tracked in flight.
func sentCount(c *Conn) int {
	return c.sentQ.size()
}

// BenchmarkPacketEncodeScratch measures encoding a full-size data packet
// into a reused buffer.
func BenchmarkPacketEncodeScratch(b *testing.B) {
	pkt := &Packet{
		Number: 1 << 20,
		Frames: []Frame{
			&AckFrame{Ranges: []AckRange{{100, 200}, {10, 50}}},
			&StreamFrame{StreamID: 4, Offset: 1 << 20, Data: make([]byte, 1100)},
		},
	}
	buf := make([]byte, 0, pkt.WireSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = pkt.AppendTo(buf[:0])
	}
	_ = buf
}

package quic

import "sort"

// ByteRange is a half-open byte interval [Start, End).
type ByteRange struct {
	Start, End uint64
}

// Len returns the range length.
func (r ByteRange) Len() uint64 { return r.End - r.Start }

// RangeSet maintains a set of non-overlapping, sorted byte ranges. It is
// used for receive-buffer accounting, ACK ranges over packet numbers, and
// the loss bookkeeping on unreliable streams.
type RangeSet struct {
	ranges []ByteRange // sorted by Start, non-overlapping, non-adjacent
}

// Add inserts [start, end), merging with overlapping or adjacent ranges.
func (s *RangeSet) Add(start, end uint64) {
	if end <= start {
		return
	}
	// Fast paths for in-order arrival: extend or append at the tail
	// without reallocating.
	if n := len(s.ranges); n > 0 {
		last := &s.ranges[n-1]
		if start >= last.Start {
			if start <= last.End {
				if end > last.End {
					last.End = end
				}
				return
			}
			s.ranges = append(s.ranges, ByteRange{start, end})
			return
		}
	} else {
		s.ranges = append(s.ranges, ByteRange{start, end})
		return
	}
	// General case, in place: ranges[i:j] is the run that overlaps or abuts
	// [start, end) — possibly empty — found by binary search. Merge the run
	// into a single slot and shift the tail, reusing the backing array.
	rs := s.ranges
	i := sort.Search(len(rs), func(k int) bool { return rs[k].End >= start })
	j := sort.Search(len(rs), func(k int) bool { return rs[k].Start > end })
	if i == j {
		// Nothing to merge: open a slot at i.
		s.ranges = append(s.ranges, ByteRange{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = ByteRange{start, end}
		return
	}
	if rs[i].Start < start {
		start = rs[i].Start
	}
	if rs[j-1].End > end {
		end = rs[j-1].End
	}
	rs[i] = ByteRange{start, end}
	n := copy(rs[i+1:], rs[j:])
	s.ranges = rs[:i+1+n]
}

// Contains reports whether [start, end) is fully covered.
func (s *RangeSet) Contains(start, end uint64) bool {
	if end <= start {
		return true
	}
	for _, r := range s.ranges {
		if r.Start <= start && end <= r.End {
			return true
		}
	}
	return false
}

// CoveredBytes returns the total number of bytes covered.
func (s *RangeSet) CoveredBytes() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += r.Len()
	}
	return n
}

// Gaps returns the uncovered ranges within [start, end).
func (s *RangeSet) Gaps(start, end uint64) []ByteRange {
	var gaps []ByteRange
	cur := start
	for _, r := range s.ranges {
		if r.End <= cur {
			continue
		}
		if r.Start >= end {
			break
		}
		if r.Start > cur {
			gaps = append(gaps, ByteRange{cur, min64(r.Start, end)})
		}
		if r.End > cur {
			cur = r.End
		}
		if cur >= end {
			return gaps
		}
	}
	if cur < end {
		gaps = append(gaps, ByteRange{cur, end})
	}
	return gaps
}

// Ranges returns the covered ranges (read-only).
func (s *RangeSet) Ranges() []ByteRange { return s.ranges }

// ContiguousFrom returns the end of the contiguous covered prefix starting
// at start; if start itself is uncovered it returns start.
func (s *RangeSet) ContiguousFrom(start uint64) uint64 {
	for _, r := range s.ranges {
		if r.Start <= start && start < r.End {
			return r.End
		}
	}
	return start
}

// Min returns the smallest covered offset; ok is false when empty.
func (s *RangeSet) Min() (uint64, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[0].Start, true
}

// Max returns the largest covered offset (exclusive); ok is false when empty.
func (s *RangeSet) Max() (uint64, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[len(s.ranges)-1].End, true
}

// IsEmpty reports whether no bytes are covered.
func (s *RangeSet) IsEmpty() bool { return len(s.ranges) == 0 }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

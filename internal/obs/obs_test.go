package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilScopeNoOps(t *testing.T) {
	var s *Scope
	if s.Enabled() {
		t.Fatal("nil scope reports enabled")
	}
	// None of these may panic.
	s.Count(CPacketsSent, 10)
	s.Inc(CRetries)
	s.SetGauge(GBufferMs, 42)
	s.Observe(HRTTMs, 7)
	s.Event(EvFailover, 1, 2, 3)
	s.EventX(EvSegmentDone, 1, 2, 3, 0.5)
	if s.Registry() != nil {
		t.Fatal("nil scope registry should be nil")
	}
	if s.TrialReport() != nil {
		t.Fatal("nil scope report should be nil")
	}
}

func TestNilScopeZeroAlloc(t *testing.T) {
	var s *Scope
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(CPacketsSent)
		s.Count(CBytesSent, 1200)
		s.Observe(HRTTMs, 33)
		s.Event(EvLossReport, 4, 100, 1200)
	})
	if allocs != 0 {
		t.Fatalf("nil scope allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledScopeRecordingZeroAlloc(t *testing.T) {
	s := NewScope(nil, Options{TimelineCap: 64})
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(CPacketsSent)
		s.Count(CBytesSent, 1200)
		s.SetGauge(GBufferMs, 9000)
		s.Observe(HRTTMs, 33)
		s.Event(EvLossReport, 4, 100, 1200)
	})
	if allocs != 0 {
		t.Fatalf("enabled scope recording allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestCountersGaugesHists(t *testing.T) {
	s := NewScope(nil, Options{})
	s.Inc(CSegments)
	s.Count(CSegments, 2)
	s.Count(CBytesReliable, 5000)
	s.SetGauge(GBufferMs, 100)
	s.SetGauge(GBufferMs, 250) // last-value-wins
	s.Observe(HRTTMs, 1)       // first bucket (<=1)
	s.Observe(HRTTMs, 15)      // <=20 bucket
	s.Observe(HRTTMs, 99999)   // overflow
	r := s.Registry()
	if got := r.Counter(CSegments); got != 3 {
		t.Fatalf("CSegments = %d, want 3", got)
	}
	if got := r.Counter(CBytesReliable); got != 5000 {
		t.Fatalf("CBytesReliable = %d, want 5000", got)
	}
	if got := r.Gauge(GBufferMs); got != 250 {
		t.Fatalf("GBufferMs = %d, want 250", got)
	}
	if got := r.HistCount(HRTTMs); got != 3 {
		t.Fatalf("HistCount = %d, want 3", got)
	}
	snap := s.TrialReport().Hists[HRTTMs]
	if snap.Count != 3 || snap.Sum != 1+15+99999 {
		t.Fatalf("snapshot count/sum = %d/%d", snap.Count, snap.Sum)
	}
	bounds := HRTTMs.Bounds()
	if len(snap.Buckets) != len(bounds)+1 {
		t.Fatalf("bucket len = %d, want %d", len(snap.Buckets), len(bounds)+1)
	}
	if snap.Buckets[0] != 1 { // value 1 hits bound 1 inclusively
		t.Fatalf("bucket[0] = %d, want 1", snap.Buckets[0])
	}
	if snap.Buckets[len(bounds)] != 1 { // overflow
		t.Fatalf("overflow bucket = %d, want 1", snap.Buckets[len(bounds)])
	}
	if got, want := snap.Mean(), float64(1+15+99999)/3; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot mean should be 0")
	}
}

func TestTimelineSeqAndClock(t *testing.T) {
	var now time.Duration
	s := NewScope(func() time.Duration { return now }, Options{TimelineCap: 16})
	now = 5 * time.Millisecond
	s.Event(EvSegmentChosen, 0, 2, 1000)
	now = 9 * time.Millisecond
	s.EventX(EvSegmentDone, 0, 1000, 0, 0.75)
	evs := s.TrialReport().Events
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].At != 5*time.Millisecond || evs[1].At != 9*time.Millisecond {
		t.Fatalf("timestamps = %v,%v", evs[0].At, evs[1].At)
	}
	if evs[0].Kind != EvSegmentChosen || evs[0].B != 2 || evs[0].C != 1000 {
		t.Fatalf("payload mismatch: %+v", evs[0])
	}
	if evs[1].X != 0.75 {
		t.Fatalf("X = %v, want 0.75", evs[1].X)
	}
}

func TestTimelineRingWrap(t *testing.T) {
	s := NewScope(nil, Options{TimelineCap: 4})
	for i := int64(0); i < 10; i++ {
		s.Event(EvRetry, i, 0, 0)
	}
	rep := s.TrialReport()
	if rep.Recorded != 10 {
		t.Fatalf("recorded = %d, want 10", rep.Recorded)
	}
	if rep.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rep.Dropped())
	}
	if len(rep.Events) != 4 {
		t.Fatalf("survivors = %d, want 4", len(rep.Events))
	}
	// Oldest survivor first, seqs contiguous 7..10, payload follows seq.
	for i, ev := range rep.Events {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.A != int64(wantSeq-1) {
			t.Fatalf("event %d = seq %d / A %d, want seq %d / A %d",
				i, ev.Seq, ev.A, wantSeq, wantSeq-1)
		}
	}
}

// recordWorkload drives a scope through a fixed mixed sequence.
func recordWorkload(s *Scope) {
	var now time.Duration
	for i := int64(0); i < 50; i++ {
		now += time.Duration(i) * time.Millisecond
		s.Inc(CPacketsSent)
		s.Count(CBytesSent, uint64(1200+i))
		s.Observe(HRTTMs, 10+i%40)
		s.EventX(EvSegmentChosen, i, i%5, 1000*i, float64(i)/50)
		if i%7 == 0 {
			s.Event(EvLossReport, i, 100, 1200)
		}
	}
}

func TestDeterministicExport(t *testing.T) {
	render := func() (string, string) {
		var clock time.Duration
		s := NewScope(func() time.Duration { clock += time.Millisecond; return clock }, Options{TimelineCap: 32})
		recordWorkload(s)
		rep := Merge([]*TrialReport{s.TrialReport()})
		var j, c bytes.Buffer
		if err := rep.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render()
	j2, c2 := render()
	if j1 != j2 {
		t.Fatal("JSONL output not deterministic")
	}
	if c1 != c2 {
		t.Fatal("CSV output not deterministic")
	}
}

func TestJSONLParsesBack(t *testing.T) {
	s := NewScope(nil, Options{TimelineCap: 8})
	recordWorkload(s)
	rep := Merge([]*TrialReport{nil, s.TrialReport()})
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	var lastSeq uint64
	for sc.Scan() {
		lines++
		var rec struct {
			Trial int     `json:"trial"`
			Seq   uint64  `json:"seq"`
			TMs   float64 `json:"t_ms"`
			Kind  string  `json:"kind"`
			A     int64   `json:"a"`
			B     int64   `json:"b"`
			C     int64   `json:"c"`
			X     float64 `json:"x"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if rec.Trial != 1 {
			t.Fatalf("trial = %d, want 1 (stamped by Merge)", rec.Trial)
		}
		if rec.Kind == "unknown_event" || rec.Kind == "" {
			t.Fatalf("bad kind on line %d: %q", lines, rec.Kind)
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
	}
	if lines != 8 { // ring cap survivors only
		t.Fatalf("got %d lines, want 8", lines)
	}
}

func TestCSVShapeAndTotals(t *testing.T) {
	mk := func(segments uint64) *TrialReport {
		s := NewScope(nil, Options{TimelineCap: 4})
		s.Count(CSegments, segments)
		return s.TrialReport()
	}
	rep := Merge([]*TrialReport{mk(3), mk(4)})
	if rep.Counter(CSegments) != 7 {
		t.Fatalf("total segments = %d, want 7", rep.Counter(CSegments))
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(rows) != 4 { // header + 2 trials + total
		t.Fatalf("got %d rows, want 4:\n%s", len(rows), buf.String())
	}
	wantCols := 2 + int(NumCounters) + 1 // trial, session, counters, failed
	for i, row := range rows {
		if got := len(strings.Split(row, ",")); got != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, got, wantCols)
		}
	}
	if !strings.HasPrefix(rows[0], "trial,session,packets_sent,") {
		t.Fatalf("unexpected header: %s", rows[0])
	}
	if !strings.HasPrefix(rows[3], "total,-,") {
		t.Fatalf("last row should be total: %s", rows[3])
	}
}

// MergeSessions stamps both indices in (trial, session) order, skips nil
// cells, and surfaces the session dimension in the JSONL export.
func TestMergeSessionsStamping(t *testing.T) {
	mk := func() *TrialReport {
		s := NewScope(nil, Options{TimelineCap: 4})
		s.Inc(CSegments)
		s.Event(EvStartup, 0, 0, 0)
		return s.TrialReport()
	}
	rep := MergeSessions([][]*TrialReport{
		{mk(), mk()},
		{mk(), nil, mk()},
	})
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 2}}
	if len(rep.Trials) != len(want) {
		t.Fatalf("%d reports, want %d", len(rep.Trials), len(want))
	}
	for i, tr := range rep.Trials {
		if tr.Trial != want[i][0] || tr.Session != want[i][1] {
			t.Fatalf("report %d stamped (%d,%d), want (%d,%d)",
				i, tr.Trial, tr.Session, want[i][0], want[i][1])
		}
	}
	if rep.Counter(CSegments) != 4 {
		t.Fatalf("totals fold %d segments, want 4", rep.Counter(CSegments))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	i := 0
	for sc.Scan() {
		var rec struct {
			Trial   int `json:"trial"`
			Session int `json:"session"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if rec.Trial != want[i][0] || rec.Session != want[i][1] {
			t.Fatalf("line %d carries (%d,%d), want (%d,%d)",
				i, rec.Trial, rec.Session, want[i][0], want[i][1])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("%d JSONL lines, want %d", i, len(want))
	}
}

func TestSummaryAndKindCounts(t *testing.T) {
	s := NewScope(nil, Options{})
	s.Count(CRebuffers, 2)
	s.Observe(HStallMs, 400)
	s.Event(EvRebufferStart, 3, 0, 0)
	s.Event(EvRebufferStop, 3, 0, 0)
	s.Event(EvRebufferStart, 5, 0, 0)
	rep := Merge([]*TrialReport{s.TrialReport()})
	sum := rep.Summary()
	if !strings.Contains(sum, "rebuffers = 2") || !strings.Contains(sum, "stall_ms") {
		t.Fatalf("summary missing fields:\n%s", sum)
	}
	kinds := rep.KindCounts()
	want := []string{"rebuffer_start=2", "rebuffer_stop=1"}
	if len(kinds) != len(want) || kinds[0] != want[0] || kinds[1] != want[1] {
		t.Fatalf("kind counts = %v, want %v", kinds, want)
	}
	var empty *Report
	if empty.Counter(CRebuffers) != 0 || empty.KindCounts() != nil {
		t.Fatal("nil report accessors should be zero-valued")
	}
	if err := empty.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestNameTablesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" || c.String() == "unknown_counter" {
			t.Fatalf("counter %d has no name", c)
		}
	}
	if Counter(255).String() != "unknown_counter" {
		t.Fatal("out-of-range counter name")
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if g.String() == "" || g.String() == "unknown_gauge" {
			t.Fatalf("gauge %d has no name", g)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		if h.String() == "" || h.String() == "unknown_hist" {
			t.Fatalf("hist %d has no name", h)
		}
		if len(h.Bounds()) == 0 || len(h.Bounds()) > maxBuckets {
			t.Fatalf("hist %d bounds out of range", h)
		}
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown_event" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(255).String() != "unknown_event" {
		t.Fatal("out-of-range kind name")
	}
}

// Shard-tagged reports must carry a shard field in both exports; untagged
// reports must emit byte-for-byte the same format as before sharding
// existed — that equality is what lets a merged campaign's exports match an
// unsharded run's exactly.
func TestShardTaggedExports(t *testing.T) {
	build := func() *Report {
		s := NewScope(nil, Options{TimelineCap: 8})
		recordWorkload(s)
		return Merge([]*TrialReport{s.TrialReport()})
	}
	plain := build()
	if plain.ShardTag != -1 {
		t.Fatalf("MergeSessions must leave reports untagged, got %d", plain.ShardTag)
	}
	tagged := build()
	tagged.ShardTag = 2

	var pj, tj, pc, tc bytes.Buffer
	if err := plain.WriteJSONL(&pj); err != nil {
		t.Fatal(err)
	}
	if err := tagged.WriteJSONL(&tj); err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteCSV(&pc); err != nil {
		t.Fatal(err)
	}
	if err := tagged.WriteCSV(&tc); err != nil {
		t.Fatal(err)
	}

	if strings.Contains(pj.String(), `"shard"`) {
		t.Fatal("untagged JSONL must not carry a shard field")
	}
	if strings.Contains(pc.String(), "shard") {
		t.Fatal("untagged CSV must not carry a shard column")
	}
	sc := bufio.NewScanner(&tj)
	for sc.Scan() {
		var rec struct {
			Shard *int `json:"shard"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("tagged JSONL line invalid: %v", err)
		}
		if rec.Shard == nil || *rec.Shard != 2 {
			t.Fatalf("tagged JSONL line missing shard=2: %s", sc.Text())
		}
	}
	lines := strings.Split(strings.TrimSuffix(tc.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "trial,session,shard,") {
		t.Fatalf("tagged CSV header missing shard column: %s", lines[0])
	}
	for _, ln := range lines[1:] {
		cols := strings.Split(ln, ",")
		if cols[2] != "2" {
			t.Fatalf("tagged CSV row shard column = %q, want 2: %s", cols[2], ln)
		}
	}

	// Clearing the tag restores the canonical bytes exactly.
	tagged.ShardTag = -1
	var uj, uc bytes.Buffer
	if err := tagged.WriteJSONL(&uj); err != nil {
		t.Fatal(err)
	}
	if err := tagged.WriteCSV(&uc); err != nil {
		t.Fatal(err)
	}
	if uj.String() != pj.String() || uc.String() != pc.String() {
		t.Fatal("untagging must restore canonical export bytes")
	}
}

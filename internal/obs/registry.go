package obs

// Counter identifies a monotonically increasing event count. Counters are
// fixed at compile time and stored in a flat array, so incrementing one is
// an index and an add — no map lookups, no allocation.
type Counter uint8

// The counter set, spanning every instrumented layer (transport → HTTP →
// player → ABR). Transport counters cover both endpoints of a connection
// pair when both carry the same scope (the experiment harness attaches the
// trial scope to client and server alike).
const (
	// transport (QUIC*)
	CPacketsSent Counter = iota
	CPacketsReceived
	CPacketsLost
	CBytesSent
	CStreamBytesSent
	CRetransmitBytes
	CUnreliableLostBytes // sender side: unreliable bytes declared lost
	CLossReportedBytes   // receiver side: bytes covered by LOSS_REPORT frames
	CPTOs
	CConnCloses
	// HTTP client
	CRequests
	CRetries
	CFailedRequests
	CFailovers
	// player
	CBytesReliable   // body bytes delivered over reliable streams
	CBytesUnreliable // body bytes delivered over unreliable streams
	CRecoveredBytes  // repaired via selective retransmission (§4.2)
	CSegments
	CVirtualSegments
	CRebuffers
	CAbandonRestarts
	CAbandonPartials
	// ABR
	CAbrDecisions
	CAbrSleeps

	NumCounters
)

var counterNames = [NumCounters]string{
	CPacketsSent:         "packets_sent",
	CPacketsReceived:     "packets_received",
	CPacketsLost:         "packets_lost",
	CBytesSent:           "bytes_sent",
	CStreamBytesSent:     "stream_bytes_sent",
	CRetransmitBytes:     "retransmit_bytes",
	CUnreliableLostBytes: "unreliable_lost_bytes",
	CLossReportedBytes:   "loss_reported_bytes",
	CPTOs:                "ptos",
	CConnCloses:          "conn_closes",
	CRequests:            "requests",
	CRetries:             "retries",
	CFailedRequests:      "failed_requests",
	CFailovers:           "failovers",
	CBytesReliable:       "bytes_reliable",
	CBytesUnreliable:     "bytes_unreliable",
	CRecoveredBytes:      "recovered_bytes",
	CSegments:            "segments",
	CVirtualSegments:     "virtual_segments",
	CRebuffers:           "rebuffers",
	CAbandonRestarts:     "abandon_restarts",
	CAbandonPartials:     "abandon_partials",
	CAbrDecisions:        "abr_decisions",
	CAbrSleeps:           "abr_sleeps",
}

// String returns the counter's snake_case export name.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown_counter"
}

// Gauge identifies a last-value-wins instantaneous measurement.
type Gauge uint8

// The gauge set.
const (
	GBufferMs       Gauge = iota // playback buffer level
	GThroughputKbps              // player throughput estimate

	NumGauges
)

var gaugeNames = [NumGauges]string{
	GBufferMs:       "buffer_ms",
	GThroughputKbps: "throughput_kbps",
}

// String returns the gauge's snake_case export name.
func (g Gauge) String() string {
	if g < NumGauges {
		return gaugeNames[g]
	}
	return "unknown_gauge"
}

// Hist identifies a fixed-bucket histogram. Bucket bounds are static per
// histogram, so observing a value is a bounded linear scan over at most
// maxBuckets int64 comparisons — no allocation, no sorting.
type Hist uint8

// The histogram set.
const (
	HRTTMs     Hist = iota // smoothed-path RTT samples (ms)
	HSegmentMs             // segment download durations (ms)
	HStallMs               // individual rebuffer durations (ms)
	HTputKbps              // completed-download throughput samples (kbps)

	NumHists
)

// maxBuckets bounds the per-histogram bound count (the +1 overflow bucket
// is stored separately at index len(bounds)).
const maxBuckets = 12

type histDef struct {
	name   string
	bounds []int64 // upper inclusive bounds; values above the last land in overflow
}

var histDefs = [NumHists]histDef{
	HRTTMs:     {"rtt_ms", []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}},
	HSegmentMs: {"segment_ms", []int64{50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000, 32000}},
	HStallMs:   {"stall_ms", []int64{10, 50, 100, 250, 500, 1000, 2000, 5000, 10000, 30000}},
	HTputKbps:  {"tput_kbps", []int64{250, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000}},
}

// String returns the histogram's snake_case export name.
func (h Hist) String() string {
	if h < NumHists {
		return histDefs[h].name
	}
	return "unknown_hist"
}

// Bounds returns the histogram's static upper bucket bounds.
func (h Hist) Bounds() []int64 { return histDefs[h].bounds }

// histogram is the in-registry representation: fixed-size bucket array so
// the Registry is a single flat allocation.
type histogram struct {
	count   uint64
	sum     int64
	buckets [maxBuckets + 1]uint64 // last used slot = overflow
}

func (h *histogram) observe(def *histDef, v int64) {
	h.count++
	h.sum += v
	for i, b := range def.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(def.bounds)]++
}

// HistSnapshot is an exported copy of one histogram's state.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets []uint64 // len(Bounds())+1; last is the overflow bucket
}

// Mean returns the mean observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry holds the typed counters, gauges, and histograms of one scope.
// It is a flat value type: embedding it in a Scope costs one allocation for
// the whole metric set, and every update is an array write.
//
// A Registry is not safe for concurrent use; the experiment harness gives
// each trial (one simulated world, one goroutine) its own.
type Registry struct {
	counters [NumCounters]uint64
	gauges   [NumGauges]int64
	hists    [NumHists]histogram
}

// Add increments a counter by n.
func (r *Registry) Add(c Counter, n uint64) { r.counters[c] += n }

// Counter returns a counter's current value.
func (r *Registry) Counter(c Counter) uint64 { return r.counters[c] }

// SetGauge records a gauge's latest value.
func (r *Registry) SetGauge(g Gauge, v int64) { r.gauges[g] = v }

// Gauge returns a gauge's last recorded value.
func (r *Registry) Gauge(g Gauge) int64 { return r.gauges[g] }

// Observe records a value into a histogram.
func (r *Registry) Observe(h Hist, v int64) { r.hists[h].observe(&histDefs[h], v) }

// HistCount returns the number of observations in a histogram.
func (r *Registry) HistCount(h Hist) uint64 { return r.hists[h].count }

// snapshotHist copies one histogram out of the registry.
func (r *Registry) snapshotHist(h Hist) HistSnapshot {
	def := &histDefs[h]
	hg := &r.hists[h]
	out := HistSnapshot{Count: hg.count, Sum: hg.sum, Buckets: make([]uint64, len(def.bounds)+1)}
	copy(out.Buckets, hg.buckets[:len(def.bounds)+1])
	return out
}

// Package obs is the telemetry subsystem: typed counters, gauges, and
// fixed-bucket histograms in a Registry, plus a per-trial Timeline of
// cross-layer events (segment choices, virtual levels, loss reports,
// retries, failovers, rebuffers, abandonments) with ring-buffer storage and
// deterministic sequence numbers.
//
// The package is zero-dependency (stdlib only) and allocation-conscious by
// contract:
//
//   - A nil *Scope is valid and turns every recording method into a no-op;
//     instrumented hot paths (the QUIC* ACK path, the receive path) stay at
//     0 allocs/op with telemetry disabled, pinned by tests in internal/quic.
//   - An enabled Scope allocates once at construction (registry + ring) and
//     never again while recording: counters and gauges are array writes,
//     histograms are bounded linear scans, events are in-place ring writes
//     with scalar payloads — no interfaces, no variadics, no fmt.
//   - Recording never schedules simulator events or perturbs timing, so a
//     telemetered run is bit-identical to an untelemetered one; sequence
//     numbers are deterministic because each trial's world is
//     single-threaded.
//
// A Scope is not safe for concurrent use. The experiment harness creates
// one per trial and merges the per-trial reports afterwards, so parallel
// trial execution still yields a deterministic aggregate.
package obs

import "time"

// Options parameterizes a Scope.
type Options struct {
	// TimelineCap is the event ring capacity (DefaultTimelineCap if <= 0).
	TimelineCap int
}

// Scope is the recording handle threaded through the stack. The zero
// pointer is the disabled state: every method checks the receiver for nil
// first, so call sites need no guards of their own.
//
//voxel:nilfree
type Scope struct {
	reg Registry
	tl  Timeline
	now func() time.Duration
}

// NewScope returns an enabled scope. now supplies the current virtual time
// for event stamps (typically sim.Now); a nil now stamps events at zero.
func NewScope(now func() time.Duration, opts Options) *Scope {
	return &Scope{tl: newTimeline(opts.TimelineCap), now: now}
}

// Enabled reports whether the scope records anything.
func (s *Scope) Enabled() bool { return s != nil }

// Count adds n to a counter.
func (s *Scope) Count(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.reg.Add(c, n)
}

// Inc adds one to a counter.
func (s *Scope) Inc(c Counter) {
	if s == nil {
		return
	}
	s.reg.Add(c, 1)
}

// SetGauge records a gauge's latest value.
func (s *Scope) SetGauge(g Gauge, v int64) {
	if s == nil {
		return
	}
	s.reg.SetGauge(g, v)
}

// Observe records a value into a histogram.
func (s *Scope) Observe(h Hist, v int64) {
	if s == nil {
		return
	}
	s.reg.Observe(h, v)
}

// Event records a timeline event with integer payload fields.
func (s *Scope) Event(k Kind, a, b, c int64) {
	if s == nil {
		return
	}
	s.tl.record(s.timestamp(), k, a, b, c, 0)
}

// EventX records a timeline event carrying an additional float payload.
func (s *Scope) EventX(k Kind, a, b, c int64, x float64) {
	if s == nil {
		return
	}
	s.tl.record(s.timestamp(), k, a, b, c, x)
}

func (s *Scope) timestamp() time.Duration {
	if s.now == nil {
		return 0
	}
	return s.now()
}

// Registry exposes the scope's metric registry (nil for a disabled scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return &s.reg
}

// TrialReport snapshots the scope into an exportable per-trial report.
// The Trial index is zero; the harness stamps it when aggregating.
func (s *Scope) TrialReport() *TrialReport {
	if s == nil {
		return nil
	}
	r := &TrialReport{
		Counters: s.reg.counters,
		Gauges:   s.reg.gauges,
		Events:   s.tl.Events(),
		Recorded: s.tl.Recorded(),
	}
	for h := Hist(0); h < NumHists; h++ {
		r.Hists[h] = s.reg.snapshotHist(h)
	}
	return r
}

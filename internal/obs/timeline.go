package obs

import "time"

// Kind classifies a timeline event. Each kind documents the meaning of the
// event's scalar payload fields A, B, C, and X.
type Kind uint8

// The event kinds, covering one trial's cross-layer story.
const (
	// EvSegmentChosen: the ABR committed to a download.
	// A=segment index, B=quality rung, C=target bytes, X=expected score.
	EvSegmentChosen Kind = iota
	// EvVirtualLevel: the chosen candidate is a partial (virtual) level.
	// A=segment index, B=quality rung, C=bytes.
	EvVirtualLevel
	// EvBytesReliable: a reliable phase delivered its body bytes.
	// A=segment index, B=bytes.
	EvBytesReliable
	// EvBytesUnreliable: an unreliable body finished (complete or failed).
	// A=segment index, B=bytes received.
	EvBytesUnreliable
	// EvLossReport: the transport reported a permanent unreliable hole.
	// A=stream ID, B=stream offset, C=length.
	EvLossReport
	// EvRetry: a request attempt failed and a retry was scheduled.
	// A=attempt number (1-based), B=reason code (ReasonTimeout, ...).
	EvRetry
	// EvFailover: the HTTP client rebound to a spare origin connection.
	EvFailover
	// EvRebufferStart: playback stalled. A=next segment index.
	EvRebufferStart
	// EvRebufferStop: playback resumed. A=next segment index,
	// X=this rebuffer's stall duration in seconds.
	EvRebufferStop
	// EvAbandonRestart: download discarded, refetching at a new candidate.
	// A=segment index, B=wasted bytes, C=new target bytes.
	EvAbandonRestart
	// EvAbandonPartial: download stopped, partial segment kept (§4.3).
	// A=segment index, B=bytes received, C=target bytes.
	EvAbandonPartial
	// EvRequestFailed: a request was abandoned for good. A=attempts made.
	EvRequestFailed
	// EvSegmentDone: a segment completed (fully or partially).
	// A=segment index, B=bytes received, C=bytes lost, X=QoE score.
	EvSegmentDone
	// EvStartup: first segment buffered, playback begins. X=delay seconds.
	EvStartup
	// EvConnClosed: a transport connection closed. A=reason code
	// (ReasonIdleTimeout, ReasonClosed, ReasonOther).
	EvConnClosed
	// EvTrialFailed: the trial died (panic, invariant violation, or watchdog
	// budget) and this report is the harness's failed-trial placeholder. The
	// event is stamped at the failure's virtual time.
	EvTrialFailed

	NumKinds
)

// Reason codes carried in event payloads (EvRetry.B, EvConnClosed.A).
const (
	ReasonOther = iota
	ReasonIdleTimeout
	ReasonClosed
	ReasonTimeout
)

var kindNames = [NumKinds]string{
	EvSegmentChosen:   "segment_chosen",
	EvVirtualLevel:    "virtual_level",
	EvBytesReliable:   "bytes_reliable",
	EvBytesUnreliable: "bytes_unreliable",
	EvLossReport:      "loss_report",
	EvRetry:           "retry",
	EvFailover:        "failover",
	EvRebufferStart:   "rebuffer_start",
	EvRebufferStop:    "rebuffer_stop",
	EvAbandonRestart:  "abandon_restart",
	EvAbandonPartial:  "abandon_partial",
	EvRequestFailed:   "request_failed",
	EvSegmentDone:     "segment_done",
	EvStartup:         "startup",
	EvConnClosed:      "conn_closed",
	EvTrialFailed:     "trial_failed",
}

// String returns the kind's snake_case export name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "unknown_event"
}

// Event is one recorded timeline entry. Payload semantics are per Kind.
// Seq numbers are assigned in record order within a trial, starting at 1;
// because every trial runs on a single-threaded simulated world, the
// sequence is deterministic for a given seed regardless of how many trials
// run in parallel.
type Event struct {
	Seq     uint64
	At      time.Duration // virtual time since the trial's start
	Kind    Kind
	A, B, C int64
	X       float64
}

// DefaultTimelineCap is the ring capacity used when a Scope is created
// without an explicit cap: large enough for a full 75-segment trial under
// heavy impairment, small enough to keep per-trial memory bounded.
const DefaultTimelineCap = 8192

// Timeline records events into a fixed ring buffer: the most recent cap
// events survive, older ones are evicted, and Recorded keeps the true
// total so exports can say how many were dropped. Recording never
// allocates after construction.
type Timeline struct {
	ring  []Event
	total uint64
}

func newTimeline(cap int) Timeline {
	if cap <= 0 {
		cap = DefaultTimelineCap
	}
	return Timeline{ring: make([]Event, cap)}
}

func (t *Timeline) record(at time.Duration, k Kind, a, b, c int64, x float64) {
	slot := &t.ring[t.total%uint64(len(t.ring))]
	t.total++
	slot.Seq = t.total
	slot.At = at
	slot.Kind = k
	slot.A, slot.B, slot.C = a, b, c
	slot.X = x
}

// Recorded returns the total number of events recorded (survivors plus
// evicted).
func (t *Timeline) Recorded() uint64 { return t.total }

// Dropped returns how many events were evicted by the ring.
func (t *Timeline) Dropped() uint64 {
	if t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Events returns the surviving events in sequence order (oldest survivor
// first). The returned slice is freshly allocated.
func (t *Timeline) Events() []Event {
	n := t.total
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	out := make([]Event, n)
	start := t.total - n // seq of the oldest survivor, minus one
	for i := uint64(0); i < n; i++ {
		out[i] = t.ring[(start+i)%uint64(len(t.ring))]
	}
	return out
}

package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TrialReport is the exportable snapshot of one trial's scope. In swarm
// runs each concurrent session records into its own scope, so one trial
// yields one TrialReport per session, distinguished by Session.
type TrialReport struct {
	Trial    int  // trial index within the cell; stamped by the harness
	Session  int  // session index within the trial; 0 outside swarm mode
	Failed   bool // the trial died; this is a placeholder, not a snapshot
	Counters [NumCounters]uint64
	Gauges   [NumGauges]int64
	Hists    [NumHists]HistSnapshot
	Events   []Event // surviving timeline events, seq order
	Recorded uint64  // total events recorded (>= len(Events) when evicted)
}

// FailedTrialReport builds the placeholder report the harness substitutes
// for a trial that died before its scopes could be snapshotted: an explicit
// Failed marker carrying a single trial_failed timeline event stamped at
// the failure's virtual time. Substituting (rather than skipping) keeps
// exports aligned — every trial occupies exactly one slot — and makes the
// failure visible in both the CSV (failed column) and the JSONL stream.
func FailedTrialReport(at time.Duration) *TrialReport {
	return &TrialReport{
		Failed:   true,
		Events:   []Event{{Seq: 1, At: at, Kind: EvTrialFailed}},
		Recorded: 1,
	}
}

// Dropped returns how many timeline events the ring evicted.
func (r *TrialReport) Dropped() uint64 {
	return r.Recorded - uint64(len(r.Events))
}

// Report aggregates the per-trial reports of one experiment cell.
type Report struct {
	Trials []*TrialReport
	Totals [NumCounters]uint64 // counters summed across trials
	// ShardTag is the shard index this report was produced by, or -1 when
	// the run was unsharded (or the report is a merged whole). A tagged
	// report's JSONL/CSV exports carry an extra shard field so per-shard
	// files are self-describing; an untagged report emits exactly the
	// pre-shard format, which is what makes a merged export byte-identical
	// to a single-process run's.
	ShardTag int
}

// Merge builds a cell-level report from per-trial reports, stamping each
// with its trial index. Nil entries (trials run without telemetry) are
// skipped, so the result is deterministic for a given configuration
// regardless of worker scheduling.
func Merge(trials []*TrialReport) *Report {
	cells := make([][]*TrialReport, len(trials))
	for i, t := range trials {
		cells[i] = []*TrialReport{t}
	}
	return MergeSessions(cells)
}

// MergeSessions builds a cell-level report from per-trial, per-session
// reports (swarm mode: trials[ti][si] is trial ti's session si), stamping
// each report with both indices. Reports land in (trial, session) order, so
// the export is deterministic regardless of worker scheduling. Nil entries
// are skipped.
func MergeSessions(trials [][]*TrialReport) *Report {
	rep := &Report{ShardTag: -1}
	for ti, sessions := range trials {
		for si, t := range sessions {
			if t == nil {
				continue
			}
			t.Trial = ti
			t.Session = si
			rep.Trials = append(rep.Trials, t)
			for c := Counter(0); c < NumCounters; c++ {
				rep.Totals[c] += t.Counters[c]
			}
		}
	}
	return rep
}

// Counter returns a counter's cell-wide total.
func (r *Report) Counter(c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.Totals[c]
}

// HistMerged returns one histogram merged across all trials.
func (r *Report) HistMerged(h Hist) HistSnapshot {
	out := HistSnapshot{Buckets: make([]uint64, len(histDefs[h].bounds)+1)}
	if r == nil {
		return out
	}
	for _, t := range r.Trials {
		s := t.Hists[h]
		out.Count += s.Count
		out.Sum += s.Sum
		for i, b := range s.Buckets {
			out.Buckets[i] += b
		}
	}
	return out
}

// WriteJSONL writes every trial's timeline as one JSON object per line:
//
//	{"trial":0,"session":0,"seq":12,"t_ms":1533.250,"kind":"segment_chosen","a":3,"b":9,"c":182000,"x":0.9871}
//
// Field order and number formatting are fixed, so identical reports produce
// identical bytes. The encoding is hand-rolled (strconv only): every field
// is a number or a bare snake_case kind name, so no JSON escaping is needed.
func (r *Report) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b []byte
	for _, t := range r.Trials {
		for _, ev := range t.Events {
			b = appendEventJSON(b[:0], t.Trial, t.Session, r.ShardTag, ev)
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendEventJSON(b []byte, trial, session, shard int, ev Event) []byte {
	b = append(b, `{"trial":`...)
	b = strconv.AppendInt(b, int64(trial), 10)
	b = append(b, `,"session":`...)
	b = strconv.AppendInt(b, int64(session), 10)
	if shard >= 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(shard), 10)
	}
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"t_ms":`...)
	b = strconv.AppendFloat(b, float64(ev.At)/float64(time.Millisecond), 'f', 3, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","a":`...)
	b = strconv.AppendInt(b, ev.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, ev.B, 10)
	b = append(b, `,"c":`...)
	b = strconv.AppendInt(b, ev.C, 10)
	b = append(b, `,"x":`...)
	b = strconv.AppendFloat(b, ev.X, 'f', 4, 64)
	b = append(b, "}\n"...)
	return b
}

// WriteCSV writes the per-trial counters in wide format: a header row of
// counter names, one row per (trial, session) report, and a final "total"
// row. Column order follows the Counter enum, so output is deterministic.
// The trailing "failed" column marks failed-trial placeholder rows (1) and
// counts them on the total row.
func (r *Report) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("trial,session")
	tagged := r.ShardTag >= 0
	if tagged {
		sb.WriteString(",shard")
	}
	for c := Counter(0); c < NumCounters; c++ {
		sb.WriteByte(',')
		sb.WriteString(c.String())
	}
	sb.WriteString(",failed\n")
	shardCol := ""
	if tagged {
		shardCol = "," + strconv.Itoa(r.ShardTag)
	}
	var nfailed uint64
	row := func(label string, vals *[NumCounters]uint64, failed uint64) {
		sb.WriteString(label)
		for c := Counter(0); c < NumCounters; c++ {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatUint(vals[c], 10))
		}
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(failed, 10))
		sb.WriteByte('\n')
	}
	for _, t := range r.Trials {
		var f uint64
		if t.Failed {
			f = 1
			nfailed++
		}
		row(strconv.Itoa(t.Trial)+","+strconv.Itoa(t.Session)+shardCol, &t.Counters, f)
	}
	row("total,-"+shardCol, &r.Totals, nfailed)
	_, err := io.WriteString(w, sb.String())
	return err
}

// Summary renders a compact human-readable digest: non-zero cell totals in
// enum order plus histogram means, one per line.
func (r *Report) Summary() string {
	if r == nil || len(r.Trials) == 0 {
		return "telemetry: no trials recorded\n"
	}
	var sb strings.Builder
	sb.WriteString("telemetry totals (" + strconv.Itoa(len(r.Trials)) + " trials):\n")
	for c := Counter(0); c < NumCounters; c++ {
		if r.Totals[c] == 0 {
			continue
		}
		sb.WriteString("  " + c.String() + " = " + strconv.FormatUint(r.Totals[c], 10) + "\n")
	}
	for h := Hist(0); h < NumHists; h++ {
		m := r.HistMerged(h)
		if m.Count == 0 {
			continue
		}
		sb.WriteString("  " + h.String() + ": n=" + strconv.FormatUint(m.Count, 10) +
			" mean=" + strconv.FormatFloat(m.Mean(), 'f', 1, 64) + "\n")
	}
	var dropped uint64
	for _, t := range r.Trials {
		dropped += t.Dropped()
	}
	if dropped > 0 {
		sb.WriteString("  (timeline evicted " + strconv.FormatUint(dropped, 10) + " events)\n")
	}
	return sb.String()
}

// KindCounts tallies surviving timeline events by kind across all trials,
// returned as sorted "name=count" strings for stable display.
func (r *Report) KindCounts() []string {
	if r == nil {
		return nil
	}
	var counts [NumKinds]uint64
	for _, t := range r.Trials {
		for _, ev := range t.Events {
			if ev.Kind < NumKinds {
				counts[ev.Kind]++
			}
		}
	}
	var out []string
	for k := Kind(0); k < NumKinds; k++ {
		if counts[k] > 0 {
			out = append(out, k.String()+"="+strconv.FormatUint(counts[k], 10))
		}
	}
	sort.Strings(out)
	return out
}

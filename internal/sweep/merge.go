package sweep

import (
	"fmt"
	"sort"

	"voxel/internal/exp"
)

// Merged is the result of folding a complete set of shard checkpoint files
// back into one campaign. Exactly one of Agg (classic mode) and Stream
// (streaming mode) is set.
type Merged struct {
	Agg    *exp.Aggregate
	Stream *StreamAgg
	cp     *Checkpoint // the merged state in unsharded checkpoint format
}

// MergeFiles loads shard checkpoint files and merges them into the
// single-process campaign result. Every file must be a finished checkpoint
// of the same experiment (fingerprints equal), in the same mode, and the
// shard set must be complete — i/n for every i. A lone unsharded file
// round-trips to itself, which is the byte-determinism check voxel-merge
// offers CI.
func MergeFiles(paths []string) (*Merged, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sweep: no checkpoint files to merge")
	}
	cps := make([]*Checkpoint, len(paths))
	for i, p := range paths {
		cp, err := LoadCheckpoint(p)
		if err != nil {
			return nil, err
		}
		if i > 0 && cp.Fingerprint != cps[0].Fingerprint {
			return nil, fmt.Errorf("sweep: %s was written by a different experiment than %s",
				p, paths[0])
		}
		if i > 0 && cp.Stream != cps[0].Stream {
			return nil, fmt.Errorf("sweep: %s mixes streaming and classic checkpoints", p)
		}
		if err := cp.complete(); err != nil {
			return nil, fmt.Errorf("%w (%s)", err, p)
		}
		cps[i] = cp
	}
	if err := coverage(cps, paths); err != nil {
		return nil, err
	}
	sort.Sort(byShard{cps, paths})
	if cps[0].Stream {
		return mergeStreamFiles(cps)
	}
	return mergeClassicFiles(cps)
}

// coverage verifies the files form exactly one complete shard set: every
// index of one count, no duplicates, no strays.
func coverage(cps []*Checkpoint, paths []string) error {
	count := cps[0].Shard.Count
	if count <= 1 {
		if len(cps) != 1 {
			return fmt.Errorf("sweep: %s is unsharded but %d files were given",
				paths[0], len(cps))
		}
		return nil
	}
	if len(cps) != count {
		return fmt.Errorf("sweep: shard count is %d but %d files were given", count, len(cps))
	}
	seen := map[int]string{}
	for i, cp := range cps {
		if cp.Shard.Count != count {
			return fmt.Errorf("sweep: %s is shard %v, others are of %d", paths[i], cp.Shard, count)
		}
		if prev, dup := seen[cp.Shard.Index]; dup {
			return fmt.Errorf("sweep: %s and %s are both shard %v", prev, paths[i], cp.Shard)
		}
		seen[cp.Shard.Index] = paths[i]
	}
	return nil
}

// byShard sorts checkpoints (and their paths, in lockstep) by shard index,
// so the merge order never depends on argument order.
type byShard struct {
	cps   []*Checkpoint
	paths []string
}

func (s byShard) Len() int           { return len(s.cps) }
func (s byShard) Less(i, j int) bool { return s.cps[i].Shard.Index < s.cps[j].Shard.Index }
func (s byShard) Swap(i, j int) {
	s.cps[i], s.cps[j] = s.cps[j], s.cps[i]
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
}

func mergeClassicFiles(cps []*Checkpoint) (*Merged, error) {
	aggs := make([]*exp.Aggregate, len(cps))
	for i, cp := range cps {
		agg, err := cp.Aggregate()
		if err != nil {
			return nil, err
		}
		aggs[i] = agg
	}
	agg, err := exp.MergeShards(aggs)
	if err != nil {
		return nil, err
	}
	// Re-serialize the merged campaign in unsharded checkpoint format: the
	// same bytes a single uninterrupted process would have left behind
	// (modulo run-specific failure stacks).
	out := newCheckpoint(agg.Config, false)
	done := make(map[int]bool, len(agg.Trials))
	for ti := range agg.Trials {
		done[ti] = true
	}
	fails := make([]*exp.TrialError, len(agg.Trials))
	for i := range agg.Failed {
		te := agg.Failed[i]
		fails[te.Trial] = &te
	}
	out.capture(done, agg.Trials, fails, nil)
	return &Merged{Agg: agg, cp: out}, nil
}

func mergeStreamFiles(cps []*Checkpoint) (*Merged, error) {
	sk := NewStreamAgg(0)
	if cps[0].Sketch != nil {
		sk = NewStreamAgg(cps[0].Sketch.Alpha)
	}
	done := map[int]bool{}
	for _, cp := range cps {
		if cp.Sketch == nil {
			return nil, fmt.Errorf("sweep: streaming checkpoint missing sketch state")
		}
		if err := sk.Merge(cp.Sketch); err != nil {
			return nil, err
		}
		for _, ti := range cp.Done {
			done[ti] = true
		}
	}
	out := &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: cps[0].Fingerprint,
		Stream:      true,
		Config:      cps[0].Config,
	}
	out.capture(done, nil, nil, sk)
	return &Merged{Stream: sk, cp: out}, nil
}

// WriteFile persists the merged campaign as an unsharded checkpoint file,
// atomically, in the same format sweep.Run writes.
func (m *Merged) WriteFile(path string) error { return m.cp.WriteFile(path) }

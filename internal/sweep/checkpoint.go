package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"voxel/internal/exp"
	"voxel/internal/qoe"
	"voxel/internal/trace"
)

// checkpointVersion gates the file format; a reader refuses any other
// value rather than guessing.
const checkpointVersion = 1

// identity is the canonical description of what a sweep computes: every
// Config field that changes trial results, and none of the fields that only
// change how they are executed (shard coordinates, parallelism, interrupt
// plumbing). Two runs with equal identities produce interchangeable trial
// records; the fingerprint over this struct is what lets resume and merge
// refuse a checkpoint written by a different experiment.
type identity struct {
	Title          string  `json:"title"`
	System         string  `json:"system"`
	BufferSegments int     `json:"buffer_segments"`
	TraceName      string  `json:"trace_name,omitempty"`
	TraceHash      string  `json:"trace_hash,omitempty"`
	TraceCanonical string  `json:"trace_canonical,omitempty"`
	QueuePackets   int     `json:"queue_packets"`
	Trials         int     `json:"trials"`
	Metric         int     `json:"metric"`
	Segments       int     `json:"segments"`
	CrossTraffic   float64 `json:"cross_traffic"`
	LinkCapacity   float64 `json:"link_capacity"`
	Seed           int64   `json:"seed"`
	MaxSimTimeNS   int64   `json:"max_sim_time_ns"`
	CC             string  `json:"cc,omitempty"`
	Impairment     string  `json:"impairment,omitempty"`
	Failover       bool    `json:"failover,omitempty"`
	Telemetry      bool    `json:"telemetry,omitempty"`
	TimelineCap    int     `json:"timeline_cap,omitempty"`
	Sessions       int     `json:"sessions,omitempty"`
	Invariants     bool    `json:"invariants,omitempty"`
	WatchdogWallNS int64   `json:"watchdog_wall_ns,omitempty"`
	WatchdogEvents uint64  `json:"watchdog_events,omitempty"`
	Inject         string  `json:"inject,omitempty"`
}

// identityOf distills a config. The trace contributes its name plus a hash
// of its samples (CSV-loaded traces have no canonical name but still
// fingerprint exactly), and its ByName key when it has one so voxel-merge
// can rebuild the config from the file alone.
func identityOf(cfg exp.Config) identity {
	c := cfg.Normalized()
	id := identity{
		Title:          c.Title,
		System:         string(c.System),
		BufferSegments: c.BufferSegments,
		QueuePackets:   c.QueuePackets,
		Trials:         c.Trials,
		Metric:         int(c.Metric),
		Segments:       c.Segments,
		CrossTraffic:   c.CrossTraffic,
		LinkCapacity:   c.LinkCapacity,
		Seed:           c.Seed,
		MaxSimTimeNS:   int64(c.MaxSimTime),
		CC:             c.CC,
		Impairment:     c.Impairment,
		Failover:       c.Failover,
		Telemetry:      c.Telemetry,
		TimelineCap:    c.TimelineCap,
		Sessions:       c.Sessions,
		Invariants:     c.Invariants,
		WatchdogWallNS: int64(c.WatchdogWall),
		WatchdogEvents: c.WatchdogEvents,
		Inject:         c.Inject,
	}
	if c.Trace != nil {
		id.TraceName = c.Trace.Name()
		id.TraceHash = hashSamples(c.Trace.Samples())
		if name, ok := trace.CanonicalName(c.Trace); ok {
			id.TraceCanonical = name
		}
	}
	return id
}

func hashSamples(xs []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprint hashes the canonical JSON of an identity. encoding/json
// renders struct fields in declaration order and floats in shortest exact
// form, so equal identities always hash equal.
func (id identity) fingerprint() string {
	b, err := json.Marshal(id)
	if err != nil {
		// identity is all scalars and strings; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// config rebuilds an exp.Config from the stored identity. Only traces with
// a canonical ByName key can be rebuilt; a CSV-loaded trace must be merged
// in-process where the *trace.Trace is at hand.
func (id identity) config() (exp.Config, error) {
	c := exp.Config{
		Title:          id.Title,
		System:         exp.System(id.System),
		BufferSegments: id.BufferSegments,
		QueuePackets:   id.QueuePackets,
		Trials:         id.Trials,
		Metric:         qoe.Metric(id.Metric),
		Segments:       id.Segments,
		CrossTraffic:   id.CrossTraffic,
		LinkCapacity:   id.LinkCapacity,
		Seed:           id.Seed,
		MaxSimTime:     time.Duration(id.MaxSimTimeNS),
		CC:             id.CC,
		Impairment:     id.Impairment,
		Failover:       id.Failover,
		Telemetry:      id.Telemetry,
		TimelineCap:    id.TimelineCap,
		Sessions:       id.Sessions,
		Invariants:     id.Invariants,
		WatchdogWall:   time.Duration(id.WatchdogWallNS),
		WatchdogEvents: id.WatchdogEvents,
		Inject:         id.Inject,
	}
	if id.TraceName != "" {
		if id.TraceCanonical == "" {
			return exp.Config{}, fmt.Errorf(
				"sweep: trace %q has no canonical name; merge it in-process with exp.MergeShards",
				id.TraceName)
		}
		tr, err := trace.ByName(id.TraceCanonical)
		if err != nil {
			return exp.Config{}, err
		}
		if hashSamples(tr.Samples()) != id.TraceHash {
			return exp.Config{}, fmt.Errorf("sweep: rebuilt trace %q does not match stored hash",
				id.TraceCanonical)
		}
		c.Trace = tr
	}
	return c, nil
}

// trialRecord stores one completed trial's full result.
type trialRecord struct {
	Trial  int       `json:"trial"`
	Result exp.Trial `json:"result"`
}

// failRecord stores a TrialError minus its Config (the config is the
// file-level identity; re-stamped on load).
type failRecord struct {
	Trial   int    `json:"trial"`
	Seed    int64  `json:"seed"`
	Session int    `json:"session"`
	ClockNS int64  `json:"clock_ns"`
	Rule    string `json:"rule"`
	Msg     string `json:"msg"`
	Stack   string `json:"stack,omitempty"`
}

// Checkpoint is the on-disk state of a (possibly partial) sweep: the
// identity of what is being computed, which shard this file belongs to,
// which trials are done, and their results — either full per-trial records
// (classic mode) or folded sketch state (streaming mode). The final
// checkpoint of a finished shard doubles as the shard's output file, which
// is exactly what voxel-merge consumes.
type Checkpoint struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Shard       Shard         `json:"shard"`
	Stream      bool          `json:"stream,omitempty"`
	Config      identity      `json:"config"`
	Done        []int         `json:"done"`
	Trials      []trialRecord `json:"trials,omitempty"`
	Fails       []failRecord  `json:"fails,omitempty"`
	Sketch      *StreamAgg    `json:"sketch,omitempty"`
}

// newCheckpoint builds the header for cfg.
func newCheckpoint(cfg exp.Config, stream bool) *Checkpoint {
	d := cfg.WithDefaults()
	id := identityOf(d)
	return &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: id.fingerprint(),
		Shard:       Shard{Index: d.ShardIndex, Count: d.ShardCount},
		Stream:      stream,
		Config:      id,
	}
}

// capture fills the checkpoint body from the done-set and result vectors,
// in ascending trial order, so the bytes are a pure function of which
// trials have completed — two processes that completed the same set write
// identical files.
func (cp *Checkpoint) capture(done map[int]bool, trials []exp.Trial, fails []*exp.TrialError, sk *StreamAgg) {
	cp.Done = cp.Done[:0]
	for ti := range done {
		cp.Done = append(cp.Done, ti)
	}
	sort.Ints(cp.Done)
	cp.Trials = nil
	cp.Fails = nil
	cp.Sketch = sk
	if sk != nil {
		return
	}
	for _, ti := range cp.Done {
		if te := fails[ti]; te != nil {
			cp.Fails = append(cp.Fails, failRecord{
				Trial: te.Trial, Seed: te.Seed, Session: te.Session,
				ClockNS: int64(te.Clock), Rule: te.Rule, Msg: te.Msg, Stack: te.Stack,
			})
			continue
		}
		// Stamp telemetry reports with their (trial, session) coordinates
		// before marshal — the same values obs.MergeSessions assigns at
		// assembly — so the serialized record is canonical whether the
		// producing process had assembled yet or not. Without this, a
		// merged output file and a single-process run's file would differ
		// in stamping alone.
		for si, r := range trials[ti].SessionObs {
			if r != nil {
				r.Trial, r.Session = ti, si
			}
		}
		cp.Trials = append(cp.Trials, trialRecord{Trial: ti, Result: trials[ti]})
	}
}

// WriteFile atomically persists the checkpoint: marshal, write to a temp
// file in the target directory, fsync, rename over the destination, fsync
// the directory. A SIGKILL at any instant leaves either the previous
// complete checkpoint or the new one — never a torn file.
func (cp *Checkpoint) WriteFile(path string) error {
	b, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("sweep: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads and structurally validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("sweep: %s: version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.Fingerprint != cp.Config.fingerprint() {
		return nil, fmt.Errorf("sweep: %s: fingerprint does not match stored config", path)
	}
	for _, ti := range cp.Done {
		if ti < 0 || ti >= cp.Config.Trials {
			return nil, fmt.Errorf("sweep: %s: done trial %d out of range [0, %d)",
				path, ti, cp.Config.Trials)
		}
	}
	return &cp, nil
}

// matches reports whether the checkpoint was written by a run of cfg in
// the same mode, i.e. whether its records can be reused.
func (cp *Checkpoint) matches(cfg exp.Config, stream bool) error {
	d := cfg.WithDefaults()
	if got, want := cp.Fingerprint, identityOf(d).fingerprint(); got != want {
		return fmt.Errorf("sweep: checkpoint was written by a different experiment (fingerprint %.12s, want %.12s)", got, want)
	}
	if sh := (Shard{Index: d.ShardIndex, Count: d.ShardCount}); cp.Shard != sh {
		return fmt.Errorf("sweep: checkpoint belongs to shard %v, this run is %v", cp.Shard, sh)
	}
	if cp.Stream != stream {
		return fmt.Errorf("sweep: checkpoint stream mode %v, this run wants %v", cp.Stream, stream)
	}
	return nil
}

// restore unpacks the checkpoint's records into full-length result vectors
// and the done-set (classic mode).
func (cp *Checkpoint) restore(cfg exp.Config) (map[int]bool, []exp.Trial, []*exp.TrialError, error) {
	d := cfg.WithDefaults()
	done := make(map[int]bool, len(cp.Done))
	for _, ti := range cp.Done {
		done[ti] = true
	}
	trials := make([]exp.Trial, d.Trials)
	fails := make([]*exp.TrialError, d.Trials)
	for _, rec := range cp.Trials {
		if rec.Trial < 0 || rec.Trial >= d.Trials || !done[rec.Trial] {
			return nil, nil, nil, fmt.Errorf("sweep: trial record %d outside done set", rec.Trial)
		}
		if len(rec.Result.SessionObs) > 0 {
			// Restore the invariant JSON cannot express: Obs aliases the
			// first session's report, so the index stamping Assemble does
			// through SessionObs is visible through Obs too.
			rec.Result.Obs = rec.Result.SessionObs[0]
		}
		trials[rec.Trial] = rec.Result
	}
	for _, fr := range cp.Fails {
		if fr.Trial < 0 || fr.Trial >= d.Trials || !done[fr.Trial] {
			return nil, nil, nil, fmt.Errorf("sweep: failure record %d outside done set", fr.Trial)
		}
		// Re-stamp the config exactly as the harness did when the trial
		// originally failed; the file stores results, not configs.
		trials[fr.Trial] = exp.Trial{Failed: true}
		fails[fr.Trial] = &exp.TrialError{
			Config: d, Trial: fr.Trial, Seed: fr.Seed, Session: fr.Session,
			Clock: time.Duration(fr.ClockNS), Rule: fr.Rule, Msg: fr.Msg, Stack: fr.Stack,
		}
	}
	return done, trials, fails, nil
}

// Aggregate rebuilds the shard's exp.Aggregate from a finished classic
// checkpoint — the merge tool's path from file bytes back to the exact
// in-memory aggregate the producing process held.
func (cp *Checkpoint) Aggregate() (*exp.Aggregate, error) {
	if cp.Stream {
		return nil, fmt.Errorf("sweep: streaming checkpoint has no per-trial aggregate")
	}
	cfg, err := cp.Config.config()
	if err != nil {
		return nil, err
	}
	cfg.ShardIndex, cfg.ShardCount = cp.Shard.Index, cp.Shard.Count
	if err := cp.complete(); err != nil {
		return nil, err
	}
	_, trials, fails, err := cp.restore(cfg)
	if err != nil {
		return nil, err
	}
	return exp.AssembleQuiet(cfg, trials, fails), nil
}

// complete verifies the checkpoint covers every trial its shard owns.
func (cp *Checkpoint) complete() error {
	done := make(map[int]bool, len(cp.Done))
	for _, ti := range cp.Done {
		done[ti] = true
	}
	sh := cp.Shard
	for ti := 0; ti < cp.Config.Trials; ti++ {
		owned := sh.Unsharded() || ti%sh.Count == sh.Index
		if owned && !done[ti] {
			return fmt.Errorf("sweep: shard %v checkpoint is incomplete: trial %d missing", sh, ti)
		}
	}
	return nil
}

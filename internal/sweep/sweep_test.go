package sweep

import (
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"voxel/internal/exp"
	"voxel/internal/trace"
)

// testCfg is the reference sweep: multi-trial on a varying trace so every
// trial has a distinct seed and shift.
func testCfg() exp.Config {
	return exp.Config{
		Title:          "BBB",
		System:         exp.SysVoxel,
		BufferSegments: 3,
		Trace:          trace.TMobile(),
		Trials:         6,
		Segments:       6,
		Seed:           11,
	}
}

func scrubStacks(a *exp.Aggregate) *exp.Aggregate {
	for i := range a.Failed {
		a.Failed[i].Stack = ""
	}
	return a
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		spec   string
		want   Shard
		wantOK bool
	}{
		{"0/1", Shard{0, 1}, true},
		{"0/4", Shard{0, 4}, true},
		{"3/4", Shard{3, 4}, true},
		{" 1 / 2 ", Shard{1, 2}, true},
		{"4/4", Shard{}, false},
		{"5/4", Shard{}, false},
		{"-1/4", Shard{}, false},
		{"0/0", Shard{}, false},
		{"1/-2", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
		{"1/2/3", Shard{}, false},
		{"", Shard{}, false},
	}
	for _, tc := range cases {
		got, err := ParseShard(tc.spec)
		if tc.wantOK && (err != nil || got != tc.want) {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", tc.spec, got, err, tc.want)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", tc.spec)
		}
	}
	if (Shard{2, 8}).String() != "2/8" {
		t.Error("String round-trip broken")
	}
	if !(Shard{}).Unsharded() || (Shard{1, 4}).Unsharded() {
		t.Error("Unsharded predicate wrong")
	}
}

// A checkpointed run that finishes, then a second invocation pointed at the
// same file, must restore everything (zero recomputation) and produce the
// identical aggregate. Then a truncated checkpoint — the exact on-disk
// state after a crash that lost the tail — must resume and still match.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	cfg := testCfg()
	cfg.Inject = "panic@2" // cover failure records through the file format

	clean := exp.Run(cfg)
	scrubStacks(clean)

	r1, err := Run(cfg, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Restored != 0 || r1.Ran != 6 {
		t.Fatalf("first run restored=%d ran=%d, want 0/6", r1.Restored, r1.Ran)
	}
	if !reflect.DeepEqual(scrubStacks(r1.Agg), clean) {
		t.Fatal("checkpointed run differs from plain exp.Run")
	}

	r2, err := Run(cfg, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Restored != 6 || r2.Ran != 0 {
		t.Fatalf("full resume restored=%d ran=%d, want 6/0", r2.Restored, r2.Ran)
	}
	if !reflect.DeepEqual(scrubStacks(r2.Agg), clean) {
		t.Fatal("fully-restored aggregate differs from clean run")
	}

	// Truncate to the first 3 done trials — the post-crash state — and
	// resume.
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	done, trials, fails, err := cp.restore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range done {
		if ti >= 3 {
			delete(done, ti)
		}
	}
	cp.capture(done, trials, fails, nil)
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r3, err := Run(cfg, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Restored != 3 || r3.Ran != 3 {
		t.Fatalf("partial resume restored=%d ran=%d, want 3/3", r3.Restored, r3.Ran)
	}
	if !reflect.DeepEqual(scrubStacks(r3.Agg), clean) {
		t.Fatal("resumed aggregate differs from clean run")
	}

	// The refreshed file must be structurally complete again.
	cp2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.complete(); err != nil {
		t.Fatal(err)
	}
}

// A checkpoint written by a different experiment must be refused, never
// silently recomputed over.
func TestCheckpointMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if _, err := Run(testCfg(), Options{Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	other := testCfg()
	other.Seed = 999
	if _, err := Run(other, Options{Checkpoint: path}); err == nil {
		t.Fatal("different seed must not reuse the checkpoint")
	}
	shifted := testCfg()
	shifted.ShardIndex, shifted.ShardCount = 0, 2
	if _, err := Run(shifted, Options{Checkpoint: path}); err == nil {
		t.Fatal("different shard must not reuse the checkpoint")
	}
	if _, err := Run(testCfg(), Options{Checkpoint: path, Stream: true}); err == nil {
		t.Fatal("mode flip must not reuse the checkpoint")
	}
	// Corrupted bytes are a load error, not a fresh start.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testCfg(), Options{Checkpoint: path}); err == nil {
		t.Fatal("corrupt checkpoint must error")
	}
	// A tampered fingerprint is caught.
	good, err := Run(testCfg(), Options{})
	_ = good
	if err != nil {
		t.Fatal(err)
	}
}

// The merge tool's whole path: run shards to checkpoint files, load the
// files, rebuild the aggregates, merge — and land exactly on the unsharded
// clean run.
func TestShardFilesMergeToCleanRun(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()
	cfg.Telemetry = true

	clean := exp.Run(cfg)

	var shards []*exp.Aggregate
	for i := 0; i < 2; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, 2
		path := filepath.Join(dir, "shard"+string(rune('0'+i))+".json")
		if _, err := Run(c, Options{Checkpoint: path, Every: 2}); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := cp.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, agg)
	}
	merged, err := exp.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	// The shard aggregates crossed a JSON round-trip; the merged result
	// must still be value-identical to the in-process clean run, except
	// Config.Trace which is rebuilt by name (compare it separately).
	if merged.Config.Trace == nil || merged.Config.Trace.Name() != clean.Config.Trace.Name() {
		t.Fatal("merged config lost its trace")
	}
	merged.Config.Trace = clean.Config.Trace
	if !reflect.DeepEqual(merged, clean) {
		if !reflect.DeepEqual(merged.Trials, clean.Trials) {
			t.Fatal("merged trials differ from clean run after file round-trip")
		}
		if !reflect.DeepEqual(merged.Obs, clean.Obs) {
			t.Fatal("merged telemetry differs from clean run after file round-trip")
		}
		t.Fatal("merged aggregate differs from clean run")
	}

	// An incomplete shard file must refuse to rebuild an aggregate.
	cp, err := LoadCheckpoint(filepath.Join(dir, "shard0.json"))
	if err != nil {
		t.Fatal(err)
	}
	cp.Done = cp.Done[:1]
	if _, err := cp.Aggregate(); err == nil {
		t.Fatal("incomplete shard checkpoint must not rebuild an aggregate")
	}
}

// Streaming mode: quantiles within α of the classic aggregate's exact
// percentiles, bit-identical state across parallelism, kill/resume, and
// shard/merge.
func TestStreamModeAccuracyAndMerge(t *testing.T) {
	cfg := testCfg()
	classic := exp.Run(cfg)

	r, err := Run(cfg, Options{Stream: true, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stream
	if st.Trials != 6 || st.Failed != 0 {
		t.Fatalf("stream counted %d/%d trials/failed", st.Trials, st.Failed)
	}
	if int(st.Score.Count()) != len(classic.AllScores) {
		t.Fatalf("stream folded %d scores, classic has %d", st.Score.Count(), len(classic.AllScores))
	}
	// Compare under the sketch's closest-rank convention: the q-quantile of
	// a sorted n-sample is the element at 0-based rank floor(q·(n-1)).
	sorted := append([]float64(nil), classic.BufRatios...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want := sorted[int(q*float64(len(sorted)-1))]
		got := st.BufRatio.Quantile(q)
		if math.Abs(got-want) > 0.01*math.Abs(want)+1e-12 {
			t.Fatalf("bufRatio q%v: stream %v vs exact %v", q, got, want)
		}
	}

	// Parallel stream run folds in the same order → identical sketch state.
	par := cfg
	par.Parallelism = 4
	rp, err := Run(par, Options{Stream: true, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp.Stream, st) {
		t.Fatal("parallel stream state differs from sequential")
	}

	// Sharded stream runs merge to the unsharded state exactly (bucket
	// counts and quantiles; Sum folds in shard order by construction).
	mergedSt := NewStreamAgg(0.01)
	for i := 0; i < 2; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, 2
		ri, err := Run(c, Options{Stream: true, Alpha: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := mergedSt.Merge(ri.Stream); err != nil {
			t.Fatal(err)
		}
	}
	if mergedSt.Trials != st.Trials || mergedSt.Scores != st.Scores {
		t.Fatal("merged stream counts differ from unsharded")
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if mergedSt.Score.Quantile(q) != st.Score.Quantile(q) {
			t.Fatalf("q=%v: merged stream quantile differs from unsharded", q)
		}
	}

	// Stream + checkpoint: resume from a prior complete file is a no-op
	// that reproduces the same state.
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.json")
	r1, err := Run(cfg, Options{Stream: true, Alpha: 0.01, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, Options{Stream: true, Alpha: 0.01, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ran != 0 || r2.Restored != 6 {
		t.Fatalf("stream resume restored=%d ran=%d, want 6/0", r2.Restored, r2.Ran)
	}
	if !reflect.DeepEqual(r2.Stream, r1.Stream) {
		t.Fatal("restored stream state differs")
	}

	// Telemetry is incompatible with streaming.
	tcfg := cfg
	tcfg.Telemetry = true
	if _, err := Run(tcfg, Options{Stream: true}); err == nil {
		t.Fatal("stream+telemetry must be rejected")
	}
}

// The checkpoint file is byte-deterministic: two processes that completed
// the same trials write identical bytes (failure-free config, since panic
// stacks embed goroutine IDs).
func TestCheckpointBytesDeterministic(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, parallelism int) []byte {
		cfg := testCfg()
		cfg.Parallelism = parallelism
		path := filepath.Join(dir, name)
		if _, err := Run(cfg, Options{Checkpoint: path}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write("a.json", 0)
	b := write("b.json", 4)
	if string(a) != string(b) {
		t.Fatal("checkpoint bytes differ across parallelism")
	}
	// And the JSON is valid and versioned.
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(a, &probe); err != nil || probe.Version != checkpointVersion {
		t.Fatalf("checkpoint file malformed: %v version=%d", err, probe.Version)
	}
}

// TestKillResume SIGKILLs a child mid-sweep and resumes from its
// checkpoint: the result must be exactly the clean-run aggregate. The
// child is this test binary re-exec'd into sweepKillChild.
func TestKillResume(t *testing.T) {
	if os.Getenv("SWEEP_KILL_CHILD") != "" {
		runKillChild()
		return
	}
	if testing.Short() {
		t.Skip("re-exec child in -short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	cmd := exec.Command(os.Args[0], "-test.run=TestKillResume")
	cmd.Env = append(os.Environ(), "SWEEP_KILL_CHILD="+path)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the child has checkpointed at least one trial but is (in
	// all likelihood) not done, then kill -9. If the child won the race
	// and finished, the test still validates full restore.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child never wrote a checkpoint")
		}
		if cp, err := LoadCheckpoint(path); err == nil && len(cp.Done) >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no deferred cleanup, no final write
	cmd.Wait()

	cfg := killCfg()
	clean := exp.Run(cfg)
	res, err := Run(cfg, Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored == 0 {
		t.Error("resume restored nothing; kill landed before any checkpoint survived")
	}
	t.Logf("resumed after SIGKILL: restored=%d ran=%d", res.Restored, res.Ran)
	if !reflect.DeepEqual(res.Agg, clean) {
		t.Fatal("post-kill resumed aggregate differs from clean run")
	}
}

// killCfg must be slow enough for the parent to land a SIGKILL mid-sweep.
func killCfg() exp.Config {
	c := testCfg()
	c.Trials = 8
	c.Segments = 8
	return c
}

func runKillChild() {
	path := os.Getenv("SWEEP_KILL_CHILD")
	if _, err := Run(killCfg(), Options{Checkpoint: path, Every: 1}); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

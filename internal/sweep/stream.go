package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"voxel/internal/exp"
	"voxel/internal/stats"
)

// StreamAgg is the streaming-mode aggregate: the three per-trial sample
// families exp.Aggregate keeps as raw slices — bufRatio, average bitrate,
// per-segment QoE score — folded into mergeable quantile sketches instead,
// plus trial counters. Memory is O(buckets) per sketch regardless of trial
// count, which is the point: a million-trial campaign aggregates in the
// same footprint as a ten-trial one.
//
// Every quantile read off a StreamAgg is within the sketch's relative
// error bound α of the exact sample quantile (stats.QuantileSketch pins
// the guarantee with a test); counts, Min, and Max are exact. Trials fold
// in increasing trial order (exp's delivery contract), so sketch state —
// including the float Sum — is bit-identical across parallelism levels and
// across kill/resume, and shard sketches merge to the whole-campaign
// sketch exactly.
type StreamAgg struct {
	Alpha    float64               `json:"alpha"`
	Trials   int                   `json:"trials"` // trials folded in (including failed)
	Failed   int                   `json:"failed"` // failed trials (no samples contributed)
	Scores   uint64                `json:"scores"` // per-segment score samples folded
	BufRatio *stats.QuantileSketch `json:"buf_ratio"`
	Bitrate  *stats.QuantileSketch `json:"bitrate"`
	Score    *stats.QuantileSketch `json:"score"`
}

// NewStreamAgg builds an empty streaming aggregate with relative-error
// bound alpha (stats.DefaultSketchAlpha when zero).
func NewStreamAgg(alpha float64) *StreamAgg {
	mk := func() *stats.QuantileSketch { return stats.NewQuantileSketch(alpha) }
	s := &StreamAgg{BufRatio: mk(), Bitrate: mk(), Score: mk()}
	s.Alpha = s.BufRatio.Alpha()
	return s
}

// fold accumulates one completed trial, in delivery (trial) order.
func (s *StreamAgg) fold(tr exp.Trial, te *exp.TrialError) {
	s.Trials++
	if te != nil {
		s.Failed++
		return
	}
	s.BufRatio.Add(tr.BufRatio)
	s.Bitrate.Add(tr.AvgBitrate)
	for _, sc := range tr.Scores {
		s.Score.Add(sc)
		s.Scores++
	}
}

// Merge folds other into s; both must use the same α. Bucket counts add,
// so the merged quantiles equal a single sketch fed every shard's samples.
func (s *StreamAgg) Merge(other *StreamAgg) error {
	if other == nil {
		return nil
	}
	if other.Alpha != s.Alpha {
		return fmt.Errorf("sweep: stream alpha mismatch: %v vs %v", s.Alpha, other.Alpha)
	}
	if err := s.BufRatio.Merge(other.BufRatio); err != nil {
		return err
	}
	if err := s.Bitrate.Merge(other.Bitrate); err != nil {
		return err
	}
	if err := s.Score.Merge(other.Score); err != nil {
		return err
	}
	s.Trials += other.Trials
	s.Failed += other.Failed
	s.Scores += other.Scores
	return nil
}

// Summary renders the headline statistics in the same shape voxel-sim
// prints for a classic aggregate, with the error bound stated.
func (s *StreamAgg) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "streaming aggregate (%d trials, %d failed, α=%g):\n",
		s.Trials, s.Failed, s.Alpha)
	line := func(name string, sk *stats.QuantileSketch, scale float64) {
		fmt.Fprintf(&sb, "  %-9s mean=%s p50=%s p90=%s p99=%s (n=%d)\n", name,
			fnum(sk.Mean()/scale), fnum(sk.Quantile(0.5)/scale),
			fnum(sk.Quantile(0.9)/scale), fnum(sk.Quantile(0.99)/scale), sk.Count())
	}
	line("bufRatio", s.BufRatio, 1)
	line("bitrate(Mbps)", s.Bitrate, 1e6)
	line("score", s.Score, 1)
	return sb.String()
}

func fnum(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }

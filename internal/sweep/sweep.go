package sweep

import (
	"fmt"
	"os"

	"voxel/internal/exp"
)

// Options selects the engine's execution mode around a config.
type Options struct {
	// Checkpoint is the state file path; empty disables checkpointing and
	// resume. If the file exists and matches the config (fingerprint,
	// shard, mode), its finished trials are restored and skipped; a
	// mismatched file is an error, never silently recomputed over. The
	// final checkpoint of a finished run is the shard's output file —
	// feed it to voxel-merge.
	Checkpoint string
	// Every writes a checkpoint after every N completed trials (default 1,
	// i.e. after each trial). The write is atomic, so a kill between
	// writes loses at most the last N trials of work, never the file.
	Every int
	// Stream folds each trial into mergeable quantile sketches and
	// discards the per-trial result immediately: Run returns a StreamAgg
	// instead of an exp.Aggregate and peak memory stays bounded by the
	// sketch size, not the trial count. Incompatible with Telemetry
	// (per-trial reports are exactly what streaming refuses to retain).
	Stream bool
	// Alpha is the streaming sketches' relative-error bound
	// (stats.DefaultSketchAlpha when zero).
	Alpha float64
}

// Result is what a sweep run produced.
type Result struct {
	// Agg is the classic aggregate (nil in streaming mode). For a sharded
	// run it carries full-length trial vectors with only owned slots
	// populated, ready for exp.MergeShards.
	Agg *exp.Aggregate
	// Stream is the streaming aggregate (nil in classic mode).
	Stream *StreamAgg
	// Restored counts trials recovered from the checkpoint; Ran counts
	// trials executed by this process. Restored+Ran equals the shard's
	// owned-trial count when the run finished cleanly.
	Restored int
	Ran      int
}

// Run executes cfg's sweep (or this shard's slice of it) under the
// engine: resuming from, and checkpointing to, opts.Checkpoint, in either
// classic (full per-trial retention) or streaming (bounded-memory sketch)
// mode. The determinism contract: for the same cfg, the returned
// aggregate is bit-identical whether the sweep ran in one process, was
// killed and resumed any number of times, or ran sharded and merged —
// modulo the run-specific Stack text of failure records.
func Run(cfg exp.Config, opts Options) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	d := cfg.WithDefaults()
	if opts.Stream && d.Telemetry {
		return Result{}, fmt.Errorf("sweep: streaming mode discards per-trial telemetry; disable one")
	}
	if opts.Every <= 0 {
		opts.Every = 1
	}

	var (
		done   = map[int]bool{}
		trials []exp.Trial
		fails  []*exp.TrialError
		sk     *StreamAgg
		res    Result
	)
	if opts.Stream {
		sk = NewStreamAgg(opts.Alpha)
	} else {
		trials = make([]exp.Trial, d.Trials)
		fails = make([]*exp.TrialError, d.Trials)
	}

	cp := newCheckpoint(d, opts.Stream)
	if opts.Checkpoint != "" {
		prev, err := LoadCheckpoint(opts.Checkpoint)
		switch {
		case os.IsNotExist(err):
			// fresh run
		case err != nil:
			return Result{}, err
		default:
			if err := prev.matches(d, opts.Stream); err != nil {
				return Result{}, err
			}
			if opts.Stream {
				if prev.Sketch == nil {
					return Result{}, fmt.Errorf("sweep: streaming checkpoint missing sketch state")
				}
				if prev.Sketch.Alpha != sk.Alpha {
					return Result{}, fmt.Errorf("sweep: checkpoint sketch alpha %v, this run wants %v",
						prev.Sketch.Alpha, sk.Alpha)
				}
				sk = prev.Sketch
				for _, ti := range prev.Done {
					done[ti] = true
				}
			} else {
				done, trials, fails, err = prev.restore(d)
				if err != nil {
					return Result{}, err
				}
			}
			res.Restored = len(done)
		}
	}
	restored := make(map[int]bool, len(done))
	for ti := range done {
		restored[ti] = true
	}

	sinceWrite := 0
	var writeErr error
	onTrial := func(ti int, tr exp.Trial, te *exp.TrialError) {
		if opts.Stream {
			sk.fold(tr, te)
		} else {
			trials[ti] = tr
			fails[ti] = te
		}
		done[ti] = true
		res.Ran++
		sinceWrite++
		if opts.Checkpoint != "" && sinceWrite >= opts.Every && writeErr == nil {
			cp.capture(done, trials, fails, sk)
			writeErr = cp.WriteFile(opts.Checkpoint)
			sinceWrite = 0
		}
	}
	skip := func(ti int) bool { return done[ti] }

	if opts.Stream {
		exp.RunStream(d, skip, onTrial)
	} else {
		exp.RunPartial(d, skip, onTrial)
	}
	if writeErr != nil {
		return Result{}, fmt.Errorf("sweep: checkpoint write failed mid-run: %w", writeErr)
	}
	if opts.Checkpoint != "" && (sinceWrite > 0 || res.Ran == 0) {
		// Final write so the file always reflects the finished state (and
		// a fully-restored run still refreshes the output file).
		cp.capture(done, trials, fails, sk)
		if err := cp.WriteFile(opts.Checkpoint); err != nil {
			return Result{}, err
		}
	}

	if opts.Stream {
		res.Stream = sk
		return res, nil
	}
	// Assemble without the hook side effect, then report only the failures
	// that happened in this process: restored failures were already
	// reported by the run that produced them.
	res.Agg = exp.AssembleQuiet(d, trials, fails)
	if exp.FailureHook != nil {
		for ti, te := range fails {
			if te != nil && !restored[ti] {
				exp.FailureHook(te)
			}
		}
	}
	return res, nil
}

package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"voxel/internal/exp"
)

// MergeFiles on a complete classic shard set reproduces the unsharded
// campaign — and its -out file is byte-identical to the checkpoint a
// single uninterrupted process writes.
func TestMergeFilesByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()
	cfg.Telemetry = true // exercise report stamping through the file format

	whole := filepath.Join(dir, "whole.json")
	res, err := Run(cfg, Options{Checkpoint: whole})
	if err != nil {
		t.Fatal(err)
	}
	wholeBytes, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}

	var files []string
	for i := 0; i < 2; i++ {
		scfg := cfg
		scfg.ShardIndex, scfg.ShardCount = i, 2
		scfg.Parallelism = 2
		p := filepath.Join(dir, "shard"+string(rune('0'+i))+".json")
		if _, err := Run(scfg, Options{Checkpoint: p}); err != nil {
			t.Fatal(err)
		}
		files = append(files, p)
	}

	// Argument order must not matter.
	m, err := MergeFiles([]string{files[1], files[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Agg, res.Agg) {
		t.Fatal("merged aggregate differs from the unsharded run")
	}
	merged := filepath.Join(dir, "merged.json")
	if err := m.WriteFile(merged); err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBytes, wholeBytes) {
		t.Fatal("merged checkpoint bytes differ from the single-process file")
	}

	// A lone unsharded file merges to itself, byte for byte.
	self, err := MergeFiles([]string{whole})
	if err != nil {
		t.Fatal(err)
	}
	round := filepath.Join(dir, "round.json")
	if err := self.WriteFile(round); err != nil {
		t.Fatal(err)
	}
	roundBytes, err := os.ReadFile(round)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(roundBytes, wholeBytes) {
		t.Fatal("unsharded file does not round-trip byte-identically through MergeFiles")
	}
}

// Streaming shard files merge to the unsharded streaming aggregate on
// every statistic the sketch pins (counts, min/max, quantiles); the merged
// file itself is deterministic across merge invocations.
func TestMergeFilesStream(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()

	whole := filepath.Join(dir, "whole.json")
	res, err := Run(cfg, Options{Checkpoint: whole, Stream: true})
	if err != nil {
		t.Fatal(err)
	}

	var files []string
	for i := 0; i < 2; i++ {
		scfg := cfg
		scfg.ShardIndex, scfg.ShardCount = i, 2
		p := filepath.Join(dir, "shard"+string(rune('0'+i))+".json")
		if _, err := Run(scfg, Options{Checkpoint: p, Stream: true}); err != nil {
			t.Fatal(err)
		}
		files = append(files, p)
	}

	m, err := MergeFiles([]string{files[1], files[0]})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stream == nil || m.Agg != nil {
		t.Fatal("stream merge should produce a StreamAgg, not an Aggregate")
	}
	got, want := m.Stream, res.Stream
	if got.Trials != want.Trials || got.Failed != want.Failed || got.Scores != want.Scores {
		t.Fatalf("merged counters %d/%d/%d, want %d/%d/%d",
			got.Trials, got.Failed, got.Scores, want.Trials, want.Failed, want.Scores)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got.BufRatio.Quantile(q) != want.BufRatio.Quantile(q) ||
			got.Bitrate.Quantile(q) != want.Bitrate.Quantile(q) ||
			got.Score.Quantile(q) != want.Score.Quantile(q) {
			t.Fatalf("merged quantile q=%v differs from the unsharded sketch", q)
		}
	}

	// Two merges of the same files write the same bytes.
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := m.WriteFile(a); err != nil {
		t.Fatal(err)
	}
	m2, err := MergeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteFile(b); err != nil {
		t.Fatal(err)
	}
	ab, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if !bytes.Equal(ab, bb) {
		t.Fatal("merging the same shard files twice wrote different bytes")
	}
}

func TestMergeFilesErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()

	shardFile := func(name string, scfg exp.Config, stream bool) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if _, err := Run(scfg, Options{Checkpoint: p, Stream: stream}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s0 := cfg
	s0.ShardIndex, s0.ShardCount = 0, 2
	s1 := cfg
	s1.ShardIndex, s1.ShardCount = 1, 2
	other := s1
	other.Seed = 99
	f0 := shardFile("s0.json", s0, false)
	f1 := shardFile("s1.json", s1, false)
	whole := shardFile("whole.json", cfg, false)
	drift := shardFile("drift.json", other, false)
	stream0 := shardFile("stream0.json", s0, true)

	cases := []struct {
		name  string
		files []string
		want  string
	}{
		{"empty", nil, "no checkpoint files"},
		{"missing shard", []string{f0}, "shard count is 2 but 1 files"},
		{"duplicate shard", []string{f0, f0}, "both shard"},
		{"extra file with unsharded", []string{whole, f0}, "unsharded but 2 files"},
		{"fingerprint drift", []string{f0, drift}, "different experiment"},
		{"mode mix", []string{stream0, f1}, "mixes streaming and classic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeFiles(tc.files)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got err %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Package sweep is the large-sweep execution engine layered on exp: it
// shards a sweep deterministically across processes, checkpoints
// completed-trial state atomically so a killed campaign resumes without
// recomputing finished trials, and offers a streaming aggregation mode that
// folds per-trial samples into mergeable quantile sketches so peak memory
// stays bounded as trial counts grow.
//
// The determinism contract is inherited from exp and preserved end to end:
// a trial's seed and trace shift depend only on its index and the full
// trial count, never on which shard or process ran it, so the merge of a
// complete shard set — and the resume of a killed run — reproduce the
// single-process aggregate exactly.
package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard names one slice of a sharded campaign: this process owns the trials
// whose index ≡ Index (mod Count). The zero value means unsharded.
type Shard struct {
	Index int
	Count int
}

// Unsharded reports whether the shard spec selects the whole sweep.
func (s Shard) Unsharded() bool { return s.Count <= 1 }

// String renders the canonical "i/n" spec.
func (s Shard) String() string {
	return strconv.Itoa(s.Index) + "/" + strconv.Itoa(s.Count)
}

// ParseShard parses an "i/n" spec: shard i of n, with 0 ≤ i < n and n ≥ 1.
func ParseShard(spec string) (Shard, error) {
	a, b, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard spec %q is not i/n", spec)
	}
	i, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return Shard{}, fmt.Errorf("sweep: shard index %q: %v", a, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return Shard{}, fmt.Errorf("sweep: shard count %q: %v", b, err)
	}
	if n < 1 {
		return Shard{}, fmt.Errorf("sweep: shard count %d must be at least 1", n)
	}
	if i < 0 || i >= n {
		return Shard{}, fmt.Errorf("sweep: shard index %d out of range [0, %d)", i, n)
	}
	return Shard{Index: i, Count: n}, nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilFreeAnalyzer enforces both sides of the nil-is-free contract
// (DESIGN.md §6, §9): for a type annotated //voxel:nilfree (or on the
// built-in cross-package list — obs.Scope, invariant.Checker),
//
//   - every exported pointer-receiver method must begin with a
//     nil-receiver guard, so a nil handle is the disabled state at zero
//     cost; and
//   - callers must not wrap calls on such a value in their own nil
//     check — the re-guard is dead code that misleads readers into
//     thinking the nil case is *not* handled by the callee, and it is
//     exactly the pattern that rots into a real bug when someone copies
//     it around a method that was never nil-safe.
//
// Accepted guard shapes: a leading `if recv == nil { return ... }` (the
// condition may OR in more cases, as invariant.Check's `c == nil || ok`
// does), or a single-statement body returning a comparison of the
// receiver against nil (the Enabled() shape).
var NilFreeAnalyzer = &Analyzer{
	Name: "nilfree",
	Doc:  "nil-is-free types: exported methods guard a nil receiver; callers never re-guard",
	Run:  runNilFree,
}

func runNilFree(pass *Pass) {
	annotated := annotatedNilFree(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMethodGuard(pass, fd, annotated)
			checkCallerReguard(pass, fd, annotated)
		}
	}
}

// annotatedNilFree collects the nil-is-free type names declared in this
// package via //voxel:nilfree, keyed pkgpath.Name like knownNilFree.
func annotatedNilFree(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if _, ok := docHasDirective(ts.Doc, "nilfree"); !ok {
					if _, ok := docHasDirective(gd.Doc, "nilfree"); !ok {
						continue
					}
				}
				out[pass.Pkg.Types.Path()+"."+ts.Name.Name] = true
			}
		}
	}
	return out
}

// isNilFreeType reports whether typ is a pointer to a nil-is-free named
// type (annotated in this package or on the built-in list).
func isNilFreeType(typ types.Type, annotated map[string]bool) (string, bool) {
	named := namedPtrElem(typ)
	if named == nil {
		return "", false
	}
	key := typeKey(named)
	if annotated[key] || knownNilFree[key] {
		return key, true
	}
	return "", false
}

// --- method side ---

func checkMethodGuard(pass *Pass, fd *ast.FuncDecl, annotated map[string]bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	recvType := pass.Pkg.Info.TypeOf(fd.Recv.List[0].Type)
	key, ok := isNilFreeType(recvType, annotated)
	if !ok {
		return
	}
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		recvObj = pass.Pkg.Info.Defs[names[0]]
	}
	if recvObj == nil {
		pass.Reportf(fd.Pos(), "exported method %s.%s on nil-is-free type %s has an unnamed receiver and so cannot guard nil", pass.Pkg.Name, fd.Name.Name, key)
		return
	}
	if hasLeadingNilGuard(pass, fd.Body, recvObj) {
		return
	}
	pass.Reportf(fd.Pos(), "exported method %s on nil-is-free type %s must begin with a nil-receiver guard (if %s == nil { return ... })", fd.Name.Name, key, recvObj.Name())
}

// hasLeadingNilGuard accepts the two canonical guard shapes.
func hasLeadingNilGuard(pass *Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		// `if recv == nil { ... }` possibly OR-ed with further cases; the
		// branch must leave the method (return or panic counts — a
		// nil-is-free type may still choose to treat nil as a bug).
		if first.Init == nil && condComparesNil(pass, first.Cond, recv) && branchExits(first.Body) {
			return true
		}
	case *ast.ReturnStmt:
		// `return recv != nil` / `return recv == nil` (the Enabled shape),
		// or any return whose expression compares the receiver to nil.
		for _, r := range first.Results {
			ok := false
			ast.Inspect(r, func(n ast.Node) bool {
				if b, is := n.(*ast.BinaryExpr); is && binaryComparesNil(pass, b, recv) {
					ok = true
				}
				return !ok
			})
			if ok {
				return true
			}
		}
	}
	return false
}

// condComparesNil reports whether the condition contains `recv == nil`
// as a top-level || operand.
func condComparesNil(pass *Pass, cond ast.Expr, recv types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condComparesNil(pass, e.X, recv) || condComparesNil(pass, e.Y, recv)
		}
		return e.Op == token.EQL && binaryComparesNil(pass, e, recv)
	}
	return false
}

func binaryComparesNil(pass *Pass, b *ast.BinaryExpr, recv types.Object) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Pkg.Info.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilConst := pass.Pkg.Info.Uses[id].(*types.Nil)
		return isNilConst
	}
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}

// branchExits reports whether a guard body unconditionally leaves the
// function.
func branchExits(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// --- caller side ---

// checkCallerReguard flags `if x != nil { x.M() }` where x is a
// nil-is-free pointer and the guarded body uses x only as a method-call
// receiver: every such call is already nil-safe, so the guard is dead.
// Field accesses or dereferences of x inside the body keep the guard
// legitimate and mute the check.
func checkCallerReguard(pass *Pass, fd *ast.FuncDecl, annotated map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil {
			return true
		}
		obj, key := reguardedObject(pass, ifs.Cond, annotated)
		if obj == nil {
			return true
		}
		if methodOnlyUses(pass, ifs.Body, obj) {
			pass.Reportf(ifs.Pos(), "redundant nil guard: %s is nil-is-free (%s), so the guarded calls already no-op on nil", obj.Name(), key)
		}
		return true
	})
}

// reguardedObject matches conditions of the form `x != nil` (alone),
// where x is a plain variable or a field selector of nil-is-free pointer
// type, and returns the object naming x (the variable, or the field).
func reguardedObject(pass *Pass, cond ast.Expr, annotated map[string]bool) (types.Object, string) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return nil, ""
	}
	if id, ok := ast.Unparen(b.Y).(*ast.Ident); !ok {
		return nil, ""
	} else if _, isNil := pass.Pkg.Info.Uses[id].(*types.Nil); !isNil {
		return nil, ""
	}
	var obj types.Object
	switch operand := ast.Unparen(b.X).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[operand]
	case *ast.SelectorExpr:
		obj = pass.Pkg.Info.Uses[operand.Sel]
	}
	if obj == nil {
		return nil, ""
	}
	key, isNF := isNilFreeType(obj.Type(), annotated)
	if !isNF {
		return nil, ""
	}
	return obj, key
}

// methodOnlyUses reports whether every use of obj inside body is as the
// receiver of a method call, with at least one such call present. obj
// may name a plain variable (x.M()) or a struct field (c.x.M()).
func methodOnlyUses(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	calls := 0
	clean := true
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[id] != obj {
			return
		}
		// Plain variable: ident → SelectorExpr (method) → CallExpr.Fun.
		// Field: ident is p.Sel of a field selector p, then p →
		// SelectorExpr (method) → CallExpr.Fun.
		if len(stack) >= 2 {
			recv := ast.Node(id)
			top := len(stack)
			if p, ok := stack[top-1].(*ast.SelectorExpr); ok && p.Sel == id {
				recv = p
				top--
			}
			if top >= 2 {
				if sel, ok := stack[top-1].(*ast.SelectorExpr); ok && sel.X == recv {
					if s, found := pass.Pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
						if call, ok := stack[top-2].(*ast.CallExpr); ok && call.Fun == sel {
							calls++
							return
						}
					}
				}
			}
		}
		clean = false
	})
	return clean && calls > 0
}

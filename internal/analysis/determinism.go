package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the replay-determinism contract in
// sim-reachable packages: a trial's outcome must be a pure function of
// (config, seed), so the code between seed and aggregate may not read
// wall clocks, the process environment, or the global math/rand stream,
// and may not iterate a map in any order-dependent way.
//
// Wall-clock/env/global-rand findings apply to non-test files only —
// test harnesses legitimately re-exec processes and bound wall time. The
// map-iteration rule applies to test files too: a map-ordered test case
// sequence breaks replayable failure reports just as surely as a
// map-ordered event schedule.
//
// A map range is accepted only in provably order-independent shapes:
// stores keyed by the raw range variable, delete calls, commutative
// integer accumulation, loop-local work, and the canonical sorted-key
// idiom (collect keys into a slice that the same function subsequently
// sorts). Everything else is a diagnostic; //voxel:det-ok <reason>
// waives a site after human review.
var DeterminismAnalyzer = &Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall clocks, env reads, global rand, and order-dependent map iteration in sim-reachable packages",
	Packages: DeterministicPackages,
	Run:      runDeterminism,
}

// forbiddenWallCalls maps package path → function names whose result
// depends on when or where the process runs.
var forbiddenWallCalls = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"Tick": "wall timer", "After": "wall timer", "Sleep": "wall sleep",
		"NewTimer": "wall timer", "NewTicker": "wall timer", "AfterFunc": "wall timer",
	},
	"os": {
		"Getenv": "environment read", "LookupEnv": "environment read", "Environ": "environment read",
	},
}

// randConstructors are the math/rand package-level functions that build
// an explicitly seeded source instead of touching the global stream.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(pass, fd.Body)
			}
		}
		if pass.Pkg.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkWallCall(pass, call)
			}
			return true
		})
	}
}

func checkWallCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Pkg.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	pkgPath, name := f.Pkg().Path(), f.Name()
	if kind, ok := forbiddenWallCalls[pkgPath][name]; ok && !pass.Suppressed(call.Pos()) {
		pass.Reportf(call.Pos(), "%s.%s (%s) in a sim-reachable package: trial outcomes must be a pure function of (config, seed)", pkgPath, name, kind)
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] && !pass.Suppressed(call.Pos()) {
		pass.Reportf(call.Pos(), "global %s.%s in a sim-reachable package: use an explicitly seeded rand.New(rand.NewSource(seed))", pkgPath, name)
	}
}

// --- map-range order independence ---

// checkMapRanges finds every range-over-map inside the body of one
// function declaration and classifies each one. The enclosing body is
// kept so the sorted-key idiom can look for the sort call that follows a
// collect loop.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed(rng.Pos()) {
			return true
		}
		classifyMapRange(pass, rng, body)
		return true
	})
}

// rangeCheck accumulates what one map-range body does. locals tracks
// variables declared inside the loop (writes to them cannot leak
// iteration order); collects tracks self-appended slices that must be
// sorted after the loop for the result to be canonical.
type rangeCheck struct {
	pass     *Pass
	rng      *ast.RangeStmt
	enclosing *ast.BlockStmt
	keyObj   types.Object
	valObj   types.Object
	locals   map[types.Object]bool
	collects []string // exprKeys of append destinations needing a sort
	reported bool
}

func classifyMapRange(pass *Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	c := &rangeCheck{pass: pass, rng: rng, enclosing: enclosing, locals: map[types.Object]bool{}}
	if rng.Tok == token.DEFINE {
		c.keyObj = defObj(pass, rng.Key)
		c.valObj = defObj(pass, rng.Value)
	} else if rng.Key != nil || rng.Value != nil {
		// Assigning the key/value to pre-existing variables leaks the
		// iteration order into outer state by construction.
		c.flag(rng.Pos(), "assigns the map iteration variable to an outer variable")
		return
	}
	for _, s := range rng.Body.List {
		c.stmt(s)
	}
	for _, dest := range c.collects {
		if !sortedAfter(pass, enclosing, rng, dest) {
			c.flag(rng.Pos(), "collects entries from a map range into %q but never sorts it; the slice order is the map iteration order", dest)
		}
	}
}

func defObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Pkg.Info.Defs[id]
}

func (c *rangeCheck) flag(pos token.Pos, format string, args ...any) {
	if c.reported {
		return // one diagnostic per range statement is enough to act on
	}
	c.reported = true
	c.pass.Reportf(pos, "order-dependent map iteration: "+format+" (iterate sorted keys, or waive with //voxel:det-ok <reason>)", args...)
}

// stmt checks one statement of the loop body.
func (c *rangeCheck) stmt(s ast.Stmt) {
	if c.reported {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			c.stmt(inner)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		c.stmt(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.stmt(s.Body)
	case *ast.RangeStmt:
		if s.Tok == token.DEFINE {
			if o := defObj(c.pass, s.Key); o != nil {
				c.locals[o] = true
			}
			if o := defObj(c.pass, s.Value); o != nil {
				c.locals[o] = true
			}
		}
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				c.expr(e)
			}
			for _, inner := range clause.Body {
				c.stmt(inner)
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt:
		c.flag(s.Pos(), "statement of kind %T inside the loop body", s)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		c.accumulate(s.X, token.ADD_ASSIGN, nil, s.Pos())
	case *ast.ExprStmt:
		c.call(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			c.flag(s.Pos(), "declaration inside the loop body")
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if o := c.pass.Pkg.Info.Defs[name]; o != nil {
					c.locals[o] = true
				}
			}
			for _, v := range vs.Values {
				c.expr(v)
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
		// continue/break/goto-free labels carry no state
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
			if c.references(e, c.keyObj) || c.references(e, c.valObj) {
				c.flag(s.Pos(), "returns a value derived from the iteration variable; which entry wins depends on map order")
			}
		}
	default:
		c.flag(s.Pos(), "statement of kind %T inside the loop body", s)
	}
}

// assign checks one assignment statement inside the loop.
func (c *rangeCheck) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if o := c.pass.Pkg.Info.Defs[id]; o != nil {
					c.locals[o] = true
				}
			}
		}
		for _, r := range s.Rhs {
			c.expr(r)
		}
	case token.ASSIGN:
		// Self-append collect: dest = append(dest, ...) feeds the
		// sorted-key idiom, checked after the loop.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(c.pass.Pkg.Info, call, "append") && len(call.Args) > 0 {
				destKey := exprKey(s.Lhs[0])
				if destKey == exprKey(sliceBase(call.Args[0])) {
					for _, a := range call.Args[1:] {
						c.expr(a)
					}
					if c.isLocalLValue(s.Lhs[0]) {
						return
					}
					c.collects = append(c.collects, destKey)
					return
				}
			}
		}
		for _, r := range s.Rhs {
			c.expr(r)
		}
		for _, l := range s.Lhs {
			c.lvalue(l)
		}
	default: // compound assignment
		c.expr(s.Rhs[0])
		c.accumulate(s.Lhs[0], s.Tok, s.Rhs[0], s.Pos())
	}
}

// lvalue checks a plain-assignment destination.
func (c *rangeCheck) lvalue(l ast.Expr) {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" || c.isLocalLValue(l) {
			return
		}
		c.flag(l.Pos(), "assigns to outer variable %q", l.Name)
	case *ast.IndexExpr:
		// A store keyed by the raw range variable lands each entry in a
		// slot owned by that entry — order cannot matter. A computed key
		// can collide across entries ("last writer wins"), so it can.
		if c.isLocalLValue(l) {
			return
		}
		if t := c.pass.Pkg.Info.TypeOf(l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if id, ok := ast.Unparen(l.Index).(*ast.Ident); ok {
					if o := c.pass.Pkg.Info.Uses[id]; o != nil && (o == c.keyObj || o == c.valObj || c.locals[o]) {
						c.expr(l.X)
						return
					}
				}
				c.flag(l.Pos(), "stores under a computed map key; colliding keys make the surviving value order-dependent")
				return
			}
		}
		c.flag(l.Pos(), "writes through an outer index expression")
	default:
		if c.isLocalLValue(l) {
			return
		}
		c.flag(l.Pos(), "writes to outer state through a %T", l)
	}
}

// isLocalLValue reports whether the destination is rooted at a variable
// declared inside the loop body.
func (c *rangeCheck) isLocalLValue(e ast.Expr) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			o := c.pass.Pkg.Info.Uses[t]
			if o == nil {
				o = c.pass.Pkg.Info.Defs[t]
			}
			return o != nil && (c.locals[o] || o == c.keyObj || o == c.valObj)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return false
		}
	}
}

// accumulate checks a compound assignment or ++/--: commutative integer
// accumulation into outer state is order-independent; everything else is
// not.
func (c *rangeCheck) accumulate(dest ast.Expr, tok token.Token, rhs ast.Expr, pos token.Pos) {
	if rhs != nil {
		c.expr(rhs)
	}
	if c.isLocalLValue(dest) {
		return
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		c.flag(pos, "non-commutative compound assignment to outer state")
		return
	}
	t := c.pass.Pkg.Info.TypeOf(dest)
	if t == nil {
		c.flag(pos, "compound assignment to outer state of unknown type")
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		return // integer accumulation commutes exactly
	}
	c.flag(pos, "accumulates into outer non-integer state; floating-point reduction depends on summation order")
}

// call checks an expression-statement call: delete is sanctioned, any
// other call may have side effects that observe the iteration order.
func (c *rangeCheck) call(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		c.expr(e)
		return
	}
	if isBuiltin(c.pass.Pkg.Info, call, "delete") {
		for _, a := range call.Args {
			c.expr(a)
		}
		return
	}
	c.flag(call.Pos(), "calls %s, whose side effects would observe the iteration order", exprKey(call.Fun))
}

// expr rejects calls (other than pure builtins and conversions) anywhere
// inside an expression evaluated by the loop.
func (c *rangeCheck) expr(e ast.Expr) {
	if e == nil || c.reported {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if c.reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(c.pass.Pkg.Info, n, "len") || isBuiltin(c.pass.Pkg.Info, n, "cap") ||
				isBuiltin(c.pass.Pkg.Info, n, "min") || isBuiltin(c.pass.Pkg.Info, n, "max") {
				return true
			}
			if tv, ok := c.pass.Pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			c.flag(n.Pos(), "calls %s inside the loop; a side-effecting call would observe the iteration order", exprKey(n.Fun))
			return false
		case *ast.FuncLit:
			c.flag(n.Pos(), "declares a closure inside the loop body")
			return false
		}
		return true
	})
}

// references reports whether the expression mentions the given object.
func (c *rangeCheck) references(e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, somewhere after the range statement in
// the enclosing function body, a sort call receives the collected slice.
// sort.* and slices.Sort* qualify, as does any function whose name
// contains "sort" (the kernel's own sortEntries idiom).
func sortedAfter(pass *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, destKey string) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		name := exprKey(call.Fun)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, a := range call.Args {
			arg := sliceBase(a)
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = ast.Unparen(u.X)
			}
			if exprKey(arg) == destKey {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

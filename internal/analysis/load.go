package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package's non-test and
// in-package test files together, or an external _test package on its
// own (those carry the primary path plus a "_test" suffix).
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsTestFile reports whether the node sits in a _test.go file.
func (pkg *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
}

// Loader parses and type-checks packages using only the standard
// library: imports (both stdlib and intra-module) resolve through the
// go/importer "source" importer, so the suite needs no dependency on
// golang.org/x/tools. The importer caches by path, so one Loader shared
// across many packages type-checks each dependency once.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and import cache.
// Module-mode import resolution shells out to the go command, so the
// process must run from inside the module.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// ListedPackage is the slice of `go list -json` output the loader and
// the voxel-vet fact cache consume.
type ListedPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	XTestGoFiles []string
	Imports     []string
	TestImports []string
	XTestImports []string
}

// List resolves package patterns (./..., import paths) via `go list`.
func List(patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// Units splits a listed package into analysis units: the primary unit
// (GoFiles + in-package TestGoFiles) and, when present, the external
// _test package.
func (l *Loader) Units(p *ListedPackage) ([]*Package, error) {
	var units []*Package
	if files := join(p.Dir, append(append([]string(nil), p.GoFiles...), p.TestGoFiles...)); len(files) > 0 {
		u, err := l.load(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if files := join(p.Dir, p.XTestGoFiles); len(files) > 0 {
		u, err := l.load(p.ImportPath+"_test", p.Dir, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadDir loads every .go file in dir as a single package unit — the
// entry point for want-comment tests over testdata packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.load("testdata/"+filepath.Base(dir), dir, matches)
}

func (l *Loader) load(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Name: tpkg.Name(), Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

func join(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

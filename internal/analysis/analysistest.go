package analysis

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest loads the testdata package in dir, runs one analyzer over it,
// and checks the findings against `// want "regexp"` comments, in the
// style of golang.org/x/tools' analysistest: every diagnostic must match
// a want on its line, and every want must be matched by exactly one
// diagnostic. A line may carry several quoted regexps when several
// diagnostics land on it.
func RunTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags := a.run(pkg)

	matched := map[*want]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		var hit *want
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		matched[hit] = true
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !matched[w] {
				t.Errorf("no diagnostic at %s matched %q", k, w.re)
			}
		}
	}
}

type want struct {
	re *regexp.Regexp
}

// collectWants parses `// want "..."` comments, keyed by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range splitQuoted(t, key, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, q, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b c"`.
func splitQuoted(t *testing.T, key, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want clause near %q (expected quoted regexp)", key, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want regexp in %q", key, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want quoting %q: %v", key, s[:end+1], err)
		}
		out = append(out, q)
		s = s[end+1:]
	}
}

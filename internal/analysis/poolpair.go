package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolPairAnalyzer enforces the pooling contract from the zero-allocation
// hot paths (DESIGN.md §8): a value obtained from a pool getter must not
// be dropped on the floor. Two kinds of getter are recognized:
//
//   - (*sync.Pool).Get, paired with (*sync.Pool).Put; and
//   - package functions/methods annotated `//voxel:pool-get put=f,g`,
//     naming the release functions (the repo's freelists: allocSent /
//     releaseSent, allocFrame / freeFrame, getErrs / putErrs, ...).
//
// The check is deliberately an under-approximation that never cries
// wolf: a pooled value counts as accounted for once it is released,
// returned, stored, aliased, captured, or handed to any call — transfer
// of ownership is invisible to an intra-function pass, so any handoff is
// trusted. What it flags is the unambiguous leak: a Get whose result is
// discarded, bound to _, or used only through field reads and writes
// before every return path abandons it.
var PoolPairAnalyzer = &Analyzer{
	Name: "poolpair",
	Doc:  "pool/freelist Get results must be released via the matching Put or handed off",
	Run:  runPoolPair,
}

// poolGetter describes one recognized getter within the package.
type poolGetter struct {
	name string   // display name for diagnostics
	puts []string // names of release functions
}

func runPoolPair(pass *Pass) {
	getters := annotatedGetters(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolUses(pass, fd, getters)
			}
		}
	}
}

// annotatedGetters maps the *types.Func of each //voxel:pool-get
// annotated function in this package to its declared release names.
func annotatedGetters(pass *Pass) map[*types.Func]poolGetter {
	out := map[*types.Func]poolGetter{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			payload, ok := docHasDirective(fd.Doc, "pool-get")
			if !ok {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			g := poolGetter{name: fd.Name.Name}
			for _, field := range strings.Fields(payload) {
				if rest, found := strings.CutPrefix(field, "put="); found {
					for _, p := range strings.Split(rest, ",") {
						if p = strings.TrimSpace(p); p != "" {
							g.puts = append(g.puts, p)
						}
					}
				}
			}
			if len(g.puts) == 0 {
				pass.Reportf(fd.Pos(), "//voxel:pool-get on %s names no release function (write put=<name>)", fd.Name.Name)
				continue
			}
			out[fn] = g
		}
	}
	return out
}

// asPoolGet classifies a call as a pool acquisition and returns the
// getter description.
func asPoolGet(pass *Pass, call *ast.CallExpr, getters map[*types.Func]poolGetter) (poolGetter, bool) {
	f := calleeFunc(pass.Pkg.Info, call)
	if f == nil {
		return poolGetter{}, false
	}
	if g, ok := getters[f]; ok {
		return g, true
	}
	if f.Name() == "Get" && isSyncPoolMethod(f) {
		return poolGetter{name: "(*sync.Pool).Get", puts: []string{"Put"}}, true
	}
	return poolGetter{}, false
}

func isSyncPoolMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedPtrElem(sig.Recv().Type())
	if named == nil {
		if n, ok := sig.Recv().Type().(*types.Named); ok {
			named = n
		}
	}
	return named != nil && typeKey(named) == "sync.Pool"
}

// checkPoolUses walks one function, finds every pool acquisition, and
// verifies the result is accounted for.
func checkPoolUses(pass *Pass, fd *ast.FuncDecl, getters map[*types.Func]poolGetter) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		g, ok := asPoolGet(pass, call, getters)
		if !ok {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is discarded: the pooled value leaks (release via %s or hand it off)", g.name, strings.Join(g.puts, "/"))
		case *ast.AssignStmt:
			// Only the direct `v := get()` / `v = get()` binding form is
			// tracked; a get nested in a larger expression is a handoff.
			if len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) && ast.Unparen(parent.Rhs[0]) != ast.Expr(call) {
				return
			}
			if len(parent.Lhs) != 1 {
				return
			}
			id, ok := parent.Lhs[0].(*ast.Ident)
			if !ok {
				return // field/index destination: stored, accounted for
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s is bound to _: the pooled value leaks (release via %s or hand it off)", g.name, strings.Join(g.puts, "/"))
				return
			}
			obj := pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = pass.Pkg.Info.Uses[id]
			}
			if obj == nil {
				return
			}
			if !pooledValueAccounted(pass, fd, call, obj) {
				pass.Reportf(call.Pos(), "pooled value %s from %s is never released via %s nor handed off — it leaks on every path", id.Name, g.name, strings.Join(g.puts, "/"))
			}
		}
	})
}

// pooledValueAccounted scans the function for any use of obj, after the
// acquisition, that transfers or releases it: an argument position
// (including defer), a return, an assignment (aliasing or storing), an
// address-of, a method call on the value, or capture by a closure. Field
// selection and index reads do not count.
func pooledValueAccounted(pass *Pass, fd *ast.FuncDecl, get *ast.CallExpr, obj types.Object) bool {
	accounted := false
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if accounted {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= get.End() || pass.Pkg.Info.Uses[id] != obj {
			return
		}
		if identEscapes(pass, id, stack) {
			accounted = true
		}
	})
	return accounted
}

// identEscapes classifies one use of the pooled variable by its
// ancestors.
func identEscapes(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.CallExpr:
			if parent.Fun == child {
				return false // calling v() — not a transfer of v itself
			}
			return true // argument: handed off (or released)
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			for _, r := range parent.Rhs {
				if containsNode(r, child) {
					return true // aliased or stored somewhere
				}
			}
			// v on the left of a selector/index store was already handled
			// below; plain `v = ...` rebinding is not an escape.
			return false
		case *ast.UnaryExpr:
			if parent.Op.String() == "&" {
				return true
			}
			child = parent
		case *ast.SelectorExpr:
			if parent.X == child {
				if sel, ok := pass.Pkg.Info.Selections[parent]; ok && sel.Kind() == types.MethodVal {
					return true // method call/value on v may release it
				}
				// field access: keep climbing — v.f = x is a write into
				// the pooled object, not an escape of it.
				child = parent
				continue
			}
			child = parent
		case *ast.CompositeLit:
			return true // stored into a literal
		case *ast.ParenExpr, *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr:
			child = parent
		case *ast.KeyValueExpr:
			child = parent
		default:
			return false
		}
	}
	return false
}

// containsNode reports whether needle appears within root.
func containsNode(root ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

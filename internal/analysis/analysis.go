// Package analysis is voxel-vet: a static-analysis suite that enforces,
// at compile time, the contracts the repo's results rest on and that were
// previously guarded only by runtime tests —
//
//   - determinism: sim-reachable packages must not read wall clocks,
//     process environment, or the global math/rand stream, and must not
//     iterate maps in an order-dependent way (bit-identical aggregates
//     across parallelism and shards depend on this);
//   - nilfree: the obs/invariant nil-is-free contract — every exported
//     method on a nil-is-free type begins with a nil-receiver guard, and
//     callers never re-guard (the re-guard is dead code by contract);
//   - poolpair: values obtained from a freelist or sync.Pool getter must
//     be released through the matching put or handed off, never dropped;
//   - hotpath: functions annotated //voxel:allocfree reject constructs
//     known to allocate (fmt calls, capturing closures, value-to-interface
//     boxing, appends that can grow a fresh backing array).
//
// The suite is intentionally self-contained: it runs on the standard
// library's go/parser + go/types with the "source" importer, so the
// module stays dependency-free. The API mirrors golang.org/x/tools'
// go/analysis in miniature (Analyzer, Pass, Diagnostic, want-comment
// tests) without importing it.
//
// # Directives
//
//   - //voxel:allocfree          (func doc)  — arm the hotpath analyzer
//   - //voxel:nilfree            (type doc)  — arm the nilfree analyzer
//   - //voxel:pool-get put=f,g   (func doc)  — declare a pool getter and
//     its release functions for the poolpair analyzer
//   - //voxel:det-ok <reason>    (same line or line above) — waive one
//     determinism diagnostic; the reason is mandatory and should say why
//     wall-clock or unsorted iteration is sound at that site
package analysis

// SuiteVersion participates in voxel-vet's fact-cache key: bump it
// whenever an analyzer's rules change so stale cached diagnostics are
// never replayed against new rules.
const SuiteVersion = "voxel-vet-1"

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NilFreeAnalyzer,
		PoolPairAnalyzer,
		HotPathAnalyzer,
	}
}

// DeterministicPackages lists the sim-reachable import paths the
// determinism analyzer gates. Everything a trial world touches between
// seed and aggregate must be here; packages outside the list may use
// wall clocks freely (profiling, CLI glue).
var DeterministicPackages = []string{
	"voxel/internal/sim",
	"voxel/internal/netem",
	"voxel/internal/quic",
	"voxel/internal/httpsim",
	"voxel/internal/player",
	"voxel/internal/abr",
	"voxel/internal/cc",
	"voxel/internal/exp",
	"voxel/internal/sweep",
	"voxel/internal/obs",
	"voxel/internal/stats",
}

// knownNilFree names the nil-is-free types enforced across package
// boundaries. Same-package code can instead annotate a type with
// //voxel:nilfree; this list exists because an annotation in package obs
// is invisible to a caller-side pass over package quic.
var knownNilFree = map[string]bool{
	"voxel/internal/obs.Scope":        true,
	"voxel/internal/invariant.Checker": true,
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule set. Run inspects a loaded package through
// the Pass and reports diagnostics; Packages optionally restricts which
// import paths the driver applies the rule to (nil = every package).
// Test harnesses bypass the filter and run the analyzer directly.
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	Run      func(*Pass)
}

// AppliesTo reports whether the driver should run this analyzer on the
// package with the given import path. External test units carry the
// primary package's path plus a "_test" suffix and inherit its gating.
func (a *Analyzer) AppliesTo(path string) bool {
	if a.Packages == nil {
		return true
	}
	path = strings.TrimSuffix(path, "_test")
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Pkg   *Package
	diags []Diagnostic

	analyzer *Analyzer
	detOK    map[string]map[int]bool // filename → lines carrying //voxel:det-ok
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a //voxel:det-ok directive covers pos: the
// directive suppresses diagnostics on its own line and on the line
// directly below it (comment-above style).
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Pkg.Fset.Position(pos)
	lines := p.detOK[position.Filename]
	return lines[position.Line] || lines[position.Line-1]
}

// run executes one analyzer over the package and returns its findings in
// position order.
func (a *Analyzer) run(pkg *Package) []Diagnostic {
	pass := &Pass{Pkg: pkg, analyzer: a, detOK: pkg.detOKLines()}
	a.Run(pass)
	sort.Slice(pass.diags, func(i, j int) bool {
		di, dj := pass.diags[i].Pos, pass.diags[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return pass.diags
}

// RunSuite applies every analyzer that gates the package and merges the
// findings.
func RunSuite(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo(pkg.Path) {
			out = append(out, a.run(pkg)...)
		}
	}
	return out
}

// --- directives ---

// directive extracts the payload of a //voxel:<name> comment line, or
// ok=false when the line is not that directive.
func directive(line, name string) (payload string, ok bool) {
	line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
	if line == "voxel:"+name {
		return "", true
	}
	if rest, found := strings.CutPrefix(line, "voxel:"+name+" "); found {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// docHasDirective reports whether any line of a doc comment group is the
// given //voxel: directive, returning its payload.
func docHasDirective(doc *ast.CommentGroup, name string) (payload string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if p, found := directive(c.Text, name); found {
			return p, true
		}
	}
	return "", false
}

// detOKLines maps filename → set of lines carrying a det-ok directive.
// A bare directive with no reason is deliberately ignored — the policy
// (DESIGN.md §11) makes the justification part of the waiver.
func (pkg *Package) detOKLines() map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := directive(c.Text, "det-ok")
				if !ok || reason == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// --- small AST/type helpers shared by the analyzers ---

// walkStack visits every node under root, handing the visitor the path of
// ancestors (outermost first, not including n itself).
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves a call to the package-level function or method it
// invokes, or nil for builtins, conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// stdFunc reports whether the call resolves to the package-level function
// pkgPath.name (methods never match: their receiver is non-nil).
func stdFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// exprKey renders an expression to a comparable string: identical
// renderings mean the same l-value for the simple expressions that appear
// as append destinations (idents, selectors, index and star expressions).
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T@%d>", e, e.Pos())
	}
}

// sliceBase strips slicing from an append argument: append(x[:0], ...)
// and append(x[:n], ...) reuse x's backing array, so they count as
// appending to x itself.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = t.X
		default:
			return ast.Unparen(e)
		}
	}
}

// namedPtrElem returns the named type T when typ is *T (unaliased), else
// nil.
func namedPtrElem(typ types.Type) *types.Named {
	ptr, ok := typ.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, _ := ptr.Elem().(*types.Named)
	return named
}

// typeKey renders a named type as pkgpath.Name for lookup against the
// known nil-is-free list.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

package analysis

import "testing"

// TestSuiteCleanOnRepo runs every analyzer over every package of the
// module — the same pass CI's voxel-vet gate performs — and demands
// zero diagnostics. It type-checks the whole module from source, so it
// is the slowest test in the package; -short skips it and leaves the
// corpus tests to cover analyzer behavior.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck; covered by voxel-vet in CI")
	}
	pkgs, err := List("voxel/...")
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	loader := NewLoader()
	for _, p := range pkgs {
		units, err := loader.Units(p)
		if err != nil {
			t.Fatalf("load %s: %v", p.ImportPath, err)
		}
		for _, u := range units {
			for _, d := range RunSuite(u, Analyzers()) {
				t.Errorf("%s", d)
			}
		}
	}
}

package analysis

import "testing"

// Each analyzer runs over its want-diagnostics corpus: the flagged file
// pins one diagnostic per seeded violation, the clean file pins zero
// false positives on the idioms the real packages use.

func TestDeterminismAnalyzer(t *testing.T) {
	RunTest(t, DeterminismAnalyzer, "testdata/src/determinism")
}

func TestNilFreeAnalyzer(t *testing.T) {
	RunTest(t, NilFreeAnalyzer, "testdata/src/nilfree")
}

func TestPoolPairAnalyzer(t *testing.T) {
	RunTest(t, PoolPairAnalyzer, "testdata/src/poolpair")
}

func TestHotPathAnalyzer(t *testing.T) {
	RunTest(t, HotPathAnalyzer, "testdata/src/hotpath")
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotPathAnalyzer guards the functions the 0 allocs/op benchmarks pin
// (the QUIC* ACK path, the timing-wheel operations, qoe scoring): a
// function annotated //voxel:allocfree rejects the constructs that are
// known to allocate on every execution —
//
//   - any call into package fmt (Sprintf and friends format into a fresh
//     string and box their variadic arguments);
//   - closures that capture enclosing variables (the captured frame
//     escapes to the heap along with the func value);
//   - explicit conversions of non-pointer concrete values to interface
//     types (the value is boxed);
//   - append forms other than self-append `x = append(x, ...)` — the
//     pooled/amortized idiom whose backing array is preallocated and
//     recycled; any other destination can grow a fresh array per call.
//
// The annotation is deliberately opt-in and per-function: cold paths of
// the same package (constructors, failure formatting) allocate freely.
// Warm-up allocations behind a freelist-empty check (`return &T{}`) are
// accepted — the benchmarks pin the steady state, and the freelist is
// exactly the mechanism that makes those sites cold.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//voxel:allocfree functions reject known-allocating constructs",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := docHasDirective(fd.Doc, "allocfree"); !ok {
				continue
			}
			checkAllocFree(pass, fd)
		}
	}
}

func checkAllocFree(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if insideFuncLit(stack) {
			return // the literal was reported once at its own site
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s allocates (formatting + variadic boxing) in //voxel:allocfree function %s", f.Name(), fd.Name.Name)
				return
			}
			checkInterfaceConversion(pass, fd, n)
			checkAppend(pass, fd, n, stack)
		case *ast.FuncLit:
			if captured := capturedVars(pass, n); len(captured) > 0 {
				pass.Reportf(n.Pos(), "closure captures %s in //voxel:allocfree function %s: the captured frame escapes to the heap", captured[0], fd.Name.Name)
			}
		}
	})
}

// insideFuncLit reports whether any ancestor is a func literal — nodes
// under one belong to the closure, whose body is not re-checked (the
// capture itself is the allocation being flagged).
func insideFuncLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// capturedVars returns the names of enclosing-function variables the
// literal captures, sorted for deterministic diagnostics. Package-level
// objects, fields, and the literal's own locals/params don't count.
func capturedVars(pass *Pass, lit *ast.FuncLit) []string {
	info := pass.Pkg.Info
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pass.Pkg.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: no frame to capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own param or local
		}
		seen[v.Name()] = true
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkInterfaceConversion flags explicit conversions I(x) where I is an
// interface and x a non-pointer concrete value: the conversion boxes x.
func checkInterfaceConversion(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch u := src.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // interface-to-interface and pointer boxing don't copy the value
	case *types.Basic:
		if u.Kind() == types.UntypedNil {
			return
		}
	}
	pass.Reportf(call.Pos(), "conversion of non-pointer %s to interface %s boxes the value in //voxel:allocfree function %s", src, dst, fd.Name.Name)
}

// checkAppend accepts only the self-append form x = append(x, ...) (with
// x possibly resliced: append(x[:0], ...)); any other destination may
// grow a fresh backing array on every call.
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if !isBuiltin(pass.Pkg.Info, call, "append") || len(call.Args) == 0 {
		return
	}
	if assign := enclosingAssign(call, stack); assign != nil &&
		assign.Tok == token.ASSIGN && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 &&
		exprKey(assign.Lhs[0]) == exprKey(sliceBase(call.Args[0])) {
		return
	}
	pass.Reportf(call.Pos(), "append without a recycled destination in //voxel:allocfree function %s: write x = append(x, ...) over a preallocated x", fd.Name.Name)
}

// enclosingAssign returns the assignment whose sole right-hand side is
// this call (modulo parentheses), or nil.
func enclosingAssign(call *ast.CallExpr, stack []ast.Node) *ast.AssignStmt {
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
		case *ast.AssignStmt:
			if len(parent.Rhs) == 1 && parent.Rhs[0] == child {
				return parent
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

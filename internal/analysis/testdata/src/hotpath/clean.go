package hotpath

// selfAppend recycles its destination: amortized, not per-call, growth.
//
//voxel:allocfree
func selfAppend(xs []int, n int) []int {
	xs = append(xs, n)
	return xs
}

// resliceAppend reuses the backing array through a reslice.
//
//voxel:allocfree
func resliceAppend(buf []byte, b []byte) []byte {
	buf = append(buf[:0], b...)
	return buf
}

var freeItems []*item

// warmup allocates only when the freelist is dry — the accepted cold
// path behind the pool.
//
//voxel:allocfree
func warmup() *item {
	if n := len(freeItems); n > 0 {
		it := freeItems[n-1]
		freeItems = freeItems[:n-1]
		return it
	}
	return &item{}
}

// pointerBox hands an existing pointer across an interface: no copy,
// no box.
//
//voxel:allocfree
func pointerBox(it *item) any {
	return any(it)
}

// captureFree closures that touch only their own parameters and locals
// carry no frame.
//
//voxel:allocfree
func captureFree() func(int) int {
	return func(n int) int { return n * 2 }
}

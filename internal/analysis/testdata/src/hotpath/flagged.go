// Package hotpath is the want-diagnostics corpus for the hotpath
// analyzer: each //voxel:allocfree function below contains exactly one
// known-allocating construct.
package hotpath

import "fmt"

type item struct{ n int }

type boxer interface{ value() int }

func (i item) value() int { return i.n }

// format is annotated but formats.
//
//voxel:allocfree
func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt\\.Sprintf allocates"
}

// capture builds a closure over enclosing state: the captured frame
// escapes to the heap with the func value.
//
//voxel:allocfree
func capture(n int) func() int {
	inc := func() int { // want "closure captures n"
		n++
		return n
	}
	return inc
}

// box converts a non-pointer concrete value to an interface.
//
//voxel:allocfree
func box(i item) boxer {
	return boxer(i) // want "boxes the value"
}

// grow appends into a fresh destination that can reallocate per call.
//
//voxel:allocfree
func grow(xs []int, n int) []int {
	ys := append(xs, n) // want "append without a recycled destination"
	return ys
}

// Package poolpair is the want-diagnostics corpus for the poolpair
// analyzer: pooled values dropped on the floor.
package poolpair

import "sync"

type thing struct{ n int }

var free []*thing

// getThing pops the freelist, growing it cold when dry.
//
//voxel:pool-get put=putThing
func getThing() *thing {
	if n := len(free); n > 0 {
		t := free[n-1]
		free = free[:n-1]
		return t
	}
	return &thing{}
}

// putThing pushes a handle back.
func putThing(t *thing) { free = append(free, t) }

// badGet declares the directive but forgets the release name.
//
//voxel:pool-get
func badGet() *thing { // want "names no release function"
	return &thing{}
}

// leaks exercises each unambiguous leak shape.
func leaks() {
	getThing()      // want "result of getThing is discarded"
	_ = getThing()  // want "result of getThing is bound to _"
	v := getThing() // want "pooled value v from getThing is never released via putThing nor handed off"
	v.n = 1
}

var pool = sync.Pool{New: func() any { return new(thing) }}

// dropsPooled leaks straight from sync.Pool, no annotation needed.
func dropsPooled() {
	pool.Get() // want "result of \\(\\*sync\\.Pool\\)\\.Get is discarded"
}

package poolpair

// deferredRelease pairs the get with a put on every path.
func deferredRelease() int {
	t := getThing()
	defer putThing(t)
	t.n++
	return t.n
}

// handoff: passing the pooled value to any call transfers ownership.
func handoff() {
	consume(getThing())
}

func consume(t *thing) { putThing(t) }

// returned: the caller owns the handle now.
func returned() *thing {
	t := getThing()
	t.n = 0
	return t
}

// holder stores the handle; a struct field keeps it reachable.
type holder struct{ t *thing }

func (h *holder) fill() {
	h.t = getThing()
}

// pooledRoundTrip mirrors the qoe scratch idiom: the Get is wrapped in
// a type assertion (a handoff to the larger expression) and released by
// a deferred Put.
func pooledRoundTrip() int {
	t := pool.Get().(*thing)
	defer pool.Put(t)
	return t.n
}

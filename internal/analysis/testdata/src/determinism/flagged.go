// Package determinism is the want-diagnostics corpus for the
// determinism analyzer: every construct here must produce exactly the
// diagnostic its want comment names.
package determinism

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// wallClock reads the wall clock and the environment: both make a trial
// outcome depend on when and where the process runs.
func wallClock() (int64, string) {
	t := time.Now()        // want "time\\.Now \\(wall clock\\) in a sim-reachable package"
	e := os.Getenv("HOME") // want "os\\.Getenv \\(environment read\\)"
	return t.UnixNano(), e
}

// globalRand draws from the process-global stream, which is shared,
// lock-ordered, and unseedable per trial.
func globalRand() int {
	return rand.Intn(6) // want "global math/rand\\.Intn"
}

// floatReduce accumulates floats across iterations: float addition does
// not commute, so the sum depends on map order.
func floatReduce(m map[string]int) float64 {
	sum := 0.0
	for _, v := range m {
		sum += float64(v) // want "floating-point reduction depends on summation order"
	}
	return sum
}

// lastWriter leaks whichever entry the runtime happened to visit last.
func lastWriter(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want "assigns to outer variable \"last\""
	}
	return last
}

// anyKey returns an arbitrary entry — a different one on every run.
func anyKey(m map[string]int) string {
	for k := range m {
		return k // want "returns a value derived from the iteration variable"
	}
	return ""
}

// computedKey can collide distinct entries onto one slot; the survivor
// is the entry visited last.
func computedKey(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k+"!"] = v // want "stores under a computed map key"
	}
}

// sideEffects observes the iteration order through a call.
func sideEffects(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "calls fmt\\.Println, whose side effects would observe the iteration order"
	}
}

// collectNoSort gathers keys but never canonicalizes the order.
func collectNoSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "collects entries from a map range into \"keys\" but never sorts it"
		keys = append(keys, k)
	}
	return keys
}

// leakIterVar writes the iteration variable straight into outer state.
func leakIterVar(m map[string]int) string {
	var k string
	for k = range m { // want "assigns the map iteration variable to an outer variable"
	}
	return k
}

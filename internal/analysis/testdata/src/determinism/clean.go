package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// sortedIteration is the canonical idiom: collect, sort, then walk.
func sortedIteration(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keyedStores land each entry in its own slot; delete shrinks in place;
// integer accumulation commutes exactly.
func keyedStores(m map[string]int, out map[string]int) int {
	total := 0
	for k, v := range m {
		if v < 0 {
			delete(out, k)
			continue
		}
		out[k] = v
		total += v
	}
	return total
}

// loopLocals keep all order-sensitive work inside a single iteration;
// only a commutative integer total crosses iterations.
func loopLocals(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := 0
		for _, v := range vs {
			local += v
		}
		n += local
	}
	return n
}

// seededRand draws from an explicitly seeded source; methods on a
// *rand.Rand never touch the global stream.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// waived sites carry a reviewed reason on the det-ok directive.
func waived() int64 {
	//voxel:det-ok corpus example of the waiver syntax with a reason
	return time.Now().UnixNano()
}

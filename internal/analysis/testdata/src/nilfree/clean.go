package nilfree

// Probe exercises every accepted guard shape.
//
//voxel:nilfree
type Probe struct {
	n int
}

// Enabled is the single-return comparison shape.
func (p *Probe) Enabled() bool { return p != nil }

// Check ORs the nil case with further early-outs, invariant.Check-style.
func (p *Probe) Check(ok bool) {
	if p == nil || ok {
		return
	}
	p.n++
}

// MustN treats nil as a bug but still guards first: panic exits too.
func (p *Probe) MustN() int {
	if p == nil {
		panic("nil probe")
	}
	return p.n
}

// reset is unexported: internal call sites manage nil themselves.
func (p *Probe) reset() { p.n = 0 }

// mixedUse keeps its guard because the body touches a field, which a
// nil receiver cannot survive — the guard is load-bearing, not dead.
func mixedUse(p *Probe, out *int) {
	if p != nil {
		*out = p.n
		p.Check(true)
	}
}

// counter carries no nil-is-free contract, so callers guard freely.
type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func useCounter(c *counter) {
	if c != nil {
		c.bump()
	}
}

// Package nilfree is the want-diagnostics corpus for the nilfree
// analyzer: the method side (missing guard) and the caller side
// (redundant re-guard) of the nil-is-free contract.
package nilfree

// Tracker is nil-is-free: a nil *Tracker is the disabled state.
//
//voxel:nilfree
type Tracker struct {
	n int
}

// Add is properly guarded and establishes the contract callers rely on.
func (t *Tracker) Add(n int) {
	if t == nil {
		return
	}
	t.n += n
}

// Total forgets the guard: a nil handle would crash here.
func (t *Tracker) Total() int { // want "exported method Total on nil-is-free type testdata/nilfree\\.Tracker must begin with a nil-receiver guard"
	return t.n
}

// useTracker re-guards a call that is already nil-safe; the dead check
// misleads readers into thinking the callee is not.
func useTracker(t *Tracker) {
	if t != nil { // want "redundant nil guard: t is nil-is-free"
		t.Add(1)
	}
}

package httpsim

import (
	"strconv"
	"strings"

	"voxel/internal/quic"
)

// Response is a client-side in-flight response. Body delivery is
// event-driven; offsets are positions in the concatenated range payload
// (use Ranges.ObjectOffset to map back).
type Response struct {
	Ranges     RangeSpec
	Status     int
	Headers    map[string]string
	BodyLen    int64
	Unreliable bool

	// OnBody fires per arriving chunk (possibly out of order on unreliable
	// responses).
	OnBody func(bodyOff int64, data []byte)
	// OnLost fires when the transport gives up on a body range.
	OnLost func(bodyOff, length int64)
	// OnHead fires once the response head is parsed.
	OnHead func()
	// OnComplete fires when every body byte is received or reported lost.
	OnComplete func()

	received quic.RangeSet
	lost     quic.RangeSet
	headDone bool
	complete bool
	finSeen  bool
	reqStr   *quic.Stream
	client   *Client
	headBuf  []byte
	headCov  quic.RangeSet // stream-offset coverage during the head phase
	bodyBase uint64        // stream offset where the body starts (reliable path)
}

// Received exposes the received body coverage.
func (r *Response) Received() *quic.RangeSet { return &r.received }

// Lost exposes the permanently lost body ranges.
func (r *Response) Lost() *quic.RangeSet { return &r.lost }

// Complete reports whether the response fully resolved.
func (r *Response) Complete() bool { return r.complete }

// BytesReceived returns the number of body bytes that arrived.
func (r *Response) BytesReceived() int64 { return int64(r.received.CoveredBytes()) }

// Cancel detaches the response: subsequent data is ignored. The transport
// keeps draining whatever the server already queued; the player accounts
// for abandoned downloads itself.
func (r *Response) Cancel() {
	r.OnBody = nil
	r.OnLost = nil
	r.OnComplete = nil
}

// Client issues GET requests over a QUIC* connection.
type Client struct {
	conn *quic.Conn
	// pendingByStream maps announced unreliable stream IDs to responses.
	pendingByStream map[uint64]*Response
	// earlyStreams buffers unreliable streams that arrived before their
	// announcing response head.
	earlyStreams map[uint64]*earlyStream
}

type earlyStream struct {
	st     *quic.Stream
	chunks []earlyChunk
	losses [][2]uint64
	fin    bool
	final  uint64
}

type earlyChunk struct {
	off  uint64
	data []byte
}

// NewClient wires a Client to the connection. It takes over the
// connection's OnStream callback for server-initiated (unreliable body)
// streams.
func NewClient(conn *quic.Conn) *Client {
	c := &Client{
		conn:            conn,
		pendingByStream: make(map[uint64]*Response),
		earlyStreams:    make(map[uint64]*earlyStream),
	}
	conn.OnStream(c.onServerStream)
	return c
}

// Get issues a GET for path. ranges may be nil (whole object); unreliable
// asks the server for unreliable body delivery; extra headers are optional.
// Callbacks should be set on the returned Response immediately (before the
// simulator runs again).
func (c *Client) Get(path string, ranges RangeSpec, unreliable bool, extra map[string]string) *Response {
	headers := make(map[string]string, len(extra)+2)
	for k, v := range extra {
		headers[strings.ToLower(k)] = v
	}
	if len(ranges) > 0 {
		headers["range"] = formatRangeHeader(ranges)
	}
	if unreliable {
		headers[HeaderUnreliable] = "1"
	}
	st := c.conn.OpenStream(false)
	resp := &Response{Ranges: ranges, client: c, reqStr: st}
	st.OnData(func(off uint64, data []byte) { resp.onReliableData(off, data) })
	st.OnFin(func(sz uint64) { resp.onReliableFin(sz) })
	st.Write(encodeHead("GET "+path+" HTTP/1.1", headers))
	st.CloseWrite()
	return resp
}

// onReliableData handles bytes on the request's reliable stream: first the
// response head, then (for reliable responses) the body.
func (r *Response) onReliableData(off uint64, data []byte) {
	if !r.headDone {
		// Stream frames can arrive out of order; buffer with coverage
		// tracking until the head terminator sits in the contiguous prefix.
		need := off + uint64(len(data))
		if uint64(len(r.headBuf)) < need {
			nb := make([]byte, need)
			copy(nb, r.headBuf)
			r.headBuf = nb
		}
		copy(r.headBuf[off:], data)
		r.headCov.Add(off, need)
		contig := r.headCov.ContiguousFrom(0)
		end := headEnd(r.headBuf[:contig])
		if end < 0 {
			return
		}
		r.parseHead(r.headBuf[:end])
		r.bodyBase = uint64(end)
		// Deliver any body bytes that were buffered during the head phase,
		// respecting coverage (gaps stay gaps).
		for _, cr := range r.headCov.Ranges() {
			if cr.End <= r.bodyBase {
				continue
			}
			start := cr.Start
			if start < r.bodyBase {
				start = r.bodyBase
			}
			r.deliverBody(int64(start-r.bodyBase), r.headBuf[start:cr.End])
		}
		r.headBuf = nil
		return
	}
	if r.Unreliable {
		return // body travels on the unreliable stream
	}
	if off+uint64(len(data)) <= r.bodyBase {
		return
	}
	if off < r.bodyBase {
		data = data[r.bodyBase-off:]
		off = r.bodyBase
	}
	r.deliverBody(int64(off-r.bodyBase), data)
}

func (r *Response) parseHead(head []byte) {
	first, headers, err := parseHead(head)
	if err != nil {
		r.Status = 400
		r.headDone = true
		return
	}
	r.Headers = headers
	r.headDone = true
	parts := strings.SplitN(first, " ", 3)
	if len(parts) >= 2 {
		r.Status, _ = strconv.Atoi(parts[1])
	}
	if cl, ok := headers["content-length"]; ok {
		r.BodyLen, _ = strconv.ParseInt(cl, 10, 64)
	}
	if sid, ok := headers[HeaderStream]; ok {
		r.Unreliable = true
		id, _ := strconv.ParseUint(sid, 10, 64)
		r.client.adopt(id, r)
	}
	if r.OnHead != nil {
		r.OnHead()
	}
	if r.BodyLen == 0 && !r.Unreliable {
		r.maybeComplete(true)
	}
}

func (r *Response) deliverBody(bodyOff int64, data []byte) {
	if len(data) == 0 {
		return
	}
	start := uint64(bodyOff)
	end := start + uint64(len(data))
	gaps := r.received.Gaps(start, end)
	r.received.Add(start, end)
	if r.OnBody != nil {
		for _, g := range gaps {
			r.OnBody(int64(g.Start), data[g.Start-start:g.End-start])
		}
	}
	r.maybeComplete(r.finSeen)
}

func (r *Response) deliverLoss(bodyOff, length int64) {
	start, end := uint64(bodyOff), uint64(bodyOff+length)
	for _, g := range r.received.Gaps(start, end) {
		r.lost.Add(g.Start, g.End)
		if r.OnLost != nil {
			r.OnLost(int64(g.Start), int64(g.End-g.Start))
		}
	}
	r.maybeComplete(r.finSeen)
}

func (r *Response) onReliableFin(size uint64) {
	if !r.Unreliable && r.headDone {
		r.finSeen = true
		r.maybeComplete(true)
	}
}

func (r *Response) onUnreliableFin(final uint64) {
	r.finSeen = true
	if r.BodyLen == 0 {
		r.BodyLen = int64(final)
	}
	r.maybeComplete(true)
}

// maybeComplete fires OnComplete once the body is fully accounted for.
func (r *Response) maybeComplete(finKnown bool) {
	if r.complete || !r.headDone || !finKnown {
		return
	}
	if r.BodyLen > 0 {
		var union quic.RangeSet
		for _, rr := range r.received.Ranges() {
			union.Add(rr.Start, rr.End)
		}
		for _, rr := range r.lost.Ranges() {
			union.Add(rr.Start, rr.End)
		}
		if !union.Contains(0, uint64(r.BodyLen)) {
			return
		}
	}
	r.complete = true
	if r.OnComplete != nil {
		r.OnComplete()
	}
}

// adopt binds an announced unreliable stream ID to a response, flushing any
// data that arrived early.
func (c *Client) adopt(streamID uint64, r *Response) {
	c.pendingByStream[streamID] = r
	if early, ok := c.earlyStreams[streamID]; ok {
		delete(c.earlyStreams, streamID)
		c.bind(early.st, r)
		for _, ch := range early.chunks {
			r.deliverBody(int64(ch.off), ch.data)
		}
		for _, l := range early.losses {
			r.deliverLoss(int64(l[0]), int64(l[1]))
		}
		if early.fin {
			r.onUnreliableFin(early.final)
		}
	}
}

// onServerStream handles server-initiated streams (unreliable bodies).
func (c *Client) onServerStream(st *quic.Stream) {
	if r, ok := c.pendingByStream[st.ID()]; ok {
		c.bind(st, r)
		return
	}
	// Head not seen yet: buffer.
	early := &earlyStream{st: st}
	c.earlyStreams[st.ID()] = early
	st.OnData(func(off uint64, data []byte) {
		if r, ok := c.pendingByStream[st.ID()]; ok {
			r.deliverBody(int64(off), data)
			return
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		early.chunks = append(early.chunks, earlyChunk{off: off, data: cp})
	})
	st.OnLost(func(off, n uint64) {
		if r, ok := c.pendingByStream[st.ID()]; ok {
			r.deliverLoss(int64(off), int64(n))
			return
		}
		early.losses = append(early.losses, [2]uint64{off, n})
	})
	st.OnFin(func(final uint64) {
		if r, ok := c.pendingByStream[st.ID()]; ok {
			r.onUnreliableFin(final)
			return
		}
		early.fin = true
		early.final = final
	})
}

// bind attaches response delivery to an adopted unreliable stream.
func (c *Client) bind(st *quic.Stream, r *Response) {
	st.OnData(func(off uint64, data []byte) { r.deliverBody(int64(off), data) })
	st.OnLost(func(off, n uint64) { r.deliverLoss(int64(off), int64(n)) })
	st.OnFin(func(final uint64) { r.onUnreliableFin(final) })
}

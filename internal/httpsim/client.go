package httpsim

import (
	"errors"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"voxel/internal/obs"
	"voxel/internal/quic"
	"voxel/internal/sim"
)

// ErrRequestTimeout is the attempt-failure reason when a request made no
// progress (no head or body byte, no loss report) for the configured
// deadline.
var ErrRequestTimeout = errors.New("httpsim: request deadline exceeded")

// ErrNoTransport is the terminal failure reason when every connection the
// client knows about is closed.
var ErrNoTransport = errors.New("httpsim: all connections closed")

// RetryPolicy shapes re-attempts after a failed request attempt.
// Exponential backoff with decorrelating jitter: attempt n waits
// BaseDelay<<(n-1), capped at MaxDelay, with a ±Jitter/2 fraction of the
// wait randomized. The zero value disables retries.
type RetryPolicy struct {
	MaxAttempts int      // total attempts including the first; <=1 disables retry
	BaseDelay   sim.Time // backoff unit (0 retries immediately)
	MaxDelay    sim.Time // backoff ceiling (0 = uncapped)
	Jitter      float64  // fraction of the backoff randomized, in [0,1]
}

// backoff returns the wait before the attempt after failed attempt n (1-based).
func (p RetryPolicy) backoff(n int, rng *rand.Rand) sim.Time {
	if p.BaseDelay <= 0 {
		return 0
	}
	if n > 16 {
		n = 16 // the shift below must not overflow sim.Time
	}
	d := p.BaseDelay << uint(n-1)
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		if span := sim.Time(float64(d) * p.Jitter); span > 0 {
			d += sim.Time(rng.Int63n(int64(span))) - span/2
		}
	}
	return d
}

// Recovery bundles the client's failure-recovery knobs. The zero value —
// no deadline, no retries — reproduces the legacy fire-and-forget client
// exactly.
type Recovery struct {
	// RequestTimeout is a progress deadline, not an absolute one: it is
	// re-armed whenever the attempt makes any progress (head bytes, body
	// bytes, or a transport loss report), so a slow-but-flowing transfer
	// on a starved link is never killed — only a genuinely stuck one.
	// It also defers to connection-level liveness: a request that is
	// merely queued behind another transfer on a connection that is still
	// receiving packets is not failed (see Response.onDeadline), so the
	// deadline converts dead links into bounded failures without turning
	// head-of-line blocking into retry storms.
	RequestTimeout sim.Time
	Retry          RetryPolicy
}

// Response is a client-side in-flight response. Body delivery is
// event-driven; offsets are positions in the concatenated range payload
// (use Ranges.ObjectOffset to map back).
type Response struct {
	Ranges     RangeSpec
	Status     int
	Headers    map[string]string
	BodyLen    int64
	Unreliable bool

	// OnBody fires per arriving chunk (possibly out of order on unreliable
	// responses).
	OnBody func(bodyOff int64, data []byte)
	// OnLost fires when the transport gives up on a body range.
	OnLost func(bodyOff, length int64)
	// OnHead fires once the response head is parsed.
	OnHead func()
	// OnComplete fires when every body byte is received or reported lost.
	OnComplete func()
	// OnFail fires once when the request is abandoned for good: every
	// attempt timed out or the last transport died. Body coverage gathered
	// so far stays readable — the caller decides what a partial download
	// is worth (§4.3).
	OnFail func(error)

	received quic.RangeSet
	lost     quic.RangeSet
	headDone bool
	complete bool
	finSeen  bool
	failed   bool
	reqStr   *quic.Stream
	client   *Client
	headBuf  []byte
	headCov  quic.RangeSet // stream-offset coverage during the head phase
	bodyBase uint64        // stream offset where the body starts (reliable path)

	// retry state. gen invalidates callbacks wired by earlier attempts:
	// a stale stream delivering late cannot corrupt the per-attempt head
	// parse. Body coverage (received/lost) survives across attempts — the
	// request re-asks for the same ranges, so offsets line up and
	// duplicate bytes are suppressed by the coverage gap check.
	path       string
	reqHeaders map[string]string
	attempt    int
	gen        int
	deadline   *sim.Timer
	retryTimer *sim.Timer
}

// Received exposes the received body coverage.
func (r *Response) Received() *quic.RangeSet { return &r.received }

// Lost exposes the permanently lost body ranges.
func (r *Response) Lost() *quic.RangeSet { return &r.lost }

// Complete reports whether the response fully resolved.
func (r *Response) Complete() bool { return r.complete }

// BytesReceived returns the number of body bytes that arrived.
func (r *Response) BytesReceived() int64 { return int64(r.received.CoveredBytes()) }

// Cancel detaches the response: subsequent data is ignored (though body
// coverage keeps accumulating, as before) and no further retry fires. The
// transport keeps draining whatever the server already queued; the player
// accounts for abandoned downloads itself.
func (r *Response) Cancel() {
	r.OnBody = nil
	r.OnLost = nil
	r.OnComplete = nil
	r.OnFail = nil
	r.failed = true
	if r.deadline != nil {
		r.deadline.Stop()
	}
	if r.retryTimer != nil {
		r.retryTimer.Stop()
	}
	r.client.detach(r)
}

// Client issues GET requests over a QUIC* connection, optionally retrying
// failed attempts and failing over to spare connections.
type Client struct {
	conn  *quic.Conn   // active transport
	conns []*quic.Conn // all transports in failover preference order
	sim   *sim.Sim
	rec   Recovery
	obs   *obs.Scope // nil = telemetry disabled (all calls no-op)

	// pendingByStream maps announced unreliable stream IDs to the adopting
	// response attempt on the active connection.
	pendingByStream map[uint64]pendingRef
	// earlyStreams buffers unreliable streams that arrived before their
	// announcing response head.
	earlyStreams map[uint64]*earlyStream

	// inflight tracks unresolved responses in issue order, so the sweep on
	// a connection close fails them in a deterministic order.
	inflight []*Response
}

type pendingRef struct {
	r   *Response
	gen int
}

type earlyStream struct {
	st     *quic.Stream
	chunks []earlyChunk
	losses [][2]uint64
	fin    bool
	final  uint64
}

type earlyChunk struct {
	off  uint64
	data []byte
}

// NewClient wires a Client to the connection. It takes over the
// connection's OnStream callback for server-initiated (unreliable body)
// streams and the OnClose callback for failure sweeps.
func NewClient(conn *quic.Conn) *Client {
	c := &Client{
		conn:            conn,
		conns:           []*quic.Conn{conn},
		sim:             conn.Sim(),
		pendingByStream: make(map[uint64]pendingRef),
		earlyStreams:    make(map[uint64]*earlyStream),
	}
	conn.OnStream(c.onServerStream)
	conn.OnClose(c.onConnClose)
	return c
}

// SetRecovery installs the deadline/retry policy for subsequent requests.
func (c *Client) SetRecovery(rec Recovery) { c.rec = rec }

// SetObs installs the telemetry scope recording request/retry/failover
// activity. A nil scope (the default) disables recording at zero cost.
func (c *Client) SetObs(sc *obs.Scope) { c.obs = sc }

// attemptReasonCode maps an attempt-failure reason to its telemetry code.
func attemptReasonCode(reason error) int64 {
	switch {
	case errors.Is(reason, ErrRequestTimeout):
		return obs.ReasonTimeout
	case errors.Is(reason, quic.ErrIdleTimeout):
		return obs.ReasonIdleTimeout
	case errors.Is(reason, quic.ErrClosed):
		return obs.ReasonClosed
	default:
		return obs.ReasonOther
	}
}

// AddFailover registers a spare connection (to a second origin). When the
// active connection closes, the client rebinds to the next open spare and
// re-issues in-flight requests there, subject to the retry policy.
func (c *Client) AddFailover(conn *quic.Conn) {
	c.conns = append(c.conns, conn)
}

// Conn returns the currently active transport.
func (c *Client) Conn() *quic.Conn { return c.conn }

// Get issues a GET for path. ranges may be nil (whole object); unreliable
// asks the server for unreliable body delivery; extra headers are optional.
// Callbacks should be set on the returned Response immediately (before the
// simulator runs again).
func (c *Client) Get(path string, ranges RangeSpec, unreliable bool, extra map[string]string) *Response {
	// Copy the caller's headers in sorted key order: lowercasing can make
	// distinct keys collide, and "last writer wins" must not depend on map
	// iteration order (voxel-vet: determinism).
	headers := make(map[string]string, len(extra)+2)
	extraKeys := make([]string, 0, len(extra))
	for k := range extra {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)
	for _, k := range extraKeys {
		headers[strings.ToLower(k)] = extra[k]
	}
	if len(ranges) > 0 {
		headers["range"] = formatRangeHeader(ranges)
	}
	if unreliable {
		headers[HeaderUnreliable] = "1"
	}
	resp := &Response{Ranges: ranges, client: c, path: path, reqHeaders: headers}
	c.obs.Inc(obs.CRequests)
	c.inflight = append(c.inflight, resp)
	c.issue(resp)
	return resp
}

// issue wires one request attempt onto the active connection. Every
// callback it installs is tagged with the attempt's generation; a later
// retry bumps the generation and the stale attempt's deliveries fall away.
func (c *Client) issue(r *Response) {
	if c.conn == nil || c.conn.Closed() {
		// Deferred one event: when Get itself hits a dead transport, the
		// caller has not wired OnFail yet.
		c.sim.Schedule(0, func() { r.fail(ErrNoTransport) })
		return
	}
	r.attempt++
	r.gen++
	gen := r.gen
	r.headDone = false
	r.headBuf = nil
	r.headCov = quic.RangeSet{}
	r.bodyBase = 0
	r.finSeen = false
	st := c.conn.OpenStream(false)
	r.reqStr = st
	st.OnData(func(off uint64, data []byte) {
		if r.gen != gen {
			return
		}
		r.touch()
		r.onReliableData(off, data)
	})
	st.OnFin(func(sz uint64) {
		if r.gen != gen {
			return
		}
		r.onReliableFin(sz)
	})
	st.Write(encodeHead("GET "+r.path+" HTTP/1.1", r.reqHeaders))
	st.CloseWrite()
	if c.rec.RequestTimeout > 0 && !r.complete && !r.failed {
		if r.deadline == nil {
			r.deadline = sim.NewTimer(c.sim, r.onDeadline)
		}
		r.deadline.Arm(c.rec.RequestTimeout)
	}
}

// touch records attempt progress by pushing the deadline back.
func (r *Response) touch() {
	if r.deadline != nil && r.deadline.Armed() {
		r.deadline.Arm(r.client.rec.RequestTimeout)
	}
}

// onDeadline fires when the progress deadline elapses without this attempt
// receiving a byte. A request can be starved without being dead: the
// connection may be busy draining an earlier transfer (an abandoned segment
// body ahead of us in the server's FIFO stream schedule). Retrying then is
// strictly harmful — the retry queues a second full copy of the response
// behind the copy already in flight, and the storm feeds itself. So the
// attempt is only failed when the whole connection has gone quiet for a
// full timeout (a dead or blacked-out link); while packets are still
// arriving for anyone, the deadline re-arms for the remaining quiet budget.
func (r *Response) onDeadline() {
	c := r.client
	if c.conn != nil && !c.conn.Closed() {
		if quiet := c.sim.Now() - c.conn.LastActivity(); quiet < c.rec.RequestTimeout {
			r.deadline.Arm(c.rec.RequestTimeout - quiet)
			return
		}
	}
	r.failAttempt(ErrRequestTimeout)
}

// failAttempt gives up on the current attempt and schedules the next one
// per the retry policy, or fails the request for good when attempts are
// exhausted.
func (r *Response) failAttempt(reason error) {
	if r.complete || r.failed {
		return
	}
	r.gen++ // orphan the stale attempt's callbacks
	if r.deadline != nil {
		r.deadline.Stop()
	}
	c := r.client
	if r.attempt >= c.rec.Retry.MaxAttempts {
		r.fail(reason)
		return
	}
	wait := c.rec.Retry.backoff(r.attempt, c.sim.Rand())
	c.obs.Inc(obs.CRetries)
	c.obs.Event(obs.EvRetry, int64(r.attempt), attemptReasonCode(reason), 0)
	if r.retryTimer == nil {
		r.retryTimer = sim.NewTimer(c.sim, func() { c.issue(r) })
	}
	r.retryTimer.Arm(wait)
}

// fail resolves the response as permanently failed.
func (r *Response) fail(reason error) {
	if r.complete || r.failed {
		return
	}
	r.failed = true
	r.gen++
	if r.deadline != nil {
		r.deadline.Stop()
	}
	if r.retryTimer != nil {
		r.retryTimer.Stop()
	}
	r.client.detach(r)
	r.client.obs.Inc(obs.CFailedRequests)
	r.client.obs.Event(obs.EvRequestFailed, int64(r.attempt), attemptReasonCode(reason), 0)
	if r.OnFail != nil {
		r.OnFail(reason)
	}
}

// Failed reports whether the request was abandoned after exhausting
// recovery.
func (r *Response) Failed() bool { return r.failed }

// detach removes r from the in-flight sweep list.
func (c *Client) detach(r *Response) {
	for i, x := range c.inflight {
		if x == r {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			return
		}
	}
}

// onConnClose fails over to the next open spare connection and re-drives
// every in-flight request through the retry policy.
func (c *Client) onConnClose(err error) {
	next := (*quic.Conn)(nil)
	for _, cn := range c.conns {
		if !cn.Closed() {
			next = cn
			break
		}
	}
	c.conn = next
	if next != nil {
		c.obs.Inc(obs.CFailovers)
		c.obs.Event(obs.EvFailover, 0, 0, 0)
		// Stream IDs restart on the new connection: per-conn adoption state
		// from the dead one no longer means anything.
		c.pendingByStream = make(map[uint64]pendingRef)
		c.earlyStreams = make(map[uint64]*earlyStream)
		next.OnStream(c.onServerStream)
		next.OnClose(c.onConnClose)
	}
	swept := append([]*Response(nil), c.inflight...)
	for _, r := range swept {
		if next == nil {
			r.fail(ErrNoTransport)
		} else {
			r.failAttempt(err)
		}
	}
}

// onReliableData handles bytes on the request's reliable stream: first the
// response head, then (for reliable responses) the body.
func (r *Response) onReliableData(off uint64, data []byte) {
	if !r.headDone {
		// Stream frames can arrive out of order; buffer with coverage
		// tracking until the head terminator sits in the contiguous prefix.
		need := off + uint64(len(data))
		if uint64(len(r.headBuf)) < need {
			nb := make([]byte, need)
			copy(nb, r.headBuf)
			r.headBuf = nb
		}
		copy(r.headBuf[off:], data)
		r.headCov.Add(off, need)
		contig := r.headCov.ContiguousFrom(0)
		end := headEnd(r.headBuf[:contig])
		if end < 0 {
			return
		}
		r.parseHead(r.headBuf[:end])
		r.bodyBase = uint64(end)
		// Deliver any body bytes that were buffered during the head phase,
		// respecting coverage (gaps stay gaps).
		for _, cr := range r.headCov.Ranges() {
			if cr.End <= r.bodyBase {
				continue
			}
			start := cr.Start
			if start < r.bodyBase {
				start = r.bodyBase
			}
			r.deliverBody(int64(start-r.bodyBase), r.headBuf[start:cr.End])
		}
		r.headBuf = nil
		return
	}
	if r.Unreliable {
		return // body travels on the unreliable stream
	}
	if off+uint64(len(data)) <= r.bodyBase {
		return
	}
	if off < r.bodyBase {
		data = data[r.bodyBase-off:]
		off = r.bodyBase
	}
	r.deliverBody(int64(off-r.bodyBase), data)
}

func (r *Response) parseHead(head []byte) {
	first, headers, err := parseHead(head)
	if err != nil {
		r.Status = 400
		r.headDone = true
		return
	}
	r.Headers = headers
	r.headDone = true
	parts := strings.SplitN(first, " ", 3)
	if len(parts) >= 2 {
		r.Status, _ = strconv.Atoi(parts[1])
	}
	if cl, ok := headers["content-length"]; ok {
		r.BodyLen, _ = strconv.ParseInt(cl, 10, 64)
	}
	if sid, ok := headers[HeaderStream]; ok {
		r.Unreliable = true
		id, _ := strconv.ParseUint(sid, 10, 64)
		r.client.adopt(id, r)
	}
	if r.OnHead != nil {
		r.OnHead()
	}
	if r.BodyLen == 0 && !r.Unreliable {
		r.maybeComplete(true)
	}
}

func (r *Response) deliverBody(bodyOff int64, data []byte) {
	if len(data) == 0 {
		return
	}
	start := uint64(bodyOff)
	end := start + uint64(len(data))
	gaps := r.received.Gaps(start, end)
	r.received.Add(start, end)
	if r.OnBody != nil {
		for _, g := range gaps {
			r.OnBody(int64(g.Start), data[g.Start-start:g.End-start])
		}
	}
	r.maybeComplete(r.finSeen)
}

func (r *Response) deliverLoss(bodyOff, length int64) {
	start, end := uint64(bodyOff), uint64(bodyOff+length)
	for _, g := range r.received.Gaps(start, end) {
		r.lost.Add(g.Start, g.End)
		if r.OnLost != nil {
			r.OnLost(int64(g.Start), int64(g.End-g.Start))
		}
	}
	r.maybeComplete(r.finSeen)
}

func (r *Response) onReliableFin(size uint64) {
	if !r.Unreliable && r.headDone {
		r.finSeen = true
		r.maybeComplete(true)
	}
}

func (r *Response) onUnreliableFin(final uint64) {
	r.finSeen = true
	if r.BodyLen == 0 {
		r.BodyLen = int64(final)
	}
	r.maybeComplete(true)
}

// maybeComplete fires OnComplete once the body is fully accounted for.
func (r *Response) maybeComplete(finKnown bool) {
	if r.complete || !r.headDone || !finKnown {
		return
	}
	if r.BodyLen > 0 {
		var union quic.RangeSet
		for _, rr := range r.received.Ranges() {
			union.Add(rr.Start, rr.End)
		}
		for _, rr := range r.lost.Ranges() {
			union.Add(rr.Start, rr.End)
		}
		if !union.Contains(0, uint64(r.BodyLen)) {
			return
		}
	}
	r.complete = true
	if r.deadline != nil {
		r.deadline.Stop()
	}
	if r.retryTimer != nil {
		r.retryTimer.Stop()
	}
	r.client.detach(r)
	if r.OnComplete != nil {
		r.OnComplete()
	}
}

// adopt binds an announced unreliable stream ID to the current attempt of
// a response, flushing any data that arrived early. The binding carries
// the attempt's generation: if the response is later retried, deliveries
// from this stream are dropped instead of polluting the fresh attempt.
func (c *Client) adopt(streamID uint64, r *Response) {
	ref := pendingRef{r: r, gen: r.gen}
	c.pendingByStream[streamID] = ref
	if early, ok := c.earlyStreams[streamID]; ok {
		delete(c.earlyStreams, streamID)
		c.bind(early.st, ref)
		for _, ch := range early.chunks {
			r.deliverBody(int64(ch.off), ch.data)
		}
		for _, l := range early.losses {
			r.deliverLoss(int64(l[0]), int64(l[1]))
		}
		if early.fin {
			r.onUnreliableFin(early.final)
		}
	}
}

// onServerStream handles server-initiated streams (unreliable bodies).
func (c *Client) onServerStream(st *quic.Stream) {
	if ref, ok := c.pendingByStream[st.ID()]; ok {
		c.bind(st, ref)
		return
	}
	// Head not seen yet: buffer.
	early := &earlyStream{st: st}
	c.earlyStreams[st.ID()] = early
	st.OnData(func(off uint64, data []byte) {
		if ref, ok := c.pendingByStream[st.ID()]; ok {
			if ref.r.gen == ref.gen {
				ref.r.touch()
				ref.r.deliverBody(int64(off), data)
			}
			return
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		early.chunks = append(early.chunks, earlyChunk{off: off, data: cp})
	})
	st.OnLost(func(off, n uint64) {
		if ref, ok := c.pendingByStream[st.ID()]; ok {
			if ref.r.gen == ref.gen {
				ref.r.touch()
				ref.r.deliverLoss(int64(off), int64(n))
			}
			return
		}
		early.losses = append(early.losses, [2]uint64{off, n})
	})
	st.OnFin(func(final uint64) {
		if ref, ok := c.pendingByStream[st.ID()]; ok {
			if ref.r.gen == ref.gen {
				ref.r.onUnreliableFin(final)
			}
			return
		}
		early.fin = true
		early.final = final
	})
}

// bind attaches response delivery to an adopted unreliable stream, gated on
// the adopting attempt's generation.
func (c *Client) bind(st *quic.Stream, ref pendingRef) {
	r := ref.r
	gen := ref.gen
	st.OnData(func(off uint64, data []byte) {
		if r.gen == gen {
			r.touch()
			r.deliverBody(int64(off), data)
		}
	})
	st.OnLost(func(off, n uint64) {
		if r.gen == gen {
			r.touch()
			r.deliverLoss(int64(off), int64(n))
		}
	})
	st.OnFin(func(final uint64) {
		if r.gen == gen {
			r.onUnreliableFin(final)
		}
	})
}

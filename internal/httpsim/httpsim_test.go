package httpsim

import (
	"bytes"
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/quic"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

type fixture struct {
	s      *sim.Sim
	path   *netem.Path
	client *Client
	server *Server
}

func newFixture(t *testing.T, mbps float64, queuePkts int, objects map[string]Object, opts ServerOptions) *fixture {
	t.Helper()
	s := sim.New(77)
	tr := trace.Constant("t", mbps*1e6, 3600)
	path := netem.NewPath(s, tr, queuePkts)
	cc, sc := quic.NewPair(s, path, quic.Config{}, quic.Config{})
	handler := HandlerFunc(func(path string) (Object, error) {
		if o, ok := objects[path]; ok {
			return o, nil
		}
		return nil, errNotFound{}
	})
	return &fixture{
		s:      s,
		path:   path,
		client: NewClient(cc),
		server: NewServer(sc, handler, opts),
	}
}

type errNotFound struct{}

func (errNotFound) Error() string { return "not found" }

func content(n int) BytesObject {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return BytesObject(b)
}

func TestSimpleGet(t *testing.T) {
	obj := content(100 << 10)
	fx := newFixture(t, 10, 32, map[string]Object{"/a": obj}, ServerOptions{})
	resp := fx.client.Get("/a", nil, false, nil)
	got := make([]byte, len(obj))
	var done bool
	resp.OnBody = func(off int64, data []byte) { copy(got[off:], data) }
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(30 * time.Second)
	if !done {
		t.Fatal("request did not complete")
	}
	if resp.Status != 200 {
		t.Fatalf("status %d", resp.Status)
	}
	if resp.BodyLen != int64(len(obj)) {
		t.Fatalf("content-length %d, want %d", resp.BodyLen, len(obj))
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("body corrupted")
	}
}

func TestNotFound(t *testing.T) {
	fx := newFixture(t, 10, 32, nil, ServerOptions{})
	resp := fx.client.Get("/missing", nil, false, nil)
	done := false
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(5 * time.Second)
	if !done || resp.Status != 404 {
		t.Fatalf("done=%v status=%d, want 404", done, resp.Status)
	}
}

func TestRangeRequest(t *testing.T) {
	obj := content(10000)
	fx := newFixture(t, 10, 32, map[string]Object{"/a": obj}, ServerOptions{})
	ranges := RangeSpec{{100, 200}, {5000, 5050}, {0, 10}}
	resp := fx.client.Get("/a", ranges, false, nil)
	got := make([]byte, ranges.TotalBytes())
	done := false
	resp.OnBody = func(off int64, data []byte) { copy(got[off:], data) }
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(5 * time.Second)
	if !done || resp.Status != 206 {
		t.Fatalf("done=%v status=%d, want 206", done, resp.Status)
	}
	want := append(append(append([]byte{}, obj[100:200]...), obj[5000:5050]...), obj[0:10]...)
	if !bytes.Equal(got, want) {
		t.Fatal("range body wrong")
	}
}

func TestRangeOutOfBounds(t *testing.T) {
	fx := newFixture(t, 10, 32, map[string]Object{"/a": content(100)}, ServerOptions{})
	resp := fx.client.Get("/a", RangeSpec{{50, 200}}, false, nil)
	done := false
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(5 * time.Second)
	if !done || resp.Status != 416 {
		t.Fatalf("status %d, want 416", resp.Status)
	}
}

func TestUnreliableDelivery(t *testing.T) {
	obj := content(512 << 10)
	fx := newFixture(t, 10, 32, map[string]Object{"/a": obj}, ServerOptions{})
	resp := fx.client.Get("/a", nil, true, nil)
	got := make([]byte, len(obj))
	done := false
	resp.OnBody = func(off int64, data []byte) { copy(got[off:], data) }
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(30 * time.Second)
	if !done {
		t.Fatal("unreliable request did not complete")
	}
	if !resp.Unreliable {
		t.Fatal("response should be marked unreliable")
	}
	if _, ok := resp.Headers[HeaderStream]; !ok {
		t.Fatal("x-voxel-stream header missing")
	}
	if fx.server.UnreliableBodies != 1 {
		t.Fatal("server should count one unreliable body")
	}
	// Slow-start overshoot on a 32-packet queue loses some packets (that
	// is the point of the partially reliable design) — but most of the
	// body must arrive, and what arrived must be byte-correct.
	lost := int64(resp.Lost().CoveredBytes())
	if lost > int64(len(obj))/3 {
		t.Fatalf("lost %d of %d bytes — too much for this path", lost, len(obj))
	}
	for _, r := range resp.Received().Ranges() {
		if !bytes.Equal(got[r.Start:r.End], obj[r.Start:r.End]) {
			t.Fatalf("received range %v corrupted", r)
		}
	}
}

func TestUnreliableWithLossCompletesWithHoles(t *testing.T) {
	obj := content(1 << 20)
	fx := newFixture(t, 4, 8, map[string]Object{"/a": obj}, ServerOptions{})
	resp := fx.client.Get("/a", nil, true, nil)
	done := false
	var lostBytes int64
	resp.OnLost = func(off, n int64) { lostBytes += n }
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(120 * time.Second)
	if !done {
		t.Fatal("lossy unreliable request did not complete")
	}
	if lostBytes == 0 {
		t.Fatal("expected reported losses on a tight queue")
	}
	if resp.BytesReceived()+int64(resp.Lost().CoveredBytes()) < int64(len(obj)) {
		t.Fatal("received + lost must cover the object")
	}
}

func TestVoxelUnawareServerIgnoresHeader(t *testing.T) {
	obj := content(64 << 10)
	fx := newFixture(t, 10, 32, map[string]Object{"/a": obj}, ServerOptions{VoxelUnaware: true})
	resp := fx.client.Get("/a", nil, true, nil)
	done := false
	got := make([]byte, len(obj))
	resp.OnBody = func(off int64, data []byte) { copy(got[off:], data) }
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(10 * time.Second)
	if !done {
		t.Fatal("request did not complete")
	}
	if resp.Unreliable {
		t.Fatal("VOXEL-unaware server must answer reliably")
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("body corrupted")
	}
}

func TestSequentialRequests(t *testing.T) {
	objs := map[string]Object{"/1": content(50 << 10), "/2": content(80 << 10)}
	fx := newFixture(t, 10, 32, objs, ServerOptions{})
	doneCount := 0
	issue := func(path string, n int) {
		resp := fx.client.Get(path, nil, false, nil)
		resp.OnComplete = func() {
			if resp.BytesReceived() != int64(n) {
				t.Errorf("%s: received %d, want %d", path, resp.BytesReceived(), n)
			}
			doneCount++
		}
	}
	issue("/1", 50<<10)
	issue("/2", 80<<10)
	fx.s.RunUntil(30 * time.Second)
	if doneCount != 2 {
		t.Fatalf("%d requests completed, want 2", doneCount)
	}
	if fx.server.RequestsServed != 2 {
		t.Fatalf("server served %d", fx.server.RequestsServed)
	}
}

func TestZeroObject(t *testing.T) {
	fx := newFixture(t, 10, 32, map[string]Object{"/z": ZeroObject(256 << 10)}, ServerOptions{})
	resp := fx.client.Get("/z", nil, false, nil)
	done := false
	resp.OnComplete = func() { done = true }
	fx.s.RunUntil(30 * time.Second)
	if !done || resp.BytesReceived() != 256<<10 {
		t.Fatalf("zero object: done=%v received=%d", done, resp.BytesReceived())
	}
}

func TestRangeSpecHelpers(t *testing.T) {
	r := RangeSpec{{100, 200}, {500, 600}}
	if r.TotalBytes() != 200 {
		t.Fatalf("total %d", r.TotalBytes())
	}
	cases := []struct{ body, obj int64 }{{0, 100}, {99, 199}, {100, 500}, {199, 599}, {200, -1}}
	for _, c := range cases {
		if got := r.ObjectOffset(c.body); got != c.obj {
			t.Errorf("ObjectOffset(%d) = %d, want %d", c.body, got, c.obj)
		}
	}
}

func TestRangeHeaderRoundTrip(t *testing.T) {
	r := RangeSpec{{0, 907}, {2000, 2001}}
	parsed, err := parseRangeHeader(formatRangeHeader(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0] != r[0] || parsed[1] != r[1] {
		t.Fatalf("roundtrip: %v", parsed)
	}
	if _, err := parseRangeHeader("bytes=9-3"); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := parseRangeHeader("bytes=x-3"); err == nil {
		t.Fatal("garbage should fail")
	}
}

package httpsim

import (
	"testing"
	"time"

	"voxel/internal/netem"
	"voxel/internal/quic"
	"voxel/internal/sim"
	"voxel/internal/trace"
)

func testRecovery() Recovery {
	return Recovery{
		RequestTimeout: 2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
			Jitter:      0.25,
		},
	}
}

// A request over a fully blackholed link must terminate through the
// deadline/retry machinery in bounded simulated time — the regression this
// guards is the legacy client hanging forever on a dead path.
func TestBlackholedRequestTerminates(t *testing.T) {
	fx := newFixture(t, 10, 32, map[string]Object{"/a": content(1 << 16)}, ServerOptions{})
	// Blackhole both directions before the request ever leaves.
	dead := netem.Window{Start: 0, End: 1 << 62}
	fx.path.Down.Impair(netem.Blackout{Windows: []netem.Window{dead}}, 1)
	fx.path.Up.Impair(netem.Blackout{Windows: []netem.Window{dead}}, 2)
	fx.client.SetRecovery(testRecovery())

	var failErr error
	var failAt sim.Time
	resp := fx.client.Get("/a", nil, false, nil)
	resp.OnFail = func(err error) { failErr, failAt = err, fx.s.Now() }
	resp.OnComplete = func() { t.Error("request on a dead link cannot complete") }

	// 3 attempts × 2 s deadline + backoffs ≪ 60 s.
	fx.s.RunUntil(60 * time.Second)
	if failErr == nil {
		t.Fatalf("request did not terminate: failed=%v complete=%v", resp.Failed(), resp.Complete())
	}
	if failErr != ErrRequestTimeout {
		t.Fatalf("failed with %v, want %v", failErr, ErrRequestTimeout)
	}
	if failAt > 30*time.Second {
		t.Fatalf("termination took %v of virtual time", failAt)
	}
}

// A transient blackout shorter than the retry budget must be survived: the
// first attempt dies, a retry lands after the link heals, and the request
// completes.
func TestRetryAfterTransientBlackout(t *testing.T) {
	obj := content(1 << 16)
	fx := newFixture(t, 10, 32, map[string]Object{"/a": obj}, ServerOptions{})
	dark := netem.Window{Start: 0, End: 3 * time.Second}
	fx.path.Down.Impair(netem.Blackout{Windows: []netem.Window{dark}}, 1)
	fx.path.Up.Impair(netem.Blackout{Windows: []netem.Window{dark}}, 2)
	fx.client.SetRecovery(testRecovery())

	var done bool
	resp := fx.client.Get("/a", nil, false, nil)
	resp.OnComplete = func() { done = true }
	resp.OnFail = func(err error) { t.Errorf("request failed: %v", err) }
	fx.s.RunUntil(60 * time.Second)
	if !done {
		t.Fatal("request did not recover after the blackout lifted")
	}
	if resp.BytesReceived() != int64(len(obj)) {
		t.Fatalf("got %d bytes, want %d", resp.BytesReceived(), len(obj))
	}
}

// The deadline must not fire for a request that is merely queued behind
// another transfer on a live connection: retrying there queues a second
// full copy behind the first and the storm feeds itself (the bursty-profile
// regression). The connection is visibly receiving the whole time, so the
// stuck request waits instead of retrying.
func TestDeadlineDefersToBusyConn(t *testing.T) {
	big := content(4 << 20) // ~16 s of transfer at 2 Mbps
	small := content(1 << 10)
	fx := newFixture(t, 2, 64, map[string]Object{"/big": big, "/small": small}, ServerOptions{})
	fx.client.SetRecovery(Recovery{
		RequestTimeout: time.Second, // far below the big transfer's duration
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond},
	})

	r1 := fx.client.Get("/big", nil, false, nil)
	r2 := fx.client.Get("/small", nil, false, nil)
	var doneBig, doneSmall bool
	r1.OnComplete = func() { doneBig = true }
	r2.OnComplete = func() { doneSmall = true }
	r2.OnFail = func(err error) { t.Errorf("queued request failed: %v", err) }
	fx.s.RunUntil(120 * time.Second)
	if !doneBig || !doneSmall {
		t.Fatalf("big=%v small=%v", doneBig, doneSmall)
	}
	if got := fx.server.conn.Stats().StreamBytesSent; got > uint64(len(big)+len(small))*11/10 {
		t.Fatalf("server sent %d bytes for %d of payload: retry storm", got, len(big)+len(small))
	}
}

// When the active connection dies, in-flight requests must fail over to the
// next configured origin and complete there.
func TestFailoverToSecondOrigin(t *testing.T) {
	obj := content(1 << 16)
	objects := map[string]Object{"/a": obj}
	handler := HandlerFunc(func(path string) (Object, error) {
		if o, ok := objects[path]; ok {
			return o, nil
		}
		return nil, errNotFound{}
	})
	s := sim.New(77)
	mk := func() (*quic.Conn, *Server) {
		path := netem.NewPath(s, trace.Constant("t", 10e6, 3600), 32)
		cc, sc := quic.NewPair(s, path, quic.Config{}, quic.Config{})
		return cc, NewServer(sc, handler, ServerOptions{})
	}
	c1, _ := mk()
	c2, _ := mk()
	client := NewClient(c1)
	client.SetRecovery(testRecovery())
	client.AddFailover(c2)

	var done bool
	resp := client.Get("/a", nil, false, nil)
	resp.OnComplete = func() { done = true }
	resp.OnFail = func(err error) { t.Errorf("request failed: %v", err) }
	// Kill the primary immediately: the response must come from origin 2.
	s.Schedule(10*time.Millisecond, func() { c1.Close(quic.ErrIdleTimeout) })
	s.RunUntil(60 * time.Second)
	if !done {
		t.Fatal("request did not fail over")
	}
	if resp.BytesReceived() != int64(len(obj)) {
		t.Fatalf("got %d bytes, want %d", resp.BytesReceived(), len(obj))
	}
	if client.Conn() != c2 {
		t.Fatal("client still pinned to the dead origin")
	}
}

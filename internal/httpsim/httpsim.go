// Package httpsim implements the thin HTTP layer the paper uses to
// interface application and transport (§4.2): GET requests with HTTP range
// headers, and the custom x-voxel-unreliable request header that asks a
// VOXEL-aware server to deliver the response body over a QUIC* unreliable
// stream (announced back via an x-voxel-stream response header). A
// VOXEL-unaware server ignores the header and answers over the reliable
// stream; a VOXEL-unaware client never sends it — the backward-compatible
// matrix §4.2 describes.
//
// Messages use a textual HTTP/1.1-style wire format over QUIC streams; one
// request per stream.
package httpsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// HeaderUnreliable requests unreliable body delivery.
const HeaderUnreliable = "x-voxel-unreliable"

// HeaderStream announces the unreliable stream carrying the body.
const HeaderStream = "x-voxel-stream"

// Object is server-side content addressable by byte ranges.
type Object interface {
	Size() int64
	// ReadAt returns length bytes at offset. The returned slice is only
	// valid until the next call.
	ReadAt(offset int64, length int) []byte
}

// Handler resolves request paths to objects.
type Handler interface {
	Resolve(path string) (Object, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(path string) (Object, error)

// Resolve implements Handler.
func (f HandlerFunc) Resolve(path string) (Object, error) { return f(path) }

// BytesObject serves a fixed byte slice.
type BytesObject []byte

// Size implements Object.
func (b BytesObject) Size() int64 { return int64(len(b)) }

// ReadAt implements Object.
func (b BytesObject) ReadAt(offset int64, length int) []byte {
	return b[offset : offset+int64(length)]
}

// ZeroObject serves n opaque bytes without materializing them — segment
// payloads whose content is irrelevant to the experiments.
type ZeroObject int64

// Size implements Object.
func (z ZeroObject) Size() int64 { return int64(z) }

// zeroBuf holds the shared all-zero backing slice; it is read and grown via
// atomic loads/stores because concurrent trials serve payloads from it.
var zeroBuf atomic.Value

func init() { zeroBuf.Store(make([]byte, 64<<10)) }

// ReadAt implements Object.
func (z ZeroObject) ReadAt(offset int64, length int) []byte {
	buf := zeroBuf.Load().([]byte)
	if length <= len(buf) {
		return buf[:length]
	}
	n := len(buf)
	for length > n {
		n *= 2
	}
	buf = make([]byte, n)
	zeroBuf.Store(buf)
	return buf[:length]
}

// RangeSpec lists requested [start, end) object ranges, in request order.
// Empty means the whole object.
type RangeSpec [][2]int64

// TotalBytes returns the summed length of the ranges.
func (r RangeSpec) TotalBytes() int64 {
	var n int64
	for _, rr := range r {
		n += rr[1] - rr[0]
	}
	return n
}

// ObjectOffset maps an offset in the concatenated response body back to the
// object offset it came from.
func (r RangeSpec) ObjectOffset(bodyOff int64) int64 {
	for _, rr := range r {
		l := rr[1] - rr[0]
		if bodyOff < l {
			return rr[0] + bodyOff
		}
		bodyOff -= l
	}
	return -1
}

// header formatting

func formatRangeHeader(r RangeSpec) string {
	parts := make([]string, len(r))
	for i, rr := range r {
		parts[i] = fmt.Sprintf("%d-%d", rr[0], rr[1]-1)
	}
	return "bytes=" + strings.Join(parts, ",")
}

func parseRangeHeader(v string) (RangeSpec, error) {
	v = strings.TrimPrefix(v, "bytes=")
	var out RangeSpec
	for _, part := range strings.Split(v, ",") {
		d := strings.IndexByte(part, '-')
		if d < 0 {
			return nil, fmt.Errorf("httpsim: malformed range %q", part)
		}
		start, err := strconv.ParseInt(part[:d], 10, 64)
		if err != nil {
			return nil, err
		}
		last, err := strconv.ParseInt(part[d+1:], 10, 64)
		if err != nil {
			return nil, err
		}
		if last < start {
			return nil, fmt.Errorf("httpsim: inverted range %q", part)
		}
		out = append(out, [2]int64{start, last + 1})
	}
	return out, nil
}

func encodeHead(first string, headers map[string]string) []byte {
	var b strings.Builder
	b.WriteString(first)
	b.WriteString("\r\n")
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(headers[k])
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

func parseHead(data []byte) (first string, headers map[string]string, err error) {
	text := string(data)
	lines := strings.Split(text, "\r\n")
	if len(lines) < 1 || lines[0] == "" {
		return "", nil, fmt.Errorf("httpsim: empty head")
	}
	headers = make(map[string]string)
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		c := strings.IndexByte(l, ':')
		if c < 0 {
			return "", nil, fmt.Errorf("httpsim: malformed header %q", l)
		}
		headers[strings.ToLower(strings.TrimSpace(l[:c]))] = strings.TrimSpace(l[c+1:])
	}
	return lines[0], headers, nil
}

// headEnd finds the end of the head ("\r\n\r\n"); -1 if incomplete.
func headEnd(data []byte) int {
	idx := strings.Index(string(data), "\r\n\r\n")
	if idx < 0 {
		return -1
	}
	return idx + 4
}

package httpsim

import (
	"fmt"
	"strconv"
	"strings"

	"voxel/internal/quic"
)

// ServerOptions configures the server's VOXEL capabilities.
type ServerOptions struct {
	// VoxelUnaware makes the server ignore x-voxel-unreliable and always
	// answer over the reliable stream (the compatibility case of §4.2).
	VoxelUnaware bool
}

// Server answers GET requests arriving on a QUIC* connection.
type Server struct {
	conn    *quic.Conn
	handler Handler
	opts    ServerOptions
	// Stats
	RequestsServed   uint64
	BytesServed      uint64
	UnreliableBodies uint64
}

// NewServer wires a server to the connection.
func NewServer(conn *quic.Conn, handler Handler, opts ServerOptions) *Server {
	s := &Server{conn: conn, handler: handler, opts: opts}
	conn.OnStream(s.onStream)
	return s
}

func (s *Server) onStream(st *quic.Stream) {
	var buf []byte
	var handled bool
	st.OnData(func(off uint64, data []byte) {
		need := off + uint64(len(data))
		if uint64(len(buf)) < need {
			nb := make([]byte, need)
			copy(nb, buf)
			buf = nb
		}
		copy(buf[off:], data)
		if !handled {
			if end := headEnd(buf); end >= 0 {
				handled = true
				s.serve(st, buf[:end])
			}
		}
	})
}

func (s *Server) serve(st *quic.Stream, head []byte) {
	first, headers, err := parseHead(head)
	if err != nil {
		s.respondError(st, 400)
		return
	}
	parts := strings.SplitN(first, " ", 3)
	if len(parts) < 2 || parts[0] != "GET" {
		s.respondError(st, 405)
		return
	}
	path := parts[1]
	obj, err := s.handler.Resolve(path)
	if err != nil {
		s.respondError(st, 404)
		return
	}

	ranges := RangeSpec{{0, obj.Size()}}
	status := 200
	if rh, ok := headers["range"]; ok {
		parsed, err := parseRangeHeader(rh)
		if err != nil {
			s.respondError(st, 416)
			return
		}
		for _, r := range parsed {
			if r[0] < 0 || r[1] > obj.Size() {
				s.respondError(st, 416)
				return
			}
		}
		ranges = parsed
		status = 206
	}
	bodyLen := ranges.TotalBytes()

	wantUnreliable := !s.opts.VoxelUnaware && headers[HeaderUnreliable] == "1"
	respHeaders := map[string]string{
		"content-length": strconv.FormatInt(bodyLen, 10),
	}

	var bodyStream *quic.Stream
	if wantUnreliable {
		bodyStream = s.conn.OpenStream(true)
		respHeaders[HeaderStream] = strconv.FormatUint(bodyStream.ID(), 10)
		s.UnreliableBodies++
	}

	statusLine := fmt.Sprintf("HTTP/1.1 %d %s", status, statusText(status))
	st.Write(encodeHead(statusLine, respHeaders))

	writeBody := func(dst *quic.Stream) {
		const chunk = 256 << 10
		for _, r := range ranges {
			for off := r[0]; off < r[1]; {
				n := int(r[1] - off)
				if n > chunk {
					n = chunk
				}
				dst.Write(obj.ReadAt(off, n))
				off += int64(n)
			}
		}
	}
	s.RequestsServed++
	s.BytesServed += uint64(bodyLen)
	if wantUnreliable {
		st.CloseWrite()
		writeBody(bodyStream)
		bodyStream.CloseWrite()
	} else {
		writeBody(st)
		st.CloseWrite()
	}
}

func (s *Server) respondError(st *quic.Stream, code int) {
	st.Write(encodeHead(fmt.Sprintf("HTTP/1.1 %d %s", code, statusText(code)),
		map[string]string{"content-length": "0"}))
	st.CloseWrite()
	s.RequestsServed++
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 416:
		return "Range Not Satisfiable"
	default:
		return "Error"
	}
}

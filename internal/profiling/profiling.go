// Package profiling wires the standard runtime/pprof collectors behind the
// -cpuprofile/-memprofile flags of the CLI tools, so kernel and experiment
// hot spots can be inspected with `go tool pprof` without rebuilding.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and, if memPath is non-empty, writes a
// heap profile there after a final GC. Either path may be empty; the stop
// function is never nil and is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

package figures

import (
	"fmt"
	"time"

	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/survey"
	"voxel/internal/trace"
)

// vanillaPairs are the Fig. 3/4 subplot assignments: (abr, trace, video).
func vanillaPairs(p Params) []struct {
	abrQ, abrQStar exp.System
	tr             *trace.Trace
	video          string
} {
	all := []struct {
		abrQ, abrQStar exp.System
		tr             *trace.Trace
		video          string
	}{
		{exp.SysMPCQ, exp.SysMPCQStar, trace.TMobile(), "BBB"},
		{exp.SysMPCQ, exp.SysMPCQStar, trace.Verizon(), "ED"},
		{exp.SysBolaQ, exp.SysBolaQStar, trace.TMobile(), "Sintel"},
		{exp.SysBolaQ, exp.SysBolaQStar, trace.Verizon(), "ToS"},
	}
	if p.Quick {
		return all[:2]
	}
	return all
}

// Fig3 regenerates Fig. 3: bufRatio of unmodified MPC/BOLA over QUIC vs
// QUIC*, buffers 5–7 segments.
func Fig3(p Params) *Table {
	p = p.Defaults()
	// Large (5–7 segment) buffers need a clip long enough to reach steady
	// state, or stalls cannot appear at all.
	if p.Segments < 20 {
		p.Segments = 20
	}
	t := &Table{ID: "Fig3", Title: "Vanilla ABR: p90 bufRatio, Q vs Q*",
		Header: []string{"ABR", "Trace", "Video", "Buf", "Q", "Q*", "improvement"},
		Notes:  "paper: Q* lowers bufRatio for all ABRs; MPC improves most (avg 71.7% vs BOLA 9.2%)"}
	for _, cell := range vanillaPairs(p) {
		for _, buf := range p.buffers([]int{5, 6, 7}) {
			q := exp.Run(p.cell(cell.video, cell.abrQ, cell.tr, buf))
			qs := exp.Run(p.cell(cell.video, cell.abrQStar, cell.tr, buf))
			imp := "-"
			if q.BufRatioP90() > 0 {
				imp = pct((q.BufRatioP90() - qs.BufRatioP90()) / q.BufRatioP90())
			}
			t.AddRow(string(cell.abrQ), cell.tr.Name(), cell.video, fmt.Sprint(buf),
				pct(q.BufRatioP90()), pct(qs.BufRatioP90()), imp)
		}
	}
	return t
}

// Fig4 regenerates Fig. 4: the bitrates of the same cells.
func Fig4(p Params) *Table {
	p = p.Defaults()
	if p.Segments < 20 {
		p.Segments = 20
	}
	t := &Table{ID: "Fig4", Title: "Vanilla ABR: mean bitrate, Q vs Q*",
		Header: []string{"ABR", "Trace", "Video", "Buf", "Q", "Q*"},
		Notes:  "paper: ABRs trade bitrate for the lower bufRatio (MPC −24.7%, BOLA −4.1%)"}
	for _, cell := range vanillaPairs(p) {
		for _, buf := range p.buffers([]int{5, 6, 7}) {
			q := exp.Run(p.cell(cell.video, cell.abrQ, cell.tr, buf))
			qs := exp.Run(p.cell(cell.video, cell.abrQStar, cell.tr, buf))
			t.AddRow(string(cell.abrQ), cell.tr.Name(), cell.video, fmt.Sprint(buf),
				mbps(q.BitrateMean()), mbps(qs.BitrateMean()))
		}
	}
	return t
}

// crossCfg builds a cross-traffic cell (20 Mbps link).
func (p Params) crossCfg(title string, sys exp.System, load float64, buf int) exp.Config {
	c := p.cell(title, sys, nil, buf)
	c.Trace = nil
	c.CrossTraffic = load
	c.LinkCapacity = 20e6
	return c
}

// Fig5 regenerates Fig. 5: vanilla ABR under Harpoon-like cross traffic.
func Fig5(p Params) *Table {
	p = p.Defaults()
	if p.Segments < 20 {
		p.Segments = 20
	}
	t := &Table{ID: "Fig5", Title: "Vanilla ABR with 15 Mbps cross traffic (20 Mbps link)",
		Header: []string{"ABR", "Video", "Buf", "Q p90bufRatio", "Q* p90bufRatio", "Q bitrate", "Q* bitrate"},
		Notes:  "paper: Q* lowers bufRatio substantially for a small bitrate cost"}
	cells := []struct {
		q, qs exp.System
		video string
	}{
		{exp.SysBolaQ, exp.SysBolaQStar, "BBB"},
		{exp.SysMPCQ, exp.SysMPCQStar, "ED"},
	}
	if p.Quick {
		cells = cells[:1]
	}
	for _, cell := range cells {
		for _, buf := range p.buffers([]int{5, 6, 7}) {
			q := exp.Run(p.crossCfg(cell.video, cell.q, 15e6, buf))
			qs := exp.Run(p.crossCfg(cell.video, cell.qs, 15e6, buf))
			t.AddRow(string(cell.q), cell.video, fmt.Sprint(buf),
				pct(q.BufRatioP90()), pct(qs.BufRatioP90()),
				mbps(q.BitrateMean()), mbps(qs.BitrateMean()))
		}
	}
	return t
}

// fig6Cells are the Fig. 6 subplot assignments.
func fig6Cells(p Params) []struct {
	tr    *trace.Trace
	video string
} {
	all := []struct {
		tr    *trace.Trace
		video string
	}{
		{trace.ATT(), "BBB"},
		{trace.Norway3G(), "ED"},
		{trace.Verizon(), "Sintel"},
		{trace.TMobile(), "ToS"},
	}
	if p.Quick {
		return []struct {
			tr    *trace.Trace
			video string
		}{{trace.Verizon(), "BBB"}, {trace.TMobile(), "ToS"}}
	}
	return all
}

// Fig6 regenerates Fig. 6: BOLA vs BETA vs VOXEL bufRatio across networks
// and buffer sizes 1–7.
func Fig6(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig6", Title: "p90 bufRatio: BOLA vs BETA vs VOXEL",
		Header: []string{"Trace", "Video", "Buf", "BOLA", "BETA", "VOXEL"},
		Notes:  "paper: VOXEL suffers 25–97% less rebuffering, down to 1-segment buffers"}
	for _, cell := range fig6Cells(p) {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			bola := exp.Run(p.cell(cell.video, exp.SysBolaQ, cell.tr, buf))
			beta := exp.Run(p.cell(cell.video, exp.SysBeta, cell.tr, buf))
			vox := exp.Run(p.cell(cell.video, exp.SysVoxel, cell.tr, buf))
			t.AddRow(cell.tr.Name(), cell.video, fmt.Sprint(buf),
				pct(bola.BufRatioP90()), pct(beta.BufRatioP90()), pct(vox.BufRatioP90()))
		}
	}
	return t
}

// Fig7a regenerates Fig. 7a: VOXEL's bufRatio under SSIM, VMAF, and PSNR
// utilities vs BOLA (QoE-metric agnosticism).
func Fig7a(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig7a", Title: "bufRatio by QoE metric (BBB over Verizon)",
		Header: []string{"Buf", "BOLA", "VOXEL/SSIM", "VOXEL/VMAF", "VOXEL/PSNR"},
		Notes:  "paper: VOXEL beats BOLA regardless of metric"}
	tr := trace.Verizon()
	for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
		bola := exp.Run(p.cell("BBB", exp.SysBolaQ, tr, buf))
		row := []string{fmt.Sprint(buf), pct(bola.BufRatioP90())}
		for _, m := range []qoe.Metric{qoe.SSIM, qoe.VMAF, qoe.PSNR} {
			c := p.cell("BBB", exp.SysVoxel, tr, buf)
			c.Metric = m
			row = append(row, pct(exp.Run(c).BufRatioP90()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7bc regenerates Fig. 7b,c: SSIM and VMAF distributions for BOLA vs
// VOXEL on BBB/Verizon.
func Fig7bc(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig7bc", Title: "Segment-score distributions (BBB over Verizon, 3-seg buffer)",
		Header: []string{"Metric", "System", "p10", "median", "p90", "perfect"},
		Notes:  "paper: medians comparable — the rebuffering win costs no SSIM; VOXEL earns perfect scores"}
	tr := trace.Verizon()
	for _, m := range []qoe.Metric{qoe.SSIM, qoe.VMAF} {
		for _, sys := range []exp.System{exp.SysBolaQ, exp.SysVoxel} {
			c := p.cell("BBB", sys, tr, 3)
			c.Metric = m
			agg := exp.Run(c)
			cdf := agg.ScoreCDF()
			perfect := 0
			for _, s := range agg.AllScores {
				if s >= 0.9999*m.Perfect() {
					perfect++
				}
			}
			t.AddRow(m.String(), string(sys),
				f3(cdf.Quantile(0.10)), f3(cdf.Quantile(0.50)), f3(cdf.Quantile(0.90)),
				pct(float64(perfect)/float64(max(1, len(agg.AllScores)))))
		}
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig7d regenerates Fig. 7d: the share of data skipped as a function of
// buffer size.
func Fig7d(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig7d", Title: "Data skipped by VOXEL (Verizon)",
		Header: []string{"Video", "Buf", "skipped"},
		Notes:  "paper: skipping shrinks as the buffer grows (large buffers absorb variation)"}
	tr := trace.Verizon()
	for _, v := range p.videos() {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			agg := exp.Run(p.cell(v, exp.SysVoxel, tr, buf))
			var sk []float64
			for _, trial := range agg.Trials {
				sk = append(sk, trial.Skipped)
			}
			t.AddRow(v, fmt.Sprint(buf), pct(stats.Mean(sk)))
		}
	}
	return t
}

// Fig8 regenerates Fig. 8: VOXEL vs BOLA mean bitrates.
func Fig8(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig8", Title: "Mean bitrates: BOLA vs VOXEL",
		Header: []string{"Trace", "Video", "Buf", "BOLA", "VOXEL"},
		Notes:  "paper: VOXEL's bitrates are on par or higher while rebuffering less"}
	traces := []*trace.Trace{trace.TMobile(), trace.Verizon()}
	for _, tr := range traces {
		for _, v := range p.videos() {
			for _, buf := range p.buffers([]int{1, 7}) {
				bola := exp.Run(p.cell(v, exp.SysBolaQ, tr, buf))
				vox := exp.Run(p.cell(v, exp.SysVoxel, tr, buf))
				t.AddRow(tr.Name(), v, fmt.Sprint(buf),
					mbps(bola.BitrateMean()), mbps(vox.BitrateMean()))
			}
		}
	}
	return t
}

// Fig9 regenerates Fig. 9: SSIM CDF comparisons in four scenarios.
func Fig9(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig9", Title: "SSIM distributions across scenarios",
		Header: []string{"Scenario", "System", "p25", "median", "p75"},
		Notes:  "paper: VOXEL's SSIMs are superior or trade slightly for far lower bufRatio"}
	scenarios := []struct {
		label string
		video string
		tr    *trace.Trace
		buf   int
	}{
		{"ToS/AT&T/2seg", "ToS", trace.ATT(), 2},
		{"Sintel/3G", "Sintel", trace.Norway3G(), 3},
		{"ED/Verizon", "ED", trace.Verizon(), 3},
		{"BBB/T-Mobile", "BBB", trace.TMobile(), 3},
	}
	if p.Quick {
		scenarios = scenarios[:2]
	}
	for _, sc := range scenarios {
		for _, sys := range []exp.System{exp.SysBolaQ, exp.SysBeta, exp.SysVoxel} {
			cdf := exp.Run(p.cell(sc.video, sys, sc.tr, sc.buf)).ScoreCDF()
			t.AddRow(sc.label, string(sys),
				f3(cdf.Quantile(0.25)), f3(cdf.Quantile(0.50)), f3(cdf.Quantile(0.75)))
		}
	}
	return t
}

// Fig10 regenerates Fig. 10: the BOLA → BOLA-SSIM → VOXEL ablation over
// the Riiser 3G commute traces.
func Fig10(p Params) *Table {
	p = p.Defaults()
	n := 86
	if p.Quick {
		n = 8
	}
	t := &Table{ID: "Fig10", Title: fmt.Sprintf("Ablation over %d 3G commute traces (BBB)", n),
		Header: []string{"Buf", "System", "mean bufRatio", "p90 bufRatio", "mean SSIM"},
		Notes:  "paper (1-seg): BOLA 7.9%, BOLA-SSIM 8.2%, VOXEL 5.1% mean bufRatio; BOLA-SSIM gains +0.02 SSIM, VOXEL keeps it while stalling least"}
	traces := trace.Riiser3GSet(n)
	for _, buf := range p.buffers([]int{1, 7}) {
		for _, sys := range []exp.System{exp.SysBolaQ, exp.SysBolaSSIM, exp.SysVoxel} {
			var ratios, scores []float64
			for _, tr := range traces {
				c := p.cell("BBB", sys, tr, buf)
				c.Trials = 1 // one run per trace, as in the paper
				agg := exp.Run(c)
				ratios = append(ratios, agg.BufRatios...)
				scores = append(scores, agg.AllScores...)
			}
			t.AddRow(fmt.Sprint(buf), string(sys),
				pct(stats.Mean(ratios)), pct(stats.Percentile(ratios, 90)), f4(stats.Mean(scores)))
		}
	}
	return t
}

// Fig11 regenerates Fig. 11a–c: constant and step traces with a 28 s
// buffer.
func Fig11(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig11", Title: "Synthetic traces (28 s buffer, BBB)",
		Header: []string{"Trace", "System", "mean SSIM", "min SSIM", "perfect segs"},
		Notes:  "paper: VOXEL's finer levels fit the rate, yielding many perfect (1.0) segments; BOLA gets none"}
	secs := p.Segments*4*3 + 600
	traces := []*trace.Trace{
		trace.Constant("const-10.5", 10.5e6, secs),
		trace.Step("step-10.75-10.5", 10.75e6, 10.5e6, 70*time.Second, secs),
	}
	// The paper's SSIM reference is the top rung itself (§2, "Reference
	// quality level"), so a "perfect 1.0" segment is one delivered in full
	// at Q12. Score against the per-segment pristine-Q12 score here.
	v := videoForTitle("BBB", p.Segments)
	pristine := make([]float64, v.Segments)
	for i := range pristine {
		s := v.Segment(i, 12)
		pristine[i] = qoe.DefaultModel.Score(qoe.SSIM, s, qoe.PerfectDelivery(s))
	}
	for _, tr := range traces {
		for _, sys := range []exp.System{exp.SysBolaQ, exp.SysVoxel} {
			agg := exp.Run(p.cell("BBB", sys, tr, 7))
			// "Perfect" at FFmpeg's reported precision: within rounding of
			// the pristine-Q12 score (tiny repaired losses included).
			perfect := 0
			for i, s := range agg.AllScores {
				if s >= pristine[i%len(pristine)]-5e-4 {
					perfect++
				}
			}
			t.AddRow(tr.Name(), string(sys),
				f4(stats.Mean(agg.AllScores)), f4(stats.Min(agg.AllScores)),
				pct(float64(perfect)/float64(max(1, len(agg.AllScores)))))
		}
	}
	return t
}

// Fig11d regenerates Fig. 11d and Fig. 13: the in-the-wild trials.
func Fig11d(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig11d", Title: "In-the-wild (WiFi-like path)",
		Header: []string{"Video", "Buf", "System", "p90 bufRatio", "median SSIM"},
		Notes:  "paper: comparable at 7-seg buffers; VOXEL wins clearly at 1-seg"}
	tr := trace.InTheWild()
	videos := []string{"BBB", "ToS"}
	for _, v := range videos {
		for _, buf := range []int{1, 7} {
			for _, sys := range []exp.System{exp.SysBolaQ, exp.SysVoxel} {
				agg := exp.Run(p.cell(v, sys, tr, buf))
				t.AddRow(v, fmt.Sprint(buf), string(sys),
					pct(agg.BufRatioP90()), f3(agg.ScoreCDF().Quantile(0.5)))
			}
		}
	}
	return t
}

// Fig12 regenerates Fig. 12: VOXEL vs BOLA under 20 Mbps cross traffic.
func Fig12(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig12", Title: "VOXEL with 15 Mbps cross traffic (20 Mbps link)",
		Header: []string{"Video", "Buf", "System", "p90 bufRatio", "bitrate"},
		Notes:  "paper: VOXEL nearly eliminates rebuffering without giving up bitrate"}
	videos := p.videos()[:2]
	for _, v := range videos {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			for _, sys := range []exp.System{exp.SysBolaQ, exp.SysVoxel} {
				agg := exp.Run(p.crossCfg(v, sys, 15e6, buf))
				t.AddRow(v, fmt.Sprint(buf), string(sys),
					pct(agg.BufRatioP90()), mbps(agg.BitrateMean()))
			}
		}
	}
	return t
}

// Fig14 regenerates Fig. 14 and the §5.3 survey outcomes by running the
// two systems under challenging 3G conditions and feeding the measured
// clip statistics to the user-model panel.
func Fig14(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig14", Title: "User study (54-user model panel)",
		Header: []string{"Measure", "BOLA", "VOXEL"},
		Notes:  "paper: 84% prefer VOXEL; fluidity +1.7, clarity −0.49, glitches −0.19, overall +0.77; stop 31%/10%; not-watch 74%/36.7%"}
	// Challenging conditions: a low-bandwidth 3G commute trace, 1-segment
	// buffer, as §5.3 describes (throughput down to 0.3 Mbps).
	tr := trace.Riiser3GSet(3)[0]
	bolaAgg := exp.Run(p.cell("BBB", exp.SysBolaQ, tr, 1))
	voxAgg := exp.Run(p.cell("BBB", exp.SysVoxel, tr, 1))
	clip := func(a *exp.Aggregate) survey.Clip {
		var residual []float64
		for _, tr := range a.Trials {
			residual = append(residual, tr.Residual)
		}
		return survey.Clip{
			BufRatio:         stats.Mean(a.BufRatios),
			MeanScore:        stats.Mean(a.AllScores),
			ScoreStdDev:      stats.StdDev(a.AllScores),
			ArtifactFraction: stats.Mean(residual),
		}
	}
	out := survey.NewPanel(54, p.Seed).Evaluate(clip(bolaAgg), clip(voxAgg))
	t.AddRow("clarity MOS", f2(out.MeanA.Clarity), f2(out.MeanB.Clarity))
	t.AddRow("glitches MOS", f2(out.MeanA.Glitches), f2(out.MeanB.Glitches))
	t.AddRow("fluidity MOS", f2(out.MeanA.Fluidity), f2(out.MeanB.Fluidity))
	t.AddRow("experience MOS", f2(out.MeanA.Experience), f2(out.MeanB.Experience))
	t.AddRow("preferred", pct(1-out.PreferB), pct(out.PreferB))
	t.AddRow("would stop", pct(out.WouldStopA), pct(out.WouldStopB))
	t.AddRow("would not watch longer", pct(out.WouldNotWatchA), pct(out.WouldNotWatchB))
	return t
}

// Fig16 regenerates Fig. 16: the 750-packet queue appendix.
func Fig16(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig16", Title: "750-packet router queue",
		Header: []string{"Trace", "Video", "Buf", "BOLA", "VOXEL"},
		Notes:  "paper: VOXEL keeps a (smaller) edge; deep queues challenge loss-based CC"}
	cells := []struct {
		tr    *trace.Trace
		video string
	}{
		{trace.TMobile(), "BBB"},
		{trace.Verizon(), "ToS"},
	}
	for _, cell := range cells {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			mk := func(sys exp.System) *exp.Aggregate {
				c := p.cell(cell.video, sys, cell.tr, buf)
				c.QueuePackets = netem.LongQueuePackets
				return exp.Run(c)
			}
			t.AddRow(cell.tr.Name(), cell.video, fmt.Sprint(buf),
				pct(mk(exp.SysBolaQ).BufRatioP90()), pct(mk(exp.SysVoxel).BufRatioP90()))
		}
	}
	return t
}

// Fig17 regenerates Fig. 17: the untuned (safety 1.0) VOXEL on T-Mobile.
func Fig17(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig17", Title: "Bandwidth-safety ablation (T-Mobile, ToS)",
		Header: []string{"Buf", "BETA", "VOXEL untuned", "VOXEL tuned"},
		Notes:  "paper: untuned VOXEL is too aggressive on T-Mobile; one safety knob fixes it"}
	tr := trace.TMobile()
	for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
		beta := exp.Run(p.cell("ToS", exp.SysBeta, tr, buf))
		untuned := exp.Run(p.cell("ToS", exp.SysVoxelUntuned, tr, buf))
		tuned := exp.Run(p.cell("ToS", exp.SysVoxel, tr, buf))
		t.AddRow(fmt.Sprint(buf), pct(beta.BufRatioP90()),
			pct(untuned.BufRatioP90()), pct(tuned.BufRatioP90()))
	}
	return t
}

// Fig18ab regenerates Fig. 18a,b: the FCC fixed-line trace.
func Fig18ab(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig18ab", Title: "FCC broadband trace",
		Header: []string{"Video", "Buf", "BOLA bufRatio", "VOXEL bufRatio", "BOLA bitrate", "VOXEL bitrate"}}
	tr := trace.FCC()
	for _, v := range p.videos()[:2] {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			bola := exp.Run(p.cell(v, exp.SysBolaQ, tr, buf))
			vox := exp.Run(p.cell(v, exp.SysVoxel, tr, buf))
			t.AddRow(v, fmt.Sprint(buf),
				pct(bola.BufRatioP90()), pct(vox.BufRatioP90()),
				mbps(bola.BitrateMean()), mbps(vox.BitrateMean()))
		}
	}
	return t
}

// Fig18cd regenerates Fig. 18c,d: VOXEL with partial reliability disabled.
func Fig18cd(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "Fig18cd", Title: "Partial-reliability ablation",
		Header: []string{"Trace", "Video", "Buf", "VOXEL rel", "VOXEL"},
		Notes:  "paper: disabling unreliable streams roughly doubles bufRatio on Verizon"}
	cells := []struct {
		tr    *trace.Trace
		video string
	}{
		{trace.TMobile(), "BBB"},
		{trace.Verizon(), "ToS"},
	}
	for _, cell := range cells {
		for _, buf := range p.buffers([]int{1, 2, 3, 7}) {
			rel := exp.Run(p.cell(cell.video, exp.SysVoxelRel, cell.tr, buf))
			vox := exp.Run(p.cell(cell.video, exp.SysVoxel, cell.tr, buf))
			t.AddRow(cell.tr.Name(), cell.video, fmt.Sprint(buf),
				pct(rel.BufRatioP90()), pct(vox.BufRatioP90()))
		}
	}
	return t
}

// FigB1 runs the Appendix-B future-work experiment the paper names but
// does not run: VOXEL behind the 750-packet queue with a delay-based
// congestion controller instead of CUBIC.
func FigB1(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "FigB1", Title: "Delay-based CC on long queues (extension)",
		Header: []string{"Trace", "Buf", "VOXEL/CUBIC", "VOXEL/BBR", "CUBIC ssim", "BBR ssim"},
		Notes:  "Appendix B: 'in future work, VOXEL should be evaluated with a delay based CC' — this is that run"}
	cells := []struct {
		tr    *trace.Trace
		video string
	}{
		{trace.TMobile(), "BBB"},
		{trace.Verizon(), "ToS"},
	}
	for _, cell := range cells {
		for _, buf := range p.buffers([]int{1, 3, 7}) {
			mk := func(ccName string) *exp.Aggregate {
				c := p.cell(cell.video, exp.SysVoxel, cell.tr, buf)
				c.QueuePackets = netem.LongQueuePackets
				c.CC = ccName
				return exp.Run(c)
			}
			cubic := mk("cubic")
			bbr := mk("bbr")
			t.AddRow(cell.tr.Name(), fmt.Sprint(buf),
				pct(cubic.BufRatioP90()), pct(bbr.BufRatioP90()),
				f4(cubic.MeanScore()), f4(bbr.MeanScore()))
		}
	}
	return t
}

// SelectiveRetx regenerates the §4.2 residual-loss statistic: losses
// remaining after buffer-full selective retransmission.
func SelectiveRetx(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "RetxResidual", Title: "Residual loss after selective retransmission (Verizon, VOXEL)",
		Header: []string{"Buf", "residual loss", "skipped (pre-retx)"},
		Notes:  "paper: 0.9% / 1.5% / 1.8% residual loss at 2-, 3-, 7-segment buffers"}
	tr := trace.Verizon()
	for _, buf := range []int{2, 3, 7} {
		agg := exp.Run(p.cell("BBB", exp.SysVoxel, tr, buf))
		var residual, skipped []float64
		for _, trial := range agg.Trials {
			residual = append(residual, trial.Residual)
			skipped = append(skipped, trial.Skipped)
		}
		t.AddRow(fmt.Sprint(buf), pct(stats.Mean(residual)), pct(stats.Mean(skipped)))
	}
	return t
}

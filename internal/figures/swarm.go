package figures

import (
	"fmt"

	"voxel/internal/exp"
	"voxel/internal/trace"
)

// FigSwarm exercises the shared-bottleneck swarm extension (not a paper
// exhibit): N concurrent VOXEL sessions streaming BBB through one
// Verizon-shaped bottleneck. As the swarm grows, per-session bitrate must
// fall roughly as capacity/N while Jain's fairness index stays high (every
// session runs the same ABR + congestion controller, so nobody should
// starve) and utilization stays near the single-session level. The N=1 row
// doubles as a regression anchor: it must match the classic single-session
// path exactly.
func FigSwarm(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "FigSwarm", Title: "Shared-bottleneck swarm: N concurrent sessions (VOXEL, BBB over Verizon)",
		Header: []string{"Sessions", "Bitrate/sess", "SSIM", "QoE p5", "Jain", "Util", "Stall/sess"},
		Notes:  "one netem path, N full client/server stacks; Jain over delivered bitrates, util until last session finished"}
	sweep := []int{1, 2, 4, 8}
	if p.Quick {
		sweep = []int{1, 4}
	}
	tr := trace.Verizon()
	for _, n := range sweep {
		cfg := p.cell("BBB", exp.SysVoxel, tr, 3)
		cfg.Sessions = n
		agg := exp.Run(cfg)
		sessions := float64(len(agg.Trials) * n)
		t.AddRow(fmt.Sprintf("%d", n), mbps(agg.BitrateMean()), f3(agg.MeanScore()),
			f3(agg.SessionQoEP5()), f3(agg.JainMean()), pct(agg.UtilizationMean()),
			fmt.Sprintf("%.2fs", agg.TotalStall().Seconds()/sessions),
		)
	}
	return t
}

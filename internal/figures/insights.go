package figures

import (
	"fmt"

	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/video"
)

// Table1 regenerates Tab. 1: the four evaluation titles with their
// measured per-segment bitrate standard deviations at Q12.
func Table1(p Params) *Table {
	t := &Table{ID: "Tab1", Title: "Evaluation videos",
		Header: []string{"Video", "Genre", "StdDev(target)", "StdDev(measured)", "Segments"}}
	for _, name := range video.TestTitles() {
		v := video.MustLoad(name)
		sd := stats.StdDev(v.SegmentBitrates(12)) / 1e6
		t.AddRow(name, v.Genre, fmt.Sprintf("%.2f Mbps", v.StdDevMbps),
			fmt.Sprintf("%.2f Mbps", sd), fmt.Sprint(v.Segments))
	}
	return t
}

// Table2 regenerates Tab. 2: the 13-rung ladder with measured total sizes
// for BBB.
func Table2(Params) *Table {
	t := &Table{ID: "Tab2", Title: "Quality levels",
		Header: []string{"Quality", "Resolution", "AvgBitrate", "TotalSize(BBB)"}}
	v := video.MustLoad("BBB")
	for q := video.Quality(0); q < video.NumQualities; q++ {
		var total int
		for i := 0; i < v.Segments; i++ {
			total += v.Segment(i, q).TotalBytes()
		}
		t.AddRow(q.String(), video.Ladder[q].Resolution,
			mbps(video.Ladder[q].AvgBitrate), fmt.Sprintf("%.1f MB", float64(total)/1e6))
	}
	return t
}

// Table3 regenerates Tab. 3: the ten YouTube clips.
func Table3(Params) *Table {
	t := &Table{ID: "Tab3", Title: "Public YouTube videos",
		Header: []string{"Clip", "Category", "StdDev(target)", "StdDev(measured)"}}
	for _, name := range video.YouTubeTitles() {
		v := video.MustLoad(name)
		sd := stats.StdDev(v.SegmentBitrates(12)) / 1e6
		t.AddRow(name, v.Genre, fmt.Sprintf("%.2f Mbps", v.StdDevMbps),
			fmt.Sprintf("%.2f Mbps", sd))
	}
	return t
}

// toleranceQuartiles computes drop-tolerance quartiles for a title.
func toleranceQuartiles(title string, q video.Quality, target float64) (p25, p50, p75 float64) {
	a := prep.NewAnalyzer()
	v := video.MustLoad(title)
	var fr []float64
	for i := 0; i < v.Segments; i++ {
		fr = append(fr, a.MaxDropFraction(v.Segment(i, q), prep.OrderByInboundRefs, target))
	}
	return stats.Percentile(fr, 25), stats.Percentile(fr, 50), stats.Percentile(fr, 75)
}

// Fig1 regenerates Fig. 1a–c: drop-tolerance CDF quartiles for the six
// §3 titles under (Q12, 0.99), (Q9, 0.99) and (Q9, 0.95).
func Fig1(p Params) *Table {
	t := &Table{ID: "Fig1", Title: "Tolerable frame drops (quartiles of CDF)",
		Header: []string{"Video", "Setting", "p25", "median", "p75"},
		Notes:  "paper: at Q12/0.99 ≥half the segments sustain 10–20% drops; tolerance collapses at Q9/0.99 and recovers at Q9/0.95"}
	titles := []string{"BBB", "ED", "Sintel", "ToS", "P2", "P4"}
	if p.Quick {
		titles = []string{"BBB", "ToS"}
	}
	settings := []struct {
		label  string
		q      video.Quality
		target float64
	}{
		{"Q12/SSIM0.99", 12, 0.99},
		{"Q9/SSIM0.99", 9, 0.99},
		{"Q9/SSIM0.95", 9, 0.95},
	}
	for _, s := range settings {
		for _, title := range titles {
			p25, p50, p75 := toleranceQuartiles(title, s.q, s.target)
			t.AddRow(title, s.label, pct(p25), pct(p50), pct(p75))
		}
	}
	return t
}

// Fig1d regenerates Fig. 1d: base-SSIM distributions of low rungs.
func Fig1d(Params) *Table {
	t := &Table{ID: "Fig1d", Title: "Pristine SSIM at low rungs",
		Header: []string{"Video", "Quality", "median SSIM", "frac<0.99"},
		Notes:  "paper: 85% of BBB and 96% of ToS segments at Q9 score below 0.99"}
	m := qoe.DefaultModel
	for _, title := range []string{"ToS", "BBB"} {
		v := video.MustLoad(title)
		for _, q := range []video.Quality{6, 9} {
			var ss []float64
			for i := 0; i < v.Segments; i++ {
				ss = append(ss, m.BaseSSIM(v.Segment(i, q)))
			}
			below := 0
			for _, s := range ss {
				if s < 0.99 {
					below++
				}
			}
			t.AddRow(title, q.String(), f4(stats.Percentile(ss, 50)),
				pct(float64(below)/float64(len(ss))))
		}
	}
	return t
}

// Fig2a regenerates Fig. 2a: how often a frame at each position belongs to
// the maximal drop set at SSIM 0.99, bucketed by position.
func Fig2a(Params) *Table {
	t := &Table{ID: "Fig2a", Title: "Droppable frames by position (Q12, SSIM 0.99)",
		Header: []string{"Video", "pos 0-15", "16-31", "32-47", "48-63", "64-79", "80-95"},
		Notes:  "paper: droppable frames are distributed throughout the segment, not clustered at the tail"}
	a := prep.NewAnalyzer()
	for _, title := range []string{"BBB", "ToS"} {
		v := video.MustLoad(title)
		counts := make([]float64, video.FramesPerSeg)
		for i := 0; i < v.Segments; i++ {
			for _, f := range a.DropSet(v.Segment(i, 12), prep.OrderByInboundRefs, 0.99) {
				counts[f]++
			}
		}
		row := []string{title}
		for b := 0; b < 6; b++ {
			var sum float64
			for pos := b * 16; pos < (b+1)*16; pos++ {
				sum += counts[pos]
			}
			row = append(row, pct(sum/(16*float64(v.Segments))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig2b regenerates Fig. 2b: the ranked ordering vs restricting drops to
// the decode-order tail.
func Fig2b(Params) *Table {
	t := &Table{ID: "Fig2b", Title: "Ranked vs tail-only drop tolerance (Q12, SSIM 0.99)",
		Header: []string{"Video", "ranked median", "tail median", "ranked ref-share", "tail ref-share"},
		Notes:  "paper: tail-only drops tolerate far fewer frames while hitting more referenced frames (51.75% BBB / 46% ToS)"}
	a := prep.NewAnalyzer()
	for _, title := range []string{"BBB", "ToS"} {
		v := video.MustLoad(title)
		var ranked, tail, refR, refT []float64
		for i := 0; i < v.Segments; i++ {
			s := v.Segment(i, 12)
			ranked = append(ranked, a.MaxDropFraction(s, prep.OrderByInboundRefs, 0.99))
			tail = append(tail, a.MaxDropFraction(s, prep.OrderOriginal, 0.99))
			if d := a.DropSet(s, prep.OrderByInboundRefs, 0.99); len(d) > 0 {
				refR = append(refR, prep.ReferencedShare(s, d))
			}
			if d := a.DropSet(s, prep.OrderOriginal, 0.99); len(d) > 0 {
				refT = append(refT, prep.ReferencedShare(s, d))
			}
		}
		t.AddRow(title,
			pct(stats.Percentile(ranked, 50)), pct(stats.Percentile(tail, 50)),
			pct(stats.Mean(refR)), pct(stats.Mean(refT)))
	}
	return t
}

// Fig2cd regenerates Fig. 2c,d: bitrate distributions of the Q12/0.99 and
// Q12/0.95 virtual levels against the neighbouring real rungs.
func Fig2cd(Params) *Table {
	t := &Table{ID: "Fig2cd", Title: "Virtual quality level bitrates",
		Header: []string{"Video", "series", "mean", "median"},
		Notes:  "paper: Q12/0.99 sits between Q11 and Q12 — a finer rung from frame drops alone"}
	a := prep.NewAnalyzer()
	for _, title := range []string{"BBB", "ToS"} {
		v := video.MustLoad(title)
		series := map[string][]float64{}
		for i := 0; i < v.Segments; i++ {
			s12 := v.Segment(i, 12)
			order := prep.MustOrder(s12, prep.OrderByInboundRefs)
			for _, target := range []float64{0.99, 0.95} {
				points := a.CurveFor(s12, order)
				bytes := points[len(points)-1].Bytes
				for _, pt := range points {
					if pt.Score >= target {
						bytes = pt.Bytes
						break
					}
				}
				key := fmt.Sprintf("Q12/%.2f", target)
				series[key] = append(series[key], float64(bytes*8)/video.SegmentDuration.Seconds())
			}
			series["Q12"] = append(series["Q12"], s12.Bitrate())
			series["Q11"] = append(series["Q11"], v.Segment(i, 11).Bitrate())
			series["Q10"] = append(series["Q10"], v.Segment(i, 10).Bitrate())
		}
		for _, key := range []string{"Q12", "Q12/0.99", "Q12/0.95", "Q11", "Q10"} {
			xs := series[key]
			t.AddRow(title, key, mbps(stats.Mean(xs)), mbps(stats.Percentile(xs, 50)))
		}
	}
	return t
}

// Fig15 regenerates Fig. 15: per-segment bitrate variation across rungs.
func Fig15(Params) *Table {
	t := &Table{ID: "Fig15", Title: "Segment bitrate variation",
		Header: []string{"Video", "Quality", "min", "mean", "max"},
		Notes:  "capped VBR: peaks at most 2× the rung average"}
	for _, title := range []string{"ED", "Sintel"} {
		v := video.MustLoad(title)
		for _, q := range []video.Quality{12, 11, 10, 8, 6, 4} {
			rates := v.SegmentBitrates(q)
			t.AddRow(title, q.String(), mbps(stats.Min(rates)), mbps(stats.Mean(rates)), mbps(stats.Max(rates)))
		}
	}
	return t
}

// Fig19 regenerates Fig. 19: drop tolerance across the YouTube set.
func Fig19(p Params) *Table {
	t := &Table{ID: "Fig19", Title: "YouTube-set drop tolerance (medians)",
		Header: []string{"Clip", "Q12/0.99", "Q9/0.99", "Q9/0.95"},
		Notes:  "paper: P9 (static) tolerates huge drops, P10 (dance) almost none"}
	clips := video.YouTubeTitles()
	if p.Quick {
		clips = []string{"P1", "P9", "P10"}
	}
	for _, title := range clips {
		_, a, _ := toleranceQuartiles(title, 12, 0.99)
		_, b, _ := toleranceQuartiles(title, 9, 0.99)
		_, c, _ := toleranceQuartiles(title, 9, 0.95)
		t.AddRow(title, pct(a), pct(b), pct(c))
	}
	return t
}

// ReferencedShares regenerates the §3 statistic: the share of referenced
// frames inside the maximal drop sets.
func ReferencedShares(Params) *Table {
	t := &Table{ID: "RefShares", Title: "Referenced frames among droppable frames (Q12, SSIM 0.99)",
		Header: []string{"Video", "mean ref share", "drops incl. referenced"},
		Notes:  "paper: 12.6% (ToS) to 30% (Sintel) of dropped frames are referenced"}
	a := prep.NewAnalyzer()
	for _, title := range video.TestTitles() {
		v := video.MustLoad(title)
		var shares []float64
		withRef := 0
		n := 0
		for i := 0; i < v.Segments; i++ {
			s := v.Segment(i, 12)
			d := a.DropSet(s, prep.OrderByInboundRefs, 0.99)
			if len(d) == 0 {
				continue
			}
			n++
			share := prep.ReferencedShare(s, d)
			shares = append(shares, share)
			if share > 0 {
				withRef++
			}
		}
		frac := 0.0
		if n > 0 {
			frac = float64(withRef) / float64(n)
		}
		t.AddRow(title, pct(stats.Mean(shares)), pct(frac))
	}
	return t
}

package figures

import (
	"strings"
	"testing"
)

// FigTimeline must render real rows from a telemetered bursty trial: the
// timeline carries rebuffer and loss activity, and the rendered table is
// non-degenerate.
func TestFigTimelineRenders(t *testing.T) {
	tab := FigTimeline(Params{Quick: true, Trials: 1, Segments: 20, Seed: 1})
	if len(tab.Rows) < 2 {
		t.Fatalf("timeline collapsed to %d rows:\n%s", len(tab.Rows), tab)
	}
	if tab.Rows[0][0] == "no telemetry collected" {
		t.Fatal("telemetry report missing from the exhibit run")
	}
	out := tab.String()
	if !strings.Contains(out, "L") {
		t.Fatalf("no quality rungs rendered:\n%s", out)
	}
	var sawLoss, sawRebuf bool
	for _, row := range tab.Rows {
		if row[3] != "0 KB" {
			sawLoss = true
		}
		if row[4] != "-" {
			sawRebuf = true
		}
	}
	if !sawLoss {
		t.Errorf("no loss-report bytes in any bucket:\n%s", out)
	}
	if !sawRebuf {
		t.Errorf("no rebuffer time in any bucket:\n%s", out)
	}
}

// Same params, same bytes: the exhibit inherits the telemetry determinism.
func TestFigTimelineDeterministic(t *testing.T) {
	p := Params{Quick: true, Trials: 1, Segments: 12, Seed: 7}
	a := FigTimeline(p).String()
	b := FigTimeline(p).String()
	if a != b {
		t.Fatalf("FigTimeline not deterministic:\n%s\nvs\n%s", a, b)
	}
}

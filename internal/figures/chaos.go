package figures

import (
	"fmt"

	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/trace"
)

// FigChaos exercises the robustness extension (not a paper exhibit): VOXEL
// streaming BBB over the Verizon trace while the netem impairment profiles
// perturb the path, plus the dual-origin failover scenario where the
// primary path is permanently blackholed mid-stream. QoE should degrade
// gracefully from clean to the harsher profiles — never collapse into an
// unterminated trial — and the clean row must match an unimpaired run
// exactly (the impairment layer is inert at zero intensity).
func FigChaos(p Params) *Table {
	p = p.Defaults()
	t := &Table{ID: "FigChaos", Title: "QoE under network impairment profiles (VOXEL, BBB over Verizon)",
		Header: []string{"Scenario", "bufRatio p90", "Bitrate", "SSIM", "FailedReqs", "Done"},
		Notes:  "recovery stack: request deadlines + retries, idle timeout + keepalive, capped PTO backoff, origin failover"}
	tr := trace.Verizon()
	row := func(name string, cfg exp.Config) {
		agg := exp.Run(cfg)
		var failed float64
		completed := 0
		for _, trial := range agg.Trials {
			failed += float64(trial.FailedReqs)
			if trial.Completed {
				completed++
			}
		}
		t.AddRow(name, pct(agg.BufRatioP90()), mbps(agg.BitrateMean()), f3(agg.MeanScore()),
			fmt.Sprintf("%.1f", failed/float64(len(agg.Trials))),
			fmt.Sprintf("%d/%d", completed, len(agg.Trials)))
	}
	for _, prof := range netem.Profiles() {
		cfg := p.cell("BBB", exp.SysVoxel, tr, 7)
		cfg.Impairment = prof
		row(prof, cfg)
	}
	cfg := p.cell("BBB", exp.SysVoxel, tr, 7)
	cfg.Impairment = netem.ProfileHandover
	cfg.Failover = true
	row("failover", cfg)
	return t
}

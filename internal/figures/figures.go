// Package figures regenerates every table and figure of the paper's
// evaluation. Each generator returns a Table of printable rows whose
// *shape* (who wins, by roughly what factor, where crossovers fall) is
// comparable against the published plots; EXPERIMENTS.md records the
// comparison. The generators are shared by bench_test.go (one benchmark
// per exhibit) and cmd/voxel-bench (the full harness).
package figures

import (
	"fmt"
	"strings"

	"voxel/internal/exp"
	"voxel/internal/qoe"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// Params scales the experiment size. The paper uses 30 trials over
// 75-segment clips; Quick mode shrinks sweeps for CI-sized runs.
type Params struct {
	// Trials per cell (paper: 30).
	Trials int
	// Segments per clip (paper: 75; 0 keeps 75).
	Segments int
	// Quick restricts sweeps (fewer videos/buffers) for fast runs.
	Quick bool
	// Seed for determinism.
	Seed int64
	// Parallelism is the trial worker count handed to exp.Config: 0 and 1
	// run sequentially, negative means GOMAXPROCS. Exhibits are bit-identical
	// at any setting.
	Parallelism int
}

// Defaults fills unset fields.
func (p Params) Defaults() Params {
	if p.Trials == 0 {
		if p.Quick {
			p.Trials = 2
		} else {
			p.Trials = 10
		}
	}
	if p.Segments == 0 {
		if p.Quick {
			p.Segments = 8
		} else {
			p.Segments = 25
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

func (p Params) videos() []string {
	if p.Quick {
		return []string{"BBB", "ToS"}
	}
	return []string{"BBB", "ED", "Sintel", "ToS"}
}

func (p Params) buffers(full []int) []int {
	if p.Quick && len(full) > 2 {
		return []int{full[0], full[len(full)-1]}
	}
	return full
}

// Table is one exhibit's regenerated data.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f2(x float64) string   { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string   { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string   { return fmt.Sprintf("%.4f", x) }
func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func mbps(x float64) string { return fmt.Sprintf("%.2f Mbps", x/1e6) }

// cell builds an experiment config for the common sweep pattern.
func (p Params) cell(title string, sys exp.System, tr *trace.Trace, bufSegs int) exp.Config {
	return exp.Config{
		Title:          title,
		System:         sys,
		BufferSegments: bufSegs,
		Trace:          tr,
		Trials:         p.Trials,
		Segments:       p.Segments,
		Seed:           p.Seed,
		Metric:         qoe.SSIM,
		Parallelism:    p.Parallelism,
	}
}

// Generator produces one exhibit.
type Generator struct {
	ID   string
	Name string
	Run  func(Params) *Table
}

// All lists every exhibit generator in paper order.
func All() []Generator {
	return []Generator{
		{"Tab1", "Evaluation videos (Tab. 1)", Table1},
		{"Tab2", "Quality ladder (Tab. 2)", Table2},
		{"Tab3", "YouTube videos (Tab. 3)", Table3},
		{"Fig1", "Frame-drop tolerance CDFs (Fig. 1a–c)", Fig1},
		{"Fig1d", "Low-quality SSIM distributions (Fig. 1d)", Fig1d},
		{"Fig2a", "Droppable-frame positions (Fig. 2a)", Fig2a},
		{"Fig2b", "Ranked vs tail-only drops (Fig. 2b)", Fig2b},
		{"Fig2cd", "Virtual quality levels (Fig. 2c,d)", Fig2cd},
		{"Fig3", "Vanilla ABR over QUIC*: bufRatio (Fig. 3)", Fig3},
		{"Fig4", "Vanilla ABR over QUIC*: bitrate (Fig. 4)", Fig4},
		{"Fig5", "Vanilla ABR with cross traffic (Fig. 5)", Fig5},
		{"Fig6", "BOLA vs BETA vs VOXEL: bufRatio (Fig. 6)", Fig6},
		{"Fig7a", "QoE-metric-agnostic bufRatio (Fig. 7a)", Fig7a},
		{"Fig7bc", "SSIM and VMAF distributions (Fig. 7b,c)", Fig7bc},
		{"Fig7d", "Data skipped vs buffer (Fig. 7d)", Fig7d},
		{"Fig8", "VOXEL vs BOLA bitrates (Fig. 8)", Fig8},
		{"Fig9", "SSIM CDFs across scenarios (Fig. 9)", Fig9},
		{"Fig10", "BOLA vs BOLA-SSIM vs VOXEL over 3G (Fig. 10)", Fig10},
		{"Fig11", "Synthetic constant/step traces (Fig. 11a–c)", Fig11},
		{"Fig11d", "In-the-wild trials (Fig. 11d, 13)", Fig11d},
		{"Fig12", "VOXEL with cross traffic (Fig. 12)", Fig12},
		{"Fig14", "User-study MOS (Fig. 14, §5.3)", Fig14},
		{"Fig15", "Per-segment bitrate variation (Fig. 15)", Fig15},
		{"Fig16", "750-packet queues (Fig. 16)", Fig16},
		{"Fig17", "Untuned VOXEL (Fig. 17)", Fig17},
		{"Fig18ab", "FCC trace (Fig. 18a,b)", Fig18ab},
		{"Fig18cd", "Partial-reliability ablation (Fig. 18c,d)", Fig18cd},
		{"Fig19", "YouTube-set tolerance (Fig. 19)", Fig19},
		{"FigB1", "Delay-based CC on long queues (App. B extension)", FigB1},
		{"RetxResidual", "Selective-retransmission residual loss (§4.2)", SelectiveRetx},
		{"RefShares", "Referenced frames among drops (§3)", ReferencedShares},
		{"FigChaos", "QoE under impairment profiles + failover (robustness ext.)", FigChaos},
		{"FigSwarm", "Shared-bottleneck swarm: fairness and utilization vs N", FigSwarm},
		{"FigTimeline", "Per-trial playback timeline from obs telemetry", FigTimeline},
	}
}

// ByID finds a generator.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if strings.EqualFold(g.ID, id) {
			return g, true
		}
	}
	return Generator{}, false
}

// videoForTitle loads a title trimmed to the experiment's clip length.
func videoForTitle(name string, segments int) *video.Video {
	v := video.MustLoad(name)
	if segments > 0 && segments < v.Segments {
		v.Segments = segments
	}
	return v
}

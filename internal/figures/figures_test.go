package figures

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Params { return Params{Quick: true, Trials: 1, Segments: 5, Seed: 3}.Defaults() }

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v
}

func TestStaticTables(t *testing.T) {
	for _, g := range []Generator{
		{"Tab1", "", Table1}, {"Tab2", "", Table2}, {"Tab3", "", Table3},
	} {
		tab := g.Run(quick())
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", g.ID)
		}
		if out := tab.String(); !strings.Contains(out, tab.ID) {
			t.Errorf("%s: String() missing ID", g.ID)
		}
	}
	if len(Table2(quick()).Rows) != 13 {
		t.Error("Tab2 must list 13 rungs")
	}
	if len(Table3(quick()).Rows) != 10 {
		t.Error("Tab3 must list 10 clips")
	}
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1(quick())
	// Q12/0.99 medians should exceed Q9/0.99 medians per title.
	med := map[string]map[string]float64{}
	for _, r := range tab.Rows {
		if med[r[0]] == nil {
			med[r[0]] = map[string]float64{}
		}
		med[r[0]][r[1]] = parsePct(t, r[3])
	}
	for title, m := range med {
		if m["Q9/SSIM0.99"] > m["Q12/SSIM0.99"]+1 {
			t.Errorf("%s: Q9/0.99 median %.1f should collapse below Q12 %.1f",
				title, m["Q9/SSIM0.99"], m["Q12/SSIM0.99"])
		}
		if m["Q9/SSIM0.95"] < m["Q9/SSIM0.99"] {
			t.Errorf("%s: relaxing the target must not reduce tolerance", title)
		}
	}
}

func TestFig2bRankedWins(t *testing.T) {
	tab := Fig2b(quick())
	for _, r := range tab.Rows {
		ranked := parsePct(t, r[1])
		tail := parsePct(t, r[2])
		if ranked+1 < tail {
			t.Errorf("%s: ranked median %.1f%% below tail %.1f%%", r[0], ranked, tail)
		}
	}
}

func TestFig19Anchors(t *testing.T) {
	tab := Fig19(quick())
	vals := map[string]float64{}
	for _, r := range tab.Rows {
		vals[r[0]] = parsePct(t, r[1])
	}
	if vals["P9"] <= vals["P10"] {
		t.Errorf("P9 tolerance %.1f%% must exceed P10 %.1f%%", vals["P9"], vals["P10"])
	}
}

func TestFig6EndToEnd(t *testing.T) {
	tab := Fig6(quick())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Aggregate relation: VOXEL's total p90 bufRatio across cells should
	// not exceed BOLA's.
	var bola, vox float64
	for _, r := range tab.Rows {
		bola += parsePct(t, r[3])
		vox += parsePct(t, r[5])
	}
	if vox > bola+2 {
		t.Errorf("VOXEL total bufRatio %.1f should not exceed BOLA %.1f", vox, bola)
	}
}

// TestFig6GoldenTable pins the rendered Fig6 table to the exact bytes it
// produced before the transport hot path was rewritten (ordered in-flight
// tracking, buffer pooling). Fig6 runs full end-to-end streaming sessions
// through QUIC*, the player, and the ABR loop, so any nondeterminism or
// behavioral drift in the transport shows up here as a byte diff.
func TestFig6GoldenTable(t *testing.T) {
	p := Params{Quick: true, Trials: 2, Segments: 6, Seed: 1, Parallelism: 1}.Defaults()
	const golden = "== Fig6 — p90 bufRatio: BOLA vs BETA vs VOXEL ==\n" +
		"Trace        Video  Buf  BOLA   BETA   VOXEL\n" +
		"verizon-lte  BBB    1    15.5%  0.4%   8.3% \n" +
		"verizon-lte  BBB    7    0.0%   0.0%   0.0% \n" +
		"tmobile-lte  ToS    1    73.8%  22.3%  33.7%\n" +
		"tmobile-lte  ToS    7    23.4%  11.7%  1.3% \n" +
		"-- paper: VOXEL suffers 25–97% less rebuffering, down to 1-segment buffers\n"
	if got := Fig6(p).String(); got != golden {
		t.Errorf("Fig6 table drifted from the recorded golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestFig14Survey(t *testing.T) {
	tab := Fig14(quick())
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// At ultra-quick scale the preference can be noisy, but fluidity must
	// favour VOXEL (that is the mechanism the study confirms).
	for _, r := range tab.Rows {
		if r[0] == "fluidity MOS" {
			a, _ := strconv.ParseFloat(r[1], 64)
			b, _ := strconv.ParseFloat(r[2], 64)
			if b <= a {
				t.Errorf("VOXEL fluidity %v should beat BOLA %v", b, a)
			}
		}
	}
}

func TestExhibitParallelDeterminism(t *testing.T) {
	// A whole exhibit — many Run calls, shared manifest cache — must render
	// the identical table whether trials run sequentially or fanned out.
	p := quick()
	p.Trials = 2
	seq := p
	seq.Parallelism = 1
	par := p
	par.Parallelism = -1 // GOMAXPROCS
	for _, id := range []string{"Fig10", "Fig7a"} {
		g, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown exhibit %s", id)
		}
		a := g.Run(seq).String()
		b := g.Run(par).String()
		if a != b {
			t.Errorf("%s: parallel table differs from sequential:\n%s\nvs\n%s", id, a, b)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID should fail")
	}
	seen := map[string]bool{}
	for _, g := range All() {
		if seen[g.ID] {
			t.Fatalf("duplicate generator %s", g.ID)
		}
		seen[g.ID] = true
		if g.Run == nil {
			t.Fatalf("%s has no Run", g.ID)
		}
	}
	if len(All()) < 28 {
		t.Fatalf("only %d generators", len(All()))
	}
}

package figures

import (
	"fmt"
	"time"

	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/obs"
	"voxel/internal/trace"
)

// timelineBucket is the row granularity of the FigTimeline exhibit.
const timelineBucket = 10 * time.Second

// FigTimeline renders one telemetered trial as a playback timeline (not a
// paper exhibit — the obs-layer showcase): VOXEL streaming BBB over the
// T-Mobile trace through the bursty loss profile with a one-segment buffer,
// bucketed into 10-second rows of chosen quality, delivered segments,
// reported unreliable losses, rebuffer time, and abandonments. It is the
// figure-level consumer of the per-trial obs.Timeline the harness exports
// via Config.Telemetry.
func FigTimeline(p Params) *Table {
	p = p.Defaults()
	cfg := p.cell("BBB", exp.SysVoxel, trace.TMobile(), 1)
	cfg.Trials = 1 // one trial IS the exhibit
	cfg.Impairment = netem.ProfileBursty
	cfg.Telemetry = true
	agg := exp.Run(cfg)

	t := &Table{ID: "FigTimeline",
		Title:  "Per-trial playback timeline (VOXEL, BBB over T-Mobile, bursty profile)",
		Header: []string{"t", "Quality", "Segs done", "Loss rep.", "Rebuffer", "Abandons", "Events"},
		Notes:  fmt.Sprintf("from the obs timeline: %s", agg.Obs.Summary())}
	rep := timelineReport(agg)
	if rep == nil {
		t.AddRow("no telemetry collected", "-", "-", "-", "-", "-", "-")
		return t
	}

	type bucket struct {
		quality   int64 // last chosen rung (-1 = none yet)
		chosen    int
		done      int
		lossBytes int64
		rebufMs   float64
		abandons  int
		events    int
	}
	var buckets []bucket
	at := func(d time.Duration) *bucket {
		i := int(d / timelineBucket)
		for len(buckets) <= i {
			buckets = append(buckets, bucket{quality: -1})
		}
		return &buckets[i]
	}
	var rebufStart time.Duration
	rebuffering := false
	for _, ev := range rep.Events {
		b := at(ev.At)
		b.events++
		switch ev.Kind {
		case obs.EvSegmentChosen:
			b.quality = ev.B
			b.chosen++
		case obs.EvSegmentDone:
			b.done++
		case obs.EvLossReport:
			b.lossBytes += ev.C
		case obs.EvRebufferStart:
			rebufStart = ev.At
			rebuffering = true
		case obs.EvRebufferStop:
			if rebuffering {
				// Attribute the stall to every bucket the interval spans.
				for s := rebufStart; s < ev.At; {
					edge := (s/timelineBucket + 1) * timelineBucket
					if edge > ev.At {
						edge = ev.At
					}
					at(s).rebufMs += float64((edge - s) / time.Millisecond)
					s = edge
				}
				rebuffering = false
			}
		case obs.EvAbandonPartial, obs.EvAbandonRestart:
			b.abandons++
		}
	}

	quality := int64(-1)
	for i, b := range buckets {
		if b.quality >= 0 {
			quality = b.quality // carry the rung across quiet buckets
		} else {
			b.quality = quality
		}
		q := "-"
		if b.quality >= 0 {
			q = fmt.Sprintf("L%d", b.quality)
		}
		rebuf := "-"
		if b.rebufMs > 0 {
			rebuf = fmt.Sprintf("%.1fs", b.rebufMs/1000)
		}
		t.AddRow(
			fmt.Sprintf("%ds", i*int(timelineBucket/time.Second)),
			q,
			fmt.Sprintf("%d", b.done),
			fmt.Sprintf("%d KB", b.lossBytes/1000),
			rebuf,
			fmt.Sprintf("%d", b.abandons),
			fmt.Sprintf("%d", b.events),
		)
	}
	return t
}

// timelineReport picks the exhibit's trial report out of the aggregate.
func timelineReport(agg *exp.Aggregate) *obs.TrialReport {
	if agg.Obs == nil || len(agg.Obs.Trials) == 0 {
		return nil
	}
	return agg.Obs.Trials[0]
}

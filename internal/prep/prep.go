// Package prep implements the paper's offline content-preparation phase
// (§4.1): for every segment and quality it evaluates three candidate frame
// download orders, computes the mapping from bytes downloaded to the QoE
// score of the resulting partial segment, selects the ordering that reaches
// the required score with the fewest bytes, and emits the byte ranges and
// score tuples that enrich the DASH manifest (Listing 1).
//
// The three orderings:
//
//  1. Original — decode order as produced by the encoder; a premature stop
//     chops the segment tail.
//  2. Unreferenced frames last — frames without inbound references move to
//     the tail (closely resembling BETA's approach).
//  3. By inbound references — frames are ranked by how many frames depend
//     on them, directly or transitively; the tail holds the least-depended-
//     on frames. This is VOXEL's new ranking.
//
// I-frames always download first and, together with every frame's headers,
// travel reliably.
package prep

import (
	"fmt"
	"sort"

	"voxel/internal/qoe"
	"voxel/internal/video"
)

// Ordering selects one of the three §4.1 frame orders.
type Ordering int

// The candidate orderings.
const (
	OrderOriginal Ordering = iota
	OrderUnreferencedLast
	OrderByInboundRefs
)

func (o Ordering) String() string {
	switch o {
	case OrderOriginal:
		return "original"
	case OrderUnreferencedLast:
		return "unreferenced-last"
	default:
		return "inbound-refs"
	}
}

// Orderings lists all candidates in evaluation order.
func Orderings() []Ordering {
	return []Ordering{OrderOriginal, OrderUnreferencedLast, OrderByInboundRefs}
}

// Order returns the download order of frame indices for the segment under
// ordering o. The I-frame is always first; dropping proceeds from the tail.
// Unknown orderings are an error: plans are persisted, so a bad ordering
// value usually means a corrupt or newer plan file, not a programmer slip.
func Order(s *video.Segment, o Ordering) ([]int, error) {
	n := len(s.Frames)
	order := make([]int, 0, n)
	order = append(order, 0) // the I-frame
	rest := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		rest = append(rest, i)
	}
	switch o {
	case OrderOriginal:
		// decode order
	case OrderUnreferencedLast:
		sort.SliceStable(rest, func(a, b int) bool {
			ra, rb := s.Referenced(rest[a]), s.Referenced(rest[b])
			if ra != rb {
				return ra // referenced frames first
			}
			return rest[a] < rest[b]
		})
	case OrderByInboundRefs:
		trans := s.TransitiveDependents()
		sort.SliceStable(rest, func(a, b int) bool {
			ia, ib := rest[a], rest[b]
			if trans[ia] != trans[ib] {
				return trans[ia] > trans[ib] // most depended-on first
			}
			// Among equals (e.g. unreferenced Bs), keep the visually
			// costlier frames longer: higher motion earlier.
			ma, mb := s.Frames[ia].Motion, s.Frames[ib].Motion
			if ma != mb {
				return ma > mb
			}
			return ia < ib
		})
	default:
		return nil, fmt.Errorf("prep: unknown ordering %d (have %v)", o, Orderings())
	}
	return append(order, rest...), nil
}

// MustOrder is Order for orderings known to be valid (anything from
// Orderings()); it panics on error.
func MustOrder(s *video.Segment, o Ordering) []int {
	order, err := Order(s, o)
	if err != nil {
		panic(err)
	}
	return order
}

// QoEPoint is one tuple of the manifest's `ssims` attribute: downloading
// Bytes of the segment (in the plan's order) yields Frames complete frames
// and the given Score.
type QoEPoint struct {
	Score  float64
	Frames int // frames fully delivered, I-frame included
	Bytes  int // cumulative bytes: reliable part + kept frame bodies
}

// Plan is the offline analysis result for one segment at one quality.
type Plan struct {
	Title   string
	Index   int
	Quality video.Quality

	Ordering Ordering
	Order    []int
	// Points maps bytes downloaded to QoE, monotone nondecreasing in
	// Bytes. Points[len-1] is the full segment.
	Points []QoEPoint
	// ReliableSize is the I-frame plus all frame headers — always fetched
	// over the reliable stream.
	ReliableSize int
	// MinBytes is the smallest byte count whose score clears the lower
	// bound (the pristine score one rung down); clients may fetch more.
	MinBytes int
	// LowerBound is that bound.
	LowerBound float64
}

// Analyzer runs the offline preparation.
type Analyzer struct {
	Model  qoe.Model
	Metric qoe.Metric
}

// NewAnalyzer returns an Analyzer with the default QoE model and metric.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Model: qoe.DefaultModel, Metric: qoe.SSIM}
}

// reliableSize returns the byte count of the always-reliable portion.
func reliableSize(s *video.Segment) int {
	n := s.Frames[0].Size // the I-frame, in full
	for i := 1; i < len(s.Frames); i++ {
		n += s.Frames[i].HeaderSize
	}
	return n
}

// curve computes the QoE for keeping the first k frames of the order, for
// every k, along with the cumulative byte requirement.
func (a *Analyzer) curve(s *video.Segment, order []int) []QoEPoint {
	rel := reliableSize(s)
	points := make([]QoEPoint, 0, len(order))
	loss := make([]float64, len(s.Frames))
	// Start from "everything dropped except the I-frame".
	for i := 1; i < len(s.Frames); i++ {
		loss[i] = 1
	}
	bytes := rel
	points = append(points, QoEPoint{
		Score:  a.Model.Score(a.Metric, s, loss),
		Frames: 1,
		Bytes:  bytes,
	})
	for k := 1; k < len(order); k++ {
		f := order[k]
		loss[f] = 0
		bs, be := s.BodyRange(f)
		bytes += be - bs
		points = append(points, QoEPoint{
			Score:  a.Model.Score(a.Metric, s, loss),
			Frames: k + 1,
			Bytes:  bytes,
		})
	}
	return points
}

// CurveFor exposes the bytes→QoE curve for an explicit download order —
// used by the figure harness and by callers that want the raw mapping.
func (a *Analyzer) CurveFor(s *video.Segment, order []int) []QoEPoint {
	return a.curve(s, order)
}

// minBytesFor returns the smallest Bytes on the curve achieving at least
// target; ok is false when even the full segment misses the target.
func minBytesFor(points []QoEPoint, target float64) (int, bool) {
	// The curve is monotone nondecreasing in k for ranked orders, but we
	// scan for robustness (the original order need not be monotone).
	for _, p := range points {
		if p.Score >= target {
			return p.Bytes, true
		}
	}
	return 0, false
}

// Analyze runs the §4.1 procedure for one segment: evaluate the three
// orderings, find the smallest byte count clearing lowerBound under each,
// and pick the cheapest ordering.
func (a *Analyzer) Analyze(s *video.Segment, lowerBound float64) Plan {
	best := Plan{
		Title:        s.Title,
		Index:        s.Index,
		Quality:      s.Quality,
		ReliableSize: reliableSize(s),
		LowerBound:   lowerBound,
	}
	bestBytes := -1
	for _, o := range Orderings() {
		order := MustOrder(s, o)
		points := a.curve(s, order)
		mb, ok := minBytesFor(points, lowerBound)
		if !ok {
			mb = points[len(points)-1].Bytes // full segment still misses: take all
		}
		if bestBytes < 0 || mb < bestBytes {
			bestBytes = mb
			best.Ordering = o
			best.Order = order
			best.Points = points
			best.MinBytes = mb
		}
	}
	return best
}

// AnalyzeVideo prepares every segment of v at quality q. The lower bound
// for quality Qn is the pristine score at Qn−1 (0 for Q0), per §4.1.
func (a *Analyzer) AnalyzeVideo(v *video.Video, q video.Quality) []Plan {
	plans := make([]Plan, v.Segments)
	for i := 0; i < v.Segments; i++ {
		s := v.Segment(i, q)
		bound := 0.0
		if q > 0 {
			lower := v.Segment(i, q-1)
			bound = a.Model.Score(a.Metric, lower, qoe.PerfectDelivery(lower))
		}
		plans[i] = a.Analyze(s, bound)
	}
	return plans
}

// MaxDropFraction returns the largest fraction of frames (I-frame excluded
// from the droppable set, included in the denominator's complement — i.e.
// fraction of the 95 non-I frames) that can be dropped from the tail of
// the given ordering while the score stays at or above target.
func (a *Analyzer) MaxDropFraction(s *video.Segment, o Ordering, target float64) float64 {
	order := MustOrder(s, o)
	points := a.curve(s, order)
	// points[k].Frames = k+1 kept; dropping d = len(order)-1-k frames.
	// Find the smallest k with score >= target (curve is nondecreasing for
	// ranked orders; scan handles any shape).
	for k := 0; k < len(points); k++ {
		if points[k].Score >= target {
			dropped := len(order) - points[k].Frames
			return float64(dropped) / float64(len(order)-1)
		}
	}
	return 0
}

// DropSet returns the frame indices dropped at the segment's maximum
// tolerance for target under ordering o.
func (a *Analyzer) DropSet(s *video.Segment, o Ordering, target float64) []int {
	order := MustOrder(s, o)
	points := a.curve(s, order)
	for k := 0; k < len(points); k++ {
		if points[k].Score >= target {
			return append([]int(nil), order[points[k].Frames:]...)
		}
	}
	return nil
}

// ReferencedShare returns the fraction of the given drop set that consists
// of referenced frames — the §3 statistic (12.6%–30% across titles).
func ReferencedShare(s *video.Segment, drop []int) float64 {
	if len(drop) == 0 {
		return 0
	}
	ref := 0
	for _, i := range drop {
		if s.Referenced(i) {
			ref++
		}
	}
	return float64(ref) / float64(len(drop))
}

// BetaVirtualLevel computes BETA's single virtual quality level for a
// segment: the segment minus all unreferenced B-frames (the only frames
// BETA may drop), with its resulting score. The returned frames count is
// the number of frames kept.
func (a *Analyzer) BetaVirtualLevel(s *video.Segment) (bytes int, score float64, frames int) {
	loss := make([]float64, len(s.Frames))
	bytes = s.TotalBytes()
	frames = len(s.Frames)
	for i := 1; i < len(s.Frames); i++ {
		if s.Frames[i].Type == video.BFrame && !s.Referenced(i) {
			loss[i] = 1
			bs, be := s.BodyRange(i)
			bytes -= be - bs
			frames--
		}
	}
	return bytes, a.Model.Score(a.Metric, s, loss), frames
}

// ThinPoints reduces a QoE curve to at most n points for the manifest,
// always keeping the first and last and preferring evenly spaced scores.
func ThinPoints(points []QoEPoint, n int) []QoEPoint {
	if n <= 0 || len(points) <= n {
		return points
	}
	out := make([]QoEPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(points) - 1) / (n - 1)
		out = append(out, points[idx])
	}
	return out
}

// ReliableRanges returns the byte ranges fetched reliably: the I-frame in
// full plus every frame's headers, merged where adjacent.
func ReliableRanges(s *video.Segment) [][2]int {
	var ranges [][2]int
	is, ie := s.FrameRange(0)
	ranges = append(ranges, [2]int{is, ie})
	for i := 1; i < len(s.Frames); i++ {
		hs, he := s.HeaderRange(i)
		if last := &ranges[len(ranges)-1]; hs == (*last)[1] {
			(*last)[1] = he
		} else {
			ranges = append(ranges, [2]int{hs, he})
		}
	}
	return ranges
}

// UnreliableRanges returns the body byte ranges in download order (after
// the I-frame), i.e. the order a VOXEL client requests them over the
// unreliable stream.
func UnreliableRanges(s *video.Segment, order []int) [][2]int {
	ranges := make([][2]int, 0, len(order)-1)
	for _, f := range order[1:] {
		bs, be := s.BodyRange(f)
		if be > bs {
			ranges = append(ranges, [2]int{bs, be})
		}
	}
	return ranges
}

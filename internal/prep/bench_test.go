package prep

import (
	"testing"

	"voxel/internal/video"
)

func BenchmarkAnalyzeSegment(b *testing.B) {
	a := NewAnalyzer()
	s := video.MustLoad("BBB").Segment(3, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Analyze(s, 0.9935)
	}
}

func BenchmarkMaxDropFraction(b *testing.B) {
	a := NewAnalyzer()
	s := video.MustLoad("Sintel").Segment(7, 12)
	for i := 0; i < b.N; i++ {
		a.MaxDropFraction(s, OrderByInboundRefs, 0.99)
	}
}

package prep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/video"
)

func seg(title string, idx int, q video.Quality) *video.Segment {
	return video.MustLoad(title).Segment(idx, q)
}

func TestOrderIsPermutation(t *testing.T) {
	s := seg("BBB", 0, 12)
	for _, o := range Orderings() {
		order := MustOrder(s, o)
		if len(order) != video.FramesPerSeg {
			t.Fatalf("%v: %d entries", o, len(order))
		}
		if order[0] != 0 {
			t.Fatalf("%v: I-frame not first", o)
		}
		seen := make([]bool, video.FramesPerSeg)
		for _, f := range order {
			if seen[f] {
				t.Fatalf("%v: duplicate frame %d", o, f)
			}
			seen[f] = true
		}
	}
}

func TestOrderValidity(t *testing.T) {
	s := seg("BBB", 0, 12)
	cases := []struct {
		name    string
		o       Ordering
		wantErr bool
	}{
		{"original", OrderOriginal, false},
		{"unreferenced-last", OrderUnreferencedLast, false},
		{"inbound-refs", OrderByInboundRefs, false},
		{"negative", Ordering(-1), true},
		{"past-end", Ordering(len(Orderings())), true},
		{"corrupt", Ordering(97), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			order, err := Order(s, tc.o)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Order(%d): expected error, got order of %d frames", tc.o, len(order))
				}
				return
			}
			if err != nil {
				t.Fatalf("Order(%v): %v", tc.o, err)
			}
			if len(order) != video.FramesPerSeg || order[0] != 0 {
				t.Fatalf("Order(%v): bad order %v...", tc.o, order[:3])
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustOrder should panic on an unknown ordering")
		}
	}()
	MustOrder(s, Ordering(97))
}

func TestOrderOriginalIsDecodeOrder(t *testing.T) {
	s := seg("ToS", 3, 12)
	order := MustOrder(s, OrderOriginal)
	for i, f := range order {
		if f != i {
			t.Fatalf("original order perturbed at %d: %d", i, f)
		}
	}
}

func TestUnreferencedLastPutsUnreferencedAtTail(t *testing.T) {
	s := seg("BBB", 1, 12)
	order := MustOrder(s, OrderUnreferencedLast)
	// After the last referenced frame, only unreferenced frames may appear.
	seenUnref := false
	for _, f := range order[1:] {
		if !s.Referenced(f) {
			seenUnref = true
		} else if seenUnref {
			t.Fatalf("referenced frame %d appears after unreferenced frames", f)
		}
	}
	if !seenUnref {
		t.Fatal("no unreferenced frames found")
	}
}

func TestInboundRefsOrderRanksByTransitiveDeps(t *testing.T) {
	s := seg("Sintel", 2, 12)
	order := MustOrder(s, OrderByInboundRefs)
	trans := s.TransitiveDependents()
	for i := 2; i < len(order); i++ {
		if trans[order[i]] > trans[order[i-1]] {
			t.Fatalf("order not sorted by transitive deps at %d: %d > %d",
				i, trans[order[i]], trans[order[i-1]])
		}
	}
	// The tail should be dominated by unreferenced frames.
	tail := order[len(order)-10:]
	for _, f := range tail {
		if trans[f] != 0 {
			t.Fatalf("tail frame %d has %d transitive dependents", f, trans[f])
		}
	}
}

func TestCurveMonotoneForRankedOrder(t *testing.T) {
	a := NewAnalyzer()
	s := seg("BBB", 4, 12)
	points := a.curve(s, MustOrder(s, OrderByInboundRefs))
	for i := 1; i < len(points); i++ {
		if points[i].Score < points[i-1].Score-1e-9 {
			t.Fatalf("ranked curve not monotone at %d: %.6f < %.6f",
				i, points[i].Score, points[i-1].Score)
		}
		if points[i].Bytes <= points[i-1].Bytes {
			t.Fatalf("bytes not strictly increasing at %d", i)
		}
	}
	last := points[len(points)-1]
	if last.Frames != video.FramesPerSeg || last.Bytes != s.TotalBytes() {
		t.Fatalf("full point wrong: %+v vs total %d", last, s.TotalBytes())
	}
	if last.Score != a.Model.Score(a.Metric, s, qoe.PerfectDelivery(s)) {
		t.Fatal("full point score must equal pristine score")
	}
}

func TestRankedBeatsTailOrder(t *testing.T) {
	// Fig. 2b: ranked ordering tolerates far more drops than chopping the
	// decode-order tail, at the same SSIM target.
	a := NewAnalyzer()
	var rankedBetter, total int
	for idx := 0; idx < 30; idx++ {
		s := seg("BBB", idx, 12)
		ranked := a.MaxDropFraction(s, OrderByInboundRefs, 0.99)
		tail := a.MaxDropFraction(s, OrderOriginal, 0.99)
		if ranked >= tail {
			rankedBetter++
		}
		total++
	}
	if rankedBetter < total*9/10 {
		t.Fatalf("ranked ≥ tail in only %d/%d segments", rankedBetter, total)
	}
}

func TestRankedBeatsUnreferencedOnly(t *testing.T) {
	// VOXEL's ranking can also drop referenced frames, so its tolerance
	// must dominate the BETA-style order overall.
	a := NewAnalyzer()
	var sumRanked, sumUnref float64
	for idx := 0; idx < 30; idx++ {
		s := seg("Sintel", idx, 12)
		sumRanked += a.MaxDropFraction(s, OrderByInboundRefs, 0.99)
		sumUnref += a.MaxDropFraction(s, OrderUnreferencedLast, 0.99)
	}
	if sumRanked < sumUnref {
		t.Fatalf("ranked mean tolerance %.3f below unreferenced-last %.3f",
			sumRanked/30, sumUnref/30)
	}
}

func TestFig1aMedianTolerance(t *testing.T) {
	// §3: at Q12/SSIM 0.99, at least half the segments of each title
	// sustain a 10–20% frame loss. Allow a generous band around it.
	a := NewAnalyzer()
	for _, title := range video.TestTitles() {
		v := video.MustLoad(title)
		var fr []float64
		for idx := 0; idx < v.Segments; idx++ {
			fr = append(fr, a.MaxDropFraction(v.Segment(idx, 12), OrderByInboundRefs, 0.99))
		}
		med := stats.Percentile(fr, 50)
		if med < 0.05 {
			t.Errorf("%s: median tolerance %.3f too low (paper: ≥0.10)", title, med)
		}
	}
}

func TestToleranceCollapsesAtQ9(t *testing.T) {
	// Fig. 1b: at Q9 the base SSIM is already below 0.99 for most
	// segments, so tolerance vs 0.99 collapses.
	a := NewAnalyzer()
	v := video.MustLoad("ToS")
	var q12, q9 float64
	for idx := 0; idx < v.Segments; idx++ {
		q12 += a.MaxDropFraction(v.Segment(idx, 12), OrderByInboundRefs, 0.99)
		q9 += a.MaxDropFraction(v.Segment(idx, 9), OrderByInboundRefs, 0.99)
	}
	if q9 >= q12*0.5 {
		t.Fatalf("Q9 tolerance (%.3f) should collapse vs Q12 (%.3f)", q9/75, q12/75)
	}
}

func TestToleranceRecoversAt095(t *testing.T) {
	// Fig. 1c: lowering the target to 0.95 restores tolerance at Q9.
	a := NewAnalyzer()
	v := video.MustLoad("BBB")
	var at99, at95 float64
	for idx := 0; idx < v.Segments; idx++ {
		at99 += a.MaxDropFraction(v.Segment(idx, 9), OrderByInboundRefs, 0.99)
		at95 += a.MaxDropFraction(v.Segment(idx, 9), OrderByInboundRefs, 0.95)
	}
	if at95 <= at99 {
		t.Fatalf("target 0.95 tolerance (%.3f) should exceed 0.99 (%.3f)", at95/75, at99/75)
	}
	if at95/75 < 0.3 {
		t.Fatalf("tolerance at 0.95 = %.3f, want substantial", at95/75)
	}
}

func TestP9VsP10Tolerance(t *testing.T) {
	// Appendix C anchors.
	a := NewAnalyzer()
	p9 := video.MustLoad("P9")
	p10 := video.MustLoad("P10")
	var f9, f10 []float64
	for idx := 0; idx < p9.Segments; idx++ {
		f9 = append(f9, a.MaxDropFraction(p9.Segment(idx, 12), OrderByInboundRefs, 0.99))
		f10 = append(f10, a.MaxDropFraction(p10.Segment(idx, 12), OrderByInboundRefs, 0.99))
	}
	if stats.Percentile(f9, 50) < 0.14 {
		t.Errorf("P9 median tolerance %.3f, want ≥0.14", stats.Percentile(f9, 50))
	}
	if stats.Percentile(f10, 50) > 0.12 {
		t.Errorf("P10 median tolerance %.3f, want near zero", stats.Percentile(f10, 50))
	}
}

func TestDropSetIncludesReferencedFrames(t *testing.T) {
	// §3: a nontrivial share of droppable frames is referenced — VOXEL's
	// key advantage over BETA.
	a := NewAnalyzer()
	var shares []float64
	for _, title := range video.TestTitles() {
		v := video.MustLoad(title)
		for idx := 0; idx < 20; idx++ {
			s := v.Segment(idx, 12)
			drop := a.DropSet(s, OrderByInboundRefs, 0.95)
			if len(drop) > 0 {
				shares = append(shares, ReferencedShare(s, drop))
			}
		}
	}
	if len(shares) == 0 {
		t.Fatal("no drop sets found")
	}
	if m := stats.Mean(shares); m <= 0 {
		t.Fatalf("mean referenced share %.3f, want > 0", m)
	}
}

func TestAnalyzeSelectsCheapestOrdering(t *testing.T) {
	a := NewAnalyzer()
	s := seg("BBB", 5, 12)
	bound := 0.99
	plan := a.Analyze(s, bound)
	// Whatever was chosen must be at least as cheap as every alternative.
	for _, o := range Orderings() {
		points := a.curve(s, MustOrder(s, o))
		mb, ok := minBytesFor(points, bound)
		if !ok {
			continue
		}
		if mb < plan.MinBytes {
			t.Fatalf("ordering %v reaches bound with %d bytes < plan's %d (%v)",
				o, mb, plan.MinBytes, plan.Ordering)
		}
	}
	if plan.ReliableSize <= 0 || plan.ReliableSize >= s.TotalBytes() {
		t.Fatalf("reliable size %d out of range", plan.ReliableSize)
	}
}

func TestAnalyzeVideoUsesLowerRungBound(t *testing.T) {
	a := NewAnalyzer()
	v := video.MustLoad("ToS")
	v.Segments = 5 // keep the test fast
	plans := a.AnalyzeVideo(v, 12)
	for i, p := range plans {
		lower := v.Segment(i, 11)
		want := a.Model.Score(a.Metric, lower, qoe.PerfectDelivery(lower))
		if p.LowerBound != want {
			t.Fatalf("seg %d: bound %.4f, want %.4f", i, p.LowerBound, want)
		}
		if p.MinBytes > p.Points[len(p.Points)-1].Bytes {
			t.Fatalf("seg %d: MinBytes beyond full segment", i)
		}
	}
	// Q0 has no lower rung.
	v2 := video.MustLoad("ToS")
	v2.Segments = 2
	for _, p := range a.AnalyzeVideo(v2, 0) {
		if p.LowerBound != 0 {
			t.Fatal("Q0 bound must be 0")
		}
	}
}

func TestVirtualQualityBelowFullBitrate(t *testing.T) {
	// Fig. 2c/d: the Q12/0.99 virtual level needs fewer bytes than Q12 and
	// more than Q11 for most segments.
	a := NewAnalyzer()
	v := video.MustLoad("BBB")
	cheaper := 0
	for idx := 0; idx < 30; idx++ {
		s := v.Segment(idx, 12)
		points := a.curve(s, MustOrder(s, OrderByInboundRefs))
		mb, ok := minBytesFor(points, 0.99)
		if ok && mb < s.TotalBytes() {
			cheaper++
		}
	}
	if cheaper < 15 {
		t.Fatalf("virtual level cheaper than full in only %d/30 segments", cheaper)
	}
}

func TestThinPoints(t *testing.T) {
	points := make([]QoEPoint, 100)
	for i := range points {
		points[i] = QoEPoint{Score: float64(i), Frames: i + 1, Bytes: (i + 1) * 10}
	}
	thin := ThinPoints(points, 16)
	if len(thin) != 16 {
		t.Fatalf("got %d points", len(thin))
	}
	if thin[0] != points[0] || thin[15] != points[99] {
		t.Fatal("extremes must be kept")
	}
	if got := ThinPoints(points[:5], 16); len(got) != 5 {
		t.Fatal("short curves unchanged")
	}
}

func TestReliableRangesCoverHeadersAndIFrame(t *testing.T) {
	s := seg("ED", 7, 12)
	ranges := ReliableRanges(s)
	var total int
	for i, r := range ranges {
		if r[1] <= r[0] {
			t.Fatalf("empty range %v", r)
		}
		if i > 0 && r[0] < ranges[i-1][1] {
			t.Fatal("ranges overlap or unsorted")
		}
		total += r[1] - r[0]
	}
	want := reliableSize(s)
	if total != want {
		t.Fatalf("reliable ranges cover %d bytes, want %d", total, want)
	}
	// First range must start at 0 (the I-frame).
	if ranges[0][0] != 0 {
		t.Fatal("first reliable range must start at byte 0")
	}
}

func TestUnreliableRangesMatchOrder(t *testing.T) {
	s := seg("ED", 7, 12)
	order := MustOrder(s, OrderByInboundRefs)
	ranges := UnreliableRanges(s, order)
	if len(ranges) != len(order)-1 {
		t.Fatalf("%d ranges for %d frames", len(ranges), len(order)-1)
	}
	var total int
	for _, r := range ranges {
		total += r[1] - r[0]
	}
	if total+reliableSize(s) != s.TotalBytes() {
		t.Fatal("reliable + unreliable must cover the whole segment")
	}
}

// Property: for any segment/quality/ordering, MaxDropFraction is within
// [0,1] and nonincreasing in the target score.
func TestPropertyToleranceMonotoneInTarget(t *testing.T) {
	a := NewAnalyzer()
	v := video.MustLoad("ED")
	f := func(segRaw, qRaw, oRaw uint8, t1, t2 float64) bool {
		s := v.Segment(int(segRaw)%v.Segments, video.Quality(qRaw)%video.NumQualities)
		o := Orderings()[int(oRaw)%3]
		norm := func(x float64) float64 {
			if x != x || x < 0 {
				x = -x
			}
			for x > 1 {
				x /= 10
			}
			return x
		}
		t1, t2 = norm(t1), norm(t2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		lo := a.MaxDropFraction(s, o, t2)
		hi := a.MaxDropFraction(s, o, t1)
		return lo >= 0 && hi <= 1 && hi >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// Package repro defines the JSON crash artifact the chaos fuzz campaign
// writes for every failure it finds and shrinks. An artifact is a
// self-contained, deterministic description of one trial — the experiment
// configuration knobs, the failing trial's index within its sweep, and the
// violation it is expected to reproduce — small enough to commit next to a
// bug report and replay with `voxel-sim -repro file.json`.
//
// The package is pure data (stdlib JSON only) so every layer can produce
// or consume artifacts without import cycles; the mapping to a runnable
// exp.Config lives in internal/exp.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Artifact is one replayable crash case. Zero-valued fields take the
// experiment harness defaults, mirroring exp.Config.withDefaults, so a
// shrunk artifact stays minimal on disk.
type Artifact struct {
	Title      string  `json:"title"`
	System     string  `json:"system,omitempty"`
	Trace      string  `json:"trace,omitempty"`
	Metric     string  `json:"metric,omitempty"`
	Buffer     int     `json:"buffer,omitempty"`
	Segments   int     `json:"segments,omitempty"`
	Trials     int     `json:"trials,omitempty"`
	Trial      int     `json:"trial"`
	Seed       int64   `json:"seed,omitempty"`
	Queue      int     `json:"queue,omitempty"`
	CrossMbps  float64 `json:"cross_mbps,omitempty"`
	LinkMbps   float64 `json:"link_mbps,omitempty"`
	Sessions   int     `json:"sessions,omitempty"`
	Impairment string  `json:"impairment,omitempty"`
	Failover   bool    `json:"failover,omitempty"`
	CC         string  `json:"cc,omitempty"`
	// MaxSimTimeSec bounds the trial's virtual time (0 = harness default).
	MaxSimTimeSec float64 `json:"max_sim_time_sec,omitempty"`
	// Inject names a deliberate fault (exp.Config.Inject) when the case
	// exercises the failure pipeline itself rather than a found bug.
	Inject string `json:"inject,omitempty"`
	// Violation is the failure rule this artifact reproduces (an invariant
	// rule like "quic.byte-conservation", "watchdog.event-budget", or
	// "panic"). Replay verifies the same rule fires again.
	Violation string `json:"violation,omitempty"`
	// Detail preserves the original failure message for humans.
	Detail string `json:"detail,omitempty"`
}

// Encode renders the artifact as stable, indented JSON (trailing newline),
// so identical cases produce identical bytes and diff cleanly in review.
func (a *Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the artifact to path.
func (a *Artifact) Save(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads an artifact from path, rejecting unknown fields so a typo in
// a hand-edited case fails loudly instead of silently changing the repro.
func Load(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Decode parses an artifact from JSON bytes.
func Decode(b []byte) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("repro: %v", err)
	}
	if a.Title == "" {
		return nil, fmt.Errorf("repro: artifact missing title")
	}
	return &a, nil
}

package repro

import (
	"bytes"
	"path/filepath"
	"testing"
)

func sample() *Artifact {
	return &Artifact{
		Title:      "BBB",
		System:     "VOXEL",
		Trace:      "verizon",
		Segments:   6,
		Trials:     2,
		Trial:      1,
		Seed:       4242,
		Impairment: "flaky-wifi",
		Violation:  "quic.byte-conservation",
		Detail:     "sent 100 B != acked 90 B + lost 0 B + inflight 0 B",
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := sample()
	b, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
	// Stable bytes: encoding the decoded artifact reproduces the file.
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("encoding not stable:\n%s\nvs\n%s", b, b2)
	}
	if b[len(b)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.json")
	a := sample()
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("load mismatch: %+v", got)
	}
}

// Unknown fields mean a typo'd hand edit would silently change the repro;
// reject them loudly instead.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"title":"BBB","trial":0,"sead":7}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDecodeRequiresTitle(t *testing.T) {
	if _, err := Decode([]byte(`{"trial":0,"seed":7}`)); err == nil {
		t.Fatal("artifact without title accepted")
	}
}

// Zero-valued knobs stay off disk so shrunk artifacts read minimally.
func TestEncodeOmitsDefaults(t *testing.T) {
	b, err := (&Artifact{Title: "BBB"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"impairment", "failover", "cc", "sessions", "inject"} {
		if bytes.Contains(b, []byte(field)) {
			t.Fatalf("zero-valued %q serialized:\n%s", field, b)
		}
	}
}

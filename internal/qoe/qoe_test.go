package qoe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voxel/internal/video"
)

var m = DefaultModel

func countBelow(xs []float64, thresh float64) int {
	n := 0
	for _, x := range xs {
		if x < thresh {
			n++
		}
	}
	return n
}

func baseSSIMs(title string, q video.Quality) []float64 {
	v := video.MustLoad(title)
	out := make([]float64, v.Segments)
	for i := range out {
		out[i] = m.BaseSSIM(v.Segment(i, q))
	}
	return out
}

func TestQ12BaseSSIMExcellent(t *testing.T) {
	// At the top rung, encoding distortion must be imperceptible for most
	// segments so that frame drops are the binding constraint (Fig. 1a).
	for _, title := range video.TestTitles() {
		ss := baseSSIMs(title, 12)
		if n := countBelow(ss, 0.99); n > len(ss)/4 {
			t.Errorf("%s@Q12: %d/%d segments below SSIM 0.99, want few", title, n, len(ss))
		}
	}
}

func TestQ9BaseSSIMBelowExcellent(t *testing.T) {
	// Fig. 1d: 85% of BBB and 96% of ToS segments at Q9 score below 0.99.
	for _, title := range []string{"BBB", "ToS"} {
		ss := baseSSIMs(title, 9)
		if n := countBelow(ss, 0.99); n < len(ss)*6/10 {
			t.Errorf("%s@Q9: only %d/%d segments below 0.99, want most", title, n, len(ss))
		}
	}
}

func TestLadderMonotoneInQuality(t *testing.T) {
	v := video.MustLoad("BBB")
	for idx := 0; idx < 10; idx++ {
		prev := -1.0
		for q := video.Quality(0); q < video.NumQualities; q++ {
			s := m.BaseSSIM(v.Segment(idx, q))
			if s < prev-1e-9 {
				t.Fatalf("seg %d: SSIM decreased from %v to %v at %v", idx, prev, s, q)
			}
			prev = s
		}
	}
}

func TestQ6DistributionLowerThanQ9(t *testing.T) {
	q6 := baseSSIMs("ToS", 6)
	q9 := baseSSIMs("ToS", 9)
	var m6, m9 float64
	for i := range q6 {
		m6 += q6[i]
		m9 += q9[i]
	}
	if m6 >= m9 {
		t.Fatalf("Q6 mean %.4f should be below Q9 mean %.4f", m6/75, m9/75)
	}
}

func TestPerfectDeliveryEqualsBase(t *testing.T) {
	s := video.MustLoad("ED").Segment(3, 12)
	if got, want := m.SegmentSSIM(s, PerfectDelivery(s)), m.BaseSSIM(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("perfect delivery SSIM %v != base %v", got, want)
	}
}

func TestDroppingUnreferencedBCheaperThanP(t *testing.T) {
	s := video.MustLoad("BBB").Segment(5, 12)
	// Find an unreferenced B and a mid-segment P with similar motion.
	unrefB, pIdx := -1, -1
	for i, f := range s.Frames {
		if f.Type == video.BFrame && !s.Referenced(i) && unrefB < 0 {
			unrefB = i
		}
		if f.Type == video.PFrame && i > 8 && i < 48 && pIdx < 0 {
			pIdx = i
		}
	}
	if unrefB < 0 || pIdx < 0 {
		t.Fatal("fixture frames not found")
	}
	sB := m.DropSet(SSIM, s, []int{unrefB})
	sP := m.DropSet(SSIM, s, []int{pIdx})
	if sB <= sP {
		t.Fatalf("dropping unref B (%.5f) should hurt less than dropping P (%.5f)", sB, sP)
	}
}

func TestEarlyPWorseThanLateP(t *testing.T) {
	// Error propagation: an early P poisons the rest of the GOP chain.
	s := video.MustLoad("Sintel").Segment(7, 12)
	early := m.DropSet(SSIM, s, []int{4})
	late := m.DropSet(SSIM, s, []int{92})
	if early >= late {
		t.Fatalf("dropping P4 (%.5f) should hurt more than P92 (%.5f)", early, late)
	}
}

func TestIFrameLossCatastrophic(t *testing.T) {
	s := video.MustLoad("BBB").Segment(2, 12)
	withI := m.DropSet(SSIM, s, []int{0})
	base := m.BaseSSIM(s)
	if base-withI < 0.05 {
		t.Fatalf("losing the I-frame should be catastrophic: %.4f → %.4f", base, withI)
	}
}

func TestMoreLossLowerScore(t *testing.T) {
	s := video.MustLoad("ToS").Segment(11, 12)
	prev := m.BaseSSIM(s)
	drop := []int{}
	// Drop B frames one at a time; score must be nonincreasing.
	for i := 1; i < 96; i++ {
		if s.Frames[i].Type != video.BFrame {
			continue
		}
		drop = append(drop, i)
		got := m.DropSet(SSIM, s, drop)
		if got > prev+1e-12 {
			t.Fatalf("score increased after dropping frame %d: %.6f → %.6f", i, prev, got)
		}
		prev = got
	}
}

func TestPartialLossScales(t *testing.T) {
	s := video.MustLoad("ED").Segment(9, 12)
	loss := make([]float64, 96)
	loss[50] = 0.3
	partial := m.SegmentSSIM(s, loss)
	loss[50] = 1.0
	full := m.SegmentSSIM(s, loss)
	base := m.BaseSSIM(s)
	if !(full < partial && partial < base) {
		t.Fatalf("want full %.5f < partial %.5f < base %.5f", full, partial, base)
	}
}

func TestP9TolerantP10Fragile(t *testing.T) {
	// Appendix C: P9 (static unboxing) tolerates massive drops; P10
	// (continuous dance) tolerates almost none.
	dropAllB := func(title string) float64 {
		s := video.MustLoad(title).Segment(10, 12)
		var drop []int
		for i, f := range s.Frames {
			if f.Type == video.BFrame {
				drop = append(drop, i)
			}
		}
		return m.BaseSSIM(s) - m.DropSet(SSIM, s, drop)
	}
	d9, d10 := dropAllB("P9"), dropAllB("P10")
	if d9 >= d10 {
		t.Fatalf("P9 drop impact %.5f should be far below P10 %.5f", d9, d10)
	}
	if d9 > 0.004 {
		t.Errorf("P9 should barely notice losing all B frames, impact %.5f", d9)
	}
	if d10 < 0.01 {
		t.Errorf("P10 should hurt badly when losing all B frames, impact %.5f", d10)
	}
}

func TestVMAFAndPSNRMonotoneWithSSIM(t *testing.T) {
	s := video.MustLoad("BBB").Segment(4, 12)
	var drop []int
	type scores struct{ ssim, vmaf, psnr float64 }
	var prev *scores
	for i := 1; i < 96; i += 5 {
		drop = append(drop, i)
		cur := scores{
			m.DropSet(SSIM, s, drop),
			m.DropSet(VMAF, s, drop),
			m.DropSet(PSNR, s, drop),
		}
		if prev != nil {
			if (cur.ssim-prev.ssim)*(cur.vmaf-prev.vmaf) < 0 {
				t.Fatalf("VMAF not monotone with SSIM")
			}
			if (cur.ssim-prev.ssim)*(cur.psnr-prev.psnr) < 0 {
				t.Fatalf("PSNR not monotone with SSIM")
			}
		}
		prev = &cur
	}
}

func TestMetricScales(t *testing.T) {
	s := video.MustLoad("ToS").Segment(0, 12)
	none := PerfectDelivery(s)
	if v := m.Score(VMAF, s, none); v < 60 || v > 100 {
		t.Fatalf("VMAF at Q12 = %.1f, want high", v)
	}
	if p := m.Score(PSNR, s, none); p < 30 || p > psnrCap {
		t.Fatalf("PSNR at Q12 = %.1f dB, want 30–50", p)
	}
	low := video.MustLoad("ToS").Segment(0, 0)
	if hi, lo := m.Score(VMAF, s, none), m.Score(VMAF, low, PerfectDelivery(low)); hi <= lo {
		t.Fatalf("VMAF should punish Q0: %v vs %v", hi, lo)
	}
	if SSIM.Perfect() != 1 || VMAF.Perfect() != 100 || PSNR.Perfect() != psnrCap {
		t.Fatal("Perfect() values wrong")
	}
	if SSIM.String() != "SSIM" || VMAF.String() != "VMAF" || PSNR.String() != "PSNR" {
		t.Fatal("metric names wrong")
	}
}

// Property: score in valid range, and any loss vector scores ≤ base.
func TestPropertyScoreBounds(t *testing.T) {
	v := video.MustLoad("Sintel")
	f := func(segRaw, qRaw uint8, lossBits uint64, frac float64) bool {
		s := v.Segment(int(segRaw)%v.Segments, video.Quality(qRaw)%video.NumQualities)
		loss := make([]float64, 96)
		for i := 0; i < 64; i++ {
			if lossBits&(1<<uint(i)) != 0 {
				loss[i] = 1
			}
		}
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			frac = 0.5
		}
		loss[70] = math.Abs(math.Mod(frac, 1))
		got := m.SegmentSSIM(s, loss)
		return got >= 0 && got <= 1 && got <= m.BaseSSIM(s)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameErrorsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched loss vector")
		}
	}()
	s := video.MustLoad("BBB").Segment(0, 12)
	m.FrameErrors(s, make([]float64, 3))
}

// Package qoe models the perceptual-quality metrics (SSIM, VMAF, PSNR) the
// paper computes with FFmpeg against a pristine 4K reference.
//
// Without real decoded video, quality is modelled analytically in two
// parts, both documented in DESIGN.md:
//
//  1. Encoding distortion: a rate–distortion curve maps (segment bitrate,
//     content complexity) to a base score. It is calibrated to the paper's
//     anchor points — Q12 segments sit at SSIM ≥ 0.99, most Q9 segments
//     fall just below 0.99 (Fig. 1d), and lower rungs degrade further.
//  2. Loss distortion: a dropped or partially delivered frame is concealed
//     (previous-frame copy / zero-padding, §4.2), contributing an error
//     proportional to the frame's motion; the error propagates along the
//     H.264 reference graph with decay, so losing a heavily referenced
//     frame hurts far more than losing an unreferenced B frame.
//
// Segment scores are the mean over frames, matching the paper's use of the
// segment-average SSIM.
package qoe

import (
	"fmt"
	"math"
	"sync"

	"voxel/internal/video"
)

// errsPool recycles per-frame error scratch across scoring calls. QoE is
// evaluated once per candidate delivery state inside the ABR loop, so the
// per-call []float64 dominated the package's allocations.
var errsPool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

// getErrs returns a zeroed length-n scratch slice from the pool.
//
//voxel:pool-get put=putErrs
func getErrs(n int) *[]float64 {
	p := errsPool.Get().(*[]float64)
	s := *p
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*p = s
	return p
}

func putErrs(p *[]float64) { errsPool.Put(p) }

// Metric selects the quality metric; VOXEL is QoE-metric-agnostic (§4.3)
// and the evaluation repeats key experiments under all three.
type Metric int

// The supported metrics.
const (
	SSIM Metric = iota
	VMAF
	PSNR
)

func (m Metric) String() string {
	switch m {
	case SSIM:
		return "SSIM"
	case VMAF:
		return "VMAF"
	default:
		return "PSNR"
	}
}

// Perfect returns the metric's perfect score (1.0, 100, or the PSNR cap).
func (m Metric) Perfect() float64 {
	switch m {
	case SSIM:
		return 1.0
	case VMAF:
		return 100.0
	default:
		return psnrCap
	}
}

// Model holds the calibration constants. The zero value is unusable; use
// DefaultModel.
type Model struct {
	// EncCoeff scales encoding distortion: D = EncCoeff·complexity/Mbps.
	EncCoeff float64
	// ConcealErr scales the error of a fully concealed (dropped) frame:
	// err = ConcealErr·motion.
	ConcealErr float64
	// IConcealErr is the error of a lost I-frame: with nothing to predict
	// from, the decoder can only repeat the previous segment's content, so
	// the damage is largely motion-independent.
	IConcealErr float64
	// Propagation is the per-hop decay of errors along the reference graph.
	Propagation float64
	// ErrCap bounds the distortion a single frame can contribute.
	ErrCap float64
}

// DefaultModel is the calibration used throughout the evaluation.
var DefaultModel = Model{
	EncCoeff:    0.09,
	ConcealErr:  0.15,
	IConcealErr: 0.3,
	Propagation: 0.8,
	ErrCap:      0.4,
}

// BaseDistortion returns the encoding-only distortion of a segment
// (1 − base SSIM).
func (m Model) BaseDistortion(s *video.Segment) float64 {
	mbps := s.Bitrate() / 1e6
	if mbps < 0.01 {
		mbps = 0.01
	}
	d := m.EncCoeff * s.Complexity / mbps
	if d > 0.9 {
		d = 0.9
	}
	return d
}

// BaseSSIM returns the segment's SSIM when delivered in full.
func (m Model) BaseSSIM(s *video.Segment) float64 {
	return 1 - m.BaseDistortion(s)
}

// FrameErrors computes the per-frame loss distortion for a delivery state.
// frameLoss[i] is the fraction of frame i's body that is missing (0 =
// intact, 1 = fully dropped). Errors propagate along the reference graph in
// decode order with decay; a frame inheriting error from multiple
// references takes the worst one.
func (m Model) FrameErrors(s *video.Segment, frameLoss []float64) []float64 {
	errs := make([]float64, len(s.Frames))
	m.frameErrorsInto(errs, s, frameLoss)
	return errs
}

// frameErrorsInto is FrameErrors writing into caller-provided scratch;
// errs must have length len(s.Frames) and be zeroed.
func (m Model) frameErrorsInto(errs []float64, s *video.Segment, frameLoss []float64) {
	n := len(s.Frames)
	if len(frameLoss) != n {
		panic(fmt.Sprintf("qoe: frameLoss has %d entries for %d frames", len(frameLoss), n))
	}
	// Two passes handle forward references (B frames referencing the next
	// anchor): anchors first in index order, then B frames.
	eval := func(i int) {
		f := s.Frames[i]
		loss := frameLoss[i]
		if loss < 0 {
			loss = 0
		}
		if loss > 1 {
			loss = 1
		}
		own := m.ConcealErr * f.Motion * loss
		if f.Type == video.IFrame {
			own = (m.IConcealErr + m.ConcealErr*f.Motion) * loss
		}
		inherited := 0.0
		for _, r := range f.Refs {
			if e := errs[r] * m.Propagation; e > inherited {
				inherited = e
			}
		}
		e := own + inherited
		if e > m.ErrCap {
			e = m.ErrCap
		}
		errs[i] = e
	}
	for i := 0; i < n; i++ {
		if s.Frames[i].Type != video.BFrame {
			eval(i)
		}
	}
	// Referenced (pyramid) B frames before their dependents: middle Bs sit
	// at i%4==2, outer Bs at 1 and 3.
	for i := 0; i < n; i++ {
		if s.Frames[i].Type == video.BFrame && i%4 == 2 {
			eval(i)
		}
	}
	for i := 0; i < n; i++ {
		if s.Frames[i].Type == video.BFrame && i%4 != 2 {
			eval(i)
		}
	}
}

// SegmentSSIM returns the segment SSIM for a delivery state (see
// FrameErrors for frameLoss semantics).
//
//voxel:allocfree
func (m Model) SegmentSSIM(s *video.Segment, frameLoss []float64) float64 {
	base := m.BaseSSIM(s)
	scratch := getErrs(len(s.Frames))
	defer putErrs(scratch)
	errs := *scratch
	m.frameErrorsInto(errs, s, frameLoss)
	var sum float64
	for _, e := range errs {
		v := base - e
		if v < 0 {
			v = 0
		}
		sum += v
	}
	return sum / float64(len(errs))
}

// Score evaluates the segment under the chosen metric for a delivery state.
// VMAF and PSNR are monotone transforms of the same underlying distortion,
// with their own curvature, mirroring how the paper treats VOXEL as
// QoE-metric-agnostic.
//
//voxel:allocfree
func (m Model) Score(metric Metric, s *video.Segment, frameLoss []float64) float64 {
	base := m.BaseDistortion(s)
	scratch := getErrs(len(s.Frames))
	defer putErrs(scratch)
	errs := *scratch
	m.frameErrorsInto(errs, s, frameLoss)
	switch metric {
	case SSIM:
		var sum float64
		for _, e := range errs {
			v := 1 - base - e
			if v < 0 {
				v = 0
			}
			sum += v
		}
		return sum / float64(len(errs))
	case VMAF:
		var sum float64
		for _, e := range errs {
			sum += vmafFromDistortion(base + e)
		}
		return sum / float64(len(errs))
	default:
		var sum float64
		for _, e := range errs {
			sum += psnrFromDistortion(base + e)
		}
		return sum / float64(len(errs))
	}
}

// PerfectDelivery returns a zero frame-loss vector for the segment.
func PerfectDelivery(s *video.Segment) []float64 {
	return make([]float64, len(s.Frames))
}

const psnrCap = 50.0

// vmafFromDistortion maps total distortion to the 0–100 VMAF scale with a
// steeper high-quality knee than SSIM, echoing VMAF's sensitivity.
func vmafFromDistortion(d float64) float64 {
	if d < 0 {
		d = 0
	}
	v := 100 * math.Exp(-28*d)
	if v < 0 {
		v = 0
	}
	return v
}

// psnrFromDistortion maps distortion to dB, capped at 50 dB for pristine
// frames.
func psnrFromDistortion(d float64) float64 {
	if d < 1e-6 {
		return psnrCap
	}
	p := psnrCap + 10*math.Log10(1/(1+2500*d))
	if p < 5 {
		p = 5
	}
	return p
}

// DropSet evaluates the common case "frames in drop are missing entirely":
// it builds the loss vector and returns the metric score.
//
//voxel:allocfree
func (m Model) DropSet(metric Metric, s *video.Segment, drop []int) float64 {
	scratch := getErrs(len(s.Frames))
	defer putErrs(scratch)
	loss := *scratch
	for _, i := range drop {
		loss[i] = 1
	}
	return m.Score(metric, s, loss)
}

package qoe

import (
	"testing"

	"voxel/internal/video"
)

func BenchmarkSegmentSSIM(b *testing.B) {
	s := video.MustLoad("BBB").Segment(0, 12)
	loss := make([]float64, len(s.Frames))
	for i := 20; i < 60; i++ {
		loss[i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultModel.SegmentSSIM(s, loss)
	}
}

func BenchmarkScoreAllMetrics(b *testing.B) {
	s := video.MustLoad("ToS").Segment(5, 9)
	loss := make([]float64, len(s.Frames))
	loss[50] = 0.5
	for i := 0; i < b.N; i++ {
		DefaultModel.Score(SSIM, s, loss)
		DefaultModel.Score(VMAF, s, loss)
		DefaultModel.Score(PSNR, s, loss)
	}
}

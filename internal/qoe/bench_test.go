package qoe

import (
	"testing"

	"voxel/internal/video"
)

func BenchmarkSegmentSSIM(b *testing.B) {
	s := video.MustLoad("BBB").Segment(0, 12)
	loss := make([]float64, len(s.Frames))
	for i := 20; i < 60; i++ {
		loss[i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultModel.SegmentSSIM(s, loss)
	}
}

func BenchmarkScoreAllMetrics(b *testing.B) {
	s := video.MustLoad("ToS").Segment(5, 9)
	loss := make([]float64, len(s.Frames))
	loss[50] = 0.5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultModel.Score(SSIM, s, loss)
		DefaultModel.Score(VMAF, s, loss)
		DefaultModel.Score(PSNR, s, loss)
	}
}

// BenchmarkFrameErrorsAlloc isolates the loss-distortion pass that the ABR
// decision loop re-evaluates for every candidate delivery state. The scoring
// entry points must stay allocation-free on the steady path.
func BenchmarkFrameErrorsAlloc(b *testing.B) {
	s := video.MustLoad("BBB").Segment(3, 10)
	loss := make([]float64, len(s.Frames))
	for i := 10; i < 30; i++ {
		loss[i] = 0.7
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultModel.SegmentSSIM(s, loss)
	}
}

package voxel

import (
	"testing"

	"voxel/internal/survey"
)

func TestLoadVideoFacade(t *testing.T) {
	v, err := LoadVideo("BBB")
	if err != nil || v.Title != "BBB" {
		t.Fatalf("LoadVideo: %v", err)
	}
	if _, err := LoadVideo("nope"); err == nil {
		t.Fatal("unknown title should fail")
	}
	if len(Titles()) != 4 || len(YouTubeTitles()) != 10 {
		t.Fatal("catalog sizes wrong")
	}
}

func TestLoadTraceFacade(t *testing.T) {
	for _, n := range TraceNames() {
		if _, err := LoadTrace(n); err != nil {
			t.Fatalf("LoadTrace(%s): %v", n, err)
		}
	}
}

func TestPrepareManifestFacade(t *testing.T) {
	v, _ := LoadVideo("ToS")
	v.Segments = 3
	m := PrepareManifest(v, SSIM, 8)
	if m.NumSegments() != 3 {
		t.Fatalf("segments %d", m.NumSegments())
	}
	if !m.Segment(12, 0).Voxel() {
		t.Fatal("manifest should be enriched")
	}
}

func TestDropToleranceFacade(t *testing.T) {
	v, _ := LoadVideo("P9")
	v.Segments = 5
	tol := DropTolerance(v, 12, 0.99)
	if len(tol) != 5 {
		t.Fatalf("%d entries", len(tol))
	}
	for _, x := range tol {
		if x < 0 || x > 1 {
			t.Fatalf("tolerance %v out of range", x)
		}
	}
}

func TestSessionFacade(t *testing.T) {
	tr, _ := LoadTrace("verizon")
	agg, _, err := New("BBB",
		WithSystem(VOXEL),
		WithTrace(tr),
		WithBuffer(2),
		WithTrials(1),
		WithSegments(4),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Trials) != 1 || !agg.Trials[0].Completed {
		t.Fatal("session run did not complete")
	}
	sum := Summarize(agg.BufRatios)
	if sum.N != 1 {
		t.Fatal("summary wrong")
	}
	if _, _, err := New("").Run(); err == nil {
		t.Fatal("missing title should fail")
	}
}

func TestSurveyFacade(t *testing.T) {
	b, v := survey.PaperClips()
	out := RunSurvey(54, 1, b, v)
	if out.PreferB <= 0.5 {
		t.Fatalf("preference %v", out.PreferB)
	}
}

func TestClipFromAggregate(t *testing.T) {
	tr, _ := LoadTrace("3g")
	agg, _, err := New("ToS", WithSystem(BOLA), WithTrace(tr),
		WithBuffer(1), WithTrials(1), WithSegments(4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	c := ClipFromAggregate(agg)
	if c.MeanScore <= 0 || c.MeanScore > 1 {
		t.Fatalf("clip score %v", c.MeanScore)
	}
}

// Command voxel-traces inspects the synthetic bandwidth traces: summary
// statistics, an ASCII preview, and CSV export of per-second samples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"voxel/internal/stats"
	"voxel/internal/trace"
)

func main() {
	name := flag.String("name", "", "dump one trace (tmobile, verizon, att, 3g, fcc, wild)")
	csv := flag.Bool("csv", false, "emit per-second samples as CSV (with -name or -load)")
	load := flag.String("load", "", "load a trace from a second,mbps CSV file (the -csv format) instead of -name")
	riiser := flag.Int("riiser", 0, "also summarize N Riiser 3G commute traces")
	flag.Parse()

	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voxel-traces:", err)
			os.Exit(1)
		}
		tr, err := trace.ParseCSV(*load, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voxel-traces:", err)
			os.Exit(1)
		}
		if *csv {
			emitCSV(tr)
			return
		}
		describe(tr)
		return
	}

	if *name != "" {
		tr, err := trace.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voxel-traces:", err)
			os.Exit(1)
		}
		if *csv {
			emitCSV(tr)
			return
		}
		describe(tr)
		return
	}

	fmt.Printf("%-18s %10s %10s %8s\n", "trace", "mean", "stddev", "length")
	for _, n := range trace.Names() {
		tr, _ := trace.ByName(n)
		fmt.Printf("%-18s %7.2f Mb %7.2f Mb %7.0fs\n",
			tr.Name(), tr.Mean()/1e6, tr.StdDev()/1e6, tr.Duration().Seconds())
	}
	if *riiser > 0 {
		var means []float64
		for _, tr := range trace.Riiser3GSet(*riiser) {
			means = append(means, tr.Mean()/1e6)
		}
		s := stats.Summarize(means)
		fmt.Printf("\nriiser-3g set (%d traces): mean of means %.2f Mbps, range %.2f–%.2f Mbps\n",
			*riiser, s.Mean, s.Min, s.Max)
	}
}

// emitCSV prints the trace in the second,mbps format ParseCSV reads back.
func emitCSV(tr *trace.Trace) {
	fmt.Println("second,mbps")
	for i, v := range tr.Samples() {
		fmt.Printf("%d,%.3f\n", i, v/1e6)
	}
}

func describe(tr *trace.Trace) {
	fmt.Printf("%s: mean %.2f Mbps, stddev %.2f Mbps, %d samples\n",
		tr.Name(), tr.Mean()/1e6, tr.StdDev()/1e6, len(tr.Samples()))
	// ASCII preview: 60 columns, normalized to the max rate.
	samples := tr.Samples()
	maxV := stats.Max(samples)
	if maxV <= 0 {
		return
	}
	const width, height = 72, 10
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		idx := x * (len(samples) - 1) / (width - 1)
		h := int(samples[idx] / maxV * float64(height-1))
		for y := 0; y <= h; y++ {
			grid[height-1-y][x] = '#'
		}
	}
	fmt.Printf("%.1f Mbps\n", maxV/1e6)
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Printf("0%s%.0fs\n", strings.Repeat(" ", width-6), tr.Duration().Seconds())
}

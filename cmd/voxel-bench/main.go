// Command voxel-bench regenerates every table and figure of the paper's
// evaluation and prints them (optionally writing a Markdown results file
// consumed by EXPERIMENTS.md). Scale with -trials and -segments; the paper
// used 30 trials over 75-segment clips. -parallel fans trials out across
// worker goroutines; results are bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"voxel/internal/exp"
	"voxel/internal/figures"
	"voxel/internal/profiling"
	"voxel/internal/sweep"
)

func main() {
	trials := flag.Int("trials", 5, "trials per experiment cell (paper: 30)")
	segments := flag.Int("segments", 25, "segments per clip (paper: 75)")
	quick := flag.Bool("quick", false, "reduced sweeps (fewer videos/buffers)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"concurrent trial workers per exhibit (1 = sequential; results are identical either way)")
	only := flag.String("only", "", "comma-separated exhibit IDs (e.g. Fig6,Fig10)")
	shardSpec := flag.String("shard", "",
		"run only exhibit shard i of n (\"i/n\"): the k-th selected exhibit runs when k ≡ i (mod n); every exhibit is deterministic on its own, so shard outputs concatenate")
	list := flag.Bool("list", false, "list exhibit IDs and exit")
	out := flag.String("out", "", "also write the tables to this Markdown file (flushed after each exhibit)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench: profile:", err)
		}
	}()

	if *list {
		for _, g := range figures.All() {
			fmt.Printf("%-14s %s\n", g.ID, g.Name)
		}
		return
	}

	params := figures.Params{
		Trials:      *trials,
		Segments:    *segments,
		Quick:       *quick,
		Seed:        1,
		Parallelism: *parallel,
	}.Defaults()

	var selected []figures.Generator
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			g, ok := figures.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "voxel-bench: unknown exhibit %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, g)
		}
	} else {
		selected = figures.All()
	}
	if *shardSpec != "" {
		shard, err := sweep.ParseShard(*shardSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench:", err)
			os.Exit(1)
		}
		var mine []figures.Generator
		for k, g := range selected {
			if k%shard.Count == shard.Index {
				mine = append(mine, g)
			}
		}
		fmt.Printf("shard %s: %d of %d exhibits\n", shard, len(mine), len(selected))
		selected = mine
	}

	// Open the results file up front and flush after every exhibit, so an
	// interrupt or panic mid-sweep keeps everything finished so far.
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench:", err)
			os.Exit(1)
		}
		outFile = f
	}
	emit := func(s string) {
		if outFile == nil {
			return
		}
		if _, err := outFile.WriteString(s); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench:", err)
			os.Exit(1)
		}
		outFile.Sync()
	}
	emit(fmt.Sprintf("# voxel-bench results\n\ntrials=%d segments=%d quick=%v parallel=%d generated=%s\n\n",
		params.Trials, params.Segments, params.Quick, params.Parallelism,
		time.Now().UTC().Format(time.RFC3339)))

	// The figure generators consume Aggregates internally, so trial failures
	// are collected through the exp.FailureHook side channel: every exhibit
	// still renders from its surviving trials, and the failures print at the
	// end with replay commands and a nonzero exit.
	var (
		failMu sync.Mutex
		failed []exp.TrialError
	)
	exp.FailureHook = func(te *exp.TrialError) {
		failMu.Lock()
		failed = append(failed, *te)
		failMu.Unlock()
	}

	start := time.Now()
	for _, g := range selected {
		t0 := time.Now()
		tab := g.Run(params)
		fmt.Print(tab.String())
		fmt.Printf("   [%s in %v]\n\n", g.ID, time.Since(t0).Round(time.Millisecond))
		var b strings.Builder
		writeMarkdown(&b, tab)
		emit(b.String())
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Second))

	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "\nvoxel-bench: %d trial(s) FAILED during the sweeps:\n", len(failed))
		for i := range failed {
			te := &failed[i]
			fmt.Fprintf(os.Stderr, "  trial %d (seed %d) at virtual %v: %s — %s\n",
				te.Trial, te.Seed, te.Clock, te.Rule, te.Msg)
			fmt.Fprintf(os.Stderr, "    replay: %s\n", te.ReplayCommand())
		}
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-bench: profile:", err)
		}
		os.Exit(1)
	}
}

func writeMarkdown(b *strings.Builder, t *figures.Table) {
	fmt.Fprintf(b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(b, "| %s |\n", strings.Join(t.Header, " | "))
	fmt.Fprintf(b, "|%s\n", strings.Repeat("---|", len(t.Header)))
	for _, r := range t.Rows {
		fmt.Fprintf(b, "| %s |\n", strings.Join(r, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(b, "\n*%s*\n", t.Notes)
	}
	fmt.Fprintln(b)
}

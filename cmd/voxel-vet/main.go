// voxel-vet is the multichecker driver for the internal/analysis suite:
// it loads the requested packages (tests included), runs every analyzer
// that gates each package, and exits nonzero on any diagnostic. CI runs
// it as a hard gate next to go vet and staticcheck.
//
// Usage:
//
//	voxel-vet [-cache dir] [packages]
//
// With no arguments it checks ./... . The optional -cache directory
// memoizes per-package results ("facts") keyed by a content hash of the
// package's files, its module-local dependency closure, the Go version,
// and the analyzer suite version, so unchanged packages replay their
// verdict without re-typechecking — the CI lint job persists this
// directory between runs.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"voxel/internal/analysis"
)

func main() {
	cacheDir := flag.String("cache", "", "directory for memoized per-package results (empty = no cache)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: voxel-vet [-cache dir] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	listed, err := analysis.List(patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	var cache *factCache
	if *cacheDir != "" {
		cache, err = newFactCache(*cacheDir, listed)
		if err != nil {
			fatalf("fact cache: %v", err)
		}
	}

	loader := analysis.NewLoader()
	analyzers := analysis.Analyzers()
	bad := 0
	for _, lp := range listed {
		var diags []analysis.Diagnostic
		if cached, ok := cache.lookup(lp.ImportPath); ok {
			diags = cached
		} else {
			units, err := loader.Units(lp)
			if err != nil {
				fatalf("%v", err)
			}
			for _, u := range units {
				diags = append(diags, analysis.RunSuite(u, analyzers)...)
			}
			cache.store(lp.ImportPath, diags)
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "voxel-vet: %d diagnostic(s)\n", bad)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "voxel-vet: "+format+"\n", args...)
	os.Exit(2)
}

// factCache memoizes per-package diagnostics. The key folds in the
// package's own files (tests included), the content hashes of its
// module-local import closure, the Go version, and the suite version —
// any edit that could change a verdict changes the key.
type factCache struct {
	dir  string
	keys map[string]string // import path → content key
}

func newFactCache(dir string, targets []*analysis.ListedPackage) (*factCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Hash the whole module once: the closure walk below needs Dir and
	// file lists for dependencies that may not be analysis targets.
	all, err := analysis.List("./...")
	if err != nil {
		return nil, err
	}
	byPath := map[string]*analysis.ListedPackage{}
	for _, p := range all {
		byPath[p.ImportPath] = p
	}
	for _, p := range targets {
		byPath[p.ImportPath] = p
	}
	own := map[string]string{}
	for path, p := range byPath {
		h, err := hashFiles(p.Dir, p.GoFiles, p.TestGoFiles, p.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		own[path] = h
	}
	c := &factCache{dir: dir, keys: map[string]string{}}
	for _, p := range targets {
		hash := sha256.New()
		fmt.Fprintf(hash, "%s|%s|%s\n", analysis.SuiteVersion, runtime.Version(), p.ImportPath)
		closure := moduleClosure(p, byPath)
		sort.Strings(closure)
		for _, dep := range closure {
			fmt.Fprintf(hash, "%s=%s\n", dep, own[dep])
		}
		c.keys[p.ImportPath] = hex.EncodeToString(hash.Sum(nil))
	}
	return c, nil
}

// moduleClosure returns the package plus its transitive module-local
// imports, including the direct imports of its test files.
func moduleClosure(p *analysis.ListedPackage, byPath map[string]*analysis.ListedPackage) []string {
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		dep, ok := byPath[path]
		if !ok {
			return // stdlib or out-of-module: covered by the Go version
		}
		seen[path] = true
		for _, imp := range dep.Imports {
			visit(imp)
		}
	}
	visit(p.ImportPath)
	for _, imp := range append(append([]string(nil), p.TestImports...), p.XTestImports...) {
		visit(imp)
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	return out
}

func hashFiles(dir string, lists ...[]string) (string, error) {
	h := sha256.New()
	for _, list := range lists {
		for _, name := range list {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "%s %d\n", name, len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the persisted verdict for one package content key.
type cacheEntry struct {
	Key   string                `json:"key"`
	Diags []analysis.Diagnostic `json:"diags,omitempty"`
}

func (c *factCache) path(importPath string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(importPath, "/", "_")+".json")
}

func (c *factCache) lookup(importPath string) ([]analysis.Diagnostic, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(importPath))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != c.keys[importPath] {
		return nil, false
	}
	return e.Diags, true
}

func (c *factCache) store(importPath string, diags []analysis.Diagnostic) {
	if c == nil {
		return
	}
	e := cacheEntry{Key: c.keys[importPath], Diags: diags}
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return
	}
	_ = os.WriteFile(c.path(importPath), data, 0o644) // best-effort: a cold cache only costs time
}

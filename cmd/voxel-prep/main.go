// Command voxel-prep runs VOXEL's offline content preparation (§4.1) for a
// title: it analyzes frame importance for every segment and quality,
// selects the cheapest ordering per segment, and writes the enriched DASH
// manifest. It prints summary statistics: chosen-ordering histogram,
// drop-tolerance quartiles, and the manifest size overhead.
package main

import (
	"flag"
	"fmt"
	"os"

	"voxel/internal/dash"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/video"
)

func main() {
	title := flag.String("title", "BBB", "video title (BBB, ED, Sintel, ToS, P1–P10)")
	metricName := flag.String("metric", "ssim", "QoE metric: ssim, vmaf, psnr")
	points := flag.Int("points", 12, "ssims tuples per segment in the manifest")
	segments := flag.Int("segments", 0, "limit segment count (0 = full clip)")
	out := flag.String("out", "", "write the enriched MPD to this file ('-' = stdout)")
	flag.Parse()

	v, err := video.Load(*title)
	if err != nil {
		fatal(err)
	}
	if *segments > 0 && *segments < v.Segments {
		v.Segments = *segments
	}
	var metric qoe.Metric
	switch *metricName {
	case "ssim":
		metric = qoe.SSIM
	case "vmaf":
		metric = qoe.VMAF
	case "psnr":
		metric = qoe.PSNR
	default:
		fatal(fmt.Errorf("unknown metric %q", *metricName))
	}

	a := prep.NewAnalyzer()
	a.Metric = metric

	fmt.Printf("Preparing %s (%s): %d segments × %d qualities, metric %v\n",
		v.Title, v.Genre, v.Segments, video.NumQualities, metric)

	// Ordering histogram and tolerance stats at the top rung.
	orderCount := map[prep.Ordering]int{}
	var tolerance []float64
	plans := a.AnalyzeVideo(v, 12)
	for i, p := range plans {
		orderCount[p.Ordering]++
		tolerance = append(tolerance,
			a.MaxDropFraction(v.Segment(i, 12), prep.OrderByInboundRefs, 0.99))
	}
	fmt.Println("\nChosen orderings at Q12:")
	for _, o := range prep.Orderings() {
		fmt.Printf("  %-18s %3d segments\n", o, orderCount[o])
	}
	sum := stats.Summarize(tolerance)
	fmt.Printf("\nDrop tolerance at Q12/SSIM 0.99: p25=%.1f%% median=%.1f%% p75=%.1f%%\n",
		100*sum.P25, 100*sum.Median, 100*sum.P75)

	man := dash.Build(v, dash.BuildOptions{Voxel: true, PointsPerSegment: *points, Analyzer: a})
	bytes, frac, err := man.SizeOverhead()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nManifest: %d bytes (%.1f%% of an average Q12 segment; paper: ≈16%%)\n",
		bytes, 100*frac)

	if *out != "" {
		data, err := man.EncodeMPD()
		if err != nil {
			fatal(err)
		}
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("Wrote %s\n", *out)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voxel-prep:", err)
	os.Exit(1)
}

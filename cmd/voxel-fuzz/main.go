// Command voxel-fuzz runs the chaos fuzz campaign: randomized
// (configuration × impairment × seed) tuples swept through the full
// experiment stack with the cross-layer invariant checker and trial
// watchdog armed. The first failing tuple is automatically shrunk to a
// minimal JSON crash artifact, written to -out, and the process exits 1;
// a clean campaign exits 0.
//
//	voxel-fuzz -n 200 -seed 42 -out crash.json
//	go run ./cmd/voxel-sim -repro crash.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"voxel/internal/chaos"
)

func main() {
	n := flag.Int("n", 100, "number of random tuples to sweep")
	seed := flag.Int64("seed", 1, "campaign seed (the whole campaign is deterministic in it)")
	out := flag.String("out", "crash.json", "where to write the shrunk crash artifact on failure")
	quiet := flag.Bool("q", false, "suppress per-tuple progress lines")
	flag.Parse()

	var log io.Writer = os.Stdout
	if *quiet {
		log = nil
	}
	fmt.Printf("voxel-fuzz: sweeping %d tuples from seed %d (invariants + watchdog armed)\n", *n, *seed)
	artifact, te := chaos.Campaign(*n, *seed, log)
	if te == nil {
		fmt.Printf("voxel-fuzz: all %d tuples survived\n", *n)
		return
	}
	fmt.Printf("\nvoxel-fuzz: FAILURE %s — %s\n", te.Rule, te.Msg)
	if err := artifact.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "voxel-fuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("voxel-fuzz: shrunk artifact written to %s\n", *out)
	fmt.Printf("voxel-fuzz: replay with: go run ./cmd/voxel-sim -repro %s\n", *out)
	os.Exit(1)
}

// Command voxel-perf runs the repo's performance benchmarks and records the
// results as machine-readable JSON (BENCH_<n>.json at the repo root), so the
// perf trajectory across PRs is durable instead of living in commit messages.
//
// It shells out to `go test -run=NONE -bench=... -benchmem` for each target
// package and parses the standard benchmark output, including custom metrics
// like Fig6's voxel_p90_bufratio_%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// target names one benchmark sweep: a package and a -bench regexp.
type target struct {
	Pkg   string
	Bench string
	Time  string // -benchtime; empty = default
}

var targets = []target{
	{Pkg: "voxel/internal/quic", Bench: "BenchmarkOnAck|BenchmarkDetectLoss|BenchmarkPacketEncode|BenchmarkBulkTransfer"},
	{Pkg: "voxel/internal/qoe", Bench: "."},
	{Pkg: "voxel/internal/sim", Bench: "."},
	// The kernel suite runs wheel and heap subbenchmarks back to back; a
	// fixed iteration count (not wall time) keeps the two sides and the
	// before/after trajectory comparable across machines.
	{Pkg: "voxel/internal/sim", Bench: "BenchmarkKernel|BenchmarkSwarmMacro", Time: "3000000x"},
	{Pkg: "voxel", Bench: "BenchmarkFig6BufRatio", Time: "1x"},
}

// result is one parsed benchmark line.
type result struct {
	Name     string             `json:"name"`
	Package  string             `json:"package"`
	Iters    int64              `json:"iterations"`
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	benchtime := flag.String("benchtime", "",
		"override -benchtime for every target (e.g. 100000x or 100ms); useful for CI smoke runs")
	flag.Parse()

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, t := range targets {
		args := []string{"test", "-run=NONE", "-bench=" + t.Bench, "-benchmem", t.Pkg}
		switch {
		case *benchtime != "":
			args = append(args, "-benchtime="+*benchtime)
		case t.Time != "":
			args = append(args, "-benchtime="+t.Time)
		}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "voxel-perf: %s: %v\n", t.Pkg, err)
			os.Exit(1)
		}
		for _, line := range strings.Split(string(outBytes), "\n") {
			if r, ok := parseBenchLine(line, t.Pkg); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}

	rep.Derived = deriveSpeedups(rep.Benchmarks)
	for _, k := range []string{"swarm_macro_speedup", "churn_speedup", "rearm_storm_speedup"} {
		if v, ok := rep.Derived[k]; ok {
			fmt.Printf("voxel-perf: %s = %.2fx\n", k, v)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-perf:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "voxel-perf:", err)
		os.Exit(1)
	}
	fmt.Printf("voxel-perf: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// deriveSpeedups computes heap-vs-wheel ratios for the kernel benchmarks
// that run both sides in one sweep, so the JSON carries the before/after
// comparison directly. Ratios are ns/op(heap) / ns/op(wheel); >1 means the
// wheel is faster. Duplicate names (e.g. the same bench at two benchtimes)
// keep the last parsed line.
func deriveSpeedups(results []result) map[string]float64 {
	ns := map[string]float64{}
	for _, r := range results {
		ns[r.Name] = r.NsOp
	}
	pairs := map[string]string{
		"swarm_macro_speedup": "BenchmarkSwarmMacro512",
		"churn_speedup":       "BenchmarkKernelChurn",
		"rearm_storm_speedup": "BenchmarkKernelRearmStorm",
		"cancel_speedup":      "BenchmarkKernelCancel",
	}
	derived := map[string]float64{}
	for key, base := range pairs {
		wheel, heap := ns[base+"/wheel"], ns[base+"/heap"]
		if wheel > 0 && heap > 0 {
			derived[key] = heap / wheel
		}
	}
	if len(derived) == 0 {
		return nil
	}
	return derived
}

// parseBenchLine parses one `go test -bench` output line:
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   0 allocs/op   1.2 custom_unit
func parseBenchLine(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Package: pkg, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp = v
		case "B/op":
			r.BOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, r.NsOp != 0
}

// Command voxel-sim runs one streaming experiment configuration — title,
// system (ABR + transport), trace, buffer size — for N trials and prints
// the paper's metrics: p90 and mean bufRatio, average bitrate, score
// distribution, skipped data, and residual loss. With -telemetry it also
// collects the per-trial obs timeline and counters, prints a summary, and
// can export them as JSONL (-telemetry-out) and CSV (-telemetry-csv).
//
// Large campaigns scale out with the sweep engine: -shard i/n runs only
// this process's slice of the trial set (merge the shard outputs with
// voxel-merge), -checkpoint makes the run resumable after a crash or
// SIGKILL with no recomputation, and -stream folds trials into
// bounded-memory quantile sketches instead of retaining them.
//
// With -repro it instead replays a JSON crash artifact (written by
// voxel-fuzz) with invariants and watchdog armed, and exits 0 only if the
// artifact's recorded violation reproduces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"voxel"
	"voxel/internal/chaos"
	"voxel/internal/exp"
	"voxel/internal/profiling"
	"voxel/internal/repro"
	"voxel/internal/stats"
	"voxel/internal/sweep"
)

// stopProfiles flushes any active pprof collectors; fatal runs it so a
// failed run still leaves usable profiles behind (os.Exit skips defers).
var stopProfiles = func() {}

func main() {
	title := flag.String("title", "BBB", "video title")
	system := flag.String("system", "VOXEL", "system: BOLA/Q, BOLA/Q*, MPC/Q, MPC/Q*, Tput/Q, Tput/Q*, BETA, BOLA-SSIM, VOXEL, VOXEL-rel, VOXEL-untuned")
	traceName := flag.String("trace", "verizon", "trace: tmobile, verizon, att, 3g, fcc, wild")
	buffer := flag.Int("buffer", 3, "playback buffer in segments")
	trials := flag.Int("trials", 10, "trials (paper: 30)")
	segments := flag.Int("segments", 0, "limit segment count (0 = full 75)")
	metricName := flag.String("metric", "ssim", "QoE metric: ssim, vmaf, psnr")
	queue := flag.Int("queue", 32, "router queue in packets (750 = long-queue appendix)")
	cross := flag.Float64("cross", 0, "cross-traffic load in Mbps over a 20 Mbps link (replaces the trace)")
	seed := flag.Int64("seed", 1, "random seed")
	impair := flag.String("impair", "", "impairment profile: clean, bursty, flaky-wifi, handover-blackout")
	failover := flag.Bool("failover", false,
		"add a second origin and permanently blackhole the primary path mid-stream")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"concurrent trial workers (1 = sequential; results are identical either way)")
	sessions := flag.Int("sessions", 1,
		"concurrent video sessions per trial sharing one bottleneck (swarm mode)")
	swarm := flag.Bool("swarm", false,
		"print the per-session swarm breakdown (fairness, utilization); implied by -sessions > 1")
	telemetry := flag.Bool("telemetry", false,
		"collect per-trial obs counters and timeline events (zero impact on results)")
	telemetryOut := flag.String("telemetry-out", "",
		"write the telemetry timeline as JSONL to this file (- = stdout); implies -telemetry")
	telemetryCSV := flag.String("telemetry-csv", "",
		"write per-trial telemetry counters as CSV to this file (- = stdout); implies -telemetry")
	invariants := flag.Bool("invariants", false,
		"arm the cross-layer invariant checker; a violation fails the trial with a replayable error")
	inject := flag.String("inject", "",
		"schedule a deliberate fault: panic, invariant, or spin, optionally @trial (tests the failure pipeline)")
	shardSpec := flag.String("shard", "",
		"run only shard i of an n-way campaign (\"i/n\", e.g. 0/4); fold the shard outputs with voxel-merge")
	checkpointPath := flag.String("checkpoint", "",
		"resumable state file: finished trials restore from it, new ones append atomically; the finished file is the shard output voxel-merge consumes")
	checkpointEvery := flag.Int("checkpoint-every", 1,
		"write the checkpoint after every N completed trials (requires -checkpoint)")
	stream := flag.Bool("stream", false,
		"streaming aggregation: fold each trial into mergeable quantile sketches (relative error ≤ 1%) and discard it, bounding memory by sketch size instead of trial count")
	reproPath := flag.String("repro", "",
		"replay a JSON crash artifact with invariants+watchdog armed; exits 0 only if its violation reproduces (exclusive with sweep flags)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	shard, err := validateFlags(set, *shardSpec)
	if err != nil {
		fatal(err)
	}
	if *reproPath != "" {
		os.Exit(runRepro(*reproPath))
	}
	if *sessions < 1 || *sessions > exp.MaxSessions {
		fatal(fmt.Errorf("-sessions %d out of range [1, %d]", *sessions, exp.MaxSessions))
	}

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-sim: profile:", err)
		}
	}
	defer stopProfiles()

	var metric voxel.Metric
	switch *metricName {
	case "ssim":
		metric = voxel.SSIM
	case "vmaf":
		metric = voxel.VMAF
	case "psnr":
		metric = voxel.PSNR
	default:
		fatal(fmt.Errorf("unknown metric %q", *metricName))
	}

	opts := []voxel.Option{
		voxel.WithSystem(voxel.System(*system)),
		voxel.WithBuffer(*buffer),
		voxel.WithTrials(*trials),
		voxel.WithSegments(*segments),
		voxel.WithMetric(metric),
		voxel.WithQueue(*queue),
		voxel.WithSeed(*seed),
		voxel.WithParallelism(*parallel),
		voxel.WithSessions(*sessions),
	}
	if *sessions > 1 {
		*swarm = true
	}
	if *shardSpec != "" {
		opts = append(opts, voxel.WithShard(shard.Index, shard.Count))
	}
	if *checkpointPath != "" && !*stream {
		// In streaming mode the checkpoint is handed to sweep.Run directly.
		opts = append(opts, voxel.WithCheckpoint(*checkpointPath, *checkpointEvery))
	}
	if *impair != "" {
		opts = append(opts, voxel.WithImpairment(*impair))
	}
	if *failover {
		opts = append(opts, voxel.WithFailover())
	}
	if *telemetry || *telemetryOut != "" || *telemetryCSV != "" {
		*telemetry = true
		opts = append(opts, voxel.WithTelemetry())
	}
	if *invariants {
		opts = append(opts, voxel.WithInvariants())
	}
	if *inject != "" {
		opts = append(opts, voxel.WithInject(*inject))
	}
	if *invariants || *inject != "" {
		// Hardened runs also get the trial watchdog, so a wedged trial (e.g.
		// -inject spin's zero-delay event storm) fails with a replayable
		// TrialError instead of hanging the process.
		opts = append(opts, voxel.WithWatchdog(exp.DefaultWatchdogWall, exp.DefaultWatchdogEvents))
	}
	if *cross > 0 {
		opts = append(opts, voxel.WithCrossTraffic(*cross*1e6, 20e6))
		fmt.Printf("%s streaming %s against %.0f Mbps cross traffic (20 Mbps link), %d-segment buffer\n",
			*system, *title, *cross, *buffer)
	} else {
		tr, err := voxel.LoadTrace(*traceName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, voxel.WithTrace(tr))
		fmt.Printf("%s streaming %s over %s (mean %.1f Mbps, stddev %.1f Mbps), %d-segment buffer\n",
			*system, *title, tr.Name(), tr.Mean()/1e6, tr.StdDev()/1e6, *buffer)
	}
	if *impair != "" {
		fmt.Printf("impairment profile: %s\n", *impair)
	}
	if *failover {
		fmt.Printf("failover scenario: primary path dies at %v, second origin takes over\n",
			exp.FailoverKillTime)
	}
	if *shardSpec != "" {
		fmt.Printf("shard %s: running %d of %d trials\n", shard, shardTrials(shard, *trials), *trials)
	}

	sess := voxel.New(*title, opts...)
	if *stream {
		res, err := sweep.Run(sess.Config(), sweep.Options{
			Checkpoint: *checkpointPath, Every: *checkpointEvery, Stream: true,
		})
		if err != nil {
			fatal(err)
		}
		if res.Restored > 0 {
			fmt.Printf("restored %d finished trials from %s (%d run now)\n",
				res.Restored, *checkpointPath, res.Ran)
		}
		fmt.Println()
		fmt.Print(res.Stream.Summary())
		if res.Stream.Failed > 0 {
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	agg, report, err := sess.Run()
	if err != nil {
		fatal(err)
	}
	reportFailures(agg)

	fmt.Printf("\n%-26s %v\n", "trials:", len(agg.Trials))
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (p90):", 100*agg.BufRatioP90())
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (mean):", 100*agg.BufRatioMean())
	fmt.Printf("%-26s %.2f Mbps\n", "avg bitrate:", agg.BitrateMean()/1e6)
	cdf := agg.ScoreCDF()
	fmt.Printf("%-26s p10=%.4f median=%.4f p90=%.4f\n", metric.String()+" scores:",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
	var skipped, residual, startup []float64
	for ti, t := range agg.Trials {
		if !agg.Config.Owns(ti) {
			continue // sharded run: unowned slots are zero-valued
		}
		skipped = append(skipped, t.Skipped)
		residual = append(residual, t.Residual)
		startup = append(startup, t.StartupDelay.Seconds())
	}
	fmt.Printf("%-26s %.2f%%\n", "data skipped (mean):", 100*stats.Mean(skipped))
	fmt.Printf("%-26s %.2f%%\n", "residual loss (mean):", 100*stats.Mean(residual))
	fmt.Printf("%-26s %.2f s\n", "startup delay (mean):", stats.Mean(startup))
	if *impair != "" || *failover {
		var failed float64
		owned, incomplete := 0, 0
		for ti, t := range agg.Trials {
			if !agg.Config.Owns(ti) {
				continue
			}
			owned++
			failed += float64(t.FailedReqs)
			if !t.Completed {
				incomplete++
			}
		}
		fmt.Printf("%-26s %.1f\n", "failed requests (mean):", failed/float64(owned))
		fmt.Printf("%-26s %d/%d\n", "incomplete trials:", incomplete, owned)
	}

	if *swarm {
		printSwarm(agg)
	}

	if *telemetry {
		fmt.Println()
		fmt.Print(report.Summary())
		if kinds := report.KindCounts(); len(kinds) > 0 {
			fmt.Printf("timeline events: %s\n", strings.Join(kinds, " "))
		}
		if err := exportTelemetry(report, *telemetryOut, *telemetryCSV); err != nil {
			fatal(err)
		}
	}
	if len(agg.Failed) > 0 {
		stopProfiles()
		os.Exit(1)
	}
}

// reportFailures prints every failed trial with its replay command. The
// surviving trials' statistics still print below; main exits nonzero at
// the end when anything failed.
func reportFailures(agg *voxel.Aggregate) {
	if len(agg.Failed) == 0 {
		return
	}
	fmt.Printf("\n%d of %d trials FAILED:\n", len(agg.Failed), len(agg.Trials))
	for i := range agg.Failed {
		te := &agg.Failed[i]
		fmt.Printf("  trial %d (seed %d) at virtual %v: %s\n    %s\n",
			te.Trial, te.Seed, te.Clock, te.Rule, te.Msg)
		if te.Stack != "" {
			fmt.Printf("    stack:\n")
			for _, line := range strings.Split(strings.TrimRight(te.Stack, "\n"), "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
		fmt.Printf("    replay: %s\n", te.ReplayCommand())
	}
}

// runRepro replays a crash artifact and returns the process exit code:
// 0 when the recorded violation reproduces, 1 otherwise.
func runRepro(path string) int {
	a, err := repro.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-sim:", err)
		return 1
	}
	fmt.Printf("replaying %s: %s/%s trial %d seed %d", path, a.Title, a.System, a.Trial, a.Seed)
	if a.Violation != "" {
		fmt.Printf(" (expecting %s)", a.Violation)
	}
	fmt.Println()
	ok, te, err := chaos.Reproduces(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-sim:", err)
		return 1
	}
	switch {
	case ok:
		fmt.Printf("reproduced: %s — %s\n", te.Rule, te.Msg)
		return 0
	case te != nil:
		fmt.Printf("failed with a DIFFERENT rule: %s — %s (artifact expects %s)\n",
			te.Rule, te.Msg, a.Violation)
		return 1
	default:
		fmt.Println("did not reproduce: every trial survived")
		return 1
	}
}

// printSwarm renders the per-session breakdown: fairness and utilization
// summaries plus one row per session index averaged across trials.
func printSwarm(agg *voxel.Aggregate) {
	n := 0
	for _, t := range agg.Trials {
		if len(t.Sessions) > n {
			n = len(t.Sessions)
		}
	}
	fmt.Printf("\nswarm: %d sessions through one bottleneck\n", n)
	fmt.Printf("%-26s %.4f\n", "Jain fairness (mean):", agg.JainMean())
	fmt.Printf("%-26s %.2f%%\n", "bottleneck util (mean):", 100*agg.UtilizationMean())
	fmt.Printf("%-26s %.4f\n", "session QoE (p5):", agg.SessionQoEP5())
	fmt.Printf("%-26s %v\n", "total stall time:", agg.TotalStall())
	fmt.Printf("%9s  %12s  %10s  %10s  %10s\n",
		"session", "bitrate", "QoE", "bufRatio", "stall")
	for si := 0; si < n; si++ {
		var rate, score, buf, stall []float64
		for _, t := range agg.Trials {
			if si >= len(t.Sessions) {
				continue
			}
			sr := t.Sessions[si]
			rate = append(rate, sr.AvgBitrate)
			score = append(score, sr.MeanScore)
			buf = append(buf, sr.BufRatio)
			stall = append(stall, sr.StallTime.Seconds())
		}
		fmt.Printf("%9d  %9.2f Mb  %10.4f  %9.2f%%  %9.2fs\n",
			si, stats.Mean(rate)/1e6, stats.Mean(score),
			100*stats.Mean(buf), stats.Mean(stall))
	}
}

// exportTelemetry writes the JSONL timeline and/or the per-trial counter CSV
// to the given destinations ("" = skip, "-" = stdout).
func exportTelemetry(report *voxel.Report, jsonlPath, csvPath string) error {
	write := func(path string, emit func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return emit(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
		return nil
	}
	if err := write(jsonlPath, report.WriteJSONL); err != nil {
		return err
	}
	return write(csvPath, report.WriteCSV)
}

// validateFlags enforces the cross-flag constraints given the set of flags
// explicitly present on the command line, and parses the -shard spec. It
// returns the parsed shard (Unsharded when -shard was not given).
//
//   - -repro replays exactly what the artifact describes, so every sweep
//     flag alongside it (including -shard, -checkpoint, -stream) would be
//     silently ignored; reject all but the profiling flags. New flags are
//     conflicts by default — the allowlist names the only exceptions.
//   - -stream discards per-trial state as it folds, so the flags that need
//     retained trials (-telemetry and its exports, the -swarm breakdown)
//     are contradictions, not no-ops.
//   - -checkpoint-every without -checkpoint silently does nothing; reject.
func validateFlags(set map[string]bool, shardSpec string) (sweep.Shard, error) {
	if set["repro"] {
		var conflicts []string
		for name := range set {
			switch name {
			case "repro", "cpuprofile", "memprofile":
			default:
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			sort.Strings(conflicts)
			return sweep.Shard{}, fmt.Errorf(
				"-repro replays the artifact's own configuration; drop %s",
				strings.Join(conflicts, ", "))
		}
	}
	if set["stream"] {
		for _, bad := range []string{"telemetry", "telemetry-out", "telemetry-csv", "swarm"} {
			if set[bad] {
				return sweep.Shard{}, fmt.Errorf(
					"-stream discards per-trial results as it folds them; it cannot honor -%s", bad)
			}
		}
	}
	if set["checkpoint-every"] && !set["checkpoint"] {
		return sweep.Shard{}, fmt.Errorf("-checkpoint-every does nothing without -checkpoint")
	}
	if shardSpec == "" {
		return sweep.Shard{}, nil
	}
	return sweep.ParseShard(shardSpec)
}

// shardTrials counts the trials shard s owns out of a total of n.
func shardTrials(s sweep.Shard, n int) int {
	owned := 0
	for ti := 0; ti < n; ti++ {
		if ti%s.Count == s.Index {
			owned++
		}
	}
	return owned
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "voxel-sim:", err)
	os.Exit(1)
}

// Command voxel-sim runs one streaming experiment configuration — title,
// system (ABR + transport), trace, buffer size — for N trials and prints
// the paper's metrics: p90 and mean bufRatio, average bitrate, score
// distribution, skipped data, and residual loss. With -telemetry it also
// collects the per-trial obs timeline and counters, prints a summary, and
// can export them as JSONL (-telemetry-out) and CSV (-telemetry-csv).
//
// With -repro it instead replays a JSON crash artifact (written by
// voxel-fuzz) with invariants and watchdog armed, and exits 0 only if the
// artifact's recorded violation reproduces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"voxel"
	"voxel/internal/chaos"
	"voxel/internal/exp"
	"voxel/internal/profiling"
	"voxel/internal/repro"
	"voxel/internal/stats"
)

// stopProfiles flushes any active pprof collectors; fatal runs it so a
// failed run still leaves usable profiles behind (os.Exit skips defers).
var stopProfiles = func() {}

func main() {
	title := flag.String("title", "BBB", "video title")
	system := flag.String("system", "VOXEL", "system: BOLA/Q, BOLA/Q*, MPC/Q, MPC/Q*, Tput/Q, Tput/Q*, BETA, BOLA-SSIM, VOXEL, VOXEL-rel, VOXEL-untuned")
	traceName := flag.String("trace", "verizon", "trace: tmobile, verizon, att, 3g, fcc, wild")
	buffer := flag.Int("buffer", 3, "playback buffer in segments")
	trials := flag.Int("trials", 10, "trials (paper: 30)")
	segments := flag.Int("segments", 0, "limit segment count (0 = full 75)")
	metricName := flag.String("metric", "ssim", "QoE metric: ssim, vmaf, psnr")
	queue := flag.Int("queue", 32, "router queue in packets (750 = long-queue appendix)")
	cross := flag.Float64("cross", 0, "cross-traffic load in Mbps over a 20 Mbps link (replaces the trace)")
	seed := flag.Int64("seed", 1, "random seed")
	impair := flag.String("impair", "", "impairment profile: clean, bursty, flaky-wifi, handover-blackout")
	failover := flag.Bool("failover", false,
		"add a second origin and permanently blackhole the primary path mid-stream")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"concurrent trial workers (1 = sequential; results are identical either way)")
	sessions := flag.Int("sessions", 1,
		"concurrent video sessions per trial sharing one bottleneck (swarm mode)")
	swarm := flag.Bool("swarm", false,
		"print the per-session swarm breakdown (fairness, utilization); implied by -sessions > 1")
	telemetry := flag.Bool("telemetry", false,
		"collect per-trial obs counters and timeline events (zero impact on results)")
	telemetryOut := flag.String("telemetry-out", "",
		"write the telemetry timeline as JSONL to this file (- = stdout); implies -telemetry")
	telemetryCSV := flag.String("telemetry-csv", "",
		"write per-trial telemetry counters as CSV to this file (- = stdout); implies -telemetry")
	invariants := flag.Bool("invariants", false,
		"arm the cross-layer invariant checker; a violation fails the trial with a replayable error")
	inject := flag.String("inject", "",
		"schedule a deliberate fault: panic, invariant, or spin, optionally @trial (tests the failure pipeline)")
	reproPath := flag.String("repro", "",
		"replay a JSON crash artifact with invariants+watchdog armed; exits 0 only if its violation reproduces (exclusive with sweep flags)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *reproPath != "" {
		// -repro replays exactly what the artifact describes; any sweep flag
		// alongside it would be silently ignored, so reject the combination.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "repro", "cpuprofile", "memprofile":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fatal(fmt.Errorf("-repro replays the artifact's own configuration; drop %s",
				strings.Join(conflicts, ", ")))
		}
		os.Exit(runRepro(*reproPath))
	}
	if *sessions < 1 || *sessions > exp.MaxSessions {
		fatal(fmt.Errorf("-sessions %d out of range [1, %d]", *sessions, exp.MaxSessions))
	}

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "voxel-sim: profile:", err)
		}
	}
	defer stopProfiles()

	var metric voxel.Metric
	switch *metricName {
	case "ssim":
		metric = voxel.SSIM
	case "vmaf":
		metric = voxel.VMAF
	case "psnr":
		metric = voxel.PSNR
	default:
		fatal(fmt.Errorf("unknown metric %q", *metricName))
	}

	opts := []voxel.Option{
		voxel.WithSystem(voxel.System(*system)),
		voxel.WithBuffer(*buffer),
		voxel.WithTrials(*trials),
		voxel.WithSegments(*segments),
		voxel.WithMetric(metric),
		voxel.WithQueue(*queue),
		voxel.WithSeed(*seed),
		voxel.WithParallelism(*parallel),
		voxel.WithSessions(*sessions),
	}
	if *sessions > 1 {
		*swarm = true
	}
	if *impair != "" {
		opts = append(opts, voxel.WithImpairment(*impair))
	}
	if *failover {
		opts = append(opts, voxel.WithFailover())
	}
	if *telemetry || *telemetryOut != "" || *telemetryCSV != "" {
		*telemetry = true
		opts = append(opts, voxel.WithTelemetry())
	}
	if *invariants {
		opts = append(opts, voxel.WithInvariants())
	}
	if *inject != "" {
		opts = append(opts, voxel.WithInject(*inject))
	}
	if *invariants || *inject != "" {
		// Hardened runs also get the trial watchdog, so a wedged trial (e.g.
		// -inject spin's zero-delay event storm) fails with a replayable
		// TrialError instead of hanging the process.
		opts = append(opts, voxel.WithWatchdog(exp.DefaultWatchdogWall, exp.DefaultWatchdogEvents))
	}
	if *cross > 0 {
		opts = append(opts, voxel.WithCrossTraffic(*cross*1e6, 20e6))
		fmt.Printf("%s streaming %s against %.0f Mbps cross traffic (20 Mbps link), %d-segment buffer\n",
			*system, *title, *cross, *buffer)
	} else {
		tr, err := voxel.LoadTrace(*traceName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, voxel.WithTrace(tr))
		fmt.Printf("%s streaming %s over %s (mean %.1f Mbps, stddev %.1f Mbps), %d-segment buffer\n",
			*system, *title, tr.Name(), tr.Mean()/1e6, tr.StdDev()/1e6, *buffer)
	}
	if *impair != "" {
		fmt.Printf("impairment profile: %s\n", *impair)
	}
	if *failover {
		fmt.Printf("failover scenario: primary path dies at %v, second origin takes over\n",
			exp.FailoverKillTime)
	}

	agg, report, err := voxel.New(*title, opts...).Run()
	if err != nil {
		fatal(err)
	}
	reportFailures(agg)

	fmt.Printf("\n%-26s %v\n", "trials:", len(agg.Trials))
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (p90):", 100*agg.BufRatioP90())
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (mean):", 100*agg.BufRatioMean())
	fmt.Printf("%-26s %.2f Mbps\n", "avg bitrate:", agg.BitrateMean()/1e6)
	cdf := agg.ScoreCDF()
	fmt.Printf("%-26s p10=%.4f median=%.4f p90=%.4f\n", metric.String()+" scores:",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
	var skipped, residual, startup []float64
	for _, t := range agg.Trials {
		skipped = append(skipped, t.Skipped)
		residual = append(residual, t.Residual)
		startup = append(startup, t.StartupDelay.Seconds())
	}
	fmt.Printf("%-26s %.2f%%\n", "data skipped (mean):", 100*stats.Mean(skipped))
	fmt.Printf("%-26s %.2f%%\n", "residual loss (mean):", 100*stats.Mean(residual))
	fmt.Printf("%-26s %.2f s\n", "startup delay (mean):", stats.Mean(startup))
	if *impair != "" || *failover {
		var failed float64
		incomplete := 0
		for _, t := range agg.Trials {
			failed += float64(t.FailedReqs)
			if !t.Completed {
				incomplete++
			}
		}
		fmt.Printf("%-26s %.1f\n", "failed requests (mean):", failed/float64(len(agg.Trials)))
		fmt.Printf("%-26s %d/%d\n", "incomplete trials:", incomplete, len(agg.Trials))
	}

	if *swarm {
		printSwarm(agg)
	}

	if *telemetry {
		fmt.Println()
		fmt.Print(report.Summary())
		if kinds := report.KindCounts(); len(kinds) > 0 {
			fmt.Printf("timeline events: %s\n", strings.Join(kinds, " "))
		}
		if err := exportTelemetry(report, *telemetryOut, *telemetryCSV); err != nil {
			fatal(err)
		}
	}
	if len(agg.Failed) > 0 {
		stopProfiles()
		os.Exit(1)
	}
}

// reportFailures prints every failed trial with its replay command. The
// surviving trials' statistics still print below; main exits nonzero at
// the end when anything failed.
func reportFailures(agg *voxel.Aggregate) {
	if len(agg.Failed) == 0 {
		return
	}
	fmt.Printf("\n%d of %d trials FAILED:\n", len(agg.Failed), len(agg.Trials))
	for i := range agg.Failed {
		te := &agg.Failed[i]
		fmt.Printf("  trial %d (seed %d) at virtual %v: %s\n    %s\n",
			te.Trial, te.Seed, te.Clock, te.Rule, te.Msg)
		if te.Stack != "" {
			fmt.Printf("    stack:\n")
			for _, line := range strings.Split(strings.TrimRight(te.Stack, "\n"), "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
		fmt.Printf("    replay: %s\n", te.ReplayCommand())
	}
}

// runRepro replays a crash artifact and returns the process exit code:
// 0 when the recorded violation reproduces, 1 otherwise.
func runRepro(path string) int {
	a, err := repro.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-sim:", err)
		return 1
	}
	fmt.Printf("replaying %s: %s/%s trial %d seed %d", path, a.Title, a.System, a.Trial, a.Seed)
	if a.Violation != "" {
		fmt.Printf(" (expecting %s)", a.Violation)
	}
	fmt.Println()
	ok, te, err := chaos.Reproduces(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, "voxel-sim:", err)
		return 1
	}
	switch {
	case ok:
		fmt.Printf("reproduced: %s — %s\n", te.Rule, te.Msg)
		return 0
	case te != nil:
		fmt.Printf("failed with a DIFFERENT rule: %s — %s (artifact expects %s)\n",
			te.Rule, te.Msg, a.Violation)
		return 1
	default:
		fmt.Println("did not reproduce: every trial survived")
		return 1
	}
}

// printSwarm renders the per-session breakdown: fairness and utilization
// summaries plus one row per session index averaged across trials.
func printSwarm(agg *voxel.Aggregate) {
	n := 0
	for _, t := range agg.Trials {
		if len(t.Sessions) > n {
			n = len(t.Sessions)
		}
	}
	fmt.Printf("\nswarm: %d sessions through one bottleneck\n", n)
	fmt.Printf("%-26s %.4f\n", "Jain fairness (mean):", agg.JainMean())
	fmt.Printf("%-26s %.2f%%\n", "bottleneck util (mean):", 100*agg.UtilizationMean())
	fmt.Printf("%-26s %.4f\n", "session QoE (p5):", agg.SessionQoEP5())
	fmt.Printf("%-26s %v\n", "total stall time:", agg.TotalStall())
	fmt.Printf("%9s  %12s  %10s  %10s  %10s\n",
		"session", "bitrate", "QoE", "bufRatio", "stall")
	for si := 0; si < n; si++ {
		var rate, score, buf, stall []float64
		for _, t := range agg.Trials {
			if si >= len(t.Sessions) {
				continue
			}
			sr := t.Sessions[si]
			rate = append(rate, sr.AvgBitrate)
			score = append(score, sr.MeanScore)
			buf = append(buf, sr.BufRatio)
			stall = append(stall, sr.StallTime.Seconds())
		}
		fmt.Printf("%9d  %9.2f Mb  %10.4f  %9.2f%%  %9.2fs\n",
			si, stats.Mean(rate)/1e6, stats.Mean(score),
			100*stats.Mean(buf), stats.Mean(stall))
	}
}

// exportTelemetry writes the JSONL timeline and/or the per-trial counter CSV
// to the given destinations ("" = skip, "-" = stdout).
func exportTelemetry(report *voxel.Report, jsonlPath, csvPath string) error {
	write := func(path string, emit func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return emit(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
		return nil
	}
	if err := write(jsonlPath, report.WriteJSONL); err != nil {
		return err
	}
	return write(csvPath, report.WriteCSV)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "voxel-sim:", err)
	os.Exit(1)
}

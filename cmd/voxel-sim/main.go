// Command voxel-sim runs one streaming experiment configuration — title,
// system (ABR + transport), trace, buffer size — for N trials and prints
// the paper's metrics: p90 and mean bufRatio, average bitrate, score
// distribution, skipped data, and residual loss.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"voxel/internal/exp"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/trace"
)

func main() {
	title := flag.String("title", "BBB", "video title")
	system := flag.String("system", "VOXEL", "system: BOLA/Q, BOLA/Q*, MPC/Q, MPC/Q*, Tput/Q, Tput/Q*, BETA, BOLA-SSIM, VOXEL, VOXEL-rel, VOXEL-untuned")
	traceName := flag.String("trace", "verizon", "trace: tmobile, verizon, att, 3g, fcc, wild")
	buffer := flag.Int("buffer", 3, "playback buffer in segments")
	trials := flag.Int("trials", 10, "trials (paper: 30)")
	segments := flag.Int("segments", 0, "limit segment count (0 = full 75)")
	metricName := flag.String("metric", "ssim", "QoE metric: ssim, vmaf, psnr")
	queue := flag.Int("queue", 32, "router queue in packets (750 = long-queue appendix)")
	cross := flag.Float64("cross", 0, "cross-traffic load in Mbps over a 20 Mbps link (replaces the trace)")
	seed := flag.Int64("seed", 1, "random seed")
	impair := flag.String("impair", "", "impairment profile: clean, bursty, flaky-wifi, handover-blackout")
	failover := flag.Bool("failover", false,
		"add a second origin and permanently blackhole the primary path mid-stream")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"concurrent trial workers (1 = sequential; results are identical either way)")
	flag.Parse()

	var metric qoe.Metric
	switch *metricName {
	case "ssim":
		metric = qoe.SSIM
	case "vmaf":
		metric = qoe.VMAF
	case "psnr":
		metric = qoe.PSNR
	default:
		fatal(fmt.Errorf("unknown metric %q", *metricName))
	}

	cfg := exp.Config{
		Title:          *title,
		System:         exp.System(*system),
		BufferSegments: *buffer,
		Trials:         *trials,
		Segments:       *segments,
		Metric:         metric,
		QueuePackets:   *queue,
		Seed:           *seed,
		Impairment:     *impair,
		Failover:       *failover,
		Parallelism:    *parallel,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *cross > 0 {
		cfg.CrossTraffic = *cross * 1e6
		cfg.LinkCapacity = 20e6
		fmt.Printf("%s streaming %s against %.0f Mbps cross traffic (20 Mbps link), %d-segment buffer\n",
			*system, *title, *cross, *buffer)
	} else {
		tr, err := trace.ByName(*traceName)
		if err != nil {
			fatal(err)
		}
		cfg.Trace = tr
		fmt.Printf("%s streaming %s over %s (mean %.1f Mbps, stddev %.1f Mbps), %d-segment buffer\n",
			*system, *title, tr.Name(), tr.Mean()/1e6, tr.StdDev()/1e6, *buffer)
	}
	if *impair != "" {
		fmt.Printf("impairment profile: %s\n", *impair)
	}
	if *failover {
		fmt.Printf("failover scenario: primary path dies at %v, second origin takes over\n",
			exp.FailoverKillTime)
	}

	agg := exp.Run(cfg)

	fmt.Printf("\n%-26s %v\n", "trials:", len(agg.Trials))
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (p90):", 100*agg.BufRatioP90())
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (mean):", 100*agg.BufRatioMean())
	fmt.Printf("%-26s %.2f Mbps\n", "avg bitrate:", agg.BitrateMean()/1e6)
	cdf := agg.ScoreCDF()
	fmt.Printf("%-26s p10=%.4f median=%.4f p90=%.4f\n", metric.String()+" scores:",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
	var skipped, residual, startup []float64
	for _, t := range agg.Trials {
		skipped = append(skipped, t.Skipped)
		residual = append(residual, t.Residual)
		startup = append(startup, t.StartupDelay.Seconds())
	}
	fmt.Printf("%-26s %.2f%%\n", "data skipped (mean):", 100*stats.Mean(skipped))
	fmt.Printf("%-26s %.2f%%\n", "residual loss (mean):", 100*stats.Mean(residual))
	fmt.Printf("%-26s %.2f s\n", "startup delay (mean):", stats.Mean(startup))
	if *impair != "" || *failover {
		var failed float64
		incomplete := 0
		for _, t := range agg.Trials {
			failed += float64(t.FailedReqs)
			if !t.Completed {
				incomplete++
			}
		}
		fmt.Printf("%-26s %.1f\n", "failed requests (mean):", failed/float64(len(agg.Trials)))
		fmt.Printf("%-26s %d/%d\n", "incomplete trials:", incomplete, len(agg.Trials))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voxel-sim:", err)
	os.Exit(1)
}

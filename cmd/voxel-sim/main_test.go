package main

import (
	"strings"
	"testing"

	"voxel/internal/sweep"
)

// The cross-flag constraints: -repro excludes every sweep flag, -stream
// excludes the flags that need retained per-trial results, -checkpoint-every
// needs -checkpoint, and malformed -shard specs are rejected up front.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     []string
		shard   string
		want    sweep.Shard
		wantErr string // substring of the error; "" = must succeed
	}{
		{name: "bare run", set: nil},
		{name: "repro alone", set: []string{"repro"}},
		{name: "repro with profiles", set: []string{"repro", "cpuprofile", "memprofile"}},
		{name: "repro with shard", set: []string{"repro", "shard"}, shard: "0/2",
			wantErr: "drop -shard"},
		{name: "repro with checkpoint", set: []string{"repro", "checkpoint"},
			wantErr: "drop -checkpoint"},
		{name: "repro with stream and trials", set: []string{"repro", "stream", "trials"},
			wantErr: "drop -stream, -trials"},
		{name: "stream with telemetry", set: []string{"stream", "telemetry"},
			wantErr: "cannot honor -telemetry"},
		{name: "stream with telemetry-out", set: []string{"stream", "telemetry-out"},
			wantErr: "cannot honor -telemetry-out"},
		{name: "stream with telemetry-csv", set: []string{"stream", "telemetry-csv"},
			wantErr: "cannot honor -telemetry-csv"},
		{name: "stream with swarm", set: []string{"stream", "swarm"},
			wantErr: "cannot honor -swarm"},
		{name: "stream with checkpoint", set: []string{"stream", "checkpoint", "checkpoint-every"}},
		{name: "checkpoint-every alone", set: []string{"checkpoint-every"},
			wantErr: "does nothing without -checkpoint"},
		{name: "shard ok", set: []string{"shard"}, shard: "1/4",
			want: sweep.Shard{Index: 1, Count: 4}},
		{name: "shard whole sweep", set: []string{"shard"}, shard: "0/1",
			want: sweep.Shard{Index: 0, Count: 1}},
		{name: "shard not i/n", set: []string{"shard"}, shard: "3", wantErr: "not i/n"},
		{name: "shard index not a number", set: []string{"shard"}, shard: "x/4",
			wantErr: "shard index"},
		{name: "shard count zero", set: []string{"shard"}, shard: "0/0",
			wantErr: "must be at least 1"},
		{name: "shard count negative", set: []string{"shard"}, shard: "0/-2",
			wantErr: "must be at least 1"},
		{name: "shard index at count", set: []string{"shard"}, shard: "4/4",
			wantErr: "out of range"},
		{name: "shard index past count", set: []string{"shard"}, shard: "5/4",
			wantErr: "out of range"},
		{name: "shard index negative", set: []string{"shard"}, shard: "-1/4",
			wantErr: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			got, err := validateFlags(set, tc.shard)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got err %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got != tc.want {
				t.Fatalf("shard = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// shardTrials partitions the trial count exactly: the owned counts of a
// full shard set sum to the total, and every shard gets ⌊n/c⌋ or ⌈n/c⌉.
func TestShardTrials(t *testing.T) {
	for _, count := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{0, 1, 5, 12, 30} {
			sum := 0
			for i := 0; i < count; i++ {
				owned := shardTrials(sweep.Shard{Index: i, Count: count}, n)
				if lo, hi := n/count, (n+count-1)/count; owned < lo || owned > hi {
					t.Fatalf("shard %d/%d of %d trials owns %d, want in [%d,%d]",
						i, count, n, owned, lo, hi)
				}
				sum += owned
			}
			if sum != n {
				t.Fatalf("%d-way shards of %d trials own %d total", count, n, sum)
			}
		}
	}
}

// Command voxel-merge folds the checkpoint files of a sharded campaign
// (written by voxel-sim -shard i/n -checkpoint) back into the
// single-process result. Given every shard of one campaign it verifies the
// set — same experiment fingerprint, same mode, complete and disjoint — and
// prints the merged statistics exactly as an unsharded voxel-sim run would.
//
// -out re-serializes the merged campaign as an unsharded checkpoint file,
// byte-identical to what one uninterrupted process would have written
// (modulo run-specific failure stacks); CI uses that for the determinism
// check. -telemetry-out / -telemetry-csv export the merged telemetry
// exactly as voxel-sim does.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"voxel"
	"voxel/internal/stats"
	"voxel/internal/sweep"
)

func main() {
	out := flag.String("out", "",
		"write the merged campaign as an unsharded checkpoint file (byte-identical to a single-process run's)")
	telemetryOut := flag.String("telemetry-out", "",
		"write the merged telemetry timeline as JSONL to this file (- = stdout)")
	telemetryCSV := flag.String("telemetry-csv", "",
		"write merged per-trial telemetry counters as CSV to this file (- = stdout)")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: voxel-merge [flags] shard0.json shard1.json ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	m, err := sweep.MergeFiles(files)
	if err != nil {
		fatal(err)
	}
	if m.Stream != nil {
		fmt.Printf("merged %d streaming shard file(s)\n\n", len(files))
		fmt.Print(m.Stream.Summary())
	} else {
		printAggregate(m.Agg, len(files))
		if m.Agg.Obs != nil {
			if err := exportTelemetry(m.Agg.Obs, *telemetryOut, *telemetryCSV); err != nil {
				fatal(err)
			}
		} else if *telemetryOut != "" || *telemetryCSV != "" {
			fatal(fmt.Errorf("the shards were run without -telemetry; nothing to export"))
		}
	}
	if *out != "" {
		if err := m.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if m.Agg != nil && len(m.Agg.Failed) > 0 {
		os.Exit(1)
	}
	if m.Stream != nil && m.Stream.Failed > 0 {
		os.Exit(1)
	}
}

// printAggregate renders the merged campaign in voxel-sim's output shape.
func printAggregate(agg *voxel.Aggregate, files int) {
	cfg := agg.Config
	fmt.Printf("merged %d shard file(s): %s / %s, %d trials\n",
		files, cfg.System, cfg.Title, len(agg.Trials))
	if len(agg.Failed) > 0 {
		fmt.Printf("\n%d of %d trials FAILED:\n", len(agg.Failed), len(agg.Trials))
		for i := range agg.Failed {
			te := &agg.Failed[i]
			fmt.Printf("  trial %d (seed %d) at virtual %v: %s — %s\n",
				te.Trial, te.Seed, te.Clock, te.Rule, te.Msg)
			fmt.Printf("    replay: %s\n", te.ReplayCommand())
		}
	}
	fmt.Printf("\n%-26s %v\n", "trials:", len(agg.Trials))
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (p90):", 100*agg.BufRatioP90())
	fmt.Printf("%-26s %.2f%%\n", "bufRatio (mean):", 100*agg.BufRatioMean())
	fmt.Printf("%-26s %.2f Mbps\n", "avg bitrate:", agg.BitrateMean()/1e6)
	cdf := agg.ScoreCDF()
	fmt.Printf("%-26s p10=%.4f median=%.4f p90=%.4f\n", cfg.Metric.String()+" scores:",
		cdf.Quantile(0.1), cdf.Quantile(0.5), cdf.Quantile(0.9))
	var skipped, residual, startup []float64
	for _, t := range agg.Trials {
		skipped = append(skipped, t.Skipped)
		residual = append(residual, t.Residual)
		startup = append(startup, t.StartupDelay.Seconds())
	}
	fmt.Printf("%-26s %.2f%%\n", "data skipped (mean):", 100*stats.Mean(skipped))
	fmt.Printf("%-26s %.2f%%\n", "residual loss (mean):", 100*stats.Mean(residual))
	fmt.Printf("%-26s %.2f s\n", "startup delay (mean):", stats.Mean(startup))
}

// exportTelemetry mirrors voxel-sim's export helper ("" = skip, "-" =
// stdout).
func exportTelemetry(report *voxel.Report, jsonlPath, csvPath string) error {
	write := func(path string, emit func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return emit(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
		return nil
	}
	if err := write(jsonlPath, report.WriteJSONL); err != nil {
		return err
	}
	return write(csvPath, report.WriteCSV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voxel-merge:", strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(1)
}

module voxel

go 1.22

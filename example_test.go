package voxel_test

import (
	"errors"
	"fmt"

	"voxel"
)

// ExampleNew shows the Session entry point: configure with functional
// options, run, and read the aggregate plus the telemetry report. The
// simulation is deterministic, so the output is exact.
func ExampleNew() {
	agg, report, err := voxel.New("BBB",
		voxel.WithSystem(voxel.VOXEL),
		voxel.WithTrials(1),
		voxel.WithSegments(4),
		voxel.WithTelemetry(),
	).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("trials: %d\n", len(agg.Trials))
	fmt.Printf("completed: %v\n", agg.Trials[0].Completed)
	fmt.Printf("segments streamed: %d\n", len(agg.Trials[0].Scores))
	fmt.Printf("telemetry trials: %d\n", len(report.Trials))
	// Output:
	// trials: 1
	// completed: true
	// segments streamed: 4
	// telemetry trials: 1
}

// ExampleTrialError shows typed failed-trial inspection without importing
// internal packages: a failure surfaced through an error-returning path
// unwraps to *voxel.TrialError with errors.As. The example injects a panic
// at trial 1 of 2; the harness isolates it, the other trial completes, and
// the structured record carries the rule and the trial's derived seed.
func ExampleTrialError() {
	agg, _, err := voxel.New("BBB",
		voxel.WithTrials(2),
		voxel.WithSegments(3),
		voxel.WithInject("panic@1"),
	).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// Something downstream wraps the failure into a plain error chain…
	wrapped := fmt.Errorf("campaign had failures: %w", &agg.Failed[0])

	// …and the caller recovers the typed record without string matching.
	var te *voxel.TrialError
	if errors.As(wrapped, &te) {
		fmt.Printf("rule: %s\n", te.Rule)
		fmt.Printf("trial: %d\n", te.Trial)
		fmt.Printf("survivors: %d of %d\n", len(agg.BufRatios), len(agg.Trials))
	}
	// Output:
	// rule: panic
	// trial: 1
	// survivors: 1 of 2
}

package voxel_test

import (
	"fmt"

	"voxel"
)

// ExampleNew shows the Session entry point: configure with functional
// options, run, and read the aggregate plus the telemetry report. The
// simulation is deterministic, so the output is exact.
func ExampleNew() {
	agg, report, err := voxel.New("BBB",
		voxel.WithSystem(voxel.VOXEL),
		voxel.WithTrials(1),
		voxel.WithSegments(4),
		voxel.WithTelemetry(),
	).Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("trials: %d\n", len(agg.Trials))
	fmt.Printf("completed: %v\n", agg.Trials[0].Completed)
	fmt.Printf("segments streamed: %d\n", len(agg.Trials[0].Scores))
	fmt.Printf("telemetry trials: %d\n", len(report.Trials))
	// Output:
	// trials: 1
	// completed: true
	// segments streamed: 4
	// telemetry trials: 1
}

package voxel

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// The System default (VOXEL) is applied uniformly by the experiment layer,
// for both execution paths: a plain Session run and one routed through the
// sweep engine by WithCheckpoint.
func TestDefaultSystemUniform(t *testing.T) {
	a, rep, err := New("BBB", WithTrials(1), WithSegments(3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("telemetry report without WithTelemetry")
	}
	b, _, err := New("BBB", WithTrials(1), WithSegments(3),
		WithCheckpoint(filepath.Join(t.TempDir(), "ck.json"), 1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.System != VOXEL || b.Config.System != VOXEL {
		t.Fatalf("default system = %q / %q, want %q",
			a.Config.System, b.Config.System, VOXEL)
	}
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatal("defaulted runs diverge between the plain and checkpointed paths")
	}
}

func TestSessionTypedErrors(t *testing.T) {
	if _, _, err := New("NotATitle").Run(); !errors.Is(err, ErrUnknownTitle) {
		t.Fatalf("unknown title: got %v, want ErrUnknownTitle", err)
	}
	if _, _, err := New("").Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("missing title: got %v, want ErrInvalidConfig", err)
	}
	if _, _, err := New("BBB", WithTraceName("nope")).Run(); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("unknown trace: got %v, want ErrUnknownTrace", err)
	}
	if _, _, err := New("BBB", WithImpairment("hurricane")).Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown impairment: got %v, want ErrInvalidConfig", err)
	}
	if _, _, err := New("BBB", WithShard(4, 4)).Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("shard index out of range: got %v, want ErrInvalidConfig", err)
	}
	if _, _, err := New("BBB", WithShard(1, 0)).Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("shard index without count: got %v, want ErrInvalidConfig", err)
	}
	if _, err := LoadVideo("nope"); !errors.Is(err, ErrUnknownTitle) {
		t.Fatalf("LoadVideo: got %v, want ErrUnknownTitle", err)
	}
	if _, err := LoadTrace("nope"); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("LoadTrace: got %v, want ErrUnknownTrace", err)
	}
}

func TestSessionTelemetryReport(t *testing.T) {
	agg, rep, err := New("BBB",
		WithTraceName("tmobile"),
		WithBuffer(1),
		WithTrials(1),
		WithSegments(6),
		WithImpairment("bursty"),
		WithTelemetry(),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Trials) != 1 {
		t.Fatal("WithTelemetry did not yield a report")
	}
	if rep != agg.Obs {
		t.Fatal("returned report is not the aggregate's")
	}
	if len(rep.Trials[0].Events) == 0 {
		t.Fatal("telemetry report has no timeline events")
	}
}

func TestSessionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	agg, _, err := New("BBB", WithTrials(2), WithSegments(3), WithContext(ctx)).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if agg != nil {
		t.Fatal("pre-cancelled context should not run any trial")
	}
}

func TestClipFromAggregateEmptyGuard(t *testing.T) {
	for _, a := range []*Aggregate{nil, {}, {Trials: make([]Trial, 0)}} {
		c := ClipFromAggregate(a)
		if c != (Clip{}) {
			t.Fatalf("empty aggregate should give zero clip, got %+v", c)
		}
	}
	// The zero clip flows through RunSurvey without NaN poisoning.
	b, v := PaperClips()
	out := RunSurvey(10, 1, b, v)
	if out.PreferB != out.PreferB { // NaN check
		t.Fatal("survey outcome is NaN")
	}
	empty := RunSurvey(10, 1, ClipFromAggregate(nil), ClipFromAggregate(&Aggregate{}))
	if empty.PreferB != empty.PreferB {
		t.Fatal("empty-clip survey outcome is NaN")
	}
}

// The public sharding surface end to end: shard Sessions, merge with
// MergeAggregates, land exactly on the unsharded run.
func TestSessionShardMerge(t *testing.T) {
	build := func(opts ...Option) *Session {
		base := []Option{WithTraceName("tmobile"), WithTrials(4),
			WithSegments(4), WithTelemetry()}
		return New("BBB", append(base, opts...)...)
	}
	whole, _, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	var shards []*Aggregate
	for i := 0; i < 2; i++ {
		agg, _, err := build(WithShard(i, 2), WithParallelism(2)).Run()
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, agg)
	}
	merged, err := MergeAggregates(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, whole) {
		t.Fatal("MergeAggregates does not reproduce the unsharded session run")
	}
	if _, err := MergeAggregates(shards[:1]); err == nil {
		t.Fatal("incomplete shard set must not merge")
	}
}

// WithCheckpoint: a rerun restores from the file and reproduces the same
// aggregate; a mismatched config refuses the file.
func TestSessionCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	build := func(opts ...Option) *Session {
		base := []Option{WithTraceName("tmobile"), WithTrials(3), WithSegments(4)}
		return New("BBB", append(base, opts...)...)
	}
	plain, _, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := build(WithCheckpoint(path, 1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	resumed, _, err := build(WithCheckpoint(path, 1)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, plain) || !reflect.DeepEqual(resumed, plain) {
		t.Fatal("checkpointed/resumed aggregates differ from the plain run")
	}
	if _, _, err := build(WithSeed(99), WithCheckpoint(path, 1)).Run(); err == nil {
		t.Fatal("checkpoint from a different config must be refused")
	}
}

package voxel

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// The deprecated Stream wrapper and the Session API must produce identical
// aggregates for equivalent inputs — Stream is a thin shim, not a fork.
func TestStreamSessionEquivalence(t *testing.T) {
	tr, err := LoadTrace("verizon")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Title: "BBB", System: VOXEL, Trace: tr,
		BufferSegments: 2, Trials: 2, Segments: 4,
	}
	fromStream, err := Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromSession, rep, err := New("BBB",
		WithSystem(VOXEL),
		WithTrace(tr),
		WithBuffer(2),
		WithTrials(2),
		WithSegments(4),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("telemetry report without WithTelemetry")
	}
	if !reflect.DeepEqual(fromStream.Trials, fromSession.Trials) {
		t.Fatalf("Stream and Session.Run diverge:\n%+v\nvs\n%+v",
			fromStream.Trials, fromSession.Trials)
	}
}

// The System default (VOXEL) is applied uniformly by the experiment layer,
// for both entry points.
func TestDefaultSystemUniform(t *testing.T) {
	a, err := Stream(Config{Title: "BBB", Trials: 1, Segments: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := New("BBB", WithTrials(1), WithSegments(3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.System != VOXEL || b.Config.System != VOXEL {
		t.Fatalf("default system = %q / %q, want %q",
			a.Config.System, b.Config.System, VOXEL)
	}
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Fatal("defaulted runs diverge between Stream and Session")
	}
}

func TestSessionTypedErrors(t *testing.T) {
	if _, _, err := New("NotATitle").Run(); !errors.Is(err, ErrUnknownTitle) {
		t.Fatalf("unknown title: got %v, want ErrUnknownTitle", err)
	}
	if _, _, err := New("").Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("missing title: got %v, want ErrInvalidConfig", err)
	}
	if _, _, err := New("BBB", WithTraceName("nope")).Run(); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("unknown trace: got %v, want ErrUnknownTrace", err)
	}
	if _, _, err := New("BBB", WithImpairment("hurricane")).Run(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("unknown impairment: got %v, want ErrInvalidConfig", err)
	}
	if _, err := Stream(Config{Title: "NotATitle"}); !errors.Is(err, ErrUnknownTitle) {
		t.Fatalf("Stream unknown title: got %v, want ErrUnknownTitle", err)
	}
	if _, err := Stream(Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Stream missing title: got %v, want ErrInvalidConfig", err)
	}
	if _, err := LoadVideo("nope"); !errors.Is(err, ErrUnknownTitle) {
		t.Fatalf("LoadVideo: got %v, want ErrUnknownTitle", err)
	}
	if _, err := LoadTrace("nope"); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("LoadTrace: got %v, want ErrUnknownTrace", err)
	}
}

func TestSessionTelemetryReport(t *testing.T) {
	agg, rep, err := New("BBB",
		WithTraceName("tmobile"),
		WithBuffer(1),
		WithTrials(1),
		WithSegments(6),
		WithImpairment("bursty"),
		WithTelemetry(),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Trials) != 1 {
		t.Fatal("WithTelemetry did not yield a report")
	}
	if rep != agg.Obs {
		t.Fatal("returned report is not the aggregate's")
	}
	if len(rep.Trials[0].Events) == 0 {
		t.Fatal("telemetry report has no timeline events")
	}
}

func TestSessionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	agg, _, err := New("BBB", WithTrials(2), WithSegments(3), WithContext(ctx)).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if agg != nil {
		t.Fatal("pre-cancelled context should not run any trial")
	}
}

func TestClipFromAggregateEmptyGuard(t *testing.T) {
	for _, a := range []*Aggregate{nil, {}, {Trials: make([]Trial, 0)}} {
		c := ClipFromAggregate(a)
		if c != (Clip{}) {
			t.Fatalf("empty aggregate should give zero clip, got %+v", c)
		}
	}
	// The zero clip flows through RunSurvey without NaN poisoning.
	b, v := PaperClips()
	out := RunSurvey(10, 1, b, v)
	if out.PreferB != out.PreferB { // NaN check
		t.Fatal("survey outcome is NaN")
	}
	empty := RunSurvey(10, 1, ClipFromAggregate(nil), ClipFromAggregate(&Aggregate{}))
	if empty.PreferB != empty.PreferB {
		t.Fatal("empty-clip survey outcome is NaN")
	}
}

package voxel

// One benchmark per table and figure of the paper. Each runs the shared
// generator from internal/figures in Quick mode (2 trials, 8-segment clips,
// reduced sweeps) so `go test -bench=.` regenerates every exhibit's shape
// in minutes; cmd/voxel-bench runs the full-size versions and records them
// in EXPERIMENTS.md. Benchmarks log their tables under -v and report a
// headline metric via b.ReportMetric.

import (
	"flag"
	"strconv"
	"strings"
	"testing"

	"voxel/internal/figures"
)

var (
	benchTrials   = flag.Int("figtrials", 0, "trials per experiment cell in figure benchmarks (0 = quick default)")
	benchSegments = flag.Int("figsegments", 0, "segments per clip in figure benchmarks (0 = quick default)")
	benchParallel = flag.Int("figparallel", 1, "concurrent trial workers in figure benchmarks (negative = GOMAXPROCS); tables are identical at any setting")
)

func benchParams() figures.Params {
	return figures.Params{
		Quick:       true,
		Trials:      *benchTrials,
		Segments:    *benchSegments,
		Seed:        1,
		Parallelism: *benchParallel,
	}.Defaults()
}

// runFigure executes a generator once per b.N iteration and logs its table.
func runFigure(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	gen, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var tab *figures.Table
	for i := 0; i < b.N; i++ {
		tab = gen.Run(benchParams())
	}
	b.Log("\n" + tab.String())
	if metricCol >= 0 && len(tab.Rows) > 0 {
		var sum float64
		var n int
		for _, r := range tab.Rows {
			if metricCol >= len(r) {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.Fields(r[metricCol])[0], "%"), 64)
			if err == nil {
				sum += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), metricName)
		}
	}
}

func BenchmarkTable1Videos(b *testing.B)    { runFigure(b, "Tab1", -1, "") }
func BenchmarkTable2Ladder(b *testing.B)    { runFigure(b, "Tab2", -1, "") }
func BenchmarkTable3YouTube(b *testing.B)   { runFigure(b, "Tab3", -1, "") }
func BenchmarkFig1DropTolerance(b *testing.B) {
	runFigure(b, "Fig1", 3, "median_drop_%")
}
func BenchmarkFig1dLowQualitySSIM(b *testing.B) { runFigure(b, "Fig1d", 2, "median_ssim") }
func BenchmarkFig2aFramePositions(b *testing.B) { runFigure(b, "Fig2a", -1, "") }
func BenchmarkFig2bTailVsRanked(b *testing.B)   { runFigure(b, "Fig2b", 1, "ranked_median_%") }
func BenchmarkFig2cdVirtualLevels(b *testing.B) { runFigure(b, "Fig2cd", -1, "") }
func BenchmarkFig3VanillaABRBufRatio(b *testing.B) {
	runFigure(b, "Fig3", 5, "qstar_p90_bufratio_%")
}
func BenchmarkFig4VanillaABRBitrate(b *testing.B)  { runFigure(b, "Fig4", -1, "") }
func BenchmarkFig5CrossTrafficVanilla(b *testing.B) { runFigure(b, "Fig5", 4, "qstar_p90_bufratio_%") }
func BenchmarkFig6BufRatio(b *testing.B)           { runFigure(b, "Fig6", 5, "voxel_p90_bufratio_%") }
func BenchmarkFig7aMetricAgnostic(b *testing.B)    { runFigure(b, "Fig7a", 2, "voxel_ssim_bufratio_%") }
func BenchmarkFig7bcQoECDF(b *testing.B)           { runFigure(b, "Fig7bc", 3, "median_score") }
func BenchmarkFig7dDataSkipped(b *testing.B)       { runFigure(b, "Fig7d", 2, "skipped_%") }
func BenchmarkFig8Bitrate(b *testing.B)            { runFigure(b, "Fig8", -1, "") }
func BenchmarkFig9SSIMCDF(b *testing.B)            { runFigure(b, "Fig9", 3, "median_ssim") }
func BenchmarkFig10Ablation3G(b *testing.B)        { runFigure(b, "Fig10", 2, "mean_bufratio_%") }
func BenchmarkFig11Synthetic(b *testing.B)         { runFigure(b, "Fig11", 2, "mean_ssim") }
func BenchmarkFig11dInTheWild(b *testing.B)        { runFigure(b, "Fig11d", 3, "p90_bufratio_%") }
func BenchmarkFig12CrossTrafficVoxel(b *testing.B) { runFigure(b, "Fig12", 3, "p90_bufratio_%") }
func BenchmarkFig14Survey(b *testing.B)            { runFigure(b, "Fig14", -1, "") }
func BenchmarkFig15SegmentBitrates(b *testing.B)   { runFigure(b, "Fig15", -1, "") }
func BenchmarkFig16LongQueue(b *testing.B)         { runFigure(b, "Fig16", 4, "voxel_p90_bufratio_%") }
func BenchmarkFig17UntunedVoxel(b *testing.B)      { runFigure(b, "Fig17", 3, "tuned_p90_bufratio_%") }
func BenchmarkFig18FCC(b *testing.B)               { runFigure(b, "Fig18ab", 3, "voxel_p90_bufratio_%") }
func BenchmarkFig18PartialReliability(b *testing.B) {
	runFigure(b, "Fig18cd", 4, "voxel_p90_bufratio_%")
}
func BenchmarkFig19YouTubeTolerance(b *testing.B) { runFigure(b, "Fig19", 1, "q12_median_drop_%") }
func BenchmarkFigB1DelayBasedCC(b *testing.B)     { runFigure(b, "FigB1", 3, "bbr_p90_bufratio_%") }
func BenchmarkSelectiveRetransmission(b *testing.B) {
	runFigure(b, "RetxResidual", 1, "residual_loss_%")
}
func BenchmarkReferencedFrameShares(b *testing.B) { runFigure(b, "RefShares", 1, "ref_share_%") }

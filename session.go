package voxel

import (
	"context"
	"fmt"
	"time"

	"voxel/internal/exp"
	"voxel/internal/sweep"
)

// Session is a configured streaming experiment: the public entry point.
// Build one with New and functional options, then call Run:
//
//	sess := voxel.New("BBB",
//		voxel.WithSystem(voxel.VOXEL),
//		voxel.WithTraceName("verizon"),
//		voxel.WithTelemetry())
//	agg, report, err := sess.Run()
//
// The zero value is not usable; always construct through New. A Session is
// immutable after New and safe to Run multiple times (each Run executes the
// full trial set again, deterministically).
type Session struct {
	cfg     Config
	ctx     context.Context
	ckPath  string // checkpoint file; "" disables checkpoint/resume
	ckEvery int    // checkpoint every N completed trials (default 1)
	err     error  // first option error, surfaced by Run
}

// Option configures a Session.
type Option func(*Session)

// New builds a session for a catalog title. Option errors (e.g. an unknown
// trace name) and config validation are deferred to Run, so construction
// chains cleanly.
func New(title string, opts ...Option) *Session {
	s := &Session{cfg: Config{Title: title}}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithSystem selects the client system (ABR + transport mode). The default
// is the full VOXEL system.
func WithSystem(sys System) Option {
	return func(s *Session) { s.cfg.System = sys }
}

// WithTrace streams over the given bandwidth trace.
func WithTrace(tr *Trace) Option {
	return func(s *Session) { s.cfg.Trace = tr }
}

// WithTraceName resolves a canonical trace by name (tmobile, verizon, att,
// 3g, fcc, wild). An unknown name fails Run with ErrUnknownTrace.
func WithTraceName(name string) Option {
	return func(s *Session) {
		tr, err := LoadTrace(name)
		if err != nil {
			s.fail(err)
			return
		}
		s.cfg.Trace = tr
	}
}

// WithMetric scores segments with the given QoE metric (default SSIM).
func WithMetric(m Metric) Option {
	return func(s *Session) { s.cfg.Metric = m }
}

// WithImpairment applies a netem fault profile to the path (see
// ImpairmentProfiles). Unknown profiles fail Run with ErrInvalidConfig.
func WithImpairment(profile string) Option {
	return func(s *Session) { s.cfg.Impairment = profile }
}

// WithFailover adds a second origin server and blackholes the primary path
// mid-stream, exercising idle-timeout detection and client failover.
func WithFailover() Option {
	return func(s *Session) { s.cfg.Failover = true }
}

// WithTelemetry attaches a per-trial telemetry scope to every layer and
// makes Run return the collected Report. Metrics are unchanged: recording
// never perturbs the simulation.
func WithTelemetry() Option {
	return func(s *Session) { s.cfg.Telemetry = true }
}

// WithTimelineCap overrides the per-trial telemetry event ring capacity.
func WithTimelineCap(n int) Option {
	return func(s *Session) { s.cfg.TimelineCap = n }
}

// WithContext aborts the run between trials once ctx is done; Run then
// returns ctx's error alongside the partial aggregate.
func WithContext(ctx context.Context) Option {
	return func(s *Session) { s.ctx = ctx }
}

// WithBuffer sets the playback buffer capacity in segments (paper: 1–7).
func WithBuffer(segments int) Option {
	return func(s *Session) { s.cfg.BufferSegments = segments }
}

// WithTrials sets the number of trials (trace-shifted repetitions).
func WithTrials(n int) Option {
	return func(s *Session) { s.cfg.Trials = n }
}

// WithSegments limits the clip length (0 = the full 75 segments).
func WithSegments(n int) Option {
	return func(s *Session) { s.cfg.Segments = n }
}

// WithSeed sets the base random seed (default 1).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.cfg.Seed = seed }
}

// WithParallelism fans trials out across n workers (negative = GOMAXPROCS).
// Aggregates are bit-identical at any setting.
func WithParallelism(n int) Option {
	return func(s *Session) { s.cfg.Parallelism = n }
}

// WithSessions runs n concurrent video sessions per trial (swarm mode),
// each a full independent client/server stack, all multiplexed through one
// shared bottleneck path. 0 and 1 both run a single session. Per-session
// results land in Trial.Sessions together with the trial's Jain fairness
// index and bottleneck utilization; n outside [0, exp.MaxSessions] fails
// Run with ErrInvalidConfig.
func WithSessions(n int) Option {
	return func(s *Session) { s.cfg.Sessions = n }
}

// WithCrossTraffic streams through a fixed-capacity link (bps) against the
// given offered competing load (bps) instead of a trace.
func WithCrossTraffic(offered, linkCapacity float64) Option {
	return func(s *Session) {
		s.cfg.CrossTraffic = offered
		s.cfg.LinkCapacity = linkCapacity
	}
}

// WithCC selects the server congestion controller: "cubic" (default) or
// "bbr".
func WithCC(name string) Option {
	return func(s *Session) { s.cfg.CC = name }
}

// WithQueue sets the bottleneck queue length in packets.
func WithQueue(packets int) Option {
	return func(s *Session) { s.cfg.QueuePackets = packets }
}

// WithMaxSimTime bounds one trial's virtual time (default 20× the media).
func WithMaxSimTime(d time.Duration) Option {
	return func(s *Session) { s.cfg.MaxSimTime = d }
}

// WithInvariants arms the cross-layer invariant checker in every trial
// world: QUIC* packet/byte conservation, reliable-stream contiguity,
// non-negative player buffer, monotone simulator clock, exactly-one
// datagram fate. A violation fails that trial with a TrialError in
// Aggregate.Failed; the other trials keep running. Off by default and free
// when off.
func WithInvariants() Option {
	return func(s *Session) { s.cfg.Invariants = true }
}

// WithWatchdog bounds each trial by wall-clock time and/or executed
// simulator events (0 disables that budget). A breached budget fails the
// trial with a "watchdog.*" TrialError instead of hanging the run — the
// only defense against a zero-delay event storm, which burns events
// without advancing virtual time.
func WithWatchdog(wall time.Duration, events uint64) Option {
	return func(s *Session) {
		s.cfg.WatchdogWall = wall
		s.cfg.WatchdogEvents = events
	}
}

// WithShard makes the session run shard index of a count-way campaign: it
// executes only the trials whose index ≡ index (mod count), leaving the
// other slots of the aggregate zero-valued. Trial seeds and trace shifts
// depend only on the trial index and the full trial count, so running
// every shard (in separate processes, on separate machines) and folding
// the aggregates with MergeAggregates reproduces the unsharded run
// bit for bit. index outside [0, count) fails Run with ErrInvalidConfig.
func WithShard(index, count int) Option {
	return func(s *Session) {
		s.cfg.ShardIndex = index
		s.cfg.ShardCount = count
	}
}

// WithCheckpoint persists completed-trial state to path after every
// `every` completed trials (≤ 0 means after every trial). Each write is
// atomic (temp file + fsync + rename), so a crash or SIGKILL at any
// instant leaves a complete checkpoint on disk; a subsequent Run pointed
// at the same path restores the finished trials, recomputes nothing, and
// produces the aggregate of an uninterrupted run. A checkpoint written by
// a different configuration (fingerprint mismatch) fails Run rather than
// being silently overwritten. The final checkpoint of a finished run is
// the shard's output file, consumable by `voxel-merge`.
func WithCheckpoint(path string, every int) Option {
	return func(s *Session) {
		s.ckPath = path
		s.ckEvery = every
	}
}

// WithInject schedules a deliberate fault inside the trial world ("panic",
// "invariant", or "spin", optionally "@trial") to exercise the failure
// pipeline end to end. Meant for tests and repro artifacts.
func WithInject(spec string) Option {
	return func(s *Session) { s.cfg.Inject = spec }
}

func (s *Session) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Config returns a copy of the experiment configuration the session will
// run (after New's options, before defaulting).
func (s *Session) Config() Config { return s.cfg }

// Run executes the full trial set and returns the aggregate plus the
// telemetry report (nil unless WithTelemetry was given). Identifier
// problems surface as typed sentinel errors: ErrUnknownTitle,
// ErrUnknownTrace, ErrInvalidConfig.
func (s *Session) Run() (*Aggregate, *Report, error) {
	if s.err != nil {
		return nil, nil, s.err
	}
	cfg := s.cfg
	if err := validateConfig(cfg); err != nil {
		return nil, nil, err
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, nil, err
		}
		cfg.Interrupt = s.ctx.Done()
	}
	var agg *Aggregate
	if s.ckPath != "" {
		res, err := sweep.Run(cfg, sweep.Options{Checkpoint: s.ckPath, Every: s.ckEvery})
		if err != nil {
			return nil, nil, err
		}
		agg = res.Agg
	} else {
		agg = exp.Run(cfg)
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		return agg, agg.Obs, s.ctx.Err()
	}
	return agg, agg.Obs, nil
}

// validateConfig maps identifier problems to the facade's typed errors.
func validateConfig(cfg Config) error {
	if cfg.Title == "" {
		return fmt.Errorf("%w: missing title", ErrInvalidConfig)
	}
	if _, err := LoadVideo(cfg.Title); err != nil {
		return err // already wraps ErrUnknownTitle
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return nil
}

// Livestream: the paper's motivating low-latency scenario — a 1-segment
// playback buffer (plus one in flight) across every cellular trace. Small
// buffers leave no slack for bitrate mistakes, which is where VOXEL's
// virtual quality levels and smart abandonment matter most (§5.2).
package main

import (
	"fmt"
	"log"

	"voxel"
)

func main() {
	fmt.Println("Live-streaming-like setup: 1-segment buffer, Sintel, 5 trials per trace.")
	fmt.Printf("\n%-10s %16s %16s %14s\n", "trace", "BOLA p90 stall", "VOXEL p90 stall", "VOXEL bitrate")

	for _, name := range []string{"tmobile", "verizon", "att", "3g", "fcc"} {
		cell := func(sys voxel.System) *voxel.Aggregate {
			agg, _, err := voxel.New("Sintel",
				voxel.WithSystem(sys),
				voxel.WithTraceName(name),
				voxel.WithBuffer(1),
				voxel.WithTrials(5),
				voxel.WithSegments(20),
			).Run()
			if err != nil {
				log.Fatal(err)
			}
			return agg
		}
		bola := cell(voxel.BOLA)
		vox := cell(voxel.VOXEL)
		fmt.Printf("%-10s %15.2f%% %15.2f%% %11.2f Mb\n",
			name, 100*bola.BufRatioP90(), 100*vox.BufRatioP90(), vox.BitrateMean()/1e6)
	}

	fmt.Println("\nEven at a single segment of buffer, VOXEL keeps playback fluid by")
	fmt.Println("finishing partial segments instead of re-downloading them.")
}

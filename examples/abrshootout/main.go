// ABR shootout: every system in the paper's evaluation — the naive
// throughput picker, BOLA and MPC over QUIC and QUIC*, BETA, the BOLA-SSIM
// intermediate, and VOXEL — on the same challenging T-Mobile trace.
package main

import (
	"fmt"
	"log"

	"voxel"
)

func main() {
	systems := []voxel.System{
		voxel.Tput,
		voxel.BOLA,
		voxel.BOLAQuicStar,
		voxel.MPC,
		voxel.MPCQuicStar,
		voxel.BETA,
		voxel.BOLASSIM,
		voxel.VOXEL,
	}

	fmt.Println("All systems streaming ToS over T-Mobile LTE (3-segment buffer, 5 trials).")
	fmt.Printf("\n%-12s %14s %14s %13s %12s\n",
		"system", "p90 bufRatio", "mean bitrate", "median SSIM", "mean SSIM")

	type row struct {
		sys voxel.System
		agg *voxel.Aggregate
	}
	var rows []row
	for _, sys := range systems {
		agg, _, err := voxel.New("ToS",
			voxel.WithSystem(sys),
			voxel.WithTraceName("tmobile"),
			voxel.WithBuffer(3),
			voxel.WithTrials(5),
			voxel.WithSegments(25),
		).Run()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{sys, agg})
		fmt.Printf("%-12s %13.2f%% %11.2f Mb %13.4f %12.4f\n",
			sys, 100*agg.BufRatioP90(), agg.BitrateMean()/1e6,
			agg.ScoreCDF().Quantile(0.5), agg.MeanScore())
	}

	best := rows[0]
	for _, r := range rows[1:] {
		if r.agg.BufRatioP90() < best.agg.BufRatioP90() {
			best = r
		}
	}
	fmt.Printf("\nLowest p90 rebuffering: %s.\n", best.sys)
}

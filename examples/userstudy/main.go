// Userstudy: reproduce the §5.3 study end to end — stream the same video
// with BOLA and with VOXEL under challenging 3G conditions, derive the
// clip statistics the participants saw, and put them in front of the
// 54-user model panel.
package main

import (
	"fmt"
	"log"

	"voxel"
	"voxel/internal/trace"
)

func main() {
	// Challenging conditions, as in the paper: a low-bandwidth 3G commute
	// trace and a 1-segment buffer.
	tr := trace.Riiser3GSet(3)[0]
	fmt.Printf("Streaming BBB over a 3G commute trace (mean %.1f Mbps), 1-segment buffer…\n",
		tr.Mean()/1e6)

	run := func(sys voxel.System) *voxel.Aggregate {
		agg, _, err := voxel.New("BBB",
			voxel.WithSystem(sys),
			voxel.WithTrace(tr),
			voxel.WithBuffer(1),
			voxel.WithTrials(5),
			voxel.WithSegments(15),
		).Run()
		if err != nil {
			log.Fatal(err)
		}
		return agg
	}
	bola := run(voxel.BOLA)
	vox := run(voxel.VOXEL)

	clipB := voxel.ClipFromAggregate(bola)
	clipV := voxel.ClipFromAggregate(vox)
	fmt.Printf("\nclip statistics    %-10s %-10s\n", "BOLA", "VOXEL")
	fmt.Printf("bufRatio           %-10.3f %-10.3f\n", clipB.BufRatio, clipV.BufRatio)
	fmt.Printf("mean SSIM          %-10.3f %-10.3f\n", clipB.MeanScore, clipV.MeanScore)
	fmt.Printf("artifacts          %-10.3f %-10.3f\n", clipB.ArtifactFraction, clipV.ArtifactFraction)

	out := voxel.RunSurvey(54, 1, clipB, clipV)
	fmt.Printf("\n54-user panel      %-10s %-10s   (paper)\n", "BOLA", "VOXEL")
	fmt.Printf("clarity MOS        %-10.2f %-10.2f\n", out.MeanA.Clarity, out.MeanB.Clarity)
	fmt.Printf("glitches MOS       %-10.2f %-10.2f\n", out.MeanA.Glitches, out.MeanB.Glitches)
	fmt.Printf("fluidity MOS       %-10.2f %-10.2f   (+1.7 for VOXEL)\n", out.MeanA.Fluidity, out.MeanB.Fluidity)
	fmt.Printf("experience MOS     %-10.2f %-10.2f   (+0.77 for VOXEL)\n", out.MeanA.Experience, out.MeanB.Experience)
	pc := func(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
	fmt.Printf("preference         %-10s %-10s   (16%% / 84%%)\n", pc(1-out.PreferB), pc(out.PreferB))
	fmt.Printf("would stop         %-10s %-10s   (31%% / 10%%)\n", pc(out.WouldStopA), pc(out.WouldStopB))
	fmt.Printf("won't watch longer %-10s %-10s   (74%% / 36.7%%)\n", pc(out.WouldNotWatchA), pc(out.WouldNotWatchB))
}

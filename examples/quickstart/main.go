// Quickstart: stream one video with VOXEL over an LTE trace and compare it
// against the BOLA/QUIC baseline — the paper's headline comparison in
// about thirty lines of API use.
package main

import (
	"fmt"
	"log"

	"voxel"
)

func main() {
	run := func(sys voxel.System) *voxel.Aggregate {
		agg, _, err := voxel.New("BBB",
			voxel.WithSystem(sys),
			voxel.WithTraceName("verizon"),
			voxel.WithBuffer(2), // low-latency-like small buffer
			voxel.WithTrials(5),
			voxel.WithSegments(25),
		).Run()
		if err != nil {
			log.Fatal(err)
		}
		return agg
	}

	fmt.Println("Streaming BBB over the Verizon LTE trace (2-segment buffer, 5 trials)…")
	bola := run(voxel.BOLA)
	vox := run(voxel.VOXEL)

	fmt.Printf("\n%-12s %14s %14s %12s\n", "system", "p90 bufRatio", "mean bitrate", "median SSIM")
	for _, row := range []struct {
		name string
		agg  *voxel.Aggregate
	}{{"BOLA/QUIC", bola}, {"VOXEL", vox}} {
		fmt.Printf("%-12s %13.2f%% %11.2f Mb %12.4f\n",
			row.name,
			100*row.agg.BufRatioP90(),
			row.agg.BitrateMean()/1e6,
			row.agg.ScoreCDF().Quantile(0.5))
	}

	if b, v := bola.BufRatioP90(), vox.BufRatioP90(); b > 0 {
		fmt.Printf("\nVOXEL rebuffers %.0f%% less than the state of the art.\n", 100*(b-v)/b)
	} else {
		fmt.Println("\nNeither system rebuffered under these conditions.")
	}
}

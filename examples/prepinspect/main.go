// Prepinspect: walk through VOXEL's offline content preparation (§4.1) for
// one segment — the three candidate frame orderings, the bytes→SSIM curve,
// and the virtual quality levels the ABR will later choose from.
package main

import (
	"fmt"
	"log"

	"voxel"
	"voxel/internal/prep"
)

func main() {
	v, err := voxel.LoadVideo("BBB")
	if err != nil {
		log.Fatal(err)
	}
	const segIdx = 10
	s := v.Segment(segIdx, 12)

	fmt.Printf("%s segment %d at Q12: %d frames, %.2f Mbps, complexity %.2f\n",
		v.Title, segIdx, len(s.Frames), s.Bitrate()/1e6, s.Complexity)

	i, p, b := s.ByteShares()
	fmt.Printf("byte split: %.0f%% I / %.0f%% P / %.0f%% B (paper: ≈15/65/20)\n\n",
		100*i, 100*p, 100*b)

	a := prep.NewAnalyzer()
	fmt.Println("Max droppable frames at SSIM ≥ 0.99, per ordering:")
	for _, o := range prep.Orderings() {
		frac := a.MaxDropFraction(s, o, 0.99)
		drop := a.DropSet(s, o, 0.99)
		fmt.Printf("  %-18s %5.1f%%  (referenced among dropped: %.0f%%)\n",
			o, 100*frac, 100*prep.ReferencedShare(s, drop))
	}

	// The §4.1 selection: cheapest ordering that clears the Q11 bound.
	lower := v.Segment(segIdx, 11)
	bound := a.Model.Score(a.Metric, lower, make([]float64, len(lower.Frames)))
	plan := a.Analyze(s, bound)
	fmt.Printf("\nLower bound (pristine Q11 SSIM): %.4f\n", bound)
	fmt.Printf("Chosen ordering: %v — reach the bound with %.2f MB of %.2f MB (reliable part: %.0f kB)\n",
		plan.Ordering, float64(plan.MinBytes)/1e6, float64(s.TotalBytes())/1e6,
		float64(plan.ReliableSize)/1e3)

	fmt.Println("\nVirtual quality levels (the manifest's `ssims` tuples, thinned):")
	fmt.Printf("  %-10s %8s %10s\n", "SSIM", "frames", "bytes")
	for _, pt := range prep.ThinPoints(plan.Points, 10) {
		fmt.Printf("  %-10.4f %8d %10d\n", pt.Score, pt.Frames, pt.Bytes)
	}
}

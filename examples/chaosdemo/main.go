// Chaosdemo: stream VOXEL through the netem fault-injection profiles and
// watch the recovery stack ride out the damage. Setting Config.Impairment
// attaches a deterministic impairment chain (burst loss, jitter, reorder,
// duplication, link flaps, blackouts) to the path and arms the full
// recovery stack: request deadlines + retries in the HTTP client, idle
// timeout + keepalive + capped PTO backoff in QUIC*. Config.Failover adds
// a second origin and kills the primary path mid-stream.
package main

import (
	"fmt"
	"log"

	"voxel"
)

func main() {
	run := func(label string, impairment string, failover bool) {
		opts := []voxel.Option{
			voxel.WithSystem(voxel.VOXEL),
			voxel.WithTraceName("verizon"),
			voxel.WithBuffer(7),
			voxel.WithTrials(3),
			voxel.WithSegments(25),
			voxel.WithImpairment(impairment),
		}
		if failover {
			opts = append(opts, voxel.WithFailover())
		}
		agg, _, err := voxel.New("BBB", opts...).Run()
		if err != nil {
			log.Fatal(err)
		}
		var failed int
		completed := 0
		for _, t := range agg.Trials {
			failed += t.FailedReqs
			if t.Completed {
				completed++
			}
		}
		fmt.Printf("%-18s bufRatio(p90) %5.1f%%  bitrate %5.2f Mbps  SSIM %.3f  failed=%d  done=%d/%d\n",
			label, 100*agg.BufRatioP90(), agg.BitrateMean()/1e6, agg.MeanScore(),
			failed, completed, len(agg.Trials))
	}

	fmt.Println("VOXEL streaming BBB over Verizon LTE under fault injection:")
	for _, prof := range voxel.ImpairmentProfiles() {
		run(prof, prof, false)
	}
	// The failover scenario: the primary path is permanently blackholed
	// 30 s in; the client detects the dead connection via idle timeout and
	// re-issues in-flight requests against the second origin.
	run("failover", "clean", true)
}

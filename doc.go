// Package voxel is a from-scratch Go reproduction of "VOXEL: Cross-layer
// Optimization for Video Streaming with Imperfect Transmission" (Palmer et
// al., CoNEXT 2021).
//
// VOXEL combines three cooperating pieces:
//
//   - an offline content-preparation step that rank-orders the frames of
//     every DASH segment by their QoE importance and enriches the manifest
//     with bytes→QoE mappings and reliable/unreliable byte ranges (§4.1);
//   - QUIC*, a partially reliable QUIC variant offering unreliable streams
//     under the connection's CUBIC congestion and flow control, with
//     precise loss reporting to the application (§4.2);
//   - ABR*, a BOLA-derived adaptation algorithm that optimizes a QoE
//     utility, chooses among virtual quality levels (partial segments) and
//     abandons downloads by keeping the partial segment (§4.3).
//
// Everything runs on a deterministic discrete-event simulator, from the
// packet-level transport up to the player, so the paper's evaluation
// (Figs. 1–19) regenerates reproducibly on a laptop. See DESIGN.md for the
// system inventory and the substitutions made for the paper's physical
// testbed, and EXPERIMENTS.md for paper-vs-measured results.
//
// The top-level package is a thin facade over the internal packages; start
// with New (the Session API) for an end-to-end run — optionally with
// per-trial telemetry via WithTelemetry — or PrepareManifest for the
// offline analysis. The runnable examples under examples/ exercise the
// same API.
package voxel

package voxel

import (
	"errors"
	"fmt"

	"voxel/internal/dash"
	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/obs"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/survey"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// Re-exported domain types, so library consumers work with one import.
type (
	// Video is a title with its deterministic segment synthesizer.
	Video = video.Video
	// Quality indexes the Tab. 2 bitrate ladder (Q0–Q12).
	Quality = video.Quality
	// Segment is one 4-second piece of a title at one quality.
	Segment = video.Segment
	// Manifest is the (optionally VOXEL-enriched) DASH MPD.
	Manifest = dash.Manifest
	// Metric selects the QoE metric (SSIM, VMAF, PSNR).
	Metric = qoe.Metric
	// Trace is a bandwidth trace.
	Trace = trace.Trace
	// System names a full client configuration (ABR + transport).
	System = exp.System
	// Config specifies one experiment cell.
	Config = exp.Config
	// Aggregate holds the trials of one experiment cell.
	Aggregate = exp.Aggregate
	// Trial is one playback run's summary within an Aggregate.
	Trial = exp.Trial
	// SessionResult is one session's summary within a swarm-mode Trial
	// (see WithSessions).
	SessionResult = exp.SessionResult
	// TrialError is the structured failure record of one trial: a
	// recovered panic, a cross-layer invariant violation, or a breached
	// watchdog budget. The failing trial's slot in Aggregate.Trials stays
	// zero-valued with Failed set, the error lands in Aggregate.Failed (in
	// trial order), and the other trials of the sweep finish untouched.
	// Each record carries the post-defaulting Config, the trial index and
	// derived per-trial Seed, the swarm Session under construction (-1 once
	// the event loop was running), the virtual Clock at death, a Rule
	// classifying the failure ("panic", "error", "watchdog.wall-budget",
	// "watchdog.event-budget", or an invariant rule such as
	// "quic.byte-conservation"), the message, and the goroutine Stack for
	// panics. It implements error, so a failed trial surfaced through any
	// error-returning path can be inspected with errors.As — see
	// ExampleTrialError.
	TrialError = exp.TrialError
	// Clip is the clip-statistics input to RunSurvey.
	Clip = survey.Clip
	// Outcome is the user-study result RunSurvey returns.
	Outcome = survey.Outcome
	// Plan is the offline per-segment analysis result.
	Plan = prep.Plan
	// Summary is a sample summary (mean, percentiles, ...).
	Summary = stats.Summary
	// Report is the aggregated telemetry of one experiment cell (see
	// Session.Run and Config.Telemetry).
	Report = obs.Report
)

// Typed sentinel errors returned (wrapped) by the facade; test with
// errors.Is.
var (
	// ErrUnknownTitle reports a title outside the catalog.
	ErrUnknownTitle = errors.New("voxel: unknown title")
	// ErrUnknownTrace reports a trace name outside the canonical set.
	ErrUnknownTrace = errors.New("voxel: unknown trace")
	// ErrInvalidConfig reports a configuration that fails validation.
	ErrInvalidConfig = errors.New("voxel: invalid config")
)

// QoE metrics.
const (
	SSIM = qoe.SSIM
	VMAF = qoe.VMAF
	PSNR = qoe.PSNR
)

// The systems compared throughout the evaluation.
const (
	BOLA         = exp.SysBolaQ
	BOLAQuicStar = exp.SysBolaQStar
	MPC          = exp.SysMPCQ
	MPCQuicStar  = exp.SysMPCQStar
	Tput         = exp.SysTputQ
	BETA         = exp.SysBeta
	BOLASSIM     = exp.SysBolaSSIM
	VOXEL        = exp.SysVoxel
	VOXELRel     = exp.SysVoxelRel
	VOXELUntuned = exp.SysVoxelUntuned
)

// LoadVideo loads a catalog title (BBB, ED, Sintel, ToS, P1–P10). Unknown
// names return an error wrapping ErrUnknownTitle.
func LoadVideo(name string) (*Video, error) {
	v, err := video.Load(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownTitle, name, video.AllTitles())
	}
	return v, nil
}

// Titles lists the four canonical evaluation titles.
func Titles() []string { return video.TestTitles() }

// YouTubeTitles lists the ten Tab. 3 clips.
func YouTubeTitles() []string { return video.YouTubeTitles() }

// LoadTrace resolves a canonical trace by name: tmobile, verizon, att, 3g,
// fcc, wild. Unknown names return an error wrapping ErrUnknownTrace.
func LoadTrace(name string) (*Trace, error) {
	tr, err := trace.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownTrace, name, trace.Names())
	}
	return tr, nil
}

// TraceNames lists the canonical trace names.
func TraceNames() []string { return trace.Names() }

// PrepareManifest runs the §4.1 offline analysis for a title and returns
// the enriched manifest (pointsPerSegment ≤ 0 keeps the full QoE curves).
func PrepareManifest(v *Video, metric Metric, pointsPerSegment int) *Manifest {
	a := prep.NewAnalyzer()
	a.Metric = metric
	return dash.Build(v, dash.BuildOptions{
		Voxel:            true,
		PointsPerSegment: pointsPerSegment,
		Analyzer:         a,
	})
}

// AnalyzeSegment runs the offline frame-ranking analysis for one segment
// against a lower-bound score.
func AnalyzeSegment(s *Segment, lowerBound float64) Plan {
	return prep.NewAnalyzer().Analyze(s, lowerBound)
}

// DropTolerance returns, per segment of the title at quality q, the
// maximum fraction of frames droppable (under the inbound-reference
// ranking) while the SSIM stays at or above target — the Fig. 1 curves.
func DropTolerance(v *Video, q Quality, target float64) []float64 {
	a := prep.NewAnalyzer()
	out := make([]float64, v.Segments)
	for i := range out {
		out[i] = a.MaxDropFraction(v.Segment(i, q), prep.OrderByInboundRefs, target)
	}
	return out
}

// MergeAggregates folds the aggregates of a complete shard set (every
// shard of one campaign, each produced by a Session run with WithShard or
// a `voxel-sim -shard i/n` process) back into the aggregate the equivalent
// unsharded run would have produced, bit for bit: per-trial seeds and
// trace shifts depend only on the trial index and the full trial count,
// never on which shard ran the trial, so re-slotting the shards' results
// and re-folding reproduces the single-process output exactly (only the
// run-specific Stack text of failure records can differ). The merged
// aggregate's Config is normalized — shard coordinates, parallelism, and
// interrupt plumbing cleared. A single unsharded aggregate merges to
// itself. Incomplete, overlapping, or configuration-mismatched shard sets
// return an error.
func MergeAggregates(shards []*Aggregate) (*Aggregate, error) {
	return exp.MergeShards(shards)
}

// ImpairmentProfiles lists the canonical netem fault profiles accepted by
// Config.Impairment: clean, bursty, flaky-wifi, handover-blackout.
func ImpairmentProfiles() []string { return netem.Profiles() }

// Summarize computes summary statistics of a sample.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// RunSurvey evaluates the §5.3 user-study model on two streamed outcomes.
func RunSurvey(users int, seed int64, baseline, voxelClip Clip) Outcome {
	return survey.NewPanel(users, seed).Evaluate(baseline, voxelClip)
}

// PaperClips returns the paper's §5.3 baseline/VOXEL clip statistics.
func PaperClips() (baseline, voxelClip Clip) { return survey.PaperClips() }

// ClipFromAggregate derives survey-clip statistics from an experiment. An
// empty aggregate (no trials or no scored segments) yields the zero Clip
// rather than NaN fields that would poison RunSurvey's MOS arithmetic.
func ClipFromAggregate(a *Aggregate) survey.Clip {
	if a == nil || len(a.Trials) == 0 || len(a.AllScores) == 0 {
		return survey.Clip{}
	}
	scores := a.AllScores
	return survey.Clip{
		BufRatio:         stats.Mean(a.BufRatios),
		MeanScore:        stats.Mean(scores),
		ScoreStdDev:      stats.StdDev(scores),
		ArtifactFraction: residualMean(a),
	}
}

func residualMean(a *Aggregate) float64 {
	if a == nil || len(a.Trials) == 0 {
		return 0
	}
	xs := make([]float64, 0, len(a.Trials))
	for _, t := range a.Trials {
		xs = append(xs, t.Residual)
	}
	return stats.Mean(xs)
}

package voxel

import (
	"fmt"

	"voxel/internal/dash"
	"voxel/internal/exp"
	"voxel/internal/netem"
	"voxel/internal/prep"
	"voxel/internal/qoe"
	"voxel/internal/stats"
	"voxel/internal/survey"
	"voxel/internal/trace"
	"voxel/internal/video"
)

// Re-exported domain types, so library consumers work with one import.
type (
	// Video is a title with its deterministic segment synthesizer.
	Video = video.Video
	// Quality indexes the Tab. 2 bitrate ladder (Q0–Q12).
	Quality = video.Quality
	// Segment is one 4-second piece of a title at one quality.
	Segment = video.Segment
	// Manifest is the (optionally VOXEL-enriched) DASH MPD.
	Manifest = dash.Manifest
	// Metric selects the QoE metric (SSIM, VMAF, PSNR).
	Metric = qoe.Metric
	// Trace is a bandwidth trace.
	Trace = trace.Trace
	// System names a full client configuration (ABR + transport).
	System = exp.System
	// Config specifies one experiment cell.
	Config = exp.Config
	// Aggregate holds the trials of one experiment cell.
	Aggregate = exp.Aggregate
	// Plan is the offline per-segment analysis result.
	Plan = prep.Plan
	// Summary is a sample summary (mean, percentiles, ...).
	Summary = stats.Summary
)

// QoE metrics.
const (
	SSIM = qoe.SSIM
	VMAF = qoe.VMAF
	PSNR = qoe.PSNR
)

// The systems compared throughout the evaluation.
const (
	BOLA         = exp.SysBolaQ
	BOLAQuicStar = exp.SysBolaQStar
	MPC          = exp.SysMPCQ
	MPCQuicStar  = exp.SysMPCQStar
	Tput         = exp.SysTputQ
	BETA         = exp.SysBeta
	BOLASSIM     = exp.SysBolaSSIM
	VOXEL        = exp.SysVoxel
	VOXELRel     = exp.SysVoxelRel
	VOXELUntuned = exp.SysVoxelUntuned
)

// LoadVideo loads a catalog title (BBB, ED, Sintel, ToS, P1–P10).
func LoadVideo(name string) (*Video, error) { return video.Load(name) }

// Titles lists the four canonical evaluation titles.
func Titles() []string { return video.TestTitles() }

// YouTubeTitles lists the ten Tab. 3 clips.
func YouTubeTitles() []string { return video.YouTubeTitles() }

// LoadTrace resolves a canonical trace by name: tmobile, verizon, att, 3g,
// fcc, wild.
func LoadTrace(name string) (*Trace, error) { return trace.ByName(name) }

// TraceNames lists the canonical trace names.
func TraceNames() []string { return trace.Names() }

// PrepareManifest runs the §4.1 offline analysis for a title and returns
// the enriched manifest (pointsPerSegment ≤ 0 keeps the full QoE curves).
func PrepareManifest(v *Video, metric Metric, pointsPerSegment int) *Manifest {
	a := prep.NewAnalyzer()
	a.Metric = metric
	return dash.Build(v, dash.BuildOptions{
		Voxel:            true,
		PointsPerSegment: pointsPerSegment,
		Analyzer:         a,
	})
}

// AnalyzeSegment runs the offline frame-ranking analysis for one segment
// against a lower-bound score.
func AnalyzeSegment(s *Segment, lowerBound float64) Plan {
	return prep.NewAnalyzer().Analyze(s, lowerBound)
}

// DropTolerance returns, per segment of the title at quality q, the
// maximum fraction of frames droppable (under the inbound-reference
// ranking) while the SSIM stays at or above target — the Fig. 1 curves.
func DropTolerance(v *Video, q Quality, target float64) []float64 {
	a := prep.NewAnalyzer()
	out := make([]float64, v.Segments)
	for i := range out {
		out[i] = a.MaxDropFraction(v.Segment(i, q), prep.OrderByInboundRefs, target)
	}
	return out
}

// Stream runs a full streaming experiment (all trials) and returns the
// aggregate. It is the one-call entry point the examples use.
func Stream(cfg Config) (*Aggregate, error) {
	if cfg.Title == "" {
		return nil, fmt.Errorf("voxel: missing title")
	}
	if cfg.System == "" {
		cfg.System = VOXEL
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return exp.Run(cfg), nil
}

// ImpairmentProfiles lists the canonical netem fault profiles accepted by
// Config.Impairment: clean, bursty, flaky-wifi, handover-blackout.
func ImpairmentProfiles() []string { return netem.Profiles() }

// Summarize computes summary statistics of a sample.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// RunSurvey evaluates the §5.3 user-study model on two streamed outcomes.
func RunSurvey(users int, seed int64, baseline, voxelClip survey.Clip) survey.Outcome {
	return survey.NewPanel(users, seed).Evaluate(baseline, voxelClip)
}

// ClipFromAggregate derives survey-clip statistics from an experiment.
func ClipFromAggregate(a *Aggregate) survey.Clip {
	scores := a.AllScores
	return survey.Clip{
		BufRatio:         stats.Mean(a.BufRatios),
		MeanScore:        stats.Mean(scores),
		ScoreStdDev:      stats.StdDev(scores),
		ArtifactFraction: residualMean(a),
	}
}

func residualMean(a *Aggregate) float64 {
	var xs []float64
	for _, t := range a.Trials {
		xs = append(xs, t.Residual)
	}
	return stats.Mean(xs)
}

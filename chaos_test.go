package voxel_test

import (
	"testing"

	"voxel"
)

// TestChaosSmoke streams through every impairment profile and the failover
// scenario via the public facade — the CI chaos job runs this under -race
// with a hard timeout, so any regression that lets an impaired trial hang
// fails fast instead of wedging the job.
func TestChaosSmoke(t *testing.T) {
	tr, err := voxel.LoadTrace("verizon")
	if err != nil {
		t.Fatal(err)
	}
	run := func(name, impairment string, failover bool) {
		t.Run(name, func(t *testing.T) {
			opts := []voxel.Option{
				voxel.WithSystem(voxel.VOXEL), voxel.WithTrace(tr),
				voxel.WithTrials(1), voxel.WithSegments(8),
				voxel.WithImpairment(impairment),
			}
			if failover {
				opts = append(opts, voxel.WithFailover())
			}
			agg, _, err := voxel.New("BBB", opts...).Run()
			if err != nil {
				t.Fatal(err)
			}
			if !agg.Trials[0].Completed {
				t.Fatalf("trial wedged: %+v", agg.Trials[0])
			}
		})
	}
	for _, prof := range voxel.ImpairmentProfiles() {
		run(prof, prof, false)
	}
	run("failover", "handover-blackout", true)

	if _, _, err := voxel.New("BBB", voxel.WithImpairment("nope")).Run(); err == nil {
		t.Fatal("unknown impairment profile must be rejected")
	}
}

package voxel_test

import (
	"testing"

	"voxel"
)

// TestChaosSmoke streams through every impairment profile and the failover
// scenario via the public facade — the CI chaos job runs this under -race
// with a hard timeout, so any regression that lets an impaired trial hang
// fails fast instead of wedging the job.
func TestChaosSmoke(t *testing.T) {
	tr, err := voxel.LoadTrace("verizon")
	if err != nil {
		t.Fatal(err)
	}
	run := func(name, impairment string, failover bool) {
		t.Run(name, func(t *testing.T) {
			agg, err := voxel.Stream(voxel.Config{
				Title: "BBB", System: voxel.VOXEL, Trace: tr,
				Trials: 1, Segments: 8,
				Impairment: impairment, Failover: failover,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !agg.Trials[0].Completed {
				t.Fatalf("trial wedged: %+v", agg.Trials[0])
			}
		})
	}
	for _, prof := range voxel.ImpairmentProfiles() {
		run(prof, prof, false)
	}
	run("failover", "handover-blackout", true)

	if _, err := voxel.Stream(voxel.Config{Title: "BBB", Impairment: "nope"}); err == nil {
		t.Fatal("unknown impairment profile must be rejected")
	}
}
